// Command schedule answers the question that follows wrapper-cell
// minimization in any real pre-bond flow: given wrapped dies, how should a
// tester's TAM wires be allocated and the die tests scheduled so the whole
// stack finishes fastest? It wraps each die (same methods and profiles as
// cmd/wcmflow), grades it with stuck-at ATPG, enumerates its Pareto
// (TAM width, test cycles) wrapper designs, and packs one rectangle per
// die into the (total width × time) plane.
//
// Usage:
//
//	schedule -circuit b12 -width 32              # the b12 four-die stack
//	schedule -profiles b11/0,b11/2 -width 16     # an explicit stack
//	schedule -circuit b12 -widths 16,32,64       # width sweep
//	schedule -circuit b12 -width 32 -json        # machine-readable output
//
// With -json the output is an array of schedule reports in the same schema
// the wcmd daemon's POST /v1/schedules returns (internal/service), so CLI
// and service output stay in lockstep.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"wcm3d"
	"wcm3d/internal/service"
)

func main() {
	var (
		circuit  = flag.String("circuit", "", `benchmark family whose four dies form the stack, e.g. "b12"`)
		profiles = flag.String("profiles", "", `comma-separated Table II dies, e.g. "b11/0,b12/1"`)
		width    = flag.Int("width", 32, "total TAM wire budget")
		widths   = flag.String("widths", "", `comma-separated budgets to sweep, e.g. "16,32,64" (overrides -width)`)
		method   = flag.String("method", "ours", "ours | agrawal | li | fullwrap")
		timing   = flag.String("timing", "tight", "tight | loose")
		seed     = flag.Int64("seed", 1, "generation / ATPG seed")
		budget   = flag.String("budget", "full", "ATPG effort: full or reduced")
		asJSON   = flag.Bool("json", false, "emit the machine-readable reports (service schema)")
	)
	flag.Parse()
	if err := run(os.Stdout, *circuit, *profiles, *width, *widths, *method, *timing, *seed, *budget, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "schedule:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, circuit, profileList string, width int, widthList, methodName, timingName string, seed int64, budgetName string, asJSON bool) error {
	stackName, profiles, err := resolveStack(circuit, profileList)
	if err != nil {
		return err
	}
	budgets, err := resolveWidths(width, widthList)
	if err != nil {
		return err
	}
	m, err := wcm3d.ParseMethod(methodName)
	if err != nil {
		return err
	}
	mode, err := wcm3d.ParseTimingMode(timingName)
	if err != nil {
		return err
	}
	var bud wcm3d.ATPGBudget
	switch budgetName {
	case "full":
		bud = wcm3d.DefaultBudget(seed)
	case "reduced":
		bud = wcm3d.ReducedBudget(seed)
	default:
		return fmt.Errorf("unknown budget %q", budgetName)
	}

	dies, err := wcm3d.PrepareSuite(profiles, seed)
	if err != nil {
		return err
	}
	stack := make([]wcm3d.StackDie, len(dies))
	for i, d := range dies {
		res, err := wcm3d.Minimize(d, m, mode)
		if err != nil {
			return fmt.Errorf("%s: %w", profiles[i].Name(), err)
		}
		tb, err := wcm3d.EvaluateStuckAt(d, res.Assignment, bud)
		if err != nil {
			return fmt.Errorf("%s: %w", profiles[i].Name(), err)
		}
		stack[i] = wcm3d.StackDie{
			Name:       profiles[i].Name(),
			Die:        d,
			Assignment: res.Assignment,
			Patterns:   tb.Patterns,
		}
	}

	var reports []*service.ScheduleReport
	for _, wires := range budgets {
		rep, err := service.EncodeSchedule(stackName, m, mode, seed, stack, wires)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	}
	for i, rep := range reports {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := renderText(w, rep); err != nil {
			return err
		}
	}
	return nil
}

func resolveStack(circuit, profileList string) (string, []wcm3d.Profile, error) {
	switch {
	case circuit != "" && profileList != "":
		return "", nil, fmt.Errorf("pass -circuit or -profiles, not both")
	case circuit != "":
		ps := wcm3d.CircuitProfiles(circuit)
		if ps == nil {
			return "", nil, fmt.Errorf("unknown circuit %q", circuit)
		}
		return circuit, ps, nil
	case profileList != "":
		var ps []wcm3d.Profile
		for _, name := range strings.Split(profileList, ",") {
			p, err := wcm3d.ProfileByName(strings.TrimSpace(name))
			if err != nil {
				return "", nil, err
			}
			ps = append(ps, p)
		}
		return "custom", ps, nil
	default:
		return "", nil, fmt.Errorf("pass -circuit or -profiles")
	}
}

func resolveWidths(width int, widthList string) ([]int, error) {
	if widthList == "" {
		if width < 1 {
			return nil, fmt.Errorf("width must be >= 1, got %d", width)
		}
		return []int{width}, nil
	}
	var out []int
	for _, s := range strings.Split(widthList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad TAM width %q", s)
		}
		out = append(out, n)
	}
	return out, nil
}

func renderText(w io.Writer, rep *service.ScheduleReport) error {
	s := rep.Schedule
	fmt.Fprintf(w, "stack %s: %d dies, %d TAM wires, method %s, timing %s\n",
		rep.Stack, len(rep.Dies), s.TotalWidth, rep.Method, rep.Timing)
	fmt.Fprintf(w, "makespan %d cycles (serial %d, %.2fx speedup, %.1f%% plane utilization)\n",
		s.MakespanCycles, s.SerialCycles,
		float64(s.SerialCycles)/float64(max(s.MakespanCycles, 1)), 100*rep.Utilization)
	patterns := make(map[string]int, len(rep.Dies))
	for _, d := range rep.Dies {
		patterns[d.Die.Name] = d.Patterns
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "die\twires\tstart\tend\tcycles\tpatterns")
	for _, sl := range s.Slots {
		fmt.Fprintf(tw, "%s\t%d..%d\t%d\t%d\t%d\t%d\n",
			sl.Die, sl.FirstWire, sl.FirstWire+sl.Width, sl.StartCycle, sl.EndCycle,
			sl.Cycles(), patterns[sl.Die])
	}
	return tw.Flush()
}
