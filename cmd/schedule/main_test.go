package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"wcm3d/internal/service"
)

func TestRunScheduleB11(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "b11", "", 16, "", "ours", "tight", 1, "reduced", false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "stack b11: 4 dies, 16 TAM wires") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "b11/Die0") {
		t.Errorf("missing die slot:\n%s", out)
	}
}

func TestRunScheduleJSONSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", "b11/0,b11/3", 0, "8,16", "ours", "tight", 1, "reduced", true); err != nil {
		t.Fatal(err)
	}
	var reports []*service.ScheduleReport
	if err := json.Unmarshal(buf.Bytes(), &reports); err != nil {
		t.Fatalf("output is not the service schema: %v", err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2 (one per width)", len(reports))
	}
	for _, rep := range reports {
		s := rep.Schedule
		if err := s.Validate(); err != nil {
			t.Errorf("width %d: %v", s.TotalWidth, err)
		}
		if s.MakespanCycles > s.SerialCycles {
			t.Errorf("width %d: makespan %d exceeds serial %d", s.TotalWidth, s.MakespanCycles, s.SerialCycles)
		}
		if len(rep.Dies) != 2 || rep.Stack != "custom" {
			t.Errorf("unexpected report: stack %q, %d dies", rep.Stack, len(rep.Dies))
		}
	}
	// More wires must never slow the stack down.
	if reports[1].Schedule.MakespanCycles > reports[0].Schedule.MakespanCycles {
		t.Errorf("16 wires (%d cycles) slower than 8 (%d cycles)",
			reports[1].Schedule.MakespanCycles, reports[0].Schedule.MakespanCycles)
	}
}

func TestRunScheduleErrors(t *testing.T) {
	cases := []struct {
		name                           string
		circuit, profiles              string
		width                          int
		widths, method, timing, budget string
	}{
		{"no stack", "", "", 8, "", "ours", "tight", "full"},
		{"both stack forms", "b11", "b11/0", 8, "", "ours", "tight", "full"},
		{"unknown circuit", "b99", "", 8, "", "ours", "tight", "full"},
		{"bad profile", "", "b11/9", 8, "", "ours", "tight", "full"},
		{"zero width", "b11", "", 0, "", "ours", "tight", "full"},
		{"bad widths", "b11", "", 8, "8,x", "ours", "tight", "full"},
		{"bad method", "b11", "", 8, "", "mystery", "tight", "full"},
		{"bad timing", "b11", "", 8, "", "ours", "sideways", "full"},
		{"bad budget", "b11", "", 8, "", "ours", "tight", "maximal"},
	}
	for _, c := range cases {
		if err := run(io.Discard, c.circuit, c.profiles, c.width, c.widths, c.method, c.timing, 1, c.budget, false); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
