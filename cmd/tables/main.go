// Command tables regenerates the paper's evaluation artifacts: Tables I-V
// and Figure 7 of "Timing Aware Wrapper Cells Reduction for Pre-bond
// Testing in 3D-ICs" (SOCC 2019), plus the TAM width sweep the paper stops
// short of (internal/tam).
//
// Usage:
//
//	tables -all                      # every table and figure, all 24 dies
//	tables -table 3 -circuits b12    # one table on one circuit family
//	tables -figure 7                 # the edge-growth figure (b20-b22)
//	tables -table 4 -budget reduced  # faster, lower-effort ATPG
//	tables -tam -widths 16,32,64     # stack test time vs total TAM wires
//	tables -refine -refine-budget 5s # greedy vs solver portfolio, all 24 dies
//	tables -batch                    # 24-die sweep through the batch engine
//	tables -replan                   # TSV-failure replan vs rerun, all 24 dies
//	tables -table 2 -json            # machine-readable rows
//
// With -json the output is an array of experiment reports in the shared
// schema from internal/service (one {"experiment","rows"} envelope per
// experiment run), so CLI and service output stay in lockstep.
//
// Runtime note: tables IV and V run full ATPG per die and method; on the
// b18-class dies that is minutes per die at the full budget.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"wcm3d"
	"wcm3d/internal/batch"
	"wcm3d/internal/experiments"
	"wcm3d/internal/netgen"
	"wcm3d/internal/service"
	"wcm3d/internal/tsvrepair"
)

func main() {
	var (
		table        = flag.Int("table", 0, "table number to regenerate (1-5)")
		figure       = flag.Int("figure", 0, "figure number to regenerate (7)")
		tam          = flag.Bool("tam", false, "regenerate the TAM width sweep (stack test time vs total wires)")
		all          = flag.Bool("all", false, "regenerate every table, figure, and the TAM sweep")
		refineGap    = flag.Bool("refine", false, "regenerate the refinement gap table (greedy vs solver portfolio; not part of -all)")
		refineBudget = flag.Duration("refine-budget", 2*time.Second, "per-die wall budget for -refine")
		batchSweep   = flag.Bool("batch", false, "run the Table II die set through the streaming batch engine (internal/batch; not part of -all)")
		replanSweep  = flag.Bool("replan", false, "time a single-TSV-failure incremental replan against a from-scratch rerun on the Table II die set (internal/tsvrepair; not part of -all)")
		circuits     = flag.String("circuits", "", "comma-separated circuit families (default: the paper's set for each experiment)")
		widths       = flag.String("widths", "16,32,64", `comma-separated total TAM wire budgets for -tam`)
		seed         = flag.Int64("seed", 1, "generation seed")
		budget       = flag.String("budget", "full", "ATPG effort: full or reduced")
		short        = flag.Bool("short", false, "shorthand for -budget reduced -circuits b11,b12")
		asJSON       = flag.Bool("json", false, "emit machine-readable experiment reports (service schema)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
	runErr := run(os.Stdout, *table, *figure, *tam, *all, *refineGap, *refineBudget, *batchSweep, *replanSweep, *circuits, *widths, *seed, *budget, *short, *asJSON)
	if err := stopProfiles(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "tables:", runErr)
		os.Exit(1)
	}
}

// startProfiles turns on the requested pprof outputs and returns the hook
// that finishes them — CPU profiling stops, and the heap profile is
// snapshotted after a GC so it reflects live data, not garbage.
func startProfiles(cpuprofile, memprofile string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuprofile != "" {
		cpuFile, err = os.Create(cpuprofile)
		if err != nil {
			return nil, fmt.Errorf("creating -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("closing -cpuprofile: %w", err)
			}
		}
		if memprofile != "" {
			f, err := os.Create(memprofile)
			if err != nil {
				return fmt.Errorf("creating -memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("writing -memprofile: %w", err)
			}
		}
		return nil
	}, nil
}

func run(w io.Writer, table, figure int, tam, all, refineGap bool, refineBudget time.Duration, batchSweep, replanSweep bool, circuits, widthList string, seed int64, budgetName string, short, asJSON bool) error {
	if short {
		budgetName = "reduced"
		if circuits == "" {
			circuits = "b11,b12"
		}
	}
	var budget experiments.ATPGBudget
	switch budgetName {
	case "full":
		budget = experiments.DefaultBudget(seed)
	case "reduced":
		budget = experiments.ReducedBudget(seed)
	default:
		return fmt.Errorf("unknown budget %q (want full or reduced)", budgetName)
	}
	tamWidths, err := parseWidths(widthList)
	if err != nil {
		return err
	}

	profilesFor := func(defaults []string) ([]netgen.Profile, error) {
		names := defaults
		if circuits != "" {
			names = strings.Split(circuits, ",")
		}
		var out []netgen.Profile
		for _, name := range names {
			ps := netgen.ITC99Circuit(strings.TrimSpace(name))
			if ps == nil {
				return nil, fmt.Errorf("unknown circuit %q", name)
			}
			out = append(out, ps...)
		}
		return out, nil
	}
	allCircuits := netgen.ITC99CircuitNames()
	bigThree := []string{"b20", "b21", "b22"}

	want := func(n int, isFigure bool) bool {
		if all {
			return true
		}
		if isFigure {
			return figure == n
		}
		return table == n
	}
	if !all && !tam && !refineGap && !batchSweep && !replanSweep && table == 0 && figure == 0 {
		return fmt.Errorf("nothing to do: pass -all, -table N, -figure 7, -tam, -refine, -batch, or -replan")
	}
	ran := false

	// In JSON mode the experiments accumulate envelopes instead of
	// rendering, and the timing notes stay off the data stream.
	var reports []service.ExperimentReport
	emit := func(name string, rows any, render func(io.Writer)) {
		if asJSON {
			reports = append(reports, service.ExperimentReport{Experiment: name, Rows: rows})
			return
		}
		render(w)
	}
	timed := func(name string, f func() error) error {
		start := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if !asJSON {
			fmt.Fprintf(w, "[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		}
		return nil
	}

	if want(1, false) {
		ran = true
		profiles, err := profilesFor([]string{"b12"})
		if err != nil {
			return err
		}
		if err := timed("Table I", func() error {
			dies, err := experiments.PrepareSuite(profiles, seed)
			if err != nil {
				return err
			}
			rows, err := experiments.Table1(dies, budget)
			if err != nil {
				return err
			}
			emit("table1", rows, func(w io.Writer) { experiments.RenderTable1(w, rows) })
			return nil
		}); err != nil {
			return err
		}
	}
	if want(2, false) {
		ran = true
		profiles, err := profilesFor(allCircuits)
		if err != nil {
			return err
		}
		if err := timed("Table II", func() error {
			rows, err := experiments.Table2(profiles, seed)
			if err != nil {
				return err
			}
			emit("table2", rows, func(w io.Writer) { experiments.RenderTable2(w, rows) })
			return nil
		}); err != nil {
			return err
		}
	}
	if want(3, false) {
		ran = true
		profiles, err := profilesFor(allCircuits)
		if err != nil {
			return err
		}
		if err := timed("Table III", func() error {
			dies, err := experiments.PrepareSuite(profiles, seed)
			if err != nil {
				return err
			}
			rows, err := experiments.Table3(dies)
			if err != nil {
				return err
			}
			emit("table3", rows, func(w io.Writer) { experiments.RenderTable3(w, rows) })
			return nil
		}); err != nil {
			return err
		}
	}
	if want(4, false) {
		ran = true
		profiles, err := profilesFor(allCircuits)
		if err != nil {
			return err
		}
		if err := timed("Table IV", func() error {
			dies, err := experiments.PrepareSuite(profiles, seed)
			if err != nil {
				return err
			}
			rows, err := experiments.Table4(dies, budget)
			if err != nil {
				return err
			}
			emit("table4", rows, func(w io.Writer) { experiments.RenderTable4(w, rows) })
			return nil
		}); err != nil {
			return err
		}
	}
	if want(5, false) {
		ran = true
		profiles, err := profilesFor(bigThree)
		if err != nil {
			return err
		}
		if err := timed("Table V", func() error {
			dies, err := experiments.PrepareSuite(profiles, seed)
			if err != nil {
				return err
			}
			rows, err := experiments.Table5(dies, budget)
			if err != nil {
				return err
			}
			emit("table5", rows, func(w io.Writer) { experiments.RenderTable5(w, rows) })
			return nil
		}); err != nil {
			return err
		}
	}
	if want(7, true) {
		ran = true
		profiles, err := profilesFor(bigThree)
		if err != nil {
			return err
		}
		if err := timed("Figure 7", func() error {
			dies, err := experiments.PrepareSuite(profiles, seed)
			if err != nil {
				return err
			}
			rows, err := experiments.Figure7(dies)
			if err != nil {
				return err
			}
			emit("figure7", rows, func(w io.Writer) { experiments.RenderFigure7(w, rows) })
			return nil
		}); err != nil {
			return err
		}
	}
	if all || tam {
		ran = true
		profiles, err := profilesFor(allCircuits)
		if err != nil {
			return err
		}
		if err := timed("TAM widths", func() error {
			dies, err := experiments.PrepareSuite(profiles, seed)
			if err != nil {
				return err
			}
			rows, err := experiments.TAMWidths(dies, tamWidths, budget)
			if err != nil {
				return err
			}
			emit("tam_widths", rows, func(w io.Writer) { experiments.RenderTAMWidths(w, rows) })
			return nil
		}); err != nil {
			return err
		}
	}
	if refineGap {
		ran = true
		profiles, err := profilesFor(allCircuits)
		if err != nil {
			return err
		}
		if err := timed("Refinement gap", func() error {
			dies, err := experiments.PrepareSuite(profiles, seed)
			if err != nil {
				return err
			}
			rows, err := experiments.RefineGap(dies, refineBudget, seed)
			if err != nil {
				return err
			}
			emit("refine_gap", rows, func(w io.Writer) { experiments.RenderRefineGap(w, rows) })
			return nil
		}); err != nil {
			return err
		}
	}
	if batchSweep {
		ran = true
		profiles, err := profilesFor(allCircuits)
		if err != nil {
			return err
		}
		if err := timed("Batch sweep", func() error {
			rows, elapsed, err := batchSweepRows(profiles, seed)
			if err != nil {
				return err
			}
			emit("batch_sweep", rows, func(w io.Writer) { renderBatchSweep(w, rows, elapsed) })
			return nil
		}); err != nil {
			return err
		}
	}
	if replanSweep {
		ran = true
		profiles, err := profilesFor(allCircuits)
		if err != nil {
			return err
		}
		if err := timed("Replan speedup", func() error {
			rows, err := replanSweepRows(profiles, seed)
			if err != nil {
				return err
			}
			emit("replan_speedup", rows, func(w io.Writer) { renderReplanSweep(w, rows) })
			return nil
		}); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("no experiment matches -table %d / -figure %d", table, figure)
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	}
	return nil
}

// batchSweepRow is one die of the -batch sweep: the paper-method plan
// under tight timing, plus where that die's wall time went.
type batchSweepRow struct {
	Die             string
	ReusedFFs       int
	AdditionalCells int
	PrepareMS       float64
	SolveMS         float64
}

// batchSweepRows runs the profiles through the streaming batch engine
// (internal/batch) with its default pipeline sizing. The plans are
// bit-identical to serial wcm3d.Minimize calls; what the engine buys is
// bounded memory and overlap of prepare and solve stages.
func batchSweepRows(profiles []netgen.Profile, seed int64) ([]batchSweepRow, time.Duration, error) {
	specs := make([]batch.Spec, len(profiles))
	for i, p := range profiles {
		specs[i] = batch.Spec{Profile: p, Seed: seed}
	}
	res, err := batch.Run(context.Background(), specs, batch.Config{
		Method: wcm3d.MethodOurs,
		Mode:   wcm3d.TightTiming,
	})
	if err != nil {
		return nil, 0, err
	}
	rows := make([]batchSweepRow, len(res.Dies))
	for i, d := range res.Dies {
		if d.Err != nil {
			return nil, 0, fmt.Errorf("die %s: %w", profiles[i].Name(), d.Err)
		}
		rows[i] = batchSweepRow{
			Die:             profiles[i].Name(),
			ReusedFFs:       d.Result.ReusedFFs,
			AdditionalCells: d.Result.AdditionalCells,
			PrepareMS:       float64(d.PrepareDur) / float64(time.Millisecond),
			SolveMS:         float64(d.SolveDur) / float64(time.Millisecond),
		}
	}
	return rows, res.Elapsed, nil
}

// renderBatchSweep prints the per-die plan numbers and stage timings, with
// totals and the pipeline wall clock (smaller than the stage-time sum when
// prepare of die k+1 overlapped solve of die k).
func renderBatchSweep(w io.Writer, rows []batchSweepRow, elapsed time.Duration) {
	fmt.Fprintln(w, "Batch sweep — streaming engine, paper method, tight timing")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "die\treused FFs\tadded cells\tprepare ms\tsolve ms")
	var reused, cells int
	var prepMS, solveMS float64
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%.1f\n",
			r.Die, r.ReusedFFs, r.AdditionalCells, r.PrepareMS, r.SolveMS)
		reused += r.ReusedFFs
		cells += r.AdditionalCells
		prepMS += r.PrepareMS
		solveMS += r.SolveMS
	}
	fmt.Fprintf(tw, "Total\t%d\t%d\t%.1f\t%.1f\n", reused, cells, prepMS, solveMS)
	tw.Flush()
	fmt.Fprintf(w, "pipeline wall clock: %v for %d dies (stage time %.1f ms)\n",
		elapsed.Round(time.Millisecond), len(rows), prepMS+solveMS)
}

// replanSweepRows times a single-TSV-failure replan against a from-scratch
// rerun on every profile: each die is prepared once with two spare sites
// per side, then tsvrepair.MeasureSpeedup runs three cold trials under the
// paper's method and tight timing. See results/replan_speedup.txt and
// docs/REPLAN.md.
func replanSweepRows(profiles []netgen.Profile, seed int64) ([]tsvrepair.SpeedupRow, error) {
	const trials = 3
	rows := make([]tsvrepair.SpeedupRow, 0, len(profiles))
	for _, p := range profiles {
		d, err := tsvrepair.PrepareWithSpares(p, seed, tsvrepair.SpareSpec{Inbound: 2, Outbound: 2})
		if err != nil {
			return nil, fmt.Errorf("die %s: %w", p.Name(), err)
		}
		opts := experiments.OurOptions(d, experiments.Scenario{Name: "tight", Tight: true})
		row, err := tsvrepair.MeasureSpeedup(d, opts, trials)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// renderReplanSweep prints the per-die timings with the differential
// columns (equal = incremental plan deep-equal to the rerun, verified =
// the plan passed the independent checker) and the median-ratio headline
// the replan-equivalence CI job asserts on.
func renderReplanSweep(w io.Writer, rows []tsvrepair.SpeedupRow) {
	fmt.Fprintln(w, "Replan speedup — one stuck-at TSV failure, incremental replan vs from-scratch rerun")
	fmt.Fprintln(w, "(medians over 3 cold trials per die; paper method, tight timing, 2+2 spare sites)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "die\treplan ms\trerun ms\tspeedup\tequal\tverified")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.2fx\t%v\t%v\n",
			r.Die, r.ReplanMS, r.RerunMS, r.Ratio, r.Equal, r.Verified)
	}
	tw.Flush()
	fmt.Fprintf(w, "median speedup: %.2fx over %d dies\n", tsvrepair.MedianRatio(rows), len(rows))
}

func parseWidths(widthList string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(widthList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad TAM width %q", s)
		}
		out = append(out, n)
	}
	return out, nil
}
