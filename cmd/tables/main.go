// Command tables regenerates the paper's evaluation artifacts: Tables I-V
// and Figure 7 of "Timing Aware Wrapper Cells Reduction for Pre-bond
// Testing in 3D-ICs" (SOCC 2019).
//
// Usage:
//
//	tables -all                      # every table and figure, all 24 dies
//	tables -table 3 -circuits b12    # one table on one circuit family
//	tables -figure 7                 # the edge-growth figure (b20-b22)
//	tables -table 4 -budget reduced  # faster, lower-effort ATPG
//
// Runtime note: tables IV and V run full ATPG per die and method; on the
// b18-class dies that is minutes per die at the full budget.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"wcm3d/internal/experiments"
	"wcm3d/internal/netgen"
)

func main() {
	var (
		table    = flag.Int("table", 0, "table number to regenerate (1-5)")
		figure   = flag.Int("figure", 0, "figure number to regenerate (7)")
		all      = flag.Bool("all", false, "regenerate every table and figure")
		circuits = flag.String("circuits", "", "comma-separated circuit families (default: the paper's set for each experiment)")
		seed     = flag.Int64("seed", 1, "generation seed")
		budget   = flag.String("budget", "full", "ATPG effort: full or reduced")
		short    = flag.Bool("short", false, "shorthand for -budget reduced -circuits b11,b12")
	)
	flag.Parse()
	if err := run(*table, *figure, *all, *circuits, *seed, *budget, *short); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func run(table, figure int, all bool, circuits string, seed int64, budgetName string, short bool) error {
	if short {
		budgetName = "reduced"
		if circuits == "" {
			circuits = "b11,b12"
		}
	}
	var budget experiments.ATPGBudget
	switch budgetName {
	case "full":
		budget = experiments.DefaultBudget(seed)
	case "reduced":
		budget = experiments.ReducedBudget(seed)
	default:
		return fmt.Errorf("unknown budget %q (want full or reduced)", budgetName)
	}

	profilesFor := func(defaults []string) ([]netgen.Profile, error) {
		names := defaults
		if circuits != "" {
			names = strings.Split(circuits, ",")
		}
		var out []netgen.Profile
		for _, name := range names {
			ps := netgen.ITC99Circuit(strings.TrimSpace(name))
			if ps == nil {
				return nil, fmt.Errorf("unknown circuit %q", name)
			}
			out = append(out, ps...)
		}
		return out, nil
	}
	allCircuits := netgen.ITC99CircuitNames()
	bigThree := []string{"b20", "b21", "b22"}

	want := func(n int, isFigure bool) bool {
		if all {
			return true
		}
		if isFigure {
			return figure == n
		}
		return table == n
	}
	if !all && table == 0 && figure == 0 {
		return fmt.Errorf("nothing to do: pass -all, -table N, or -figure 7")
	}
	ran := false

	if want(1, false) {
		ran = true
		profiles, err := profilesFor([]string{"b12"})
		if err != nil {
			return err
		}
		if err := timed("Table I", func() error {
			dies, err := experiments.PrepareSuite(profiles, seed)
			if err != nil {
				return err
			}
			rows, err := experiments.Table1(dies, budget)
			if err != nil {
				return err
			}
			experiments.RenderTable1(os.Stdout, rows)
			return nil
		}); err != nil {
			return err
		}
	}
	if want(2, false) {
		ran = true
		profiles, err := profilesFor(allCircuits)
		if err != nil {
			return err
		}
		if err := timed("Table II", func() error {
			rows, err := experiments.Table2(profiles, seed)
			if err != nil {
				return err
			}
			experiments.RenderTable2(os.Stdout, rows)
			return nil
		}); err != nil {
			return err
		}
	}
	if want(3, false) {
		ran = true
		profiles, err := profilesFor(allCircuits)
		if err != nil {
			return err
		}
		if err := timed("Table III", func() error {
			dies, err := experiments.PrepareSuite(profiles, seed)
			if err != nil {
				return err
			}
			rows, err := experiments.Table3(dies)
			if err != nil {
				return err
			}
			experiments.RenderTable3(os.Stdout, rows)
			return nil
		}); err != nil {
			return err
		}
	}
	if want(4, false) {
		ran = true
		profiles, err := profilesFor(allCircuits)
		if err != nil {
			return err
		}
		if err := timed("Table IV", func() error {
			dies, err := experiments.PrepareSuite(profiles, seed)
			if err != nil {
				return err
			}
			rows, err := experiments.Table4(dies, budget)
			if err != nil {
				return err
			}
			experiments.RenderTable4(os.Stdout, rows)
			return nil
		}); err != nil {
			return err
		}
	}
	if want(5, false) {
		ran = true
		profiles, err := profilesFor(bigThree)
		if err != nil {
			return err
		}
		if err := timed("Table V", func() error {
			dies, err := experiments.PrepareSuite(profiles, seed)
			if err != nil {
				return err
			}
			rows, err := experiments.Table5(dies, budget)
			if err != nil {
				return err
			}
			experiments.RenderTable5(os.Stdout, rows)
			return nil
		}); err != nil {
			return err
		}
	}
	if want(7, true) {
		ran = true
		profiles, err := profilesFor(bigThree)
		if err != nil {
			return err
		}
		if err := timed("Figure 7", func() error {
			dies, err := experiments.PrepareSuite(profiles, seed)
			if err != nil {
				return err
			}
			rows, err := experiments.Figure7(dies)
			if err != nil {
				return err
			}
			experiments.RenderFigure7(os.Stdout, rows)
			return nil
		}); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("no experiment matches -table %d / -figure %d", table, figure)
	}
	return nil
}

func timed(name string, f func() error) error {
	start := time.Now()
	if err := f(); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}
