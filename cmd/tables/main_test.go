package main

import (
	"strings"
	"testing"
)

func TestRunTable2(t *testing.T) {
	// Table II touches only the generator: fast and fully deterministic.
	if err := run(2, 0, false, "b11", 1, "reduced", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunShortFlagDefaults(t *testing.T) {
	if err := run(2, 0, false, "", 1, "full", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run(0, 0, false, "", 1, "full", false); err == nil {
		t.Error("no experiment selected must error")
	}
	if err := run(2, 0, false, "b99", 1, "full", false); err == nil || !strings.Contains(err.Error(), "unknown circuit") {
		t.Errorf("unknown circuit: %v", err)
	}
	if err := run(2, 0, false, "", 1, "warp", false); err == nil || !strings.Contains(err.Error(), "unknown budget") {
		t.Errorf("unknown budget: %v", err)
	}
	if err := run(9, 0, false, "", 1, "full", false); err == nil {
		t.Error("unknown table number must error")
	}
}
