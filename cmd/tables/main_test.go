package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"time"

	"wcm3d/internal/experiments"
	"wcm3d/internal/service"
	"wcm3d/internal/tsvrepair"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestRunTable2(t *testing.T) {
	// Table II touches only the generator: fast and fully deterministic.
	if err := run(io.Discard, 2, 0, false, false, false, 0, false, false, "b11", "16,32,64", 1, "reduced", false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunShortFlagDefaults(t *testing.T) {
	if err := run(io.Discard, 2, 0, false, false, false, 0, false, false, "", "16,32,64", 1, "full", true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunTAMSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0, 0, true, false, false, 0, false, false, "b11", "4,8", 1, "reduced", false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "stack") || !strings.Contains(out, "b11") {
		t.Errorf("missing sweep table:\n%s", out)
	}
	if !strings.Contains(out, "[TAM widths completed") {
		t.Errorf("missing timing note:\n%s", out)
	}
}

// TestRunRefineGap runs the refinement-gap experiment on the smallest
// family with a short per-die budget and holds the output to its contract:
// refined cells never exceed greedy cells.
func TestRunRefineGap(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0, 0, false, false, true, 500*time.Millisecond, false, false, "b11", "16", 1, "reduced", false, true); err != nil {
		t.Fatal(err)
	}
	var reports []service.ExperimentReport
	if err := json.Unmarshal(buf.Bytes(), &reports); err != nil {
		t.Fatalf("output is not the service schema: %v", err)
	}
	if len(reports) != 1 || reports[0].Experiment != "refine_gap" {
		t.Fatalf("unexpected envelope: %+v", reports)
	}
	raw, _ := json.Marshal(reports[0].Rows)
	var rows []experiments.RefineGapRow
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.RefinedCells > r.GreedyCells {
			t.Errorf("%s: refined %d > greedy %d", r.Die, r.RefinedCells, r.GreedyCells)
		}
		if r.Saved != r.GreedyCells-r.RefinedCells {
			t.Errorf("%s: saved %d inconsistent", r.Die, r.Saved)
		}
	}
}

// TestRunBatchSweep pushes one family through the streaming batch engine
// and pins the envelope plus the per-row invariants: every die solved,
// plan numbers present, stage timings recorded.
func TestRunBatchSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0, 0, false, false, false, 0, true, false, "b11", "16", 1, "reduced", false, true); err != nil {
		t.Fatal(err)
	}
	var reports []service.ExperimentReport
	if err := json.Unmarshal(buf.Bytes(), &reports); err != nil {
		t.Fatalf("output is not the service schema: %v", err)
	}
	if len(reports) != 1 || reports[0].Experiment != "batch_sweep" {
		t.Fatalf("unexpected envelope: %+v", reports)
	}
	raw, _ := json.Marshal(reports[0].Rows)
	var rows []batchSweepRow
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want the 4 b11 dies", len(rows))
	}
	for _, r := range rows {
		if !strings.HasPrefix(r.Die, "b11/") {
			t.Errorf("unexpected die %q", r.Die)
		}
		if r.ReusedFFs == 0 && r.AdditionalCells == 0 {
			t.Errorf("%s: no plan numbers", r.Die)
		}
		if r.PrepareMS <= 0 || r.SolveMS <= 0 {
			t.Errorf("%s: missing stage timings (%v, %v)", r.Die, r.PrepareMS, r.SolveMS)
		}
	}
}

// TestRunBatchSweepText checks the human-readable rendering.
func TestRunBatchSweepText(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0, 0, false, false, false, 0, true, false, "b11", "16", 1, "reduced", false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Batch sweep", "b11/Die0", "Total", "pipeline wall clock", "[Batch sweep completed"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestRunReplanSweep runs the replan-speedup experiment on the smallest
// family and holds it to the differential contract columns: every row
// equal and verified, every ratio positive.
func TestRunReplanSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0, 0, false, false, false, 0, false, true, "b11", "16", 1, "reduced", false, true); err != nil {
		t.Fatal(err)
	}
	var reports []service.ExperimentReport
	if err := json.Unmarshal(buf.Bytes(), &reports); err != nil {
		t.Fatalf("output is not the service schema: %v", err)
	}
	if len(reports) != 1 || reports[0].Experiment != "replan_speedup" {
		t.Fatalf("unexpected envelope: %+v", reports)
	}
	raw, _ := json.Marshal(reports[0].Rows)
	var rows []tsvrepair.SpeedupRow
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want the 4 b11 dies", len(rows))
	}
	for _, r := range rows {
		if !r.Equal || !r.Verified {
			t.Errorf("%s: differential contract broken: %+v", r.Die, r)
		}
		if r.Ratio <= 0 || r.ReplanMS <= 0 || r.RerunMS <= 0 {
			t.Errorf("%s: implausible timings: %+v", r.Die, r)
		}
	}
}

// TestRunJSONGolden pins the -json envelope schema. Table II is pure
// netlist statistics, so the bytes are deterministic across runs.
func TestRunJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 2, 0, false, false, false, 0, false, false, "b11", "16,32,64", 1, "reduced", false, true); err != nil {
		t.Fatal(err)
	}
	var reports []service.ExperimentReport
	if err := json.Unmarshal(buf.Bytes(), &reports); err != nil {
		t.Fatalf("output is not the service schema: %v", err)
	}
	if len(reports) != 1 || reports[0].Experiment != "table2" {
		t.Fatalf("unexpected envelope: %+v", reports)
	}

	golden := filepath.Join("testdata", "tables_table2_b11.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON output drifted from %s (rerun with -update if intentional)\ngot:\n%s", golden, buf.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run(io.Discard, 0, 0, false, false, false, 0, false, false, "", "16", 1, "full", false, false); err == nil {
		t.Error("no experiment selected must error")
	}
	if err := run(io.Discard, 2, 0, false, false, false, 0, false, false, "b99", "16", 1, "full", false, false); err == nil || !strings.Contains(err.Error(), "unknown circuit") {
		t.Errorf("unknown circuit: %v", err)
	}
	if err := run(io.Discard, 2, 0, false, false, false, 0, false, false, "", "16", 1, "warp", false, false); err == nil || !strings.Contains(err.Error(), "unknown budget") {
		t.Errorf("unknown budget: %v", err)
	}
	if err := run(io.Discard, 9, 0, false, false, false, 0, false, false, "", "16", 1, "full", false, false); err == nil {
		t.Error("unknown table number must error")
	}
	if err := run(io.Discard, 0, 0, true, false, false, 0, false, false, "b11", "4,x", 1, "full", false, false); err == nil || !strings.Contains(err.Error(), "bad TAM width") {
		t.Errorf("bad widths: %v", err)
	}
}
