package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"wcm3d/internal/service"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestRunCompareSmallDie(t *testing.T) {
	if err := run(io.Discard, "b11/0", "", "ours", "tight", 1, true, true, "reduced", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleMethodNoATPG(t *testing.T) {
	if err := run(io.Discard, "b11/3", "", "agrawal", "loose", 1, false, false, "reduced", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(io.Discard, "", "", "ours", "tight", 1, false, true, "full", false); err == nil {
		t.Error("neither profile nor netlist must error")
	}
	if err := run(io.Discard, "b11/0", "", "mystery", "tight", 1, false, false, "full", false); err == nil {
		t.Error("unknown method must error")
	}
	if err := run(io.Discard, "b11/0", "", "ours", "sideways", 1, false, false, "full", false); err == nil {
		t.Error("unknown timing must error")
	}
	if err := run(io.Discard, "b11/0", "", "ours", "tight", 1, false, false, "maximal", false); err == nil {
		t.Error("unknown budget must error")
	}
}

// TestRunJSONGolden pins the -json output to the shared service schema: the
// flow is deterministic in (profile, seed, budget), so the report must
// match byte for byte. Regenerate with `go test ./cmd/wcmflow -update`.
func TestRunJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "b11/0", "", "ours", "tight", 1, false, true, "reduced", true); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "wcmflow_b11_0.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-json output drifted from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
	// The output must parse back into the service schema.
	var reports []*service.Report
	if err := json.Unmarshal(buf.Bytes(), &reports); err != nil {
		t.Fatalf("output is not the service schema: %v", err)
	}
	if len(reports) != 1 || reports[0].Method != "ours" || reports[0].StuckAt == nil {
		t.Errorf("unexpected report: %+v", reports)
	}
}
