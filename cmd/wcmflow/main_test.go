package main

import (
	"testing"
)

func TestRunCompareSmallDie(t *testing.T) {
	if err := run("b11/0", "", "ours", "tight", 1, true, true, "reduced"); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleMethodNoATPG(t *testing.T) {
	if err := run("b11/3", "", "agrawal", "loose", 1, false, false, "reduced"); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", "ours", "tight", 1, false, true, "full"); err == nil {
		t.Error("neither profile nor netlist must error")
	}
	if err := run("b11/0", "", "mystery", "tight", 1, false, false, "full"); err == nil {
		t.Error("unknown method must error")
	}
	if err := run("b11/0", "", "ours", "sideways", 1, false, false, "full"); err == nil {
		t.Error("unknown timing must error")
	}
	if err := run("b11/0", "", "ours", "tight", 1, false, false, "maximal"); err == nil {
		t.Error("unknown budget must error")
	}
}
