// Command wcmflow runs the complete design flow of the paper's Figure 6 on
// one die: generation (or parsing), placement, timing, TSV analysis, graph
// construction, clique partitioning, DFT insertion, ATPG, and the final
// timing signoff — printing a report at each stage.
//
// Usage:
//
//	wcmflow -profile b12/1                      # paper benchmark die
//	wcmflow -netlist die.bench                  # your own die
//	wcmflow -profile b18/2 -method agrawal -timing tight
//	wcmflow -profile b12/1 -compare             # all methods side by side
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"wcm3d"
)

func main() {
	var (
		profile = flag.String("profile", "", `Table II die, e.g. "b12/1"`)
		netPath = flag.String("netlist", "", "path to a .bench die (alternative to -profile)")
		method  = flag.String("method", "ours", "ours | agrawal | li | fullwrap")
		timing  = flag.String("timing", "tight", "tight | loose")
		seed    = flag.Int64("seed", 1, "generation / ATPG seed")
		compare = flag.Bool("compare", false, "run every method and tabulate")
		atpg    = flag.Bool("atpg", true, "run stuck-at ATPG on the result")
		budget  = flag.String("budget", "full", "ATPG effort: full or reduced")
	)
	flag.Parse()
	if err := run(*profile, *netPath, *method, *timing, *seed, *compare, *atpg, *budget); err != nil {
		fmt.Fprintln(os.Stderr, "wcmflow:", err)
		os.Exit(1)
	}
}

func run(profile, netPath, methodName, timingName string, seed int64, compare, runATPG bool, budgetName string) error {
	die, err := loadDie(profile, netPath, seed)
	if err != nil {
		return err
	}
	st := dieStats(die)
	fmt.Printf("die %s: %s\n", die.Profile.Name(), st)
	fmt.Printf("clock %.1f ps (margin %.1f ps), placement %.0fx%.0f µm\n\n",
		die.ClockPS, die.MarginPS, die.Placement.Width, die.Placement.Height)

	mode, err := parseTiming(timingName)
	if err != nil {
		return err
	}
	var bud wcm3d.ATPGBudget
	switch budgetName {
	case "full":
		bud = wcm3d.DefaultBudget(seed)
	case "reduced":
		bud = wcm3d.ReducedBudget(seed)
	default:
		return fmt.Errorf("unknown budget %q", budgetName)
	}

	methods := []wcm3d.Method{wcm3d.MethodOurs}
	if compare {
		methods = []wcm3d.Method{wcm3d.MethodFullWrap, wcm3d.MethodLi, wcm3d.MethodAgrawal, wcm3d.MethodOurs}
	} else {
		m, err := parseMethod(methodName)
		if err != nil {
			return err
		}
		methods = []wcm3d.Method{m}
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\treused FFs\tadded cells\tDFT area (µm²)\ttiming\tWNS (ps)\tstuck-at cov\t#patterns\ttest cycles")
	for _, m := range methods {
		res, err := wcm3d.Minimize(die, m, mode)
		if err != nil {
			return fmt.Errorf("%v: %w", m, err)
		}
		viol, wns, err := wcm3d.CheckTiming(die, res.Assignment)
		if err != nil {
			return err
		}
		timingMark := "meets"
		if viol {
			timingMark = "VIOLATES"
		}
		cov, pats, cycles := "-", "-", "-"
		if runATPG {
			tb, err := wcm3d.EvaluateStuckAt(die, res.Assignment, bud)
			if err != nil {
				return err
			}
			cov = fmt.Sprintf("%.2f%%", 100*tb.Coverage)
			pats = strconv.Itoa(tb.Patterns)
			// Tester time under a 4-chain scan architecture.
			chains, err := wcm3d.BuildScanChains(die, res.Assignment, 4)
			if err != nil {
				return err
			}
			cycles = strconv.Itoa(chains.TestCycles(tb.Patterns))
		}
		fmt.Fprintf(tw, "%v\t%d\t%d\t%.1f\t%s\t%.1f\t%s\t%s\t%s\n",
			m, res.ReusedFFs, res.AdditionalCells, res.AreaUM2(wcm3d.DefaultLibrary()),
			timingMark, wns, cov, pats, cycles)
	}
	return tw.Flush()
}

func loadDie(profile, netPath string, seed int64) (*wcm3d.Die, error) {
	switch {
	case profile != "":
		parts := strings.Split(profile, "/")
		if len(parts) != 2 {
			return nil, fmt.Errorf("profile must look like b12/1, got %q", profile)
		}
		idx, err := strconv.Atoi(strings.TrimPrefix(parts[1], "Die"))
		if err != nil {
			return nil, err
		}
		ps := wcm3d.CircuitProfiles(parts[0])
		if ps == nil || idx < 0 || idx >= len(ps) {
			return nil, fmt.Errorf("no profile %q", profile)
		}
		return wcm3d.PrepareDie(ps[idx], seed)
	case netPath != "":
		f, err := os.Open(netPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		n, err := wcm3d.ParseNetlist(strings.TrimSuffix(netPath, ".bench"), f)
		if err != nil {
			return nil, err
		}
		// Wrap the parsed die in a synthetic profile so the standard
		// preparation (placement, clocking, fault universes) applies.
		return wcm3d.PrepareParsed(n, seed)
	default:
		return nil, fmt.Errorf("pass -profile or -netlist")
	}
}

func parseMethod(s string) (wcm3d.Method, error) {
	switch strings.ToLower(s) {
	case "ours":
		return wcm3d.MethodOurs, nil
	case "agrawal":
		return wcm3d.MethodAgrawal, nil
	case "li":
		return wcm3d.MethodLi, nil
	case "fullwrap", "full-wrap":
		return wcm3d.MethodFullWrap, nil
	default:
		return 0, fmt.Errorf("unknown method %q", s)
	}
}

func parseTiming(s string) (wcm3d.TimingMode, error) {
	switch strings.ToLower(s) {
	case "tight":
		return wcm3d.TightTiming, nil
	case "loose":
		return wcm3d.LooseTiming, nil
	default:
		return 0, fmt.Errorf("unknown timing mode %q", s)
	}
}

func dieStats(d *wcm3d.Die) string {
	return fmt.Sprintf("%d FFs, %d gates, %d inbound + %d outbound TSVs",
		len(d.Netlist.FlipFlops()), d.Netlist.NumLogicGates(),
		len(d.Netlist.InboundTSVs()), len(d.Netlist.OutboundTSVs()))
}
