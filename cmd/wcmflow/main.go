// Command wcmflow runs the complete design flow of the paper's Figure 6 on
// one die: generation (or parsing), placement, timing, TSV analysis, graph
// construction, clique partitioning, DFT insertion, ATPG, and the final
// timing signoff — printing a report at each stage.
//
// Usage:
//
//	wcmflow -profile b12/1                      # paper benchmark die
//	wcmflow -netlist die.bench                  # your own die
//	wcmflow -profile b18/2 -method agrawal -timing tight
//	wcmflow -profile b12/1 -compare             # all methods side by side
//	wcmflow -profile b12/1 -json                # machine-readable output
//
// With -json the output is an array of reports in the same schema the wcmd
// daemon returns for job results (internal/service), so CLI and service
// output stay in lockstep.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"wcm3d"
	"wcm3d/internal/service"
)

func main() {
	var (
		profile = flag.String("profile", "", `Table II die, e.g. "b12/1"`)
		netPath = flag.String("netlist", "", "path to a .bench die (alternative to -profile)")
		method  = flag.String("method", "ours", "ours | agrawal | li | fullwrap")
		timing  = flag.String("timing", "tight", "tight | loose")
		seed    = flag.Int64("seed", 1, "generation / ATPG seed")
		compare = flag.Bool("compare", false, "run every method and tabulate")
		atpg    = flag.Bool("atpg", true, "run stuck-at ATPG on the result")
		budget  = flag.String("budget", "full", "ATPG effort: full or reduced")
		asJSON  = flag.Bool("json", false, "emit the machine-readable report (service schema)")
	)
	flag.Parse()
	if err := run(os.Stdout, *profile, *netPath, *method, *timing, *seed, *compare, *atpg, *budget, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "wcmflow:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, profile, netPath, methodName, timingName string, seed int64, compare, runATPG bool, budgetName string, asJSON bool) error {
	die, name, err := loadDie(profile, netPath, seed)
	if err != nil {
		return err
	}
	mode, err := wcm3d.ParseTimingMode(timingName)
	if err != nil {
		return err
	}
	var bud wcm3d.ATPGBudget
	switch budgetName {
	case "full":
		bud = wcm3d.DefaultBudget(seed)
	case "reduced":
		bud = wcm3d.ReducedBudget(seed)
	default:
		return fmt.Errorf("unknown budget %q", budgetName)
	}

	var methods []wcm3d.Method
	if compare {
		methods = []wcm3d.Method{wcm3d.MethodFullWrap, wcm3d.MethodLi, wcm3d.MethodAgrawal, wcm3d.MethodOurs}
	} else {
		m, err := wcm3d.ParseMethod(methodName)
		if err != nil {
			return err
		}
		methods = []wcm3d.Method{m}
	}

	info := service.DescribeDie(name, seed, die)
	var reports []*service.Report
	for _, m := range methods {
		res, err := wcm3d.Minimize(die, m, mode)
		if err != nil {
			return fmt.Errorf("%v: %w", m, err)
		}
		rep := service.EncodeResult(info, m, mode, res, die.Lib)
		viol, wns, err := wcm3d.CheckTiming(die, res.Assignment)
		if err != nil {
			return err
		}
		rep.SetSignoff(viol, wns)
		if runATPG {
			tb, err := wcm3d.EvaluateStuckAt(die, res.Assignment, bud)
			if err != nil {
				return err
			}
			// Tester time under a 4-chain scan architecture.
			chains, err := wcm3d.BuildScanChains(die, res.Assignment, 4)
			if err != nil {
				return err
			}
			rep.SetStuckAt(tb, chains.TestCycles(tb.Patterns))
		}
		reports = append(reports, rep)
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	}
	return renderText(w, die, info, reports)
}

func renderText(w io.Writer, die *wcm3d.Die, info service.DieInfo, reports []*service.Report) error {
	fmt.Fprintf(w, "die %s: %s\n", info.Name, dieStats(die))
	fmt.Fprintf(w, "clock %.1f ps (margin %.1f ps), placement %.0fx%.0f µm\n\n",
		info.ClockPS, info.MarginPS, info.WidthUM, info.HeightUM)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\treused FFs\tadded cells\tDFT area (µm²)\ttiming\tWNS (ps)\tstuck-at cov\t#patterns\ttest cycles")
	for _, rep := range reports {
		timingMark := "meets"
		if !rep.TimingMet {
			timingMark = "VIOLATES"
		}
		cov, pats, cycles := "-", "-", "-"
		if rep.StuckAt != nil {
			cov = fmt.Sprintf("%.2f%%", 100*rep.StuckAt.Coverage)
			pats = strconv.Itoa(rep.StuckAt.Patterns)
			cycles = strconv.Itoa(rep.TestCycles)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%s\t%.1f\t%s\t%s\t%s\n",
			rep.Method, rep.ReusedFFs, rep.AdditionalCells, rep.DFTAreaUM2,
			timingMark, rep.WNSPS, cov, pats, cycles)
	}
	return tw.Flush()
}

func loadDie(profile, netPath string, seed int64) (*wcm3d.Die, string, error) {
	switch {
	case profile != "":
		p, err := wcm3d.ProfileByName(profile)
		if err != nil {
			return nil, "", err
		}
		d, err := wcm3d.PrepareDie(p, seed)
		if err != nil {
			return nil, "", err
		}
		return d, p.Name(), nil
	case netPath != "":
		f, err := os.Open(netPath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		name := strings.TrimSuffix(netPath, ".bench")
		n, err := wcm3d.ParseNetlist(name, f)
		if err != nil {
			return nil, "", err
		}
		// Wrap the parsed die in a synthetic profile so the standard
		// preparation (placement, clocking, fault universes) applies.
		d, err := wcm3d.PrepareParsed(n, seed)
		if err != nil {
			return nil, "", err
		}
		return d, name, nil
	default:
		return nil, "", fmt.Errorf("pass -profile or -netlist")
	}
}

func dieStats(d *wcm3d.Die) string {
	return fmt.Sprintf("%d FFs, %d gates, %d inbound + %d outbound TSVs",
		len(d.Netlist.FlipFlops()), d.Netlist.NumLogicGates(),
		len(d.Netlist.InboundTSVs()), len(d.Netlist.OutboundTSVs()))
}
