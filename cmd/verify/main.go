// Command verify independently certifies a wrapper plan: it re-runs the
// minimization for a die, then hands the finished plan to the from-scratch
// checker in internal/verify, which re-derives every invariant the paper's
// flow promises (TSV coverage, clique validity, capacitance and distance
// budgets, per-reuse timing slack) without sharing code with the optimizer.
//
// Usage:
//
//	verify -profile b12/1                      # paper benchmark die
//	verify -netlist die.bench                  # your own die
//	verify -profile b18/2 -method agrawal -timing loose
//	verify -profile b12/1 -signoff             # + functional-mode STA
//	verify -profile b12/1 -deep                # + measured ATPG on overlaps
//	verify -profile b12/1 -json                # machine-readable report
//
// With -json the output is the same VerifyReport schema the wcmd daemon
// attaches to job results when asked with verify=true (internal/service),
// so CLI and service output stay in lockstep. The exit status is 0 for a
// certified plan and 1 when the verifier found violations (or failed to
// run), so the command slots directly into CI pipelines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wcm3d"
	"wcm3d/internal/service"
	"wcm3d/internal/verify"
)

func main() {
	var (
		profile = flag.String("profile", "", `Table II die, e.g. "b12/1"`)
		netPath = flag.String("netlist", "", "path to a .bench die (alternative to -profile)")
		method  = flag.String("method", "ours", "ours | agrawal | li | fullwrap")
		timing  = flag.String("timing", "tight", "tight | loose")
		seed    = flag.Int64("seed", 1, "generation / placement seed")
		signoff = flag.Bool("signoff", false, "also re-run functional-mode timing signoff")
		deep    = flag.Bool("deep", false, "also measure overlapped-cone sharing with ATPG (advisory)")
		oracle  = flag.Bool("oracle", false, "on tiny dies, also print the heuristic-vs-optimal cell delta (exhaustive oracle)")
		asJSON  = flag.Bool("json", false, "emit the machine-readable report (service schema)")
	)
	flag.Parse()
	ok, err := run(os.Stdout, *profile, *netPath, *method, *timing, *seed, *signoff, *deep, *oracle, *asJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verify:", err)
		os.Exit(1)
	}
	if !ok {
		os.Exit(1)
	}
}

func run(w io.Writer, profile, netPath, methodName, timingName string, seed int64, signoff, deep, oracle, asJSON bool) (bool, error) {
	die, name, err := loadDie(profile, netPath, seed)
	if err != nil {
		return false, err
	}
	m, err := wcm3d.ParseMethod(methodName)
	if err != nil {
		return false, err
	}
	mode, err := wcm3d.ParseTimingMode(timingName)
	if err != nil {
		return false, err
	}
	res, err := wcm3d.Minimize(die, m, mode)
	if err != nil {
		return false, fmt.Errorf("%v: %w", m, err)
	}
	vres, err := wcm3d.VerifyPlan(die, res, wcm3d.VerifyOptions{Signoff: signoff, Deep: deep})
	if err != nil {
		return false, err
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(service.EncodeVerify(vres)); err != nil {
			return false, err
		}
		return vres.OK(), nil
	}
	fmt.Fprintf(w, "die %s, method %s, timing %s: plan reuses %d FFs, adds %d cells\n",
		name, m, mode, res.ReusedFFs, res.AdditionalCells)
	fmt.Fprintln(w, vres.Summary())
	for _, v := range vres.Violations {
		fmt.Fprintf(w, "  violation: %s\n", v)
	}
	for _, v := range vres.Warnings {
		fmt.Fprintf(w, "  warning: %s\n", v)
	}
	if signoff {
		fmt.Fprintf(w, "functional-mode signoff WNS: %.1f ps\n", vres.SignoffWNSPS)
	}
	if oracle {
		reportOracleDelta(w, die, res)
	}
	return vres.OK(), nil
}

// reportOracleDelta compares the plan against the exhaustive oracle in
// replay mode (the oracle's second phase sees the flip-flop availability
// the heuristic left behind, making the comparison a per-phase optimality
// statement). The delta is informational: a gap reports how many cells
// greedy merging left on the table, it never changes the exit status. Dies
// past the oracle's exhaustive bound just report that they are out of
// range.
func reportOracleDelta(w io.Writer, die *wcm3d.Die, res *wcm3d.MinimizeResult) {
	if res.Options.Order == 0 {
		fmt.Fprintln(w, "oracle: not applicable — this method carries no threshold contract")
		return
	}
	in := die.Input()
	in.RefreshTiming = nil // the oracle prices both phases against the base analysis
	var replayed []wcm3d.SignalID
	if len(res.Phases) > 0 && res.Phases[0].Inbound {
		for _, g := range res.Assignment.Control {
			if g.Reused() {
				replayed = append(replayed, g.ReusedFF)
			}
		}
	} else if len(res.Phases) > 0 {
		for _, g := range res.Assignment.Observe {
			if g.Reused() {
				replayed = append(replayed, g.ReusedFF)
			}
		}
	}
	orc, err := verify.Oracle(in, res.Options, verify.OracleOptions{ReplayConsumption: replayed})
	if err != nil {
		fmt.Fprintf(w, "oracle: out of range for this die (%v)\n", err)
		return
	}
	delta := res.AdditionalCells - orc.AdditionalCells
	switch {
	case delta > 0:
		fmt.Fprintf(w, "oracle: optimal needs %d cells, heuristic inserted %d — %d on the table (try the refine portfolio)\n",
			orc.AdditionalCells, res.AdditionalCells, delta)
	case delta == 0:
		fmt.Fprintf(w, "oracle: heuristic is optimal on this die (%d cells)\n", res.AdditionalCells)
	default:
		fmt.Fprintf(w, "oracle: heuristic beat the oracle by %d cells — this is a bug, please report it\n", -delta)
	}
}

func loadDie(profile, netPath string, seed int64) (*wcm3d.Die, string, error) {
	switch {
	case profile != "" && netPath != "":
		return nil, "", fmt.Errorf("pass -profile or -netlist, not both")
	case profile != "":
		p, err := wcm3d.ProfileByName(profile)
		if err != nil {
			return nil, "", err
		}
		d, err := wcm3d.PrepareDie(p, seed)
		if err != nil {
			return nil, "", err
		}
		return d, p.Name(), nil
	case netPath != "":
		f, err := os.Open(netPath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		name := strings.TrimSuffix(netPath, ".bench")
		n, err := wcm3d.ParseNetlist(name, f)
		if err != nil {
			return nil, "", err
		}
		d, err := wcm3d.PrepareParsed(n, seed)
		if err != nil {
			return nil, "", err
		}
		return d, name, nil
	default:
		return nil, "", fmt.Errorf("pass -profile or -netlist")
	}
}
