package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wcm3d/internal/netgen"
)

// writeTinyDie generates a die small enough for the exhaustive oracle and
// writes it as a .bench file the CLI can load with -netlist.
func writeTinyDie(t *testing.T, seed int64) string {
	t.Helper()
	n, err := netgen.Random(netgen.RandomOptions{
		Gates: 120, FFs: 12, PIs: 4, POs: 2,
		InboundTSVs: 4, OutboundTSVs: 3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny.bench")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := n.Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunOracleDelta certifies a tiny die and asks for the oracle delta:
// the report must state either optimality or a concrete cell gap, and a
// gap never flips the exit status.
func TestRunOracleDelta(t *testing.T) {
	path := writeTinyDie(t, 7)
	var buf bytes.Buffer
	ok, err := run(&buf, "", path, "ours", "tight", 7, false, false, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("tiny die failed verification:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "oracle:") {
		t.Fatalf("missing oracle line:\n%s", out)
	}
	if strings.Contains(out, "this is a bug") {
		t.Fatalf("heuristic beat the oracle:\n%s", out)
	}
	if !strings.Contains(out, "optimal") && !strings.Contains(out, "on the table") &&
		!strings.Contains(out, "out of range") {
		t.Fatalf("oracle line carries no verdict:\n%s", out)
	}
}

// TestRunOracleOutOfRange holds the -oracle path on a paper-size die to
// its contract: the die exceeds the exhaustive bound, the report says so,
// and the verification outcome is untouched.
func TestRunOracleOutOfRange(t *testing.T) {
	var buf bytes.Buffer
	ok, err := run(&buf, "b11/0", "", "ours", "tight", 1, false, false, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("plan failed verification:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "oracle:") {
		t.Fatalf("missing oracle line:\n%s", out)
	}
}

// TestRunOracleSkipsThresholdFreeMethods: li carries no threshold
// contract, so the oracle line must say "not applicable".
func TestRunOracleSkipsThresholdFreeMethods(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(&buf, "b11/0", "", "li", "tight", 1, false, false, true, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "not applicable") {
		t.Fatalf("missing not-applicable verdict:\n%s", buf.String())
	}
}
