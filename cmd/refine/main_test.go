package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"wcm3d/internal/service"
)

// TestRunTextOutput exercises the full CLI path on a small paper die and
// holds the text report to its contract: a greedy baseline line, a refined
// line, and one statistics line per racing solver.
func TestRunTextOutput(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, "b11/0", "", "ours", "tight", 1, 2*time.Second, 0, "", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "greedy plan adds") {
		t.Fatalf("missing greedy baseline line:\n%s", out)
	}
	if !strings.Contains(out, "refined:") {
		t.Fatalf("missing refined line:\n%s", out)
	}
	for _, s := range []string{"local", "anneal", "bnb"} {
		if !strings.Contains(out, s) {
			t.Fatalf("missing %s statistics line:\n%s", s, out)
		}
	}
}

// TestRunJSONSchema asserts -json emits the service RefineReport schema and
// that the refined plan is never worse than greedy.
func TestRunJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, "b11/0", "", "ours", "tight", 1, 2*time.Second, 0, "local", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	var rep service.RefineReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not a RefineReport: %v\n%s", err, buf.String())
	}
	if rep.GreedyCells <= 0 {
		t.Fatalf("greedy cells = %d", rep.GreedyCells)
	}
	if rep.AdditionalCells > rep.GreedyCells {
		t.Fatalf("refined plan is worse than greedy: %d > %d", rep.AdditionalCells, rep.GreedyCells)
	}
	if len(rep.Strategies) != 1 || rep.Strategies[0].Name != "local" {
		t.Fatalf("strategy subset not honored: %+v", rep.Strategies)
	}
}

// TestRunRejectsThresholdFreeMethods holds the CLI to its documented
// refusal: li and fullwrap carry no sharing model to refine.
func TestRunRejectsThresholdFreeMethods(t *testing.T) {
	for _, m := range []string{"li", "fullwrap"} {
		var buf bytes.Buffer
		if err := run(&buf, "b11/0", "", m, "tight", 1, time.Second, 0, "", 0, false); err == nil {
			t.Fatalf("method %s was accepted", m)
		}
	}
}
