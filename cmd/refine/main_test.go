package main

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"wcm3d"
	"wcm3d/internal/service"
)

// TestRunTextOutput exercises the full CLI path on a small paper die and
// holds the text report to its contract: a greedy baseline line, a refined
// line, and one statistics line per racing solver.
func TestRunTextOutput(t *testing.T) {
	var buf bytes.Buffer
	ro := wcm3d.RefineOptions{Seed: 1, Budget: 2 * time.Second}
	err := run(&buf, "b11/0", "", "ours", "tight", ro, "", false)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "greedy plan adds") {
		t.Fatalf("missing greedy baseline line:\n%s", out)
	}
	if !strings.Contains(out, "refined:") {
		t.Fatalf("missing refined line:\n%s", out)
	}
	for _, s := range []string{"local", "anneal", "bnb", "lns"} {
		if !strings.Contains(out, s) {
			t.Fatalf("missing %s statistics line:\n%s", s, out)
		}
	}
}

// TestRunJSONSchema asserts -json emits the service RefineReport schema and
// that the refined plan is never worse than greedy.
func TestRunJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	ro := wcm3d.RefineOptions{Seed: 1, Budget: 2 * time.Second}
	err := run(&buf, "b11/0", "", "ours", "tight", ro, "local", true)
	if err != nil {
		t.Fatal(err)
	}
	var rep service.RefineReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not a RefineReport: %v\n%s", err, buf.String())
	}
	if rep.GreedyCells <= 0 {
		t.Fatalf("greedy cells = %d", rep.GreedyCells)
	}
	if rep.AdditionalCells > rep.GreedyCells {
		t.Fatalf("refined plan is worse than greedy: %d > %d", rep.AdditionalCells, rep.GreedyCells)
	}
	if len(rep.Strategies) != 1 || rep.Strategies[0].Name != "local" {
		t.Fatalf("strategy subset not honored: %+v", rep.Strategies)
	}
}

// TestRunRejectsThresholdFreeMethods holds the CLI to its documented
// refusal: li and fullwrap carry no sharing model to refine.
func TestRunRejectsThresholdFreeMethods(t *testing.T) {
	for _, m := range []string{"li", "fullwrap"} {
		var buf bytes.Buffer
		ro := wcm3d.RefineOptions{Seed: 1, Budget: time.Second}
		if err := run(&buf, "b11/0", "", m, "tight", ro, "", false); err == nil {
			t.Fatalf("method %s was accepted", m)
		}
	}
}

// TestParseStrategies pins the CLI's list splitting: blanks drop, spacing
// is forgiven, and semantics (dedupe, unknown names) are left to the
// portfolio.
func TestParseStrategies(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"local", []string{"local"}},
		{"local, lns", []string{"local", "lns"}},
		{" local ,, anneal ,", []string{"local", "anneal"}},
		{"local,local", []string{"local", "local"}}, // dedupe is the portfolio's job
	}
	for _, tc := range cases {
		if got := parseStrategies(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseStrategies(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestRunStrategyList pins the end-to-end rules: duplicate names are
// accepted (collapsed downstream) and unknown names surface the
// portfolio's error naming the known set.
func TestRunStrategyList(t *testing.T) {
	t.Run("duplicates collapse", func(t *testing.T) {
		var buf bytes.Buffer
		ro := wcm3d.RefineOptions{Seed: 1, Budget: 2 * time.Second}
		if err := run(&buf, "b11/0", "", "ours", "tight", ro, "local,local", true); err != nil {
			t.Fatal(err)
		}
		var rep service.RefineReport
		if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		if len(rep.Strategies) != 1 || rep.Strategies[0].Name != "local" {
			t.Fatalf("duplicate names did not collapse: %+v", rep.Strategies)
		}
	})
	t.Run("unknown name errors", func(t *testing.T) {
		var buf bytes.Buffer
		ro := wcm3d.RefineOptions{Seed: 1, Budget: time.Second}
		err := run(&buf, "b11/0", "", "ours", "tight", ro, "bogus", false)
		if err == nil || !strings.Contains(err.Error(), `unknown strategy "bogus"`) {
			t.Fatalf("err = %v, want unknown-strategy error", err)
		}
	})
}
