// Command refine runs the anytime solver portfolio over a greedy
// minimization result: deterministic local search, seeded simulated
// annealing, bounded branch-and-bound, and large-neighborhood
// destroy/repair race under one wall budget, and the best plan that passes
// the independent verifier wins. The output is the before/after cell count
// plus each solver's search statistics.
//
// Usage:
//
//	refine -profile b12/1                        # paper benchmark die
//	refine -netlist die.bench                    # your own die
//	refine -profile b12/1 -budget 10s -seed 7    # deeper, reproducible
//	refine -profile b12/1 -strategies local,lns  # subset of the portfolio
//	refine -profile b20/1 -candidates 32         # wider merge candidate lists
//	refine -profile b12/1 -crosscheck            # audit the incremental evaluator
//	refine -profile b12/1 -json                  # machine-readable report
//
// With -json the output is the same RefineReport schema the wcmd daemon
// attaches to job results when asked with refine=true (internal/service).
// Methods without a threshold contract (li, fullwrap) carry no sharing
// model to refine and are rejected. The exit status is 0 whether or not
// the portfolio improved the plan; it is 1 only when the run itself
// failed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wcm3d"
	"wcm3d/internal/service"
)

func main() {
	var (
		profile    = flag.String("profile", "", `Table II die, e.g. "b12/1"`)
		netPath    = flag.String("netlist", "", "path to a .bench die (alternative to -profile)")
		method     = flag.String("method", "ours", "ours | agrawal (li and fullwrap have no threshold contract)")
		timing     = flag.String("timing", "tight", "tight | loose")
		seed       = flag.Int64("seed", 1, "generation / placement seed; also drives the annealer RNG")
		budget     = flag.Duration("budget", 0, "wall budget for the portfolio (0 = default)")
		steps      = flag.Int("steps", 0, "per-strategy step budget (0 = per-strategy default; fixed steps make runs reproducible)")
		strategies = flag.String("strategies", "", `comma-separated subset of "local,anneal,bnb,lns" (empty = all; duplicates collapse)`)
		workers    = flag.Int("workers", 0, "solver parallelism (0 = GOMAXPROCS)")
		candidates = flag.Int("candidates", 0, "merge-partner candidate list size per block (0 = default)")
		restarts   = flag.Int("restarts", 0, "restart rounds for local search / reheat segments for anneal (0 = per-strategy default)")
		crosscheck = flag.Bool("crosscheck", false, "audit every incremental move against a full rematch (slow; debug)")
		asJSON     = flag.Bool("json", false, "emit the machine-readable report (service schema)")
	)
	flag.Parse()
	ro := wcm3d.RefineOptions{
		Budget:     *budget,
		Seed:       *seed,
		MaxSteps:   *steps,
		Workers:    *workers,
		CandidateK: *candidates,
		Restarts:   *restarts,
		CrossCheck: *crosscheck,
	}
	if err := run(os.Stdout, *profile, *netPath, *method, *timing, ro, *strategies, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "refine:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, profile, netPath, methodName, timingName string, ro wcm3d.RefineOptions, strategyList string, asJSON bool) error {
	seed := ro.Seed
	die, name, err := loadDie(profile, netPath, seed)
	if err != nil {
		return err
	}
	m, err := wcm3d.ParseMethod(methodName)
	if err != nil {
		return err
	}
	mode, err := wcm3d.ParseTimingMode(timingName)
	if err != nil {
		return err
	}
	var opts wcm3d.MinimizeOptions
	switch m {
	case wcm3d.MethodOurs:
		opts = wcm3d.OurOptions(die, mode)
	case wcm3d.MethodAgrawal:
		opts = wcm3d.AgrawalOptions(die, mode)
	default:
		return fmt.Errorf("method %v carries no threshold contract to refine against", m)
	}
	res, err := wcm3d.MinimizeWith(die, opts)
	if err != nil {
		return fmt.Errorf("%v: %w", m, err)
	}
	ro.Strategies = parseStrategies(strategyList)
	rr, err := wcm3d.Refine(context.Background(), die, opts, res, ro)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(service.EncodeRefine(rr))
	}
	fmt.Fprintf(w, "die %s, method %s, timing %s: greedy plan adds %d cells\n",
		name, m, mode, rr.GreedyCells)
	if rr.Improved {
		fmt.Fprintf(w, "refined: %d cells (saved %d), %d FFs reused — won by %s\n",
			rr.AdditionalCells, rr.CellsSaved, rr.ReusedFFs, rr.Strategy)
	} else {
		fmt.Fprintln(w, "refined: no verified improvement found within budget")
	}
	for _, so := range rr.Strategies {
		line := fmt.Sprintf("  %-6s %d steps, %d proposed, %d admitted, %d rejected",
			so.Name, so.Steps, so.Proposed, so.Admitted, so.Rejected)
		if so.Stale > 0 {
			line += fmt.Sprintf(", %d stale", so.Stale)
		}
		if so.Deadline {
			line += " (deadline)"
		}
		if so.Err != "" {
			line += " error: " + so.Err
		}
		fmt.Fprintln(w, line)
	}
	return nil
}

// parseStrategies splits a comma-separated -strategies value, dropping
// blanks; validation (unknown names, duplicate collapsing) happens in the
// portfolio itself so CLI and service agree on the rules.
func parseStrategies(list string) []string {
	var out []string
	for _, s := range strings.Split(list, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

func loadDie(profile, netPath string, seed int64) (*wcm3d.Die, string, error) {
	switch {
	case profile != "" && netPath != "":
		return nil, "", fmt.Errorf("pass -profile or -netlist, not both")
	case profile != "":
		p, err := wcm3d.ProfileByName(profile)
		if err != nil {
			return nil, "", err
		}
		d, err := wcm3d.PrepareDie(p, seed)
		if err != nil {
			return nil, "", err
		}
		return d, p.Name(), nil
	case netPath != "":
		f, err := os.Open(netPath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		name := strings.TrimSuffix(netPath, ".bench")
		n, err := wcm3d.ParseNetlist(name, f)
		if err != nil {
			return nil, "", err
		}
		d, err := wcm3d.PrepareParsed(n, seed)
		if err != nil {
			return nil, "", err
		}
		return d, name, nil
	default:
		return nil, "", fmt.Errorf("pass -profile or -netlist")
	}
}
