package main

// End-to-end crash tests against the real wcmd binary: kill -9 a daemon
// mid-burst and assert the WAL-replay + cluster contracts — no
// acknowledged job is ever lost, and every one reaches a terminal state
// exactly once.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"wcm3d/internal/service"
)

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// wcmdBinary builds the real daemon once per test process.
func wcmdBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "wcmd-bin-")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "wcmd")
		cmd := exec.Command("go", "build", "-o", buildBin, ".")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildBin
}

// freePorts reserves n distinct loopback ports and releases them for the
// daemons to bind (a small bind race, fine for tests).
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	liss := make([]net.Listener, n)
	for i := range ports {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		liss[i] = lis
		ports[i] = lis.Addr().(*net.TCPAddr).Port
	}
	for _, lis := range liss {
		lis.Close()
	}
	return ports
}

// daemon is one wcmd process under test.
type daemon struct {
	cmd *exec.Cmd
	url string
}

func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if testing.Verbose() {
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd}
	t.Cleanup(func() {
		if d.cmd.Process != nil {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
	})
	return d
}

func waitHealthy(t *testing.T, url string, within time.Duration) {
	t.Helper()
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		resp, err := client.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became healthy", url)
}

// submitRetry posts one job, rotating across the entry URLs on transient
// failures (the preferred entry or a redirect target may be down or
// mid-failover), and returns the accepted status plus the URL of the node
// that acknowledged it.
func submitRetry(t *testing.T, entries []string, body string, within time.Duration) (service.JobStatus, string, bool) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(within)
	for attempt := 0; time.Now().Before(deadline); attempt++ {
		entry := entries[attempt%len(entries)]
		resp, err := client.Post(entry+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted {
			var st service.JobStatus
			if err := json.Unmarshal(raw, &st); err != nil {
				t.Fatalf("bad accept body: %v: %s", err, raw)
			}
			return st, "http://" + resp.Request.URL.Host, true
		}
		time.Sleep(50 * time.Millisecond)
	}
	return service.JobStatus{}, "", false
}

// terminalState polls one job until it leaves queued/running.
func terminalState(t *testing.T, nodeURL, id string, within time.Duration) string {
	t.Helper()
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		resp, err := client.Get(nodeURL + "/v1/jobs/" + id)
		if err == nil {
			var st service.JobStatus
			ok := json.NewDecoder(resp.Body).Decode(&st) == nil && resp.StatusCode == http.StatusOK
			resp.Body.Close()
			if ok {
				switch st.State {
				case service.StateDone, service.StateFailed, service.StateCanceled:
					return st.State
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %s on %s never reached a terminal state", id, nodeURL)
	return ""
}

// TestKillDashNineLosesNoJobs: kill -9 a WAL-backed daemon in the middle
// of a 50-job burst, restart it on the same -wal-dir, and require every
// acknowledged job to reach a terminal state exactly once.
func TestKillDashNineLosesNoJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon")
	}
	bin := wcmdBinary(t)
	walDir := t.TempDir()
	port := freePorts(t, 1)[0]
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	url := "http://" + addr
	args := []string{"-addr", addr, "-wal-dir", walDir, "-workers", "2", "-queue", "128"}

	d := startDaemon(t, bin, args...)
	waitHealthy(t, url, 15*time.Second)

	// Fire the burst; SIGKILL lands mid-flight after job 25 is accepted.
	const burst = 50
	var ids []string
	for i := 1; i <= burst; i++ {
		st, _, ok := submitRetry(t, []string{url}, `{"profile":"b11/0","seed":1}`, 10*time.Second)
		if !ok {
			t.Fatalf("submission %d never accepted", i)
		}
		ids = append(ids, st.ID)
		if i == burst/2 {
			if err := d.cmd.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
			d.cmd.Wait()
			break
		}
	}
	accepted := len(ids)
	if accepted != burst/2 {
		t.Fatalf("accepted %d jobs before the kill, want %d", accepted, burst/2)
	}

	// Restart on the same WAL; the rest of the burst lands on the new
	// process to prove recovery and live traffic coexist.
	d2 := startDaemon(t, bin, args...)
	_ = d2
	waitHealthy(t, url, 15*time.Second)
	for i := accepted + 1; i <= burst; i++ {
		st, _, ok := submitRetry(t, []string{url}, `{"profile":"b11/0","seed":1}`, 10*time.Second)
		if !ok {
			t.Fatalf("post-restart submission %d never accepted", i)
		}
		ids = append(ids, st.ID)
	}

	// Zero lost: every acknowledged id — including every pre-kill one —
	// reaches done. Exactly once: ids are unique, and recovery reused the
	// original ids rather than minting duplicates.
	seen := make(map[string]bool)
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("job id %s handed out twice across the crash", id)
		}
		seen[id] = true
		if st := terminalState(t, url, id, 2*time.Minute); st != service.StateDone {
			t.Fatalf("job %s ended %q after crash recovery", id, st)
		}
	}
	if len(seen) != burst {
		t.Fatalf("tracked %d unique jobs, want %d", len(seen), burst)
	}
}

// TestClusterKillNodeChaos: a 3-node loopback cluster with stealing on;
// SIGKILL one node mid-batch, restart it on its WAL, and require every
// acknowledged job to complete exactly once somewhere.
func TestClusterKillNodeChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real daemons")
	}
	bin := wcmdBinary(t)
	ports := freePorts(t, 3)
	urls := make([]string, 3)
	peerSpec := make([]string, 3)
	for i, p := range ports {
		urls[i] = fmt.Sprintf("http://127.0.0.1:%d", p)
		peerSpec[i] = fmt.Sprintf("n%d=%s", i+1, urls[i])
	}
	peersFlag := strings.Join(peerSpec, ",")
	walDirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	nodeArgs := func(i int) []string {
		return []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-node-id", fmt.Sprintf("n%d", i+1),
			"-peers", peersFlag,
			"-wal-dir", walDirs[i],
			"-workers", "2", "-queue", "128",
			"-steal-interval", "200ms",
		}
	}
	daemons := make([]*daemon, 3)
	for i := range daemons {
		daemons[i] = startDaemon(t, bin, nodeArgs(i)...)
	}
	for _, u := range urls {
		waitHealthy(t, u, 20*time.Second)
	}

	// First half of the batch with all three nodes up; distinct seeds so
	// the keys spread over the shard map.
	const batch = 30
	type placed struct{ id, acker string }
	var jobs []placed
	submit := func(i int) {
		// Prefer a rotating entry node but fall back to the others when
		// it (or its redirect target) is down.
		entries := []string{urls[i%3], urls[(i+1)%3], urls[(i+2)%3]}
		st, acker, ok := submitRetry(t, entries,
			fmt.Sprintf(`{"profile":"b11/0","seed":%d}`, i), 30*time.Second)
		if !ok {
			t.Fatalf("job %d never accepted anywhere", i)
		}
		jobs = append(jobs, placed{st.ID, acker})
	}
	for i := 1; i <= batch/2; i++ {
		submit(i)
	}

	// kill -9 node 2 mid-batch and keep submitting: entries retry, the
	// dead node's shards fail over once its peers declare it dead.
	if err := daemons[1].cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	daemons[1].cmd.Wait()
	for i := batch/2 + 1; i <= batch; i++ {
		submit(i)
	}

	// Restart the killed node on its WAL: jobs it had acknowledged replay
	// and drain (locally or stolen by the idle survivors).
	daemons[1] = startDaemon(t, bin, nodeArgs(1)...)
	waitHealthy(t, urls[1], 20*time.Second)

	// Every acknowledged job reaches done exactly once, queried on the
	// node that acknowledged it.
	seen := make(map[string]int)
	for _, p := range jobs {
		seen[p.acker+"/"+p.id]++
		if st := terminalState(t, p.acker, p.id, 2*time.Minute); st != service.StateDone {
			t.Fatalf("job %s on %s ended %q", p.id, p.acker, st)
		}
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("job %s acknowledged %d times", k, n)
		}
	}
	if len(jobs) != batch {
		t.Fatalf("placed %d jobs, want %d", len(jobs), batch)
	}
}
