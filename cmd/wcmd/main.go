// Command wcmd is the WCM-as-a-service daemon: it serves wrapper-cell
// minimization over HTTP/JSON, amortizing expensive die preparation across
// requests with an LRU cache and running jobs on a bounded worker pool
// with backpressure.
//
// Usage:
//
//	wcmd -addr :8080 -workers 8 -queue 64 -cache 16
//	wcmd -pprof-addr localhost:6060   # expose net/http/pprof on a side listener
//
// Quick start:
//
//	curl -s -X POST localhost:8080/v1/jobs \
//	    -d '{"profile":"b12/1","method":"ours","timing":"tight"}'
//	curl -s localhost:8080/v1/jobs/j-000001
//	curl -s localhost:8080/metrics
//
// See docs/SERVICE.md for the full API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wcm3d/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "job queue depth (full queue returns 429)")
		cache   = flag.Int("cache", 16, "prepared-die LRU cache capacity")
		drain   = flag.Duration("drain", 30*time.Second, "shutdown drain deadline")

		retention   = flag.Duration("retention", time.Hour, "how long a finished job stays queryable")
		maxFinished = flag.Int("max-finished", 1024, "finished jobs retained beyond the TTL sweep")
		gcInterval  = flag.Duration("gc-interval", time.Minute, "retention sweep period")
		maxTimeout  = flag.Duration("max-timeout", 10*time.Minute, "server-side cap on per-job/per-schedule timeout_ms")
		schedConc   = flag.Int("schedule-concurrency", 0, "concurrent schedule runs before 429 (0 = workers)")

		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")

		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second, "deadline for reading request headers (slowloris guard)")
		readTimeout       = flag.Duration("read-timeout", 30*time.Second, "deadline for reading a whole request")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection deadline")
	)
	flag.Parse()
	cfg := service.Config{
		Workers:             *workers,
		QueueDepth:          *queue,
		CacheCapacity:       *cache,
		RetentionTTL:        *retention,
		MaxFinished:         *maxFinished,
		GCInterval:          *gcInterval,
		MaxTimeout:          *maxTimeout,
		ScheduleConcurrency: *schedConc,
	}
	if err := run(*addr, *pprofAddr, cfg, *drain, timeouts{
		readHeader: *readHeaderTimeout,
		read:       *readTimeout,
		idle:       *idleTimeout,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "wcmd:", err)
		os.Exit(1)
	}
}

// timeouts bounds how long a client may hold a connection without making
// progress. Go's zero-value http.Server waits forever on all three, so a
// handful of slow-header connections could pin the daemon's file
// descriptors indefinitely (slowloris); these defaults cap that. No write
// timeout: schedule reports are computed synchronously and a fixed write
// deadline would kill legitimately long responses.
type timeouts struct {
	readHeader time.Duration
	read       time.Duration
	idle       time.Duration
}

func run(addr, pprofAddr string, cfg service.Config, drain time.Duration, to timeouts) error {
	svc := service.New(cfg)
	pprofSrv, err := startPprof(pprofAddr, to)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: to.readHeader,
		ReadTimeout:       to.read,
		IdleTimeout:       to.idle,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("wcmd: listening on %s", addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	return serve(svc, srv, pprofSrv, errc, sig, drain)
}

// startPprof binds the profiling side listener up front — so a bad
// -pprof-addr is a startup error, not a log line — and returns the server
// so shutdown can close it. Profiling endpoints live on their own
// listener, typically bound to localhost, so they are never reachable
// through the service address; the handlers are registered on a private
// mux rather than relying on net/http/pprof's DefaultServeMux side effect.
func startPprof(addr string, to timeouts) (*http.Server, error) {
	if addr == "" {
		return nil, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux, ReadHeaderTimeout: to.readHeader}
	go func() {
		log.Printf("wcmd: pprof listening on %s", ln.Addr())
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("wcmd: pprof listener: %v", err)
		}
	}()
	return srv, nil
}

// serve blocks until a fatal listener error or the shutdown signal
// sequence: the first signal starts a graceful drain under the deadline,
// and a second signal during the drain forces immediate shutdown by
// cancelling the drain context — the abandoned jobs are logged on the way
// down.
func serve(svc *service.Service, srv, pprofSrv *http.Server, errc <-chan error, sig <-chan os.Signal, drain time.Duration) error {
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		log.Printf("wcmd: %v — draining (deadline %s; signal again to force shutdown)", s, drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	type drained struct {
		rep service.DrainReport
		err error
	}
	done := make(chan drained, 1)
	go func() {
		rep, err := svc.Shutdown(ctx)
		done <- drained{rep, err}
	}()
	var d drained
	select {
	case d = <-done:
	case s := <-sig:
		log.Printf("wcmd: second %v — forcing immediate shutdown", s)
		cancel()
		d = <-done
	}
	log.Printf("wcmd: drained: %d done, %d failed, %d canceled", d.rep.Done, d.rep.Failed, d.rep.Canceled)
	if d.err != nil {
		log.Printf("wcmd: drain cut short (%v): %d jobs abandoned as canceled", d.err, d.rep.Canceled)
	}
	if pprofSrv != nil {
		_ = pprofSrv.Close()
	}
	return srv.Shutdown(context.Background())
}
