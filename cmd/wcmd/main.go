// Command wcmd is the WCM-as-a-service daemon: it serves wrapper-cell
// minimization over HTTP/JSON, amortizing expensive die preparation across
// requests with an LRU cache and running jobs on a bounded worker pool
// with backpressure.
//
// Usage:
//
//	wcmd -addr :8080 -workers 8 -queue 64 -cache 16
//	wcmd -pprof-addr localhost:6060   # expose net/http/pprof on a side listener
//	wcmd -wal-dir /var/lib/wcmd/wal   # durable job log + crash recovery
//	wcmd -node-id n1 -peers n1=http://h1:8080,n2=http://h2:8080 \
//	     -wal-dir /var/lib/wcmd/wal   # clustered: sharded die cache + stealing
//
// Quick start:
//
//	curl -s -X POST localhost:8080/v1/jobs \
//	    -d '{"profile":"b12/1","method":"ours","timing":"tight"}'
//	curl -s localhost:8080/v1/jobs/j-000001
//	curl -s localhost:8080/metrics
//
// See docs/SERVICE.md for the full API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wcm3d/internal/cluster"
	"wcm3d/internal/service"
	"wcm3d/internal/wal"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "job queue depth (full queue returns 429)")
		cache   = flag.Int("cache", 16, "prepared-die LRU cache capacity")
		drain   = flag.Duration("drain", 30*time.Second, "shutdown drain deadline")

		retention   = flag.Duration("retention", time.Hour, "how long a finished job stays queryable")
		maxFinished = flag.Int("max-finished", 1024, "finished jobs retained beyond the TTL sweep")
		gcInterval  = flag.Duration("gc-interval", time.Minute, "retention sweep period")
		maxTimeout  = flag.Duration("max-timeout", 10*time.Minute, "server-side cap on per-job/per-schedule timeout_ms")
		schedConc   = flag.Int("schedule-concurrency", 0, "concurrent schedule runs before 429 (0 = workers)")

		walDir = flag.String("wal-dir", "", "write-ahead job log directory; empty disables durability")

		nodeID        = flag.String("node-id", "", "this node's id in -peers (required with -peers)")
		peers         = flag.String("peers", "", "static cluster membership as id=url,id=url,...; empty runs single-node")
		stealInterval = flag.Duration("steal-interval", time.Second, "work-stealing poll period when clustered (0 disables stealing)")

		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")

		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second, "deadline for reading request headers (slowloris guard)")
		readTimeout       = flag.Duration("read-timeout", 30*time.Second, "deadline for reading a whole request")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection deadline")
	)
	flag.Parse()
	cfg := service.Config{
		Workers:             *workers,
		QueueDepth:          *queue,
		CacheCapacity:       *cache,
		RetentionTTL:        *retention,
		MaxFinished:         *maxFinished,
		GCInterval:          *gcInterval,
		MaxTimeout:          *maxTimeout,
		ScheduleConcurrency: *schedConc,
	}
	if err := runNode(nodeOptions{
		addr:      *addr,
		pprofAddr: *pprofAddr,
		cfg:       cfg,
		drain:     *drain,
		to: timeouts{
			readHeader: *readHeaderTimeout,
			read:       *readTimeout,
			idle:       *idleTimeout,
		},
		walDir:        *walDir,
		nodeID:        *nodeID,
		peers:         *peers,
		stealInterval: *stealInterval,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "wcmd:", err)
		os.Exit(1)
	}
}

// timeouts bounds how long a client may hold a connection without making
// progress. Go's zero-value http.Server waits forever on all three, so a
// handful of slow-header connections could pin the daemon's file
// descriptors indefinitely (slowloris); these defaults cap that. No write
// timeout: schedule reports are computed synchronously and a fixed write
// deadline would kill legitimately long responses.
type timeouts struct {
	readHeader time.Duration
	read       time.Duration
	idle       time.Duration
}

// run starts a plain single-node daemon (no WAL, no cluster) — the
// pre-durability behavior, kept as the simple entry point for tests.
func run(addr, pprofAddr string, cfg service.Config, drain time.Duration, to timeouts) error {
	return runNode(nodeOptions{addr: addr, pprofAddr: pprofAddr, cfg: cfg, drain: drain, to: to})
}

// nodeOptions is everything runNode needs to boot one daemon: the core
// service config plus the durability (walDir) and clustering (nodeID,
// peers, stealInterval) settings, each independently optional.
type nodeOptions struct {
	addr, pprofAddr string
	cfg             service.Config
	drain           time.Duration
	to              timeouts
	walDir          string
	nodeID          string
	peers           string
	stealInterval   time.Duration
}

func runNode(o nodeOptions) error {
	// Durability first: the WAL replays before any traffic is accepted, so
	// recovered jobs get their original ids back before new submissions
	// can claim them.
	var jl *wal.Log
	var rec service.Recovery
	if o.walDir != "" {
		var err error
		jl, rec, err = wal.Open(o.walDir, wal.Options{Retention: o.cfg.RetentionTTL})
		if err != nil {
			return fmt.Errorf("open wal %s: %w", o.walDir, err)
		}
		defer jl.Close()
		o.cfg.Journal = jl
		if rec.Corrupted > 0 {
			log.Printf("wcmd: wal: %d segment(s) had a torn or corrupt tail; damaged records discarded", rec.Corrupted)
		}
	}
	o.cfg.Logf = log.Printf
	svc := service.New(o.cfg)
	if o.walDir != "" {
		requeued, restored, err := svc.Recover(rec)
		if err != nil {
			return fmt.Errorf("wal recovery: %w", err)
		}
		if requeued+restored > 0 {
			log.Printf("wcmd: wal: recovered %d job(s): %d re-queued for execution, %d restored finished", requeued+restored, requeued, restored)
		}
	}

	// Clustering second: attach before Handler so the cluster routes exist.
	var cl *cluster.Cluster
	if o.peers != "" {
		if o.nodeID == "" {
			return errors.New("-peers requires -node-id")
		}
		ps, err := cluster.ParsePeers(o.peers)
		if err != nil {
			return err
		}
		cl, err = cluster.New(cluster.Options{
			Self:          o.nodeID,
			Peers:         ps,
			Svc:           svc,
			Logf:          log.Printf,
			StealInterval: o.stealInterval,
		})
		if err != nil {
			return err
		}
		defer cl.Close()
		svc.AttachCluster(cl)
		log.Printf("wcmd: cluster: node %s of %d peers (stealing %s)", o.nodeID, len(ps),
			map[bool]string{true: "on, every " + o.stealInterval.String(), false: "off"}[o.stealInterval > 0])
	}

	pprofSrv, err := startPprof(o.pprofAddr, o.to)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              o.addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: o.to.readHeader,
		ReadTimeout:       o.to.read,
		IdleTimeout:       o.to.idle,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("wcmd: listening on %s", o.addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	return serve(svc, srv, pprofSrv, errc, sig, o.drain)
}

// startPprof binds the profiling side listener up front — so a bad
// -pprof-addr is a startup error, not a log line — and returns the server
// so shutdown can close it. Profiling endpoints live on their own
// listener, typically bound to localhost, so they are never reachable
// through the service address; the handlers are registered on a private
// mux rather than relying on net/http/pprof's DefaultServeMux side effect.
func startPprof(addr string, to timeouts) (*http.Server, error) {
	if addr == "" {
		return nil, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux, ReadHeaderTimeout: to.readHeader}
	go func() {
		log.Printf("wcmd: pprof listening on %s", ln.Addr())
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("wcmd: pprof listener: %v", err)
		}
	}()
	return srv, nil
}

// serve blocks until a fatal listener error or the shutdown signal
// sequence: the first signal starts a graceful drain under the deadline,
// and a second signal during the drain forces immediate shutdown by
// cancelling the drain context — the abandoned jobs are logged on the way
// down.
func serve(svc *service.Service, srv, pprofSrv *http.Server, errc <-chan error, sig <-chan os.Signal, drain time.Duration) error {
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		log.Printf("wcmd: %v — draining (deadline %s; signal again to force shutdown)", s, drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	type drained struct {
		rep service.DrainReport
		err error
	}
	done := make(chan drained, 1)
	go func() {
		rep, err := svc.Shutdown(ctx)
		done <- drained{rep, err}
	}()
	var d drained
	select {
	case d = <-done:
	case s := <-sig:
		log.Printf("wcmd: second %v — forcing immediate shutdown", s)
		cancel()
		d = <-done
	}
	log.Printf("wcmd: drained: %d done, %d failed, %d canceled", d.rep.Done, d.rep.Failed, d.rep.Canceled)
	if d.err != nil {
		log.Printf("wcmd: drain cut short (%v): %d job(s) abandoned", d.err, len(d.rep.Abandoned))
	}
	// Name every job the drain cut off. With -wal-dir set these are not
	// lost: their terminal transition was deliberately withheld from the
	// journal, so the next boot replays them as pending.
	for _, id := range d.rep.Abandoned {
		log.Printf("wcmd: abandoned job %s (recoverable from the WAL on next boot)", id)
	}
	if pprofSrv != nil {
		_ = pprofSrv.Close()
	}
	return srv.Shutdown(context.Background())
}
