// Command wcmd is the WCM-as-a-service daemon: it serves wrapper-cell
// minimization over HTTP/JSON, amortizing expensive die preparation across
// requests with an LRU cache and running jobs on a bounded worker pool
// with backpressure.
//
// Usage:
//
//	wcmd -addr :8080 -workers 8 -queue 64 -cache 16
//	wcmd -pprof-addr localhost:6060   # expose net/http/pprof on a side listener
//
// Quick start:
//
//	curl -s -X POST localhost:8080/v1/jobs \
//	    -d '{"profile":"b12/1","method":"ours","timing":"tight"}'
//	curl -s localhost:8080/v1/jobs/j-000001
//	curl -s localhost:8080/metrics
//
// See docs/SERVICE.md for the full API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wcm3d/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "job queue depth (full queue returns 429)")
		cache   = flag.Int("cache", 16, "prepared-die LRU cache capacity")
		drain   = flag.Duration("drain", 30*time.Second, "shutdown drain deadline")

		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")

		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second, "deadline for reading request headers (slowloris guard)")
		readTimeout       = flag.Duration("read-timeout", 30*time.Second, "deadline for reading a whole request")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection deadline")
	)
	flag.Parse()
	if err := run(*addr, *pprofAddr, *workers, *queue, *cache, *drain, timeouts{
		readHeader: *readHeaderTimeout,
		read:       *readTimeout,
		idle:       *idleTimeout,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "wcmd:", err)
		os.Exit(1)
	}
}

// timeouts bounds how long a client may hold a connection without making
// progress. Go's zero-value http.Server waits forever on all three, so a
// handful of slow-header connections could pin the daemon's file
// descriptors indefinitely (slowloris); these defaults cap that. No write
// timeout: schedule reports are computed synchronously and a fixed write
// deadline would kill legitimately long responses.
type timeouts struct {
	readHeader time.Duration
	read       time.Duration
	idle       time.Duration
}

func run(addr, pprofAddr string, workers, queue, cache int, drain time.Duration, to timeouts) error {
	svc := service.New(service.Config{
		Workers:       workers,
		QueueDepth:    queue,
		CacheCapacity: cache,
	})

	// Profiling endpoints live on their own listener — typically bound to
	// localhost — so they are never reachable through the service address,
	// and stay off entirely unless asked for. The handlers are registered
	// on a private mux rather than relying on net/http/pprof's
	// DefaultServeMux side effect.
	if pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("wcmd: pprof listening on %s", pprofAddr)
			if err := http.ListenAndServe(pprofAddr, mux); err != nil {
				log.Printf("wcmd: pprof listener: %v", err)
			}
		}()
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: to.readHeader,
		ReadTimeout:       to.read,
		IdleTimeout:       to.idle,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("wcmd: listening on %s", addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		log.Printf("wcmd: %v — draining (deadline %s)", s, drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	rep, err := svc.Shutdown(ctx)
	log.Printf("wcmd: drained: %d done, %d failed, %d canceled", rep.Done, rep.Failed, rep.Canceled)
	if err != nil {
		log.Printf("wcmd: drain deadline hit: %v", err)
	}
	return srv.Shutdown(context.Background())
}
