package main

import (
	"context"
	"net/http"
	"os"
	"testing"
	"time"

	"wcm3d"
	"wcm3d/internal/service"
)

func defaultTimeouts() timeouts {
	return timeouts{readHeader: 5 * time.Second, read: 30 * time.Second, idle: 2 * time.Minute}
}

func smallConfig() service.Config {
	return service.Config{Workers: 1, QueueDepth: 1, CacheCapacity: 1}
}

func TestRunRejectsBadAddress(t *testing.T) {
	errc := make(chan error, 1)
	go func() { errc <- run("256.256.256.256:99999", "", smallConfig(), time.Second, defaultTimeouts()) }()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("bad listen address must error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return on a bad listen address")
	}
}

// TestRunRejectsBadPprofAddress: an unbindable -pprof-addr must be a
// startup error, not a background log line with the daemon limping on
// unprofiled.
func TestRunRejectsBadPprofAddress(t *testing.T) {
	errc := make(chan error, 1)
	go func() {
		errc <- run("127.0.0.1:0", "256.256.256.256:99999", smallConfig(), time.Second, defaultTimeouts())
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("bad pprof address must error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return on a bad pprof address")
	}
}

// TestPprofLifecycle: the side listener serves pprof pages and dies when
// the server is closed, instead of living as an unstoppable goroutine.
func TestPprofLifecycle(t *testing.T) {
	srv, err := startPprof("127.0.0.1:0", defaultTimeouts())
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + srv.Addr + "/debug/pprof/cmdline"
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("pprof not reachable: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline = %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(url); err == nil {
		t.Fatal("pprof still reachable after Close")
	}
}

// TestSecondSignalForcesShutdown: with a job stuck in preparation and an
// hour-long drain deadline, a second SIGINT must abort the drain and bring
// serve back immediately, with the job accounted as canceled.
func TestSecondSignalForcesShutdown(t *testing.T) {
	svc := service.New(service.Config{
		Workers:    1,
		QueueDepth: 4,
		Prepare: func(ctx context.Context, spec service.DieSpec) (*wcm3d.Die, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	st, err := svc.Submit(service.JobRequest{Profile: "b11/0"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if j, ok := svc.Job(st.ID); ok && j.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}

	sig := make(chan os.Signal, 2)
	done := make(chan error, 1)
	go func() { done <- serve(svc, &http.Server{}, nil, make(chan error), sig, time.Hour) }()
	sig <- os.Interrupt
	time.Sleep(50 * time.Millisecond) // let the graceful drain begin
	sig <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("second signal did not force shutdown")
	}
	if j, ok := svc.Job(st.ID); !ok || j.State != service.StateCanceled {
		t.Fatalf("stuck job after forced shutdown = %+v", j)
	}
}
