package main

import (
	"testing"
	"time"
)

func defaultTimeouts() timeouts {
	return timeouts{readHeader: 5 * time.Second, read: 30 * time.Second, idle: 2 * time.Minute}
}

func TestRunRejectsBadAddress(t *testing.T) {
	errc := make(chan error, 1)
	go func() { errc <- run("256.256.256.256:99999", "", 1, 1, 1, time.Second, defaultTimeouts()) }()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("bad listen address must error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return on a bad listen address")
	}
}
