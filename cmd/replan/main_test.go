package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"wcm3d"
)

func TestFaultListParsing(t *testing.T) {
	var fl faultList
	for _, s := range []string{"stuck0:tin0", "bridge:tin1+tin2", "crosstalk:tin3+tout0"} {
		if err := fl.Set(s); err != nil {
			t.Fatalf("Set(%q): %v", s, err)
		}
	}
	if len(fl) != 3 {
		t.Fatalf("parsed %d faults, want 3", len(fl))
	}
	if fl[0] != (wcm3d.TSVFault{Kind: wcm3d.TSVStuck0, TSV: "tin0"}) {
		t.Errorf("fault 0 = %+v", fl[0])
	}
	if fl[1].With != "tin2" || fl[1].Kind != wcm3d.TSVBridge {
		t.Errorf("fault 1 = %+v", fl[1])
	}
	for _, bad := range []string{"stuck0", "warp:tin0", ""} {
		if err := fl.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

// TestRunDifferential drives the CLI's core on a real die: two sequential
// faults, each replanned incrementally and certified against the
// from-scratch rerun and the verifier (ok == true means every step held).
func TestRunDifferential(t *testing.T) {
	var buf bytes.Buffer
	faults := faultList{
		{Kind: wcm3d.TSVStuck0, TSV: "b11_0_tsv0"},
	}
	// Resolve a real victim name by preparing the same die the run will use.
	p, err := wcm3d.ProfileByName("b11/0")
	if err != nil {
		t.Fatal(err)
	}
	d, err := wcm3d.PrepareDieWithSpares(p, 1, wcm3d.SpareSpec{Inbound: 2, Outbound: 1})
	if err != nil {
		t.Fatal(err)
	}
	ins := d.Netlist.InboundTSVs()
	faults[0].TSV = d.Netlist.NameOf(ins[0])
	faults = append(faults, wcm3d.TSVFault{Kind: wcm3d.TSVOpen, TSV: d.Netlist.NameOf(ins[1])})

	ok, err := run(&buf, "b11/0", "", "tight", 1, wcm3d.SpareSpec{Inbound: 2, Outbound: 1}, faults, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("differential contract broken:\n%s", buf.String())
	}
	var steps []stepReport
	if err := json.Unmarshal(buf.Bytes(), &steps); err != nil {
		t.Fatalf("-json output: %v", err)
	}
	if len(steps) != 2 {
		t.Fatalf("got %d steps, want 2", len(steps))
	}
	for _, s := range steps {
		if !s.Equal || !s.Verified || len(s.Repairs) != 1 {
			t.Errorf("step %s = %+v", s.Fault, s)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	spec := wcm3d.SpareSpec{Inbound: 1, Outbound: 1}
	if _, err := run(&buf, "b11/0", "", "tight", 1, spec, nil, false); err == nil || !strings.Contains(err.Error(), "-fault") {
		t.Errorf("no faults: %v", err)
	}
	f := faultList{{Kind: wcm3d.TSVStuck0, TSV: "x"}}
	if _, err := run(&buf, "b11/0", "die.bench", "tight", 1, spec, f, false); err == nil {
		t.Error("profile+netlist accepted")
	}
	if _, err := run(&buf, "", "", "tight", 1, spec, f, false); err == nil {
		t.Error("neither profile nor netlist accepted")
	}
	if _, err := run(&buf, "b11/0", "", "warp", 1, spec, f, false); err == nil {
		t.Error("bad timing accepted")
	}
	if _, err := run(&buf, "b99/9", "", "tight", 1, spec, f, false); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := run(&buf, "b11/0", "", "tight", 1, spec, f, false); err == nil {
		t.Error("unknown TSV accepted")
	}
}
