// Command replan exercises the TSV-defect repair flow: it prepares a die
// with spare TSV sites, plans the baseline wrapper assignment, applies a
// sequence of TSV faults — each rerouted to a spare — and replans
// incrementally after every delta, certifying each incremental plan
// against a from-scratch rerun and the independent verifier.
//
// Usage:
//
//	replan -profile b12/1 -fault stuck0:tin0
//	replan -profile b13/2 -spares-in 4 -fault open:tin1 -fault bridge:tin2+tin3
//	replan -netlist die.bench -fault crosstalk:tin0+tout1
//	replan -profile b12/1 -fault stuck0:tin0 -json
//
// Fault syntax is kind:victim or kind:victim+partner, where victims name
// an inbound TSV's landing pad or an outbound TSV's port. Each -fault is
// one delta, applied and replanned in order. The exit status is 0 when
// every incremental plan matched its from-scratch reference and verified
// clean.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"reflect"
	"strings"
	"time"

	"wcm3d"
)

// faultList collects repeated -fault flags.
type faultList []wcm3d.TSVFault

func (fl *faultList) String() string {
	parts := make([]string, len(*fl))
	for i, f := range *fl {
		parts[i] = f.String()
	}
	return strings.Join(parts, ",")
}

func (fl *faultList) Set(s string) error {
	colon := strings.IndexByte(s, ':')
	if colon < 0 {
		return fmt.Errorf("fault %q: want kind:victim or kind:victim+partner", s)
	}
	kind, err := wcm3d.ParseTSVFaultKind(s[:colon])
	if err != nil {
		return err
	}
	f := wcm3d.TSVFault{Kind: kind, TSV: s[colon+1:]}
	if plus := strings.IndexByte(f.TSV, '+'); plus >= 0 {
		f.TSV, f.With = f.TSV[:plus], f.TSV[plus+1:]
	}
	*fl = append(*fl, f)
	return nil
}

// stepReport is the machine-readable record of one delta.
type stepReport struct {
	Fault           string            `json:"fault"`
	Repairs         []wcm3d.TSVRepair `json:"repairs"`
	ReusedFFs       int               `json:"reused_ffs"`
	AdditionalCells int               `json:"additional_cells"`
	Equal           bool              `json:"equal_to_rerun"`
	Verified        bool              `json:"verified"`
	ReplanMS        float64           `json:"replan_ms"`
	RerunMS         float64           `json:"rerun_ms"`
}

func main() {
	var faults faultList
	var (
		profile   = flag.String("profile", "", `Table II die, e.g. "b12/1"`)
		netPath   = flag.String("netlist", "", "path to a .bench die (alternative to -profile)")
		timing    = flag.String("timing", "tight", "tight | loose")
		seed      = flag.Int64("seed", 1, "generation / placement seed")
		sparesIn  = flag.Int("spares-in", 2, "inbound spare TSV sites to add")
		sparesOut = flag.Int("spares-out", 2, "outbound spare TSV sites to add")
		asJSON    = flag.Bool("json", false, "emit machine-readable step reports")
	)
	flag.Var(&faults, "fault", "TSV fault kind:victim[+partner]; repeatable, one delta each")
	flag.Parse()
	ok, err := run(os.Stdout, *profile, *netPath, *timing, *seed,
		wcm3d.SpareSpec{Inbound: *sparesIn, Outbound: *sparesOut}, faults, *asJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replan:", err)
		os.Exit(1)
	}
	if !ok {
		os.Exit(1)
	}
}

func run(w io.Writer, profile, netPath, timingName string, seed int64,
	spec wcm3d.SpareSpec, faults faultList, asJSON bool) (bool, error) {
	if len(faults) == 0 {
		return false, fmt.Errorf("pass at least one -fault")
	}
	die, name, err := loadDie(profile, netPath, seed, spec)
	if err != nil {
		return false, err
	}
	mode, err := wcm3d.ParseTimingMode(timingName)
	if err != nil {
		return false, err
	}
	p, err := wcm3d.NewReplanPlanner(die, wcm3d.OurOptions(die, mode))
	if err != nil {
		return false, err
	}
	base := p.Baseline()
	if !asJSON {
		fmt.Fprintf(w, "die %s, timing %s: baseline reuses %d FFs, adds %d cells\n",
			name, mode, base.ReusedFFs, base.AdditionalCells)
	}

	allOK := true
	var steps []stepReport
	for _, f := range faults {
		step, err := applyOne(p, f)
		if err != nil {
			return false, fmt.Errorf("fault %s: %w", f, err)
		}
		allOK = allOK && step.Equal && step.Verified
		steps = append(steps, step)
		if !asJSON {
			printStep(w, step)
		}
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(steps); err != nil {
			return false, err
		}
	} else if in, out := p.SparesLeft(); true {
		fmt.Fprintf(w, "spares left: %d inbound, %d outbound\n", in, out)
	}
	return allOK, nil
}

func applyOne(p *wcm3d.ReplanPlanner, f wcm3d.TSVFault) (stepReport, error) {
	start := time.Now()
	res, reps, err := wcm3d.Replan(p, wcm3d.TSVDelta{Faults: []wcm3d.TSVFault{f}})
	if err != nil {
		return stepReport{}, err
	}
	replanD := time.Since(start)
	start = time.Now()
	ref, err := p.Rerun()
	if err != nil {
		return stepReport{}, fmt.Errorf("from-scratch reference: %w", err)
	}
	rerunD := time.Since(start)
	vr, err := p.Verify(res)
	if err != nil {
		return stepReport{}, fmt.Errorf("verify: %w", err)
	}
	return stepReport{
		Fault:           f.String(),
		Repairs:         reps,
		ReusedFFs:       res.ReusedFFs,
		AdditionalCells: res.AdditionalCells,
		Equal:           reflect.DeepEqual(res, ref),
		Verified:        vr.OK(),
		ReplanMS:        float64(replanD.Microseconds()) / 1e3,
		RerunMS:         float64(rerunD.Microseconds()) / 1e3,
	}, nil
}

func printStep(w io.Writer, s stepReport) {
	for _, r := range s.Repairs {
		side := "outbound"
		if r.Inbound {
			side = "inbound"
		}
		fmt.Fprintf(w, "  repair: %s %s -> spare %s\n", side, r.Failed, r.Spare)
	}
	status := "OK"
	if !s.Equal {
		status = "MISMATCH vs rerun"
	} else if !s.Verified {
		status = "VERIFY FAILED"
	}
	fmt.Fprintf(w, "%s: reuses %d FFs, adds %d cells — %s (replan %.1f ms, rerun %.1f ms)\n",
		s.Fault, s.ReusedFFs, s.AdditionalCells, status, s.ReplanMS, s.RerunMS)
}

func loadDie(profile, netPath string, seed int64, spec wcm3d.SpareSpec) (*wcm3d.Die, string, error) {
	switch {
	case profile != "" && netPath != "":
		return nil, "", fmt.Errorf("pass -profile or -netlist, not both")
	case profile != "":
		p, err := wcm3d.ProfileByName(profile)
		if err != nil {
			return nil, "", err
		}
		d, err := wcm3d.PrepareDieWithSpares(p, seed, spec)
		if err != nil {
			return nil, "", err
		}
		return d, p.Name(), nil
	case netPath != "":
		f, err := os.Open(netPath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		name := strings.TrimSuffix(netPath, ".bench")
		n, err := wcm3d.ParseNetlist(name, f)
		if err != nil {
			return nil, "", err
		}
		if err := wcm3d.AddSpareTSVs(n, spec); err != nil {
			return nil, "", err
		}
		d, err := wcm3d.PrepareParsed(n, seed)
		if err != nil {
			return nil, "", err
		}
		return d, name, nil
	default:
		return nil, "", fmt.Errorf("pass -profile or -netlist")
	}
}
