// Command atpgrun runs stand-alone test-pattern generation on a die in the
// wcm3d .bench dialect and reports coverage statistics — handy for
// inspecting a netlist outside the wrapper-cell flow.
//
// Usage:
//
//	atpgrun -netlist die.bench
//	atpgrun -netlist die.bench -model transition -seed 7
//	netgen -gates 500 -ffs 30 | atpgrun        # from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"wcm3d/internal/atpg"
	"wcm3d/internal/faults"
	"wcm3d/internal/faultsim"
	"wcm3d/internal/netlist"
)

func main() {
	var (
		netPath = flag.String("netlist", "", "path to a .bench die (default: stdin)")
		model   = flag.String("model", "stuck-at", "fault model: stuck-at | transition")
		seed    = flag.Int64("seed", 1, "ATPG seed")
		maxBT   = flag.Int("backtracks", 0, "PODEM backtrack budget (0 = default)")
		vecOut  = flag.String("write-vectors", "", "write the generated stuck-at vectors to this file")
	)
	flag.Parse()
	if err := run(*netPath, *model, *seed, *maxBT, *vecOut); err != nil {
		fmt.Fprintln(os.Stderr, "atpgrun:", err)
		os.Exit(1)
	}
}

func run(netPath, model string, seed int64, maxBT int, vecOut string) error {
	var src io.Reader = os.Stdin
	name := "stdin"
	if netPath != "" {
		f, err := os.Open(netPath)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
		name = netPath
	}
	n, err := netlist.Parse(name, src)
	if err != nil {
		return err
	}
	st := netlist.CollectStats(n)
	fmt.Printf("die %s: %d gates, %d FFs, %d TSVs (in %d / out %d), depth %d\n",
		st.Name, st.LogicGates, st.ScanFFs, st.TSVs(), st.InboundTSVs, st.OutboundTSVs, st.MaxLevel)

	opts := atpg.Options{Seed: seed, MaxBacktracks: maxBT}
	start := time.Now()
	switch model {
	case "stuck-at":
		list := faults.CollapsedList(n)
		res, err := atpg.Run(n, list, opts)
		if err != nil {
			return err
		}
		fmt.Printf("stuck-at: %d faults, %d detected (%d by random), %d untestable, %d aborted\n",
			res.TotalFaults, res.Detected, res.RandomDetected, res.Untestable, res.Aborted)
		fmt.Printf("fault coverage %.2f%%, test coverage %.2f%%, %d patterns, %v\n",
			100*res.Coverage(), 100*res.TestCoverage(), res.PatternCount(), time.Since(start).Round(time.Millisecond))
		if vecOut != "" {
			f, err := os.Create(vecOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := atpg.WritePatterns(f, faultsim.New(n), res.Patterns); err != nil {
				return err
			}
			fmt.Printf("wrote %d vectors to %s\n", res.PatternCount(), vecOut)
		}
	case "transition":
		list := faults.TransitionList(n)
		res, err := atpg.RunTransition(n, list, opts)
		if err != nil {
			return err
		}
		fmt.Printf("transition: %d faults, %d detected, %d untestable, %d aborted\n",
			res.TotalFaults, res.Detected, res.Untestable, res.Aborted)
		fmt.Printf("fault coverage %.2f%%, test coverage %.2f%%, %d patterns (%d pairs), %v\n",
			100*res.Coverage(), 100*res.TestCoverage(), res.PatternCount(), len(res.Pairs),
			time.Since(start).Round(time.Millisecond))
	default:
		return fmt.Errorf("unknown fault model %q", model)
	}
	return nil
}
