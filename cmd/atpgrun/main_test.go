package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeDie(t *testing.T) string {
	t.Helper()
	src := `
INPUT(a)
INPUT(b)
q = DFF(n1)
n1 = XOR(a, q)
n2 = AND(n1, b)
OUTPUT(z) = n2
`
	p := filepath.Join(t.TempDir(), "die.bench")
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunStuckAt(t *testing.T) {
	if err := run(writeDie(t), "stuck-at", 1, 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunTransitionModel(t *testing.T) {
	if err := run(writeDie(t), "transition", 1, 50, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWriteVectors(t *testing.T) {
	out := filepath.Join(t.TempDir(), "vec.txt")
	if err := run(writeDie(t), "stuck-at", 1, 0, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("vector file empty")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(writeDie(t), "quantum", 1, 0, ""); err == nil {
		t.Error("unknown model must error")
	}
	if err := run("/nonexistent/die.bench", "stuck-at", 1, 0, ""); err == nil {
		t.Error("missing file must error")
	}
}
