package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunProfileStats(t *testing.T) {
	if err := run("b11/0", false, "", 1, 0, 0, 0, 0, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustom(t *testing.T) {
	if err := run("", false, "", 3, 120, 8, 4, 4, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunSuiteToDir(t *testing.T) {
	if testing.Short() {
		t.Skip("writes the full 24-die suite")
	}
	dir := t.TempDir()
	if err := run("", true, dir, 1, 0, 0, 0, 0, true); err != nil {
		t.Fatal(err)
	}
	// -stats mode prints rather than writes; write mode needs a second
	// call without stats for one small profile instead (full suite is
	// slow) — covered by TestRunProfileWrite below.
	_ = dir
}

func TestRunProfileWrite(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "die.bench")
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = f
	err = run("b11/0", false, "", 1, 0, 0, 0, 0, false)
	os.Stdout = old
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "TSV_IN(") {
		t.Error("written die lacks TSV pads")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", false, "", 1, 0, 0, 0, 0, false); err == nil {
		t.Error("no mode selected must error")
	}
	if err := run("b11", false, "", 1, 0, 0, 0, 0, false); err == nil {
		t.Error("malformed profile must error")
	}
	if err := run("b99/0", false, "", 1, 0, 0, 0, 0, false); err == nil {
		t.Error("unknown circuit must error")
	}
	if err := run("", true, "", 1, 0, 0, 0, 0, false); err == nil {
		t.Error("-suite without -dir must error")
	}
}
