// Command netgen generates benchmark dies and writes them in the wcm3d
// .bench dialect.
//
// Usage:
//
//	netgen -profile b12/2            # one Table II die to stdout
//	netgen -suite -dir ./dies        # all 24 dies into a directory
//	netgen -gates 500 -ffs 24 -in 12 -out 12 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
)

func main() {
	var (
		profile = flag.String("profile", "", `Table II die, e.g. "b12/2"`)
		suite   = flag.Bool("suite", false, "generate all 24 Table II dies")
		dir     = flag.String("dir", "", "output directory (required with -suite)")
		seed    = flag.Int64("seed", 1, "generation seed")
		gates   = flag.Int("gates", 0, "custom die: combinational gate count")
		ffs     = flag.Int("ffs", 0, "custom die: scan flip-flop count")
		ins     = flag.Int("in", 0, "custom die: inbound TSV count")
		outs    = flag.Int("out", 0, "custom die: outbound TSV count")
		stats   = flag.Bool("stats", false, "print die statistics instead of the netlist")
	)
	flag.Parse()
	if err := run(*profile, *suite, *dir, *seed, *gates, *ffs, *ins, *outs, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}
}

func run(profile string, suite bool, dir string, seed int64, gates, ffs, ins, outs int, stats bool) error {
	emit := func(n *netlist.Netlist, w *os.File) error {
		if stats {
			st := netlist.CollectStats(n)
			_, err := fmt.Fprintf(w, "%s: FFs=%d gates=%d TSVs=%d (in=%d out=%d) PIs=%d POs=%d depth=%d\n",
				st.Name, st.ScanFFs, st.LogicGates, st.TSVs(), st.InboundTSVs, st.OutboundTSVs,
				st.PIs, st.POs, st.MaxLevel)
			return err
		}
		return n.Write(w)
	}

	switch {
	case suite:
		if dir == "" && !stats {
			return fmt.Errorf("-suite requires -dir (or -stats)")
		}
		for _, p := range netgen.ITC99Profiles() {
			n, err := netgen.Generate(p, seed)
			if err != nil {
				return err
			}
			if stats {
				if err := emit(n, os.Stdout); err != nil {
					return err
				}
				continue
			}
			name := strings.ReplaceAll(p.Name(), "/", "_") + ".bench"
			f, err := os.Create(filepath.Join(dir, name))
			if err != nil {
				return err
			}
			if err := n.Write(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", name)
		}
		return nil

	case profile != "":
		parts := strings.Split(profile, "/")
		if len(parts) != 2 {
			return fmt.Errorf("profile must look like b12/2, got %q", profile)
		}
		dieIdx, err := strconv.Atoi(strings.TrimPrefix(parts[1], "Die"))
		if err != nil {
			return fmt.Errorf("bad die index in %q: %w", profile, err)
		}
		ps := netgen.ITC99Circuit(parts[0])
		if ps == nil || dieIdx < 0 || dieIdx >= len(ps) {
			return fmt.Errorf("no profile %q", profile)
		}
		n, err := netgen.Generate(ps[dieIdx], seed)
		if err != nil {
			return err
		}
		return emit(n, os.Stdout)

	case gates > 0:
		n, err := netgen.Random(netgen.RandomOptions{
			Gates: gates, FFs: ffs, InboundTSVs: ins, OutboundTSVs: outs, Seed: seed,
		})
		if err != nil {
			return err
		}
		return emit(n, os.Stdout)

	default:
		return fmt.Errorf("pass -profile, -suite, or -gates (see -h)")
	}
}
