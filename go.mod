module wcm3d

go 1.22
