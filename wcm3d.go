// Package wcm3d is a Go implementation of timing-aware wrapper-cell
// minimization for pre-bond testing of 3D-ICs (Ho, Chen, Wu, Hwang —
// SOCC 2019), together with every substrate the flow needs: a gate-level
// netlist model with an ISCAS-style text format, an ITC'99-profiled
// synthetic benchmark generator, placement, static timing analysis, fault
// models, bit-parallel fault simulation, PODEM test generation, and a DFT
// editor that materializes wrapper plans as netlist edits.
//
// # The problem
//
// Before dies are bonded, through-silicon vias (TSVs) float: an inbound
// TSV (a die input) cannot be controlled by the tester and an outbound TSV
// (a die output) cannot be observed. Dedicated wrapper cells at every TSV
// restore testability at a large area cost. This library minimizes that
// cost by reusing existing scan flip-flops as wrapper cells and by letting
// several TSVs share one cell, solved as heuristic clique partitioning
// over a sharing graph — with a placement-accurate timing model so reuse
// never breaks the die's clock, and with testability-bounded sharing
// between overlapping logic cones.
//
// # Quick start
//
//	die, _ := wcm3d.PrepareDie(wcm3d.ITC99Profiles()[4], 1)
//	res, _ := wcm3d.Minimize(die, wcm3d.MethodOurs, wcm3d.TightTiming)
//	fmt.Println(res.ReusedFFs, res.AdditionalCells)
//
// See examples/ for complete programs and cmd/tables for the harness that
// regenerates every table and figure of the paper.
package wcm3d

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"wcm3d/internal/atpg"
	"wcm3d/internal/cells"
	"wcm3d/internal/diagnose"
	"wcm3d/internal/experiments"
	"wcm3d/internal/faults"
	"wcm3d/internal/faultsim"
	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
	"wcm3d/internal/partition"
	"wcm3d/internal/place"
	"wcm3d/internal/refine"
	"wcm3d/internal/scan"
	"wcm3d/internal/sta"
	"wcm3d/internal/tam"
	"wcm3d/internal/tsvrepair"
	"wcm3d/internal/verify"
	"wcm3d/internal/wcm"
	"wcm3d/internal/wcm/li"
)

// Core data types, re-exported for API users. The internal packages carry
// the full documentation.
type (
	// Netlist is a gate-level die (see internal/netlist).
	Netlist = netlist.Netlist
	// SignalID identifies a signal by its driving gate.
	SignalID = netlist.SignalID
	// Profile describes one benchmark die (Table II counters).
	Profile = netgen.Profile
	// Die is a prepared benchmark die: generated, placed, timed, with
	// fault universes enumerated.
	Die = experiments.Die
	// Library is the technology characterization used by timing.
	Library = cells.Library
	// Placement holds physical coordinates for a die.
	Placement = place.Placement
	// TimingResult is a static timing analysis.
	TimingResult = sta.Result
	// Assignment is a wrapper plan: which flip-flop or dedicated cell
	// covers which TSVs.
	Assignment = scan.Assignment
	// MinimizeResult is the outcome of a wrapper-cell minimization run.
	MinimizeResult = wcm.Result
	// MinimizeOptions is the full knob set of the WCM engine.
	MinimizeOptions = wcm.Options
	// Testability is an ATPG outcome (coverage, pattern count).
	Testability = experiments.Testability
	// Fault is a single stuck-at fault.
	Fault = faults.Fault
	// TransitionFault is a transition-delay fault.
	TransitionFault = faults.TransitionFault
)

// Method selects a wrapper-cell minimization algorithm.
type Method uint8

// Available methods.
const (
	// MethodOurs is the paper's contribution: larger-TSV-set-first
	// ordering, placement-accurate timing, overlapped-cone sharing under
	// testability thresholds.
	MethodOurs Method = iota + 1
	// MethodAgrawal is the TCAD'15 baseline: inbound-first,
	// capacitance-only timing, no overlapped cones.
	MethodAgrawal
	// MethodLi is the ICCD'10 baseline: one flip-flop covers at most one
	// TSV, no sharing.
	MethodLi
	// MethodFullWrap inserts a dedicated wrapper cell at every TSV (the
	// pre-reuse baseline).
	MethodFullWrap
)

// ParseMethod maps the spelling used by the CLIs and the wcmd service
// ("ours", "agrawal", "li", "fullwrap" / "full-wrap", case-insensitive)
// back to a Method.
func ParseMethod(s string) (Method, error) {
	switch strings.ToLower(s) {
	case "ours":
		return MethodOurs, nil
	case "agrawal":
		return MethodAgrawal, nil
	case "li":
		return MethodLi, nil
	case "fullwrap", "full-wrap":
		return MethodFullWrap, nil
	default:
		return 0, fmt.Errorf("wcm3d: unknown method %q", s)
	}
}

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodOurs:
		return "ours"
	case MethodAgrawal:
		return "agrawal"
	case MethodLi:
		return "li"
	case MethodFullWrap:
		return "full-wrap"
	default:
		return fmt.Sprintf("Method(%d)", uint8(m))
	}
}

// TimingMode selects the paper's two evaluation scenarios.
type TimingMode uint8

// Timing scenarios.
const (
	// LooseTiming is the area-optimized scenario: no timing constraints.
	LooseTiming TimingMode = iota + 1
	// TightTiming is the performance-optimized scenario: thresholds
	// derived from the die's clock margin.
	TightTiming
)

// String names the mode.
func (t TimingMode) String() string {
	if t == TightTiming {
		return "tight"
	}
	return "loose"
}

// ParseTimingMode maps "tight" / "loose" (case-insensitive) back to a
// TimingMode.
func ParseTimingMode(s string) (TimingMode, error) {
	switch strings.ToLower(s) {
	case "tight":
		return TightTiming, nil
	case "loose":
		return LooseTiming, nil
	default:
		return 0, fmt.Errorf("wcm3d: unknown timing mode %q", s)
	}
}

func (t TimingMode) scenario() experiments.Scenario {
	return experiments.Scenario{Name: t.String(), Tight: t == TightTiming}
}

// ITC99Profiles returns the 24 benchmark die profiles of the paper's
// Table II (six ITC'99 circuits × four dies).
func ITC99Profiles() []Profile { return netgen.ITC99Profiles() }

// CircuitProfiles returns the four die profiles of one benchmark family
// ("b11" ... "b22"), or nil for an unknown name.
func CircuitProfiles(name string) []Profile { return netgen.ITC99Circuit(name) }

// CircuitNames returns the six benchmark family names.
func CircuitNames() []string { return netgen.ITC99CircuitNames() }

// ProfileByName resolves a Table II die identifier of the form "b12/1"
// or "b12/Die1" — the spelling the CLIs and the wcmd service accept.
func ProfileByName(name string) (Profile, error) {
	parts := strings.Split(name, "/")
	if len(parts) != 2 {
		return Profile{}, fmt.Errorf("wcm3d: profile must look like b12/1, got %q", name)
	}
	idx, err := strconv.Atoi(strings.TrimPrefix(parts[1], "Die"))
	if err != nil {
		return Profile{}, fmt.Errorf("wcm3d: bad die index in profile %q", name)
	}
	ps := CircuitProfiles(parts[0])
	if ps == nil || idx < 0 || idx >= len(ps) {
		return Profile{}, fmt.Errorf("wcm3d: no profile %q", name)
	}
	return ps[idx], nil
}

// GenerateDie synthesizes a die matching the profile exactly;
// deterministic in (profile, seed).
func GenerateDie(p Profile, seed int64) (*Netlist, error) {
	return netgen.Generate(p, seed)
}

// PrepareDie generates, places and times a benchmark die, ready for
// Minimize and the evaluation helpers.
func PrepareDie(p Profile, seed int64) (*Die, error) {
	return experiments.PrepareDie(p, seed)
}

// PrepareSuite prepares dies for several profiles.
func PrepareSuite(profiles []Profile, seed int64) ([]*Die, error) {
	return experiments.PrepareSuite(profiles, seed)
}

// DefaultLibrary returns the generic 45 nm technology library.
func DefaultLibrary() *Library { return cells.Default45nm() }

// Minimize runs a wrapper-cell minimization method on a prepared die under
// a timing scenario.
func Minimize(d *Die, m Method, mode TimingMode) (*MinimizeResult, error) {
	sc := mode.scenario()
	switch m {
	case MethodOurs:
		return wcm.Run(d.Input(), experiments.OurOptions(d, sc))
	case MethodAgrawal:
		return wcm.Run(d.Input(), experiments.AgrawalOptions(d, sc))
	case MethodLi:
		capTh := experiments.AgrawalOptions(d, sc).CapThFF
		return li.Run(d.Input(), capTh)
	case MethodFullWrap:
		asn := scan.FullWrap(d.Netlist)
		return &wcm.Result{
			Assignment:      asn,
			ReusedFFs:       asn.ReusedFFs(),
			AdditionalCells: asn.AdditionalCells(),
		}, nil
	default:
		return nil, fmt.Errorf("wcm3d: unknown method %v", m)
	}
}

// MinimizeWith runs the WCM engine with explicit options (see
// wcm.Options); Minimize covers the paper's standard configurations. When
// opts.Refine is set, the greedy plan is additionally handed to the solver
// portfolio (see Refine) under opts.RefineBudget, and the best verified
// plan replaces the result's assignment and counters.
func MinimizeWith(d *Die, opts MinimizeOptions) (*MinimizeResult, error) {
	res, err := wcm.Run(d.Input(), opts)
	if err != nil || !opts.Refine {
		return res, err
	}
	rr, err := Refine(context.Background(), d, opts, res, RefineOptions{
		Budget:     opts.RefineBudget,
		Seed:       opts.RefineSeed,
		Strategies: opts.RefineStrategies,
	})
	if err != nil {
		return nil, err
	}
	if rr.Improved {
		res.Assignment = rr.Assignment
		res.AdditionalCells = rr.AdditionalCells
		res.ReusedFFs = rr.ReusedFFs
	}
	return res, nil
}

// RefineOptions configures the anytime solver portfolio (see
// internal/refine): wall budget, RNG seed, step budget, strategy subset,
// candidate-list width, restart schedule, and the evaluator's cross-check
// debug mode.
type RefineOptions = refine.Options

// DefaultRefineBudget is the portfolio's wall budget when
// RefineOptions.Budget is zero.
const DefaultRefineBudget = refine.DefaultBudget

// RefineResult reports a refinement run: the winning plan (or the greedy
// plan unchanged), the cells saved, and per-strategy outcomes.
type RefineResult = refine.Result

// Refine races the solver portfolio — deterministic local search, seeded
// simulated annealing, bounded branch-and-bound, large-neighborhood
// destroy/repair — over a greedy
// minimization result and returns the best plan that passes the
// independent verifier before the deadline. The result is never worse than
// the input plan: an expired context or a fruitless search hands the
// greedy assignment back unchanged. opts must be the configuration the
// plan was produced with (it prices the sharing model and is the contract
// candidates are verified against).
func Refine(ctx context.Context, d *Die, opts MinimizeOptions, res *MinimizeResult, ro RefineOptions) (*RefineResult, error) {
	if d == nil || res == nil {
		return nil, fmt.Errorf("wcm3d: Refine needs a die and a result")
	}
	return refine.Run(ctx, d.Input(), opts, res, ro)
}

// AgrawalOptions exposes the baseline configuration for a die/scenario so
// callers can modify single knobs (ablations).
func AgrawalOptions(d *Die, mode TimingMode) MinimizeOptions {
	return experiments.AgrawalOptions(d, mode.scenario())
}

// OurOptions exposes the paper's configuration for a die/scenario.
func OurOptions(d *Die, mode TimingMode) MinimizeOptions {
	return experiments.OurOptions(d, mode.scenario())
}

// CheckTiming reports whether the plan's physical test hardware violates
// the die's clock, with the worst negative slack (functional signoff with
// test_en case analysis).
func CheckTiming(d *Die, asn *Assignment) (violation bool, wnsPS float64, err error) {
	return experiments.CheckTiming(d, asn)
}

// VerifyOptions selects what the independent plan verifier checks (see
// internal/verify).
type VerifyOptions = verify.Options

// VerifyResult is the verifier's report: violations, warnings and what was
// checked.
type VerifyResult = verify.Result

// PlanViolation is one broken invariant found by the verifier.
type PlanViolation = verify.Violation

// VerifyPlan certifies a minimization result against the die it was
// planned for, using the from-scratch checker in internal/verify (cone
// re-traversal, pairwise constraint re-derivation, slack re-pricing — no
// code shared with the optimizer's hot path). When vo.Thresholds is nil
// and the result carries an effective configuration (wcm.Run echoes it;
// Li's matching and full-wrap do not), the result's own options become the
// contract; otherwise only structure and coverage are checked.
func VerifyPlan(d *Die, res *MinimizeResult, vo VerifyOptions) (*VerifyResult, error) {
	if d == nil || res == nil {
		return nil, fmt.Errorf("wcm3d: VerifyPlan needs a die and a result")
	}
	if vo.Thresholds == nil && res.Options.Order != 0 {
		th := res.Options
		vo.Thresholds = &th
	}
	return verify.Plan(d.Input(), res.Assignment, vo)
}

// ATPGBudget tunes evaluation effort.
type ATPGBudget = experiments.ATPGBudget

// DefaultBudget is the full-effort ATPG configuration.
func DefaultBudget(seed int64) ATPGBudget { return experiments.DefaultBudget(seed) }

// ReducedBudget trims ATPG effort for fast iteration.
func ReducedBudget(seed int64) ATPGBudget { return experiments.ReducedBudget(seed) }

// EvaluateStuckAt grades a wrapper plan with stuck-at ATPG against the
// die's functional fault universe.
func EvaluateStuckAt(d *Die, asn *Assignment, budget ATPGBudget) (Testability, error) {
	return experiments.EvaluateStuckAt(d, asn, budget)
}

// EvaluateTransition grades a wrapper plan with transition-delay ATPG.
func EvaluateTransition(d *Die, asn *Assignment, budget ATPGBudget) (Testability, error) {
	return experiments.EvaluateTransition(d, asn, budget)
}

// ParseNetlist reads a die in the .bench dialect (see internal/netlist).
func ParseNetlist(name string, r io.Reader) (*Netlist, error) {
	return netlist.Parse(name, r)
}

// FullWrap returns the one-dedicated-cell-per-TSV plan.
func FullWrap(n *Netlist) *Assignment { return scan.FullWrap(n) }

// PrepareParsed places and times a die you built or parsed yourself,
// producing the same prepared Die that PrepareDie yields for generated
// benchmarks.
func PrepareParsed(n *Netlist, seed int64) (*Die, error) {
	return experiments.PrepareNetlist(n, seed)
}

// PartitionResult is a 3D partition of a monolithic netlist.
type PartitionResult = partition.Result

// PartitionNetlist splits a monolithic design into a power-of-two die
// stack with min-cut (Fiduccia–Mattheyses) partitioning; cut nets become
// TSVs. This substitutes for the 3D physical-design front end the paper
// used on the ITC'99 circuits.
func PartitionNetlist(n *Netlist, dies int, seed int64) (*PartitionResult, error) {
	return partition.Partition(n, partition.Options{Dies: dies, Seed: seed})
}

// BondStack stitches partitioned dies back together — the post-bond view,
// where TSVs are connected and stack-level test regains access.
func BondStack(name string, dies []*Netlist) (*Netlist, error) {
	return partition.Bond(name, dies)
}

// ChainPlan is a scan-chain stitching (see internal/scan).
type ChainPlan = scan.ChainPlan

// BuildScanChains stitches a die's scan cells (flip-flops plus the plan's
// dedicated wrapper cells) into nChains placement-ordered chains; its
// TestCycles method estimates tester time for a pattern count.
func BuildScanChains(d *Die, asn *Assignment, nChains int) (*ChainPlan, error) {
	return scan.BuildChains(d.Netlist, d.Placement, asn, nChains)
}

// WrapperDesign is one point on a die's wrapper/TAM trade-off frontier:
// testing over Width TAM wires takes Cycles tester cycles (see
// internal/tam).
type WrapperDesign = tam.Design

// TestSchedule is a packed pre-bond stack test schedule: per-die TAM wire
// ranges and start/stop times, the makespan, and the serial reference.
type TestSchedule = tam.Schedule

// TestSlot is one die's placement within a TestSchedule.
type TestSlot = tam.Slot

// StackDie couples a wrapped die with everything stack scheduling needs:
// the prepared die, its wrapper plan, and its ATPG pattern count.
type StackDie struct {
	// Name labels the die in the schedule; empty defaults to the die's
	// profile name.
	Name string
	// Die is the prepared die (PrepareDie / PrepareParsed).
	Die *Die
	// Assignment is the die's wrapper plan (Minimize result).
	Assignment *Assignment
	// Patterns is the die's test-pattern count (EvaluateStuckAt).
	Patterns int
}

// EnumerateWrapperDesigns sweeps a die's scan-chain counts from 1 to
// maxWidth and returns the Pareto frontier of (TAM width, test cycles)
// wrapper designs — the rectangles Schedule packs.
func EnumerateWrapperDesigns(d *Die, asn *Assignment, patterns, maxWidth int) ([]WrapperDesign, error) {
	return tam.Enumerate(d.Netlist, d.Placement, asn, patterns, maxWidth)
}

// Schedule performs wrapper/TAM co-optimization for a pre-bond stack: it
// enumerates each die's Pareto wrapper designs and packs one rectangle per
// die into a (totalWidth × time) plane with a best-fit-decreasing
// heuristic and idle-width reclamation. The schedule is deterministic,
// overlap-free, never exceeds totalWidth, and its makespan never exceeds
// serial one-die-at-a-time testing.
func Schedule(stack []StackDie, totalWidth int) (*TestSchedule, error) {
	specs := make([]tam.DieSpec, len(stack))
	for i, sd := range stack {
		if sd.Die == nil {
			return nil, fmt.Errorf("wcm3d: stack entry %d has no die", i)
		}
		name := sd.Name
		if name == "" {
			name = sd.Die.Profile.Name()
		}
		designs, err := tam.Enumerate(sd.Die.Netlist, sd.Die.Placement, sd.Assignment, sd.Patterns, totalWidth)
		if err != nil {
			return nil, fmt.Errorf("wcm3d: enumerating %s: %w", name, err)
		}
		specs[i] = tam.DieSpec{Name: name, Designs: designs}
	}
	return tam.Pack(specs, totalWidth)
}

// Syndrome is a tester observation: which applied patterns failed.
type Syndrome = diagnose.Syndrome

// DiagnosisCandidate is one ranked defect explanation.
type DiagnosisCandidate = diagnose.Candidate

// Diagnose ranks the die's fault universe against a tester syndrome for a
// pattern set applied to the wrapped die (ApplyTestMode view), best
// explanation first.
func Diagnose(d *Die, asn *Assignment, patterns []Pattern, syn *Syndrome) ([]DiagnosisCandidate, error) {
	tn, err := scan.ApplyTestMode(d.Netlist, asn)
	if err != nil {
		return nil, err
	}
	return diagnose.Locate(tn, patterns, syn, d.StuckAt)
}

// SuspectTSVs maps ranked defect candidates onto TSV names whose test
// paths they implicate.
func SuspectTSVs(d *Die, asn *Assignment, ranked []DiagnosisCandidate, maxFaults int) ([]string, error) {
	tn, err := scan.ApplyTestMode(d.Netlist, asn)
	if err != nil {
		return nil, err
	}
	return diagnose.TSVSuspects(tn, ranked, maxFaults), nil
}

// Pattern is one scan test vector.
type Pattern = faultsim.Pattern

// ----- TSV-defect repair and incremental replanning (internal/tsvrepair).

type (
	// TSVFaultKind classifies a pre-bond TSV defect (stuck, open,
	// bridge, crosstalk).
	TSVFaultKind = tsvrepair.FaultKind
	// TSVFault is one TSV defect, referencing TSVs by name.
	TSVFault = tsvrepair.Fault
	// TSVDelta is an atomic batch of TSV faults.
	TSVDelta = tsvrepair.Delta
	// TSVRepair records one executed victim-to-spare substitution.
	TSVRepair = tsvrepair.Repair
	// SpareSpec says how many spare TSV sites a die carries per side.
	SpareSpec = tsvrepair.SpareSpec
	// ReplanPlanner owns a die's repair lifecycle: it patches TSV
	// faults onto spares and replans incrementally through cached
	// cone/verdict geometry (see internal/tsvrepair).
	ReplanPlanner = tsvrepair.Planner
)

// TSV defect kinds.
const (
	TSVStuck0    = tsvrepair.Stuck0
	TSVStuck1    = tsvrepair.Stuck1
	TSVOpen      = tsvrepair.Open
	TSVBridge    = tsvrepair.Bridge
	TSVCrosstalk = tsvrepair.Crosstalk
)

// Replan failure classes, for callers mapping outcomes to exit codes or
// HTTP statuses.
var (
	// ErrUnknownTSV: a fault named no live TSV on the die.
	ErrUnknownTSV = tsvrepair.ErrUnknownTSV
	// ErrNoSpares: the delta needs more spare sites than remain.
	ErrNoSpares = tsvrepair.ErrNoSpares
	// ErrBadTSVFault: the fault itself is malformed.
	ErrBadTSVFault = tsvrepair.ErrBadFault
)

// ParseTSVFaultKind maps the CLI/service spelling ("stuck0", "open",
// "bridge", ...) to a kind.
func ParseTSVFaultKind(s string) (TSVFaultKind, error) { return tsvrepair.ParseFaultKind(s) }

// AddSpareTSVs materializes spare TSV sites on an unprepared netlist;
// call it before PrepareParsed so the sites get placed and timed.
func AddSpareTSVs(n *Netlist, spec SpareSpec) error { return tsvrepair.AddSpares(n, spec) }

// PrepareDieWithSpares generates and prepares a benchmark die carrying
// spare TSV sites, ready for NewReplanPlanner.
func PrepareDieWithSpares(p Profile, seed int64, spec SpareSpec) (*Die, error) {
	return tsvrepair.PrepareWithSpares(p, seed, spec)
}

// NewReplanPlanner clones the die (the caller's stays pristine), plans
// the baseline, and seeds the incremental-replan caches.
func NewReplanPlanner(d *Die, opts MinimizeOptions) (*ReplanPlanner, error) {
	return tsvrepair.NewPlanner(d, opts)
}

// Replan applies one fault delta to the planner's die — atomically
// rerouting every victim TSV to a spare site — and replans the patched
// die incrementally. The returned plan is certified equivalent to a
// from-scratch Minimize on the patched die: the planner's Rerun method
// produces that reference, and the differential suites in
// internal/tsvrepair and the replan-equivalence CI job hold the two
// bit-equal. A failed delta leaves die and plan untouched.
func Replan(p *ReplanPlanner, delta TSVDelta) (*MinimizeResult, []TSVRepair, error) {
	if p == nil {
		return nil, nil, fmt.Errorf("wcm3d: Replan needs a planner")
	}
	reps, err := p.Apply(delta)
	if err != nil {
		return nil, nil, err
	}
	res, err := p.Replan()
	if err != nil {
		return nil, reps, err
	}
	return res, reps, nil
}

// GeneratePatterns runs stuck-at ATPG on the wrapped die and returns the
// pattern set and its grade — the vectors Diagnose expects back from the
// tester.
func GeneratePatterns(d *Die, asn *Assignment, budget ATPGBudget) ([]Pattern, Testability, error) {
	tn, err := scan.ApplyTestMode(d.Netlist, asn)
	if err != nil {
		return nil, Testability{}, err
	}
	res, err := atpg.Run(tn, d.StuckAt, budget.Stuck)
	if err != nil {
		return nil, Testability{}, err
	}
	return res.Patterns, Testability{
		Coverage:    res.TestCoverage(),
		RawCoverage: res.Coverage(),
		Patterns:    res.PatternCount(),
	}, nil
}

// SimulateDefect plays the tester for a hypothetical defective die: it
// applies the pattern set to the wrapped die carrying the given fault and
// returns the syndrome (which patterns fail). Used to exercise Diagnose in
// tests and demos, and to build fault dictionaries.
func SimulateDefect(d *Die, asn *Assignment, f Fault, patterns []Pattern) (*Syndrome, error) {
	tn, err := scan.ApplyTestMode(d.Netlist, asn)
	if err != nil {
		return nil, err
	}
	sim := faultsim.New(tn)
	eng := sim.NewEngine()
	syn := &Syndrome{Failing: make([]bool, len(patterns))}
	for base := 0; base < len(patterns); base += 64 {
		end := base + 64
		if end > len(patterns) {
			end = len(patterns)
		}
		good, err := sim.GoodSim(patterns[base:end])
		if err != nil {
			return nil, err
		}
		det := eng.Detects(f, good)
		for k := 0; k < end-base; k++ {
			if det&(1<<uint(k)) != 0 {
				syn.Failing[base+k] = true
			}
		}
	}
	return syn, nil
}
