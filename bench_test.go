package wcm3d_test

// Benchmarks, one per paper table and figure, plus the ablations DESIGN.md
// calls out and per-substrate micro-benchmarks. Each table/figure bench
// exercises the same code path cmd/tables runs for the paper-faithful
// output, but on the smaller circuit families and reduced ATPG budgets so
// an iteration stays in the seconds range; run `go run ./cmd/tables -all`
// for the full 24-die reproduction.
//
// Several benches attach the experiment's headline numbers as custom
// metrics (cells/die, violations, edge growth), so `go test -bench` output
// doubles as a quick regression dashboard for solution quality.

import (
	"io"
	"math/rand"
	"testing"

	"wcm3d"
	"wcm3d/internal/atpg"
	"wcm3d/internal/experiments"
	"wcm3d/internal/faults"
	"wcm3d/internal/faultsim"
	"wcm3d/internal/netgen"
	"wcm3d/internal/place"
	"wcm3d/internal/sta"
	"wcm3d/internal/wcm"
)

func prepareDies(b *testing.B, circuit string) []*experiments.Die {
	b.Helper()
	dies, err := experiments.PrepareSuite(netgen.ITC99Circuit(circuit), 1)
	if err != nil {
		b.Fatal(err)
	}
	return dies
}

// BenchmarkTable1_OrderingB12 regenerates Table I: Agrawal's method started
// from the inbound vs the outbound TSV set, fault-graded per order.
func BenchmarkTable1_OrderingB12(b *testing.B) {
	dies := prepareDies(b, "b12")
	budget := experiments.ReducedBudget(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(dies, budget)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.RenderTable1(io.Discard, rows)
		}
	}
}

// BenchmarkTable2_Generate regenerates Table II: all 24 benchmark dies.
func BenchmarkTable2_Generate(b *testing.B) {
	profiles := netgen.ITC99Profiles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(profiles, 1)
		if err != nil {
			b.Fatal(err)
		}
		experiments.RenderTable2(io.Discard, rows)
	}
}

// BenchmarkTable3_B12 regenerates Table III on the b12 family: four
// method × scenario combinations per die plus timing signoff. Violations
// per method are reported as metrics.
func BenchmarkTable3_B12(b *testing.B) {
	dies := prepareDies(b, "b12")
	b.ResetTimer()
	var last experiments.Table3Summary
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(dies)
		if err != nil {
			b.Fatal(err)
		}
		last = experiments.Summarize(rows)
	}
	b.ReportMetric(float64(last.AgrViolations), "agrawal-violations")
	b.ReportMetric(float64(last.OurViolations), "our-violations")
	b.ReportMetric(last.OurTightCells, "our-tight-cells/die")
	b.ReportMetric(last.AgrLooseCells, "agr-loose-cells/die")
}

// BenchmarkTable4_B11 regenerates Table IV (coverage and pattern counts,
// stuck-at + transition, Agrawal vs ours) on the b11 family.
func BenchmarkTable4_B11(b *testing.B) {
	dies := prepareDies(b, "b11")
	budget := experiments.ReducedBudget(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(dies, budget)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.RenderTable4(io.Discard, rows)
		}
	}
}

// BenchmarkTable5_Overlap regenerates Table V's overlapped-cone comparison
// on the b12 family (the paper uses b20-b22; the mechanism is identical —
// run cmd/tables -table 5 for the full set).
func BenchmarkTable5_Overlap(b *testing.B) {
	dies := prepareDies(b, "b12")
	budget := experiments.ReducedBudget(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table5(dies, budget)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.RenderTable5(io.Discard, rows)
		}
	}
}

// BenchmarkFigure7_Edges regenerates Figure 7: sharing-graph edge growth
// from overlapped-cone edges, on the b20 family. The average growth is
// attached as a metric.
func BenchmarkFigure7_Edges(b *testing.B) {
	dies := prepareDies(b, "b20")
	b.ResetTimer()
	var growth float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure7(dies)
		if err != nil {
			b.Fatal(err)
		}
		growth = 0
		for _, r := range rows {
			growth += r.PctGrowth
		}
		growth /= float64(len(rows))
	}
	b.ReportMetric(growth, "edge-growth-%")
}

// ---------------------------------------------------------------- ablations

// BenchmarkAblation_Ordering isolates design decision 1: larger-set-first
// versus the fixed orders, measured by additional wrapper cells.
func BenchmarkAblation_Ordering(b *testing.B) {
	dies := prepareDies(b, "b12")
	for _, order := range []wcm.OrderPolicy{
		wcm.OrderLargerFirst, wcm.OrderInboundFirst, wcm.OrderOutboundFirst, wcm.OrderSmallerFirst,
	} {
		b.Run(order.String(), func(b *testing.B) {
			cells := 0
			for i := 0; i < b.N; i++ {
				cells = 0
				for _, d := range dies {
					opts := experiments.OurOptions(d, experiments.Scenario{Tight: true})
					opts.Order = order
					res, err := wcm.Run(d.Input(), opts)
					if err != nil {
						b.Fatal(err)
					}
					cells += res.AdditionalCells
				}
			}
			b.ReportMetric(float64(cells), "cells")
		})
	}
}

// BenchmarkAblation_WireDelay isolates design decision 2: the wire-aware
// timing model versus capacitance-only, measured by timing violations —
// the heart of Table III.
func BenchmarkAblation_WireDelay(b *testing.B) {
	dies := prepareDies(b, "b12")
	for _, timing := range []wcm.TimingModel{wcm.TimingCapWire, wcm.TimingCapOnly} {
		b.Run(timing.String(), func(b *testing.B) {
			viol := 0
			for i := 0; i < b.N; i++ {
				viol = 0
				for _, d := range dies {
					opts := experiments.OurOptions(d, experiments.Scenario{Tight: true})
					opts.Timing = timing
					res, err := wcm.Run(d.Input(), opts)
					if err != nil {
						b.Fatal(err)
					}
					v, _, err := experiments.CheckTiming(d, res.Assignment)
					if err != nil {
						b.Fatal(err)
					}
					if v {
						viol++
					}
				}
			}
			b.ReportMetric(float64(viol), "violations")
		})
	}
}

// BenchmarkAblation_MergePolicy isolates design decision 4: minimum-degree
// pair selection versus merging arbitrary edges.
func BenchmarkAblation_MergePolicy(b *testing.B) {
	dies := prepareDies(b, "b12")
	for _, policy := range []wcm.MergePolicy{wcm.MergeMinDegree, wcm.MergeFirstEdge} {
		b.Run(policy.String(), func(b *testing.B) {
			cells := 0
			for i := 0; i < b.N; i++ {
				cells = 0
				for _, d := range dies {
					opts := experiments.OurOptions(d, experiments.Scenario{Tight: true})
					opts.Merge = policy
					res, err := wcm.Run(d.Input(), opts)
					if err != nil {
						b.Fatal(err)
					}
					cells += res.AdditionalCells
				}
			}
			b.ReportMetric(float64(cells), "cells")
		})
	}
}

// ------------------------------------------------------------- substrates

// BenchmarkGenerateDie measures the synthetic benchmark generator at b20
// scale (~7k gates).
func BenchmarkGenerateDie(b *testing.B) {
	p := netgen.ITC99Circuit("b20")[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netgen.Generate(p, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlace measures grid placement with force-directed refinement.
func BenchmarkPlace(b *testing.B) {
	n, err := netgen.Generate(netgen.ITC99Circuit("b20")[0], 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := place.Place(n, place.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSTA measures a full timing analysis at b20 scale.
func BenchmarkSTA(b *testing.B) {
	n, err := netgen.Generate(netgen.ITC99Circuit("b20")[0], 1)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := place.Place(n, place.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	lib := wcm3d.DefaultLibrary()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sta.Analyze(n, lib, sta.Config{ClockPS: 2000, Placement: pl}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultSim measures bit-parallel fault simulation: one 64-pattern
// block against the full collapsed fault list of a b11-scale die.
func BenchmarkFaultSim(b *testing.B) {
	n, err := netgen.Generate(netgen.ITC99Circuit("b11")[1], 1)
	if err != nil {
		b.Fatal(err)
	}
	sim := faultsim.New(n)
	eng := sim.NewEngine()
	rng := rand.New(rand.NewSource(1))
	pats := make([]faultsim.Pattern, 64)
	for i := range pats {
		pats[i] = sim.RandomPattern(rng)
	}
	block, err := sim.GoodSim(pats)
	if err != nil {
		b.Fatal(err)
	}
	list := faults.CollapsedList(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range list {
			eng.Detects(f, block)
		}
	}
	b.ReportMetric(float64(len(list)), "faults")
}

// BenchmarkATPG measures the full pattern-generation flow (random phase,
// PODEM, compaction) on a b11-scale die.
func BenchmarkATPG(b *testing.B) {
	n, err := netgen.Generate(netgen.ITC99Circuit("b11")[1], 1)
	if err != nil {
		b.Fatal(err)
	}
	list := faults.CollapsedList(n)
	b.ResetTimer()
	var res *atpg.Result
	for i := 0; i < b.N; i++ {
		res, err = atpg.Run(n, list, atpg.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.TestCoverage(), "test-coverage-%")
	b.ReportMetric(float64(res.PatternCount()), "patterns")
}

// BenchmarkWCM measures the minimization engine itself (graph construction
// plus clique partitioning) on the largest b22 die.
func BenchmarkWCM(b *testing.B) {
	d, err := experiments.PrepareDie(netgen.ITC99Circuit("b22")[2], 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var res *wcm.Result
	for i := 0; i < b.N; i++ {
		res, err = wcm.Run(d.Input(), experiments.OurOptions(d, experiments.Scenario{Tight: true}))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.ReusedFFs), "reused")
	b.ReportMetric(float64(res.AdditionalCells), "cells")
}

// BenchmarkRunLargestDie measures one complete wcm.Run — the unit of
// latency behind every wcmd job — on the largest b22 die, with the
// single-die hot path forced serial (workers=1, the pre-parallelism
// baseline shape) and free to use every core. The plan is bit-identical
// either way; only the latency moves.
func BenchmarkRunLargestDie(b *testing.B) {
	d, err := experiments.PrepareDie(netgen.ITC99Circuit("b22")[2], 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			var res *wcm.Result
			for i := 0; i < b.N; i++ {
				opts := experiments.OurOptions(d, experiments.Scenario{Tight: true})
				opts.Workers = bc.workers
				res, err = wcm.Run(d.Input(), opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.ReusedFFs), "reused")
			b.ReportMetric(float64(res.AdditionalCells), "cells")
		})
	}
}

// BenchmarkTAMWidths_B11 regenerates the TAM width sweep on the b11 stack:
// wrap each die, enumerate its Pareto wrapper designs, and pack the stack
// at each budget. The speedup metric is the 16-wire packed-vs-serial
// ratio — the scheduler's headline number.
func BenchmarkTAMWidths_B11(b *testing.B) {
	dies := prepareDies(b, "b11")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TAMWidths(dies, []int{16, 32}, experiments.ReducedBudget(1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].Speedup(), "speedup-16w")
		}
	}
}
