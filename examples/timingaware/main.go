// Timingaware: reproduce the paper's central claim on one circuit family —
// a capacitance-only reuse method (Agrawal, TCAD'15) breaks the clock on
// most dies under a tight constraint, while the wire-aware method inserts
// wrapper cells with zero violations.
//
//	go run ./examples/timingaware [circuit]
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"wcm3d"
)

func main() {
	circuit := "b20"
	if len(os.Args) > 1 {
		circuit = os.Args[1]
	}
	profiles := wcm3d.CircuitProfiles(circuit)
	if profiles == nil {
		log.Fatalf("unknown circuit %q (want one of %v)", circuit, wcm3d.CircuitNames())
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "die\tmethod\treused\tcells\tWNS (ps)\ttiming")
	agrViol, ourViol := 0, 0
	for _, p := range profiles {
		die, err := wcm3d.PrepareDie(p, 1)
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range []wcm3d.Method{wcm3d.MethodAgrawal, wcm3d.MethodOurs} {
			res, err := wcm3d.Minimize(die, m, wcm3d.TightTiming)
			if err != nil {
				log.Fatal(err)
			}
			viol, wns, err := wcm3d.CheckTiming(die, res.Assignment)
			if err != nil {
				log.Fatal(err)
			}
			mark := "meets"
			if viol {
				mark = "VIOLATES"
				if m == wcm3d.MethodAgrawal {
					agrViol++
				} else {
					ourViol++
				}
			}
			fmt.Fprintf(tw, "%s\t%v\t%d\t%d\t%+.1f\t%s\n",
				p.Name(), m, res.ReusedFFs, res.AdditionalCells, wns, mark)
		}
	}
	tw.Flush()
	fmt.Printf("\nviolations: agrawal %d/%d dies, ours %d/%d dies\n",
		agrViol, len(profiles), ourViol, len(profiles))
	fmt.Println("The capacitance-only model cannot see the wire it routes a reused")
	fmt.Println("flip-flop across; the wire-aware model prices it into every merge.")
}
