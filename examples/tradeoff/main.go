// Tradeoff: sweep the paper's testability thresholds (cov_th, p_th) and
// watch area trade against fault coverage — the knob §IV of the paper
// introduces for overlapped-cone sharing.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"wcm3d"
)

func main() {
	die, err := wcm3d.PrepareDie(wcm3d.CircuitProfiles("b12")[2], 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("die %s: sweeping cov_th with p_th fixed at 10\n\n", die.Profile.Name())

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "cov_th\toverlap edges\treused FFs\tadded cells\tstuck-at cov\t#patterns")

	budget := wcm3d.DefaultBudget(1)
	for _, covTh := range []float64{0, 0.001, 0.005, 0.02, 0.10} {
		opts := wcm3d.OurOptions(die, wcm3d.TightTiming)
		opts.AllowOverlap = covTh > 0
		opts.CovThFrac = covTh
		opts.PatThCount = 10
		res, err := wcm3d.MinimizeWith(die, opts)
		if err != nil {
			log.Fatal(err)
		}
		tb, err := wcm3d.EvaluateStuckAt(die, res.Assignment, budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%.1f%%\t%d\t%d\t%d\t%.2f%%\t%d\n",
			100*covTh, res.TotalOverlapEdges(), res.ReusedFFs, res.AdditionalCells,
			100*tb.Coverage, tb.Patterns)
	}
	tw.Flush()
	fmt.Println("\nLarger cov_th admits more overlapped-cone sharing: fewer wrapper")
	fmt.Println("cells, at the price of aliasing that shows up as lost coverage.")
}
