// Schedule: wrap the four b11 dies, then co-optimize wrapper width and
// test scheduling for the whole pre-bond stack — how should 16 TAM wires
// be shared so the stack finishes testing fastest?
//
//	go run ./examples/schedule
package main

import (
	"fmt"
	"log"

	"wcm3d"
)

func main() {
	const totalWidth = 16

	// Wrap each die with the paper's method under tight timing, then grade
	// it with stuck-at ATPG — the pattern count prices its test time.
	var stack []wcm3d.StackDie
	for _, p := range wcm3d.CircuitProfiles("b11") {
		die, err := wcm3d.PrepareDie(p, 1)
		if err != nil {
			log.Fatal(err)
		}
		res, err := wcm3d.Minimize(die, wcm3d.MethodOurs, wcm3d.TightTiming)
		if err != nil {
			log.Fatal(err)
		}
		tb, err := wcm3d.EvaluateStuckAt(die, res.Assignment, wcm3d.ReducedBudget(1))
		if err != nil {
			log.Fatal(err)
		}
		stack = append(stack, wcm3d.StackDie{
			Die: die, Assignment: res.Assignment, Patterns: tb.Patterns,
		})

		// Each die's Pareto frontier: more wires, fewer cycles.
		designs, err := wcm3d.EnumerateWrapperDesigns(die, res.Assignment, tb.Patterns, totalWidth)
		if err != nil {
			log.Fatal(err)
		}
		fastest := designs[len(designs)-1]
		fmt.Printf("%-9s %3d patterns, %d Pareto designs (1 wire: %d cycles ... %d wires: %d cycles)\n",
			p.Name(), tb.Patterns, len(designs),
			designs[0].Cycles, fastest.Width, fastest.Cycles)
	}

	// Pack one rectangle per die into the (width x time) plane.
	sched, err := wcm3d.Schedule(stack, totalWidth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nschedule on %d TAM wires: makespan %d cycles (serial %d, %.2fx speedup, %.0f%% utilization)\n",
		sched.TotalWidth, sched.MakespanCycles, sched.SerialCycles,
		float64(sched.SerialCycles)/float64(sched.MakespanCycles), 100*sched.Utilization())
	for _, sl := range sched.Slots {
		fmt.Printf("  %-9s wires %2d..%-2d  cycles %6d..%-6d\n",
			sl.Die, sl.FirstWire, sl.FirstWire+sl.Width, sl.StartCycle, sl.EndCycle)
	}
}
