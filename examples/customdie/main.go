// Customdie: run the wrapper-cell flow on a die you wrote by hand in the
// .bench dialect — the path a user takes with their own partitioned
// design rather than the paper's benchmarks.
//
//	go run ./examples/customdie
package main

import (
	"fmt"
	"log"
	"strings"

	"wcm3d"
)

// A small die with four inbound and three outbound TSVs, two scan
// flip-flops, and a little logic. TSV_IN pads float during pre-bond test;
// TSV_OUT ports are unobservable — until the flow wraps them.
const die = `
INPUT(clk_en)
INPUT(mode)
TSV_IN(t_in0)
TSV_IN(t_in1)
TSV_IN(t_in2)
TSV_IN(t_in3)
ff_state0 = DFF(n_next0)
ff_state1 = DFF(n_next1)
n_a = AND(t_in0, clk_en)
n_b = OR(t_in1, mode)
n_c = XOR(t_in2, t_in3)
n_d = NAND(n_a, ff_state0)
n_e = NOR(n_b, ff_state1)
n_next0 = XOR(n_d, n_c)
n_next1 = AND(n_e, n_c)
n_out = OR(n_d, n_e)
OUTPUT(status) = n_out
TSV_OUT(t_out0) = n_d
TSV_OUT(t_out1) = n_e
TSV_OUT(t_out2) = n_next0
`

func main() {
	n, err := wcm3d.ParseNetlist("customdie", strings.NewReader(die))
	if err != nil {
		log.Fatal(err)
	}
	prepared, err := wcm3d.PrepareParsed(n, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %s: %d gates, %d FFs, %d inbound + %d outbound TSVs\n",
		n.Name, n.NumLogicGates(), len(n.FlipFlops()),
		len(n.InboundTSVs()), len(n.OutboundTSVs()))

	// Without any wrapper, most faults hide behind the floating TSVs.
	bare := &wcm3d.Assignment{}
	_ = bare
	res, err := wcm3d.Minimize(prepared, wcm3d.MethodOurs, wcm3d.LooseTiming)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d reused FFs, %d additional wrapper cells\n",
		res.ReusedFFs, res.AdditionalCells)
	for i, g := range res.Assignment.Control {
		names := make([]string, len(g.TSVs))
		for j, t := range g.TSVs {
			names[j] = n.NameOf(t)
		}
		who := "dedicated cell"
		if g.Reused() {
			who = "reuses " + n.NameOf(g.ReusedFF)
		}
		fmt.Printf("  control group %d (%s): %s\n", i, who, strings.Join(names, ", "))
	}
	for i, g := range res.Assignment.Observe {
		names := make([]string, len(g.Ports))
		for j, p := range g.Ports {
			names[j] = n.Outputs[p].Name
		}
		who := "dedicated cell"
		if g.Reused() {
			who = "reuses " + n.NameOf(g.ReusedFF)
		}
		fmt.Printf("  observe group %d (%s): %s\n", i, who, strings.Join(names, ", "))
	}

	tb, err := wcm3d.EvaluateStuckAt(prepared, res.Assignment, wcm3d.DefaultBudget(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrapped testability: %.2f%% stuck-at coverage, %d patterns\n",
		100*tb.Coverage, tb.Patterns)
}
