// Quickstart: wrap one benchmark die and see what scan flip-flop reuse
// buys over dedicated wrapper cells.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wcm3d"
)

func main() {
	// b12, die 1: 18 scan flip-flops, ~400 gates, 82 TSVs.
	profile := wcm3d.CircuitProfiles("b12")[1]
	die, err := wcm3d.PrepareDie(profile, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("die %s: %d gates, %d scan FFs, %d TSVs, clock %.0f ps\n",
		profile.Name(), die.Netlist.NumLogicGates(),
		len(die.Netlist.FlipFlops()),
		len(die.Netlist.InboundTSVs())+len(die.Netlist.OutboundTSVs()),
		die.ClockPS)

	// The naive plan: one dedicated wrapper cell per TSV.
	naive, err := wcm3d.Minimize(die, wcm3d.MethodFullWrap, wcm3d.LooseTiming)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full wrap: %d additional wrapper cells\n", naive.AdditionalCells)

	// The paper's method under tight timing: reuse scan flip-flops and
	// share cells between TSVs, without breaking the clock.
	ours, err := wcm3d.Minimize(die, wcm3d.MethodOurs, wcm3d.TightTiming)
	if err != nil {
		log.Fatal(err)
	}
	viol, wns, err := wcm3d.CheckTiming(die, ours.Assignment)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ours:      %d reused FFs + %d additional cells (%.0f%% fewer cells), WNS %+.1f ps, violation=%v\n",
		ours.ReusedFFs, ours.AdditionalCells,
		100*(1-float64(ours.AdditionalCells)/float64(naive.AdditionalCells)),
		wns, viol)

	// Grade the result: stuck-at ATPG against the die's fault universe.
	tb, err := wcm3d.EvaluateStuckAt(die, ours.Assignment, wcm3d.DefaultBudget(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("testability: %.2f%% stuck-at coverage with %d patterns\n",
		100*tb.Coverage, tb.Patterns)
}
