// Stack3d: the full 3D-IC pipeline on one monolithic design — partition it
// into a four-die stack with Fiduccia–Mattheyses min-cut (TSVs appear at
// every cut net), then run the wrapper-cell flow on each die, exactly what
// the paper's front-end (3D-Craft) did to the ITC'99 circuits.
//
//	go run ./examples/stack3d
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"wcm3d"
	"wcm3d/internal/netgen"
	"wcm3d/internal/partition"
)

func main() {
	// A monolithic design (no TSVs yet): ~2000 gates, 120 flip-flops.
	mono, err := netgen.Random(netgen.RandomOptions{
		Gates: 2000, FFs: 120, PIs: 10, POs: 8, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monolith: %d gates, %d FFs\n", mono.NumLogicGates(), len(mono.FlipFlops()))

	res, err := partition.Partition(mono, partition.Options{Dies: 4, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned into %d dies, %d cut nets become TSVs\n\n", len(res.Dies), res.CutNets)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "die\tgates\tFFs\tin-TSVs\tout-TSVs\treused\tadded cells\ttiming")
	for i, die := range res.Dies {
		prepared, err := wcm3d.PrepareParsed(die, 7)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := wcm3d.Minimize(prepared, wcm3d.MethodOurs, wcm3d.TightTiming)
		if err != nil {
			log.Fatal(err)
		}
		viol, _, err := wcm3d.CheckTiming(prepared, plan.Assignment)
		if err != nil {
			log.Fatal(err)
		}
		mark := "meets"
		if viol {
			mark = "VIOLATES"
		}
		fmt.Fprintf(tw, "die%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			i, die.NumLogicGates(), len(die.FlipFlops()),
			len(die.InboundTSVs()), len(die.OutboundTSVs()),
			plan.ReusedFFs, plan.AdditionalCells, mark)
	}
	tw.Flush()
	fmt.Println("\nEvery die is pre-bond testable; scan flip-flops stood in for")
	fmt.Println("most wrapper cells, and no die broke its clock.")
}
