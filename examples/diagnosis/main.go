// Diagnosis: the step after a die fails pre-bond test. Wrap a die, build
// its test set, "manufacture" a defective copy by injecting a stuck-at
// fault, run the test, and diagnose which fault — and which TSV path — the
// tester's failing-pattern signature implicates.
//
//	go run ./examples/diagnosis
package main

import (
	"fmt"
	"log"
	"math/rand"

	"wcm3d"
)

func main() {
	die, err := wcm3d.PrepareDie(wcm3d.CircuitProfiles("b12")[0], 1)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := wcm3d.Minimize(die, wcm3d.MethodOurs, wcm3d.TightTiming)
	if err != nil {
		log.Fatal(err)
	}
	patterns, grade, err := wcm3d.GeneratePatterns(die, plan.Assignment, wcm3d.DefaultBudget(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("die %s wrapped (%d reused FFs, %d cells); test set: %d patterns, %.2f%% coverage\n",
		die.Profile.Name(), plan.ReusedFFs, plan.AdditionalCells, len(patterns), 100*grade.Coverage)

	// "Manufacture" a defective die: pick a random detectable fault as
	// ground truth and record the tester's syndrome for it.
	rng := rand.New(rand.NewSource(11))
	var truth wcm3d.Fault
	var syn *wcm3d.Syndrome
	for tries := 0; tries < 50; tries++ {
		truth = die.StuckAt[rng.Intn(len(die.StuckAt))]
		s, err := wcm3d.SimulateDefect(die, plan.Assignment, truth, patterns)
		if err != nil {
			log.Fatal(err)
		}
		if s.FailCount() > 0 {
			syn = s
			break
		}
	}
	if syn == nil {
		log.Fatal("could not find a detectable defect to inject")
	}
	fmt.Printf("injected defect: %s — %d of %d patterns fail on the tester\n",
		truth.Describe(die.Netlist), syn.FailCount(), len(patterns))

	ranked, err := wcm3d.Diagnose(die, plan.Assignment, patterns, syn)
	if err != nil {
		log.Fatal(err)
	}
	exact := 0
	for _, c := range ranked {
		if !c.Exact() {
			break
		}
		exact++
	}
	fmt.Printf("diagnosis: %d candidate faults, %d with exact signature match\n", len(ranked), exact)
	for i, c := range ranked[:min(3, len(ranked))] {
		mark := ""
		if c.Fault == truth {
			mark = "   <-- the injected defect"
		}
		fmt.Printf("  #%d %-28s matched=%d missed=%d extra=%d%s\n",
			i+1, c.Fault.Describe(die.Netlist), c.Matched, c.Missed, c.Extra, mark)
	}
	suspects, err := wcm3d.SuspectTSVs(die, plan.Assignment, ranked, exact)
	if err != nil {
		log.Fatal(err)
	}
	if len(suspects) > 0 {
		fmt.Printf("implicated TSV paths: %v\n", suspects[:min(4, len(suspects))])
	} else {
		fmt.Println("defect lies outside every TSV cone (internal logic)")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
