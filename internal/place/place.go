// Package place assigns physical (x, y) coordinates to every gate, TSV pad
// and output port of a die. It substitutes for the 3D-Craft physical-design
// flow the paper used: the wrapper-cell algorithms only consume two
// artefacts of physical design — pairwise Manhattan distance (the d_th edge
// filter in graph construction) and wire lengths (the wire-delay term of the
// timing model) — and this package produces both.
//
// The placer is deliberately simple but produces realistic structure:
// gates start at positions derived from their logic level (inputs on the
// left, deep logic on the right), TSV pads sit on a regular array across the
// die as in via-middle 3D processes, and a configurable number of
// force-directed sweeps pulls connected cells together, shortening most
// nets while leaving the long cross-die nets that make wire-aware timing
// matter.
package place

import (
	"fmt"
	"math"
	"math/rand"

	"wcm3d/internal/netlist"
)

// Point is a location on the die, in µm.
type Point struct {
	X, Y float64
}

// ManhattanTo returns the Manhattan distance between two points.
func (p Point) ManhattanTo(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Options configures the placer. The zero value is usable: DefaultOptions
// values are substituted for unset fields.
type Options struct {
	// CellAreaUM2 is the average standard-cell footprint used to size
	// the die. Default 4.0 µm² (45 nm-class).
	CellAreaUM2 float64
	// Utilization is the fraction of die area occupied by cells.
	// Default 0.65.
	Utilization float64
	// Sweeps is the number of force-directed refinement passes.
	// Default 8.
	Sweeps int
	// TSVPitchUM is the minimum TSV array pitch. Dies with many TSVs are
	// sized by the array, not by cell area — on small partitioned dies
	// the TSV array dominates the footprint. Default 20 µm.
	TSVPitchUM float64
	// Seed makes placement deterministic. Two calls with equal inputs
	// and seeds produce identical placements.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.CellAreaUM2 <= 0 {
		o.CellAreaUM2 = 4.0
	}
	if o.Utilization <= 0 || o.Utilization > 1 {
		o.Utilization = 0.65
	}
	if o.Sweeps <= 0 {
		o.Sweeps = 8
	}
	if o.TSVPitchUM <= 0 {
		o.TSVPitchUM = 20
	}
	return o
}

// Placement holds the result: a coordinate for every signal (indexed by
// SignalID) and for every output port (indexed by output index).
type Placement struct {
	// Netlist is the placed die.
	Netlist *netlist.Netlist
	// Width and Height are the die dimensions in µm.
	Width, Height float64
	// Coords[id] is the location of the gate driving signal id.
	Coords []Point
	// OutCoords[i] is the pad location of output port i (for outbound
	// TSVs this is the TSV pillar position, distinct from the driving
	// gate's position).
	OutCoords []Point
}

// Distance returns the Manhattan distance between two signals' cells.
func (p *Placement) Distance(a, b netlist.SignalID) float64 {
	return p.Coords[a].ManhattanTo(p.Coords[b])
}

// DistanceToOut returns the Manhattan distance between a signal's cell and
// an output port's pad.
func (p *Placement) DistanceToOut(a netlist.SignalID, outIdx int) float64 {
	return p.Coords[a].ManhattanTo(p.OutCoords[outIdx])
}

// WireLength returns the estimated routed length of the net from driver
// `from` to sink `to`: Manhattan distance (L-shaped route).
func (p *Placement) WireLength(from, to netlist.SignalID) float64 {
	return p.Distance(from, to)
}

// Place computes a placement for the die.
func Place(n *netlist.Netlist, opts Options) (*Placement, error) {
	opts = opts.withDefaults()
	if n.NumGates() == 0 {
		return nil, fmt.Errorf("place: netlist %q is empty", n.Name)
	}
	side := math.Sqrt(float64(n.NumGates()) * opts.CellAreaUM2 / opts.Utilization)
	// The die must also fit its TSV arrays at the process pitch.
	maxTSVs := len(n.InboundTSVs())
	if o := len(n.OutboundTSVs()); o > maxTSVs {
		maxTSVs = o
	}
	if arraySide := math.Ceil(math.Sqrt(float64(maxTSVs))) * opts.TSVPitchUM; arraySide > side {
		side = arraySide
	}
	p := &Placement{
		Netlist:   n,
		Width:     side,
		Height:    side,
		Coords:    make([]Point, n.NumGates()),
		OutCoords: make([]Point, len(n.Outputs)),
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	p.seedByLevel(rng)
	p.placeTSVArray(rng)
	p.placeIOPads()
	for s := 0; s < opts.Sweeps; s++ {
		p.forceSweep()
	}
	p.placeOutPads(rng)
	return p, nil
}

// seedByLevel gives every gate an initial x proportional to its logic level
// and a y spread across the die, with jitter so identical levels do not
// stack.
func (p *Placement) seedByLevel(rng *rand.Rand) {
	n := p.Netlist
	maxLvl := n.MaxLevel()
	if maxLvl == 0 {
		maxLvl = 1
	}
	counts := make([]int, maxLvl+1)
	for i := range n.Gates {
		counts[n.Level(netlist.SignalID(i))]++
	}
	idxInLvl := make([]int, maxLvl+1)
	for i := range n.Gates {
		id := netlist.SignalID(i)
		lvl := n.Level(id)
		x := (float64(lvl) + 0.5) / float64(maxLvl+1) * p.Width
		y := (float64(idxInLvl[lvl]) + 0.5) / float64(counts[lvl]) * p.Height
		idxInLvl[lvl]++
		x += (rng.Float64() - 0.5) * p.Width / float64(maxLvl+1)
		y += (rng.Float64() - 0.5) * p.Height * 0.05
		p.Coords[id] = p.clamp(Point{x, y})
	}
}

// placeTSVArray pins inbound TSV pads to a regular array across the die,
// as a via-middle process would, ignoring the level-based seed.
func (p *Placement) placeTSVArray(rng *rand.Rand) {
	tsvs := p.Netlist.InboundTSVs()
	if len(tsvs) == 0 {
		return
	}
	cols := int(math.Ceil(math.Sqrt(float64(len(tsvs)))))
	rows := (len(tsvs) + cols - 1) / cols
	for i, id := range tsvs {
		c, r := i%cols, i/cols
		x := (float64(c) + 0.5) / float64(cols) * p.Width
		y := (float64(r) + 0.5) / float64(rows) * p.Height
		x += (rng.Float64() - 0.5) * p.Width / float64(cols) * 0.3
		y += (rng.Float64() - 0.5) * p.Height / float64(rows) * 0.3
		p.Coords[id] = p.clamp(Point{x, y})
	}
}

// placeIOPads pins primary inputs to the west edge.
func (p *Placement) placeIOPads() {
	ins := p.Netlist.Inputs()
	for i, id := range ins {
		y := (float64(i) + 0.5) / float64(len(ins)) * p.Height
		p.Coords[id] = Point{0, y}
	}
}

// placeOutPads positions output-port pads: primary outputs on the east
// edge, outbound TSV pads on the same regular array geometry as inbound
// pads (offset half a pitch so the two arrays interleave).
func (p *Placement) placeOutPads(rng *rand.Rand) {
	n := p.Netlist
	pos := n.PrimaryOutputs()
	for i, outIdx := range pos {
		y := (float64(i) + 0.5) / float64(len(pos)) * p.Height
		p.OutCoords[outIdx] = Point{p.Width, y}
	}
	touts := n.OutboundTSVs()
	if len(touts) == 0 {
		return
	}
	cols := int(math.Ceil(math.Sqrt(float64(len(touts)))))
	rows := (len(touts) + cols - 1) / cols
	for i, outIdx := range touts {
		c, r := i%cols, i/cols
		x := (float64(c)+1.0)/float64(cols)*p.Width - p.Width/(2*float64(cols))*0.5
		y := (float64(r)+1.0)/float64(rows)*p.Height - p.Height/(2*float64(rows))*0.5
		x += (rng.Float64() - 0.5) * p.Width / float64(cols) * 0.3
		y += (rng.Float64() - 0.5) * p.Height / float64(rows) * 0.3
		p.OutCoords[outIdx] = p.clamp(Point{x, y})
	}
}

// forceSweep moves every movable cell toward the centroid of its connected
// pins. Inputs and TSV pads stay fixed (they are pads/pillars).
func (p *Placement) forceSweep() {
	n := p.Netlist
	fanouts := n.Fanouts()
	for i := range n.Gates {
		id := netlist.SignalID(i)
		g := n.Gate(id)
		if g.Type.IsSource() {
			continue // pads and pillars are fixed
		}
		var sx, sy float64
		cnt := 0
		for _, f := range g.Fanin {
			sx += p.Coords[f].X
			sy += p.Coords[f].Y
			cnt++
		}
		for _, fo := range fanouts[id] {
			sx += p.Coords[fo].X
			sy += p.Coords[fo].Y
			cnt++
		}
		if cnt == 0 {
			continue
		}
		target := Point{sx / float64(cnt), sy / float64(cnt)}
		cur := p.Coords[id]
		// Move 60% of the way to the centroid: full moves oscillate.
		p.Coords[id] = p.clamp(Point{
			cur.X + 0.6*(target.X-cur.X),
			cur.Y + 0.6*(target.Y-cur.Y),
		})
	}
}

func (p *Placement) clamp(pt Point) Point {
	if pt.X < 0 {
		pt.X = 0
	}
	if pt.X > p.Width {
		pt.X = p.Width
	}
	if pt.Y < 0 {
		pt.Y = 0
	}
	if pt.Y > p.Height {
		pt.Y = p.Height
	}
	return pt
}

// TotalWireLength sums the Manhattan length of every net (driver to each
// sink); a quality metric used in tests and reports.
func (p *Placement) TotalWireLength() float64 {
	n := p.Netlist
	total := 0.0
	for i := range n.Gates {
		for _, f := range n.Gates[i].Fanin {
			total += p.Distance(f, netlist.SignalID(i))
		}
	}
	for i, o := range n.Outputs {
		total += p.Coords[o.Signal].ManhattanTo(p.OutCoords[i])
	}
	return total
}
