package place

import (
	"fmt"

	"wcm3d/internal/cells"
	"wcm3d/internal/netlist"
)

// InsertRepeaters performs the post-placement buffering pass a physical
// synthesis flow runs: every net segment longer than the library's
// repeater spacing gets a chain of buffers along its route, so no driver
// sees more than one segment of wire capacitance and wire delay grows
// linearly with distance. The netlist and placement are extended in place;
// existing SignalIDs are preserved (buffers are appended).
func InsertRepeaters(n *netlist.Netlist, pl *Placement, lib *cells.Library) error {
	if pl.Netlist != n {
		return fmt.Errorf("place: placement belongs to %q, buffering %q", pl.Netlist.Name, n.Name)
	}
	seg := lib.TestBufferDistUM
	if seg <= 0 {
		return nil
	}
	bufSeq := 0
	route := func(src netlist.SignalID, to Point) (netlist.SignalID, error) {
		from := pl.Coords[src]
		dist := from.ManhattanTo(to)
		hops := int(dist / seg)
		for h := 1; h <= hops; h++ {
			frac := float64(h) / float64(hops+1)
			at := Point{X: from.X + (to.X-from.X)*frac, Y: from.Y + (to.Y-from.Y)*frac}
			b, err := n.AddGate(netlist.GateBuf, fmt.Sprintf("fbuf%d", bufSeq), src)
			if err != nil {
				return netlist.InvalidSignal, err
			}
			bufSeq++
			pl.Coords = append(pl.Coords, at)
			src = b
		}
		return src, nil
	}

	// Snapshot the original gate count: buffers must not be re-buffered.
	nGates := n.NumGates()
	for gi := 0; gi < nGates; gi++ {
		id := netlist.SignalID(gi)
		g := n.Gate(id)
		if g.Type.IsSource() {
			continue
		}
		for pin := 0; pin < len(g.Fanin); pin++ {
			src := g.Fanin[pin]
			if pl.Coords[src].ManhattanTo(pl.Coords[id]) <= seg {
				continue
			}
			routed, err := route(src, pl.Coords[id])
			if err != nil {
				return err
			}
			if err := n.RewireFanin(id, pin, routed); err != nil {
				return err
			}
		}
	}
	for oi := range n.Outputs {
		src := n.Outputs[oi].Signal
		if pl.Coords[src].ManhattanTo(pl.OutCoords[oi]) <= seg {
			continue
		}
		routed, err := route(src, pl.OutCoords[oi])
		if err != nil {
			return err
		}
		if err := n.RewireOutput(oi, routed); err != nil {
			return err
		}
	}
	return n.Validate()
}
