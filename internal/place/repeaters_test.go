package place

import (
	"strings"
	"testing"

	"wcm3d/internal/cells"
	"wcm3d/internal/netlist"
)

func repTestDie(t *testing.T) (*netlist.Netlist, *Placement) {
	t.Helper()
	// Force long nets: inputs on the west edge, outputs far east, with a
	// coarse TSV pitch blowing the die up.
	n, err := netlist.ParseString("rep", `
INPUT(a)
INPUT(b)
TSV_IN(t0)
TSV_IN(t1)
TSV_IN(t2)
TSV_IN(t3)
TSV_IN(t4)
TSV_IN(t5)
TSV_IN(t6)
TSV_IN(t7)
TSV_IN(t8)
n1 = AND(a, t0)
n2 = OR(n1, b)
n3 = XOR(n2, t8)
q = DFF(n3)
n4 = NAND(q, n1)
OUTPUT(z) = n4
TSV_OUT(u0) = n2
`)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Place(n, Options{Seed: 2, TSVPitchUM: 150})
	if err != nil {
		t.Fatal(err)
	}
	return n, pl
}

func TestInsertRepeatersBoundsSegments(t *testing.T) {
	n, pl := repTestDie(t)
	lib := cells.Default45nm()
	before := n.NumGates()
	if err := InsertRepeaters(n, pl, lib); err != nil {
		t.Fatal(err)
	}
	if n.NumGates() <= before {
		t.Fatal("a die spanning several segments must need repeaters")
	}
	if len(pl.Coords) != n.NumGates() {
		t.Fatalf("placement has %d coords for %d gates", len(pl.Coords), n.NumGates())
	}
	// Post-pass invariant: no pin is farther than one segment from its
	// driver (ports excluded; they get their own chains).
	for i := range n.Gates {
		id := netlist.SignalID(i)
		g := n.Gate(id)
		if g.Type.IsSource() {
			continue
		}
		for _, src := range g.Fanin {
			if d := pl.Distance(src, id); d > lib.TestBufferDistUM*1.0001 {
				t.Errorf("pin of %s still %.1f µm from driver %s", n.NameOf(id), d, n.NameOf(src))
			}
		}
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertRepeatersPreservesFunction(t *testing.T) {
	n, pl := repTestDie(t)
	// Snapshot behaviour before.
	assign := map[netlist.SignalID]bool{}
	for i := range n.Gates {
		id := netlist.SignalID(i)
		switch n.TypeOf(id) {
		case netlist.GateInput, netlist.GateTSVIn, netlist.GateDFF:
			assign[id] = i%2 == 0
		}
	}
	wantVals, err := n.Evaluate(assign)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, o := range n.Outputs {
		want[o.Name] = wantVals[o.Signal]
	}
	if err := InsertRepeaters(n, pl, cells.Default45nm()); err != nil {
		t.Fatal(err)
	}
	gotVals, err := n.Evaluate(assign) // sources kept their IDs
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range n.Outputs {
		if gotVals[o.Signal] != want[o.Name] {
			t.Errorf("output %q changed by buffering", o.Name)
		}
	}
}

func TestInsertRepeatersNoopOnSmallDie(t *testing.T) {
	n, err := netlist.ParseString("small", "INPUT(a)\nz = NOT(a)\nOUTPUT(z)\n")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Place(n, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := n.NumGates()
	if err := InsertRepeaters(n, pl, cells.Default45nm()); err != nil {
		t.Fatal(err)
	}
	// A 2-gate die is far smaller than a buffer segment: nothing added
	// except possibly for the input-to-gate run (inputs sit on the
	// edge). Allow at most one.
	if n.NumGates() > before+1 {
		t.Errorf("tiny die gained %d gates", n.NumGates()-before)
	}
}

func TestInsertRepeatersNaming(t *testing.T) {
	n, pl := repTestDie(t)
	if err := InsertRepeaters(n, pl, cells.Default45nm()); err != nil {
		t.Fatal(err)
	}
	for i := range n.Gates {
		g := &n.Gates[i]
		if strings.HasPrefix(g.Name, "fbuf") && g.Type != netlist.GateBuf {
			t.Errorf("repeater %s has type %s", g.Name, g.Type)
		}
	}
}

func TestInsertRepeatersForeignPlacement(t *testing.T) {
	n, _ := repTestDie(t)
	other, pl2 := repTestDie(t)
	_ = other
	if err := InsertRepeaters(n, pl2, cells.Default45nm()); err == nil {
		t.Error("foreign placement must be rejected")
	}
}
