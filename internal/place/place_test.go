package place

import (
	"math/rand"
	"testing"

	"wcm3d/internal/netlist"
)

func testCircuit(t *testing.T) *netlist.Netlist {
	t.Helper()
	n, err := netlist.ParseString("pt", `
INPUT(a)
INPUT(b)
TSV_IN(t0)
TSV_IN(t1)
n1 = AND(a, t0)
n2 = OR(n1, b)
n3 = XOR(n2, t1)
q = DFF(n3)
n4 = NAND(q, n1)
OUTPUT(z) = n4
TSV_OUT(u0) = n2
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return n
}

func TestPlaceBasics(t *testing.T) {
	n := testCircuit(t)
	p, err := Place(n, Options{Seed: 1})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if p.Width <= 0 || p.Height <= 0 {
		t.Fatalf("die dims %v x %v", p.Width, p.Height)
	}
	if len(p.Coords) != n.NumGates() || len(p.OutCoords) != len(n.Outputs) {
		t.Fatal("coordinate array sizes wrong")
	}
	for i, c := range p.Coords {
		if c.X < 0 || c.X > p.Width || c.Y < 0 || c.Y > p.Height {
			t.Errorf("gate %d placed off-die at %+v", i, c)
		}
	}
	for i, c := range p.OutCoords {
		if c.X < 0 || c.X > p.Width || c.Y < 0 || c.Y > p.Height {
			t.Errorf("port %d placed off-die at %+v", i, c)
		}
	}
}

func TestPlaceEmptyFails(t *testing.T) {
	if _, err := Place(netlist.New("empty"), Options{}); err == nil {
		t.Error("placing an empty netlist should fail")
	}
}

func TestPlaceDeterministic(t *testing.T) {
	n := testCircuit(t)
	p1, err := Place(n, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Place(n, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Coords {
		if p1.Coords[i] != p2.Coords[i] {
			t.Fatalf("placement not deterministic at gate %d: %+v vs %+v", i, p1.Coords[i], p2.Coords[i])
		}
	}
	p3, err := Place(n, Options{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range p1.Coords {
		if p1.Coords[i] != p3.Coords[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different placements")
	}
}

func TestInputsOnWestEdge(t *testing.T) {
	n := testCircuit(t)
	p, err := Place(n, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range n.Inputs() {
		if p.Coords[id].X != 0 {
			t.Errorf("input %s not on west edge: %+v", n.NameOf(id), p.Coords[id])
		}
	}
}

func TestDistanceSymmetric(t *testing.T) {
	n := testCircuit(t)
	p, err := Place(n, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := n.SignalByName("n1")
	b, _ := n.SignalByName("n3")
	if p.Distance(a, b) != p.Distance(b, a) {
		t.Error("distance not symmetric")
	}
	if p.Distance(a, a) != 0 {
		t.Error("self distance nonzero")
	}
}

func TestForceSweepsReduceWireLength(t *testing.T) {
	// Build a bigger random circuit; refinement should shorten total
	// wire length versus the raw seed placement.
	rng := rand.New(rand.NewSource(3))
	n := netlist.New("big")
	var pool []netlist.SignalID
	for i := 0; i < 20; i++ {
		pool = append(pool, n.MustAddGate(netlist.GateInput, "pi"+string(rune('a'+i))))
	}
	for i := 0; i < 400; i++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		g := n.MustAddGate(netlist.GateNand, nameN(i), a, b)
		pool = append(pool, g)
	}
	if err := n.AddOutput("z", pool[len(pool)-1], netlist.PortPO); err != nil {
		t.Fatal(err)
	}
	p0, err := Place(n, Options{Seed: 9, Sweeps: 1})
	if err != nil {
		t.Fatal(err)
	}
	p8, err := Place(n, Options{Seed: 9, Sweeps: 12})
	if err != nil {
		t.Fatal(err)
	}
	if p8.TotalWireLength() >= p0.TotalWireLength() {
		t.Errorf("refinement did not reduce wirelength: %v -> %v",
			p0.TotalWireLength(), p8.TotalWireLength())
	}
}

func TestDieAreaScalesWithGateCount(t *testing.T) {
	small := testCircuit(t)
	pSmall, err := Place(small, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	big := netlist.New("big2")
	in := big.MustAddGate(netlist.GateInput, "a")
	prev := in
	for i := 0; i < 5000; i++ {
		prev = big.MustAddGate(netlist.GateNot, nameN(i), prev)
	}
	if err := big.AddOutput("z", prev, netlist.PortPO); err != nil {
		t.Fatal(err)
	}
	pBig, err := Place(big, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pBig.Width <= pSmall.Width*2 {
		t.Errorf("5000-gate die (%v µm) should be much wider than 10-gate die (%v µm)",
			pBig.Width, pSmall.Width)
	}
}

func nameN(i int) string {
	const digits = "0123456789"
	if i == 0 {
		return "n0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{digits[i%10]}, b...)
		i /= 10
	}
	return "n" + string(b)
}

func TestTSVPitchDominatesSmallDies(t *testing.T) {
	// A TSV-heavy die must be sized by its TSV array, not by cell area.
	n, err := netlist.ParseString("tsvheavy", func() string {
		s := "INPUT(a)\n"
		prev := "a"
		for i := 0; i < 20; i++ {
			s += "g" + string(rune('0'+i%10)) + string(rune('a'+i/10)) + " = NOT(" + prev + ")\n"
			prev = "g" + string(rune('0'+i%10)) + string(rune('a'+i/10))
		}
		for i := 0; i < 25; i++ {
			s += "TSV_IN(t" + string(rune('0'+i%10)) + string(rune('a'+i/10)) + ")\n"
			s += "x" + string(rune('0'+i%10)) + string(rune('a'+i/10)) + " = AND(t" + string(rune('0'+i%10)) + string(rune('a'+i/10)) + ", " + prev + ")\n"
		}
		s += "OUTPUT(z) = " + prev + "\n"
		return s
	}())
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Place(n, Options{Seed: 1, TSVPitchUM: 40})
	if err != nil {
		t.Fatal(err)
	}
	// 25 TSVs at 40µm pitch: the array needs ceil(sqrt(25))*40 = 200µm.
	if pl.Width < 200 {
		t.Errorf("die side %.1f, want >= 200 (TSV array bound)", pl.Width)
	}
	// Pads must keep reasonable spacing: minimum pairwise distance above
	// a fraction of the pitch.
	tsvs := n.InboundTSVs()
	minD := 1e18
	for i := 0; i < len(tsvs); i++ {
		for j := i + 1; j < len(tsvs); j++ {
			if d := pl.Distance(tsvs[i], tsvs[j]); d < minD {
				minD = d
			}
		}
	}
	if minD < 5 {
		t.Errorf("TSV pads nearly collide: min distance %.2f µm", minD)
	}
}
