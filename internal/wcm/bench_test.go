package wcm

import (
	"testing"

	"wcm3d/internal/netlist"
)

// BenchmarkGraphBuild measures Algorithm 1 in isolation — item filters,
// cone precomputation, node construction, and the O(items × (items+ffs))
// edge sweep — on a large synthetic die, serially and across all cores.
func BenchmarkGraphBuild(b *testing.B) {
	in := prep(b, 6000, 300, 80, 80, 1)
	available := make(map[netlist.SignalID]bool, len(in.Netlist.FlipFlops()))
	for _, ff := range in.Netlist.FlipFlops() {
		available[ff] = true
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			opts := DefaultOptions()
			opts.Workers = bc.workers
			opts = opts.withDefaults()
			var stats PhaseStats
			for i := 0; i < b.N; i++ {
				ph := &phaseRunner{in: in, opts: opts, inbound: true, available: available}
				stats = PhaseStats{Inbound: true}
				if _, _, err := ph.buildGraph(&stats); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.Nodes), "nodes")
			b.ReportMetric(float64(stats.Edges), "edges")
		})
	}
}
