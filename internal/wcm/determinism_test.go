package wcm

import (
	"reflect"
	"testing"
)

// TestRunDeterministicAcrossWorkers pins the tentpole guarantee of the
// parallel hot path: the full flow's outputs — the wrapper plan and every
// per-phase statistic — are bit-identical no matter how many workers build
// the cones and the sharing graph.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	for _, tc := range []struct {
		name                string
		gates, ffs, in, out int
		seed                int64
		mutate              func(*Options)
	}{
		{name: "default", gates: 400, ffs: 20, in: 12, out: 12, seed: 3},
		{name: "outbound-heavy", gates: 300, ffs: 12, in: 4, out: 10, seed: 5},
		{name: "no-overlap", gates: 350, ffs: 16, in: 10, out: 8, seed: 7,
			mutate: func(o *Options) { o.AllowOverlap = false; o.Timing = TimingCapOnly }},
		{name: "first-edge", gates: 350, ffs: 16, in: 10, out: 8, seed: 9,
			mutate: func(o *Options) { o.Merge = MergeFirstEdge }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := prep(t, tc.gates, tc.ffs, tc.in, tc.out, tc.seed)
			var ref *Result
			for _, workers := range []int{1, 2, 3, 8} {
				opts := DefaultOptions()
				if tc.mutate != nil {
					tc.mutate(&opts)
				}
				opts.Workers = workers
				res, err := Run(in, opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if ref == nil {
					ref = res
					continue
				}
				if !reflect.DeepEqual(res.Assignment, ref.Assignment) {
					t.Errorf("workers=%d: Assignment differs from workers=1", workers)
				}
				if !reflect.DeepEqual(res.Phases, ref.Phases) {
					t.Errorf("workers=%d: PhaseStats differ from workers=1:\n got %+v\nwant %+v",
						workers, res.Phases, ref.Phases)
				}
				if res.ReusedFFs != ref.ReusedFFs || res.AdditionalCells != ref.AdditionalCells {
					t.Errorf("workers=%d: totals (%d,%d) != (%d,%d)", workers,
						res.ReusedFFs, res.AdditionalCells, ref.ReusedFFs, ref.AdditionalCells)
				}
			}
		})
	}
}

// TestGoldenPhaseStats pins the graph the flow builds for one fixed die to
// exact golden numbers, at several worker counts. Any change to cone
// construction, edge admission order, or pair selection that shifts a
// single node, edge, merge, or clique shows up here.
func TestGoldenPhaseStats(t *testing.T) {
	in := prep(t, 500, 30, 14, 14, 42)
	want := []PhaseStats{
		{Inbound: true, Nodes: 44, Edges: 347, OverlapEdges: 36, Cliques: 5, Merges: 14},
		{Inbound: false, Nodes: 39, Edges: 426, OverlapEdges: 6, Cliques: 6, Merges: 14, EdgeDeletes: 8},
	}
	for _, workers := range []int{1, 2, 4, 8} {
		opts := DefaultOptions()
		opts.Workers = workers
		res, err := Run(in, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(res.Phases, want) {
			t.Errorf("workers=%d:\n got %+v\nwant %+v", workers, res.Phases, want)
		}
	}
}
