package wcm

import (
	"fmt"

	"wcm3d/internal/netlist"
	"wcm3d/internal/sta"
)

// ShareModel is the two-phase sharing problem a WCM run partitions, exported
// as data: per phase, the TSV items admitted to the sharing graph (plus the
// ones excluded to dedicated cells), the pairwise edge-admissibility between
// items, and every flip-flop eligible for reuse with its per-item
// adjacency. The model is what the anytime refinement layer
// (internal/refine) searches over — a candidate plan is a partition of each
// phase's items into pairwise-adjacent blocks under the load budget, plus an
// assignment of flip-flops to blocks they are adjacent to.
//
// The model is built by the same Algorithm 1 machinery wcm.Run uses (cones,
// thresholds, node filters), so its edges are exactly the edges the greedy
// partitioner saw — with one deliberate difference: every eligible flip-flop
// appears in both phases' candidate lists. Cross-phase exclusivity (a
// flip-flop reused by phase one is gone for phase two) is a matching
// constraint for the consumer, not baked into the model.
type ShareModel struct {
	// Opts echoes the effective configuration (WithDefaults applied).
	Opts Options
	// Phases holds both sides in processing order (Phases[0] is the set
	// the configured OrderPolicy handles first).
	Phases [2]*SharePhase
}

// SharePhase is one TSV set's sharing problem.
type SharePhase struct {
	// Inbound reports which TSV set the phase covers.
	Inbound bool
	// Items are the TSVs admitted to the sharing graph.
	Items []ShareItem
	// Excluded are the TSVs the node filters routed to dedicated wrapper
	// cells; they are fixed singletons in every plan.
	Excluded []ShareItem
	// ItemAdj[i] lists the item indices j adjacent to item i (Algorithm
	// 1's edge conditions hold for the pair), sorted ascending. The
	// relation is symmetric and irreflexive.
	ItemAdj [][]int32
	// FFs are the flip-flops eligible for reuse in this phase, with their
	// item adjacency.
	FFs []ShareFF
	// ItemLoadFF is the uniform post-bond drive load one item adds to a
	// shared group (TSV pillar plus a mux or XOR pin).
	ItemLoadFF float64
	// CapThFF is the accumulated-load budget a shared group must stay
	// strictly under.
	CapThFF float64
}

// ShareItem identifies one TSV of a phase.
type ShareItem struct {
	// Sig is the pad signal (inbound) or the observed port's driving
	// signal (outbound).
	Sig netlist.SignalID
	// Port is the outbound port index, -1 on the inbound side.
	Port int
}

// ShareFF is one reuse-eligible flip-flop of a phase.
type ShareFF struct {
	// Sig is the flip-flop's signal.
	Sig netlist.SignalID
	// Adj lists the item indices the flip-flop may share a group with,
	// sorted ascending.
	Adj []int32
}

// BuildShareModel extracts the sharing problem wcm.Run would solve for the
// input. The first phase prices against in.Timing; the second against
// secondTiming when non-nil (callers with a RefreshTiming pipeline pass the
// analysis refreshed from the first phase's committed hardware), falling
// back to in.Timing. Every scan flip-flop is treated as available in both
// phases — consumers enforce one-reuse-per-flip-flop across the whole plan.
func BuildShareModel(in Input, opts Options, secondTiming *sta.Result) (*ShareModel, error) {
	opts = opts.withDefaults()
	if err := in.validate(opts); err != nil {
		return nil, err
	}
	n := in.Netlist
	firstInbound := true
	switch opts.Order {
	case OrderLargerFirst:
		firstInbound = len(n.InboundTSVs()) >= len(n.OutboundTSVs())
	case OrderSmallerFirst:
		firstInbound = len(n.InboundTSVs()) < len(n.OutboundTSVs())
	case OrderInboundFirst:
		firstInbound = true
	case OrderOutboundFirst:
		firstInbound = false
	}
	m := &ShareModel{Opts: opts}
	timings := [2]*sta.Result{in.Timing, in.Timing}
	if secondTiming != nil {
		timings[1] = secondTiming
	}
	for pi, inbound := range [2]bool{firstInbound, !firstInbound} {
		phIn := in
		phIn.Timing = timings[pi]
		sp, err := buildSharePhase(phIn, opts, inbound)
		if err != nil {
			return nil, err
		}
		m.Phases[pi] = sp
	}
	return m, nil
}

// buildSharePhase runs one phase's Algorithm 1 graph construction with every
// flip-flop available and reads the resulting graph back as plain data.
func buildSharePhase(in Input, opts Options, inbound bool) (*SharePhase, error) {
	n := in.Netlist
	available := make(map[netlist.SignalID]bool, len(n.FlipFlops()))
	for _, ff := range n.FlipFlops() {
		available[ff] = true
	}
	ph := &phaseRunner{in: in, opts: opts, inbound: inbound, available: available}
	var stats PhaseStats
	items, excluded, err := ph.buildGraph(&stats)
	if err != nil {
		return nil, err
	}
	sp := &SharePhase{Inbound: inbound, CapThFF: opts.CapThFF}
	itemOf := func(i int) ShareItem {
		it := ShareItem{Sig: ph.tsvSignals[i], Port: -1}
		if !inbound {
			it.Port = ph.tsvPorts[i]
		}
		return it
	}
	for _, i := range items {
		sp.Items = append(sp.Items, itemOf(i))
	}
	for _, i := range excluded {
		sp.Excluded = append(sp.Excluded, itemOf(i))
	}
	if inbound {
		sp.ItemLoadFF = in.Lib.TSVCapFF + in.Lib.Of(netlist.GateMux2).InputCapFF
	} else {
		sp.ItemLoadFF = in.Lib.TSVCapFF + in.Lib.Of(netlist.GateXor).InputCapFF
	}
	// Graph node ids: items in admission order first, then flip-flops (the
	// AddNode order of buildGraph).
	nItems := len(items)
	sp.ItemAdj = make([][]int32, nItems)
	for id := 0; id < nItems; id++ {
		ph.graph.Neighbors(id, func(nb int) {
			if nb < nItems {
				sp.ItemAdj[id] = append(sp.ItemAdj[id], int32(nb))
			}
		})
	}
	for id := nItems; id < ph.graph.NumAlive(); id++ {
		node := ph.graph.Node(id)
		if !node.HasFF {
			return nil, fmt.Errorf("wcm: share model: node %d past the item range is not a flip-flop", id)
		}
		ff := ShareFF{Sig: netlist.SignalID(node.FF)}
		ph.graph.Neighbors(id, func(nb int) {
			if nb < nItems {
				ff.Adj = append(ff.Adj, int32(nb))
			}
		})
		sp.FFs = append(sp.FFs, ff)
	}
	return sp, nil
}
