package wcm

import (
	"reflect"
	"testing"

	"wcm3d/internal/netlist"
)

// assertSessionRun certifies the session against its reference: the memoized
// run must be deeply equal — plan, phase statistics, counters, everything —
// to a from-scratch Run over the same input.
func assertSessionRun(t *testing.T, s *Session, tag string) *Result {
	t.Helper()
	got, err := s.Run()
	if err != nil {
		t.Fatalf("%s: session run: %v", tag, err)
	}
	want, err := Run(s.Input(), s.Options())
	if err != nil {
		t.Fatalf("%s: reference run: %v", tag, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: session result diverges from from-scratch run\nsession:   %+v\nreference: %+v", tag, got, want)
	}
	return got
}

// movePins rewires every pin driven by `from` onto `to` and invalidates the
// two source-anchored cones the move dirties.
func movePins(t *testing.T, s *Session, from, to netlist.SignalID) {
	t.Helper()
	n := s.Input().Netlist
	sinks := append([]netlist.SignalID(nil), n.Fanouts()[from]...)
	for _, g := range sinks {
		fanin := n.Gate(g).Fanin
		for pin := range fanin {
			if fanin[pin] == from {
				if err := n.RewireFanin(g, pin, to); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	s.InvalidateSource(from)
	s.InvalidateSource(to)
}

// repairInbound simulates a spare-TSV repair on the control side: the failed
// pad's pins move to the spare, the failed pad demotes to a plain input and
// the spare promotes to an inbound TSV.
func repairInbound(t *testing.T, s *Session, failed, spare netlist.SignalID) {
	t.Helper()
	n := s.Input().Netlist
	movePins(t, s, failed, spare)
	if err := n.RetypeSource(failed, netlist.GateInput); err != nil {
		t.Fatal(err)
	}
	if err := n.RetypeSource(spare, netlist.GateTSVIn); err != nil {
		t.Fatal(err)
	}
}

// firstPlainInput returns a GateInput pad to play the spare.
func firstPlainInput(t *testing.T, n *netlist.Netlist) netlist.SignalID {
	t.Helper()
	for i := range n.Gates {
		if id := netlist.SignalID(i); n.TypeOf(id) == netlist.GateInput {
			return id
		}
	}
	t.Fatal("die has no plain input pad")
	return netlist.InvalidSignal
}

func TestSessionMatchesRunUnchanged(t *testing.T) {
	in := prep(t, 300, 12, 8, 8, 31)
	opts := DefaultOptions()
	opts.Workers = 2
	s := NewSession(in, opts)
	assertSessionRun(t, s, "cold")
	slots1, verd1 := s.MemoStats()
	if slots1 == 0 || verd1 == 0 {
		t.Fatalf("first run must seed the memo, got %d slots / %d verdicts", slots1, verd1)
	}
	assertSessionRun(t, s, "warm")
	slots2, verd2 := s.MemoStats()
	if slots2 != slots1 || verd2 != verd1 {
		t.Errorf("identical rerun must not grow the memo: %d/%d -> %d/%d", slots1, verd1, slots2, verd2)
	}
	assertSessionRun(t, s, "warm-2")
}

func TestSessionMatchesRunAfterInboundRepair(t *testing.T) {
	in := prep(t, 400, 16, 10, 10, 33)
	opts := DefaultOptions()
	opts.Workers = 4
	s := NewSession(in, opts)
	assertSessionRun(t, s, "baseline")

	n := in.Netlist
	failed := n.InboundTSVs()[0]
	spare := firstPlainInput(t, n)
	repairInbound(t, s, failed, spare)
	assertSessionRun(t, s, "post-repair")
	assertSessionRun(t, s, "post-repair-warm")
}

func TestSessionMatchesRunAfterOutboundRepair(t *testing.T) {
	in := prep(t, 400, 16, 10, 10, 35)
	opts := DefaultOptions()
	opts.Workers = 1
	s := NewSession(in, opts)
	assertSessionRun(t, s, "baseline")

	// Observation-side repair: the failed TSV_OUT port demotes to a plain
	// PO; a PO port takes over observing its signal as the promoted spare.
	n := in.Netlist
	failedPort := n.OutboundTSVs()[0]
	sparePort := -1
	for i, o := range n.Outputs {
		if o.Class == netlist.PortPO {
			sparePort = i
			break
		}
	}
	if sparePort < 0 {
		t.Fatal("die has no PO port to promote")
	}
	sig := n.Outputs[failedPort].Signal
	if err := n.SetPortClass(failedPort, netlist.PortPO); err != nil {
		t.Fatal(err)
	}
	if err := n.SetPortClass(sparePort, netlist.PortTSVOut); err != nil {
		t.Fatal(err)
	}
	if err := n.RewireOutput(sparePort, sig); err != nil {
		t.Fatal(err)
	}
	// Port rewires move no gate pins: every cached cone stays valid and no
	// invalidation is required.
	assertSessionRun(t, s, "post-repair")
}

// A spare can serve different faults across a sequence (repair, undo,
// repair elsewhere). Its anchored cone differs each time it is promoted, so
// the InvalidateSource obligation is what keeps the memo honest — this is
// the staleness scenario a round-trip repair alone cannot expose.
func TestSessionSpareReassignedAcrossSequence(t *testing.T) {
	in := prep(t, 400, 16, 10, 10, 37)
	opts := DefaultOptions()
	opts.Workers = 2
	s := NewSession(in, opts)
	assertSessionRun(t, s, "baseline")

	n := in.Netlist
	tsvs := n.InboundTSVs()
	t1, t2 := tsvs[0], tsvs[1]
	spare := firstPlainInput(t, n)

	repairInbound(t, s, t1, spare) // spare carries t1's subtree
	assertSessionRun(t, s, "repair-t1")

	repairInbound(t, s, spare, t1) // undo: pins return, types swap back
	assertSessionRun(t, s, "undo-t1")

	repairInbound(t, s, t2, spare) // same spare, different subtree
	assertSessionRun(t, s, "repair-t2")
}

// The memoized path must stay bit-identical at every worker count, like the
// plain path — verdict cache reads happen in the parallel sweep, writes only
// in the serial apply pass.
func TestSessionDeterministicAcrossWorkers(t *testing.T) {
	in := prep(t, 300, 12, 8, 8, 39)
	var ref *Result
	for _, w := range []int{1, 2, 8} {
		opts := DefaultOptions()
		opts.Workers = w
		s := NewSession(in, opts)
		got := assertSessionRun(t, s, "cold")
		got = assertSessionRun(t, s, "warm")
		got.Options.Workers = 0 // normalize the only field workers may differ in
		if ref == nil {
			ref = got
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d session plan differs from workers=1", w)
		}
	}
}
