package wcm

import (
	"math"
	"testing"

	"wcm3d/internal/scan"

	"wcm3d/internal/cells"
	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
	"wcm3d/internal/place"
	"wcm3d/internal/sta"
)

// prep builds a placed, timed die with the given profile knobs.
func prep(t testing.TB, gates, ffsN, in, out int, seed int64) Input {
	t.Helper()
	n, err := netgen.Random(netgen.RandomOptions{
		Gates: gates, FFs: ffsN, PIs: 5, POs: 3,
		InboundTSVs: in, OutboundTSVs: out, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	lib := cells.Default45nm()
	pl, err := place.Place(n, place.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	// Loose clock: plenty of slack everywhere.
	base, err := sta.Analyze(n, lib, sta.Config{ClockPS: 1e5, Placement: pl})
	if err != nil {
		t.Fatal(err)
	}
	return Input{Netlist: n, Lib: lib, Placement: pl, Timing: base}
}

func TestRunProducesValidCoveringPlan(t *testing.T) {
	in := prep(t, 300, 12, 8, 8, 1)
	res, err := Run(in, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(in.Netlist); err != nil {
		t.Fatalf("invalid plan: %v", err)
	}
	if !res.Assignment.Covered(in.Netlist) {
		t.Error("plan must cover every TSV")
	}
	if res.ReusedFFs == 0 {
		t.Error("expected some flip-flop reuse on a loose-timing die")
	}
	total := res.ReusedFFs + res.AdditionalCells
	_ = total
	if len(res.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(res.Phases))
	}
}

func TestReuseBeatsFullWrap(t *testing.T) {
	// The whole point: fewer additional cells than one-per-TSV.
	in := prep(t, 400, 20, 12, 12, 3)
	res, err := Run(in, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.AdditionalCells >= 24 {
		t.Errorf("additional cells = %d, want < 24 (full wrap)", res.AdditionalCells)
	}
}

func TestOrderPolicyRespected(t *testing.T) {
	in := prep(t, 300, 12, 4, 10, 5) // outbound larger
	res, err := Run(in, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases[0].Inbound {
		t.Error("larger-first must process the outbound set first here")
	}
	opts := DefaultOptions()
	opts.Order = OrderInboundFirst
	res2, err := Run(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Phases[0].Inbound {
		t.Error("inbound-first must process inbound first")
	}
	opts.Order = OrderSmallerFirst
	res3, err := Run(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res3.Phases[0].Inbound {
		t.Error("smaller-first must process the inbound set first here")
	}
}

func TestOverlapExpandsSolutionSpace(t *testing.T) {
	// Figure 7's claim: allowing overlapped cones adds edges, and the
	// extra freedom never increases additional wrapper cells.
	in := prep(t, 500, 16, 14, 14, 7)
	on := DefaultOptions()
	off := DefaultOptions()
	off.AllowOverlap = false
	rOn, err := Run(in, on)
	if err != nil {
		t.Fatal(err)
	}
	rOff, err := Run(in, off)
	if err != nil {
		t.Fatal(err)
	}
	if rOn.TotalEdges() < rOff.TotalEdges() {
		t.Errorf("overlap must not shrink the graph: %d < %d", rOn.TotalEdges(), rOff.TotalEdges())
	}
	if rOff.TotalOverlapEdges() != 0 {
		t.Error("no-overlap run must have zero overlap edges")
	}
	if rOn.TotalOverlapEdges() == 0 {
		t.Log("note: no overlap edges admitted on this die (thresholds tight)")
	}
}

func TestTightCapThresholdForcesDedicatedCells(t *testing.T) {
	in := prep(t, 300, 12, 8, 8, 9)
	opts := DefaultOptions()
	opts.CapThFF = 1e-3 // nothing can share or even enter the graph
	res, err := Run(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	// cap_th gates the inbound side only: every control group must be a
	// dedicated cell; the outbound side is governed by slack.
	for _, g := range res.Assignment.Control {
		if g.Reused() {
			t.Errorf("inbound reuse under an impossible cap threshold")
		}
	}
	if res.AdditionalCells < 8 {
		t.Errorf("additional cells = %d, want >= 8 (one per inbound TSV)", res.AdditionalCells)
	}
}

func TestSlackThresholdFiltersOutbound(t *testing.T) {
	in := prep(t, 300, 12, 8, 8, 11)
	opts := DefaultOptions()
	opts.SlackThPS = math.Inf(1) // no outbound TSV has infinite slack
	res, err := Run(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	var outPhase *PhaseStats
	for i := range res.Phases {
		if !res.Phases[i].Inbound {
			outPhase = &res.Phases[i]
		}
	}
	if outPhase.FilteredTSVs != 8 {
		t.Errorf("filtered outbound TSVs = %d, want 8", outPhase.FilteredTSVs)
	}
	if !res.Assignment.Covered(in.Netlist) {
		t.Error("filtered TSVs still need dedicated wrapper cells")
	}
}

func TestCapWireStricterThanCapOnly(t *testing.T) {
	// With wire costs included, the same thresholds admit at most as
	// many edges.
	in := prep(t, 400, 16, 10, 10, 13)
	wire := DefaultOptions()
	wire.DistThUM = math.Inf(1)
	capOnly := wire
	capOnly.Timing = TimingCapOnly
	rWire, err := Run(in, wire)
	if err != nil {
		t.Fatal(err)
	}
	rCap, err := Run(in, capOnly)
	if err != nil {
		t.Fatal(err)
	}
	// First phase only: the second phase sees different leftover FFs.
	if rWire.Phases[0].Edges > rCap.Phases[0].Edges {
		t.Errorf("wire-aware first-phase edges %d > cap-only edges %d",
			rWire.Phases[0].Edges, rCap.Phases[0].Edges)
	}
}

func TestDistanceThresholdPrunesEdges(t *testing.T) {
	in := prep(t, 400, 16, 10, 10, 15)
	near := DefaultOptions()
	near.DistThUM = 30
	far := DefaultOptions()
	far.DistThUM = math.Inf(1)
	rNear, err := Run(in, near)
	if err != nil {
		t.Fatal(err)
	}
	rFar, err := Run(in, far)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the first phase only: by the second phase the two runs
	// have consumed different flip-flop sets, so totals are not nested.
	if rNear.Phases[0].Edges >= rFar.Phases[0].Edges {
		t.Errorf("d_th=30µm first-phase edges %d, want < unlimited %d",
			rNear.Phases[0].Edges, rFar.Phases[0].Edges)
	}
}

func TestNoFFDoubleUseAcrossPhases(t *testing.T) {
	in := prep(t, 400, 6, 12, 12, 17) // few FFs, many TSVs: contention
	res, err := Run(in, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Assignment.Validate already rejects double use; belt and braces:
	seen := map[netlist.SignalID]bool{}
	for _, g := range res.Assignment.Control {
		if g.Reused() {
			if seen[g.ReusedFF] {
				t.Fatalf("FF %d reused twice", g.ReusedFF)
			}
			seen[g.ReusedFF] = true
		}
	}
	for _, g := range res.Assignment.Observe {
		if g.Reused() {
			if seen[g.ReusedFF] {
				t.Fatalf("FF %d reused twice", g.ReusedFF)
			}
			seen[g.ReusedFF] = true
		}
	}
}

func TestInputValidation(t *testing.T) {
	in := prep(t, 100, 4, 2, 2, 19)
	if _, err := Run(Input{}, DefaultOptions()); err == nil {
		t.Error("empty input must fail")
	}
	// Wire timing without placement must fail.
	noPl := in
	noPl.Placement = nil
	if _, err := Run(noPl, DefaultOptions()); err == nil {
		t.Error("wire timing without placement must fail")
	}
	// Cap-only without placement is fine when d_th is infinite.
	opts := DefaultOptions()
	opts.Timing = TimingCapOnly
	opts.DistThUM = math.Inf(1)
	baseNoPl, err := sta.Analyze(in.Netlist, in.Lib, sta.Config{ClockPS: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Input{Netlist: in.Netlist, Lib: in.Lib, Timing: baseNoPl}, opts); err != nil {
		t.Errorf("cap-only without placement should work: %v", err)
	}
}

func TestStructuralEstimatorMonotone(t *testing.T) {
	n, err := netgen.Random(netgen.RandomOptions{Gates: 100, FFs: 4, PIs: 4, POs: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	e := StructuralEstimator{}
	cov0, pat0 := e.SharePenalty(n, 0)
	covS, patS := e.SharePenalty(n, 4)
	covB, patB := e.SharePenalty(n, 40)
	if cov0 != 0 || pat0 != 0 {
		t.Error("disjoint cones must cost nothing")
	}
	if !(covS < covB) || !(patS <= patB) {
		t.Errorf("penalty must grow with overlap: (%v,%d) vs (%v,%d)", covS, patS, covB, patB)
	}
}

func TestDeterministic(t *testing.T) {
	in := prep(t, 300, 12, 8, 8, 23)
	r1, err := Run(in, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(in, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r1.ReusedFFs != r2.ReusedFFs || r1.AdditionalCells != r2.AdditionalCells ||
		r1.TotalEdges() != r2.TotalEdges() {
		t.Error("WCM run must be deterministic")
	}
}

func scanFullWrap(in Input) *scan.Assignment { return scan.FullWrap(in.Netlist) }

func TestAreaAccountsReuseSavings(t *testing.T) {
	in := prep(t, 300, 12, 8, 8, 25)
	res, err := Run(in, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	full := &Result{Assignment: scanFullWrap(in)}
	lib := in.Lib
	if res.AreaUM2(lib) >= full.AreaUM2(lib) {
		t.Errorf("reuse area %.1f must undercut full wrap %.1f",
			res.AreaUM2(lib), full.AreaUM2(lib))
	}
	if res.AreaUM2(lib) <= 0 {
		t.Error("non-trivial plan must cost some area")
	}
}
