// Package agrawal configures the WCM engine to reproduce the method of
// M. Agrawal, K. Chakrabarty and R. Widialaksono, "Reuse-based optimization
// for prebond and post-bond testing of 3-D-stacked ICs" (IEEE TCAD 34(1),
// 2015) — the prior work the paper compares against:
//
//   - fixed inbound-first processing order (no TSV-set analysis);
//   - capacitance-only timing model: pin loads bound the sharing, wire
//     length is invisible (no distance threshold);
//   - no overlapped fan-in/fan-out cones — a scan flip-flop is shared only
//     when sharing provably cannot reduce coverage.
//
// The same clique-partitioning engine runs underneath, so every difference
// in the results tables is attributable to the three modeling deltas.
package agrawal

import (
	"math"

	"wcm3d/internal/wcm"
)

// Options returns the Agrawal configuration with the given capacitance
// threshold (cap_th, fF).
func Options(capThFF float64) wcm.Options {
	return wcm.Options{
		CapThFF:      capThFF,
		SlackThPS:    math.Inf(-1), // no slack screening
		DistThUM:     math.Inf(1),  // no distance screening
		AllowOverlap: false,
		Order:        wcm.OrderInboundFirst,
		Timing:       wcm.TimingCapOnly,
	}
}

// Run executes Agrawal's method on a die.
func Run(in wcm.Input, capThFF float64) (*wcm.Result, error) {
	return wcm.Run(in, Options(capThFF))
}

// RunWithOrder executes Agrawal's method with an explicit processing order
// — used by the paper's Table I, which motivates the larger-set-first rule
// by comparing inbound-first against outbound-first under this method.
func RunWithOrder(in wcm.Input, capThFF float64, order wcm.OrderPolicy) (*wcm.Result, error) {
	opts := Options(capThFF)
	opts.Order = order
	return wcm.Run(in, opts)
}
