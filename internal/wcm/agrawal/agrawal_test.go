package agrawal

import (
	"math"
	"testing"

	"wcm3d/internal/cells"
	"wcm3d/internal/netgen"
	"wcm3d/internal/place"
	"wcm3d/internal/sta"
	"wcm3d/internal/wcm"
)

func TestOptionsShape(t *testing.T) {
	opts := Options(120)
	if opts.AllowOverlap {
		t.Error("Agrawal never shares across overlapped cones")
	}
	if opts.Order != wcm.OrderInboundFirst {
		t.Errorf("order = %v, want inbound-first", opts.Order)
	}
	if opts.Timing != wcm.TimingCapOnly {
		t.Errorf("timing = %v, want cap-only", opts.Timing)
	}
	if !math.IsInf(opts.DistThUM, 1) {
		t.Error("Agrawal has no distance threshold")
	}
	if opts.CapThFF != 120 {
		t.Errorf("cap_th = %v, want 120", opts.CapThFF)
	}
}

func TestRunAndOrderVariant(t *testing.T) {
	n, err := netgen.Random(netgen.RandomOptions{
		Gates: 250, FFs: 12, PIs: 5, POs: 3, InboundTSVs: 8, OutboundTSVs: 12, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	lib := cells.Default45nm()
	pl, err := place.Place(n, place.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	timing, err := sta.Analyze(n, lib, sta.Config{ClockPS: 1e5, Placement: pl})
	if err != nil {
		t.Fatal(err)
	}
	in := wcm.Input{Netlist: n, Lib: lib, Placement: pl, Timing: timing}

	res, err := Run(in, 150)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Phases[0].Inbound {
		t.Error("Run must process inbound first")
	}
	if !res.Assignment.Covered(n) {
		t.Error("plan must cover every TSV")
	}
	if res.TotalOverlapEdges() != 0 {
		t.Error("Agrawal graphs must carry no overlap edges")
	}

	alt, err := RunWithOrder(in, 150, wcm.OrderOutboundFirst)
	if err != nil {
		t.Fatal(err)
	}
	if alt.Phases[0].Inbound {
		t.Error("RunWithOrder(outbound-first) must process outbound first")
	}
}
