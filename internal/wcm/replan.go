package wcm

import (
	"wcm3d/internal/netlist"
	"wcm3d/internal/scan"
)

// Session memoizes the expensive pure functions of a die's static geometry
// across repeated WCM runs, so that replanning after a small netlist patch
// (a failed TSV rerouted to a spare pad) costs the graph rebuild and the
// partition — not the cone traversals and the O(n²) edge sweep.
//
// What is cached, and why it stays valid:
//
//   - Masked cones (cone &^ sourceMask), keyed by (node kind, signal).
//     Fan-in cones stop at sources and fan-out traversal never passes
//     through one, so rerouting a source-driven pin from one source pad to
//     another changes only which *sources* a cone contains — and sources
//     are stripped by the mask before any overlap test. The masked cone is
//     bit-identical before and after the patch.
//   - Edge verdicts (none / clean / overlap), keyed by the unordered slot
//     pair. edgeAllowed reads placement coordinates, static load/budget
//     parameters, anchors and masked cones — never slacks — so a verdict
//     is a pure function of frozen die geometry. Slacks only decide
//     *membership* (the item filters and ffEligible), which every run
//     recomputes from scratch in O(n).
//
// The caller may mutate the session's netlist between Run calls only in
// the ways the cache analysis above covers:
//
//   - rewiring a gate's fanin pin from one source gate to another source
//     gate (netlist.RewireFanin with both old and new drivers of a source
//     type);
//   - retyping a gate between source types (GateInput ↔ GateTSVIn);
//   - rewiring an output port to a different driver and/or changing its
//     PortClass.
//
// No gates or ports may be added or removed, and the placement, library
// and base timing analysis are frozen for the session's lifetime. One
// obligation rides with pin rewires: the fan-out cone anchored *at* a
// rewired source changes (whole subtrees move between the old and the new
// driver), so the caller must InvalidateSource both endpoints of every
// rewired pin before the next Run. Cones anchored anywhere else are
// unaffected — fan-out traversal never passes through a source, and
// fan-in cones only swap which sources they contain, which the mask
// strips. Under that contract every Session.Run returns a result deeply
// equal to a fresh wcm.Run on the same Input — the differential suites in
// internal/tsvrepair certify it.
//
// Beyond the memo layer, a session caches each phase's complete outcome
// (emitted groups, consumed flip-flops, stats) keyed by the phase's exact
// inputs: the ordered TSV signal list, the filter outcomes, and the memo
// slot ids of every participating item and flip-flop. Slot ids are never
// reused, so an elementwise slot match certifies that every cached
// verdict the phase was built from is still valid — the phase replays
// from cache without touching the graph. Timing only enters a phase
// through membership (the item filters and ffEligible), so two runs with
// identical membership and slots produce identical phases even when the
// refreshed slack values differ. A phase whose inputs changed (the dirty
// phase after a repair) rebuilds, but assembles its graph in bulk from
// the verdict matrix rather than replaying per-edge insertions.
//
// A Session is not safe for concurrent use.
type Session struct {
	in   Input
	opts Options
	st   sessionState
}

// sessionState is everything run() consults on a session run: one memo
// per phase kind (cones and verdicts differ between the control fan-out
// and observe fan-in sides, and the phase order may flip between runs
// when a repair changes the set sizes), plus one whole-phase result cache
// per phase position.
type sessionState struct {
	inboundMemo  phaseMemo
	outboundMemo phaseMemo
	stages       [2]stageCache
}

// NewSession prepares a memoizing session over a die. The first Run pays
// full cost and seeds the caches; later Runs reuse them.
func NewSession(in Input, opts Options) *Session {
	return &Session{in: in, opts: opts}
}

// Input returns the session's input as configured (phase-one timing; the
// cross-phase refresh hook untouched). A from-scratch wcm.Run over this
// exact value is the reference the session's results are certified
// against.
func (s *Session) Input() Input { return s.in }

// Options returns the session's configured options.
func (s *Session) Options() Options { return s.opts }

// Run executes the WCM flow against the netlist's current state, reusing
// every cached cone and edge verdict that is still valid under the
// session contract and caching whatever it had to compute fresh.
func (s *Session) Run() (*Result, error) {
	return run(s.in, s.opts, &s.st)
}

// InvalidateSource drops cached geometry anchored at a source pad whose
// fan-out pin set changed (a repair moving pins onto or off of it). The
// slot's storage and verdict row are abandoned, not reclaimed — the next
// Run re-derives the cone under a fresh slot. Growth is bounded by the
// number of repairs, a few cells each.
func (s *Session) InvalidateSource(sig netlist.SignalID) {
	key := slotKey{ff: false, sig: sig}
	delete(s.st.inboundMemo.slots, key)
	delete(s.st.outboundMemo.slots, key)
}

// MemoStats reports cache occupancy (diagnostics and tests).
func (s *Session) MemoStats() (slots, verdicts int) {
	for _, m := range []*phaseMemo{&s.st.inboundMemo, &s.st.outboundMemo} {
		slots += len(m.slots)
		for _, v := range m.verd.v {
			if v != verdUnknown {
				verdicts++
			}
		}
	}
	return slots, verdicts
}

// slotKey identifies one memo slot: a graph node's stable identity across
// runs. Items and flip-flop nodes live in separate key spaces because an
// outbound port's anchor (its driving signal) can collide with a
// flip-flop's D driver while their node parameters differ.
type slotKey struct {
	ff  bool
	sig netlist.SignalID
}

// phaseMemo caches masked cones and edge verdicts for one phase kind.
type phaseMemo struct {
	slots  map[slotKey]int32
	masked []*netlist.BitSet // per slot; plain-allocated (outlives arenas)
	lo, hi []int32           // non-zero word span per slot
	verd   verdictMatrix
}

// slotFor returns the memo slot for a key, inserting an empty slot when
// the key is new (the caller then fills masked/lo/hi at the same index).
func (m *phaseMemo) slotFor(key slotKey) (slot int32, hit bool) {
	if m.slots == nil {
		m.slots = make(map[slotKey]int32)
	}
	if s, ok := m.slots[key]; ok {
		return s, true
	}
	s := int32(len(m.masked))
	m.slots[key] = s
	m.masked = append(m.masked, nil)
	m.lo = append(m.lo, 0)
	m.hi = append(m.hi, 0)
	return s, false
}

// stageCache holds one phase's complete outcome keyed by its exact
// inputs. The fingerprint is the phase kind, the full ordered TSV signal
// list (and port indices on the observe side), the indices that passed
// the node filter, and the memo slot id of every included item and every
// participating flip-flop. Slot ids are never reused — InvalidateSource
// deletes the key, so a re-derived cone gets a fresh id — which makes an
// elementwise slot match a proof that every verdict the cached phase was
// built from is unchanged. Membership lists subsume every timing
// dependency: slacks decide only who participates, never how the graph
// is built or partitioned.
type stageCache struct {
	valid   bool
	inbound bool
	sigs    []netlist.SignalID
	ports   []int
	items   []int
	slots   []int32 // memo slot per included item, aligned with items
	ffSlots []int32 // memo slot per participating flip-flop
	stats   PhaseStats
	control []scan.ControlGroup
	observe []scan.ObserveGroup
	usedFFs []netlist.SignalID
}

// replay compares the collected phase inputs against the cache and, on a
// match, appends deep copies of the cached groups to the assignment and
// consumes the cached flip-flops. It never creates memo slots: a missing
// slot is a fingerprint miss.
func (sc *stageCache) replay(ph *phaseRunner, asn *scan.Assignment) bool {
	if !sc.valid || sc.inbound != ph.inbound ||
		!equalSigs(sc.sigs, ph.tsvSignals) || !equalInts(sc.ports, ph.tsvPorts) ||
		!equalInts(sc.items, ph.items) || len(sc.ffSlots) != len(ph.ffs) {
		return false
	}
	memo := ph.memo
	for k, i := range sc.items {
		s, ok := memo.slots[slotKey{ff: false, sig: ph.tsvSignals[i]}]
		if !ok || s != sc.slots[k] {
			return false
		}
	}
	for k, ff := range ph.ffs {
		s, ok := memo.slots[slotKey{ff: true, sig: ff}]
		if !ok || s != sc.ffSlots[k] {
			return false
		}
	}
	for _, g := range sc.control {
		cp := g
		cp.TSVs = append([]netlist.SignalID(nil), g.TSVs...)
		asn.Control = append(asn.Control, cp)
	}
	for _, g := range sc.observe {
		cp := g
		cp.Ports = append([]int(nil), g.Ports...)
		asn.Observe = append(asn.Observe, cp)
	}
	for _, ff := range sc.usedFFs {
		ph.available[ff] = false
	}
	return true
}

// fill records a freshly computed phase: its fingerprint, stats, the
// groups it appended to the assignment (deep-copied — the caller owns the
// returned plan), and the flip-flops it consumed.
func (sc *stageCache) fill(ph *phaseRunner, stats PhaseStats, asn *scan.Assignment, c0, o0 int) {
	sc.inbound = ph.inbound
	sc.sigs = append(sc.sigs[:0], ph.tsvSignals...)
	sc.ports = append(sc.ports[:0], ph.tsvPorts...)
	sc.items = append(sc.items[:0], ph.items...)
	sc.slots = append(sc.slots[:0], ph.nodeSlot[:len(ph.items)]...)
	sc.ffSlots = append(sc.ffSlots[:0], ph.nodeSlot[len(ph.items):]...)
	sc.stats = stats
	sc.control = sc.control[:0]
	for _, g := range asn.Control[c0:] {
		cp := g
		cp.TSVs = append([]netlist.SignalID(nil), g.TSVs...)
		sc.control = append(sc.control, cp)
	}
	sc.observe = sc.observe[:0]
	for _, g := range asn.Observe[o0:] {
		cp := g
		cp.Ports = append([]int(nil), g.Ports...)
		sc.observe = append(sc.observe, cp)
	}
	sc.usedFFs = append(sc.usedFFs[:0], ph.usedFFs...)
	sc.valid = true
}

func equalSigs(a, b []netlist.SignalID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// verdUnknown marks an uncomputed verdict cell (the computed values are
// edgeNone/edgeClean/edgeOverlap = 0/1/2).
const verdUnknown uint8 = 0xFF

// verdictMatrix is a dense square slot×slot verdict store. Cells are
// addressed with the smaller slot first; the diagonal is never stored
// (equal anchors are rejected by edgeAllowed without geometry reads).
type verdictMatrix struct {
	stride int
	v      []uint8
}

// ensure grows the matrix to hold at least n slots, preserving content.
func (m *verdictMatrix) ensure(n int) {
	if n <= m.stride {
		return
	}
	ns := n + n/4 + 16
	nv := make([]uint8, ns*ns)
	for i := range nv {
		nv[i] = verdUnknown
	}
	for r := 0; r < m.stride; r++ {
		copy(nv[r*ns:r*ns+m.stride], m.v[r*m.stride:(r+1)*m.stride])
	}
	m.stride, m.v = ns, nv
}

func (m *verdictMatrix) get(a, b int32) uint8 {
	if a > b {
		a, b = b, a
	}
	return m.v[int(a)*m.stride+int(b)]
}

func (m *verdictMatrix) set(a, b int32, val uint8) {
	if a > b {
		a, b = b, a
	}
	m.v[int(a)*m.stride+int(b)] = val
}
