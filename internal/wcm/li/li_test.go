package li

import (
	"testing"

	"wcm3d/internal/cells"
	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
	"wcm3d/internal/place"
	"wcm3d/internal/scan"
	"wcm3d/internal/sta"
	"wcm3d/internal/wcm"
)

func prep(t *testing.T, seed int64) wcm.Input {
	t.Helper()
	n, err := netgen.Random(netgen.RandomOptions{
		Gates: 300, FFs: 14, PIs: 5, POs: 3, InboundTSVs: 10, OutboundTSVs: 10, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	lib := cells.Default45nm()
	pl, err := place.Place(n, place.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	timing, err := sta.Analyze(n, lib, sta.Config{ClockPS: 1e5, Placement: pl})
	if err != nil {
		t.Fatal(err)
	}
	return wcm.Input{Netlist: n, Lib: lib, Placement: pl, Timing: timing}
}

func TestLiOneShotSemantics(t *testing.T) {
	in := prep(t, 3)
	res, err := Run(in, 150)
	if err != nil {
		t.Fatal(err)
	}
	n := in.Netlist
	if err := res.Assignment.Validate(n); err != nil {
		t.Fatal(err)
	}
	if !res.Assignment.Covered(n) {
		t.Error("plan must cover every TSV")
	}
	// One-shot: every group holds exactly one TSV.
	for _, g := range res.Assignment.Control {
		if len(g.TSVs) != 1 {
			t.Errorf("Li control group holds %d TSVs, want 1", len(g.TSVs))
		}
	}
	for _, g := range res.Assignment.Observe {
		if len(g.Ports) != 1 {
			t.Errorf("Li observe group holds %d ports, want 1", len(g.Ports))
		}
	}
	// Reuse + additional = total TSVs (no sharing).
	total := len(n.InboundTSVs()) + len(n.OutboundTSVs())
	if res.ReusedFFs+res.AdditionalCells != total {
		t.Errorf("reused %d + cells %d != %d TSVs", res.ReusedFFs, res.AdditionalCells, total)
	}
	if res.ReusedFFs == 0 {
		t.Error("expected some reuse")
	}
}

func TestLiNeverBeatsSharingMethods(t *testing.T) {
	in := prep(t, 7)
	liRes, err := Run(in, 150)
	if err != nil {
		t.Fatal(err)
	}
	oursRes, err := wcm.Run(in, wcm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if oursRes.AdditionalCells > liRes.AdditionalCells {
		t.Errorf("clique sharing (%d cells) lost to one-shot reuse (%d cells)",
			oursRes.AdditionalCells, liRes.AdditionalCells)
	}
}

func TestLiRespectsConeSafety(t *testing.T) {
	// A reused FF's relevant cone must not overlap its TSV's cone
	// (excluding shared sources is ours' refinement; Li is strict).
	in := prep(t, 11)
	res, err := Run(in, 150)
	if err != nil {
		t.Fatal(err)
	}
	n := in.Netlist
	var sigs []netlist.SignalID
	sigs = append(sigs, n.InboundTSVs()...)
	for _, ff := range n.FlipFlops() {
		sigs = append(sigs, ff, n.Gate(ff).Fanin[0])
	}
	for _, p := range n.OutboundTSVs() {
		sigs = append(sigs, n.Outputs[p].Signal)
	}
	cones := netlist.NewConeSet(n, sigs)
	for _, g := range res.Assignment.Control {
		if !g.Reused() {
			continue
		}
		if cones.Fanout(g.ReusedFF).Intersects(cones.Fanout(g.TSVs[0])) {
			t.Errorf("control reuse with overlapping fan-out cones: FF %s / TSV %s",
				n.NameOf(g.ReusedFF), n.NameOf(g.TSVs[0]))
		}
	}
	for _, g := range res.Assignment.Observe {
		if !g.Reused() {
			continue
		}
		d := n.Gate(g.ReusedFF).Fanin[0]
		sig := n.Outputs[g.Ports[0]].Signal
		if cones.Fanin(d).Intersects(cones.Fanin(sig)) {
			t.Errorf("observe reuse with overlapping fan-in cones: FF %s / port %s",
				n.NameOf(g.ReusedFF), n.Outputs[g.Ports[0]].Name)
		}
	}
}

func TestLiPlanIsApplicable(t *testing.T) {
	in := prep(t, 13)
	res, err := Run(in, 150)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scan.ApplyTestMode(in.Netlist, res.Assignment); err != nil {
		t.Fatalf("Li plan not applicable: %v", err)
	}
}

func TestLiRejectsIncompleteInput(t *testing.T) {
	if _, err := Run(wcm.Input{}, 150); err == nil {
		t.Error("empty input must fail")
	}
}
