// Package li reproduces the method of J. Li and D. Xiang, "DFT optimization
// for pre-bond testing of 3D-SICs containing TSVs" (ICCD 2010): reuse an
// existing scan flip-flop as the wrapper cell of at most ONE TSV — one-shot
// matching, no multi-TSV sharing — inserting an additional wrapper cell for
// every TSV left unmatched. It predates the clique formulation and serves
// as the weaker reuse baseline.
package li

import (
	"fmt"
	"math"

	"wcm3d/internal/netlist"
	"wcm3d/internal/scan"
	"wcm3d/internal/wcm"
)

// Run executes the one-shot matching. Pairing requires non-overlapping
// cones (controllability for inbound TSVs through the FF's fan-out side,
// observability for outbound TSVs through the fan-in side) plus the same
// capacitance bound the clique methods honor. Matching is greedy
// nearest-eligible-first when a placement is present, first-eligible
// otherwise.
func Run(in wcm.Input, capThFF float64) (*wcm.Result, error) {
	n := in.Netlist
	if n == nil || in.Lib == nil || in.Timing == nil {
		return nil, fmt.Errorf("li: Netlist, Lib and Timing are required")
	}
	asn := &scan.Assignment{}
	used := map[netlist.SignalID]bool{}

	var coneSignals []netlist.SignalID
	ffs := n.FlipFlops()
	for _, ff := range ffs {
		coneSignals = append(coneSignals, ff, n.Gate(ff).Fanin[0])
	}
	coneSignals = append(coneSignals, n.InboundTSVs()...)
	for _, p := range n.OutboundTSVs() {
		coneSignals = append(coneSignals, n.Outputs[p].Signal)
	}
	cones := netlist.NewConeSet(n, coneSignals)

	dist := func(a, b netlist.SignalID) float64 {
		if in.Placement == nil {
			return 0
		}
		return in.Placement.Distance(a, b)
	}

	pick := func(anchor netlist.SignalID, eligible func(ff netlist.SignalID) bool) netlist.SignalID {
		best := netlist.InvalidSignal
		bestD := math.Inf(1)
		for _, ff := range ffs {
			if used[ff] || !eligible(ff) {
				continue
			}
			if d := dist(anchor, ff); d < bestD {
				best, bestD = ff, d
			}
		}
		return best
	}

	muxCap := in.Lib.Of(netlist.GateMux2).InputCapFF
	for _, t := range n.InboundTSVs() {
		ff := pick(t, func(ff netlist.SignalID) bool {
			if cones.Fanout(ff).Intersects(cones.Fanout(t)) {
				return false
			}
			return in.Timing.LoadFF[ff]+muxCap < capThFF
		})
		grp := scan.ControlGroup{ReusedFF: ff, TSVs: []netlist.SignalID{t}}
		if ff != netlist.InvalidSignal {
			used[ff] = true
		}
		asn.Control = append(asn.Control, grp)
	}
	for _, p := range n.OutboundTSVs() {
		sig := n.Outputs[p].Signal
		ff := pick(sig, func(ff netlist.SignalID) bool {
			d := n.Gate(ff).Fanin[0]
			if d == sig {
				return false
			}
			return !cones.Fanin(d).Intersects(cones.Fanin(sig))
		})
		grp := scan.ObserveGroup{ReusedFF: ff, Ports: []int{p}}
		if ff != netlist.InvalidSignal {
			used[ff] = true
		}
		asn.Observe = append(asn.Observe, grp)
	}
	if err := asn.Validate(n); err != nil {
		return nil, fmt.Errorf("li: produced invalid plan: %w", err)
	}
	return &wcm.Result{
		Assignment:      asn,
		ReusedFFs:       asn.ReusedFFs(),
		AdditionalCells: asn.AdditionalCells(),
	}, nil
}
