package wcm

import (
	"wcm3d/internal/netlist"
)

// Evaluator estimates the testability cost of letting two nodes share a
// wrapper cell when their cones overlap (paper Algorithm 1 lines 21-23:
// fault_coverage(n1,n2) and #test_patterns(n1,n2)). The paper consults a
// commercial ATPG tool here; this reproduction offers a fast structural
// estimator (default) and an exact incremental-ATPG evaluator
// (internal/experiments) used to validate the estimator on small dies.
type Evaluator interface {
	// SharePenalty returns the estimated fault-coverage decrease
	// (fraction of the fault universe) and pattern-count increase caused
	// by sharing between two nodes whose cones overlap in overlapGates
	// combinational gates.
	SharePenalty(n *netlist.Netlist, overlapGates int) (covLoss float64, patInc int)
}

// StructuralEstimator derives the penalty from the size of the cone
// overlap: each shared gate contributes potential aliasing (a fault whose
// effect reaches the observation point along both shared paths can cancel)
// and potential input correlation (a fault needing independent values on
// the two cones may lose its test). Empirically — validated against the
// exact evaluator in the test suite — aliasing kills a small fraction of
// the faults in the overlap region, and recovering coverage costs roughly
// one extra targeted pattern per handful of overlapped gates.
type StructuralEstimator struct {
	// CovPerOverlapGate scales coverage loss per shared gate, as a
	// fraction of the fault universe. Zero means the default 0.5 faults
	// per shared gate.
	CovPerOverlapGate float64
	// GatesPerPattern is the number of shared gates that cost one extra
	// pattern. Zero means the default 12.
	GatesPerPattern int
}

var _ Evaluator = StructuralEstimator{}

// SharePenalty implements Evaluator.
func (e StructuralEstimator) SharePenalty(n *netlist.Netlist, overlap int) (float64, int) {
	if overlap <= 0 {
		return 0, 0
	}
	perGate := e.CovPerOverlapGate
	if perGate == 0 {
		perGate = 2.0
	}
	gpp := e.GatesPerPattern
	if gpp == 0 {
		gpp = 4
	}
	// The fault universe is roughly two collapsed faults per gate.
	universe := float64(2 * n.NumGates())
	covLoss := perGate * float64(overlap) / universe
	patInc := 1 + overlap/gpp
	return covLoss, patInc
}
