package wcm

import (
	"testing"
	"testing/quick"

	"wcm3d/internal/cells"
	"wcm3d/internal/netgen"
	"wcm3d/internal/place"
	"wcm3d/internal/sta"
)

// TestQuickPlanAlwaysValidAndCovering: for arbitrary small dies and
// threshold settings, the WCM flow must always emit a valid plan covering
// every TSV — the hard invariant everything downstream (DFT editing, ATPG
// grading, timing signoff) depends on.
func TestQuickPlanAlwaysValidAndCovering(t *testing.T) {
	lib := cells.Default45nm()
	f := func(seed int64, inRaw, outRaw uint8, capRaw, distRaw uint8, overlap bool) bool {
		n, err := netgen.Random(netgen.RandomOptions{
			Gates:        150,
			FFs:          8,
			PIs:          4,
			POs:          3,
			InboundTSVs:  1 + int(inRaw%12),
			OutboundTSVs: 1 + int(outRaw%12),
			Seed:         seed,
		})
		if err != nil {
			return false
		}
		pl, err := place.Place(n, place.Options{Seed: seed})
		if err != nil {
			return false
		}
		timing, err := sta.Analyze(n, lib, sta.Config{ClockPS: 5000, Placement: pl})
		if err != nil {
			return false
		}
		opts := Options{
			CapThFF:      40 + float64(capRaw%120),
			SlackThPS:    0,
			DistThUM:     20 + float64(distRaw)*3,
			AllowOverlap: overlap,
			CovThFrac:    0.005,
			PatThCount:   10,
		}
		res, err := Run(Input{Netlist: n, Lib: lib, Placement: pl, Timing: timing}, opts)
		if err != nil {
			return false
		}
		if err := res.Assignment.Validate(n); err != nil {
			return false
		}
		return res.Assignment.Covered(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickOverlapNeverWorsens: under any configuration, allowing
// overlapped-cone edges must not increase the additional-cell count —
// because overlap edges are only consumed after clean edges are exhausted.
func TestQuickOverlapNeverWorsens(t *testing.T) {
	lib := cells.Default45nm()
	f := func(seed int64, inRaw, outRaw uint8) bool {
		n, err := netgen.Random(netgen.RandomOptions{
			Gates: 200, FFs: 10, PIs: 4, POs: 3,
			InboundTSVs:  2 + int(inRaw%10),
			OutboundTSVs: 2 + int(outRaw%10),
			Seed:         seed,
		})
		if err != nil {
			return false
		}
		pl, err := place.Place(n, place.Options{Seed: seed})
		if err != nil {
			return false
		}
		timing, err := sta.Analyze(n, lib, sta.Config{ClockPS: 5000, Placement: pl})
		if err != nil {
			return false
		}
		in := Input{Netlist: n, Lib: lib, Placement: pl, Timing: timing}
		off := DefaultOptions()
		off.AllowOverlap = false
		on := DefaultOptions()
		rOff, err := Run(in, off)
		if err != nil {
			return false
		}
		rOn, err := Run(in, on)
		if err != nil {
			return false
		}
		return rOn.AdditionalCells <= rOff.AdditionalCells
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
