// Package wcm implements the paper's contribution: timing-aware wrapper-cell
// minimization for pre-bond testing of 3D-IC dies.
//
// The flow mirrors the paper's Figure 6. Given a placed, timed die:
//
//  1. TSV analysis picks which TSV set (inbound or outbound) to process
//     first — the larger one, which the paper's Table I shows yields
//     better coverage with fewer cells;
//  2. graph construction (Algorithm 1) builds the sharing graph under a
//     capacitance threshold (cap_th), a slack threshold (s_th), a distance
//     threshold (d_th), and — new versus Agrawal's method — testability
//     thresholds (cov_th, p_th) that admit edges between nodes with
//     overlapping fan-in/fan-out cones;
//  3. heuristic clique partitioning (Algorithm 2) repeatedly merges the
//     minimum-degree adjacent pair while the merged clique's cost stays
//     within its budget;
//  4. cliques become the wrapper plan: a clique with a scan flip-flop
//     reuses it, a clique without one gets a single additional wrapper
//     cell.
//
// Setting Order to inbound-first, Timing to capacitance-only, and
// AllowOverlap to false reproduces Agrawal et al. (TCAD'15) — packaged as
// wcm/agrawal — which the paper (and this reproduction) compares against.
package wcm

import (
	"fmt"
	"math"
	"time"

	"wcm3d/internal/cells"
	"wcm3d/internal/netlist"
	"wcm3d/internal/place"
	"wcm3d/internal/scan"
	"wcm3d/internal/sta"
)

// OrderPolicy selects which TSV set is processed first. Flip-flops consumed
// by the first phase are unavailable to the second, so the order matters
// (paper Table I).
type OrderPolicy uint8

// Ordering policies.
const (
	// OrderLargerFirst processes the larger TSV set first — the paper's
	// proposal.
	OrderLargerFirst OrderPolicy = iota + 1
	// OrderInboundFirst always starts with inbound TSVs — Agrawal's
	// fixed order.
	OrderInboundFirst
	// OrderOutboundFirst always starts with outbound TSVs.
	OrderOutboundFirst
	// OrderSmallerFirst processes the smaller set first (ablation).
	OrderSmallerFirst
)

// String names the policy.
func (o OrderPolicy) String() string {
	switch o {
	case OrderLargerFirst:
		return "larger-first"
	case OrderInboundFirst:
		return "inbound-first"
	case OrderOutboundFirst:
		return "outbound-first"
	case OrderSmallerFirst:
		return "smaller-first"
	default:
		return fmt.Sprintf("OrderPolicy(%d)", uint8(o))
	}
}

// TimingModel selects how sharing cost is computed.
type TimingModel uint8

// Timing models.
const (
	// TimingCapWire includes routed-wire capacitance and delay derived
	// from placement distance — the paper's "accurate timing model".
	TimingCapWire TimingModel = iota + 1
	// TimingCapOnly counts pin capacitance only, ignoring wire — the
	// model the paper attributes to Agrawal's method.
	TimingCapOnly
)

// String names the model.
func (m TimingModel) String() string {
	switch m {
	case TimingCapWire:
		return "cap+wire"
	case TimingCapOnly:
		return "cap-only"
	default:
		return fmt.Sprintf("TimingModel(%d)", uint8(m))
	}
}

// Options configures a WCM run. DefaultOptions gives the paper's
// "ours, performance-optimized" configuration.
type Options struct {
	// CapThFF is cap_th: the maximum capacitive load (fF) a control
	// point may accumulate.
	CapThFF float64
	// PadCapThFF filters inbound TSVs at node construction: a pad whose
	// existing downstream load exceeds this (the library wrapper mux's
	// drive capability) gets a dedicated, up-sized wrapper cell instead
	// of entering the sharing graph. Zero means the default 400 fF (a
	// large library mux/buffer).
	PadCapThFF float64
	// SlackThPS is s_th: the minimum timing slack (ps) an outbound TSV's
	// driver must retain after the observation hardware is added.
	SlackThPS float64
	// DistThUM is d_th: the maximum Manhattan distance (µm) between two
	// nodes that may share. Use math.Inf(1) to disable (Agrawal).
	DistThUM float64
	// AllowOverlap admits edges between nodes with overlapping
	// fan-in/fan-out cones, subject to CovThFrac and PatThCount.
	AllowOverlap bool
	// CovThFrac is cov_th: the maximum estimated fault-coverage decrease
	// (fraction, e.g. 0.005 = 0.5%) an overlapped edge may cost.
	CovThFrac float64
	// PatThCount is p_th: the maximum estimated pattern-count increase
	// an overlapped edge may cost.
	PatThCount int
	// Order picks the TSV-set processing order.
	Order OrderPolicy
	// Timing picks the sharing-cost model.
	Timing TimingModel
	// SlackSpendFrac is the fraction of a signal's slack the accurate
	// (cap+wire) model lets test hardware consume: launch-side load
	// growth and capture-side inserted delay are both budgeted against
	// it. Zero means the default 0.20; +Inf disables slack budgeting
	// (the paper's area-optimized scenario). Ignored under TimingCapOnly.
	SlackSpendFrac float64
	// Merge picks the pair-selection heuristic of the clique
	// partitioner (ablation knob; the paper uses minimum degree).
	Merge MergePolicy
	// Testability estimates the cost of overlapped-cone sharing; nil
	// defaults to the structural estimator. When Workers permits
	// parallelism the evaluator is called from multiple goroutines at
	// once, so a custom implementation must be safe for concurrent use
	// (the default structural estimator is).
	Testability Evaluator
	// Workers bounds the worker pool a single Run uses for cone and edge
	// construction. 0 (or negative) means GOMAXPROCS; 1 forces the fully
	// serial path. The produced plan and statistics are bit-identical at
	// every setting — parallelism changes latency only.
	Workers int
	// Refine asks the layers above this package (wcm3d.MinimizeWith, the
	// wcmd service) to run the anytime solver portfolio of internal/refine
	// on the greedy plan and keep the best independently-verified
	// improvement. Run itself ignores it: refinement races against a
	// deadline and re-verifies candidates through internal/verify, which
	// sits above this package in the dependency order.
	Refine bool
	// RefineBudget bounds the refinement wall time when Refine is set.
	// Zero means the portfolio's default budget; the caller's context
	// deadline always caps it regardless.
	RefineBudget time.Duration
	// RefineSeed drives the portfolio's seeded strategies (annealing,
	// restart perturbation, LNS destroy picking) when Refine is set, so
	// a refined MinimizeWith run is reproducible end to end.
	RefineSeed int64
	// RefineStrategies restricts the portfolio to a subset of its
	// solvers when Refine is set; nil or empty races all of them.
	RefineStrategies []string
}

// MergePolicy selects how Algorithm 2 picks the next pair to merge.
type MergePolicy uint8

// Merge policies.
const (
	// MergeMinDegree merges the minimum-degree node with its
	// minimum-degree neighbor — the paper's heuristic. Low-degree nodes
	// have the fewest sharing options, so serving them first preserves
	// flexibility.
	MergeMinDegree MergePolicy = iota + 1
	// MergeFirstEdge merges the first edge found (ablation baseline).
	MergeFirstEdge
)

// String names the policy.
func (m MergePolicy) String() string {
	switch m {
	case MergeMinDegree:
		return "min-degree"
	case MergeFirstEdge:
		return "first-edge"
	default:
		return fmt.Sprintf("MergePolicy(%d)", uint8(m))
	}
}

// DefaultOptions returns the paper's configuration: larger set first,
// wire-aware timing, overlapped cones admitted under cov_th = 0.5 % and
// p_th = 10.
func DefaultOptions() Options {
	return Options{
		CapThFF:      150,
		SlackThPS:    0,
		DistThUM:     400,
		AllowOverlap: true,
		CovThFrac:    0.005,
		PatThCount:   10,
		Order:        OrderLargerFirst,
		Timing:       TimingCapWire,
	}
}

// WithDefaults returns the effective configuration a Run would use: every
// zero field replaced by its documented default. Result.Options already
// echoes this; the exported form lets external checkers (internal/verify)
// normalize a hand-built Options the same way without re-implementing the
// defaulting rules.
func (o Options) WithDefaults() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.CapThFF == 0 {
		o.CapThFF = 150
	}
	if o.DistThUM == 0 {
		o.DistThUM = math.Inf(1)
	}
	if o.Order == 0 {
		o.Order = OrderLargerFirst
	}
	if o.Timing == 0 {
		o.Timing = TimingCapWire
	}
	if o.Testability == nil {
		o.Testability = StructuralEstimator{}
	}
	if o.SlackSpendFrac == 0 {
		o.SlackSpendFrac = 0.20
	}
	if o.Merge == 0 {
		o.Merge = MergeMinDegree
	}
	if o.PadCapThFF == 0 {
		o.PadCapThFF = 400
	}
	return o
}

// Input bundles the die artefacts the flow consumes.
type Input struct {
	// Netlist is the die under DFT insertion.
	Netlist *netlist.Netlist
	// Lib supplies cell capacitances, drive strengths and wire RC.
	Lib *cells.Library
	// Placement locates every cell and pad (nil only with
	// TimingCapOnly and DistThUM = +Inf).
	Placement *place.Placement
	// Timing is the base static timing analysis of the die under the
	// target clock.
	Timing *sta.Result
	// RefreshTiming, when non-nil, is called between the two TSV-set
	// phases with the partial wrapper plan so far; the returned analysis
	// replaces Timing for the second phase. This is the cross-phase
	// "update capacity load information" of the paper's flow: hardware
	// committed for the first set consumes slack the second set can no
	// longer spend.
	RefreshTiming func(partial *scan.Assignment) (*sta.Result, error)
}

func (in Input) validate(opts Options) error {
	if in.Netlist == nil || in.Lib == nil || in.Timing == nil {
		return fmt.Errorf("wcm: Netlist, Lib and Timing are required")
	}
	needPlace := opts.Timing == TimingCapWire || !math.IsInf(opts.DistThUM, 1)
	if needPlace && in.Placement == nil {
		return fmt.Errorf("wcm: placement required for %s timing with d_th=%v", opts.Timing, opts.DistThUM)
	}
	if in.Placement != nil && in.Placement.Netlist != in.Netlist {
		return fmt.Errorf("wcm: placement belongs to a different netlist")
	}
	if in.Timing.Netlist != in.Netlist {
		return fmt.Errorf("wcm: timing analysis belongs to a different netlist")
	}
	return nil
}

// PhaseStats reports the graph size of one phase (inbound or outbound) —
// the quantities Figure 7 of the paper plots.
type PhaseStats struct {
	// Inbound reports which TSV set the phase processed.
	Inbound bool
	// Nodes and Edges size the constructed graph.
	Nodes int
	Edges int
	// OverlapEdges counts edges admitted despite overlapping cones
	// (zero unless AllowOverlap).
	OverlapEdges int
	// FilteredTSVs counts TSVs excluded at node construction (they get
	// dedicated wrapper cells without entering the graph).
	FilteredTSVs int
	// Cliques counts the partition's cliques containing >= 1 TSV.
	Cliques int
	// Merges and EdgeDeletes count partitioning actions (diagnostics).
	Merges      int
	EdgeDeletes int
}

// Result is the outcome of a WCM run.
type Result struct {
	// Assignment is the wrapper plan, consumable by internal/scan.
	Assignment *scan.Assignment
	// ReusedFFs counts scan flip-flops reused as wrapper cells.
	ReusedFFs int
	// AdditionalCells counts dedicated wrapper cells inserted.
	AdditionalCells int
	// Phases holds per-phase graph statistics in processing order.
	Phases []PhaseStats
	// Options echoes the effective configuration.
	Options Options
}

// TotalEdges sums the graph edges across phases (Figure 7's metric).
func (r *Result) TotalEdges() int {
	t := 0
	for _, p := range r.Phases {
		t += p.Edges
	}
	return t
}

// TotalOverlapEdges sums overlapped-cone edges across phases.
func (r *Result) TotalOverlapEdges() int {
	t := 0
	for _, p := range r.Phases {
		t += p.OverlapEdges
	}
	return t
}

// AreaUM2 reports the plan's DFT area overhead under a library: each
// dedicated wrapper cell costs a full cell, each reused flip-flop costs a
// test mux on the control side or a mux plus XOR on the observe side, and
// every fold stage adds an XOR. This is the metric the paper's
// minimization ultimately serves.
func (r *Result) AreaUM2(lib *cells.Library) float64 {
	area := 0.0
	for _, g := range r.Assignment.Control {
		if g.Reused() {
			area += lib.ScanMuxAreaUM2 * float64(len(g.TSVs))
		} else {
			area += lib.WrapperCellAreaUM2 + lib.ScanMuxAreaUM2*float64(len(g.TSVs)-1)
		}
	}
	for _, g := range r.Assignment.Observe {
		stages := float64(len(g.Ports) - 1)
		if g.Reused() {
			// Mux + fold XOR on the D path, plus one XOR per extra member.
			area += 2*lib.ScanMuxAreaUM2 + lib.ScanMuxAreaUM2*stages
		} else {
			area += lib.WrapperCellAreaUM2 + lib.ScanMuxAreaUM2*stages
		}
	}
	return area
}
