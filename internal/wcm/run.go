package wcm

import (
	"fmt"
	"math"
	"sync"

	"wcm3d/internal/netlist"
	"wcm3d/internal/par"
	"wcm3d/internal/scan"
	"wcm3d/internal/wcmgraph"
)

// Run executes the full WCM flow on a die and returns the wrapper plan.
func Run(in Input, opts Options) (*Result, error) {
	return run(in, opts, nil)
}

// run is Run with optional session state (see Session). A nil state keeps
// every phase on the plain from-scratch path; the produced plan is
// identical either way.
func run(in Input, opts Options, st *sessionState) (*Result, error) {
	opts = opts.withDefaults()
	if err := in.validate(opts); err != nil {
		return nil, err
	}
	n := in.Netlist
	inbound := n.InboundTSVs()
	outbound := n.OutboundTSVs()
	firstInbound := true
	switch opts.Order {
	case OrderLargerFirst:
		firstInbound = len(inbound) >= len(outbound)
	case OrderSmallerFirst:
		firstInbound = len(inbound) < len(outbound)
	case OrderInboundFirst:
		firstInbound = true
	case OrderOutboundFirst:
		firstInbound = false
	}

	available := make(map[netlist.SignalID]bool, len(n.FlipFlops()))
	for _, ff := range n.FlipFlops() {
		available[ff] = true
	}

	// Every cone, source mask and masked-cone bitset a phase builds dies
	// with the phase, so their word storage routes through one arena and
	// returns to the global pools at phase end — repeated runs (the batch
	// sweep) then recycle instead of reallocating. Nothing reachable from
	// Result ever comes from the arena.
	arena := netlist.NewArena()
	defer arena.Release()

	res := &Result{Assignment: &scan.Assignment{}, Options: opts}
	phases := []bool{firstInbound, !firstInbound}
	for pi, isInbound := range phases {
		var memo *phaseMemo
		var sc *stageCache
		if st != nil {
			memo = &st.outboundMemo
			if isInbound {
				memo = &st.inboundMemo
			}
			sc = &st.stages[pi]
		}
		ph := &phaseRunner{in: in, opts: opts, inbound: isInbound, available: available, arena: arena, memo: memo}
		ph.collect()
		var stats PhaseStats
		if sc != nil && sc.replay(ph, res.Assignment) {
			// The phase's exact inputs — item and flip-flop membership and
			// their memo slots (never-reused slot ids certify the cached
			// verdicts) — match a previously computed phase, whose emitted
			// groups are replayed without touching the graph.
			stats = sc.stats
		} else {
			if sc != nil {
				sc.valid = false
			}
			c0, o0 := len(res.Assignment.Control), len(res.Assignment.Observe)
			var err error
			stats, err = ph.run(res.Assignment)
			arena.Release() // phase 2 re-draws the words phase 1 returned
			if err != nil {
				return nil, err
			}
			if sc != nil {
				sc.fill(ph, stats, res.Assignment, c0, o0)
			}
		}
		res.Phases = append(res.Phases, stats)
		if pi == 0 && in.RefreshTiming != nil {
			refreshed, err := in.RefreshTiming(res.Assignment)
			if err != nil {
				return nil, fmt.Errorf("wcm: refreshing timing after first phase: %w", err)
			}
			if refreshed != nil {
				in.Timing = refreshed
			}
		}
	}
	// The wire-aware planner knows where its long test runs are, so it
	// plans repeatered (buffered) test routing; the capacitance-only
	// baseline cannot, and its plan ships unbuffered.
	res.Assignment.BufferedRouting = opts.Timing == TimingCapWire
	res.ReusedFFs = res.Assignment.ReusedFFs()
	res.AdditionalCells = res.Assignment.AdditionalCells()
	if err := res.Assignment.Validate(n); err != nil {
		return nil, fmt.Errorf("wcm: produced invalid plan: %w", err)
	}
	if !res.Assignment.Covered(n) {
		return nil, fmt.Errorf("wcm: plan does not cover every TSV")
	}
	return res, nil
}

// phaseRunner builds and partitions the sharing graph for one TSV set.
type phaseRunner struct {
	in        Input
	opts      Options
	inbound   bool
	available map[netlist.SignalID]bool
	// arena supplies recycled word storage for every phase-lifetime
	// bitset (cones, source mask, masked cones). May be nil (benchmarks
	// drive phaseRunner directly): everything degrades to plain
	// allocation.
	arena *netlist.Arena
	// memo, when non-nil, caches masked cones and edge verdicts across
	// runs of a replan session (see Session). Memoized masked cones are
	// plain-allocated — they outlive the arena.
	memo *phaseMemo

	// per-run state
	collected  bool
	items      []int              // item indices that passed the node filter
	excluded   []int              // item indices excluded to dedicated cells
	ffs        []netlist.SignalID // available, eligible flip-flops
	usedFFs    []netlist.SignalID // flip-flops the plan assembly consumed
	tsvSignals []netlist.SignalID // cone anchor per TSV item
	tsvPorts   []int              // outbound only: port index per item
	cones      *netlist.ConeSet
	sourceMask *netlist.BitSet // sources excluded from cone-overlap tests
	graph      *wcmgraph.Graph
	// nodeCone and nodeAnchor index the sharing-relevant cone and anchor
	// signal by graph node id, so the O(n²) edge sweep does two array
	// loads per pair instead of map lookups. nodeMasked is the cone with
	// shared-source signals already stripped (cone &^ sourceMask) and
	// nodeLo/nodeHi its non-zero word span: the pair test then scans one
	// AND over the overlap of two short spans instead of a full-width
	// double-mask pass, with bit-identical answers. Valid for the initial
	// (pre-merge) nodes only — exactly the ones the sweep visits.
	nodeCone   []*netlist.BitSet
	nodeMasked []*netlist.BitSet
	nodeLo     []int32
	nodeHi     []int32
	nodeAnchor []netlist.SignalID
	// nodeSlot maps graph node id to the session memo slot (memo != nil).
	nodeSlot []int32
}

func (ph *phaseRunner) run(asn *scan.Assignment) (PhaseStats, error) {
	stats := PhaseStats{Inbound: ph.inbound}
	defer func() {
		if ph.graph != nil {
			ph.graph.Release() // adjacency rows back to the word pools
		}
	}()
	_, excluded, err := ph.buildGraph(&stats)
	if err != nil {
		return stats, err
	}

	// ----- Heuristic clique partitioning (Algorithm 2).
	if err := ph.partition(&stats); err != nil {
		return stats, err
	}

	// ----- Plan assembly.
	for _, cid := range ph.graph.Cliques() {
		node := ph.graph.Node(cid)
		if len(node.Members) == 0 {
			continue // unused flip-flop
		}
		stats.Cliques++
		ffSig := netlist.InvalidSignal
		if node.HasFF {
			ffSig = netlist.SignalID(node.FF)
			ph.available[ffSig] = false
			ph.usedFFs = append(ph.usedFFs, ffSig)
		}
		ph.emitGroup(asn, ffSig, node.Members)
	}
	for _, i := range excluded {
		ph.emitGroup(asn, netlist.InvalidSignal, []int32{int32(i)})
	}
	return stats, nil
}

// collect runs Algorithm 1's item collection and node filters (lines
// 1-14) plus flip-flop eligibility, leaving the phase's membership lists
// in ph.items/ph.excluded/ph.ffs. Idempotent: the session probes a
// phase's membership before deciding whether to replay it from cache, and
// buildGraph reuses the collected lists.
func (ph *phaseRunner) collect() {
	if ph.collected {
		return
	}
	ph.collected = true
	n := ph.in.Netlist
	if ph.inbound {
		for _, t := range n.InboundTSVs() {
			ph.tsvSignals = append(ph.tsvSignals, t)
		}
		// The node filter guards the wrapper mux's drive capability: the
		// mux takes over driving the pad's downstream pins, so a pad
		// whose pin load exceeds what a library mux can drive is
		// excluded (it gets a dedicated, appropriately-sized wrapper
		// cell). Pin capacitance only — long functional nets carry
		// buffers in a real flow, so wire load is not a drive concern
		// here; the wire-aware budgets police everything timing.
		for i, t := range ph.tsvSignals {
			pinLoad := 0.0
			for _, fo := range n.Fanouts()[t] {
				pinLoad += ph.in.Lib.Of(n.TypeOf(fo)).InputCapFF
			}
			if pinLoad < ph.opts.PadCapThFF {
				ph.items = append(ph.items, i)
			} else {
				ph.excluded = append(ph.excluded, i)
			}
		}
	} else {
		for _, p := range n.OutboundTSVs() {
			ph.tsvPorts = append(ph.tsvPorts, p)
			ph.tsvSignals = append(ph.tsvSignals, n.Outputs[p].Signal)
		}
		// A port may enter the graph when its driver's slack covers the
		// observation tap (an XOR pin plus one repeater segment slow the
		// driver; the delta rides every functional path through it) on
		// top of the s_th reserve. The fold-XOR chain itself is a
		// test-mode path and is not held to functional slack.
		for i, sig := range ph.tsvSignals {
			if ph.in.Timing.SlackPS(sig)-ph.opts.SlackThPS > ph.tapCostPS(sig) {
				ph.items = append(ph.items, i)
			} else {
				ph.excluded = append(ph.excluded, i)
			}
		}
	}
	for _, ff := range n.FlipFlops() {
		if ph.available[ff] && ph.ffEligible(ff) {
			ph.ffs = append(ph.ffs, ff)
		}
	}
}

// buildGraph runs Algorithm 1 end to end — item collection and node
// filters, cone precomputation, node construction, and the parallel edge
// sweep — leaving the constructed sharing graph in ph.graph. It returns
// the item indices that entered the graph and the ones excluded to
// dedicated cells. Split from run so the graph-construction hot path can
// be measured (BenchmarkGraphBuild) apart from the partitioner.
func (ph *phaseRunner) buildGraph(stats *PhaseStats) (items, excluded []int, err error) {
	n := ph.in.Netlist
	ph.collect()
	items, excluded, ffs := ph.items, ph.excluded, ph.ffs
	stats.FilteredTSVs = len(excluded)

	// Cones: fan-out side for control sharing, fan-in side for
	// observation sharing.
	ffConeSig := func(ff netlist.SignalID) netlist.SignalID {
		if ph.inbound {
			return ff
		}
		return n.Gate(ff).Fanin[0]
	}
	var coneSignals []netlist.SignalID
	if ph.memo == nil {
		coneSignals = append(coneSignals, ph.tsvSignals...)
		for _, ff := range ffs {
			coneSignals = append(coneSignals, ffConeSig(ff))
		}
	} else {
		// A session run only traverses cones its memo has never seen;
		// everything else is served from the cached masked cones.
		for _, i := range items {
			if _, ok := ph.memo.slots[slotKey{ff: false, sig: ph.tsvSignals[i]}]; !ok {
				coneSignals = append(coneSignals, ph.tsvSignals[i])
			}
		}
		for _, ff := range ffs {
			if _, ok := ph.memo.slots[slotKey{ff: true, sig: ff}]; !ok {
				coneSignals = append(coneSignals, ffConeSig(ff))
			}
		}
	}
	ph.cones = netlist.NewConeSetArena(n, coneSignals, ph.opts.Workers, ph.arena)
	ph.sourceMask = ph.arena.NewBitSet(n.NumGates())
	for i := range n.Gates {
		id := netlist.SignalID(i)
		if n.TypeOf(id).IsSource() || n.TypeOf(id) == netlist.GateDFF {
			ph.sourceMask.Set(id)
		}
	}

	// ----- Node construction.
	ph.graph = wcmgraph.New(len(items) + len(ffs))
	tsvNode := make([]int, len(ph.tsvSignals))
	for i := range tsvNode {
		tsvNode[i] = -1
	}
	for _, i := range items {
		node := wcmgraph.Node{Members: []int32{int32(i)}}
		ph.fillTSVNode(&node, i)
		id, err := ph.graph.AddNode(node)
		if err != nil {
			return nil, nil, err
		}
		tsvNode[i] = id
	}
	ffNode := make([]int, 0, len(ffs))
	for _, ff := range ffs {
		node := wcmgraph.Node{HasFF: true, FF: int32(ff)}
		ph.fillFFNode(&node, ff)
		id, err := ph.graph.AddNode(node)
		if err != nil {
			return nil, nil, err
		}
		ffNode = append(ffNode, id)
	}
	stats.Nodes = ph.graph.NumAlive()

	// ----- Edge construction (Algorithm 1, lines 16-26). The pair space
	// is O(items × (items + ffs)) evaluations of edgeAllowed — pure reads
	// over the precomputed cones and node fields — so rows are striped
	// across a worker pool, each worker writing verdicts into its rows of
	// a flat buffer. The verdicts are then applied to the graph in the
	// serial (i, j) order, so the graph and the running stats come out
	// byte-identical at every worker count.
	nNodes := len(items) + len(ffs)
	ph.nodeMasked = make([]*netlist.BitSet, nNodes)
	ph.nodeLo = make([]int32, nNodes)
	ph.nodeHi = make([]int32, nNodes)
	ph.nodeAnchor = make([]netlist.SignalID, nNodes)
	for id := 0; id < nNodes; id++ {
		ph.nodeAnchor[id] = ph.anchor(id)
	}
	if ph.memo == nil {
		ph.nodeCone = make([]*netlist.BitSet, nNodes)
		for id := 0; id < nNodes; id++ {
			ph.nodeCone[id] = ph.coneOf(id)
		}
		par.Do(ph.opts.Workers, nNodes, func(_, id int) {
			m := ph.nodeCone[id].AndNotInto(ph.sourceMask, ph.arena.NewBitSet(n.NumGates()))
			lo, hi := m.WordSpan()
			ph.nodeMasked[id] = m
			ph.nodeLo[id], ph.nodeHi[id] = int32(lo), int32(hi)
		})
	} else {
		ph.nodeSlot = make([]int32, nNodes)
		for id := 0; id < nNodes; id++ {
			var key slotKey
			if node := ph.graph.Node(id); node.HasFF {
				key = slotKey{ff: true, sig: netlist.SignalID(node.FF)}
			} else {
				key = slotKey{ff: false, sig: ph.tsvSignals[node.Members[0]]}
			}
			slot, hit := ph.memo.slotFor(key)
			ph.nodeSlot[id] = slot
			if !hit {
				// Plain allocation: the memoized masked cone outlives
				// this phase's arena.
				m := ph.coneOf(id).AndNotInto(ph.sourceMask, netlist.NewBitSet(n.NumGates()))
				lo, hi := m.WordSpan()
				ph.memo.masked[slot] = m
				ph.memo.lo[slot], ph.memo.hi[slot] = int32(lo), int32(hi)
			}
			ph.nodeMasked[id] = ph.memo.masked[slot]
			ph.nodeLo[id], ph.nodeHi[id] = ph.memo.lo[slot], ph.memo.hi[slot]
		}
		ph.memo.verd.ensure(len(ph.memo.masked))
	}
	if ph.memo != nil {
		// Session runs assemble the graph in bulk from the verdict matrix
		// instead of replaying per-edge insertions.
		return items, excluded, ph.buildEdgesBulk(stats, len(items), nNodes)
	}
	offs := make([]int, len(items)+1)
	for i := 0; i < len(items); i++ {
		offs[i+1] = offs[i] + (len(items) - 1 - i) + len(ffNode)
	}
	verdicts := getVerdicts(offs[len(items)])
	defer putVerdicts(verdicts)
	par.Do(ph.opts.Workers, len(items), func(_, i int) {
		k := offs[i]
		for j := i + 1; j < len(items); j++ {
			verdicts[k] = ph.edgeVerdict(tsvNode[items[i]], tsvNode[items[j]])
			k++
		}
		for _, fid := range ffNode {
			verdicts[k] = ph.edgeVerdict(tsvNode[items[i]], fid)
			k++
		}
	})
	apply := func(a, b int, v uint8) {
		switch v {
		case edgeClean:
			ph.graph.AddEdge(a, b)
		case edgeOverlap:
			ph.graph.AddOverlapEdge(a, b)
			stats.OverlapEdges++
		}
	}
	for i := 0; i < len(items); i++ {
		k := offs[i]
		for j := i + 1; j < len(items); j++ {
			apply(tsvNode[items[i]], tsvNode[items[j]], verdicts[k])
			k++
		}
		for _, fid := range ffNode {
			apply(tsvNode[items[i]], fid, verdicts[k])
			k++
		}
	}
	stats.Edges = ph.graph.NumEdges()
	return items, excluded, nil
}

// buildEdgesBulk is the session-run edge constructor. The verdict matrix
// is the authoritative, order-independent edge set: unknown cells (pairs
// involving a slot the memo has never priced, or old slots never
// co-present in one run) are computed and filled in first, then every
// node's adjacency row is written directly from the matrix — row-local
// writes, so rows build in parallel at any worker count — and the degree
// indexes are built in one pass. The resulting graph state is
// bit-identical to the per-edge path: bitset rows are sets, counters are
// popcounts, and the degree buckets hold the same members, so the
// partitioner's pick sequence is unchanged. Item nodes occupy ids
// [0, nItems); their rows span all nodes. Flip-flop rows only carry item
// bits — flip-flop pairs are never in the pair space.
func (ph *phaseRunner) buildEdgesBulk(stats *PhaseStats, nItems, nNodes int) error {
	memo := ph.memo
	var unkA, unkB []int32
	for a := 0; a < nItems; a++ {
		sa := ph.nodeSlot[a]
		for b := a + 1; b < nNodes; b++ {
			sb := ph.nodeSlot[b]
			if sa == sb {
				// Distinct nodes sharing an anchor (outbound ports on one
				// driver): edgeAllowed rejects equal anchors
				// unconditionally, so no cell is stored.
				continue
			}
			if memo.verd.get(sa, sb) == verdUnknown {
				unkA = append(unkA, int32(a))
				unkB = append(unkB, int32(b))
			}
		}
	}
	if len(unkA) > 0 {
		buf := getVerdicts(len(unkA))
		par.Do(ph.opts.Workers, len(unkA), func(_, k int) {
			buf[k] = ph.edgeVerdict(int(unkA[k]), int(unkB[k]))
		})
		for k := range unkA {
			memo.verd.set(ph.nodeSlot[unkA[k]], ph.nodeSlot[unkB[k]], buf[k])
		}
		putVerdicts(buf)
	}
	par.Do(ph.opts.Workers, nNodes, func(_, id int) {
		adjRow, cleanRow := ph.graph.BulkRows(id)
		sa := ph.nodeSlot[id]
		hi := nNodes
		if id >= nItems {
			hi = nItems
		}
		for b := 0; b < hi; b++ {
			sb := ph.nodeSlot[b]
			if b == id || sa == sb {
				continue
			}
			switch memo.verd.get(sa, sb) {
			case edgeClean:
				adjRow[b>>6] |= 1 << (uint(b) & 63)
				cleanRow[b>>6] |= 1 << (uint(b) & 63)
			case edgeOverlap:
				adjRow[b>>6] |= 1 << (uint(b) & 63)
			}
		}
	})
	edges, cleanEdges := ph.graph.FinishBulkEdges()
	stats.Edges = edges
	stats.OverlapEdges = edges - cleanEdges
	// Long delete runs between merges dominate session partitions; the
	// candidate cache serves them without changing a single pick.
	ph.graph.EnablePickCache()
	return nil
}

// fillTSVNode initializes load/budget/position for a TSV node.
func (ph *phaseRunner) fillTSVNode(node *wcmgraph.Node, item int) {
	lib := ph.in.Lib
	if ph.inbound {
		// Under buffered test routing the functional costs of control
		// sharing are per-node, not per-clique (the one-time segment on
		// the reused flip-flop's Q is checked by ffEligible); dimension
		// 1 is inert and dimension 2 carries post-bond drive capacity:
		// the wrapper must drive each member's TSV pillar.
		node.Load = 0
		node.Budget = math.Inf(1)
		node.Load2 = lib.TSVCapFF + lib.Of(netlist.GateMux2).InputCapFF
		node.Budget2 = ph.opts.CapThFF
		if ph.in.Placement != nil {
			pt := ph.in.Placement.Coords[ph.tsvSignals[item]]
			node.X, node.Y = pt.X, pt.Y
			node.X2, node.Y2 = pt.X, pt.Y
		}
		return
	}
	// Observation: the functional tap cost is per-node and checked at
	// item collection; the fold-XOR chain is a test-mode path policed by
	// d_th and drive capacity, so dimension 1 is inert here too.
	sig := ph.tsvSignals[item]
	xor := lib.Of(netlist.GateXor)
	node.Load = 0
	node.Budget = math.Inf(1)
	node.Load2 = lib.TSVCapFF + xor.InputCapFF
	node.Budget2 = ph.opts.CapThFF
	if ph.in.Placement != nil {
		pt := ph.in.Placement.Coords[sig]
		node.X, node.Y = pt.X, pt.Y
		node.X2, node.Y2 = pt.X, pt.Y
	}
}

// fillFFNode initializes load/budget/position for a flip-flop node.
func (ph *phaseRunner) fillFFNode(node *wcmgraph.Node, ff netlist.SignalID) {
	lib := ph.in.Lib
	node.Budget2 = ph.opts.CapThFF // post-bond drive capacity of the FF
	node.Load = 0
	node.Budget = math.Inf(1) // per-node functional costs checked by ffEligible
	_ = lib
	if ph.in.Placement != nil {
		pt := ph.in.Placement.Coords[ff]
		node.X, node.Y = pt.X, pt.Y
		node.X2, node.Y2 = pt.X, pt.Y
	}
}

// tapCostPS is the functional delay penalty a fold tap puts on the
// observed signal's driver: an XOR pin plus one repeater segment of wire.
func (ph *phaseRunner) tapCostPS(sig netlist.SignalID) float64 {
	if ph.opts.Timing != TimingCapWire {
		return 0 // the capacitance-only model cannot see it
	}
	lib := ph.in.Lib
	xor := lib.Of(netlist.GateXor)
	drive := lib.Of(ph.in.Netlist.TypeOf(sig)).DriveResKOhm
	return drive * (xor.InputCapFF + lib.DriverWireCapFF(lib.TestBufferDistUM))
}

// ffEligible applies the per-flip-flop functional checks of the accurate
// timing model: the control-side test run hangs one repeater segment plus
// a mux pin on Q (spending launch slack), and observe-side reuse inserts a
// mux on the D path (spending capture slack). Under the capacitance-only
// model flip-flops are always eligible — that blindness is what Table III
// punishes.
func (ph *phaseRunner) ffEligible(ff netlist.SignalID) bool {
	if ph.opts.Timing != TimingCapWire {
		return true
	}
	lib := ph.in.Lib
	if ph.inbound {
		r := lib.Of(netlist.GateDFF).DriveResKOhm
		deltaPS := r * (lib.DriverWireCapFF(lib.TestBufferDistUM) + lib.Of(netlist.GateMux2).InputCapFF)
		return deltaPS <= ph.opts.SlackSpendFrac*ph.in.Timing.SlackPS(ff)
	}
	d := ph.in.Netlist.Gate(ff).Fanin[0]
	mux := lib.Of(netlist.GateMux2)
	muxDelay := mux.IntrinsicPS + mux.DriveResKOhm*lib.Of(netlist.GateDFF).InputCapFF
	return muxDelay <= ph.in.Timing.SlackPS(d)-ph.opts.SlackThPS
}

// Edge verdicts recorded by the parallel sweep and replayed serially.
const (
	edgeNone uint8 = iota
	edgeClean
	edgeOverlap
)

// verdictPool recycles the O(items × nodes) verdict buffer across phases
// and runs — at a few MB per large die it is the single biggest transient
// allocation outside the bitsets.
var verdictPool sync.Pool

// getVerdicts returns an uninitialized buffer: the parallel sweep writes
// every slot before the serial replay reads any, so no zeroing pass is
// needed.
func getVerdicts(n int) []uint8 {
	if v, _ := verdictPool.Get().(*[]uint8); v != nil && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]uint8, n)
}

func putVerdicts(v []uint8) {
	v = v[:0]
	verdictPool.Put(&v)
}

// edgeVerdict evaluates one pair for the parallel sweep.
func (ph *phaseRunner) edgeVerdict(a, b int) uint8 {
	ok, overlap := ph.edgeAllowed(a, b)
	switch {
	case !ok:
		return edgeNone
	case overlap:
		return edgeOverlap
	default:
		return edgeClean
	}
}

// edgeAllowed evaluates Algorithm 1's edge conditions for two graph nodes.
// It performs only reads (graph nodes, precomputed cones, the netlist), so
// the edge sweep may call it from many workers at once.
func (ph *phaseRunner) edgeAllowed(a, b int) (ok, overlap bool) {
	na, nb := ph.graph.Node(a), ph.graph.Node(b)
	// Distance threshold: the merged clique's span must stay within d_th
	// so no member's test wiring runs farther than that.
	if !math.IsInf(ph.opts.DistThUM, 1) && ph.in.Placement != nil {
		if wcmgraph.BBoxUnionDiameter(na, nb) >= ph.opts.DistThUM {
			return false, false
		}
	}
	// The pair must be mergeable at all under the cost model, otherwise
	// the edge only wastes partitioning effort.
	if !ph.mergeFits(na, nb) {
		return false, false
	}
	// Cone conditions.
	if ph.nodeAnchor[a] == ph.nodeAnchor[b] {
		return false, false // identical signal: XOR folding would cancel
	}
	// Overlap means shared combinational logic; shared sources (a PI
	// feeding both cones, a flip-flop read by both) are independently
	// controllable and do not make sharing unsafe by themselves — the
	// precomputed masked cones have sources already stripped, and the
	// scan is bounded to the overlap of the two cones' word spans.
	lo, hi := maxI32(ph.nodeLo[a], ph.nodeLo[b]), minI32(ph.nodeHi[a], ph.nodeHi[b])
	ca := ph.nodeMasked[a]
	cb := ph.nodeMasked[b]
	if lo >= hi || !ca.IntersectsSpan(cb, int(lo), int(hi)) {
		return true, false
	}
	if !ph.opts.AllowOverlap {
		return false, false
	}
	shared := ca.IntersectCountSpan(cb, int(lo), int(hi))
	covLoss, patInc := ph.opts.Testability.SharePenalty(ph.in.Netlist, shared)
	if covLoss < ph.opts.CovThFrac && patInc < ph.opts.PatThCount {
		return true, true
	}
	return false, false
}

// coneOf returns the sharing-relevant cone of a (non-merged) graph node.
func (ph *phaseRunner) coneOf(id int) *netlist.BitSet {
	n := ph.in.Netlist
	node := ph.graph.Node(id)
	if node.HasFF {
		ff := netlist.SignalID(node.FF)
		if ph.inbound {
			return ph.cones.Fanout(ff)
		}
		return ph.cones.Fanin(n.Gate(ff).Fanin[0])
	}
	sig := ph.tsvSignals[node.Members[0]]
	if ph.inbound {
		return ph.cones.Fanout(sig)
	}
	return ph.cones.Fanin(sig)
}

// anchor returns the signal a node anchors on. Two nodes can share an
// anchor on the outbound side, when a flip-flop's D driver also feeds a
// TSV port; such pairs never get an edge.
func (ph *phaseRunner) anchor(id int) netlist.SignalID {
	node := ph.graph.Node(id)
	if node.HasFF {
		if ph.inbound {
			return netlist.SignalID(node.FF)
		}
		return ph.in.Netlist.Gate(netlist.SignalID(node.FF)).Fanin[0]
	}
	return ph.tsvSignals[node.Members[0]]
}

// partition runs paper Algorithm 2: repeatedly take the minimum-degree
// node and its minimum-degree neighbor; merge them when the combined cost
// fits the budget, otherwise delete the edge; stop when no edges remain.
func (ph *phaseRunner) partition(stats *PhaseStats) error {
	g := ph.graph
	for {
		var n1, n2 int
		var ok bool
		if ph.opts.Merge == MergeFirstEdge {
			n1, n2, ok = g.FirstEdgePair()
		} else {
			n1, n2, ok = g.MinDegreePair()
		}
		if !ok {
			return nil
		}
		a, b := g.Node(n1), g.Node(n2)
		if ph.mergeFits(a, b) {
			// The accumulated load carries the additive parts (stage
			// delays, pin caps); the bbox wire term is recomputed at
			// every check from the merged geometry, so it is charged to
			// the control-side cap accumulation only.
			mergedLoad := a.Load + b.Load
			if ph.inbound {
				mergedLoad += ph.wireTerm(a, b)
			}
			if _, err := g.Merge(n1, n2, mergedLoad); err != nil {
				return err
			}
			stats.Merges++
		} else {
			g.DeleteEdge(n1, n2)
			stats.EdgeDeletes++
		}
	}
}

// mergeFits applies the merge test of Algorithm 2 ("cap + 1 < cap_th") in
// both cost dimensions: wire-aware load against the timing budget, and
// post-bond drive capacity against the library bound. Under the
// capacitance-only model the wire-aware dimension is inert (its loads
// carry no wire terms and its budgets are the same cap_th).
//
// The wire term is charged conservatively from the merged clique's
// bounding box: on the observe side the box diameter bounds the route any
// member's signal needs to reach the shared capture cell; on the control
// side each member's run is repeater-bounded, so the cost is per-merge
// capacitance.
func (ph *phaseRunner) mergeFits(a, b *wcmgraph.Node) bool {
	if a.Load+b.Load+ph.wireTerm(a, b) >= minF(a.Budget, b.Budget) {
		return false
	}
	return a.Load2+b.Load2 < minF(a.Budget2, b.Budget2)
}

// wireTerm is the dimension-1 wire cost of merging a and b.
func (ph *phaseRunner) wireTerm(a, b *wcmgraph.Node) float64 {
	if ph.opts.Timing != TimingCapWire || ph.in.Placement == nil {
		return 0
	}
	// Buffered test routing on both sides: the shared wrapper's load
	// does not grow with clique span (control), and the fold chain is a
	// relaxed-clock test path (observe). Span is policed by d_th, drive
	// by the capacity dimension.
	return 0
}

// emitGroup appends one clique to the plan.
func (ph *phaseRunner) emitGroup(asn *scan.Assignment, ff netlist.SignalID, members []int32) {
	if ph.inbound {
		grp := scan.ControlGroup{ReusedFF: ff}
		for _, m := range members {
			grp.TSVs = append(grp.TSVs, ph.tsvSignals[m])
		}
		asn.Control = append(asn.Control, grp)
		return
	}
	grp := scan.ObserveGroup{ReusedFF: ff}
	for _, m := range members {
		grp.Ports = append(grp.Ports, ph.tsvPorts[m])
	}
	asn.Observe = append(asn.Observe, grp)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func minI32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
