package service

import (
	"container/list"
	"context"
	"sync"

	"wcm3d"
)

// DieKey identifies a prepared die in the cache: the profile name (or a
// content hash for inline netlists) plus the generation seed.
type DieKey struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`
}

// dieCache is an LRU cache of prepared dies with single-flight
// deduplication: concurrent requests for the same key trigger exactly one
// preparation, with latecomers parking on the in-flight entry. Preparation
// failures are not cached — the entry is removed so a later request
// retries.
//
// Preparations run on a context detached from any single requester, so
// cancelling one job cannot poison the others parked on the same entry.
// Each entry refcounts its interested jobs; only when the last one walks
// away is the in-flight preparation aborted and the entry dropped.
type dieCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[DieKey]*list.Element
	order    *list.List // front = most recently used
	metrics  *Metrics
}

type cacheEntry struct {
	key     DieKey
	ready   chan struct{} // closed once die/err are set
	die     *wcm3d.Die
	err     error
	waiters int                // jobs currently parked on this entry (guarded by cache mu)
	abort   context.CancelFunc // cancels the detached preparation context
}

func newDieCache(capacity int, m *Metrics) *dieCache {
	return &dieCache{
		capacity: capacity,
		entries:  make(map[DieKey]*list.Element),
		order:    list.New(),
		metrics:  m,
	}
}

// get returns the cached die for key, preparing it with prepare on a miss.
// A waiter whose ctx is cancelled stops waiting with ctx's error; the
// preparation itself keeps running for whoever else wants the entry, and is
// aborted only when every interested job has gone away.
func (c *dieCache) get(ctx context.Context, key DieKey, prepare func(context.Context) (*wcm3d.Die, error)) (*wcm3d.Die, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.waiters++
		c.metrics.CacheHits.Add(1)
		c.mu.Unlock()
		return c.wait(ctx, key, el, e)
	}
	c.metrics.CacheMisses.Add(1)
	prepCtx, abort := context.WithCancel(context.Background())
	e := &cacheEntry{key: key, ready: make(chan struct{}), waiters: 1, abort: abort}
	el := c.order.PushFront(e)
	c.entries[key] = el
	c.evictLocked()
	c.mu.Unlock()

	go func() {
		die, err := prepare(prepCtx)
		c.mu.Lock()
		e.die, e.err = die, err
		close(e.ready)
		if err != nil {
			if cur, ok := c.entries[key]; ok && cur == el {
				c.order.Remove(el)
				delete(c.entries, key)
			}
		}
		c.mu.Unlock()
		abort() // release the context; the result is already recorded
	}()
	return c.wait(ctx, key, el, e)
}

// wait parks one job on an entry until the preparation completes or the
// job's own ctx ends. The last job to abandon a still-in-flight entry
// aborts the preparation and drops the entry so a later request starts
// fresh.
func (c *dieCache) wait(ctx context.Context, key DieKey, el *list.Element, e *cacheEntry) (*wcm3d.Die, error) {
	select {
	case <-e.ready:
		c.mu.Lock()
		e.waiters--
		c.mu.Unlock()
		return e.die, e.err
	case <-ctx.Done():
		c.mu.Lock()
		e.waiters--
		if e.waiters == 0 {
			select {
			case <-e.ready:
				// Completed between the cancel and the lock; keep it cached.
			default:
				// Nobody is left to consume the result: abort the
				// preparation and drop the entry.
				e.abort()
				if cur, ok := c.entries[key]; ok && cur == el {
					c.order.Remove(el)
					delete(c.entries, key)
					c.metrics.CacheAborts.Add(1)
				}
			}
		}
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// peek returns the cached die for key without preparing on a miss: the
// replan path needs the die a finished job was planned against, and
// silently re-preparing it would turn a millisecond replan into a
// multi-second prepare. A hit refreshes the entry's LRU position (a job
// being replanned is in active use). In-flight and failed entries report
// a miss.
func (c *dieCache) peek(key DieKey) (*wcm3d.Die, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	select {
	case <-e.ready:
	default:
		return nil, false
	}
	if e.err != nil {
		return nil, false
	}
	c.order.MoveToFront(el)
	return e.die, true
}

// evictLocked drops least-recently-used *completed* entries until the cache
// fits its capacity. In-flight entries are never evicted (their waiters
// hold them); if everything is in flight the cache temporarily overshoots.
func (c *dieCache) evictLocked() {
	for c.order.Len() > c.capacity {
		var victim *list.Element
		for el := c.order.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*cacheEntry)
			select {
			case <-e.ready:
				victim = el
			default:
				continue
			}
			break
		}
		if victim == nil {
			return
		}
		e := victim.Value.(*cacheEntry)
		c.order.Remove(victim)
		delete(c.entries, e.key)
		c.metrics.CacheEvictions.Add(1)
	}
}

// len reports the number of entries (including in-flight ones).
func (c *dieCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// snapshot lists the successfully prepared dies, most recently used first.
func (c *dieCache) snapshot() []DieInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]DieInfo, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		select {
		case <-e.ready:
			if e.err == nil {
				out = append(out, DescribeDie(e.key.Name, e.key.Seed, e.die))
			}
		default:
		}
	}
	return out
}
