package service

// Tests for the durability and cluster seams: journal write-path
// semantics, crash recovery via Recover, the jobs-list cursor, the
// abandoned-jobs drain contract, and the steal/complete/reclaim
// lifecycle — all against an in-memory fake journal so they need no
// real WAL on disk.

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// memJournal is an in-memory service.Journal recording every call.
type memJournal struct {
	mu         sync.Mutex
	events     []string
	failSubmit bool
}

func (m *memJournal) record(ev string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events = append(m.events, ev)
}

func (m *memJournal) Submit(id string, req JobRequest) error {
	if m.failSubmit {
		return errors.New("disk full")
	}
	m.record("submit " + id)
	return nil
}
func (m *memJournal) Start(id string) error { m.record("start " + id); return nil }
func (m *memJournal) Finish(id string, state, errMsg string, result *Report) error {
	m.record("finish " + id + " " + state)
	return nil
}
func (m *memJournal) Cancel(id string) error { m.record("cancel " + id); return nil }

func (m *memJournal) has(ev string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.events {
		if e == ev {
			return true
		}
	}
	return false
}

func (m *memJournal) countPrefix(prefix string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, e := range m.events {
		if strings.HasPrefix(e, prefix) {
			n++
		}
	}
	return n
}

func TestJournalRecordsLifecycle(t *testing.T) {
	jn := &memJournal{}
	cfg := hookConfig(t, 2, 8, nil)
	cfg.Journal = jn
	_, ts := newTestServer(t, cfg)

	code, st, _ := postJob(t, ts, `{"profile":"b11/0","seed":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	fin := waitJob(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("job ended %q", fin.State)
	}
	for _, ev := range []string{"submit " + st.ID, "start " + st.ID, "finish " + st.ID + " done"} {
		if !jn.has(ev) {
			t.Fatalf("journal missing %q; events: %v", ev, jn.events)
		}
	}
}

func TestJournalFailureRefusesSubmission(t *testing.T) {
	jn := &memJournal{failSubmit: true}
	cfg := hookConfig(t, 1, 4, nil)
	cfg.Journal = jn
	svc, ts := newTestServer(t, cfg)

	code, _, raw := postJob(t, ts, `{"profile":"b11/0","seed":1}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("unjournalable submission got %d (%s), want 500", code, raw)
	}
	if n := len(svc.Jobs()); n != 0 {
		t.Fatalf("refused job left in table: %d entries", n)
	}
	if got := svc.Metrics().WALErrors.Load(); got == 0 {
		t.Fatal("WALErrors not bumped")
	}
}

func TestRecoverRestoresAndRequeues(t *testing.T) {
	jn := &memJournal{}
	cfg := hookConfig(t, 2, 8, nil)
	cfg.Journal = jn
	svc, ts := newTestServer(t, cfg)

	done := time.Now().Add(-time.Minute)
	rec := Recovery{
		MaxSeq: 9,
		Jobs: []RecoveredJob{
			{ID: "j-000003", Req: JobRequest{Profile: "b11/0", Seed: 1}, State: StateDone,
				Result: &Report{}, SubmittedAt: done.Add(-time.Second), FinishedAt: done},
			{ID: "j-000005", Req: JobRequest{Profile: "b11/0", Seed: 1}},
			{ID: "j-000007", Req: JobRequest{Profile: "b11/0", Seed: 1}, Orphaned: true},
		},
	}
	requeued, restored, err := svc.Recover(rec)
	if err != nil || requeued != 2 || restored != 1 {
		t.Fatalf("Recover = (%d, %d, %v), want (2, 1, nil)", requeued, restored, err)
	}

	// The finished job is queryable with its old outcome, not re-run.
	if st, ok := svc.Job("j-000003"); !ok || st.State != StateDone || st.Result == nil {
		t.Fatalf("restored job: %+v ok=%v", st, ok)
	}
	// Pending and orphaned jobs re-run to completion under their old ids.
	for _, id := range []string{"j-000005", "j-000007"} {
		if st := waitJob(t, ts, id); st.State != StateDone {
			t.Fatalf("recovered job %s ended %q", id, st.State)
		}
	}
	if got := svc.Metrics().JobsRecovered.Load(); got != 3 {
		t.Fatalf("JobsRecovered = %d, want 3", got)
	}
	// New submissions must not collide with any recovered or compacted id:
	// the next id comes after the MaxSeq=9 watermark.
	_, st, _ := postJob(t, ts, `{"profile":"b11/0","seed":1}`)
	if st.ID != "j-000010" {
		t.Fatalf("post-recovery id %q, want j-000010", st.ID)
	}
}

func TestShutdownAbandonsJobsForReplay(t *testing.T) {
	jn := &memJournal{}
	block := make(chan struct{})
	var once sync.Once
	cfg := hookConfig(t, 1, 8, func(ctx context.Context, spec DieSpec) error {
		select { // first job wedges the single worker; the rest stay queued
		case <-block:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	cfg.Journal = jn
	svc := New(cfg)
	defer once.Do(func() { close(block) })

	var ids []string
	for i := 0; i < 3; i++ {
		st, err := svc.Submit(JobRequest{Profile: "b11/0", Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	rep, _ := svc.Shutdown(ctx)
	if len(rep.Abandoned) != 3 {
		t.Fatalf("Abandoned = %v, want all of %v", rep.Abandoned, ids)
	}
	// The drain contract: abandoned jobs are reported canceled to clients
	// but their terminal transition never reaches the journal, so a WAL
	// replays them as pending on the next boot.
	for _, id := range ids {
		if jn.countPrefix("finish "+id) != 0 || jn.countPrefix("cancel "+id) != 0 {
			t.Fatalf("abandoned job %s was finalized in the journal: %v", id, jn.events)
		}
		if !jn.has("submit " + id) {
			t.Fatalf("job %s missing its submit record", id)
		}
	}
}

func TestJobsCursorPagination(t *testing.T) {
	cfg := hookConfig(t, 2, 16, nil)
	_, ts := newTestServer(t, cfg)
	var ids []string
	for i := 0; i < 7; i++ {
		_, st, _ := postJob(t, ts, `{"profile":"b11/0","seed":1}`)
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitJob(t, ts, id)
	}

	type page struct {
		Jobs []JobStatus `json:"jobs"`
		Next string      `json:"next"`
	}
	// Walk the whole listing two at a time from the "0" bootstrap cursor.
	var walked []string
	cursor := "0"
	for i := 0; i < 10; i++ {
		var p page
		if code := getJSON(t, ts, "/v1/jobs?limit=2&cursor="+cursor, &p); code != http.StatusOK {
			t.Fatalf("page %d: status %d", i, code)
		}
		if len(p.Jobs) == 0 {
			// Drained: the empty page echoes the cursor back for tailing.
			if p.Next != cursor {
				t.Fatalf("empty page rewrote cursor: %q -> %q", cursor, p.Next)
			}
			break
		}
		if len(p.Jobs) > 2 {
			t.Fatalf("page over limit: %d jobs", len(p.Jobs))
		}
		for _, j := range p.Jobs {
			walked = append(walked, j.ID)
		}
		if p.Next == "" {
			t.Fatal("non-empty page without next cursor")
		}
		cursor = p.Next
	}
	if fmt.Sprint(walked) != fmt.Sprint(ids) {
		t.Fatalf("cursor walk %v != submissions %v", walked, ids)
	}

	// A state filter composes with the cursor.
	var p page
	if code := getJSON(t, ts, "/v1/jobs?cursor=0&state=done", &p); code != http.StatusOK || len(p.Jobs) != 7 {
		t.Fatalf("state filter via cursor: code %d, %d jobs", code, len(p.Jobs))
	}
	// Malformed cursors are a client error, not a panic or a full listing.
	if code := getJSON(t, ts, "/v1/jobs?cursor=%21%21not-base64", nil); code != http.StatusBadRequest {
		t.Fatalf("malformed cursor: status %d, want 400", code)
	}
	bogus := base64.RawURLEncoding.EncodeToString([]byte("v2:whatever"))
	if code := getJSON(t, ts, "/v1/jobs?cursor="+bogus, nil); code != http.StatusBadRequest {
		t.Fatalf("wrong-version cursor: status %d, want 400", code)
	}
	// Legacy mode (no cursor) now carries a resume point too.
	if code := getJSON(t, ts, "/v1/jobs?limit=3", &p); code != http.StatusOK {
		t.Fatalf("legacy list: %d", code)
	}
	if len(p.Jobs) != 3 || p.Jobs[0].ID != ids[4] {
		t.Fatalf("legacy limit semantics changed: got %d jobs starting %s", len(p.Jobs), p.Jobs[0].ID)
	}
	if p.Next == "" {
		t.Fatal("legacy list missing next cursor")
	}
}

func TestStealCompleteReclaim(t *testing.T) {
	jn := &memJournal{}
	block := make(chan struct{})
	var unblock sync.Once
	cfg := hookConfig(t, 1, 8, func(ctx context.Context, spec DieSpec) error {
		select {
		case <-block:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	cfg.Journal = jn
	svc, ts := newTestServer(t, cfg)
	defer unblock.Do(func() { close(block) })

	// One job wedges the worker, three more queue up behind it.
	var ids []string
	for i := 0; i < 4; i++ {
		st, err := svc.Submit(JobRequest{Profile: "b11/0", Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	waitState := func(id, state string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if st, _ := svc.Job(id); st.State == state {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		st, _ := svc.Job(id)
		t.Fatalf("job %s stuck in %q, want %q", id, st.State, state)
	}
	waitState(ids[0], StateRunning)

	stolen := svc.StealQueued(2, "thief-a")
	if len(stolen) != 2 || stolen[0].ID != ids[1] || stolen[1].ID != ids[2] {
		t.Fatalf("stole %+v, want the two oldest queued (%s, %s)", stolen, ids[1], ids[2])
	}
	if st, _ := svc.Job(ids[1]); st.State != StateRunning {
		t.Fatalf("stolen job state %q, want running", st.State)
	}
	// The handout is journaled so a crash replays it as orphaned.
	if !jn.has("start " + ids[1]) {
		t.Fatalf("steal of %s not journaled: %v", ids[1], jn.events)
	}
	if svc.QueueDepth() != 1 {
		t.Fatalf("QueueDepth = %d, want 1 (one job left queued)", svc.QueueDepth())
	}

	// Thief reports ids[1] done; a duplicate or late report is dropped.
	if !svc.CompleteStolen(ids[1], StateDone, "", &Report{}) {
		t.Fatal("first completion not applied")
	}
	if svc.CompleteStolen(ids[1], StateFailed, "late dup", nil) {
		t.Fatal("duplicate completion applied over a terminal state")
	}
	if st, _ := svc.Job(ids[1]); st.State != StateDone || st.Result == nil {
		t.Fatalf("completed stolen job: %+v", st)
	}
	if !jn.has("finish " + ids[1] + " done") {
		t.Fatalf("stolen completion not journaled: %v", jn.events)
	}

	// The thief dies holding ids[2]: reclaim re-queues it locally, and it
	// finishes once the worker frees up.
	if n := svc.ReclaimStolen("thief-a"); n != 1 {
		t.Fatalf("reclaimed %d, want 1", n)
	}
	waitState(ids[2], StateQueued)
	unblock.Do(func() { close(block) }) // free the wedged worker
	if st := waitJob(t, ts, ids[2]); st.State != StateDone {
		t.Fatalf("reclaimed job ended %q", st.State)
	}
	if got := svc.Metrics().JobsStolen.Load(); got != 2 {
		t.Fatalf("JobsStolen = %d, want 2", got)
	}
	if got := svc.Metrics().JobsReclaimed.Load(); got != 1 {
		t.Fatalf("JobsReclaimed = %d, want 1", got)
	}
}

func TestRunStolenSkipsJournalAndNotifies(t *testing.T) {
	jn := &memJournal{}
	cfg := hookConfig(t, 2, 8, nil)
	cfg.Journal = jn
	svc, _ := newTestServer(t, cfg)

	got := make(chan JobStatus, 1)
	st, err := svc.RunStolen(JobRequest{Profile: "b11/0", Seed: 1}, func(s JobStatus) { got <- s })
	if err != nil {
		t.Fatal(err)
	}
	select {
	case fin := <-got:
		if fin.State != StateDone || fin.ID != st.ID {
			t.Fatalf("completion callback got %+v", fin)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("completion callback never fired")
	}
	// A remote-origin job belongs to the victim's WAL, not ours.
	if jn.countPrefix("submit "+st.ID) != 0 || jn.countPrefix("finish "+st.ID) != 0 {
		t.Fatalf("remote-origin job leaked into the local journal: %v", jn.events)
	}
}

// fakeCluster is a canned ClusterView for exercising the HTTP layer
// without real peers.
type fakeCluster struct {
	selfID   string
	ownerURL string
	self     bool
}

func (f *fakeCluster) Route(name string, seed int64) (string, bool) { return f.ownerURL, f.self }
func (f *fakeCluster) Info() ClusterInfo {
	return ClusterInfo{
		Self: f.selfID,
		Peers: []PeerInfo{
			{ID: f.selfID, Self: true, Alive: true},
			{ID: "n2", URL: f.ownerURL, Alive: true},
		},
		ShardTokens: map[string]int{f.selfID: 64, "n2": 64},
	}
}

func TestClusterHTTPSurface(t *testing.T) {
	fc := &fakeCluster{selfID: "n1", ownerURL: "http://peer.example:9", self: false}
	cfg := hookConfig(t, 1, 4, nil)
	svc := New(cfg)
	svc.AttachCluster(fc)
	ts := newClusterTestServer(t, svc)

	// Submissions for a die key owned elsewhere are 307-redirected with
	// the method-preserving Location of the owner.
	noRedirect := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := noRedirect.Post(ts.URL+"/v1/jobs?verify=1", "application/json",
		strings.NewReader(`{"profile":"b11/0","seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("non-owned submission: %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "http://peer.example:9/v1/jobs?verify=1" {
		t.Fatalf("Location = %q", loc)
	}
	// An invalid request fails validation locally instead of bouncing
	// around the cluster.
	resp, err = noRedirect.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid request: %d, want 400", resp.StatusCode)
	}

	// Owned keys are served locally.
	fc.self = true
	code, st, _ := postJob(t, ts, `{"profile":"b11/0","seed":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("owned submission: %d", code)
	}
	waitJob(t, ts, st.ID)

	// The cluster endpoints exist and healthz carries the membership view.
	var info ClusterInfo
	if code := getJSON(t, ts, "/v1/cluster", &info); code != http.StatusOK || info.Self != "n1" {
		t.Fatalf("GET /v1/cluster: %d %+v", code, info)
	}
	if len(info.ShardTokens) != 2 {
		t.Fatalf("shard map: %+v", info.ShardTokens)
	}
	var hz struct {
		Status  string `json:"status"`
		Cluster *struct {
			Self  string `json:"self"`
			Alive int    `json:"alive"`
			Total int    `json:"total"`
		} `json:"cluster"`
	}
	if code := getJSON(t, ts, "/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if hz.Cluster == nil || hz.Cluster.Self != "n1" || hz.Cluster.Alive != 2 || hz.Cluster.Total != 2 {
		t.Fatalf("healthz cluster view: %+v", hz.Cluster)
	}
}

// newClusterTestServer mirrors newTestServer for a pre-built Service (the
// cluster view must attach before Handler is called).
func newClusterTestServer(t *testing.T, svc *Service) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, _ = svc.Shutdown(ctx)
		ts.Close()
	})
	return ts
}
