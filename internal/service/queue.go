package service

import (
	"context"
	"errors"
	"sync"
)

// Submission errors.
var (
	// ErrQueueFull reports backpressure: the bounded queue has no room.
	// The HTTP layer maps it to 429 Too Many Requests.
	ErrQueueFull = errors.New("service: job queue is full")
	// ErrShuttingDown reports a submission after Shutdown began. The HTTP
	// layer maps it to 503 Service Unavailable.
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrScheduleBusy reports schedule-admission backpressure: every
	// schedule slot is occupied. The HTTP layer maps it to 429 Too Many
	// Requests with Retry-After.
	ErrScheduleBusy = errors.New("service: all schedule slots are busy")
)

// pool is a bounded job queue drained by a fixed set of workers — the
// long-lived generalization of the ad-hoc fan-out in
// internal/experiments/parallel.go. Submission is non-blocking: when the
// queue is full the caller gets ErrQueueFull immediately (backpressure)
// instead of waiting. Every task receives a context derived from the
// pool's base context, which is cancelled when a shutdown deadline
// expires, so in-flight work can bail between stages.
type pool struct {
	mu     sync.Mutex
	closed bool
	queue  chan func(context.Context)
	wg     sync.WaitGroup
	base   context.Context
	cancel context.CancelFunc
}

func newPool(workers, depth int) *pool {
	base, cancel := context.WithCancel(context.Background())
	p := &pool{
		queue:  make(chan func(context.Context), depth),
		base:   base,
		cancel: cancel,
	}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.queue {
				fn(p.base)
			}
		}()
	}
	return p
}

// trySubmit enqueues fn without blocking.
func (p *pool) trySubmit(fn func(context.Context)) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrShuttingDown
	}
	select {
	case p.queue <- fn:
		return nil
	default:
		return ErrQueueFull
	}
}

// depth reports the number of queued-but-not-started tasks.
func (p *pool) depth() int { return len(p.queue) }

// shutdown stops accepting work and drains already-accepted tasks. If ctx
// expires first, the pool's base context is cancelled so in-flight tasks
// abort at their next stage boundary; shutdown still waits for the workers
// to hand back control before returning ctx's error.
func (p *pool) shutdown(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		p.cancel()
		return nil
	case <-ctx.Done():
		p.cancel()
		<-done
		return ctx.Err()
	}
}
