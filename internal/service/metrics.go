package service

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Metrics holds the daemon's expvar-style counters and per-stage latency
// histograms. All fields are safe for concurrent use; Snapshot produces the
// JSON document served at GET /metrics.
type Metrics struct {
	// Monotonic job counters. Queued counts every accepted submission;
	// Rejected counts submissions bounced by backpressure (HTTP 429).
	JobsQueued   atomic.Int64
	JobsDone     atomic.Int64
	JobsFailed   atomic.Int64
	JobsCanceled atomic.Int64
	JobsRejected atomic.Int64
	// JobsRunning is a gauge of jobs currently executing.
	JobsRunning atomic.Int64
	// JobsPruned counts finished jobs dropped by the retention policy
	// (TTL expiry or the finished-entries cap).
	JobsPruned atomic.Int64
	// JobsRecovered counts jobs reconstructed from the write-ahead log at
	// boot (re-queued pending/orphaned jobs plus restored finished ones).
	JobsRecovered atomic.Int64
	// JobsStolen counts queued jobs handed to stealing peers;
	// JobsReclaimed counts stolen jobs re-queued locally after their
	// thief was declared dead.
	JobsStolen    atomic.Int64
	JobsReclaimed atomic.Int64
	// WALErrors counts non-fatal journal write failures (start/finish
	// records); submission-path journal failures refuse the job instead.
	WALErrors atomic.Int64

	// Schedule counters: synchronous POST /v1/schedules outcomes. Rejected
	// counts runs bounced by the admission semaphore (HTTP 429).
	SchedulesDone     atomic.Int64
	SchedulesFailed   atomic.Int64
	SchedulesRejected atomic.Int64

	// Batch counters: POST /v1/batches outcomes. BatchesActive is a gauge
	// of batches currently streaming through the engine; Rejected counts
	// submissions bounced by queue backpressure (HTTP 429). BatchDies is
	// a histogram of per-batch die counts — its buckets are counts, not
	// milliseconds — answering "how big are the sweeps people run".
	BatchesActive   atomic.Int64
	BatchesDone     atomic.Int64
	BatchesFailed   atomic.Int64
	BatchesCanceled atomic.Int64
	BatchesRejected atomic.Int64
	BatchDies       Histogram

	// Replan counters: POST /v1/jobs/{id}/replan outcomes. Done counts
	// applied deltas, Failed counts rejected or failed ones (bad faults,
	// exhausted spares, evicted dies), Recovered counts deltas replayed
	// from the write-ahead log at boot.
	ReplansDone      atomic.Int64
	ReplansFailed    atomic.Int64
	ReplansRecovered atomic.Int64

	// VerifyFailures counts jobs whose independent verification found
	// violations — each one is an optimizer/verifier disagreement worth an
	// operator's attention, even though the job itself still succeeds.
	VerifyFailures atomic.Int64

	// RefineImproved counts refine=true jobs where the solver portfolio
	// found a verified plan strictly better than the greedy heuristic's;
	// RefineCellsSaved accumulates the wrapper cells those improvements
	// removed. Together they answer "is the refinement budget paying for
	// itself" straight from /metrics. RefineSkipped counts refine=true
	// jobs that reached the stage with less than MinRefineBudget of wall
	// clock remaining and skipped the portfolio entirely — a rising count
	// means job timeouts are too tight to ever fund refinement.
	RefineImproved   atomic.Int64
	RefineCellsSaved atomic.Int64
	RefineSkipped    atomic.Int64

	// Die-cache counters. A hit is any request served by an existing entry
	// (including one still being prepared — the single-flight path); a
	// miss is a request that triggered a preparation. An abort is an
	// in-flight preparation cancelled because every interested job went
	// away before it finished.
	CacheHits      atomic.Int64
	CacheMisses    atomic.Int64
	CacheEvictions atomic.Int64
	CacheAborts    atomic.Int64

	stages   [numStages]Histogram
	outcomes [numStages][numOutcomes]atomic.Int64
}

// Stage outcomes: how a timed stage ended. Every stage execution is
// recorded under exactly one outcome, so failed and cancelled runs show up
// in /metrics latency instead of silently vanishing.
const (
	outcomeOK = iota
	outcomeFailed
	outcomeCanceled
	numOutcomes
)

// Stage labels one timed phase of a job's execution.
type Stage int

// The instrumented stages, in execution order.
const (
	StagePrepare  Stage = iota // die generation + placement + timing
	StageMinimize              // the WCM solver
	StageRefine                // solver-portfolio refinement (refine=true)
	StageSignoff               // functional-mode timing check
	StageATPG                  // stuck-at evaluation + chain build
	StageVerify                // independent plan verification (verify=true)
	StageTotal                 // whole job, submit-to-finish
	StageSchedule              // whole stack scheduling run (/v1/schedules)
	StageBatch                 // whole batch-engine run (/v1/batches)
	StageReplan                // incremental TSV-repair replan (/v1/jobs/{id}/replan)
	numStages
)

func (s Stage) String() string {
	switch s {
	case StagePrepare:
		return "prepare"
	case StageMinimize:
		return "minimize"
	case StageRefine:
		return "refine"
	case StageSignoff:
		return "signoff"
	case StageATPG:
		return "atpg"
	case StageVerify:
		return "verify"
	case StageTotal:
		return "total"
	case StageSchedule:
		return "schedule"
	case StageBatch:
		return "batch"
	case StageReplan:
		return "replan"
	default:
		return "unknown"
	}
}

// Observe records a successful stage latency.
func (m *Metrics) Observe(s Stage, d time.Duration) {
	m.ObserveOutcome(s, d, nil)
}

// ObserveOutcome records a stage latency together with how the stage
// ended: ok (err == nil), canceled (a context error), or failed.
func (m *Metrics) ObserveOutcome(s Stage, d time.Duration, err error) {
	if s < 0 || s >= numStages {
		return
	}
	m.stages[s].Observe(d)
	switch {
	case err == nil:
		m.outcomes[s][outcomeOK].Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		m.outcomes[s][outcomeCanceled].Add(1)
	default:
		m.outcomes[s][outcomeFailed].Add(1)
	}
}

// latencyBucketsMS are the histogram upper bounds, in milliseconds; a final
// implicit +Inf bucket catches the rest.
var latencyBucketsMS = [...]float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}

// Histogram is a fixed-bucket latency histogram with atomic counters.
type Histogram struct {
	counts [len(latencyBucketsMS) + 1]atomic.Int64
	count  atomic.Int64
	sumUS  atomic.Int64
}

// ObserveCount records a unitless count (a batch's die total) by mapping
// it onto the bucket bounds one-for-one: a bucket's le_ms reads as
// "batches with at most this many dies".
func (h *Histogram) ObserveCount(n int) { h.Observe(time.Duration(n) * time.Millisecond) }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMS) && ms > latencyBucketsMS[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumUS.Add(d.Microseconds())
}

// HistogramSnapshot is the JSON form of one histogram. For stage
// histograms the outcome counters split Count by how each run ended.
type HistogramSnapshot struct {
	Count    int64            `json:"count"`
	SumMS    float64          `json:"sum_ms"`
	OK       int64            `json:"ok"`
	Failed   int64            `json:"failed"`
	Canceled int64            `json:"canceled"`
	Buckets  []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket; LeMS <= 0 marks the
// overflow (+Inf) bucket.
type BucketSnapshot struct {
	LeMS  float64 `json:"le_ms"`
	Count int64   `json:"count"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		SumMS: float64(h.sumUS.Load()) / 1000,
	}
	if s.Count == 0 {
		return s
	}
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		b := BucketSnapshot{Count: cum}
		if i < len(latencyBucketsMS) {
			b.LeMS = latencyBucketsMS[i]
		} else {
			b.LeMS = -1 // +Inf
		}
		s.Buckets = append(s.Buckets, b)
	}
	return s
}

// MetricsSnapshot is the document served at GET /metrics.
type MetricsSnapshot struct {
	Jobs struct {
		Queued   int64 `json:"queued"`
		Running  int64 `json:"running"`
		Done     int64 `json:"done"`
		Failed   int64 `json:"failed"`
		Canceled int64 `json:"canceled"`
		Rejected int64 `json:"rejected"`
		// Retained is a gauge of jobs currently held in the job table;
		// Pruned counts jobs dropped by the retention policy.
		Retained int   `json:"retained"`
		Pruned   int64 `json:"pruned"`
		// Recovered counts jobs replayed from the WAL at boot; Stolen and
		// Reclaimed count cluster work-stealing traffic (jobs handed out,
		// jobs taken back from dead thieves).
		Recovered int64 `json:"recovered"`
		Stolen    int64 `json:"stolen"`
		Reclaimed int64 `json:"reclaimed"`
	} `json:"jobs"`
	WAL struct {
		// Errors counts non-fatal journal write failures.
		Errors int64 `json:"errors"`
	} `json:"wal"`
	Cache struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Evictions int64 `json:"evictions"`
		Aborts    int64 `json:"aborts"`
		Entries   int   `json:"entries"`
		Capacity  int   `json:"capacity"`
	} `json:"cache"`
	Queue struct {
		Depth    int `json:"depth"`
		Capacity int `json:"capacity"`
		Workers  int `json:"workers"`
	} `json:"queue"`
	Schedules struct {
		Done     int64 `json:"done"`
		Failed   int64 `json:"failed"`
		Rejected int64 `json:"rejected"`
	} `json:"schedules"`
	Batches struct {
		// Active is a gauge of batches currently streaming through the
		// engine (the `batches.active` signal).
		Active   int64 `json:"active"`
		Done     int64 `json:"done"`
		Failed   int64 `json:"failed"`
		Canceled int64 `json:"canceled"`
		Rejected int64 `json:"rejected"`
		// Dies is the per-batch die-count histogram (`batch.dies`): bucket
		// bounds are die counts, not milliseconds.
		Dies HistogramSnapshot `json:"dies"`
	} `json:"batches"`
	Replan struct {
		Done      int64 `json:"done"`
		Failed    int64 `json:"failed"`
		Recovered int64 `json:"recovered"`
	} `json:"replan"`
	Verify struct {
		Failures int64 `json:"failures"`
	} `json:"verify"`
	Refine struct {
		Improved   int64 `json:"improved"`
		CellsSaved int64 `json:"cells_saved"`
		Skipped    int64 `json:"skipped"`
	} `json:"refine"`
	LatencyMS map[string]HistogramSnapshot `json:"latency_ms"`
}

func (m *Metrics) snapshot() MetricsSnapshot {
	var s MetricsSnapshot
	s.Jobs.Queued = m.JobsQueued.Load()
	s.Jobs.Running = m.JobsRunning.Load()
	s.Jobs.Done = m.JobsDone.Load()
	s.Jobs.Failed = m.JobsFailed.Load()
	s.Jobs.Canceled = m.JobsCanceled.Load()
	s.Jobs.Rejected = m.JobsRejected.Load()
	s.Jobs.Pruned = m.JobsPruned.Load()
	s.Jobs.Recovered = m.JobsRecovered.Load()
	s.Jobs.Stolen = m.JobsStolen.Load()
	s.Jobs.Reclaimed = m.JobsReclaimed.Load()
	s.WAL.Errors = m.WALErrors.Load()
	s.Schedules.Done = m.SchedulesDone.Load()
	s.Schedules.Failed = m.SchedulesFailed.Load()
	s.Schedules.Rejected = m.SchedulesRejected.Load()
	s.Batches.Active = m.BatchesActive.Load()
	s.Batches.Done = m.BatchesDone.Load()
	s.Batches.Failed = m.BatchesFailed.Load()
	s.Batches.Canceled = m.BatchesCanceled.Load()
	s.Batches.Rejected = m.BatchesRejected.Load()
	s.Batches.Dies = m.BatchDies.snapshot()
	s.Replan.Done = m.ReplansDone.Load()
	s.Replan.Failed = m.ReplansFailed.Load()
	s.Replan.Recovered = m.ReplansRecovered.Load()
	s.Verify.Failures = m.VerifyFailures.Load()
	s.Refine.Improved = m.RefineImproved.Load()
	s.Refine.CellsSaved = m.RefineCellsSaved.Load()
	s.Refine.Skipped = m.RefineSkipped.Load()
	s.Cache.Hits = m.CacheHits.Load()
	s.Cache.Misses = m.CacheMisses.Load()
	s.Cache.Evictions = m.CacheEvictions.Load()
	s.Cache.Aborts = m.CacheAborts.Load()
	s.LatencyMS = make(map[string]HistogramSnapshot, numStages)
	for st := Stage(0); st < numStages; st++ {
		hs := m.stages[st].snapshot()
		hs.OK = m.outcomes[st][outcomeOK].Load()
		hs.Failed = m.outcomes[st][outcomeFailed].Load()
		hs.Canceled = m.outcomes[st][outcomeCanceled].Load()
		s.LatencyMS[st.String()] = hs
	}
	return s
}
