package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func postSchedule(t *testing.T, ts *httptest.Server, body string) (int, *ScheduleReport, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/schedules", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var rep ScheduleReport
	_ = json.Unmarshal(raw, &rep)
	return resp.StatusCode, &rep, string(raw)
}

// TestScheduleEndpoint drives POST /v1/schedules end to end over the
// Prepare hook: the report must be structurally valid, the die cache must
// absorb the repeat request, and the schedule latency must land in
// /metrics.
func TestScheduleEndpoint(t *testing.T) {
	var prepares atomic.Int64
	svc, ts := newTestServer(t, hookConfig(t, 2, 8, func(ctx context.Context, spec DieSpec) error {
		prepares.Add(1)
		return nil
	}))

	code, rep, raw := postSchedule(t, ts, `{"profiles":["b11/0","b11/1"],"width":8,"budget":"reduced"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if rep.Stack != "custom" || rep.Method != "ours" || rep.Timing != "tight" || rep.Seed != 1 {
		t.Errorf("defaults not applied: %s", raw)
	}
	if len(rep.Dies) != 2 {
		t.Fatalf("got %d dies, want 2", len(rep.Dies))
	}
	for _, d := range rep.Dies {
		if d.Patterns <= 0 || len(d.Designs) == 0 {
			t.Errorf("die %s missing patterns/designs: %+v", d.Die.Name, d)
		}
	}
	s := rep.Schedule
	if s == nil {
		t.Fatalf("no schedule in report: %s", raw)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
	if s.TotalWidth != 8 || s.MakespanCycles > s.SerialCycles || s.MakespanCycles <= 0 {
		t.Errorf("schedule = %+v", s)
	}
	if prepares.Load() != 2 {
		t.Errorf("prepares = %d, want 2", prepares.Load())
	}

	// The repeat schedule must ride the prepared-die cache.
	if code, _, raw := postSchedule(t, ts, `{"profiles":["b11/0","b11/1"],"width":8,"budget":"reduced"}`); code != http.StatusOK {
		t.Fatalf("repeat status %d: %s", code, raw)
	}
	if prepares.Load() != 2 {
		t.Errorf("repeat schedule re-prepared dies: %d prepares", prepares.Load())
	}

	var snap MetricsSnapshot
	if code := getJSON(t, ts, "/metrics", &snap); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if snap.Schedules.Done != 2 || snap.Schedules.Failed != 0 {
		t.Errorf("schedules counters = %+v", snap.Schedules)
	}
	if h := snap.LatencyMS["schedule"]; h.Count != 2 {
		t.Errorf("schedule latency count = %d, want 2", h.Count)
	}
	_ = svc
}

func TestScheduleValidation(t *testing.T) {
	svc, ts := newTestServer(t, hookConfig(t, 1, 4, nil))
	cases := []string{
		`{"width":8}`, // no stack
		`{"circuit":"b11","profiles":["b11/0"],"width":8}`, // both forms
		`{"circuit":"b99","width":8}`,                      // unknown circuit
		`{"profiles":["b11/9"],"width":8}`,                 // bad profile
		`{"circuit":"b11"}`,                                // missing width
		`{"circuit":"b11","width":8,"method":"mystery"}`,   // bad method
		`{"circuit":"b11","width":8,"timing":"sideways"}`,  // bad timing
		`{"circuit":"b11","width":8,"budget":"maximal"}`,   // bad budget
		`{"circuit":"b11","width":8,"bogus":true}`,         // unknown field
		`not json`,
	}
	for _, body := range cases {
		code, _, raw := postSchedule(t, ts, body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", body, code, raw)
		}
	}
	// Validation rejections never reach the pipeline, so the failure
	// counter only counts runs that started.
	if got := svc.Metrics().SchedulesFailed.Load(); got != 0 {
		t.Errorf("validation failures counted as schedule failures: %d", got)
	}
}

func TestScheduleAfterShutdown(t *testing.T) {
	svc, ts := newTestServer(t, hookConfig(t, 1, 4, nil))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	code, _, raw := postSchedule(t, ts, `{"circuit":"b11","width":8,"budget":"reduced"}`)
	if code != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503: %s", code, raw)
	}
}
