package service

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"

	"wcm3d"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs      submit a minimize request (202, 307, 400, 413, 429, 500, 503);
//	                     ?verify=true requests independent plan verification
//	GET    /v1/jobs      list retained jobs (?state=<state>&limit=<n>&cursor=<tok>)
//	GET    /v1/jobs/{id} poll one job
//	DELETE /v1/jobs/{id} cancel one job
//	POST   /v1/jobs/{id}/replan apply a TSV-fault delta and replan incrementally
//	                     (200, 400, 404, 409, 410, 413; see docs/REPLAN.md)
//	POST   /v1/schedules wrapper/TAM co-optimize a stack (200, 400, 413, 429, 503)
//	POST   /v1/batches   run a multi-die sweep through the batch engine (202, 400, 429, 500, 503)
//	GET    /v1/batches   list retained batches
//	GET    /v1/batches/{id} poll one batch's per-die progress
//	DELETE /v1/batches/{id} cancel one batch
//	GET    /v1/dies      list cached prepared dies
//	GET    /healthz      liveness (503 once shutdown begins); cluster-aware
//	GET    /metrics      expvar-style counters and latency histograms
//
// With a cluster attached (AttachCluster), three more routes exist:
//
//	GET    /v1/cluster              membership: per-peer liveness, queue depth, shard map
//	POST   /v1/cluster/steal        hand queued jobs to a pulling peer
//	POST   /v1/cluster/complete/{id} apply a thief's terminal report to a stolen job
//
// and POST /v1/jobs submissions whose die key is owned by a live peer are
// 307-redirected to the owner, so each die is prepared on exactly one node.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/schedules", s.handleSchedule)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/jobs/{id}/replan", s.handleReplan)
	mux.HandleFunc("POST /v1/batches", s.handleBatchSubmit)
	mux.HandleFunc("GET /v1/batches", s.handleBatches)
	mux.HandleFunc("GET /v1/batches/{id}", s.handleBatch)
	mux.HandleFunc("DELETE /v1/batches/{id}", s.handleBatchCancel)
	mux.HandleFunc("GET /v1/dies", s.handleDies)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cluster != nil {
		mux.HandleFunc("GET /v1/cluster", s.handleClusterInfo)
		mux.HandleFunc("POST /v1/cluster/steal", s.handleSteal)
		mux.HandleFunc("POST /v1/cluster/complete/{id}", s.handleCompleteStolen)
	}
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

// maxBodyBytes bounds request bodies on the POST endpoints; an inline
// .bench netlist for the largest Table II die fits comfortably, a runaway
// upload gets a clean 413 instead of an OOM.
const maxBodyBytes = 8 << 20

// decodeBody strictly decodes a bounded JSON request body. It writes the
// error response itself (413 for an oversized body, 400 for anything
// malformed) and reports whether decoding succeeded.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: "request body too large: " + err.Error()})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !decodeBody(w, r, &req) {
		return
	}
	switch r.URL.Query().Get("verify") {
	case "1", "true":
		req.Verify = true
	}
	switch r.URL.Query().Get("refine") {
	case "1", "true":
		req.Refine = true
	}
	if s.cluster != nil {
		// Route the submission to the node owning its die key, so each
		// die is prepared on exactly one node fleet-wide. 307 preserves
		// the method and body; Go's http.Client follows it transparently.
		j, err := s.resolve(req)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		if ownerURL, self := s.cluster.Route(j.spec.Name, j.spec.Seed); !self {
			w.Header().Set("Location", ownerURL+r.URL.RequestURI())
			writeJSON(w, http.StatusTemporaryRedirect,
				errorBody{Error: "die key owned by peer, resubmit to " + ownerURL})
			return
		}
	}
	st, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case errors.Is(err, ErrJournal):
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		w.Header().Set("Location", "/v1/jobs/"+st.ID)
		writeJSON(w, http.StatusAccepted, st)
	}
}

// handleSchedule runs a stack scheduling request synchronously: unlike
// minimize jobs it returns the finished report in the response (200), with
// the request's context carrying client-disconnect cancellation into the
// pipeline. Admission is bounded — a run beyond the schedule semaphore is
// bounced with 429 and Retry-After instead of being executed unbounded on
// the HTTP goroutine.
func (s *Service) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req ScheduleRequest
	if !decodeBody(w, r, &req) {
		return
	}
	rep, err := s.ScheduleStack(r.Context(), req)
	switch {
	case errors.Is(err, ErrScheduleBusy):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusOK, rep)
	}
}

// cursorStart is the documented bootstrap cursor: "scan from the oldest
// retained job". Every other accepted cursor is a `next` token from an
// earlier response.
const cursorStart = "0"

// encodeCursor wraps a job id into the opaque resume token echoed as
// `next`: the listing continues strictly after this id.
func encodeCursor(id string) string {
	return base64.RawURLEncoding.EncodeToString([]byte("v1:" + id))
}

// decodeCursor reverses encodeCursor; cursorStart maps to the beginning.
func decodeCursor(tok string) (after string, err error) {
	if tok == cursorStart {
		return "", nil
	}
	raw, err := base64.RawURLEncoding.DecodeString(tok)
	if err != nil || !strings.HasPrefix(string(raw), "v1:") {
		return "", errors.New("malformed cursor")
	}
	return strings.TrimPrefix(string(raw), "v1:"), nil
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	state := q.Get("state")
	switch state {
	case "", StateQueued, StateRunning, StateDone, StateFailed, StateCanceled:
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "unknown state " + strconv.Quote(state)})
		return
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "limit must be a non-negative integer"})
			return
		}
		limit = n
	}
	type envelope struct {
		Jobs []JobStatus `json:"jobs"`
		// Next is the opaque cursor resuming the listing strictly after
		// the last returned job; echo it back as ?cursor= to continue.
		Next string `json:"next,omitempty"`
	}
	var env envelope
	if tok := q.Get("cursor"); tok != "" {
		// Cursor mode: a forward scan, oldest first, truncated to the
		// FIRST limit entries past the cursor. An empty page re-echoes
		// the request cursor so pollers can keep tailing for new jobs.
		after, err := decodeCursor(tok)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "malformed cursor"})
			return
		}
		jobs, last := s.JobsPage(state, limit, after)
		env.Jobs = jobs
		if last != "" {
			env.Next = encodeCursor(last)
		} else {
			env.Next = tok
		}
	} else {
		// Legacy mode: limit keeps the most recent entries (still oldest
		// first). Next still points past the last listed job, so a
		// client can switch to cursor mode to follow new arrivals.
		env.Jobs = s.JobsFiltered(state, limit)
		if n := len(env.Jobs); n > 0 {
			env.Next = encodeCursor(env.Jobs[n-1].ID)
		}
	}
	writeJSON(w, http.StatusOK, env)
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleReplan maps the replan path's structured failures onto statuses:
// 404 unknown job, 409 for a job that cannot be replanned right now (not
// done, or spares exhausted), 410 when the prepared die left the cache,
// 413 for an oversized delta, 400 for malformed or unresolvable faults.
func (s *Service) handleReplan(w http.ResponseWriter, r *http.Request) {
	var req ReplanRequest
	if !decodeBody(w, r, &req) {
		return
	}
	st, err := s.Replan(r.PathValue("id"), req)
	switch {
	case errors.Is(err, ErrNoSuchJob):
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
	case errors.Is(err, ErrDieEvicted):
		writeJSON(w, http.StatusGone, errorBody{Error: err.Error()})
	case errors.Is(err, ErrDeltaTooLarge):
		writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: err.Error()})
	case errors.Is(err, ErrReplanJobNotDone), errors.Is(err, wcm3d.ErrNoSpares):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
	case errors.Is(err, ErrReplanUnsupported),
		errors.Is(err, wcm3d.ErrBadTSVFault),
		errors.Is(err, wcm3d.ErrUnknownTSV):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusOK, st)
	}
}

func (s *Service) handleDies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Dies []DieInfo `json:"dies"`
	}{Dies: s.Dies()})
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	type clusterHealth struct {
		Self  string `json:"self"`
		Alive int    `json:"alive"`
		Total int    `json:"total"`
	}
	type health struct {
		Status  string         `json:"status"`
		Cluster *clusterHealth `json:"cluster,omitempty"`
	}
	var ch *clusterHealth
	if s.cluster != nil {
		info := s.cluster.Info()
		ch = &clusterHealth{Self: info.Self, Total: len(info.Peers)}
		for _, p := range info.Peers {
			if p.Alive {
				ch.Alive++
			}
		}
	}
	if !s.Healthy() {
		writeJSON(w, http.StatusServiceUnavailable, health{Status: "shutting down", Cluster: ch})
		return
	}
	writeJSON(w, http.StatusOK, health{Status: "ok", Cluster: ch})
}

// handleClusterInfo serves the membership snapshot: per-peer liveness,
// queue depth and the shard map. Peers also poll it as the liveness +
// load probe feeding their steal decisions.
func (s *Service) handleClusterInfo(w http.ResponseWriter, r *http.Request) {
	info := s.cluster.Info()
	info.QueueDepth = s.QueueDepth()
	writeJSON(w, http.StatusOK, info)
}

// stealRequest is the body of POST /v1/cluster/steal.
type stealRequest struct {
	// Thief identifies the pulling node; Count bounds how many queued
	// jobs it wants.
	Thief string `json:"thief"`
	Count int    `json:"count"`
}

func (s *Service) handleSteal(w http.ResponseWriter, r *http.Request) {
	var req stealRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Thief == "" || req.Count <= 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "steal needs thief and a positive count"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []StolenJob `json:"jobs"`
	}{Jobs: s.StealQueued(req.Count, req.Thief)})
}

// completeRequest is the body of POST /v1/cluster/complete/{id}: a
// thief's terminal report for a job it stole.
type completeRequest struct {
	State  string  `json:"state"`
	Error  string  `json:"error,omitempty"`
	Result *Report `json:"result,omitempty"`
}

func (s *Service) handleCompleteStolen(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	applied := s.CompleteStolen(r.PathValue("id"), req.State, req.Error, req.Result)
	writeJSON(w, http.StatusOK, struct {
		Applied bool `json:"applied"`
	}{Applied: applied})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}
