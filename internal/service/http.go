package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs      submit a minimize request (202, 400, 413, 429, 503);
//	                     ?verify=true requests independent plan verification
//	GET    /v1/jobs      list retained jobs (?state=<state>&limit=<n>)
//	GET    /v1/jobs/{id} poll one job
//	DELETE /v1/jobs/{id} cancel one job
//	POST   /v1/schedules wrapper/TAM co-optimize a stack (200, 400, 413, 429, 503)
//	GET    /v1/dies      list cached prepared dies
//	GET    /healthz      liveness (503 once shutdown begins)
//	GET    /metrics      expvar-style counters and latency histograms
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/schedules", s.handleSchedule)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/dies", s.handleDies)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

// maxBodyBytes bounds request bodies on the POST endpoints; an inline
// .bench netlist for the largest Table II die fits comfortably, a runaway
// upload gets a clean 413 instead of an OOM.
const maxBodyBytes = 8 << 20

// decodeBody strictly decodes a bounded JSON request body. It writes the
// error response itself (413 for an oversized body, 400 for anything
// malformed) and reports whether decoding succeeded.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: "request body too large: " + err.Error()})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !decodeBody(w, r, &req) {
		return
	}
	switch r.URL.Query().Get("verify") {
	case "1", "true":
		req.Verify = true
	}
	switch r.URL.Query().Get("refine") {
	case "1", "true":
		req.Refine = true
	}
	st, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		w.Header().Set("Location", "/v1/jobs/"+st.ID)
		writeJSON(w, http.StatusAccepted, st)
	}
}

// handleSchedule runs a stack scheduling request synchronously: unlike
// minimize jobs it returns the finished report in the response (200), with
// the request's context carrying client-disconnect cancellation into the
// pipeline. Admission is bounded — a run beyond the schedule semaphore is
// bounced with 429 and Retry-After instead of being executed unbounded on
// the HTTP goroutine.
func (s *Service) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req ScheduleRequest
	if !decodeBody(w, r, &req) {
		return
	}
	rep, err := s.ScheduleStack(r.Context(), req)
	switch {
	case errors.Is(err, ErrScheduleBusy):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusOK, rep)
	}
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	state := q.Get("state")
	switch state {
	case "", StateQueued, StateRunning, StateDone, StateFailed, StateCanceled:
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "unknown state " + strconv.Quote(state)})
		return
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "limit must be a non-negative integer"})
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: s.JobsFiltered(state, limit)})
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleDies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Dies []DieInfo `json:"dies"`
	}{Dies: s.Dies()})
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status string `json:"status"`
	}
	if !s.Healthy() {
		writeJSON(w, http.StatusServiceUnavailable, health{Status: "shutting down"})
		return
	}
	writeJSON(w, http.StatusOK, health{Status: "ok"})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}
