package service

import (
	"encoding/json"
	"testing"

	"wcm3d"
)

func TestEncodeResultRoundTrip(t *testing.T) {
	die := sharedDie(t)
	res, err := wcm3d.Minimize(die, wcm3d.MethodOurs, wcm3d.TightTiming)
	if err != nil {
		t.Fatal(err)
	}
	info := DescribeDie("b11/Die0", 1, die)
	if info.ScanFFs != len(die.Netlist.FlipFlops()) || info.ClockPS != die.ClockPS || info.WidthUM <= 0 {
		t.Errorf("DescribeDie = %+v", info)
	}
	rep := EncodeResult(info, wcm3d.MethodOurs, wcm3d.TightTiming, res, die.Lib)
	if rep.Method != "ours" || rep.Timing != "tight" {
		t.Errorf("header = %q/%q", rep.Method, rep.Timing)
	}
	if rep.ReusedFFs != res.ReusedFFs || rep.AdditionalCells != res.AdditionalCells {
		t.Errorf("counts = %d/%d, want %d/%d", rep.ReusedFFs, rep.AdditionalCells, res.ReusedFFs, res.AdditionalCells)
	}
	if rep.DFTAreaUM2 != res.AreaUM2(die.Lib) || rep.DFTAreaUM2 <= 0 {
		t.Errorf("area = %v", rep.DFTAreaUM2)
	}
	if len(rep.Phases) != len(res.Phases) {
		t.Errorf("phases = %d, want %d", len(rep.Phases), len(res.Phases))
	}
	rep.SetSignoff(false, 12.5)
	rep.SetStuckAt(wcm3d.Testability{Coverage: 0.97, RawCoverage: 0.95, Patterns: 42}, 1234)

	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !back.TimingMet || back.WNSPS != 12.5 {
		t.Errorf("signoff lost in round trip: %+v", back)
	}
	if back.StuckAt == nil || back.StuckAt.Patterns != 42 || back.TestCycles != 1234 {
		t.Errorf("ATPG lost in round trip: %+v", back.StuckAt)
	}
	if back.Die != rep.Die {
		t.Errorf("die info lost in round trip: %+v != %+v", back.Die, rep.Die)
	}
}

func TestSetStuckAtOmitsNonPositiveCycles(t *testing.T) {
	var rep Report
	rep.SetStuckAt(wcm3d.Testability{Coverage: 1}, 0)
	if rep.TestCycles != 0 {
		t.Errorf("TestCycles = %d, want 0", rep.TestCycles)
	}
}
