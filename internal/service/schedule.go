package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"wcm3d"
	"wcm3d/internal/tam"
)

// ScheduleRequest is the body of POST /v1/schedules: a pre-bond stack to
// wrap and schedule onto a shared TAM.
type ScheduleRequest struct {
	// Circuit names a Table II benchmark family ("b12"); its four dies
	// form the stack. Profiles lists explicit dies ("b12/1", ...) instead.
	// Exactly one must be set.
	Circuit  string   `json:"circuit,omitempty"`
	Profiles []string `json:"profiles,omitempty"`
	// Width is the total TAM wire budget (required, >= 1).
	Width int `json:"width"`
	// Seed drives generation, placement and ATPG (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Method is ours | agrawal | li | fullwrap (default ours).
	Method string `json:"method,omitempty"`
	// Timing is tight | loose (default tight).
	Timing string `json:"timing,omitempty"`
	// Budget is the ATPG effort: full | reduced (default full).
	Budget string `json:"budget,omitempty"`
	// TimeoutMS bounds the whole scheduling run, in milliseconds. It is
	// clamped to the server's MaxTimeout cap; 0 means the cap applies
	// directly.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ScheduleDieReport is one die's contribution to a schedule: its
// description, its ATPG pattern count, and its Pareto wrapper designs.
type ScheduleDieReport struct {
	Die      DieInfo               `json:"die"`
	Patterns int                   `json:"patterns"`
	Designs  []wcm3d.WrapperDesign `json:"designs"`
}

// ScheduleReport is the machine-readable outcome of a stack scheduling
// run — the schema shared by POST /v1/schedules and cmd/schedule -json.
type ScheduleReport struct {
	Stack       string              `json:"stack"`
	Method      string              `json:"method"`
	Timing      string              `json:"timing"`
	Seed        int64               `json:"seed"`
	Dies        []ScheduleDieReport `json:"dies"`
	Schedule    *wcm3d.TestSchedule `json:"schedule"`
	Utilization float64             `json:"utilization"`
}

// resolveSchedule validates a request and resolves its die profiles.
func resolveSchedule(req ScheduleRequest) (stack string, profiles []wcm3d.Profile, m wcm3d.Method, mode wcm3d.TimingMode, budget wcm3d.ATPGBudget, seed int64, err error) {
	switch {
	case req.Circuit != "" && len(req.Profiles) > 0:
		err = errors.New("pass circuit or profiles, not both")
		return
	case req.Circuit != "":
		profiles = wcm3d.CircuitProfiles(req.Circuit)
		if profiles == nil {
			err = fmt.Errorf("unknown circuit %q", req.Circuit)
			return
		}
		stack = req.Circuit
	case len(req.Profiles) > 0:
		for _, name := range req.Profiles {
			var p wcm3d.Profile
			if p, err = wcm3d.ProfileByName(name); err != nil {
				return
			}
			profiles = append(profiles, p)
		}
		stack = "custom"
	default:
		err = errors.New("pass circuit or profiles")
		return
	}
	if req.Width < 1 {
		err = fmt.Errorf("width must be >= 1, got %d", req.Width)
		return
	}
	seed = req.Seed
	if seed == 0 {
		seed = 1
	}
	ms := req.Method
	if ms == "" {
		ms = "ours"
	}
	if m, err = wcm3d.ParseMethod(ms); err != nil {
		return
	}
	ts := req.Timing
	if ts == "" {
		ts = "tight"
	}
	if mode, err = wcm3d.ParseTimingMode(ts); err != nil {
		return
	}
	switch req.Budget {
	case "", "full":
		budget = wcm3d.DefaultBudget(seed)
	case "reduced":
		budget = wcm3d.ReducedBudget(seed)
	default:
		err = fmt.Errorf("unknown budget %q", req.Budget)
		return
	}
	if req.TimeoutMS < 0 {
		err = fmt.Errorf("timeout_ms must be >= 0, got %d", req.TimeoutMS)
	}
	return
}

// ScheduleStack runs wrapper/TAM co-optimization for a stack request: each
// die is prepared through the shared die cache (so repeat schedules and
// minimize jobs amortize the expensive preparation), wrapped with the
// requested method, graded with stuck-at ATPG for its pattern count, and
// packed into the TAM plane. The whole run is timed under the "schedule"
// latency histogram.
//
// Admission is governed by a semaphore sized off ScheduleConcurrency: a
// run beyond it is rejected with ErrScheduleBusy instead of piling an
// unbounded pipeline onto the caller's goroutine. Each admitted run is
// bounded by the request's timeout_ms clamped to the MaxTimeout cap.
func (s *Service) ScheduleStack(ctx context.Context, req ScheduleRequest) (*ScheduleReport, error) {
	stackName, profiles, method, mode, budget, seed, err := resolveSchedule(req)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrShuttingDown
	}
	select {
	case s.schedSem <- struct{}{}:
		defer func() { <-s.schedSem }()
	default:
		s.metrics.SchedulesRejected.Add(1)
		return nil, ErrScheduleBusy
	}
	ctx, cancel := context.WithTimeout(ctx, s.effectiveTimeout(req.TimeoutMS))
	defer cancel()

	start := time.Now()
	rep, err := s.buildSchedule(ctx, stackName, profiles, method, mode, budget, seed, req.Width)
	s.metrics.ObserveOutcome(StageSchedule, time.Since(start), err)
	if err != nil {
		s.metrics.SchedulesFailed.Add(1)
		return nil, err
	}
	s.metrics.SchedulesDone.Add(1)
	return rep, nil
}

func (s *Service) buildSchedule(ctx context.Context, stackName string, profiles []wcm3d.Profile, method wcm3d.Method, mode wcm3d.TimingMode, budget wcm3d.ATPGBudget, seed int64, width int) (*ScheduleReport, error) {
	stack := make([]wcm3d.StackDie, 0, len(profiles))
	for _, p := range profiles {
		spec := DieSpec{Profile: p, Name: p.Name(), Seed: seed}
		die, err := s.dies.get(ctx, DieKey{Name: spec.Name, Seed: seed}, s.preparer(spec))
		if err != nil {
			return nil, fmt.Errorf("prepare %s: %w", spec.Name, err)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := wcm3d.Minimize(die, method, mode)
		if err != nil {
			return nil, fmt.Errorf("minimize %s: %w", spec.Name, err)
		}
		tb, err := wcm3d.EvaluateStuckAt(die, res.Assignment, budget)
		if err != nil {
			return nil, fmt.Errorf("atpg %s: %w", spec.Name, err)
		}
		stack = append(stack, wcm3d.StackDie{
			Name:       spec.Name,
			Die:        die,
			Assignment: res.Assignment,
			Patterns:   tb.Patterns,
		})
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return EncodeSchedule(stackName, method, mode, seed, stack, width)
}

// EncodeSchedule enumerates each stacked die's Pareto wrapper designs,
// packs them into the width-wire TAM plane, and builds the shared report —
// the common tail of POST /v1/schedules and cmd/schedule, so daemon and
// CLI output stay in lockstep.
func EncodeSchedule(stackName string, method wcm3d.Method, mode wcm3d.TimingMode, seed int64, stack []wcm3d.StackDie, width int) (*ScheduleReport, error) {
	rep := &ScheduleReport{
		Stack:  stackName,
		Method: method.String(),
		Timing: mode.String(),
		Seed:   seed,
	}
	specs := make([]tam.DieSpec, 0, len(stack))
	for _, sd := range stack {
		name := sd.Name
		if name == "" {
			name = sd.Die.Profile.Name()
		}
		designs, err := wcm3d.EnumerateWrapperDesigns(sd.Die, sd.Assignment, sd.Patterns, width)
		if err != nil {
			return nil, fmt.Errorf("enumerate %s: %w", name, err)
		}
		rep.Dies = append(rep.Dies, ScheduleDieReport{
			Die:      DescribeDie(name, seed, sd.Die),
			Patterns: sd.Patterns,
			Designs:  designs,
		})
		specs = append(specs, tam.DieSpec{Name: name, Designs: designs})
	}
	sched, err := tam.Pack(specs, width)
	if err != nil {
		return nil, err
	}
	rep.Schedule = sched
	rep.Utilization = sched.Utilization()
	return rep, nil
}
