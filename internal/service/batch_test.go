package service

// Tests for the POST /v1/batches surface: lifecycle over HTTP, admission
// control shared with the job queue, cancellation, journal events via the
// BatchJournal seam, and crash recovery via Recover.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// memBatchJournal extends the in-memory fake journal with the batch
// records, exercising the type-asserted BatchJournal seam.
type memBatchJournal struct {
	memJournal
}

func (m *memBatchJournal) SubmitBatch(id string, req BatchRequest) error {
	if m.failSubmit {
		return fmt.Errorf("disk full")
	}
	m.record("bsubmit " + id)
	return nil
}

func (m *memBatchJournal) FinishBatch(id string, state, errMsg string) error {
	m.record("bfinish " + id + " " + state)
	return nil
}

func postBatch(t *testing.T, ts *httptest.Server, body string) (int, BatchStatus, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/batches", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var st BatchStatus
	_ = json.Unmarshal(raw, &st)
	return resp.StatusCode, st, string(raw)
}

// waitBatch polls until the batch reaches a terminal state.
func waitBatch(t *testing.T, ts *httptest.Server, id string) BatchStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var st BatchStatus
		if code := getJSON(t, ts, "/v1/batches/"+id, &st); code != http.StatusOK {
			t.Fatalf("poll %s: status %d", id, code)
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("batch %s did not finish", id)
	return BatchStatus{}
}

func TestBatchHTTPLifecycle(t *testing.T) {
	svc, ts := newTestServer(t, hookConfig(t, 2, 8, nil))
	code, st, raw := postBatch(t, ts, `{"circuit":"b11"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, raw)
	}
	if st.ID == "" || st.Total != 4 || len(st.Dies) != 4 {
		t.Fatalf("submit status = %+v", st)
	}
	fin := waitBatch(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("batch ended %s (%s)", fin.State, fin.Error)
	}
	if fin.Completed != 4 || fin.Failed != 0 {
		t.Fatalf("progress = %d done / %d failed, want 4/0", fin.Completed, fin.Failed)
	}
	for _, d := range fin.Dies {
		if d.State != BatchDieDone {
			t.Fatalf("die %s state %s: %s", d.Die, d.State, d.Error)
		}
		if d.ReusedFFs == 0 && d.AdditionalCells == 0 {
			t.Fatalf("die %s has no plan numbers", d.Die)
		}
	}

	var list struct {
		Batches []BatchStatus `json:"batches"`
	}
	if code := getJSON(t, ts, "/v1/batches", &list); code != http.StatusOK || len(list.Batches) != 1 {
		t.Fatalf("list: code %d, %d batches", code, len(list.Batches))
	}

	m := svc.Snapshot()
	if m.Batches.Done != 1 || m.Batches.Active != 0 {
		t.Errorf("batch counters = %+v", m.Batches)
	}
	if m.Batches.Dies.Count != 1 {
		t.Errorf("batch.dies histogram count = %d, want 1", m.Batches.Dies.Count)
	}
	if m.LatencyMS["batch"].Count != 1 || m.LatencyMS["batch"].OK != 1 {
		t.Errorf("batch latency histogram = %+v", m.LatencyMS["batch"])
	}
	// The four distinct die keys all went through the shared cache.
	if m.Cache.Misses != 4 {
		t.Errorf("cache misses = %d, want 4", m.Cache.Misses)
	}
}

func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, hookConfig(t, 1, 4, nil))
	for _, body := range []string{
		`{}`,
		`{"all":true,"circuit":"b11"}`,
		`{"circuit":"nope"}`,
		`{"profiles":["b11/9"]}`,
		`{"all":true,"method":"nope"}`,
		`{"all":true,"timing":"sideways"}`,
		`{"all":true,"max_in_flight":9}`,
		`{"all":true,"timeout_ms":-1}`,
	} {
		if code, _, raw := postBatch(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("body %s: status %d (%s), want 400", body, code, raw)
		}
	}
	if code := getJSON(t, ts, "/v1/batches/b-999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown batch: status %d, want 404", code)
	}
}

// TestBatchQueueBackpressure: batches share the job queue's admission
// control, so a saturated queue bounces them with 429.
func TestBatchQueueBackpressure(t *testing.T) {
	release := make(chan struct{})
	var once bool
	svc, ts := newTestServer(t, hookConfig(t, 1, 1, func(ctx context.Context, spec DieSpec) error {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	}))
	defer func() {
		if !once {
			close(release)
		}
	}()

	// One job occupies the single worker, one fills the single queue slot.
	if code, _, raw := postJob(t, ts, `{"profile":"b11/0"}`); code != http.StatusAccepted {
		t.Fatalf("job 1: %d %s", code, raw)
	}
	if code, _, raw := postJob(t, ts, `{"profile":"b11/1"}`); code != http.StatusAccepted {
		t.Fatalf("job 2: %d %s", code, raw)
	}
	code, _, _ := postBatch(t, ts, `{"circuit":"b11"}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("batch under backpressure: status %d, want 429", code)
	}
	if got := svc.Metrics().BatchesRejected.Load(); got != 1 {
		t.Errorf("BatchesRejected = %d, want 1", got)
	}
	close(release)
	once = true
}

func TestBatchCancelQueued(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestServer(t, hookConfig(t, 1, 8, func(ctx context.Context, spec DieSpec) error {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	}))
	defer close(release)

	// Occupy the single worker so the batch stays queued.
	if code, _, raw := postJob(t, ts, `{"profile":"b11/0"}`); code != http.StatusAccepted {
		t.Fatalf("blocker job: %d %s", code, raw)
	}
	code, st, raw := postBatch(t, ts, `{"circuit":"b11"}`)
	if code != http.StatusAccepted {
		t.Fatalf("batch: %d %s", code, raw)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/batches/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var got BatchStatus
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.State != StateCanceled {
		t.Fatalf("canceled batch state = %s", got.State)
	}
	for _, d := range got.Dies {
		if d.State != BatchDiePending {
			t.Fatalf("die %s state = %s, want pending (never ran)", d.Die, d.State)
		}
	}
}

// TestBatchJournalEvents pins the durable write order on the batch path:
// submit journaled before the run can finish, finish journaled after.
func TestBatchJournalEvents(t *testing.T) {
	jl := &memBatchJournal{}
	cfg := hookConfig(t, 2, 8, nil)
	cfg.Journal = jl
	_, ts := newTestServer(t, cfg)
	code, st, raw := postBatch(t, ts, `{"circuit":"b11"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, raw)
	}
	if !jl.has("bsubmit " + st.ID) {
		t.Fatal("submit was accepted before the journal recorded it")
	}
	fin := waitBatch(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("batch ended %s", fin.State)
	}
	if !jl.has("bfinish " + st.ID + " " + StateDone) {
		t.Fatalf("no terminal journal record; events: %v", jl.events)
	}
}

// TestBatchWithLegacyJournal: a Journal that predates BatchJournal leaves
// batches non-durable but fully functional.
func TestBatchWithLegacyJournal(t *testing.T) {
	jl := &memJournal{}
	cfg := hookConfig(t, 2, 8, nil)
	cfg.Journal = jl
	_, ts := newTestServer(t, cfg)
	code, st, raw := postBatch(t, ts, `{"circuit":"b11"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, raw)
	}
	if fin := waitBatch(t, ts, st.ID); fin.State != StateDone {
		t.Fatalf("batch ended %s (%s)", fin.State, fin.Error)
	}
	if n := jl.countPrefix("bsubmit"); n != 0 {
		t.Fatalf("legacy journal saw %d batch records", n)
	}
}

// TestBatchRecovery: pending batches from the WAL re-run to completion,
// finished ones are restored for pollers, and the id sequence advances
// past everything the log had seen.
func TestBatchRecovery(t *testing.T) {
	svc, ts := newTestServer(t, hookConfig(t, 2, 8, nil))
	requeued, restored, err := svc.Recover(Recovery{
		Batches: []RecoveredBatch{
			{ID: "b-000002", Req: BatchRequest{Circuit: "b11"}, State: StateDone},
			{ID: "b-000005", Req: BatchRequest{Circuit: "b11"}},
		},
	})
	if err != nil || requeued != 1 || restored != 1 {
		t.Fatalf("Recover = (%d, %d, %v), want (1, 1, nil)", requeued, restored, err)
	}
	st0, ok := svc.Batch("b-000002")
	if !ok || st0.State != StateDone {
		t.Fatalf("restored batch = %+v, %v", st0, ok)
	}
	// Per-die results are not journaled, but a restored done batch must
	// still read as fully completed, not "done, 0 of 4".
	if st0.Completed != st0.Total || st0.Total != 4 {
		t.Fatalf("restored batch progress = %d/%d, want 4/4", st0.Completed, st0.Total)
	}
	for _, d := range st0.Dies {
		if d.State != BatchDieDone {
			t.Fatalf("restored die %s state = %s", d.Die, d.State)
		}
	}
	if fin := waitBatch(t, ts, "b-000005"); fin.State != StateDone || fin.Completed != 4 {
		t.Fatalf("replayed batch ended %s with %d dies done", fin.State, fin.Completed)
	}
	// New ids must not collide with recovered ones.
	code, st, raw := postBatch(t, ts, `{"circuit":"b11"}`)
	if code != http.StatusAccepted {
		t.Fatalf("post-recovery submit: %d %s", code, raw)
	}
	if st.ID <= "b-000005" {
		t.Fatalf("post-recovery id %s did not advance past the watermark", st.ID)
	}
}
