package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wcm3d"
)

// sharedDie prepares one small real die (b11/Die0, seed 1) that every test
// needing a prepared die reuses through a Prepare hook.
var (
	dieOnce sync.Once
	dieVal  *wcm3d.Die
	dieErr  error
)

func sharedDie(t *testing.T) *wcm3d.Die {
	t.Helper()
	dieOnce.Do(func() {
		var p wcm3d.Profile
		p, dieErr = wcm3d.ProfileByName("b11/0")
		if dieErr != nil {
			return
		}
		dieVal, dieErr = wcm3d.PrepareDie(p, 1)
	})
	if dieErr != nil {
		t.Fatal(dieErr)
	}
	return dieVal
}

// newTestServer spins up a Service behind httptest and registers cleanup:
// shutdown with a generous deadline so no test leaks workers.
func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, _ = svc.Shutdown(ctx)
		ts.Close()
	})
	return svc, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (int, JobStatus, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var st JobStatus
	_ = json.Unmarshal(raw, &st)
	return resp.StatusCode, st, string(raw)
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

// waitJob polls until the job reaches a terminal state.
func waitJob(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var st JobStatus
		if code := getJSON(t, ts, "/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("poll %s: status %d", id, code)
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

// hookConfig builds a config whose Prepare returns the shared die after
// running fn (which may block, count, or fail).
func hookConfig(t *testing.T, workers, queue int, fn func(ctx context.Context, spec DieSpec) error) Config {
	die := sharedDie(t)
	return Config{
		Workers:    workers,
		QueueDepth: queue,
		Prepare: func(ctx context.Context, spec DieSpec) (*wcm3d.Die, error) {
			if fn != nil {
				if err := fn(ctx, spec); err != nil {
					return nil, err
				}
			}
			return die, nil
		},
	}
}

// TestEndToEnd exercises the daemon against the real pipeline: default
// Prepare, minimize, signoff, ATPG — then checks the report, the die list,
// health and metrics.
func TestEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	code, st, raw := postJob(t, ts, `{"profile":"b11/0","seed":1,"method":"ours","timing":"tight","atpg":true,"budget":"reduced"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, raw)
	}
	if st.State != StateQueued || st.ID == "" {
		t.Fatalf("submit status = %+v", st)
	}
	fin := waitJob(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("job ended %s: %s", fin.State, fin.Error)
	}
	r := fin.Result
	if r == nil {
		t.Fatal("done job carries no result")
	}
	if r.Die.Name != "b11/Die0" || r.Method != "ours" || r.Timing != "tight" {
		t.Errorf("report header = %+v", r)
	}
	if r.ReusedFFs+r.AdditionalCells == 0 || r.DFTAreaUM2 <= 0 {
		t.Errorf("implausible minimize outcome: %+v", r)
	}
	if r.StuckAt == nil || r.StuckAt.Coverage <= 0.5 || r.TestCycles <= 0 {
		t.Errorf("implausible ATPG outcome: %+v", r.StuckAt)
	}

	var dies struct {
		Dies []DieInfo `json:"dies"`
	}
	if code := getJSON(t, ts, "/v1/dies", &dies); code != http.StatusOK {
		t.Fatalf("dies: %d", code)
	}
	if len(dies.Dies) != 1 || dies.Dies[0].Name != "b11/Die0" || dies.Dies[0].ScanFFs == 0 {
		t.Errorf("dies = %+v", dies.Dies)
	}
	if code := getJSON(t, ts, "/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz = %d", code)
	}
	var m MetricsSnapshot
	getJSON(t, ts, "/metrics", &m)
	if m.Jobs.Done != 1 || m.Cache.Misses != 1 {
		t.Errorf("metrics = %+v", m.Jobs)
	}
	if m.LatencyMS["total"].Count != 1 || m.LatencyMS["prepare"].Count != 1 || m.LatencyMS["atpg"].Count != 1 {
		t.Errorf("latency histograms = %+v", m.LatencyMS)
	}
	// A second identical submission is a pure cache hit.
	_, st2, _ := postJob(t, ts, `{"profile":"b11/0","seed":1,"atpg":false}`)
	if fin := waitJob(t, ts, st2.ID); fin.State != StateDone {
		t.Fatalf("cached job ended %s: %s", fin.State, fin.Error)
	}
	getJSON(t, ts, "/metrics", &m)
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Errorf("after cached job: hits=%d misses=%d, want 1/1", m.Cache.Hits, m.Cache.Misses)
	}
}

// TestSingleFlight is the acceptance check: two simultaneous requests for
// the same (profile, seed) trigger exactly one preparation.
func TestSingleFlight(t *testing.T) {
	var prepares atomic.Int64
	cfg := hookConfig(t, 4, 8, func(ctx context.Context, spec DieSpec) error {
		prepares.Add(1)
		time.Sleep(50 * time.Millisecond) // hold the flight open
		return nil
	})
	svc, ts := newTestServer(t, cfg)
	var ids [2]string
	for i := range ids {
		code, st, raw := postJob(t, ts, `{"profile":"b11/0","seed":1}`)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, code, raw)
		}
		ids[i] = st.ID
	}
	for _, id := range ids {
		if fin := waitJob(t, ts, id); fin.State != StateDone {
			t.Fatalf("job %s ended %s: %s", id, fin.State, fin.Error)
		}
	}
	if got := prepares.Load(); got != 1 {
		t.Errorf("prepare ran %d times for concurrent same-key jobs, want 1", got)
	}
	m := svc.Snapshot()
	if m.Cache.Misses != 1 || m.Cache.Hits != 1 {
		t.Errorf("cache hits=%d misses=%d, want 1/1", m.Cache.Hits, m.Cache.Misses)
	}
}

// TestBackpressure is the acceptance check: a full queue returns 429.
func TestBackpressure(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	cfg := hookConfig(t, 1, 1, func(ctx context.Context, spec DieSpec) error {
		started <- struct{}{}
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	svc, ts := newTestServer(t, cfg)
	code, st1, raw := postJob(t, ts, `{"profile":"b11/0","seed":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("job 1: %d %s", code, raw)
	}
	<-started // job 1 is running, the queue is empty again
	code, st2, _ := postJob(t, ts, `{"profile":"b11/0","seed":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("job 2: %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"profile":"b11/0","seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3 = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
	close(release)
	<-started // job 2 enters the hook once job 1's flight closes
	for _, id := range []string{st1.ID, st2.ID} {
		if fin := waitJob(t, ts, id); fin.State != StateDone {
			t.Fatalf("job %s ended %s: %s", id, fin.State, fin.Error)
		}
	}
	m := svc.Snapshot()
	if m.Jobs.Rejected != 1 || m.Jobs.Done != 2 {
		t.Errorf("metrics = %+v", m.Jobs)
	}
}

// TestShutdownDrains is the acceptance check: shutdown drains an in-flight
// job before exiting, then refuses new work.
func TestShutdownDrains(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	cfg := hookConfig(t, 1, 4, func(ctx context.Context, spec DieSpec) error {
		started <- struct{}{}
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	svc, ts := newTestServer(t, cfg)
	_, st, _ := postJob(t, ts, `{"profile":"b11/0","seed":1}`)
	<-started
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := svc.Shutdown(ctx)
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if rep.Done != 1 || rep.Canceled != 0 {
		t.Errorf("drain report = %+v, want 1 done", rep)
	}
	if fin, ok := svc.Job(st.ID); !ok || fin.State != StateDone {
		t.Errorf("drained job = %+v", fin)
	}
	if code, _, _ := postJob(t, ts, `{"profile":"b11/0","seed":1}`); code != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown = %d, want 503", code)
	}
	if code := getJSON(t, ts, "/healthz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("healthz after shutdown = %d, want 503", code)
	}
}

// TestShutdownDeadline: a drain deadline cancels in-flight and queued jobs
// and reports the partial state.
func TestShutdownDeadline(t *testing.T) {
	started := make(chan struct{}, 1)
	cfg := hookConfig(t, 1, 4, func(ctx context.Context, spec DieSpec) error {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done() // honor only cancellation
		return ctx.Err()
	})
	svc, ts := newTestServer(t, cfg)
	_, st1, _ := postJob(t, ts, `{"profile":"b11/0","seed":1}`)
	<-started
	_, st2, _ := postJob(t, ts, `{"profile":"b11/0","seed":2}`) // stays queued
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	rep, err := svc.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown err = %v, want deadline exceeded", err)
	}
	if rep.Canceled != 2 || rep.Done != 0 {
		t.Errorf("drain report = %+v, want 2 canceled", rep)
	}
	for _, id := range []string{st1.ID, st2.ID} {
		if fin, ok := svc.Job(id); !ok || fin.State != StateCanceled {
			t.Errorf("job %s = %+v, want canceled", id, fin)
		}
	}
}

// TestCancel covers per-job cancellation of both queued and running jobs.
func TestCancel(t *testing.T) {
	started := make(chan struct{}, 1)
	cfg := hookConfig(t, 1, 4, func(ctx context.Context, spec DieSpec) error {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return ctx.Err()
	})
	svc, ts := newTestServer(t, cfg)
	_, st1, _ := postJob(t, ts, `{"profile":"b11/0","seed":1}`)
	<-started
	_, st2, _ := postJob(t, ts, `{"profile":"b11/0","seed":2}`) // queued behind st1

	del := func(id string) (int, JobStatus) {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st JobStatus
		_ = json.NewDecoder(resp.Body).Decode(&st)
		return resp.StatusCode, st
	}
	if code, st := del(st2.ID); code != http.StatusOK || st.State != StateCanceled {
		t.Errorf("cancel queued = %d %+v", code, st)
	}
	if code, _ := del(st1.ID); code != http.StatusOK {
		t.Errorf("cancel running = %d", code)
	}
	if fin := waitJob(t, ts, st1.ID); fin.State != StateCanceled {
		t.Errorf("running job after cancel = %+v", fin)
	}
	if code, _ := del("j-999999"); code != http.StatusNotFound {
		t.Errorf("cancel unknown = %d, want 404", code)
	}
	m := svc.Snapshot()
	if m.Jobs.Canceled != 2 {
		t.Errorf("canceled = %d, want 2", m.Jobs.Canceled)
	}
}

// TestLRUEviction: the die cache holds CacheCapacity entries and evicts the
// least recently used.
func TestLRUEviction(t *testing.T) {
	var prepares atomic.Int64
	cfg := hookConfig(t, 1, 4, func(ctx context.Context, spec DieSpec) error {
		prepares.Add(1)
		return nil
	})
	cfg.CacheCapacity = 1
	svc, ts := newTestServer(t, cfg)
	submit := func(seed int) {
		t.Helper()
		_, st, _ := postJob(t, ts, fmt.Sprintf(`{"profile":"b11/0","seed":%d}`, seed))
		if fin := waitJob(t, ts, st.ID); fin.State != StateDone {
			t.Fatalf("seed %d ended %s: %s", seed, fin.State, fin.Error)
		}
	}
	submit(1)
	submit(2) // evicts seed 1
	submit(1) // misses again
	m := svc.Snapshot()
	if prepares.Load() != 3 || m.Cache.Misses != 3 || m.Cache.Evictions != 2 || m.Cache.Entries != 1 {
		t.Errorf("prepares=%d metrics=%+v", prepares.Load(), m.Cache)
	}
	var dies struct {
		Dies []DieInfo `json:"dies"`
	}
	getJSON(t, ts, "/v1/dies", &dies)
	if len(dies.Dies) != 1 || dies.Dies[0].Seed != 1 {
		t.Errorf("dies = %+v, want the seed-1 entry only", dies.Dies)
	}
}

// TestPrepareFailureNotCached: a failed preparation surfaces as a failed
// job and is retried (not negatively cached) on the next request.
func TestPrepareFailure(t *testing.T) {
	var calls atomic.Int64
	cfg := hookConfig(t, 1, 4, func(ctx context.Context, spec DieSpec) error {
		if calls.Add(1) == 1 {
			return errors.New("flaky generator")
		}
		return nil
	})
	svc, ts := newTestServer(t, cfg)
	_, st, _ := postJob(t, ts, `{"profile":"b11/0","seed":1}`)
	if fin := waitJob(t, ts, st.ID); fin.State != StateFailed || !strings.Contains(fin.Error, "flaky generator") {
		t.Fatalf("first job = %+v", fin)
	}
	_, st2, _ := postJob(t, ts, `{"profile":"b11/0","seed":1}`)
	if fin := waitJob(t, ts, st2.ID); fin.State != StateDone {
		t.Fatalf("retry = %+v", fin)
	}
	if calls.Load() != 2 {
		t.Errorf("prepare calls = %d, want 2 (failure must not be cached)", calls.Load())
	}
	m := svc.Snapshot()
	if m.Jobs.Failed != 1 || m.Jobs.Done != 1 {
		t.Errorf("metrics = %+v", m.Jobs)
	}
}

// TestInlineNetlist runs the real PrepareParsed path on a tiny hand-written
// die, and checks that a garbage netlist is rejected synchronously at submit.
func TestInlineNetlist(t *testing.T) {
	const tiny = `
INPUT(clk_en)
INPUT(mode)
TSV_IN(t_in0)
TSV_IN(t_in1)
TSV_IN(t_in2)
TSV_IN(t_in3)
ff_state0 = DFF(n_next0)
ff_state1 = DFF(n_next1)
n_a = AND(t_in0, clk_en)
n_b = OR(t_in1, mode)
n_c = XOR(t_in2, t_in3)
n_d = NAND(n_a, ff_state0)
n_e = NOR(n_b, ff_state1)
n_next0 = XOR(n_d, n_c)
n_next1 = AND(n_e, n_c)
n_out = OR(n_d, n_e)
OUTPUT(status) = n_out
TSV_OUT(t_out0) = n_d
TSV_OUT(t_out1) = n_e
TSV_OUT(t_out2) = n_next0
`
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	body, _ := json.Marshal(JobRequest{Netlist: tiny, Seed: 7, Method: "ours", Timing: "loose"})
	code, st, raw := postJob(t, ts, string(body))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, raw)
	}
	fin := waitJob(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("tiny die ended %s: %s", fin.State, fin.Error)
	}
	if !strings.HasPrefix(fin.Result.Die.Name, "bench:") || fin.Result.Die.InboundTSVs != 4 {
		t.Errorf("report die = %+v", fin.Result.Die)
	}

	body, _ = json.Marshal(JobRequest{Netlist: "not a netlist at all"})
	if code, _, raw := postJob(t, ts, string(body)); code != http.StatusBadRequest {
		t.Errorf("garbage netlist = %d (%s), want 400 at submit", code, raw)
	}
}

// TestValidation covers the 400/404/405 surfaces.
func TestValidation(t *testing.T) {
	_, ts := newTestServer(t, hookConfig(t, 1, 4, nil))
	for _, body := range []string{
		`{"profile":"nope/9"}`,
		`{"profile":"b11/0","netlist":"x"}`,
		`{}`,
		`{"profile":"b11/0","method":"mystery"}`,
		`{"profile":"b11/0","timing":"sideways"}`,
		`{"profile":"b11/0","budget":"maximal"}`,
		`{"unknown_field":1}`,
		`{broken json`,
	} {
		if code, _, raw := postJob(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("body %s = %d (%s), want 400", body, code, raw)
		}
	}
	if code := getJSON(t, ts, "/v1/jobs/j-000042", nil); code != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", code)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("list jobs = %d", resp.StatusCode)
	}
}

// TestJobsList: the list endpoint returns jobs oldest first with stable IDs.
func TestJobsList(t *testing.T) {
	_, ts := newTestServer(t, hookConfig(t, 2, 8, nil))
	var want []string
	for i := 0; i < 3; i++ {
		_, st, _ := postJob(t, ts, fmt.Sprintf(`{"profile":"b11/0","seed":%d}`, i+1))
		want = append(want, st.ID)
		waitJob(t, ts, st.ID)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	getJSON(t, ts, "/v1/jobs", &list)
	if len(list.Jobs) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(list.Jobs))
	}
	for i, st := range list.Jobs {
		if st.ID != want[i] {
			t.Errorf("jobs[%d] = %s, want %s", i, st.ID, want[i])
		}
	}
}

func TestPoolSubmitAfterShutdown(t *testing.T) {
	p := newPool(1, 1)
	if err := p.shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := p.trySubmit(func(context.Context) {}); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("trySubmit after shutdown = %v, want ErrShuttingDown", err)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Microsecond) // <= 1ms bucket
	h.Observe(3 * time.Millisecond)   // <= 5ms bucket
	h.Observe(2 * time.Minute)        // overflow
	s := h.snapshot()
	if s.Count != 3 || s.SumMS < 120000 {
		t.Fatalf("snapshot = %+v", s)
	}
	if last := s.Buckets[len(s.Buckets)-1]; last.LeMS != -1 || last.Count != 3 {
		t.Errorf("overflow bucket = %+v", last)
	}
	if first := s.Buckets[0]; first.LeMS != 1 || first.Count != 1 {
		t.Errorf("first bucket = %+v", first)
	}
}
