package service

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"wcm3d"
)

// TestJobRefineFlag runs a real job with solver-portfolio refinement
// requested via the refine=true query parameter, together with independent
// verification, and expects a RefineReport on the result whose refined
// plan is never worse than greedy — and, when an improvement landed, the
// refine counters to agree with it.
func TestJobRefineFlag(t *testing.T) {
	svc, ts := newTestServer(t, hookConfig(t, 1, 4, nil))
	resp, err := http.Post(ts.URL+"/v1/jobs?refine=true&verify=true", "application/json",
		strings.NewReader(`{"profile": "b11/0", "timeout_ms": 30000}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var jobs struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if code := getJSON(t, ts, "/v1/jobs", &jobs); code != http.StatusOK || len(jobs.Jobs) == 0 {
		t.Fatalf("list jobs: status %d, %d jobs", code, len(jobs.Jobs))
	}
	if !jobs.Jobs[0].Request.Refine {
		t.Fatal("refine=true query parameter did not set the request flag")
	}
	st := waitJob(t, ts, jobs.Jobs[0].ID)
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.Result == nil || st.Result.Refine == nil {
		t.Fatal("result carries no refine report")
	}
	rr := st.Result.Refine
	if rr.AdditionalCells > rr.GreedyCells {
		t.Fatalf("refined plan is worse than greedy: %d > %d cells", rr.AdditionalCells, rr.GreedyCells)
	}
	if rr.Improved != (rr.CellsSaved > 0) {
		t.Fatalf("improved=%v but cells_saved=%d", rr.Improved, rr.CellsSaved)
	}
	// A 30 s timeout leaves the stage far above the funding floor, so the
	// report must show a real budget and no skip.
	if rr.Skipped {
		t.Fatal("refine stage skipped despite an ample deadline")
	}
	if rr.FundedMS < MinRefineBudget.Milliseconds() {
		t.Fatalf("funded budget %dms is below the %v floor", rr.FundedMS, MinRefineBudget)
	}
	// The report must describe the plan that actually shipped: after an
	// improvement the job-level cell count is the refined one.
	if st.Result.AdditionalCells != rr.AdditionalCells {
		t.Fatalf("report cells %d != refine cells %d", st.Result.AdditionalCells, rr.AdditionalCells)
	}
	// The shipped plan — refined or not — passed independent verification.
	if st.Result.Verify == nil || !st.Result.Verify.OK {
		t.Fatalf("shipped plan failed verification: %+v", st.Result.Verify)
	}
	var snap MetricsSnapshot
	if code := getJSON(t, ts, "/metrics", &snap); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if snap.LatencyMS[StageRefine.String()].Count == 0 {
		t.Fatal("refine stage latency was not observed")
	}
	wantImproved := int64(0)
	if rr.Improved {
		wantImproved = 1
	}
	if snap.Refine.Improved != wantImproved || snap.Refine.CellsSaved != int64(rr.CellsSaved) {
		t.Fatalf("refine counters = %+v, want improved=%d cells_saved=%d",
			snap.Refine, wantImproved, rr.CellsSaved)
	}
	_ = svc
}

// TestJobRefineSkipsThresholdFreeMethods asserts that refine=true on a
// method without a threshold contract (li) is a clean no-op: the job
// succeeds and the result simply carries no refine report.
func TestJobRefineSkipsThresholdFreeMethods(t *testing.T) {
	_, ts := newTestServer(t, hookConfig(t, 1, 4, nil))
	code, st, raw := postJob(t, ts, `{"profile": "b11/0", "method": "li", "refine": true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%s)", code, raw)
	}
	done := waitJob(t, ts, st.ID)
	if done.State != StateDone {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}
	if done.Result == nil {
		t.Fatal("job carries no result")
	}
	if done.Result.Refine != nil {
		t.Fatal("threshold-free method produced a refine report")
	}
}

// TestRefineFunding pins the stage-funding policy: half the remaining
// deadline when that clears the floor, an explicit skip (never a negative
// budget, never the 2 s default) when it does not, and the portfolio
// default when the job has no deadline at all.
func TestRefineFunding(t *testing.T) {
	cases := []struct {
		name     string
		deadline time.Duration // 0 = no deadline
		wantOK   bool
		minFund  time.Duration
		maxFund  time.Duration
	}{
		{"no deadline", 0, true, wcm3d.DefaultRefineBudget, wcm3d.DefaultRefineBudget},
		{"ample deadline", 10 * time.Second, true, 4 * time.Second, 5 * time.Second},
		{"just above floor", 2 * MinRefineBudget * 2, true, MinRefineBudget, 2 * MinRefineBudget},
		{"below floor", MinRefineBudget, false, 0, MinRefineBudget / 2},
		{"expired deadline", -time.Second, false, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			if tc.deadline != 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithDeadline(ctx, time.Now().Add(tc.deadline))
				defer cancel()
			}
			funded, ok := refineFunding(ctx)
			if ok != tc.wantOK {
				t.Fatalf("funded=%v ok=%v, want ok=%v", funded, ok, tc.wantOK)
			}
			if funded < tc.minFund || funded > tc.maxFund {
				t.Fatalf("funded=%v outside [%v, %v]", funded, tc.minFund, tc.maxFund)
			}
		})
	}
}
