package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"wcm3d"
)

// tsvName returns the landing-pad name of the i-th inbound TSV on the
// shared b11/Die0 die. Spare insertion only adds sites, so the same names
// resolve on a spared preparation of the same profile and seed.
func tsvName(t *testing.T, i int) string {
	t.Helper()
	n := sharedDie(t).Netlist
	ids := n.InboundTSVs()
	if i >= len(ids) {
		t.Fatalf("die has only %d inbound TSVs", len(ids))
	}
	return n.NameOf(ids[i])
}

func mustDecode(t *testing.T, body string, v any) {
	t.Helper()
	if err := json.Unmarshal([]byte(body), v); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
}

// TestReplanEndToEnd drives the full incremental path over HTTP: a spared
// job, two sequential single-fault deltas, spare accounting, the job's
// replan counter and the replan metrics section.
func TestReplanEndToEnd(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	code, st, raw := postJob(t, ts,
		`{"profile":"b11/0","seed":1,"method":"ours","spares":{"inbound":2,"outbound":2}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, raw)
	}
	if fin := waitJob(t, ts, st.ID); fin.State != StateDone {
		t.Fatalf("job ended %s: %s", fin.State, fin.Error)
	}

	var rs ReplanStatus
	code, body := postRaw(t, ts, "/v1/jobs/"+st.ID+"/replan",
		fmt.Sprintf(`{"faults":[{"kind":"stuck0","tsv":%q}]}`, tsvName(t, 0)))
	if code != http.StatusOK {
		t.Fatalf("replan 1: %d %s", code, body)
	}
	mustDecode(t, body, &rs)
	if rs.JobID != st.ID || rs.Seq != 1 || len(rs.Repairs) != 1 {
		t.Fatalf("replan 1 status = %+v", rs)
	}
	if rs.Repairs[0].Failed != tsvName(t, 0) || !strings.HasPrefix(rs.Repairs[0].Spare, "spare_in") {
		t.Fatalf("repair = %+v, want inbound spare promotion", rs.Repairs[0])
	}
	if rs.SparesLeft.Inbound != 1 || rs.SparesLeft.Outbound != 2 {
		t.Fatalf("spares left = %+v, want 1 in / 2 out", rs.SparesLeft)
	}
	if rs.ReusedFFs+rs.AdditionalCells == 0 {
		t.Fatalf("implausible replanned totals: %+v", rs)
	}

	code, body = postRaw(t, ts, "/v1/jobs/"+st.ID+"/replan",
		fmt.Sprintf(`{"faults":[{"kind":"open","tsv":%q}]}`, tsvName(t, 1)))
	if code != http.StatusOK {
		t.Fatalf("replan 2: %d %s", code, body)
	}
	mustDecode(t, body, &rs)
	if rs.Seq != 2 || rs.SparesLeft.Inbound != 0 {
		t.Fatalf("replan 2 status = %+v, want seq 2 and inbound spares exhausted", rs)
	}

	var js JobStatus
	if code := getJSON(t, ts, "/v1/jobs/"+st.ID, &js); code != http.StatusOK || js.Replans != 2 {
		t.Fatalf("job status: code %d replans %d, want 2", code, js.Replans)
	}
	if got := svc.metrics.ReplansDone.Load(); got != 2 {
		t.Fatalf("replans_done = %d, want 2", got)
	}

	// Third fault: inbound spares are gone, the delta must change nothing.
	code, body = postRaw(t, ts, "/v1/jobs/"+st.ID+"/replan",
		fmt.Sprintf(`{"faults":[{"kind":"stuck1","tsv":%q}]}`, tsvName(t, 2)))
	if code != http.StatusConflict {
		t.Fatalf("exhausted spares: %d %s, want 409", code, body)
	}
	if code := getJSON(t, ts, "/v1/jobs/"+st.ID, &js); code != http.StatusOK || js.Replans != 2 {
		t.Fatalf("failed replan must not advance history: replans %d", js.Replans)
	}
	if got := svc.metrics.ReplansFailed.Load(); got != 1 {
		t.Fatalf("replans_failed = %d, want 1", got)
	}
}

// TestReplanErrorPaths pins every documented failure status of the replan
// endpoint. One spared done job, one spare-less done job, one fullwrap
// done job and one canceled job serve as targets.
func TestReplanErrorPaths(t *testing.T) {
	block := make(chan struct{})
	var once bool
	_, ts := newTestServer(t, hookConfig(t, 2, 8, func(ctx context.Context, spec DieSpec) error {
		if spec.Seed == 99 && !once {
			once = true
			select {
			case <-block:
			case <-ctx.Done():
			}
		}
		return nil
	}))

	submit := func(body string) string {
		t.Helper()
		code, st, raw := postJob(t, ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: %d %s", body, code, raw)
		}
		return st.ID
	}
	done := submit(`{"profile":"b11/0","seed":1,"method":"ours"}`)
	fullwrap := submit(`{"profile":"b11/0","seed":1,"method":"fullwrap"}`)
	waitJob(t, ts, done)
	waitJob(t, ts, fullwrap)

	// A job stuck in prepare, then canceled: replans against non-done
	// states (running, canceled) are conflicts.
	racing := submit(`{"profile":"b11/1","seed":99,"method":"ours"}`)
	time.Sleep(20 * time.Millisecond)
	valid := fmt.Sprintf(`{"faults":[{"kind":"stuck0","tsv":%q}]}`, tsvName(t, 0))
	if code, body := postRaw(t, ts, "/v1/jobs/"+racing+"/replan", valid); code != http.StatusConflict {
		t.Fatalf("replan on running job: %d %s, want 409", code, body)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+racing, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	close(block)
	waitJob(t, ts, racing)

	var big strings.Builder
	big.WriteString(`{"faults":[`)
	for i := 0; i <= MaxReplanFaults; i++ {
		if i > 0 {
			big.WriteString(",")
		}
		fmt.Fprintf(&big, `{"kind":"stuck0","tsv":"t%d"}`, i)
	}
	big.WriteString(`]}`)

	cases := []struct {
		name, id, body string
		want           int
	}{
		{"unknown job", "j-999999", valid, http.StatusNotFound},
		{"oversized delta", done, big.String(), http.StatusRequestEntityTooLarge},
		{"empty delta", done, `{"faults":[]}`, http.StatusBadRequest},
		{"malformed kind", done, `{"faults":[{"kind":"gamma","tsv":"x"}]}`, http.StatusBadRequest},
		{"unknown field", done, `{"faults":[],"nope":1}`, http.StatusBadRequest},
		{"nonexistent TSV", done, `{"faults":[{"kind":"stuck0","tsv":"no_such_tsv"}]}`, http.StatusBadRequest},
		{"bridge without partner", done, fmt.Sprintf(`{"faults":[{"kind":"bridge","tsv":%q}]}`, tsvName(t, 0)), http.StatusBadRequest},
		{"method without replan", fullwrap, valid, http.StatusBadRequest},
		{"no spare sites", done, valid, http.StatusConflict},
		{"canceled job", racing, valid, http.StatusConflict},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postRaw(t, ts, "/v1/jobs/"+tc.id+"/replan", tc.body)
			if code != tc.want {
				t.Fatalf("%s: got %d %s, want %d", tc.name, code, body, tc.want)
			}
		})
	}
}

// TestReplanEvictedDie pins the 410 contract: once the prepared die leaves
// the LRU, a replan refuses to hide a multi-second re-prepare behind a
// "lightweight" endpoint and tells the client to resubmit.
func TestReplanEvictedDie(t *testing.T) {
	cfg := hookConfig(t, 1, 4, nil)
	cfg.CacheCapacity = 1
	_, ts := newTestServer(t, cfg)

	code, st, raw := postJob(t, ts, `{"profile":"b11/0","seed":1,"method":"ours"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, raw)
	}
	waitJob(t, ts, st.ID)
	code, st2, raw := postJob(t, ts, `{"profile":"b11/1","seed":1,"method":"ours"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit 2: %d %s", code, raw)
	}
	waitJob(t, ts, st2.ID)

	body := fmt.Sprintf(`{"faults":[{"kind":"stuck0","tsv":%q}]}`, tsvName(t, 0))
	if code, resp := postRaw(t, ts, "/v1/jobs/"+st.ID+"/replan", body); code != http.StatusGone {
		t.Fatalf("replan after eviction: %d %s, want 410", code, resp)
	}
}

// TestReplanRecoveryReplaysHistory exercises the restart story: a job
// restored from the journal carries its delta history, a replan before the
// die is re-prepared is 410, and once an identical submission re-populates
// the cache the old job's planner rebuilds by replaying the journaled
// deltas — so the next delta sees the spares already consumed.
func TestReplanRecoveryReplaysHistory(t *testing.T) {
	const jobBody = `{"profile":"b11/0","seed":1,"method":"ours","spares":{"inbound":2,"outbound":1}}`
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	rec := Recovery{
		Jobs: []RecoveredJob{{
			ID:          "j-000007",
			Req:         JobRequest{Profile: "b11/0", Seed: 1, Method: "ours", Spares: &wcm3d.SpareSpec{Inbound: 2, Outbound: 1}},
			State:       StateDone,
			Result:      &Report{},
			SubmittedAt: time.Now(),
			FinishedAt:  time.Now(),
			Replans: []ReplanRequest{
				{Faults: []wcm3d.TSVFault{{Kind: wcm3d.TSVStuck0, TSV: tsvName(t, 0)}}},
			},
		}},
		MaxSeq: 7,
	}
	if _, restored, err := svc.Recover(rec); err != nil || restored != 1 {
		t.Fatalf("Recover: restored %d err %v", restored, err)
	}
	if got := svc.metrics.ReplansRecovered.Load(); got != 1 {
		t.Fatalf("replans_recovered = %d, want 1", got)
	}
	var js JobStatus
	if code := getJSON(t, ts, "/v1/jobs/j-000007", &js); code != http.StatusOK || js.Replans != 1 {
		t.Fatalf("restored job: code %d replans %d, want 1", code, js.Replans)
	}

	next := fmt.Sprintf(`{"faults":[{"kind":"open","tsv":%q}]}`, tsvName(t, 1))
	if code, body := postRaw(t, ts, "/v1/jobs/j-000007/replan", next); code != http.StatusGone {
		t.Fatalf("replan before re-prepare: %d %s, want 410", code, body)
	}

	// An identical submission re-prepares the die under the same cache key.
	code, st, raw := postJob(t, ts, jobBody)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: %d %s", code, raw)
	}
	waitJob(t, ts, st.ID)

	code, body := postRaw(t, ts, "/v1/jobs/j-000007/replan", next)
	if code != http.StatusOK {
		t.Fatalf("replan after re-prepare: %d %s", code, body)
	}
	var rs ReplanStatus
	mustDecode(t, body, &rs)
	if rs.Seq != 2 || rs.SparesLeft.Inbound != 0 {
		t.Fatalf("replayed history not reflected: %+v (want seq 2, 0 inbound spares left)", rs)
	}
}
