package service

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"time"
)

// ErrJournal wraps write-ahead-log failures on the submission path. A
// submission that cannot be made durable is refused outright — the HTTP
// layer maps it to 500 — because accepting it would silently downgrade the
// daemon's crash-recovery contract.
var ErrJournal = errors.New("service: journal write failed")

// Journal records job lifecycle transitions durably so they survive a
// crash. internal/wal provides the production implementation (a segmented,
// CRC-framed, fsync-per-record log); a nil Journal — the single-node
// default — disables durability and leaves the service byte-identical to
// its pre-WAL behavior.
//
// Implementations must be safe for concurrent use and should stamp their
// own record times. Submit must not return until the record is durable;
// Start/Finish/Cancel failures are surfaced to the caller but treated as
// non-fatal by the service (counted in wal_errors and logged).
type Journal interface {
	// Submit records an accepted job and its full request.
	Submit(id string, req JobRequest) error
	// Start records that a worker (local or a stealing peer) picked the
	// job up. A job with a start but no finish replays as orphaned.
	Start(id string) error
	// Finish records a terminal transition with its result (nil unless the
	// job succeeded).
	Finish(id string, state, errMsg string, result *Report) error
	// Cancel records a queued job canceled before it ever ran.
	Cancel(id string) error
}

// ReplanJournal is the optional Journal extension recording applied
// replan deltas (POST /v1/jobs/{id}/replan), so a restart can rebuild a
// job's repair history: the deltas replay into RecoveredJob.Replans, and
// the planner itself is rebuilt lazily by re-applying them on the next
// replan. internal/wal implements it; a Journal without it simply loses
// replan state across restarts (the jobs themselves stay durable).
type ReplanJournal interface {
	// Replan records one applied delta. Only deltas that were actually
	// executed are journaled — a rejected delta changes nothing.
	Replan(id string, delta ReplanRequest) error
}

// RecoveredJob is one job reconstructed from the write-ahead log at boot.
type RecoveredJob struct {
	ID  string
	Req JobRequest
	// Orphaned marks a job that was running (or stolen) when the process
	// died; it is re-queued for re-execution just like a pending one, the
	// flag only feeds the recovery log line.
	Orphaned bool
	// State is the terminal state for a job that finished before the
	// crash ("" for pending/orphaned jobs, which are re-queued). Finished
	// jobs are restored to the job table so clients polling their ids
	// still see the terminal outcome after a restart.
	State       string
	Err         string
	Result      *Report
	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time
	// Replans is the job's applied TSV-repair delta history, in order
	// (journals implementing ReplanJournal; empty otherwise).
	Replans []ReplanRequest
}

// Recovery is what a Journal replays at boot: every job not yet compacted
// away, plus the id watermark that keeps new ids from colliding with ones
// the log has already handed out (including compacted ones).
type Recovery struct {
	Jobs []RecoveredJob
	// Batches holds batch sweeps reconstructed from the log (journals
	// implementing BatchJournal; empty otherwise).
	Batches []RecoveredBatch
	// MaxSeq is the highest numeric job-id suffix the log has ever seen.
	MaxSeq int
	// Corrupted counts log segments that ended in a torn or corrupt
	// record during replay (the damaged tail is discarded, earlier
	// records stand).
	Corrupted int
}

// jobSeq extracts the numeric suffix of a "j-%06d" job id (-1 if the id
// does not carry one).
func jobSeq(id string) int {
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		return -1
	}
	n, err := strconv.Atoi(id[i+1:])
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// Recover replays a journal's recovery state into the service: finished
// jobs are restored to the job table with their terminal outcome, pending
// and orphaned jobs are re-queued for execution under their original ids,
// and the id sequence is advanced past everything the log has seen. It
// returns how many jobs were re-queued and how many terminal jobs were
// restored. Call it once, after New and before serving traffic.
func (s *Service) Recover(rec Recovery) (requeued, restored int, err error) {
	var feed []*job
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, 0, ErrShuttingDown
	}
	if rec.MaxSeq > s.seq {
		s.seq = rec.MaxSeq
	}
	for _, r := range rec.Jobs {
		if _, dup := s.jobs[r.ID]; dup || r.ID == "" {
			continue
		}
		if n := jobSeq(r.ID); n > s.seq {
			s.seq = n
		}
		j, rerr := func() (*job, error) {
			s.mu.Unlock()
			defer s.mu.Lock()
			return s.resolve(r.Req)
		}()
		if rerr != nil {
			s.logf("wcmd: recovery: job %s request no longer valid, dropping: %v", r.ID, rerr)
			continue
		}
		j.id = r.ID
		j.submitted = r.SubmittedAt
		if j.submitted.IsZero() {
			j.submitted = time.Now()
		}
		if len(r.Replans) > 0 {
			// The repair history survives the restart; the planner itself
			// is rebuilt lazily by replaying it on the next replan.
			j.replans = append([]ReplanRequest(nil), r.Replans...)
			s.metrics.ReplansRecovered.Add(int64(len(r.Replans)))
		}
		if r.State != "" { // finished before the crash: restore, don't run
			j.state = r.State
			if r.Err != "" {
				j.err = errors.New(r.Err)
			}
			j.result = r.Result
			if !r.StartedAt.IsZero() {
				t := r.StartedAt
				j.started = &t
			}
			ft := r.FinishedAt
			if ft.IsZero() {
				ft = time.Now()
			}
			j.finished = &ft
			s.jobs[j.id] = j
			restored++
			s.metrics.JobsRecovered.Add(1)
			continue
		}
		j.state = StateQueued
		s.jobs[j.id] = j
		feed = append(feed, j)
		requeued++
		s.metrics.JobsRecovered.Add(1)
		s.metrics.JobsQueued.Add(1)
		if r.Orphaned {
			s.logf("wcmd: recovery: job %s was running at crash time, re-queued for re-execution", r.ID)
		}
	}
	s.mu.Unlock()
	if len(feed) > 0 {
		go s.feedRecovered(feed)
	}
	brq, brs := s.recoverBatches(rec.Batches)
	return requeued + brq, restored + brs, nil
}

// feedRecovered pushes recovered jobs into the bounded pool queue. The
// queue may be smaller than the backlog, so full-queue rejections are
// retried as workers drain it; the loop ends when every job is enqueued or
// the service shuts down (whatever is left stays journaled for the next
// boot).
func (s *Service) feedRecovered(feed []*job) {
	for _, j := range feed {
		j := j
		for {
			s.mu.Lock()
			state := j.state
			s.mu.Unlock()
			if state != StateQueued { // canceled while waiting for a slot
				break
			}
			err := s.pool.trySubmit(func(ctx context.Context) { s.runJob(ctx, j) })
			if err == nil {
				break
			}
			if errors.Is(err, ErrShuttingDown) {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// journalFinish writes a job's terminal record after the state transition
// committed. Callers must NOT hold s.mu (the journal fsyncs). Abandoned
// jobs (drain cut short) are deliberately not journaled so they replay as
// pending on the next boot.
func (s *Service) journalFinish(j *job) {
	if s.cfg.Journal == nil || j.remoteOrigin {
		return
	}
	s.mu.Lock()
	state, abandoned, started := j.state, j.abandoned, j.started != nil
	var errMsg string
	if j.err != nil {
		errMsg = j.err.Error()
	}
	rep := j.result
	s.mu.Unlock()
	if abandoned {
		return
	}
	var err error
	switch {
	case state == StateCanceled && !started:
		err = s.cfg.Journal.Cancel(j.id)
	case state == StateDone || state == StateFailed || state == StateCanceled:
		err = s.cfg.Journal.Finish(j.id, state, errMsg, rep)
	default:
		return
	}
	if err != nil {
		s.metrics.WALErrors.Add(1)
		s.logf("wcmd: journal finish %s: %v", j.id, err)
	}
}

// journalReplan records one applied replan delta; non-fatal on failure
// (like Start/Finish — the replan already executed, a lost record only
// costs replay fidelity after the next restart). Journals without the
// ReplanJournal extension skip the record.
func (s *Service) journalReplan(id string, delta ReplanRequest) {
	if s.cfg.Journal == nil {
		return
	}
	rj, ok := s.cfg.Journal.(ReplanJournal)
	if !ok {
		return
	}
	if err := rj.Replan(id, delta); err != nil {
		s.metrics.WALErrors.Add(1)
		s.logf("wcmd: journal replan %s: %v", id, err)
	}
}

// journalStart records that a job began executing; non-fatal on failure.
func (s *Service) journalStart(id string) {
	if s.cfg.Journal == nil {
		return
	}
	if err := s.cfg.Journal.Start(id); err != nil {
		s.metrics.WALErrors.Add(1)
		s.logf("wcmd: journal start %s: %v", id, err)
	}
}

// logf routes service log lines through Config.Logf (discarded when nil so
// library users and tests stay silent by default).
func (s *Service) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
