package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"wcm3d"
	"wcm3d/internal/batch"
)

// maxBatchDies caps how many dies one batch may name; the full Table II
// sweep is 24, so the cap leaves room for multi-seed sweeps without
// letting a single request monopolize the daemon for hours.
const maxBatchDies = 64

// BatchRequest is the body of POST /v1/batches: a multi-die sweep run
// through the streaming batch engine (internal/batch), riding the
// prepared-die cache. Exactly one of All, Circuit or Profiles selects
// the dies.
type BatchRequest struct {
	// All runs the full 24-die Table II sweep.
	All bool `json:"all,omitempty"`
	// Circuit expands to one benchmark family's four dies ("b12").
	Circuit string `json:"circuit,omitempty"`
	// Profiles lists individual Table II dies ("b12/1").
	Profiles []string `json:"profiles,omitempty"`
	// Seed drives generation and placement for every die (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Method is ours | agrawal | li | fullwrap (default ours).
	Method string `json:"method,omitempty"`
	// Timing is tight | loose (default tight).
	Timing string `json:"timing,omitempty"`
	// Verify asks for independent plan verification per die.
	Verify bool `json:"verify,omitempty"`
	// MaxInFlight bounds how many dies are resident at once — the batch
	// memory budget (default 2, capped at 8).
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// TimeoutMS bounds the whole batch once it starts running; clamped to
	// the server's MaxTimeout cap, which applies outright when 0.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Per-die states inside a batch (jobs reuse the service-wide states).
const (
	BatchDiePending = "pending"
	BatchDieDone    = "done"
	BatchDieFailed  = "failed"
)

// BatchDie is one die's progress inside a batch.
type BatchDie struct {
	Die   string `json:"die"`
	Seed  int64  `json:"seed"`
	State string `json:"state"`
	// Plan headline numbers, set once the die is done.
	ReusedFFs       int    `json:"reused_ffs,omitempty"`
	AdditionalCells int    `json:"additional_cells,omitempty"`
	Error           string `json:"error,omitempty"`
	PrepareMS       int64  `json:"prepare_ms,omitempty"`
	SolveMS         int64  `json:"solve_ms,omitempty"`
}

// BatchStatus is the JSON view of a batch, returned by POST /v1/batches
// and GET /v1/batches/{id}.
type BatchStatus struct {
	ID      string       `json:"id"`
	State   string       `json:"state"`
	Request BatchRequest `json:"request"`
	// Total/Completed/Failed summarize progress for cheap polling; Dies
	// carries the per-die detail.
	Total       int        `json:"total"`
	Completed   int        `json:"completed"`
	Failed      int        `json:"failed"`
	Dies        []BatchDie `json:"dies"`
	Error       string     `json:"error,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// BatchJournal extends Journal with batch lifecycle records. The service
// type-asserts it off Config.Journal, so Journal implementations that
// predate batches keep compiling — they simply leave batches non-durable.
type BatchJournal interface {
	// SubmitBatch records an accepted batch and its full request.
	SubmitBatch(id string, req BatchRequest) error
	// FinishBatch records a batch's terminal transition. Per-die progress
	// is deliberately not journaled: a replayed pending batch re-runs
	// from scratch, idempotently, against a warm die cache.
	FinishBatch(id string, state, errMsg string) error
}

// RecoveredBatch is one batch reconstructed from the write-ahead log at
// boot. State is "" for a pending batch (re-run) or the terminal state
// for one that finished before the crash (restored for pollers).
type RecoveredBatch struct {
	ID          string
	Req         BatchRequest
	State       string
	Err         string
	SubmittedAt time.Time
	FinishedAt  time.Time
}

// batchRun is the in-memory state of one batch.
type batchRun struct {
	id          string
	state       string
	req         BatchRequest
	specs       []batch.Spec
	method      wcm3d.Method
	mode        wcm3d.TimingMode
	maxInFlight int
	dies        []BatchDie
	completed   int
	failed      int
	err         error
	cancel      context.CancelFunc
	submitted   time.Time
	started     *time.Time
	finished    *time.Time
	// abandoned mirrors job semantics: a batch cut off by the shutdown
	// drain deadline is not finalized in the WAL, so the next boot
	// replays it instead of losing it.
	abandoned bool
}

// resolveBatch validates a request and expands its die selection.
func (s *Service) resolveBatch(req BatchRequest) (*batchRun, error) {
	b := &batchRun{req: req}
	selections := 0
	var profiles []wcm3d.Profile
	if req.All {
		selections++
		profiles = wcm3d.ITC99Profiles()
	}
	if req.Circuit != "" {
		selections++
		profiles = wcm3d.CircuitProfiles(req.Circuit)
		if len(profiles) == 0 {
			return nil, fmt.Errorf("unknown circuit %q", req.Circuit)
		}
	}
	if len(req.Profiles) > 0 {
		selections++
		profiles = profiles[:0]
		for _, name := range req.Profiles {
			p, err := wcm3d.ProfileByName(name)
			if err != nil {
				return nil, err
			}
			profiles = append(profiles, p)
		}
	}
	if selections != 1 {
		return nil, errors.New("pass exactly one of all, circuit or profiles")
	}
	if len(profiles) > maxBatchDies {
		return nil, fmt.Errorf("batch names %d dies, cap is %d", len(profiles), maxBatchDies)
	}
	if req.Seed == 0 {
		req.Seed = 1
		b.req.Seed = 1
	}
	m := req.Method
	if m == "" {
		m = "ours"
	}
	method, err := wcm3d.ParseMethod(m)
	if err != nil {
		return nil, err
	}
	b.method = method
	tm := req.Timing
	if tm == "" {
		tm = "tight"
	}
	mode, err := wcm3d.ParseTimingMode(tm)
	if err != nil {
		return nil, err
	}
	b.mode = mode
	switch {
	case req.MaxInFlight < 0 || req.MaxInFlight > 8:
		return nil, fmt.Errorf("max_in_flight must be in [0,8], got %d", req.MaxInFlight)
	case req.MaxInFlight == 0:
		b.maxInFlight = 2
	default:
		b.maxInFlight = req.MaxInFlight
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeout_ms must be >= 0, got %d", req.TimeoutMS)
	}
	b.specs = make([]batch.Spec, len(profiles))
	b.dies = make([]BatchDie, len(profiles))
	for i, p := range profiles {
		b.specs[i] = batch.Spec{Profile: p, Seed: req.Seed}
		b.dies[i] = BatchDie{Die: p.Name(), Seed: req.Seed, State: BatchDiePending}
	}
	return b, nil
}

// batchJournal returns the journal's batch extension, if it has one.
func (s *Service) batchJournal() BatchJournal {
	if s.cfg.Journal == nil {
		return nil
	}
	bj, _ := s.cfg.Journal.(BatchJournal)
	return bj
}

// SubmitBatch validates req and queues the batch as one unit of pool
// work, sharing the job queue's admission control: a full queue returns
// ErrQueueFull (HTTP 429) exactly like job submissions.
func (s *Service) SubmitBatch(req BatchRequest) (BatchStatus, error) {
	b, err := s.resolveBatch(req)
	if err != nil {
		return BatchStatus{}, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return BatchStatus{}, ErrShuttingDown
	}
	s.seq++
	b.id = fmt.Sprintf("b-%06d", s.seq)
	b.state = StateQueued
	b.submitted = time.Now()
	s.batches[b.id] = b
	s.gcLocked(time.Now())
	s.mu.Unlock()

	if bj := s.batchJournal(); bj != nil {
		if err := bj.SubmitBatch(b.id, b.req); err != nil {
			s.mu.Lock()
			delete(s.batches, b.id)
			s.mu.Unlock()
			s.metrics.WALErrors.Add(1)
			return BatchStatus{}, fmt.Errorf("%w: %v", ErrJournal, err)
		}
	}
	if err := s.pool.trySubmit(func(ctx context.Context) { s.runBatch(ctx, b) }); err != nil {
		s.mu.Lock()
		delete(s.batches, b.id)
		s.mu.Unlock()
		if errors.Is(err, ErrQueueFull) {
			s.metrics.BatchesRejected.Add(1)
		}
		if bj := s.batchJournal(); bj != nil {
			// Neutralize the submit record: the client was refused, so the
			// batch must not rise from the log on the next boot.
			if jerr := bj.FinishBatch(b.id, StateCanceled, "rejected at admission"); jerr != nil {
				s.metrics.WALErrors.Add(1)
				s.logf("wcmd: journal finish %s after rejection: %v", b.id, jerr)
			}
		}
		return BatchStatus{}, err
	}
	return s.batchStatus(b), nil
}

// Batch returns the status of one batch.
func (s *Service) Batch(id string) (BatchStatus, bool) {
	s.mu.Lock()
	b, ok := s.batches[id]
	s.mu.Unlock()
	if !ok {
		return BatchStatus{}, false
	}
	return s.batchStatus(b), true
}

// Batches lists every retained batch, oldest first.
func (s *Service) Batches() []BatchStatus {
	s.mu.Lock()
	bs := make([]*batchRun, 0, len(s.batches))
	for _, b := range s.batches {
		bs = append(bs, b)
	}
	s.mu.Unlock()
	sort.Slice(bs, func(a, b int) bool { return bs[a].id < bs[b].id })
	out := make([]BatchStatus, 0, len(bs))
	for _, b := range bs {
		out = append(out, s.batchStatus(b))
	}
	return out
}

// CancelBatch cancels a batch: queued batches are finalized before they
// start, a running batch's context is cancelled so its pipeline stops at
// the next die boundary. It reports whether the id was known.
func (s *Service) CancelBatch(id string) (BatchStatus, bool) {
	s.mu.Lock()
	b, ok := s.batches[id]
	if !ok {
		s.mu.Unlock()
		return BatchStatus{}, false
	}
	canceledQueued := false
	switch b.state {
	case StateQueued:
		s.finishBatchLocked(b, StateCanceled, context.Canceled)
		canceledQueued = true
	case StateRunning:
		if b.cancel != nil {
			b.cancel()
		}
	}
	s.mu.Unlock()
	if canceledQueued {
		s.journalBatchFinish(b)
	}
	return s.batchStatus(b), true
}

// batchStatus snapshots a batch under the service lock.
func (s *Service) batchStatus(b *batchRun) BatchStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := BatchStatus{
		ID:          b.id,
		State:       b.state,
		Request:     b.req,
		Total:       len(b.dies),
		Completed:   b.completed,
		Failed:      b.failed,
		Dies:        append([]BatchDie(nil), b.dies...),
		SubmittedAt: b.submitted,
		StartedAt:   b.started,
		FinishedAt:  b.finished,
	}
	if b.err != nil {
		st.Error = b.err.Error()
	}
	return st
}

// finishBatchLocked moves a batch to a terminal state; callers hold s.mu.
func (s *Service) finishBatchLocked(b *batchRun, state string, err error) {
	if b.state == StateDone || b.state == StateFailed || b.state == StateCanceled {
		return
	}
	b.state = state
	b.err = err
	now := time.Now()
	b.finished = &now
	switch state {
	case StateDone:
		s.metrics.BatchesDone.Add(1)
	case StateFailed:
		s.metrics.BatchesFailed.Add(1)
	case StateCanceled:
		s.metrics.BatchesCanceled.Add(1)
	}
}

// journalBatchFinish writes a batch's terminal record after the state
// transition committed. Callers must NOT hold s.mu (the journal fsyncs).
// Abandoned batches are deliberately not journaled so they replay as
// pending on the next boot.
func (s *Service) journalBatchFinish(b *batchRun) {
	bj := s.batchJournal()
	if bj == nil {
		return
	}
	s.mu.Lock()
	state, abandoned := b.state, b.abandoned
	var errMsg string
	if b.err != nil {
		errMsg = b.err.Error()
	}
	s.mu.Unlock()
	if abandoned {
		return
	}
	switch state {
	case StateDone, StateFailed, StateCanceled:
	default:
		return
	}
	if err := bj.FinishBatch(b.id, state, errMsg); err != nil {
		s.metrics.WALErrors.Add(1)
		s.logf("wcmd: journal batch finish %s: %v", b.id, err)
	}
}

// observeBatchDie folds one die's pipeline outcome into the batch's
// progress view; called from the engine's workers mid-run.
func (s *Service) observeBatchDie(b *batchRun, dr batch.DieResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := &b.dies[dr.Index]
	d.PrepareMS = dr.PrepareDur.Milliseconds()
	d.SolveMS = dr.SolveDur.Milliseconds()
	switch {
	case dr.Err == nil:
		d.State = BatchDieDone
		d.ReusedFFs = dr.Result.ReusedFFs
		d.AdditionalCells = dr.Result.AdditionalCells
		b.completed++
	case errors.Is(dr.Err, context.Canceled) || errors.Is(dr.Err, context.DeadlineExceeded):
		// A die cut off by batch cancellation stays pending — it did not
		// fail on its own merits.
		d.State = BatchDiePending
	default:
		d.State = BatchDieFailed
		d.Error = dr.Err.Error()
		b.failed++
	}
}

// runBatch executes one batch on a pool worker under the batch's own
// deadline. The batch occupies a single pool slot; its internal pipeline
// (1 prepare + 1 solve worker, MaxInFlight resident dies) overlaps the
// next die's preparation with the current die's solve without
// oversubscribing the pool.
func (s *Service) runBatch(poolCtx context.Context, b *batchRun) {
	s.mu.Lock()
	if b.state != StateQueued { // canceled while queued
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithTimeout(poolCtx, s.effectiveTimeout(b.req.TimeoutMS))
	b.cancel = cancel
	b.state = StateRunning
	now := time.Now()
	b.started = &now
	s.mu.Unlock()
	defer cancel()

	s.metrics.BatchesActive.Add(1)
	start := time.Now()
	_, err := batch.Run(ctx, b.specs, batch.Config{
		Method:         b.method,
		Mode:           b.mode,
		Verify:         b.req.Verify,
		PrepareWorkers: 1,
		SolveWorkers:   1,
		MaxInFlight:    b.maxInFlight,
		Prepare: func(ctx context.Context, spec batch.Spec) (*wcm3d.Die, error) {
			// Ride the shared prepared-die cache: a die another job (or an
			// earlier batch) already built is reused, and concurrent
			// requests for the same die single-flight.
			name := spec.Profile.Name()
			return s.dies.get(ctx, DieKey{Name: name, Seed: spec.Seed},
				s.preparer(DieSpec{Profile: spec.Profile, Name: name, Seed: spec.Seed}))
		},
		OnDie: func(dr batch.DieResult) { s.observeBatchDie(b, dr) },
	})
	s.metrics.ObserveOutcome(StageBatch, time.Since(start), err)
	s.metrics.BatchesActive.Add(-1)
	s.metrics.BatchDies.ObserveCount(len(b.specs))

	s.mu.Lock()
	switch {
	case err == nil && b.failed == 0:
		s.finishBatchLocked(b, StateDone, nil)
	case err == nil:
		s.finishBatchLocked(b, StateFailed,
			fmt.Errorf("%d of %d dies failed", b.failed, len(b.dies)))
	case ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		if poolCtx.Err() != nil {
			// The drain deadline expired, not the batch's own deadline or a
			// client cancel: abandon so the WAL replays it on the next boot.
			b.abandoned = true
		}
		s.finishBatchLocked(b, StateCanceled, err)
	default:
		s.finishBatchLocked(b, StateFailed, err)
	}
	s.mu.Unlock()
	s.journalBatchFinish(b)
}

// recoverBatches replays WAL batch state at boot: finished batches are
// restored for pollers, pending ones are re-queued for a fresh run (the
// engine is idempotent and the die cache makes the re-run cheap). Called
// from Recover with s.mu NOT held.
func (s *Service) recoverBatches(recs []RecoveredBatch) (requeued, restored int) {
	var feed []*batchRun
	s.mu.Lock()
	for _, r := range recs {
		if _, dup := s.batches[r.ID]; dup || r.ID == "" {
			continue
		}
		if n := jobSeq(r.ID); n > s.seq {
			s.seq = n
		}
		b, err := func() (*batchRun, error) {
			s.mu.Unlock()
			defer s.mu.Lock()
			return s.resolveBatch(r.Req)
		}()
		if err != nil {
			s.logf("wcmd: recovery: batch %s request no longer valid, dropping: %v", r.ID, err)
			continue
		}
		b.id = r.ID
		b.submitted = r.SubmittedAt
		if b.submitted.IsZero() {
			b.submitted = time.Now()
		}
		if r.State != "" { // finished before the crash: restore, don't run
			b.state = r.State
			if r.Err != "" {
				b.err = errors.New(r.Err)
			}
			// Per-die results are not journaled, but a done batch by
			// definition completed every die — restore the die states so
			// pollers don't read "done, 0 of N". The plan numbers are
			// gone with the crash; re-submitting recomputes them.
			if r.State == StateDone {
				for i := range b.dies {
					b.dies[i].State = BatchDieDone
				}
				b.completed = len(b.dies)
			}
			ft := r.FinishedAt
			if ft.IsZero() {
				ft = time.Now()
			}
			b.finished = &ft
			s.batches[b.id] = b
			restored++
			continue
		}
		b.state = StateQueued
		s.batches[b.id] = b
		feed = append(feed, b)
		requeued++
		s.logf("wcmd: recovery: batch %s re-queued for re-execution (%d dies)", b.id, len(b.specs))
	}
	s.mu.Unlock()
	if len(feed) > 0 {
		go s.feedRecoveredBatches(feed)
	}
	return requeued, restored
}

// feedRecoveredBatches pushes recovered batches into the bounded pool
// queue, retrying full-queue rejections as workers drain it (mirrors
// feedRecovered for jobs).
func (s *Service) feedRecoveredBatches(feed []*batchRun) {
	for _, b := range feed {
		b := b
		for {
			s.mu.Lock()
			state := b.state
			s.mu.Unlock()
			if state != StateQueued { // canceled while waiting for a slot
				break
			}
			err := s.pool.trySubmit(func(ctx context.Context) { s.runBatch(ctx, b) })
			if err == nil {
				break
			}
			if errors.Is(err, ErrShuttingDown) {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// gcBatchesLocked applies the retention policy to finished batches:
// older than RetentionTTL dropped, then the oldest beyond MaxFinished.
// Queued and running batches are never touched. Callers hold s.mu.
func (s *Service) gcBatchesLocked(now time.Time) {
	cutoff := now.Add(-s.cfg.RetentionTTL)
	finished := make([]*batchRun, 0, len(s.batches))
	for id, b := range s.batches {
		if b.finished == nil {
			continue
		}
		if b.finished.Before(cutoff) {
			delete(s.batches, id)
			continue
		}
		finished = append(finished, b)
	}
	n := len(finished) - s.cfg.MaxFinished
	if n <= 0 {
		return
	}
	sort.Slice(finished, func(a, b int) bool {
		fa, fb := finished[a], finished[b]
		if !fa.finished.Equal(*fb.finished) {
			return fa.finished.Before(*fb.finished)
		}
		return fa.id < fb.id
	})
	for _, b := range finished[:n] {
		delete(s.batches, b.id)
	}
}

// HTTP handlers.

func (s *Service) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	st, err := s.SubmitBatch(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case errors.Is(err, ErrJournal):
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		w.Header().Set("Location", "/v1/batches/"+st.ID)
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Service) handleBatches(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Batches []BatchStatus `json:"batches"`
	}{Batches: s.Batches()})
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Batch(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such batch"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleBatchCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.CancelBatch(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such batch"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}
