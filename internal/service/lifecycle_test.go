package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"wcm3d"
)

// TestCancelDoesNotPoisonWaiter is the cancellation-poisoning regression:
// job A starts a preparation, job B parks on the same in-flight cache
// entry, and cancelling A must not cancel B. Before the detached
// preparation context, the prepare ran on A's context, so A's cancel
// failed B with context.Canceled and B was mislabeled canceled.
func TestCancelDoesNotPoisonWaiter(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	cfg := hookConfig(t, 2, 8, func(ctx context.Context, spec DieSpec) error {
		entered <- struct{}{}
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	svc, ts := newTestServer(t, cfg)

	_, a, _ := postJob(t, ts, `{"profile":"b11/0","seed":1}`)
	<-entered // A's preparation is in flight
	_, b, _ := postJob(t, ts, `{"profile":"b11/0","seed":1}`)
	// B is parked on A's entry once the cache registers its hit.
	deadline := time.Now().Add(10 * time.Second)
	for svc.Metrics().CacheHits.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("job B never reached the cache")
		}
		time.Sleep(time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+a.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fin := waitJob(t, ts, a.ID); fin.State != StateCanceled {
		t.Fatalf("canceled job A ended %s: %s", fin.State, fin.Error)
	}

	// The preparation must still be running for B — releasing it must
	// complete B successfully.
	close(release)
	if fin := waitJob(t, ts, b.ID); fin.State != StateDone {
		t.Fatalf("innocent waiter B ended %s: %s (poisoned by A's cancel)", fin.State, fin.Error)
	}
	m := svc.Snapshot()
	if m.Cache.Misses != 1 || m.Cache.Hits != 1 || m.Cache.Aborts != 0 {
		t.Errorf("cache metrics = %+v, want 1 miss / 1 hit / 0 aborts", m.Cache)
	}
}

// TestLastWaiterAbortsPrepare: when every job interested in an in-flight
// preparation goes away, the preparation is aborted and the entry dropped,
// so the next request starts a fresh one.
func TestLastWaiterAbortsPrepare(t *testing.T) {
	entered := make(chan struct{}, 8)
	aborted := make(chan struct{}, 8)
	cfg := hookConfig(t, 1, 4, func(ctx context.Context, spec DieSpec) error {
		entered <- struct{}{}
		<-ctx.Done()
		aborted <- struct{}{}
		return ctx.Err()
	})
	svc, ts := newTestServer(t, cfg)

	_, st, _ := postJob(t, ts, `{"profile":"b11/0","seed":1}`)
	<-entered
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fin := waitJob(t, ts, st.ID); fin.State != StateCanceled {
		t.Fatalf("job ended %s: %s", fin.State, fin.Error)
	}
	select {
	case <-aborted:
	case <-time.After(10 * time.Second):
		t.Fatal("abandoned preparation was never aborted")
	}
	if got := svc.Metrics().CacheAborts.Load(); got != 1 {
		t.Errorf("cache aborts = %d, want 1", got)
	}

	// The aborted entry must be gone: a new request re-prepares.
	_, st2, _ := postJob(t, ts, `{"profile":"b11/0","seed":1}`)
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("next request did not start a fresh preparation")
	}
	// Cancel the re-prepare so the cleanup shutdown drains immediately.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st2.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	waitJob(t, ts, st2.ID)
}

// TestRetentionTTL: finished jobs older than RetentionTTL are pruned by
// the sweep and pruned jobs 404.
func TestRetentionTTL(t *testing.T) {
	cfg := hookConfig(t, 2, 8, nil)
	cfg.RetentionTTL = time.Minute
	svc, ts := newTestServer(t, cfg)
	var ids []string
	for i := 0; i < 3; i++ {
		_, st, _ := postJob(t, ts, fmt.Sprintf(`{"profile":"b11/0","seed":%d}`, i+1))
		waitJob(t, ts, st.ID)
		ids = append(ids, st.ID)
	}

	svc.mu.Lock()
	svc.gcLocked(time.Now())
	svc.mu.Unlock()
	if got := svc.Snapshot().Jobs.Retained; got != 3 {
		t.Fatalf("fresh jobs pruned early: retained = %d, want 3", got)
	}

	svc.mu.Lock()
	svc.gcLocked(time.Now().Add(2 * time.Minute))
	svc.mu.Unlock()
	m := svc.Snapshot()
	if m.Jobs.Retained != 0 || m.Jobs.Pruned != 3 {
		t.Fatalf("after TTL sweep: retained=%d pruned=%d, want 0/3", m.Jobs.Retained, m.Jobs.Pruned)
	}
	if code := getJSON(t, ts, "/v1/jobs/"+ids[0], nil); code != http.StatusNotFound {
		t.Errorf("pruned job = %d, want 404", code)
	}
}

// TestRetentionCapHoldsUnderLoad is the acceptance check: with retention
// defaults, 10k submit+finish cycles hold the job table at the configured
// cap instead of growing without bound.
func TestRetentionCapHoldsUnderLoad(t *testing.T) {
	cfg := Config{
		Workers:    4,
		QueueDepth: 64,
		Prepare: func(ctx context.Context, spec DieSpec) (*wcm3d.Die, error) {
			return nil, errors.New("synthetic failure: finish instantly")
		},
	}
	svc := New(cfg) // retention defaults: TTL 1h, MaxFinished 1024
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, _ = svc.Shutdown(ctx)
	})
	slack := cfg.QueueDepth + cfg.Workers
	total := 0
	for total < 10000 {
		batch := 0
		for batch < cfg.QueueDepth {
			_, err := svc.Submit(JobRequest{Profile: "b11/0", Seed: int64(total + 1)})
			if errors.Is(err, ErrQueueFull) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			total++
			batch++
		}
		deadline := time.Now().Add(30 * time.Second)
		for svc.Metrics().JobsFailed.Load() < int64(total) {
			if time.Now().After(deadline) {
				t.Fatalf("stalled at %d finished of %d submitted", svc.Metrics().JobsFailed.Load(), total)
			}
			time.Sleep(200 * time.Microsecond)
		}
		if got := svc.Snapshot().Jobs.Retained; got > svc.cfg.MaxFinished+slack {
			t.Fatalf("job table grew past the cap: retained = %d after %d cycles", got, total)
		}
	}
	svc.mu.Lock()
	svc.gcLocked(time.Now())
	svc.mu.Unlock()
	m := svc.Snapshot()
	if m.Jobs.Retained != svc.cfg.MaxFinished {
		t.Errorf("retained = %d, want exactly MaxFinished %d", m.Jobs.Retained, svc.cfg.MaxFinished)
	}
	if m.Jobs.Pruned != int64(total-svc.cfg.MaxFinished) {
		t.Errorf("pruned = %d, want %d", m.Jobs.Pruned, total-svc.cfg.MaxFinished)
	}
}

// TestJobsListFilters covers the limit/state query parameters on
// GET /v1/jobs and their validation.
func TestJobsListFilters(t *testing.T) {
	cfg := hookConfig(t, 2, 8, func(ctx context.Context, spec DieSpec) error {
		if spec.Seed == 99 {
			return errors.New("seed 99 always fails")
		}
		return nil
	})
	_, ts := newTestServer(t, cfg)
	var done []string
	for i := 0; i < 3; i++ {
		_, st, _ := postJob(t, ts, fmt.Sprintf(`{"profile":"b11/0","seed":%d}`, i+1))
		waitJob(t, ts, st.ID)
		done = append(done, st.ID)
	}
	_, failed, _ := postJob(t, ts, `{"profile":"b11/0","seed":99}`)
	waitJob(t, ts, failed.ID)

	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if code := getJSON(t, ts, "/v1/jobs?state=done", &list); code != http.StatusOK || len(list.Jobs) != 3 {
		t.Errorf("state=done: code %d, %d jobs, want 3", code, len(list.Jobs))
	}
	if code := getJSON(t, ts, "/v1/jobs?state=failed", &list); code != http.StatusOK ||
		len(list.Jobs) != 1 || list.Jobs[0].ID != failed.ID {
		t.Errorf("state=failed: code %d, jobs %+v", code, list.Jobs)
	}
	if code := getJSON(t, ts, "/v1/jobs?limit=2", &list); code != http.StatusOK || len(list.Jobs) != 2 {
		t.Fatalf("limit=2: code %d, %d jobs", code, len(list.Jobs))
	}
	// limit keeps the most recent entries, still oldest first.
	if list.Jobs[0].ID != done[2] || list.Jobs[1].ID != failed.ID {
		t.Errorf("limit=2 = [%s %s], want [%s %s]", list.Jobs[0].ID, list.Jobs[1].ID, done[2], failed.ID)
	}
	if code := getJSON(t, ts, "/v1/jobs?state=done&limit=1", &list); code != http.StatusOK ||
		len(list.Jobs) != 1 || list.Jobs[0].ID != done[2] {
		t.Errorf("state=done&limit=1: code %d, jobs %+v", code, list.Jobs)
	}
	for _, q := range []string{"?state=bogus", "?limit=-1", "?limit=abc"} {
		if code := getJSON(t, ts, "/v1/jobs"+q, nil); code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", q, code)
		}
	}
}

// postRawSchedule posts without t.Fatal so it is safe off the test
// goroutine.
func postRawSchedule(ts string, body string) (int, string, error) {
	resp, err := http.Post(ts+"/v1/schedules", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(raw), nil
}

// TestScheduleBackpressure is the acceptance check for schedule admission:
// runs beyond the semaphore observably return 429 with Retry-After instead
// of piling onto the HTTP goroutines.
func TestScheduleBackpressure(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	cfg := hookConfig(t, 2, 8, func(ctx context.Context, spec DieSpec) error {
		entered <- struct{}{}
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	cfg.ScheduleConcurrency = 1
	svc, ts := newTestServer(t, cfg)

	type result struct {
		code int
		raw  string
		err  error
	}
	first := make(chan result, 1)
	go func() {
		code, raw, err := postRawSchedule(ts.URL, `{"profiles":["b11/0"],"width":4,"budget":"reduced"}`)
		first <- result{code, raw, err}
	}()
	<-entered // schedule 1 holds its slot, blocked in preparation

	resp, err := http.Post(ts.URL+"/v1/schedules", "application/json",
		strings.NewReader(`{"profiles":["b11/0"],"width":4,"budget":"reduced"}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second schedule = %d (%s), want 429", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}

	close(release)
	r := <-first
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.code != http.StatusOK {
		t.Fatalf("admitted schedule = %d (%s), want 200", r.code, r.raw)
	}
	m := svc.Snapshot()
	if m.Schedules.Rejected != 1 || m.Schedules.Done != 1 {
		t.Errorf("schedule counters = %+v, want 1 rejected / 1 done", m.Schedules)
	}
}

// TestJobTimeout: a job's timeout_ms bounds its execution; the job is
// canceled at the deadline and the aborted prepare stage still lands in
// the latency histograms under the canceled outcome.
func TestJobTimeout(t *testing.T) {
	cfg := hookConfig(t, 1, 4, func(ctx context.Context, spec DieSpec) error {
		<-ctx.Done()
		return ctx.Err()
	})
	svc, ts := newTestServer(t, cfg)
	code, st, raw := postJob(t, ts, `{"profile":"b11/0","seed":1,"timeout_ms":30}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, raw)
	}
	fin := waitJob(t, ts, st.ID)
	if fin.State != StateCanceled || !strings.Contains(fin.Error, "deadline") {
		t.Fatalf("timed-out job = %s (%s), want canceled on deadline", fin.State, fin.Error)
	}
	m := svc.Snapshot()
	if h := m.LatencyMS["prepare"]; h.Count != 1 || h.Canceled != 1 || h.OK != 0 {
		t.Errorf("prepare histogram = %+v, want 1 canceled observation", h)
	}
	if h := m.LatencyMS["total"]; h.Canceled != 1 {
		t.Errorf("total histogram = %+v, want 1 canceled observation", h)
	}

	// Validation: negative timeout is a clean 400 on both endpoints.
	if code, _, _ := postJob(t, ts, `{"profile":"b11/0","timeout_ms":-5}`); code != http.StatusBadRequest {
		t.Errorf("negative job timeout = %d, want 400", code)
	}
	if code, raw, err := postRawSchedule(ts.URL, `{"circuit":"b11","width":8,"timeout_ms":-5}`); err != nil || code != http.StatusBadRequest {
		t.Errorf("negative schedule timeout = %d (%s, %v), want 400", code, raw, err)
	}
}

// TestStageOutcomeMetrics: failed runs no longer vanish from the stage
// latency histograms — a failing preparation is observed under the failed
// outcome.
func TestStageOutcomeMetrics(t *testing.T) {
	cfg := hookConfig(t, 1, 4, func(ctx context.Context, spec DieSpec) error {
		return errors.New("injected prepare failure")
	})
	svc, ts := newTestServer(t, cfg)
	_, st, _ := postJob(t, ts, `{"profile":"b11/0","seed":1}`)
	if fin := waitJob(t, ts, st.ID); fin.State != StateFailed {
		t.Fatalf("job = %+v, want failed", fin)
	}
	m := svc.Snapshot()
	if h := m.LatencyMS["prepare"]; h.Count != 1 || h.Failed != 1 || h.OK != 0 {
		t.Errorf("prepare histogram = %+v, want the failure observed", h)
	}
	if h := m.LatencyMS["total"]; h.Count != 1 || h.Failed != 1 {
		t.Errorf("total histogram = %+v, want the failure observed", h)
	}
}

// TestChaosLifecycle drives submit, cancel, list, metrics, schedules,
// retention GC and shutdown concurrently against a fault-injecting
// Prepare (instant, slow, failing and blocking behaviors mixed by seed),
// then checks the lifecycle invariants. Seeded, and run under -race in CI
// as the service-stress step.
func TestChaosLifecycle(t *testing.T) {
	die := sharedDie(t)
	cfg := Config{
		Workers:             4,
		QueueDepth:          32,
		CacheCapacity:       4,
		RetentionTTL:        40 * time.Millisecond,
		MaxFinished:         16,
		GCInterval:          5 * time.Millisecond,
		MaxTimeout:          2 * time.Second,
		ScheduleConcurrency: 2,
		Prepare: func(ctx context.Context, spec DieSpec) (*wcm3d.Die, error) {
			switch spec.Seed % 4 {
			case 1: // slow
				select {
				case <-time.After(2 * time.Millisecond):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			case 2: // failing
				return nil, errors.New("injected fault")
			case 3: // blocking until abandoned
				<-ctx.Done()
				return nil, ctx.Err()
			}
			return die, nil
		},
	}
	svc := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, _ = svc.Shutdown(ctx)
	})

	const goroutines, iters = 4, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < iters; i++ {
				st, err := svc.Submit(JobRequest{
					Profile:   "b11/0",
					Seed:      int64(rng.Intn(16) + 1),
					TimeoutMS: int64(rng.Intn(50) + 1),
				})
				if err == nil && rng.Intn(2) == 0 {
					svc.Cancel(st.ID)
				}
				switch rng.Intn(16) {
				case 0:
					_, _ = svc.ScheduleStack(context.Background(),
						ScheduleRequest{Profiles: []string{"b11/0"}, Width: 4, Seed: 4, Budget: "reduced"})
				case 1:
					svc.Jobs()
				case 2:
					svc.Snapshot()
				case 3:
					svc.JobsFiltered(StateDone, 5)
				}
				time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, st := range svc.Jobs() {
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
		default:
			t.Errorf("job %s left non-terminal: %s", st.ID, st.State)
		}
	}
	m := svc.Snapshot()
	if got := m.Jobs.Done + m.Jobs.Failed + m.Jobs.Canceled; got != m.Jobs.Queued {
		t.Errorf("job accounting: queued=%d but done+failed+canceled=%d", m.Jobs.Queued, got)
	}
	if m.Jobs.Retained > cfg.MaxFinished+cfg.Workers+cfg.QueueDepth {
		t.Errorf("retention lost control: %d jobs retained", m.Jobs.Retained)
	}
	if m.Jobs.Queued == 0 {
		t.Error("chaos run submitted nothing")
	}
}
