// Package service implements wcmd, the WCM-as-a-service daemon: a bounded
// job queue and worker pool over the wcm3d library, an LRU cache of
// prepared dies with single-flight deduplication, an HTTP/JSON API
// (POST /v1/jobs, GET /v1/jobs/{id}, GET /v1/dies, GET /healthz,
// GET /metrics), and the machine-readable result schema shared with the
// CLIs (cmd/wcmflow -json).
package service

import (
	"wcm3d"
)

// DieInfo is the JSON description of a prepared die, used both in Reports
// and by GET /v1/dies.
type DieInfo struct {
	Name         string  `json:"name"`
	Seed         int64   `json:"seed"`
	ScanFFs      int     `json:"scan_ffs"`
	LogicGates   int     `json:"logic_gates"`
	InboundTSVs  int     `json:"inbound_tsvs"`
	OutboundTSVs int     `json:"outbound_tsvs"`
	ClockPS      float64 `json:"clock_ps"`
	MarginPS     float64 `json:"margin_ps"`
	WidthUM      float64 `json:"width_um"`
	HeightUM     float64 `json:"height_um"`
}

// DescribeDie summarizes a prepared die under its cache/display name.
func DescribeDie(name string, seed int64, d *wcm3d.Die) DieInfo {
	return DieInfo{
		Name:         name,
		Seed:         seed,
		ScanFFs:      len(d.Netlist.FlipFlops()),
		LogicGates:   d.Netlist.NumLogicGates(),
		InboundTSVs:  len(d.Netlist.InboundTSVs()),
		OutboundTSVs: len(d.Netlist.OutboundTSVs()),
		ClockPS:      d.ClockPS,
		MarginPS:     d.MarginPS,
		WidthUM:      d.Placement.Width,
		HeightUM:     d.Placement.Height,
	}
}

// ExperimentReport wraps one evaluation experiment's rows for
// machine-readable output — the envelope cmd/tables -json emits, kept here
// so every CLI's JSON schema lives in one place. Rows is the experiment's
// row slice (e.g. []experiments.Table1Row) serialized as-is.
type ExperimentReport struct {
	Experiment string `json:"experiment"`
	Rows       any    `json:"rows"`
}

// TestabilityReport is the JSON form of an ATPG outcome.
type TestabilityReport struct {
	Coverage    float64 `json:"coverage"`
	RawCoverage float64 `json:"raw_coverage"`
	Patterns    int     `json:"patterns"`
}

// EncodeTestability converts an ATPG outcome to its JSON form.
func EncodeTestability(tb wcm3d.Testability) TestabilityReport {
	return TestabilityReport{
		Coverage:    tb.Coverage,
		RawCoverage: tb.RawCoverage,
		Patterns:    tb.Patterns,
	}
}

// PhaseReport is the JSON form of one solver phase's graph statistics.
type PhaseReport struct {
	Inbound      bool `json:"inbound"`
	Nodes        int  `json:"nodes"`
	Edges        int  `json:"edges"`
	OverlapEdges int  `json:"overlap_edges"`
	FilteredTSVs int  `json:"filtered_tsvs"`
	Cliques      int  `json:"cliques"`
}

// VerifyViolation is the JSON form of one independent-verifier finding.
type VerifyViolation struct {
	Code   string  `json:"code"`
	Where  string  `json:"where,omitempty"`
	Signal string  `json:"signal,omitempty"`
	Got    float64 `json:"got,omitempty"`
	Limit  float64 `json:"limit,omitempty"`
	Detail string  `json:"detail"`
}

// VerifyReport is the JSON form of an independent plan verification — the
// schema shared by wcmd job results (verify=true) and cmd/verify -json.
type VerifyReport struct {
	OK         bool              `json:"ok"`
	Groups     int               `json:"groups"`
	Pairs      int               `json:"pairs"`
	ReusedFFs  int               `json:"reused_ffs"`
	Violations []VerifyViolation `json:"violations,omitempty"`
	Warnings   []VerifyViolation `json:"warnings,omitempty"`
}

// EncodeVerify converts a verifier report to its JSON form.
func EncodeVerify(vr *wcm3d.VerifyResult) *VerifyReport {
	conv := func(vs []wcm3d.PlanViolation) []VerifyViolation {
		out := make([]VerifyViolation, 0, len(vs))
		for _, v := range vs {
			out = append(out, VerifyViolation{
				Code:   string(v.Code),
				Where:  v.Where,
				Signal: v.Signal,
				Got:    v.Got,
				Limit:  v.Limit,
				Detail: v.Detail,
			})
		}
		return out
	}
	return &VerifyReport{
		OK:         vr.OK(),
		Groups:     vr.Groups,
		Pairs:      vr.Pairs,
		ReusedFFs:  vr.ReusedFFs,
		Violations: conv(vr.Violations),
		Warnings:   conv(vr.Warnings),
	}
}

// Report is the machine-readable outcome of one minimization run — the
// schema shared by the wcmd daemon's job results and cmd/wcmflow -json, so
// CLI and service output stay in lockstep.
type Report struct {
	Die             DieInfo            `json:"die"`
	Method          string             `json:"method"`
	Timing          string             `json:"timing"`
	ReusedFFs       int                `json:"reused_ffs"`
	AdditionalCells int                `json:"additional_cells"`
	DFTAreaUM2      float64            `json:"dft_area_um2"`
	Phases          []PhaseReport      `json:"phases,omitempty"`
	TimingMet       bool               `json:"timing_met"`
	WNSPS           float64            `json:"wns_ps"`
	StuckAt         *TestabilityReport `json:"stuck_at,omitempty"`
	TestCycles      int                `json:"test_cycles,omitempty"`
	Verify          *VerifyReport      `json:"verify,omitempty"`
	Refine          *RefineReport      `json:"refine,omitempty"`
}

// RefineReport is the JSON form of a solver-portfolio refinement run
// (refine=true jobs, cmd/refine -json).
type RefineReport struct {
	// Improved reports whether a verified plan beat the greedy one;
	// GreedyCells → AdditionalCells is the before/after, CellsSaved the
	// difference, Strategy the winning solver.
	Improved        bool   `json:"improved"`
	GreedyCells     int    `json:"greedy_cells"`
	AdditionalCells int    `json:"additional_cells"`
	CellsSaved      int    `json:"cells_saved"`
	ReusedFFs       int    `json:"reused_ffs"`
	Strategy        string `json:"strategy,omitempty"`
	// Skipped reports that the stage never ran: the job reached refine
	// with less than the minimum worthwhile budget remaining (see
	// service.MinRefineBudget). FundedMS is the wall budget the stage
	// was actually funded with, in milliseconds — zero or tiny when
	// skipped, the real search budget otherwise.
	Skipped  bool  `json:"skipped,omitempty"`
	FundedMS int64 `json:"funded_ms,omitempty"`
	// Strategies reports every solver that raced: steps searched,
	// candidates proposed/admitted/rejected, and whether the deadline
	// cut the run short.
	Strategies []RefineStrategyReport `json:"strategies,omitempty"`
}

// RefineStrategyReport is one solver's outcome inside a refinement run.
type RefineStrategyReport struct {
	Name     string `json:"name"`
	Steps    int    `json:"steps"`
	Proposed int    `json:"proposed"`
	Admitted int    `json:"admitted"`
	Rejected int    `json:"rejected"`
	// Stale counts candidates that verified but lost the admission race
	// to an equal-or-better plan certified first by another strategy.
	Stale    int    `json:"stale,omitempty"`
	Deadline bool   `json:"deadline,omitempty"`
	Err      string `json:"err,omitempty"`
}

// EncodeRefine converts a refinement result to its JSON form.
func EncodeRefine(rr *wcm3d.RefineResult) *RefineReport {
	r := &RefineReport{
		Improved:        rr.Improved,
		GreedyCells:     rr.GreedyCells,
		AdditionalCells: rr.AdditionalCells,
		CellsSaved:      rr.CellsSaved,
		ReusedFFs:       rr.ReusedFFs,
		Strategy:        rr.Strategy,
	}
	for _, so := range rr.Strategies {
		r.Strategies = append(r.Strategies, RefineStrategyReport{
			Name:     so.Name,
			Steps:    so.Steps,
			Proposed: so.Proposed,
			Admitted: so.Admitted,
			Rejected: so.Rejected,
			Stale:    so.Stale,
			Deadline: so.Deadline,
			Err:      so.Err,
		})
	}
	return r
}

// EncodeResult builds the Report for a minimization outcome on a die. The
// timing-signoff and ATPG sections start empty; fill them with SetSignoff
// and SetStuckAt as those stages run.
func EncodeResult(die DieInfo, m wcm3d.Method, mode wcm3d.TimingMode, res *wcm3d.MinimizeResult, lib *wcm3d.Library) *Report {
	r := &Report{
		Die:             die,
		Method:          m.String(),
		Timing:          mode.String(),
		ReusedFFs:       res.ReusedFFs,
		AdditionalCells: res.AdditionalCells,
		DFTAreaUM2:      res.AreaUM2(lib),
	}
	for _, p := range res.Phases {
		r.Phases = append(r.Phases, PhaseReport{
			Inbound:      p.Inbound,
			Nodes:        p.Nodes,
			Edges:        p.Edges,
			OverlapEdges: p.OverlapEdges,
			FilteredTSVs: p.FilteredTSVs,
			Cliques:      p.Cliques,
		})
	}
	return r
}

// SetSignoff records the functional-mode timing check.
func (r *Report) SetSignoff(violation bool, wnsPS float64) {
	r.TimingMet = !violation
	r.WNSPS = wnsPS
}

// SetStuckAt records the stuck-at ATPG grade and the tester-time estimate
// (testCycles <= 0 omits the estimate).
func (r *Report) SetStuckAt(tb wcm3d.Testability, testCycles int) {
	enc := EncodeTestability(tb)
	r.StuckAt = &enc
	if testCycles > 0 {
		r.TestCycles = testCycles
	}
}
