package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postRaw posts an arbitrary body and returns the status code and response
// text — the error-path helper, deliberately free of schema assumptions.
func postRaw(t *testing.T, ts *httptest.Server, path, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(raw)
}

// TestSubmitErrorPaths holds POST /v1/jobs to its documented status codes:
// every malformed or invalid body is a clean client error (400), an
// oversized body is 413 — never a 500, never a hang.
func TestSubmitErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, hookConfig(t, 1, 4, nil))
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty body", "", http.StatusBadRequest},
		{"not json", "this is not json", http.StatusBadRequest},
		{"truncated json", `{"profile": "b11/0"`, http.StatusBadRequest},
		{"wrong top-level type", `[1, 2, 3]`, http.StatusBadRequest},
		{"unknown field", `{"profile": "b11/0", "bogus": true}`, http.StatusBadRequest},
		{"wrong field type", `{"profile": 42}`, http.StatusBadRequest},
		{"neither profile nor netlist", `{}`, http.StatusBadRequest},
		{"both profile and netlist", `{"profile": "b11/0", "netlist": "x"}`, http.StatusBadRequest},
		{"unknown profile", `{"profile": "b99/7"}`, http.StatusBadRequest},
		{"malformed profile name", `{"profile": "b11"}`, http.StatusBadRequest},
		{"unknown method", `{"profile": "b11/0", "method": "magic"}`, http.StatusBadRequest},
		{"unknown timing", `{"profile": "b11/0", "timing": "sorta"}`, http.StatusBadRequest},
		{"unknown budget", `{"profile": "b11/0", "budget": "infinite"}`, http.StatusBadRequest},
		{"oversized body", `{"netlist": "` + strings.Repeat("a", maxBodyBytes+1) + `"}`,
			http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postRaw(t, ts, "/v1/jobs", tc.body)
			if code != tc.want {
				t.Fatalf("status = %d, want %d (body %q)", code, tc.want, body)
			}
			if !strings.Contains(body, `"error"`) {
				t.Fatalf("error response carries no error field: %q", body)
			}
		})
	}
}

// TestScheduleErrorPaths does the same for POST /v1/schedules.
func TestScheduleErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, hookConfig(t, 1, 4, nil))
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty body", "", http.StatusBadRequest},
		{"not json", "{{{", http.StatusBadRequest},
		{"unknown field", `{"circuit": "b11", "width": 8, "nope": 1}`, http.StatusBadRequest},
		{"wrong field type", `{"circuit": "b11", "width": "eight"}`, http.StatusBadRequest},
		{"missing width", `{"circuit": "b11"}`, http.StatusBadRequest},
		{"neither circuit nor profiles", `{"width": 8}`, http.StatusBadRequest},
		{"both circuit and profiles", `{"circuit": "b11", "profiles": ["b11/0"], "width": 8}`,
			http.StatusBadRequest},
		{"unknown circuit", `{"circuit": "b99", "width": 8}`, http.StatusBadRequest},
		{"oversized body", `{"circuit": "` + strings.Repeat("b", maxBodyBytes+1) + `", "width": 8}`,
			http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postRaw(t, ts, "/v1/schedules", tc.body)
			if code != tc.want {
				t.Fatalf("status = %d, want %d (body %q)", code, tc.want, body)
			}
			if !strings.Contains(body, `"error"`) {
				t.Fatalf("error response carries no error field: %q", body)
			}
		})
	}
}

// TestJobVerifyFlag runs a real job with independent verification requested
// via the verify=true query parameter and expects a certified VerifyReport
// attached to the result — and the verify-failure counter untouched.
func TestJobVerifyFlag(t *testing.T) {
	svc, ts := newTestServer(t, hookConfig(t, 1, 4, nil))
	resp, err := http.Post(ts.URL+"/v1/jobs?verify=true", "application/json",
		strings.NewReader(`{"profile": "b11/0"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d (%s)", resp.StatusCode, raw)
	}
	var st JobStatus
	if code, _, raw := postJob(t, ts, `{"profile": "b11/0", "verify": true}`); code != http.StatusAccepted {
		t.Fatalf("submit with body flag: status %d (%s)", code, raw)
	} else {
		_ = raw
	}
	// Wait on the query-flag job (the first submission).
	var jobs struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if code := getJSON(t, ts, "/v1/jobs", &jobs); code != http.StatusOK || len(jobs.Jobs) == 0 {
		t.Fatalf("list jobs: status %d, %d jobs", code, len(jobs.Jobs))
	}
	if !jobs.Jobs[0].Request.Verify {
		t.Fatal("verify=true query parameter did not set the request flag")
	}
	st = waitJob(t, ts, jobs.Jobs[0].ID)
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.Result == nil || st.Result.Verify == nil {
		t.Fatal("result carries no verify report")
	}
	if !st.Result.Verify.OK || len(st.Result.Verify.Violations) != 0 {
		t.Fatalf("plan failed its own verification: %+v", st.Result.Verify.Violations)
	}
	if st.Result.Verify.Groups == 0 {
		t.Fatal("verify report saw no groups")
	}
	if got := svc.Metrics().VerifyFailures.Load(); got != 0 {
		t.Fatalf("verify failures = %d on a certified plan", got)
	}
	var snap MetricsSnapshot
	if code := getJSON(t, ts, "/metrics", &snap); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if snap.Verify.Failures != 0 {
		t.Fatalf("snapshot verify failures = %d", snap.Verify.Failures)
	}
	if snap.LatencyMS[StageVerify.String()].Count == 0 {
		t.Fatal("verify stage latency was not observed")
	}
}
