package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"wcm3d"
)

// FuzzBench drives arbitrary .bench uploads through POST /v1/jobs: the
// submit path must classify every input as a clean 202 or a 4xx — never a
// 5xx, never a panic. Preparation is stubbed out so the fuzzer spends its
// budget on the parser and the HTTP plumbing, not on placement.
func FuzzBench(f *testing.F) {
	f.Add("INPUT(a)\nOUTPUT(z)\nz = DFF(a)\n")
	f.Add("TSV_IN(t0)\nTSV_OUT(u0) = n1\nn1 = NAND(t0, t0)\n")
	f.Add("INPUT(a)\nOUTPUT(z)\nz = MUX(a, a, a)\nk = CONST0()\n")
	f.Add("# comment only\n")
	f.Add("")
	f.Add("INPUT(a)\nz = DFF(a)\nz = DFF(a)\n")  // duplicate definition
	f.Add("z = NAND(a)\n")                       // undefined fanin
	f.Add("INPUT(a)\nOUTPUT(z)\nz = BOGUS(a)\n") // unknown gate type
	f.Add("INPUT(\n")                            // truncated declaration
	f.Add("INPUT(a) OUTPUT(z) z = DFF(a)")       // missing newlines
	f.Add("\x00\xff\xfe garbage")
	f.Add(strings.Repeat("INPUT(a)\n", 500))

	svc := New(Config{
		Workers:    1,
		QueueDepth: 64,
		Prepare: func(ctx context.Context, spec DieSpec) (*wcm3d.Die, error) {
			return nil, errors.New("fuzz: prepare disabled")
		},
	})
	ts := httptest.NewServer(svc.Handler())
	f.Cleanup(func() {
		_, _ = svc.Shutdown(context.Background())
		ts.Close()
	})

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<20 {
			// The 8 MiB body cap is pinned by TestSubmitErrorPaths; giant
			// mutated inputs here only slow the parser-focused corpus down.
			t.Skip()
		}
		body, err := json.Marshal(map[string]any{"netlist": src, "seed": 1})
		if err != nil {
			t.Skip()
		}
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		resp.Body.Close()
		code := resp.StatusCode
		switch {
		case code == http.StatusAccepted:
		case code >= 400 && code < 500:
		case code == http.StatusServiceUnavailable:
			// Queue backpressure from accumulated accepted jobs is not a
			// parser verdict; drain by letting the stub prepare fail them.
		default:
			t.Fatalf("netlist %q: status %d, want 202 or 4xx", truncate(src), code)
		}

		// The verdict must agree with the parser itself: parseable sources
		// are accepted, unparseable ones bounced. An empty upload is the
		// one exception — the API reads it as "no netlist passed" (400)
		// before the parser ever sees it.
		if src == "" {
			if code != http.StatusBadRequest {
				t.Fatalf("empty netlist: status %d, want 400", code)
			}
			return
		}
		_, perr := wcm3d.ParseNetlist("fuzz", strings.NewReader(src))
		if perr == nil && !(code == http.StatusAccepted || code == http.StatusServiceUnavailable) {
			t.Fatalf("parseable netlist %q rejected with %d", truncate(src), code)
		}
		if perr != nil && code == http.StatusAccepted {
			t.Fatalf("unparseable netlist %q accepted (parse error: %v)", truncate(src), perr)
		}
	})
}

func truncate(s string) string {
	if len(s) > 120 {
		return fmt.Sprintf("%.120s…(%d bytes)", s, len(s))
	}
	return s
}
