package service

import (
	"errors"
	"sort"
	"time"
)

// ClusterView is everything the service needs from cluster mode, kept
// behind an interface so single-node deployments never touch
// internal/cluster: die-key ownership for routing submissions, and the
// membership snapshot for GET /v1/cluster and the cluster-aware healthz.
// internal/cluster provides the implementation; attach it with
// AttachCluster before calling Handler.
type ClusterView interface {
	// Route maps a die key (name, seed) to its owning node under the
	// current live ring: the owner's base URL and whether the owner is
	// this node. Submissions for keys owned elsewhere are 307-redirected
	// so each die is prepared on exactly one node fleet-wide.
	Route(name string, seed int64) (ownerURL string, self bool)
	// Info reports the membership snapshot: per-peer liveness, queue
	// depth and the shard map.
	Info() ClusterInfo
}

// ClusterInfo is the document served at GET /v1/cluster.
type ClusterInfo struct {
	Self string `json:"self"`
	// QueueDepth is the responding node's own queued-job count — the
	// signal peers use for work-stealing decisions.
	QueueDepth int        `json:"queue_depth"`
	Peers      []PeerInfo `json:"peers"`
	// ShardTokens maps node id -> number of hash-ring tokens it holds
	// (the shard map: ownership is uniform over tokens).
	ShardTokens map[string]int `json:"shard_tokens"`
}

// PeerInfo is one node's liveness row in ClusterInfo.
type PeerInfo struct {
	ID         string `json:"id"`
	URL        string `json:"url"`
	Self       bool   `json:"self,omitempty"`
	Alive      bool   `json:"alive"`
	QueueDepth int    `json:"queue_depth"`
}

// AttachCluster enables cluster mode. Must be called after New and before
// Handler (the cluster endpoints are registered only when a view is
// attached, and the field is read without locking once serving starts).
func (s *Service) AttachCluster(v ClusterView) { s.cluster = v }

// StolenJob is one queued job handed to a stealing peer: the victim-side
// id (which the thief echoes back on completion) and the full request.
type StolenJob struct {
	ID      string     `json:"id"`
	Request JobRequest `json:"request"`
}

// QueueDepth counts jobs currently in the queued state — the load signal
// exported to peers.
func (s *Service) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.state == StateQueued {
			n++
		}
	}
	return n
}

// StealQueued hands up to max queued jobs to the stealing peer `thief`.
// Each handed job is marked running-remotely (so the local pool skips it)
// and journaled as started — if this node crashes before the thief
// reports back, the job replays as orphaned and re-runs. Jobs that were
// themselves stolen from another node are never re-stolen.
func (s *Service) StealQueued(max int, thief string) []StolenJob {
	if max <= 0 || thief == "" {
		return nil
	}
	s.mu.Lock()
	var queued []*job
	for _, j := range s.jobs {
		if j.state == StateQueued && !j.remoteOrigin {
			queued = append(queued, j)
		}
	}
	sort.Slice(queued, func(a, b int) bool { return queued[a].id < queued[b].id })
	if len(queued) > max {
		queued = queued[:max]
	}
	out := make([]StolenJob, 0, len(queued))
	now := time.Now()
	for _, j := range queued {
		j.state = StateRunning
		t := now
		j.started = &t
		j.remote = thief
		out = append(out, StolenJob{ID: j.id, Request: j.req})
		s.metrics.JobsStolen.Add(1)
	}
	s.mu.Unlock()
	for _, sj := range out {
		s.journalStart(sj.ID)
	}
	if len(out) > 0 {
		s.logf("wcmd: cluster: peer %s stole %d queued job(s)", thief, len(out))
	}
	return out
}

// CompleteStolen applies a thief's terminal report to a stolen job. The
// first terminal transition wins; a late or duplicate completion (the job
// was reclaimed and re-run, or already finished) is ignored, which is what
// makes completion exactly-once from the client's point of view.
func (s *Service) CompleteStolen(id, state, errMsg string, result *Report) bool {
	switch state {
	case StateDone, StateFailed, StateCanceled:
	default:
		return false
	}
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok || j.finished != nil {
		s.mu.Unlock()
		return false
	}
	var jerr error
	if errMsg != "" {
		jerr = errors.New(errMsg)
	}
	j.remote = ""
	s.finishLocked(j, state, result, jerr)
	s.mu.Unlock()
	s.journalFinish(j)
	s.notifyFinish(j)
	return true
}

// ReclaimStolen re-queues every job currently out with the (now presumed
// dead) peer `thief`. The job's start record is already in the WAL, so a
// crash of this node during the re-run still replays it; if the thief was
// merely partitioned and reports back later, the first terminal transition
// wins and the duplicate is dropped.
func (s *Service) ReclaimStolen(thief string) int {
	s.mu.Lock()
	var feed []*job
	for _, j := range s.jobs {
		if j.state == StateRunning && j.remote == thief {
			j.state = StateQueued
			j.started = nil
			j.remote = ""
			feed = append(feed, j)
			s.metrics.JobsReclaimed.Add(1)
		}
	}
	s.mu.Unlock()
	if len(feed) == 0 {
		return 0
	}
	sort.Slice(feed, func(a, b int) bool { return feed[a].id < feed[b].id })
	s.logf("wcmd: cluster: reclaimed %d job(s) from dead peer %s", len(feed), thief)
	go s.feedRecovered(feed)
	return len(feed)
}

// RunStolen executes a job stolen FROM a peer on this node: it runs on the
// normal pool and cache, but is excluded from this node's journal (the
// victim's WAL owns it), from cluster routing, and from re-stealing. done
// fires exactly once with the terminal status so the cluster layer can
// report back to the victim.
func (s *Service) RunStolen(req JobRequest, done func(JobStatus)) (JobStatus, error) {
	j, err := s.resolve(req)
	if err != nil {
		return JobStatus{}, err
	}
	j.remoteOrigin = true
	j.onFinish = done
	return s.enqueue(j)
}

// notifyFinish fires a job's completion callback, at most once. Callers
// must not hold s.mu. Abandoned jobs (cut off by the thief's own drain
// deadline) deliberately stay silent: reporting them canceled would
// finalize the job on the victim, when the right outcome is for the
// victim to notice this node's death and reclaim them for a re-run.
func (s *Service) notifyFinish(j *job) {
	s.mu.Lock()
	cb := j.onFinish
	j.onFinish = nil
	if j.abandoned {
		cb = nil
	}
	s.mu.Unlock()
	if cb != nil {
		cb(s.status(j))
	}
}
