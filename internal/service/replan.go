package service

import (
	"errors"
	"fmt"
	"time"

	"wcm3d"
)

// MaxReplanFaults bounds one delta's fault count. Real repair flows fix a
// handful of TSVs at a time; a larger delta is almost certainly a client
// bug, and bouncing it with 413 keeps the per-job replan lock short.
const MaxReplanFaults = 16

// Replan-path failures the HTTP layer maps onto statuses.
var (
	// ErrNoSuchJob marks an unknown (or already pruned) job id.
	ErrNoSuchJob = errors.New("service: no such job")
	// ErrReplanJobNotDone marks a replan against a job that has not
	// finished successfully — queued, running, failed or canceled (a
	// cancel racing the replan lands here too).
	ErrReplanJobNotDone = errors.New("service: replan needs a successfully finished job")
	// ErrReplanUnsupported marks a job whose method has no incremental
	// replan path (li, fullwrap).
	ErrReplanUnsupported = errors.New("service: job's method has no incremental replan")
	// ErrDieEvicted marks a job whose prepared die has left the LRU cache;
	// the client resubmits the job to re-prepare it.
	ErrDieEvicted = errors.New("service: prepared die evicted from cache, resubmit the job")
	// ErrDeltaTooLarge marks a delta over MaxReplanFaults.
	ErrDeltaTooLarge = fmt.Errorf("service: delta exceeds %d faults", MaxReplanFaults)
)

// ReplanRequest is the body of POST /v1/jobs/{id}/replan: one atomic
// batch of TSV faults. Either every fault in it is repaired onto a spare
// site and the plan is regenerated, or nothing changes.
type ReplanRequest struct {
	Faults []wcm3d.TSVFault `json:"faults"`
}

// ReplanStatus is the replan response: the executed repairs and the
// incrementally regenerated wrapper totals. The plan is certified
// equivalent to a from-scratch Minimize on the patched die (see
// internal/tsvrepair and the replan-equivalence CI job).
type ReplanStatus struct {
	JobID string `json:"job_id"`
	// Seq is the 1-based count of deltas applied to this job so far.
	Seq     int               `json:"seq"`
	Repairs []wcm3d.TSVRepair `json:"repairs"`
	// ReusedFFs / AdditionalCells are the patched die's replanned totals.
	ReusedFFs       int `json:"reused_ffs"`
	AdditionalCells int `json:"additional_cells"`
	// SparesLeft reports the unpromoted spare sites remaining per side.
	SparesLeft wcm3d.SpareSpec `json:"spares_left"`
	ElapsedMS  float64         `json:"elapsed_ms"`
}

// Replan applies one TSV-fault delta to a finished job's die and replans
// the wrapper assignment incrementally through the job's session caches.
// The first replan on a job builds its planner from the cached prepared
// die (ErrDieEvicted when the LRU has dropped it) and replays any
// journal-recovered delta history; later replans reuse it. Replans on one
// job are serialized; different jobs replan concurrently.
func (s *Service) Replan(id string, req ReplanRequest) (ReplanStatus, error) {
	if len(req.Faults) > MaxReplanFaults {
		return ReplanStatus{}, ErrDeltaTooLarge
	}
	s.mu.Lock()
	j, ok := s.jobs[id]
	var state string
	if ok {
		state = j.state
	}
	s.mu.Unlock()
	if !ok {
		return ReplanStatus{}, ErrNoSuchJob
	}
	if state != StateDone {
		return ReplanStatus{}, fmt.Errorf("%w (state %s)", ErrReplanJobNotDone, state)
	}
	if j.method != wcm3d.MethodOurs && j.method != wcm3d.MethodAgrawal {
		return ReplanStatus{}, fmt.Errorf("%w (method %q)", ErrReplanUnsupported, j.req.Method)
	}

	j.replanMu.Lock()
	defer j.replanMu.Unlock()
	start := time.Now()
	st, err := s.replanLocked(j, req)
	s.metrics.ObserveOutcome(StageReplan, time.Since(start), err)
	if err != nil {
		s.metrics.ReplansFailed.Add(1)
		return ReplanStatus{}, err
	}
	st.ElapsedMS = float64(time.Since(start).Microseconds()) / 1e3
	s.metrics.ReplansDone.Add(1)
	return st, nil
}

// replanLocked runs one delta under the job's replan lock.
func (s *Service) replanLocked(j *job, req ReplanRequest) (ReplanStatus, error) {
	p, err := s.plannerFor(j)
	if err != nil {
		return ReplanStatus{}, err
	}
	res, reps, err := wcm3d.Replan(p, wcm3d.TSVDelta{Faults: req.Faults})
	if err != nil {
		if reps != nil {
			// The patch landed but the replan itself failed: the planner no
			// longer matches the recorded history, so drop it — the next
			// replan rebuilds it from the journaled deltas.
			j.planner = nil
		}
		return ReplanStatus{}, err
	}

	s.mu.Lock()
	j.replans = append(j.replans, req)
	seq := len(j.replans)
	s.mu.Unlock()
	s.journalReplan(j.id, req)

	in, out := p.SparesLeft()
	return ReplanStatus{
		JobID:           j.id,
		Seq:             seq,
		Repairs:         reps,
		ReusedFFs:       res.ReusedFFs,
		AdditionalCells: res.AdditionalCells,
		SparesLeft:      wcm3d.SpareSpec{Inbound: in, Outbound: out},
	}, nil
}

// plannerFor returns the job's planner, building it on first use: the
// prepared die is peeked from the LRU cache (never re-prepared — a replan
// is a lightweight operation and must not hide a multi-second prepare),
// the baseline is planned, and the job's recorded delta history is
// replayed so the planner resumes exactly where the last process left
// off. Callers hold j.replanMu.
func (s *Service) plannerFor(j *job) (*wcm3d.ReplanPlanner, error) {
	if j.planner != nil {
		return j.planner, nil
	}
	die, ok := s.dies.peek(DieKey{Name: j.spec.Name, Seed: j.spec.Seed})
	if !ok {
		return nil, ErrDieEvicted
	}
	var opts wcm3d.MinimizeOptions
	switch j.method {
	case wcm3d.MethodOurs:
		opts = wcm3d.OurOptions(die, j.mode)
	case wcm3d.MethodAgrawal:
		opts = wcm3d.AgrawalOptions(die, j.mode)
	default:
		return nil, ErrReplanUnsupported
	}
	p, err := wcm3d.NewReplanPlanner(die, opts)
	if err != nil {
		return nil, fmt.Errorf("building replanner: %w", err)
	}
	s.mu.Lock()
	history := append([]ReplanRequest(nil), j.replans...)
	s.mu.Unlock()
	for i, d := range history {
		// Preparation is deterministic per (spec, seed), so journaled
		// deltas replay verbatim; a failure means the log and the die
		// generation disagree and is surfaced rather than papered over.
		if _, err := p.Apply(wcm3d.TSVDelta{Faults: d.Faults}); err != nil {
			return nil, fmt.Errorf("replaying journaled delta %d/%d: %w", i+1, len(history), err)
		}
	}
	j.planner = p
	return p, nil
}
