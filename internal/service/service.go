package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"wcm3d"
)

// Config tunes a Service. The zero value gets sensible defaults from New.
type Config struct {
	// Workers is the worker-pool size (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs; a full
	// queue rejects submissions with ErrQueueFull (default: 64).
	QueueDepth int
	// CacheCapacity bounds the prepared-die LRU cache (default: 16).
	CacheCapacity int
	// RetentionTTL bounds how long a finished job stays queryable before
	// the retention sweep drops it (default: 1h).
	RetentionTTL time.Duration
	// MaxFinished bounds the number of finished jobs retained in the job
	// table; the oldest finished entries beyond it are dropped (default:
	// 1024). Queued and running jobs are never pruned.
	MaxFinished int
	// GCInterval is the period of the retention sweep ticker (default:
	// 1m). Sweeps also run opportunistically on every submission.
	GCInterval time.Duration
	// MaxTimeout is the server-side cap on per-job and per-schedule
	// deadlines; a request's timeout_ms is clamped to it, and a request
	// without one gets it outright (default: 10m).
	MaxTimeout time.Duration
	// ScheduleConcurrency bounds how many POST /v1/schedules runs may
	// execute at once; excess requests get ErrScheduleBusy (default:
	// Workers).
	ScheduleConcurrency int
	// Prepare builds a die from a spec. Nil uses DefaultPrepare; tests
	// substitute counting, blocking or failing fault-injection hooks here.
	Prepare func(ctx context.Context, spec DieSpec) (*wcm3d.Die, error)
	// Journal, when non-nil, makes the job table durable: every accepted
	// job is recorded before it is queued, and a crash replays pending
	// and orphaned jobs on the next boot (see internal/wal and Recover).
	// Nil — the default — keeps the single-node in-memory behavior.
	Journal Journal
	// Logf receives operational log lines (recovery notes, journal write
	// failures, steal traffic). Nil discards them.
	Logf func(format string, args ...any)
}

// DieSpec identifies the die a job wants prepared.
type DieSpec struct {
	// Profile is the Table II profile to generate (when Source is empty).
	Profile wcm3d.Profile
	// Source is an inline .bench netlist (alternative to Profile).
	Source string
	// Name is the display/cache name ("b12/Die1" or "bench:<hash>"),
	// suffixed with the spare configuration when one is requested so
	// spared and spare-less preparations never share a cache entry.
	Name string
	// Seed drives generation, placement and ATPG.
	Seed int64
	// Spares asks the preparation to materialize spare TSV sites (the
	// prerequisite for POST /v1/jobs/{id}/replan).
	Spares wcm3d.SpareSpec
}

// DefaultPrepare is the production die builder: PrepareDie for profiles,
// ParseNetlist + PrepareParsed for inline sources. The heavy pipeline is
// not cancellable mid-flight, so ctx is only checked before starting.
func DefaultPrepare(ctx context.Context, spec DieSpec) (*wcm3d.Die, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if spec.Source != "" {
		n, err := wcm3d.ParseNetlist(spec.Name, strings.NewReader(spec.Source))
		if err != nil {
			return nil, err
		}
		if spec.Spares != (wcm3d.SpareSpec{}) {
			if err := wcm3d.AddSpareTSVs(n, spec.Spares); err != nil {
				return nil, err
			}
		}
		return wcm3d.PrepareParsed(n, spec.Seed)
	}
	if spec.Spares != (wcm3d.SpareSpec{}) {
		return wcm3d.PrepareDieWithSpares(spec.Profile, spec.Seed, spec.Spares)
	}
	return wcm3d.PrepareDie(spec.Profile, spec.Seed)
}

// JobRequest is the body of POST /v1/jobs.
type JobRequest struct {
	// Profile names a Table II die ("b12/1"); Netlist carries an inline
	// .bench source instead. Exactly one must be set.
	Profile string `json:"profile,omitempty"`
	Netlist string `json:"netlist,omitempty"`
	// Seed drives generation, placement and ATPG (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Method is ours | agrawal | li | fullwrap (default ours).
	Method string `json:"method,omitempty"`
	// Timing is tight | loose (default tight).
	Timing string `json:"timing,omitempty"`
	// ATPG asks for a stuck-at evaluation of the plan.
	ATPG bool `json:"atpg,omitempty"`
	// Budget is the ATPG effort: full | reduced (default full).
	Budget string `json:"budget,omitempty"`
	// Verify asks for an independent re-verification of the plan (see
	// internal/verify); the report lands in Result.Verify. Also settable
	// as the verify=true query parameter on POST /v1/jobs.
	Verify bool `json:"verify,omitempty"`
	// Refine asks the anytime solver portfolio (see internal/refine) to
	// improve the greedy plan before signoff; its deadline is fed by the
	// job's clamped timeout_ms, the report lands in Result.Refine, and
	// the job's seed drives the annealer's RNG. Also settable as the
	// refine=true query parameter on POST /v1/jobs. Only meaningful for
	// methods with a threshold contract (ours, agrawal).
	Refine bool `json:"refine,omitempty"`
	// TimeoutMS bounds the job's execution once it starts running, in
	// milliseconds. It is clamped to the server's MaxTimeout cap; 0 means
	// the cap applies directly. A job over its deadline is canceled.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Spares asks the prepared die to carry spare TSV sites per side,
	// making the finished job replannable after TSV defects
	// (POST /v1/jobs/{id}/replan). Nil prepares no spares.
	Spares *wcm3d.SpareSpec `json:"spares,omitempty"`
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobStatus is the JSON view of a job, returned by POST /v1/jobs and
// GET /v1/jobs/{id}.
type JobStatus struct {
	ID          string     `json:"id"`
	State       string     `json:"state"`
	Request     JobRequest `json:"request"`
	Error       string     `json:"error,omitempty"`
	Result      *Report    `json:"result,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// Replans counts the TSV-fault deltas applied to this job's plan via
	// POST /v1/jobs/{id}/replan (journal-recovered deltas included).
	Replans int `json:"replans,omitempty"`
}

type job struct {
	id        string
	state     string
	req       JobRequest
	spec      DieSpec
	method    wcm3d.Method
	mode      wcm3d.TimingMode
	budget    wcm3d.ATPGBudget
	result    *Report
	err       error
	cancel    context.CancelFunc
	submitted time.Time
	started   *time.Time
	finished  *time.Time
	// abandoned marks a job cut off by the shutdown drain deadline: its
	// terminal transition is deliberately NOT journaled, so a configured
	// WAL replays it as pending on the next boot instead of losing it.
	abandoned bool
	// remote is the peer id currently executing this job after a steal
	// ("" when running locally); remoteOrigin marks a job this node is
	// executing on a peer's behalf (excluded from the local journal,
	// routing and re-stealing).
	remote       string
	remoteOrigin bool
	// onFinish fires exactly once when the job reaches a terminal state
	// (the cluster layer uses it to report stolen-job results back).
	onFinish func(JobStatus)

	// replanMu serializes replans per job — a ReplanPlanner is not safe
	// for concurrent use. Acquired without s.mu (planner work is slow).
	replanMu sync.Mutex
	// planner is the lazily-built incremental replanner, seeded from the
	// cached prepared die on the first replan and rebuilt (replaying
	// replans) after a restart. Guarded by replanMu.
	planner *wcm3d.ReplanPlanner
	// replans is the job's applied delta history in order — the planner's
	// rebuild script. Guarded by s.mu (status() reads its length).
	replans []ReplanRequest
}

// DrainReport summarizes a shutdown: how the accepted jobs ended up. Jobs
// cut off by the drain deadline are reported as canceled and listed in
// Abandoned; with a journal configured they are deliberately left
// un-finalized in the WAL so the next boot replays them instead of
// dropping them silently.
type DrainReport struct {
	Done      int      `json:"done"`
	Failed    int      `json:"failed"`
	Canceled  int      `json:"canceled"`
	Abandoned []string `json:"abandoned,omitempty"`
}

// Service is the WCM daemon core: it validates and queues minimization
// requests, runs them on a bounded worker pool against an LRU die cache,
// and exposes status, health and metrics. Create with New, serve with
// Handler, stop with Shutdown.
type Service struct {
	cfg      Config
	metrics  *Metrics
	dies     *dieCache
	pool     *pool
	schedSem chan struct{} // schedule-admission semaphore
	gcStop   chan struct{} // closed by Shutdown; ends the retention sweeper
	// cluster is the optional cluster view (AttachCluster); set once
	// before Handler, read without locking afterwards.
	cluster ClusterView

	mu      sync.Mutex
	closed  bool
	seq     int
	jobs    map[string]*job
	batches map[string]*batchRun
}

// New builds a Service and starts its worker pool and retention sweeper.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = 16
	}
	if cfg.RetentionTTL <= 0 {
		cfg.RetentionTTL = time.Hour
	}
	if cfg.MaxFinished <= 0 {
		cfg.MaxFinished = 1024
	}
	if cfg.GCInterval <= 0 {
		cfg.GCInterval = time.Minute
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 10 * time.Minute
	}
	if cfg.ScheduleConcurrency <= 0 {
		cfg.ScheduleConcurrency = cfg.Workers
	}
	if cfg.Prepare == nil {
		cfg.Prepare = DefaultPrepare
	}
	m := &Metrics{}
	s := &Service{
		cfg:      cfg,
		metrics:  m,
		dies:     newDieCache(cfg.CacheCapacity, m),
		pool:     newPool(cfg.Workers, cfg.QueueDepth),
		schedSem: make(chan struct{}, cfg.ScheduleConcurrency),
		gcStop:   make(chan struct{}),
		jobs:     make(map[string]*job),
		batches:  make(map[string]*batchRun),
	}
	go s.gcLoop()
	return s
}

// Metrics exposes the counters (tests assert on them).
func (s *Service) Metrics() *Metrics { return s.metrics }

// resolve validates a request and fills in defaults.
func (s *Service) resolve(req JobRequest) (*job, error) {
	j := &job{req: req}
	switch {
	case req.Profile != "" && req.Netlist != "":
		return nil, errors.New("pass profile or netlist, not both")
	case req.Profile != "":
		p, err := wcm3d.ProfileByName(req.Profile)
		if err != nil {
			return nil, err
		}
		j.spec.Profile = p
		j.spec.Name = p.Name()
	case req.Netlist != "":
		// Parse the upload synchronously so a malformed netlist is a clean
		// 400 at submit time instead of an async job failure. The prepare
		// path re-parses, but only once per unique source thanks to the die
		// cache, and parsing is cheap next to placement and timing.
		if _, err := wcm3d.ParseNetlist("upload", strings.NewReader(req.Netlist)); err != nil {
			return nil, fmt.Errorf("netlist: %w", err)
		}
		sum := sha256.Sum256([]byte(req.Netlist))
		j.spec.Source = req.Netlist
		j.spec.Name = "bench:" + hex.EncodeToString(sum[:6])
	default:
		return nil, errors.New("pass profile or netlist")
	}
	if req.Spares != nil {
		if req.Spares.Inbound < 0 || req.Spares.Outbound < 0 {
			return nil, fmt.Errorf("spare counts must be >= 0, got %+v", *req.Spares)
		}
		j.spec.Spares = *req.Spares
		if *req.Spares != (wcm3d.SpareSpec{}) {
			// The spare sites change the prepared netlist, so the cache
			// key must distinguish spared preparations.
			j.spec.Name = fmt.Sprintf("%s+s%di%do", j.spec.Name, req.Spares.Inbound, req.Spares.Outbound)
		}
	}
	if req.Seed == 0 {
		req.Seed = 1
		j.req.Seed = 1
	}
	j.spec.Seed = req.Seed
	m := req.Method
	if m == "" {
		m = "ours"
	}
	method, err := wcm3d.ParseMethod(m)
	if err != nil {
		return nil, err
	}
	j.method = method
	tm := req.Timing
	if tm == "" {
		tm = "tight"
	}
	mode, err := wcm3d.ParseTimingMode(tm)
	if err != nil {
		return nil, err
	}
	j.mode = mode
	switch req.Budget {
	case "", "full":
		j.budget = wcm3d.DefaultBudget(req.Seed)
	case "reduced":
		j.budget = wcm3d.ReducedBudget(req.Seed)
	default:
		return nil, fmt.Errorf("unknown budget %q", req.Budget)
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeout_ms must be >= 0, got %d", req.TimeoutMS)
	}
	return j, nil
}

// effectiveTimeout clamps a requested timeout_ms to the server-side cap; a
// zero request gets the cap directly.
func (s *Service) effectiveTimeout(ms int64) time.Duration {
	d := s.cfg.MaxTimeout
	if ms > 0 {
		if t := time.Duration(ms) * time.Millisecond; t < d {
			d = t
		}
	}
	return d
}

// Submit validates req and queues it. It returns the queued job's status,
// or ErrQueueFull under backpressure, ErrShuttingDown after Shutdown,
// ErrJournal when the write-ahead log cannot make the job durable, and
// plain validation errors for malformed requests.
func (s *Service) Submit(req JobRequest) (JobStatus, error) {
	j, err := s.resolve(req)
	if err != nil {
		return JobStatus{}, err
	}
	return s.enqueue(j)
}

// enqueue assigns an id to a resolved job, journals it (unless the job is
// remote-origin or no journal is configured), and hands it to the pool.
// The journal write happens before the pool can run the job, so every job
// a client ever saw accepted is recoverable after a crash.
func (s *Service) enqueue(j *job) (JobStatus, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobStatus{}, ErrShuttingDown
	}
	s.seq++
	j.id = fmt.Sprintf("j-%06d", s.seq)
	j.state = StateQueued
	j.submitted = time.Now()
	s.jobs[j.id] = j
	s.gcLocked(time.Now())
	s.mu.Unlock()

	if s.cfg.Journal != nil && !j.remoteOrigin {
		if err := s.cfg.Journal.Submit(j.id, j.req); err != nil {
			s.mu.Lock()
			delete(s.jobs, j.id)
			s.mu.Unlock()
			s.metrics.WALErrors.Add(1)
			return JobStatus{}, fmt.Errorf("%w: %v", ErrJournal, err)
		}
	}
	if err := s.pool.trySubmit(func(ctx context.Context) { s.runJob(ctx, j) }); err != nil {
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		if errors.Is(err, ErrQueueFull) {
			s.metrics.JobsRejected.Add(1)
		}
		if s.cfg.Journal != nil && !j.remoteOrigin {
			// Neutralize the submit record: the client was refused, so the
			// job must not rise from the log on the next boot.
			if jerr := s.cfg.Journal.Cancel(j.id); jerr != nil {
				s.metrics.WALErrors.Add(1)
				s.logf("wcmd: journal cancel %s after rejection: %v", j.id, jerr)
			}
		}
		return JobStatus{}, err
	}
	s.metrics.JobsQueued.Add(1)
	return s.status(j), nil
}

// Job returns the status of one job.
func (s *Service) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return s.status(j), true
}

// Jobs lists every retained job, oldest first.
func (s *Service) Jobs() []JobStatus { return s.JobsFiltered("", 0) }

// JobsFiltered lists retained jobs oldest first, optionally restricted to
// one state and truncated to the most recent limit entries (0 = no limit).
func (s *Service) JobsFiltered(state string, limit int) []JobStatus {
	s.mu.Lock()
	js := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		js = append(js, j)
	}
	s.mu.Unlock()
	sort.Slice(js, func(a, b int) bool { return js[a].id < js[b].id })
	out := make([]JobStatus, 0, len(js))
	for _, j := range js {
		st := s.status(j)
		if state != "" && st.State != state {
			continue
		}
		out = append(out, st)
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// JobsPage lists retained jobs oldest first starting strictly after the
// job id `after` ("" = from the beginning), optionally restricted to one
// state and truncated to the FIRST limit entries (0 = no limit). It
// returns the page and the id of the last returned job — the resume point
// the HTTP layer hands back as the opaque `next` cursor.
func (s *Service) JobsPage(state string, limit int, after string) ([]JobStatus, string) {
	s.mu.Lock()
	js := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if j.id > after {
			js = append(js, j)
		}
	}
	s.mu.Unlock()
	sort.Slice(js, func(a, b int) bool { return js[a].id < js[b].id })
	out := make([]JobStatus, 0, len(js))
	last := ""
	for _, j := range js {
		st := s.status(j)
		if state != "" && st.State != state {
			continue
		}
		out = append(out, st)
		last = st.ID
		if limit > 0 && len(out) == limit {
			break
		}
	}
	return out, last
}

// Cancel cancels a job: a queued job is marked canceled before it starts;
// a running job's context is cancelled so it aborts at the next stage
// boundary. It reports whether the id was known.
func (s *Service) Cancel(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobStatus{}, false
	}
	canceledQueued := false
	switch j.state {
	case StateQueued:
		s.finishLocked(j, StateCanceled, nil, context.Canceled)
		canceledQueued = true
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	s.mu.Unlock()
	if canceledQueued {
		s.journalFinish(j)
		s.notifyFinish(j)
	}
	return s.status(j), true
}

// Dies lists the cached prepared dies, most recently used first.
func (s *Service) Dies() []DieInfo { return s.dies.snapshot() }

// Healthy reports whether the service accepts work.
func (s *Service) Healthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed
}

// Snapshot returns the /metrics document.
func (s *Service) Snapshot() MetricsSnapshot {
	snap := s.metrics.snapshot()
	s.mu.Lock()
	snap.Jobs.Retained = len(s.jobs)
	s.mu.Unlock()
	snap.Cache.Entries = s.dies.len()
	snap.Cache.Capacity = s.cfg.CacheCapacity
	snap.Queue.Depth = s.pool.depth()
	snap.Queue.Capacity = s.cfg.QueueDepth
	snap.Queue.Workers = s.cfg.Workers
	return snap
}

// gcLoop runs the retention sweep on a ticker until Shutdown.
func (s *Service) gcLoop() {
	t := time.NewTicker(s.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mu.Lock()
			s.gcLocked(time.Now())
			s.mu.Unlock()
		case <-s.gcStop:
			return
		}
	}
}

// gcLocked applies the retention policy: finished jobs older than
// RetentionTTL are dropped, then the oldest finished entries beyond
// MaxFinished. Queued and running jobs are never touched. Callers hold
// s.mu.
func (s *Service) gcLocked(now time.Time) {
	s.gcBatchesLocked(now)
	cutoff := now.Add(-s.cfg.RetentionTTL)
	finished := make([]*job, 0, len(s.jobs))
	for id, j := range s.jobs {
		if j.finished == nil {
			continue
		}
		if j.finished.Before(cutoff) {
			delete(s.jobs, id)
			s.metrics.JobsPruned.Add(1)
			continue
		}
		finished = append(finished, j)
	}
	n := len(finished) - s.cfg.MaxFinished
	if n <= 0 {
		return
	}
	sort.Slice(finished, func(a, b int) bool {
		fa, fb := finished[a], finished[b]
		if !fa.finished.Equal(*fb.finished) {
			return fa.finished.Before(*fb.finished)
		}
		return fa.id < fb.id
	})
	for _, j := range finished[:n] {
		delete(s.jobs, j.id)
		s.metrics.JobsPruned.Add(1)
	}
}

// Shutdown stops accepting work and drains accepted jobs. If ctx expires
// before the drain completes, in-flight jobs are cancelled and reported as
// canceled in the DrainReport — the partial state a supervisor logs on the
// way down.
func (s *Service) Shutdown(ctx context.Context) (DrainReport, error) {
	s.mu.Lock()
	first := !s.closed
	s.closed = true
	s.mu.Unlock()
	if first {
		close(s.gcStop)
	}
	err := s.pool.shutdown(ctx)
	var rep DrainReport
	s.mu.Lock()
	for _, j := range s.jobs {
		switch j.state {
		case StateDone:
			rep.Done++
		case StateFailed:
			rep.Failed++
		case StateCanceled:
			rep.Canceled++
		case StateQueued, StateRunning:
			// The pool has exited, so nothing will run these; account for
			// them as canceled. They are abandoned, not finished: no
			// terminal record reaches the journal, so a configured WAL
			// replays them on the next boot instead of dropping them.
			j.abandoned = true
			s.finishLocked(j, StateCanceled, nil, context.Canceled)
			rep.Canceled++
		}
		if j.abandoned && !j.remoteOrigin {
			rep.Abandoned = append(rep.Abandoned, j.id)
		}
	}
	for _, b := range s.batches {
		switch b.state {
		case StateDone:
			rep.Done++
		case StateFailed:
			rep.Failed++
		case StateCanceled:
			rep.Canceled++
		case StateQueued, StateRunning:
			// Same abandonment contract as jobs: no terminal record reaches
			// the journal, so a configured WAL replays the batch on boot.
			b.abandoned = true
			s.finishBatchLocked(b, StateCanceled, context.Canceled)
			rep.Canceled++
		}
		if b.abandoned {
			rep.Abandoned = append(rep.Abandoned, b.id)
		}
	}
	s.mu.Unlock()
	sort.Strings(rep.Abandoned)
	return rep, err
}

// status snapshots a job under the service lock.
func (s *Service) status(j *job) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Request:     j.req,
		Result:      j.result,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
		Replans:     len(j.replans),
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// finishLocked moves a job to a terminal state; callers hold s.mu.
func (s *Service) finishLocked(j *job, state string, rep *Report, err error) {
	if j.state == StateDone || j.state == StateFailed || j.state == StateCanceled {
		return
	}
	j.state = state
	j.result = rep
	j.err = err
	now := time.Now()
	j.finished = &now
	switch state {
	case StateDone:
		s.metrics.JobsDone.Add(1)
	case StateFailed:
		s.metrics.JobsFailed.Add(1)
	case StateCanceled:
		s.metrics.JobsCanceled.Add(1)
	}
}

// runJob executes one job on a pool worker under the job's own deadline.
func (s *Service) runJob(poolCtx context.Context, j *job) {
	s.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithTimeout(poolCtx, s.effectiveTimeout(j.req.TimeoutMS))
	j.cancel = cancel
	j.state = StateRunning
	now := time.Now()
	j.started = &now
	s.mu.Unlock()
	defer cancel()

	if !j.remoteOrigin {
		s.journalStart(j.id)
	}
	s.metrics.JobsRunning.Add(1)
	start := time.Now()
	rep, err := s.execute(ctx, j)
	s.metrics.ObserveOutcome(StageTotal, time.Since(start), err)
	s.metrics.JobsRunning.Add(-1)

	s.mu.Lock()
	switch {
	case err == nil:
		s.finishLocked(j, StateDone, rep, nil)
	case ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		// Canceled only when it was THIS job's context (cancel, deadline
		// or shutdown) — a context error that bubbled out of shared
		// machinery while this job is still live is a plain failure, not
		// someone else's cancellation.
		if poolCtx.Err() != nil {
			// The drain deadline expired, not the job's own deadline or a
			// client cancel: abandon instead of finalizing, so the WAL
			// replays the job on the next boot.
			j.abandoned = true
		}
		s.finishLocked(j, StateCanceled, nil, err)
	default:
		s.finishLocked(j, StateFailed, nil, err)
	}
	s.mu.Unlock()
	s.journalFinish(j)
	s.notifyFinish(j)
}

// preparer wraps cfg.Prepare for one spec with prepare-stage metrics that
// record every outcome — success, failure and abort alike.
func (s *Service) preparer(spec DieSpec) func(context.Context) (*wcm3d.Die, error) {
	return func(ctx context.Context) (*wcm3d.Die, error) {
		start := time.Now()
		d, err := s.cfg.Prepare(ctx, spec)
		s.metrics.ObserveOutcome(StagePrepare, time.Since(start), err)
		return d, err
	}
}

// execute runs the minimize pipeline, checking ctx between stages so
// per-job cancellation, job deadlines and shutdown deadlines take effect
// at stage boundaries. Every stage records its latency whatever the
// outcome.
// MinRefineBudget is the smallest portfolio budget worth starting: below
// it the solvers cannot finish a meaningful sweep even on a mid-size die,
// so the refine stage skips explicitly (RefineReport.Skipped, the
// refine.skipped counter) instead of pretending to search.
const MinRefineBudget = 50 * time.Millisecond

// refineFunding computes the refine stage's budget — half the job's
// remaining clamped deadline — and whether it clears MinRefineBudget.
// Without a deadline the portfolio's default budget stands.
func refineFunding(ctx context.Context) (time.Duration, bool) {
	dl, ok := ctx.Deadline()
	if !ok {
		return wcm3d.DefaultRefineBudget, true
	}
	funded := time.Until(dl) / 2
	if funded < MinRefineBudget {
		if funded < 0 {
			funded = 0
		}
		return funded, false
	}
	return funded, true
}

func (s *Service) execute(ctx context.Context, j *job) (*Report, error) {
	die, err := s.dies.get(ctx, DieKey{Name: j.spec.Name, Seed: j.spec.Seed}, s.preparer(j.spec))
	if err != nil {
		return nil, fmt.Errorf("prepare %s: %w", j.spec.Name, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	start := time.Now()
	res, err := wcm3d.Minimize(die, j.method, j.mode)
	s.metrics.ObserveOutcome(StageMinimize, time.Since(start), err)
	if err != nil {
		return nil, fmt.Errorf("minimize: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var refineRep *RefineReport
	if j.req.Refine && res.Options.Order != 0 {
		// Half the job's remaining deadline goes to the portfolio (the
		// signoff/verify/ATPG stages still need their share); a longer
		// timeout_ms therefore buys a deeper search. Methods without a
		// threshold contract (li, fullwrap) have no sharing model to
		// refine and skip the stage. A job that queued long (or asked
		// for a small timeout_ms) can arrive here with almost nothing
		// left: funding the portfolio with a zero or negative budget
		// used to fall through to the 2 s default and overrun the
		// deadline, while a near-zero one silently no-oped yet still
		// attached a normal-looking RefineReport. Below the floor the
		// stage now skips explicitly and says so.
		funded, ok := refineFunding(ctx)
		if !ok {
			s.metrics.RefineSkipped.Add(1)
			refineRep = &RefineReport{
				Skipped:         true,
				FundedMS:        funded.Milliseconds(),
				GreedyCells:     res.AdditionalCells,
				AdditionalCells: res.AdditionalCells,
				ReusedFFs:       res.ReusedFFs,
			}
		} else {
			start = time.Now()
			ro := wcm3d.RefineOptions{Seed: j.spec.Seed, Budget: funded}
			rr, err := wcm3d.Refine(ctx, die, res.Options, res, ro)
			s.metrics.ObserveOutcome(StageRefine, time.Since(start), err)
			if err != nil {
				return nil, fmt.Errorf("refine: %w", err)
			}
			if rr.Improved {
				res.Assignment = rr.Assignment
				res.AdditionalCells = rr.AdditionalCells
				res.ReusedFFs = rr.ReusedFFs
				s.metrics.RefineImproved.Add(1)
				s.metrics.RefineCellsSaved.Add(int64(rr.CellsSaved))
			}
			refineRep = EncodeRefine(rr)
			refineRep.FundedMS = funded.Milliseconds()
		}
	}
	rep := EncodeResult(DescribeDie(j.spec.Name, j.spec.Seed, die), j.method, j.mode, res, die.Lib)
	rep.Refine = refineRep
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	start = time.Now()
	viol, wns, err := wcm3d.CheckTiming(die, res.Assignment)
	s.metrics.ObserveOutcome(StageSignoff, time.Since(start), err)
	if err != nil {
		return nil, fmt.Errorf("signoff: %w", err)
	}
	rep.SetSignoff(viol, wns)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if j.req.Verify {
		start = time.Now()
		vres, err := wcm3d.VerifyPlan(die, res, wcm3d.VerifyOptions{})
		s.metrics.ObserveOutcome(StageVerify, time.Since(start), err)
		if err != nil {
			return nil, fmt.Errorf("verify: %w", err)
		}
		rep.Verify = EncodeVerify(vres)
		if !vres.OK() {
			s.metrics.VerifyFailures.Add(1)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	if j.req.ATPG {
		start = time.Now()
		tb, err := wcm3d.EvaluateStuckAt(die, res.Assignment, j.budget)
		if err != nil {
			s.metrics.ObserveOutcome(StageATPG, time.Since(start), err)
			return nil, fmt.Errorf("atpg: %w", err)
		}
		chains, err := wcm3d.BuildScanChains(die, res.Assignment, 4)
		s.metrics.ObserveOutcome(StageATPG, time.Since(start), err)
		if err != nil {
			return nil, fmt.Errorf("scan chains: %w", err)
		}
		rep.SetStuckAt(tb, chains.TestCycles(tb.Patterns))
	}
	return rep, nil
}
