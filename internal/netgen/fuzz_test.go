package netgen

import (
	"testing"

	"wcm3d/internal/netlist"
)

// FuzzNetgen hammers the generator with arbitrary profile shapes and holds
// it to its three contracts: structural validity of every die it emits,
// exact profile statistics, and byte-identical determinism per (profile,
// seed). The seeded corpus under testdata/fuzz/FuzzNetgen carries all 24
// Table II profiles at full size — the body rescales oversized shapes to a
// fuzz-affordable gate count while preserving the profile's ratios, so
// every plain `go test` run replays the benchmark suite's shapes through
// the fuzz harness too.
func FuzzNetgen(f *testing.F) {
	for _, p := range ITC99Profiles() {
		f.Add(p.ScanFFs, p.Gates, p.InboundTSVs, p.OutboundTSVs, p.PIs, p.POs, int64(1))
	}
	f.Add(0, 4, 0, 0, 1, 1, int64(3))  // minimum viable die
	f.Add(7, 64, 0, 9, 0, 0, int64(5)) // defaulted PIs/POs
	f.Fuzz(func(t *testing.T, ffs, gates, tin, tout, pis, pos int, seed int64) {
		const maxGates = 4000
		norm := func(v, bound int) int {
			if v < 0 {
				v = -v
			}
			if v < 0 { // MinInt
				v = 1
			}
			return v % (bound + 1)
		}
		ffs, gates = norm(ffs, 3000), norm(gates, 40000)
		tin, tout = norm(tin, 3000), norm(tout, 3000)
		pis, pos = norm(pis, 64), norm(pos, 64)
		if gates > maxGates {
			// Preserve the shape's ratios instead of truncating one axis.
			s := (gates + maxGates - 1) / maxGates
			gates /= s
			ffs /= s
			tin /= s
			tout /= s
		}
		p := Profile{
			Circuit: "fuzz", ScanFFs: ffs, Gates: gates,
			InboundTSVs: tin, OutboundTSVs: tout, PIs: pis, POs: pos,
		}
		n, err := Generate(p, seed)
		if err != nil {
			return // the generator may reject a shape, never emit a bad die
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("generated die fails validation: %v\nprofile %+v seed %d", err, p, seed)
		}
		st := netlist.CollectStats(n)
		wantPIs, wantPOs := pis, pos
		if wantPIs < 1 {
			wantPIs = 4
		}
		if wantPOs < 1 {
			wantPOs = 4
		}
		if st.ScanFFs != ffs || st.LogicGates != gates ||
			st.InboundTSVs != tin || st.OutboundTSVs != tout ||
			st.PIs != wantPIs || st.POs != wantPOs {
			t.Fatalf("stats %+v do not match profile %+v (PIs/POs defaulted to %d/%d)",
				st, p, wantPIs, wantPOs)
		}
		n2, err := Generate(p, seed)
		if err != nil {
			t.Fatalf("second generation rejected an accepted profile: %v", err)
		}
		if n.String() != n2.String() {
			t.Fatalf("same profile+seed generated different dies (%+v, seed %d)", p, seed)
		}
	})
}
