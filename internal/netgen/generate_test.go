package netgen

import (
	"strings"
	"testing"

	"wcm3d/internal/netlist"
)

func TestITC99ProfileCount(t *testing.T) {
	ps := ITC99Profiles()
	if len(ps) != 24 {
		t.Fatalf("profiles = %d, want 24 (6 circuits x 4 dies)", len(ps))
	}
	// Spot-check values against Table II of the paper.
	check := func(circuit string, die, ffs, gates, in, out int) {
		t.Helper()
		for _, p := range ps {
			if p.Circuit == circuit && p.Die == die {
				if p.ScanFFs != ffs || p.Gates != gates || p.InboundTSVs != in || p.OutboundTSVs != out {
					t.Errorf("%s/Die%d = %+v, want FF=%d G=%d in=%d out=%d",
						circuit, die, p, ffs, gates, in, out)
				}
				return
			}
		}
		t.Errorf("profile %s/Die%d missing", circuit, die)
	}
	check("b11", 0, 14, 120, 14, 16)
	check("b12", 2, 45, 344, 23, 42)
	check("b18", 1, 1033, 26698, 1561, 1875)
	check("b20", 3, 83, 7325, 408, 235)
	check("b22", 3, 6, 11358, 511, 481)
}

func TestITC99Circuit(t *testing.T) {
	dies := ITC99Circuit("b12")
	if len(dies) != 4 {
		t.Fatalf("b12 dies = %d, want 4", len(dies))
	}
	if ITC99Circuit("b99") != nil {
		t.Error("unknown circuit should return nil")
	}
	if len(ITC99CircuitNames()) != 6 {
		t.Error("want 6 circuit families")
	}
}

func TestGenerateMatchesProfileExactly(t *testing.T) {
	for _, p := range ITC99Profiles() {
		if p.Gates > 1000 {
			continue // large dies covered by TestGenerateLargeDie
		}
		n, err := Generate(p, 7)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		st := netlist.CollectStats(n)
		if st.ScanFFs != p.ScanFFs {
			t.Errorf("%s: FFs = %d, want %d", p.Name(), st.ScanFFs, p.ScanFFs)
		}
		if st.LogicGates != p.Gates {
			t.Errorf("%s: gates = %d, want %d", p.Name(), st.LogicGates, p.Gates)
		}
		if st.InboundTSVs != p.InboundTSVs {
			t.Errorf("%s: inbound = %d, want %d", p.Name(), st.InboundTSVs, p.InboundTSVs)
		}
		if st.OutboundTSVs != p.OutboundTSVs {
			t.Errorf("%s: outbound = %d, want %d", p.Name(), st.OutboundTSVs, p.OutboundTSVs)
		}
	}
}

func TestGenerateLargeDie(t *testing.T) {
	if testing.Short() {
		t.Skip("large die generation in -short mode")
	}
	p := Profile{Circuit: "b18", Die: 1, ScanFFs: 1033, Gates: 26698,
		InboundTSVs: 1561, OutboundTSVs: 1875, PIs: 9, POs: 8}
	n, err := Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	st := netlist.CollectStats(n)
	if st.LogicGates != p.Gates || st.ScanFFs != p.ScanFFs ||
		st.InboundTSVs != p.InboundTSVs || st.OutboundTSVs != p.OutboundTSVs {
		t.Errorf("large die stats %+v do not match profile %+v", st, p)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := ITC99Circuit("b12")[1]
	n1, err := Generate(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := Generate(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	if n1.String() != n2.String() {
		t.Error("same seed must generate identical dies")
	}
	n3, err := Generate(p, 43)
	if err != nil {
		t.Fatal(err)
	}
	if n1.String() == n3.String() {
		t.Error("different seeds should generate different dies")
	}
}

func TestGenerateAllSourcesUsed(t *testing.T) {
	// Every PI, TSV pad and flip-flop must have at least one fanout —
	// otherwise cones degenerate and the WCM graph loses nodes.
	p := ITC99Circuit("b11")[2] // only 3 FFs, 38+38 TSVs, 229 gates
	n, err := Generate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	fanouts := n.Fanouts()
	for _, id := range n.InboundTSVs() {
		if len(fanouts[id]) == 0 {
			t.Errorf("inbound TSV %s has no fanout", n.NameOf(id))
		}
	}
	for _, id := range n.FlipFlops() {
		if len(fanouts[id]) == 0 {
			t.Errorf("flip-flop %s has no fanout", n.NameOf(id))
		}
	}
	for _, id := range n.Inputs() {
		if len(fanouts[id]) == 0 {
			t.Errorf("input %s has no fanout", n.NameOf(id))
		}
	}
}

func TestGenerateFFsCaptureLogic(t *testing.T) {
	p := ITC99Circuit("b12")[3]
	n, err := Generate(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, ff := range n.FlipFlops() {
		d := n.Gate(ff).Fanin[0]
		if !n.TypeOf(d).IsCombinational() {
			t.Errorf("FF %s captures %s (%s), want combinational logic",
				n.NameOf(ff), n.NameOf(d), n.TypeOf(d))
		}
	}
}

func TestGenerateOutboundTSVsDriven(t *testing.T) {
	p := ITC99Circuit("b12")[2]
	n, err := Generate(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[netlist.SignalID]int{}
	for _, oi := range n.OutboundTSVs() {
		o := n.Outputs[oi]
		if !n.TypeOf(o.Signal).IsCombinational() {
			t.Errorf("outbound TSV %s driven by %s, want logic", o.Name, n.TypeOf(o.Signal))
		}
		seen[o.Signal]++
	}
	// Ports should be mostly distinct signals.
	if len(seen) < len(n.OutboundTSVs())*9/10 {
		t.Errorf("only %d distinct signals for %d outbound TSVs", len(seen), len(n.OutboundTSVs()))
	}
}

func TestGenerateRejectsDegenerate(t *testing.T) {
	if _, err := Generate(Profile{Circuit: "x", Gates: 2}, 1); err == nil {
		t.Error("degenerate profile should fail")
	}
}

func TestRandomDefaults(t *testing.T) {
	n, err := Random(RandomOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n.NumLogicGates() != 100 {
		t.Errorf("default gates = %d, want 100", n.NumLogicGates())
	}
	if err := n.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGeneratedDieRoundTrips(t *testing.T) {
	p := ITC99Circuit("b11")[0]
	n, err := Generate(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := n.Write(&sb); err != nil {
		t.Fatal(err)
	}
	n2, err := netlist.ParseString(n.Name, sb.String())
	if err != nil {
		t.Fatalf("generated die does not reparse: %v", err)
	}
	if n2.NumGates() != n.NumGates() {
		t.Error("round trip changed gate count")
	}
}

func TestProfileName(t *testing.T) {
	p := Profile{Circuit: "b20", Die: 3}
	if p.Name() != "b20/Die3" {
		t.Errorf("Name = %q", p.Name())
	}
}
