// Package netgen generates synthetic gate-level dies with controlled
// statistics. It substitutes for the paper's front end (ITC'99 RTL →
// Design Compiler synthesis → 3D-Craft partitioning): the wrapper-cell
// minimization algorithms are driven entirely by circuit *structure* —
// counts of flip-flops, gates and TSVs, the shape and modularity of
// fan-in/fan-out cones, and net locality — and the generator reproduces
// those statistics for every die of Table II exactly (counts) or
// realistically (cones, locality).
//
// Three structural properties matter and are engineered deliberately:
//
//   - bounded combinational depth (roughly 10-45 levels, like synthesized
//     logic): deep random logic is random-pattern resistant and full of
//     functional redundancy;
//   - no dead logic and few redundant fanin pairs: synthesis output is
//     (nearly) fully testable, so the generator drains dangling outputs
//     into downstream consumers and rejects ancestor-related fanin pairs
//     (absorption redundancy);
//   - modular cone structure: a partitioned die is a union of loosely
//     coupled subcircuits, so fan-in/fan-out cones of most flip-flop/TSV
//     pairs are disjoint — the property that makes scan-flip-flop reuse
//     (the paper's whole subject) possible at all. Gates are generated in
//     clusters with only a few percent of cross-cluster nets.
//
// Generation is deterministic: equal profile + seed → byte-identical die.
package netgen

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"wcm3d/internal/netlist"
)

// gateMix is the synthesis-typical distribution of combinational cell
// types (NAND/NOR-heavy, occasional XOR/MUX, sparse buffers).
var gateMix = []struct {
	typ    netlist.GateType
	weight int
}{
	{netlist.GateNand, 24},
	{netlist.GateNor, 16},
	{netlist.GateAnd, 14},
	{netlist.GateOr, 12},
	{netlist.GateNot, 14},
	{netlist.GateXor, 7},
	{netlist.GateXnor, 4},
	{netlist.GateMux2, 5},
	{netlist.GateBuf, 4},
}

var gateMixTotal = func() int {
	t := 0
	for _, g := range gateMix {
		t += g.weight
	}
	return t
}()

func pickType(rng *rand.Rand) netlist.GateType {
	r := rng.Intn(gateMixTotal)
	for _, g := range gateMix {
		if r < g.weight {
			return g.typ
		}
		r -= g.weight
	}
	return netlist.GateNand
}

// targetClusterGates sizes the loosely-coupled subcircuits.
const targetClusterGates = 70

// importsPerCluster is the number of foreign source signals (PIs, TSV
// pads, flip-flop outputs from other clusters) mixed into each cluster's
// candidate pool. Imports add independent variables — keeping the local
// logic irredundant even in source-poor clusters — and create the long
// cross-die nets that make wire-aware timing meaningful, without chaining
// combinational depth across clusters.
const importsPerCluster = 6

// Generate builds a die matching the profile exactly. The base seed is
// mixed with the profile name, so each die of a suite gets an independent
// but reproducible stream.
func Generate(p Profile, seed int64) (*netlist.Netlist, error) {
	if p.Gates < 4 {
		return nil, fmt.Errorf("netgen: profile %s needs at least 4 gates, got %d", p.Name(), p.Gates)
	}
	if p.PIs < 1 {
		p.PIs = 4
	}
	if p.POs < 1 {
		p.POs = 4
	}
	if p.PIs+p.InboundTSVs+p.ScanFFs == 0 {
		return nil, fmt.Errorf("netgen: profile %s has no sources", p.Name())
	}

	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", p.Name(), seed)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))

	n := netlist.New(p.Name())

	// ---- Sources: primary inputs, inbound TSV pads, flip-flops (Q side).
	var pis, tins, ffs []netlist.SignalID
	for i := 0; i < p.PIs; i++ {
		pis = append(pis, n.MustAddGate(netlist.GateInput, fmt.Sprintf("pi%d", i)))
	}
	for i := 0; i < p.InboundTSVs; i++ {
		tins = append(tins, n.MustAddGate(netlist.GateTSVIn, fmt.Sprintf("tin%d", i)))
	}
	for i := 0; i < p.ScanFFs; i++ {
		// D temporarily tied to a PI; rewired to real logic below.
		ffs = append(ffs, n.MustAddGate(netlist.GateDFF, fmt.Sprintf("ff%d", i), pis[rng.Intn(p.PIs)]))
	}

	// ---- Cluster assignment. Every cluster gets a roughly even share of
	// each source kind, so flip-flops and TSVs spread across the die's
	// subcircuits the way a min-cut partitioner leaves them.
	nClusters := p.Gates / targetClusterGates
	if nClusters < 1 {
		nClusters = 1
	}
	clusters := make([]*clusterState, nClusters)
	for c := range clusters {
		clusters[c] = &clusterState{}
	}
	assign := func(sigs []netlist.SignalID) {
		perm := rng.Perm(len(sigs))
		for i, pi := range perm {
			c := clusters[i%nClusters]
			c.sources = append(c.sources, sigs[pi])
		}
	}
	assign(pis)
	assign(tins)
	assign(ffs)
	ffCluster := make(map[netlist.SignalID]int)
	for ci, c := range clusters {
		for _, s := range c.sources {
			if n.TypeOf(s) == netlist.GateDFF {
				ffCluster[s] = ci
			}
		}
	}

	// Gate budget per cluster, proportional to source count.
	totalSources := len(pis) + len(tins) + len(ffs)
	assigned := 0
	for ci, c := range clusters {
		c.gateBudget = p.Gates * len(c.sources) / totalSources
		if c.gateBudget < 2 {
			c.gateBudget = 2
		}
		assigned += c.gateBudget
		_ = ci
	}
	// Distribute the rounding remainder (may be negative).
	for i := 0; assigned != p.Gates; i = (i + 1) % nClusters {
		if assigned < p.Gates {
			clusters[i].gateBudget++
			assigned++
		} else if clusters[i].gateBudget > 2 {
			clusters[i].gateBudget--
			assigned--
		}
	}

	// Imports: each cluster sees a few foreign sources as extra
	// independent variables. Primary inputs are imported preferentially:
	// they behave like global control nets (reset/enable) and — unlike
	// flip-flops and TSV pads — their fan-out cones play no role in the
	// wrapper-cell sharing conditions, so heavy PI fanout does not erode
	// the cone modularity the reuse methods depend on.
	if nClusters > 1 {
		ffPool := append([]netlist.SignalID(nil), ffs...)
		for _, c := range clusters {
			local := make(map[netlist.SignalID]bool, len(c.sources))
			for _, s := range c.sources {
				local[s] = true
			}
			for _, pi := range pis {
				if len(c.imports) >= importsPerCluster {
					break
				}
				if !local[pi] {
					c.imports = append(c.imports, pi)
				}
			}
			for tries := 0; len(c.imports) < importsPerCluster && tries < 4*len(ffPool); tries++ {
				cand := ffPool[rng.Intn(len(ffPool))]
				if !local[cand] && !contains(c.imports, cand) {
					c.imports = append(c.imports, cand)
				}
			}
		}
	}

	// Sink planning: each cluster's logic must converge into the sinks
	// that will consume it — its flip-flops' D pins plus the output
	// ports assigned to it below. The fabric tapers its final layers to
	// that width; logic left dangling beyond the sink count would be
	// unobservable (dead) and gut fault coverage.
	totalPorts := p.OutboundTSVs + p.POs
	for ci, c := range clusters {
		for _, src := range c.sources {
			if n.TypeOf(src) == netlist.GateDFF {
				c.sinks++
			}
		}
		for i := ci; i < totalPorts; i += nClusters {
			c.sinks++
		}
	}

	// ---- Fabric, cluster by cluster.
	gen := &generator{n: n, rng: rng, clusters: clusters}
	gateNo := 0
	for ci := range clusters {
		if err := gen.buildCluster(ci, &gateNo); err != nil {
			return nil, err
		}
	}

	// ---- Flip-flop D rewiring: shallow cluster-local logic. Real
	// next-state functions are narrow (a handful of gates per state
	// bit), so the D pin taps the early layers — this keeps each
	// flip-flop's fan-in cone small, which is what makes flip-flops
	// usable as observation wrapper cells (wide cones would overlap
	// every outbound TSV's cone and kill the sharing edges). The
	// wide-cone roots are left for output ports and the splice pass.
	for _, ff := range ffs {
		c := clusters[ffCluster[ff]]
		d := c.pickShallowSink(rng)
		if d == netlist.InvalidSignal {
			return nil, fmt.Errorf("netgen: cluster of %s has no logic for the D pin", n.NameOf(ff))
		}
		if err := n.RewireFanin(ff, 0, d); err != nil {
			return nil, fmt.Errorf("netgen: rewiring FF: %w", err)
		}
	}

	// ---- Output ports: outbound TSVs and bonded POs observe
	// cluster-local signals, spread across clusters.
	for i := 0; i < totalPorts; i++ {
		c := clusters[i%nClusters]
		sig := c.pickSink(rng)
		if sig == netlist.InvalidSignal {
			// Degenerate tiny cluster: fall back to any cluster.
			for _, alt := range clusters {
				if sig = alt.pickSink(rng); sig != netlist.InvalidSignal {
					break
				}
			}
			if sig == netlist.InvalidSignal {
				return nil, fmt.Errorf("netgen: no logic left for port %d", i)
			}
		}
		if i < p.OutboundTSVs {
			if err := n.AddOutput(fmt.Sprintf("tout%d", i), sig, netlist.PortTSVOut); err != nil {
				return nil, fmt.Errorf("netgen: adding outbound TSV: %w", err)
			}
		} else {
			if err := n.AddOutput(fmt.Sprintf("po%d", i-p.OutboundTSVs), sig, netlist.PortPO); err != nil {
				return nil, fmt.Errorf("netgen: adding PO: %w", err)
			}
		}
	}

	// ---- Mop-up, interleaved twice: fold unobservable logic into live
	// XOR gates (spliceDanglers) and rewire never-toggling gates
	// (deconstant). Each pass can expose a little work for the other —
	// a deconstant rewire may orphan a signal, a splice may correlate
	// one — so run the pair twice; the second round is a no-op almost
	// always.
	clusterOf := make(map[netlist.SignalID]int)
	for ci, c := range clusters {
		for _, g := range c.gates {
			clusterOf[g] = ci
		}
		for _, src := range c.sources {
			clusterOf[src] = ci
		}
	}
	for round := 0; round < 2; round++ {
		if err := spliceDanglers(n, rng, clusterOf); err != nil {
			return nil, err
		}
		if err := deconstant(n, rng); err != nil {
			return nil, err
		}
	}

	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("netgen: generated die invalid: %w", err)
	}
	return n, nil
}

// spliceDanglers folds dead logic back into the live circuit. Every
// unobservable cone drains into one or more dead roots (combinational
// outputs with no fanout and no port), so splicing each root into a live
// gate rescues its whole cone. A dead root has no descendants, which means
// any observable gate outside the root's fan-in cone is a legal consumer —
// no cycle is possible. XOR/XNOR gates are widened first (an extra XOR pin
// keeps the gate fully sensitive to its existing inputs); other n-ary
// gates serve as fallback, with the deconstant pass cleaning up any
// correlation they introduce.
func spliceDanglers(n *netlist.Netlist, rng *rand.Rand, clusterOf map[netlist.SignalID]int) error {
	fanouts := n.Fanouts()

	// Observability: backward reachability from FF D pins and ports.
	obs := make([]bool, n.NumGates())
	for _, ff := range n.FlipFlops() {
		obs[n.Gate(ff).Fanin[0]] = true
	}
	for _, o := range n.Outputs {
		obs[o.Signal] = true
	}
	order := n.TopoOrder()
	for k := len(order) - 1; k >= 0; k-- {
		id := order[k]
		if obs[id] {
			continue
		}
		for _, fo := range fanouts[id] {
			if n.TypeOf(fo).IsCombinational() && obs[fo] {
				obs[id] = true
				break
			}
		}
	}

	hasPort := make([]bool, n.NumGates())
	for _, o := range n.Outputs {
		hasPort[o.Signal] = true
	}
	var roots []netlist.SignalID
	for i := range n.Gates {
		id := netlist.SignalID(i)
		if n.TypeOf(id).IsCombinational() && len(fanouts[id]) == 0 && !hasPort[id] {
			roots = append(roots, id)
		}
	}
	if len(roots) == 0 {
		return nil
	}

	const maxPins = 6
	widenable := func(id netlist.SignalID, xorOnly bool) bool {
		if !obs[id] || len(n.Gate(id).Fanin) >= maxPins {
			return false
		}
		switch n.TypeOf(id) {
		case netlist.GateXor, netlist.GateXnor:
			return true
		case netlist.GateAnd, netlist.GateNand, netlist.GateOr, netlist.GateNor:
			return !xorOnly
		default:
			return false
		}
	}
	// Targets are ranked: same-cluster XORs, then same-cluster n-ary
	// gates, then global XORs, then anything. Cluster-local splices
	// preserve the cone modularity the wrapper-reuse methods depend on —
	// a cross-cluster splice would entangle two clusters' fan-out cones.
	var xorTargets, otherTargets []netlist.SignalID
	for i := range n.Gates {
		id := netlist.SignalID(i)
		if widenable(id, true) {
			xorTargets = append(xorTargets, id)
		} else if widenable(id, false) {
			otherTargets = append(otherTargets, id)
		}
	}
	rng.Shuffle(len(xorTargets), func(i, j int) { xorTargets[i], xorTargets[j] = xorTargets[j], xorTargets[i] })
	rng.Shuffle(len(otherTargets), func(i, j int) { otherTargets[i], otherTargets[j] = otherTargets[j], otherTargets[i] })

	for _, root := range roots {
		cone := n.FaninCone(root)
		rc, rcOK := clusterOf[root]
		try := func(tid netlist.SignalID, localOnly bool) bool {
			if localOnly && rcOK {
				if tc, ok := clusterOf[tid]; !ok || tc != rc {
					return false
				}
			}
			if len(n.Gate(tid).Fanin) >= maxPins || cone.Has(tid) || contains(n.Gate(tid).Fanin, root) {
				return false
			}
			return n.AppendFanin(tid, root) == nil
		}
		spliced := false
		for _, localOnly := range [2]bool{true, false} {
			for _, tid := range xorTargets {
				if try(tid, localOnly) {
					spliced = true
					break
				}
			}
			if !spliced {
				for _, tid := range otherTargets {
					if try(tid, localOnly) {
						spliced = true
						break
					}
				}
			}
			if spliced {
				break
			}
		}
		// With zero eligible targets (pathological tiny circuits) the
		// root stays dead; Validate still passes and the residue is
		// negligible.
	}
	return nil
}

// GenerateSuite generates all 24 Table II dies with one base seed.
func GenerateSuite(seed int64) ([]*netlist.Netlist, error) {
	profiles := ITC99Profiles()
	out := make([]*netlist.Netlist, 0, len(profiles))
	for _, p := range profiles {
		n, err := Generate(p, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// RandomOptions sizes a random test circuit with no profile constraints.
type RandomOptions struct {
	Gates, FFs, PIs, POs, InboundTSVs, OutboundTSVs int
	Seed                                            int64
}

// Random generates an arbitrary die for tests and fuzzing.
func Random(o RandomOptions) (*netlist.Netlist, error) {
	if o.Gates == 0 {
		o.Gates = 100
	}
	if o.PIs == 0 {
		o.PIs = 4
	}
	if o.POs == 0 {
		o.POs = 2
	}
	return Generate(Profile{
		Circuit:      "rand",
		Die:          0,
		ScanFFs:      o.FFs,
		Gates:        o.Gates,
		InboundTSVs:  o.InboundTSVs,
		OutboundTSVs: o.OutboundTSVs,
		PIs:          o.PIs,
		POs:          o.POs,
	}, o.Seed)
}

// clusterState is the per-subcircuit generation state.
type clusterState struct {
	sources    []netlist.SignalID
	imports    []netlist.SignalID // foreign sources usable as fanin
	gateBudget int
	pool       []netlist.SignalID // all signals of the cluster, creation order
	dangling   []netlist.SignalID // fanout-0 signals, deque (head..end)
	dangHead   int
	gates      []netlist.SignalID // combinational gates only
	sinks      int                // planned consumers (FF D pins + ports)
	sinkUsed   map[netlist.SignalID]bool
}

func (c *clusterState) numDangling() int { return len(c.dangling) - c.dangHead }

// pickSink consumes a dangling combinational signal, or a late gate when
// none dangle, avoiding signals it already handed out (ports on distinct
// nets, like real designs).
func (c *clusterState) pickSink(rng *rand.Rand) netlist.SignalID {
	for c.numDangling() > 0 {
		s := c.dangling[len(c.dangling)-1]
		c.dangling = c.dangling[:len(c.dangling)-1]
		// Sources may still dangle in degenerate clusters; skip them.
		if contains(c.gates, s) {
			c.markSink(s)
			return s
		}
	}
	if len(c.gates) == 0 {
		return netlist.InvalidSignal
	}
	lateFrom := len(c.gates) / 2
	for tries := 0; tries < 16; tries++ {
		s := c.gates[lateFrom+rng.Intn(len(c.gates)-lateFrom)]
		if !c.sinkUsed[s] {
			c.markSink(s)
			return s
		}
	}
	return c.gates[lateFrom+rng.Intn(len(c.gates)-lateFrom)]
}

// pickShallowSink returns a distinct gate from the cluster's first half
// (shallow layers, narrow fan-in cones) for flip-flop D pins.
func (c *clusterState) pickShallowSink(rng *rand.Rand) netlist.SignalID {
	if len(c.gates) == 0 {
		return netlist.InvalidSignal
	}
	upTo := len(c.gates)/2 + 1
	for tries := 0; tries < 16; tries++ {
		s := c.gates[rng.Intn(upTo)]
		if !c.sinkUsed[s] {
			c.markSink(s)
			return s
		}
	}
	return c.gates[rng.Intn(upTo)]
}

func (c *clusterState) markSink(s netlist.SignalID) {
	if c.sinkUsed == nil {
		c.sinkUsed = make(map[netlist.SignalID]bool)
	}
	c.sinkUsed[s] = true
}

func contains(list []netlist.SignalID, s netlist.SignalID) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// generator holds cross-cluster state for the fabric build.
type generator struct {
	n        *netlist.Netlist
	rng      *rand.Rand
	clusters []*clusterState

	ancestors map[netlist.SignalID][]netlist.SignalID
}

// ancCap truncates the approximate ancestor sets used to reject
// absorption-redundant fanin pairs.
const ancCap = 256

func (g *generator) related(a, b netlist.SignalID) bool {
	for _, x := range g.ancestors[a] {
		if x == b {
			return true
		}
	}
	for _, x := range g.ancestors[b] {
		if x == a {
			return true
		}
	}
	return false
}

// buildCluster generates one cluster's layered fabric.
func (g *generator) buildCluster(ci int, gateNo *int) error {
	c := g.clusters[ci]
	rng := g.rng
	if g.ancestors == nil {
		g.ancestors = make(map[netlist.SignalID][]netlist.SignalID)
	}
	c.pool = append(c.pool, c.sources...)
	c.pool = append(c.pool, c.imports...)
	rng.Shuffle(len(c.pool), func(i, j int) { c.pool[i], c.pool[j] = c.pool[j], c.pool[i] })
	c.dangling = append(c.dangling, c.sources...)
	rng.Shuffle(len(c.dangling), func(i, j int) { c.dangling[i], c.dangling[j] = c.dangling[j], c.dangling[i] })

	// Keep layers wide (roughly 10 gates) so in-cluster logic stays
	// shallow; deep narrow chains over few variables collapse into
	// redundant functions.
	depth := 3 + c.gateBudget/10
	if depth > 28 {
		depth = 28
	}
	boundary := len(c.pool)

	popBack := func() netlist.SignalID {
		s := c.dangling[len(c.dangling)-1]
		c.dangling = c.dangling[:len(c.dangling)-1]
		return s
	}
	popFront := func() netlist.SignalID {
		s := c.dangling[c.dangHead]
		c.dangHead++
		return s
	}
	// The cluster is built as a near-forest: gates overwhelmingly consume
	// fresh (fanout-free) signals, and when the dangling pool runs dry a
	// source or import is re-issued as a new leaf. Trees are fully
	// testable; the limited pool picks below add realistic reconvergent
	// fanout without collapsing the logic into redundant functions.
	leaves := append(append([]netlist.SignalID(nil), c.sources...), c.imports...)
	pickFanin := func(remaining int) netlist.SignalID {
		switch {
		// Force-drain oldest danglers (the initial sources) when gate
		// capacity runs low: every gate has >= 1 pin, so the backlog
		// stays below the remaining budget.
		case c.numDangling() >= remaining:
			return popFront()
		case c.numDangling() > 0 && rng.Intn(20) < 18:
			return popBack()
		case rng.Intn(3) > 0:
			return leaves[rng.Intn(len(leaves))] // re-leaf a source
		default:
			window := 48
			if window > boundary {
				window = boundary
			}
			return c.pool[boundary-1-rng.Intn(window)]
		}
	}

	// Layer widths taper linearly from wide entry layers down to the
	// cluster's sink count, so the last layer's outputs match the
	// consumers that will capture them.
	minWidth := c.sinks
	if minWidth < 1 {
		minWidth = 1
	}
	created := 0
	var pending []netlist.SignalID
	for layer := 0; layer < depth && created < c.gateBudget; layer++ {
		remainingLayers := depth - layer
		inLayer := (c.gateBudget - created) / remainingLayers
		// Linear taper: early layers get up to ~1.6x the average, the
		// final stretch narrows toward the sink width.
		frac := float64(layer) / float64(depth)
		inLayer = int(float64(inLayer) * (1.6 - 1.2*frac))
		if inLayer < minWidth {
			inLayer = minWidth
		}
		if layer == depth-1 || inLayer > c.gateBudget-created {
			inLayer = c.gateBudget - created
		}
		boundary = len(c.pool)
		c.dangling = append(c.dangling, pending...)
		pending = pending[:0]
		for i := 0; i < inLayer; i++ {
			typ := pickType(rng)
			var nIn int
			switch {
			case typ == netlist.GateNot || typ == netlist.GateBuf:
				nIn = 1
			case typ == netlist.GateMux2:
				nIn = 3
			default:
				nIn = 2 + rng.Intn(4)/3 // mostly 2-input, some 3-input
			}
			fanin := make([]netlist.SignalID, nIn)
			for j := range fanin {
				// Distinct, non-ancestor-related pins: duplicates and
				// dominated pairs breed redundancy synthesis would
				// have removed. When local picks keep colliding, fall
				// back to an independent source leaf: a complementary
				// pair accepted here would make the gate constant and
				// poison its whole fan-in tree with untestable faults.
				bad := func(cand netlist.SignalID) bool {
					for _, prev := range fanin[:j] {
						if prev == cand || g.related(prev, cand) {
							return true
						}
					}
					return false
				}
				picked := false
				for attempt := 0; attempt < 12; attempt++ {
					if cand := pickFanin(c.gateBudget - created); !bad(cand) {
						fanin[j] = cand
						picked = true
						break
					}
				}
				for attempt := 0; attempt < 12 && !picked; attempt++ {
					if cand := leaves[rng.Intn(len(leaves))]; !bad(cand) {
						fanin[j] = cand
						picked = true
					}
				}
				if !picked {
					fanin[j] = leaves[rng.Intn(len(leaves))]
				}
			}
			gid := g.n.MustAddGate(typ, fmt.Sprintf("g%d", *gateNo), fanin...)
			*gateNo++
			created++
			c.pool = append(c.pool, gid)
			c.gates = append(c.gates, gid)
			pending = append(pending, gid)
			g.recordAncestors(gid, fanin)
		}
	}
	c.dangling = append(c.dangling, pending...)

	// Compact: drop entries that gained fanout via later picks.
	fanouts := map[netlist.SignalID]bool{}
	for _, gid := range c.gates {
		for _, f := range g.n.Gate(gid).Fanin {
			fanouts[f] = true
		}
	}
	var live []netlist.SignalID
	for _, s := range c.dangling[c.dangHead:] {
		if !fanouts[s] {
			live = append(live, s)
		}
	}
	c.dangling, c.dangHead = live, 0
	return nil
}

func (g *generator) recordAncestors(gid netlist.SignalID, fanin []netlist.SignalID) {
	anc := make([]netlist.SignalID, 0, ancCap)
	seen := make(map[netlist.SignalID]struct{}, ancCap)
	add := func(x netlist.SignalID) {
		if _, ok := seen[x]; ok || len(anc) >= ancCap {
			return
		}
		seen[x] = struct{}{}
		anc = append(anc, x)
	}
	for _, f := range fanin {
		add(f)
	}
	for _, f := range fanin {
		for _, x := range g.ancestors[f] {
			add(x)
		}
	}
	g.ancestors[gid] = anc
}

// deconstant finds combinational gates whose output never toggles across a
// random-simulation sweep and rewires one input pin to an independent
// source, repeating until the sweep finds nothing. Rewiring to a level-0
// source can never create a cycle.
func deconstant(n *netlist.Netlist, rng *rand.Rand) error {
	var srcs []netlist.SignalID
	for i := range n.Gates {
		id := netlist.SignalID(i)
		switch n.TypeOf(id) {
		case netlist.GateInput, netlist.GateTSVIn, netlist.GateDFF:
			srcs = append(srcs, id)
		}
	}
	if len(srcs) == 0 {
		return nil
	}
	const patterns = 96
	for sweep := 0; sweep < 4; sweep++ {
		seen0 := make([]bool, n.NumGates())
		seen1 := make([]bool, n.NumGates())
		assign := make(map[netlist.SignalID]bool, len(srcs))
		for p := 0; p < patterns; p++ {
			for _, s := range srcs {
				assign[s] = rng.Intn(2) == 1
			}
			vals, err := n.Evaluate(assign)
			if err != nil {
				return fmt.Errorf("netgen: deconstant sim: %w", err)
			}
			for i, v := range vals {
				if v {
					seen1[i] = true
				} else {
					seen0[i] = true
				}
			}
		}
		fixed := 0
		for i := range n.Gates {
			id := netlist.SignalID(i)
			if !n.TypeOf(id).IsCombinational() || (seen0[i] && seen1[i]) {
				continue
			}
			g := n.Gate(id)
			pin := rng.Intn(len(g.Fanin))
			for tries := 0; tries < 8; tries++ {
				cand := srcs[rng.Intn(len(srcs))]
				if !contains(g.Fanin, cand) {
					if err := n.RewireFanin(id, pin, cand); err != nil {
						return fmt.Errorf("netgen: deconstant rewire: %w", err)
					}
					fixed++
					break
				}
			}
		}
		if fixed == 0 {
			return nil
		}
	}
	return nil
}
