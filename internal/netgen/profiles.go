package netgen

// Profile describes one die of a partitioned benchmark circuit: the exact
// counters Table II of the paper reports. Generate produces a synthetic
// gate-level die matching the profile exactly.
type Profile struct {
	// Circuit is the benchmark family name ("b12").
	Circuit string
	// Die is the die index within the 4-die stack (0-3).
	Die int
	// ScanFFs, Gates, InboundTSVs and OutboundTSVs are the Table II
	// counters: scan flip-flops, combinational gates, TSV outputs
	// entering this die and TSV inputs leaving it.
	ScanFFs      int
	Gates        int
	InboundTSVs  int
	OutboundTSVs int
	// PIs and POs are bonded pad counts (not in Table II; sized
	// proportionally to the die).
	PIs, POs int
}

// Name returns the die identifier used in reports, e.g. "b12/Die2".
func (p Profile) Name() string {
	return p.Circuit + "/Die" + string(rune('0'+p.Die))
}

// itc99 lists the 24 dies of Table II: six ITC'99 circuits (b11, b12, b18,
// b20, b21, b22) partitioned into four dies each by the authors' 3D flow.
// ScanFFs/Gates/Inbound/Outbound are copied from the paper; PI/PO counts
// are chosen at ITC'99-typical scale.
var itc99 = []Profile{
	{"b11", 0, 14, 120, 14, 16, 5, 4},
	{"b11", 1, 15, 234, 27, 43, 4, 3},
	{"b11", 2, 3, 229, 38, 38, 3, 3},
	{"b11", 3, 9, 148, 23, 11, 3, 4},

	{"b12", 0, 7, 304, 23, 27, 4, 4},
	{"b12", 1, 18, 397, 41, 41, 3, 4},
	{"b12", 2, 45, 344, 23, 42, 4, 3},
	{"b12", 3, 51, 317, 25, 5, 4, 4},

	{"b18", 0, 515, 22934, 772, 733, 10, 8},
	{"b18", 1, 1033, 26698, 1561, 1875, 9, 8},
	{"b18", 2, 833, 23575, 1732, 1797, 9, 9},
	{"b18", 3, 641, 20825, 810, 771, 9, 8},

	{"b20", 0, 180, 6937, 251, 363, 8, 6},
	{"b20", 1, 49, 8603, 720, 780, 8, 6},
	{"b20", 2, 118, 8101, 740, 778, 8, 6},
	{"b20", 3, 83, 7325, 408, 235, 8, 6},

	{"b21", 0, 196, 6200, 264, 328, 8, 6},
	{"b21", 1, 113, 9172, 836, 775, 8, 6},
	{"b21", 2, 69, 9093, 837, 895, 8, 6},
	{"b21", 3, 52, 6402, 368, 343, 8, 6},

	{"b22", 0, 225, 9427, 499, 483, 8, 6},
	{"b22", 1, 201, 12726, 1006, 1065, 8, 6},
	{"b22", 2, 181, 13075, 1031, 1064, 8, 6},
	{"b22", 3, 6, 11358, 511, 481, 8, 6},
}

// ITC99Profiles returns the 24 die profiles of Table II. The returned slice
// is a copy; callers may mutate it.
func ITC99Profiles() []Profile {
	return append([]Profile(nil), itc99...)
}

// ITC99Circuit returns the four die profiles of one benchmark family
// ("b11" ... "b22"), or nil if unknown.
func ITC99Circuit(name string) []Profile {
	var out []Profile
	for _, p := range itc99 {
		if p.Circuit == name {
			out = append(out, p)
		}
	}
	return out
}

// ITC99CircuitNames returns the six family names in paper order.
func ITC99CircuitNames() []string {
	return []string{"b11", "b12", "b18", "b20", "b21", "b22"}
}
