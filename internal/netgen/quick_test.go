package netgen

import (
	"testing"
	"testing/quick"

	"wcm3d/internal/netlist"
)

// TestQuickProfileInvariants: any sane random profile generates a die that
// validates, matches its counters exactly, and keeps every source driving
// logic.
func TestQuickProfileInvariants(t *testing.T) {
	f := func(gatesRaw, ffsRaw, inRaw, outRaw uint16, seed int64) bool {
		p := Profile{
			Circuit:      "q",
			Gates:        50 + int(gatesRaw%400),
			ScanFFs:      int(ffsRaw % 24),
			InboundTSVs:  int(inRaw % 30),
			OutboundTSVs: int(outRaw % 30),
			PIs:          4,
			POs:          3,
		}
		n, err := Generate(p, seed)
		if err != nil {
			return false
		}
		if err := n.Validate(); err != nil {
			return false
		}
		st := netlist.CollectStats(n)
		if st.ScanFFs != p.ScanFFs || st.LogicGates != p.Gates ||
			st.InboundTSVs != p.InboundTSVs || st.OutboundTSVs != p.OutboundTSVs {
			return false
		}
		fanouts := n.Fanouts()
		for _, id := range n.InboundTSVs() {
			if len(fanouts[id]) == 0 {
				return false
			}
		}
		for _, ff := range n.FlipFlops() {
			if len(fanouts[ff]) == 0 {
				return false
			}
			if !n.TypeOf(n.Gate(ff).Fanin[0]).IsCombinational() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeterminism: generation is a pure function of (profile, seed).
func TestQuickDeterminism(t *testing.T) {
	f := func(gatesRaw uint8, seed int64) bool {
		p := Profile{Circuit: "det", Gates: 60 + int(gatesRaw), ScanFFs: 6,
			InboundTSVs: 5, OutboundTSVs: 5, PIs: 4, POs: 2}
		a, err := Generate(p, seed)
		if err != nil {
			return false
		}
		b, err := Generate(p, seed)
		if err != nil {
			return false
		}
		return a.String() == b.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestModularityProperty: the generator's cluster structure must yield a
// healthy fraction of disjoint fan-out cone pairs among TSVs — the
// precondition for any scan-flip-flop reuse at all.
func TestModularityProperty(t *testing.T) {
	n, err := Generate(Profile{
		Circuit: "mod", Gates: 600, ScanFFs: 24,
		InboundTSVs: 16, OutboundTSVs: 16, PIs: 6, POs: 4,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	tsvs := n.InboundTSVs()
	cones := netlist.NewConeSet(n, tsvs)
	mask := netlist.NewBitSet(n.NumGates())
	for i := range n.Gates {
		id := netlist.SignalID(i)
		if n.TypeOf(id).IsSource() || n.TypeOf(id) == netlist.GateDFF {
			mask.Set(id)
		}
	}
	disjoint, total := 0, 0
	for i := 0; i < len(tsvs); i++ {
		for j := i + 1; j < len(tsvs); j++ {
			total++
			if !cones.Fanout(tsvs[i]).IntersectsExcluding(cones.Fanout(tsvs[j]), mask) {
				disjoint++
			}
		}
	}
	if frac := float64(disjoint) / float64(total); frac < 0.25 {
		t.Errorf("only %.0f%% of TSV pairs have disjoint cones; reuse needs modularity", 100*frac)
	}
}
