package wcmgraph

import (
	"math/rand"
	"testing"
)

// graphSpec is a reusable recipe for rebuilding identical graphs cheaply
// inside a benchmark loop (no RNG on the hot path).
type graphSpec struct {
	nodes   int
	ff      []bool
	edges   [][2]int32
	overlap []bool
}

func makeSpec(nodes int, density float64, seed int64) *graphSpec {
	rng := rand.New(rand.NewSource(seed))
	sp := &graphSpec{nodes: nodes, ff: make([]bool, nodes)}
	for i := range sp.ff {
		sp.ff[i] = i%3 == 2
	}
	for a := 0; a < nodes; a++ {
		for b := a + 1; b < nodes; b++ {
			if rng.Float64() < density {
				sp.edges = append(sp.edges, [2]int32{int32(a), int32(b)})
				sp.overlap = append(sp.overlap, rng.Intn(4) == 0)
			}
		}
	}
	return sp
}

func (sp *graphSpec) build() *Graph {
	g := New(sp.nodes)
	for i := 0; i < sp.nodes; i++ {
		node := Node{Budget: 1e18, Budget2: 1e18}
		if sp.ff[i] {
			node.HasFF = true
			node.FF = int32(i)
		}
		if _, err := g.AddNode(node); err != nil {
			panic(err)
		}
	}
	for i, e := range sp.edges {
		if sp.overlap[i] {
			g.AddOverlapEdge(int(e[0]), int(e[1]))
		} else {
			g.AddEdge(int(e[0]), int(e[1]))
		}
	}
	return g
}

// partitionLoop mimics Algorithm 2's consumption pattern: take the
// selected pair, merge it three times out of four, delete the edge
// otherwise. Selection order is identical for both pickers (pinned by the
// equivalence tests), so the mutation work is the same and the benchmark
// difference is the selection cost alone.
func partitionLoop(b *testing.B, g *Graph, pick func() (int, int, bool)) int {
	steps := 0
	for {
		n1, n2, ok := pick()
		if !ok {
			return steps
		}
		if steps%4 == 3 {
			g.DeleteEdge(n1, n2)
		} else if _, err := g.Merge(n1, n2, 0); err != nil {
			b.Fatal(err)
		}
		steps++
	}
}

// BenchmarkPartition compares min-degree pair selection via the
// degree-bucket index against the linear-scan reference on a 2k-node
// sharing graph — the Algorithm 2 bottleneck this PR attacks.
func BenchmarkPartition(b *testing.B) {
	sp := makeSpec(2048, 0.004, 1)
	b.Logf("graph: %d nodes, %d edges", sp.nodes, len(sp.edges))
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := sp.build()
			partitionLoop(b, g, g.MinDegreePair)
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := sp.build()
			partitionLoop(b, g, g.minDegreePairScan)
		}
	})
}
