package wcmgraph

import (
	"math/rand"
	"testing"
)

// randomGraph builds a graph of n nodes (every third one a flip-flop) with
// random clean and overlap edges at the given density.
func randomGraph(rng *rand.Rand, n int, density float64) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		node := Node{Budget: 1e9, Budget2: 1e9}
		if i%3 == 2 {
			node.HasFF = true
			node.FF = int32(i)
		}
		if _, err := g.AddNode(node); err != nil {
			panic(err)
		}
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if rng.Float64() >= density {
				continue
			}
			if rng.Intn(4) == 0 {
				g.AddOverlapEdge(a, b)
			} else {
				g.AddEdge(a, b)
			}
		}
	}
	return g
}

// TestMinDegreePairMatchesScan drives randomized graphs through full
// partition runs, asserting at every single iteration that the
// degree-bucket index picks exactly the pair the linear-scan reference
// picks — same tier order, same lowest-id tie-breaking — while merges and
// edge deletions mutate the graph underneath. Both index modes are pinned:
// the plain one and the candidate-caching one sessions enable.
func TestMinDegreePairMatchesScan(t *testing.T) {
	for _, cached := range []bool{false, true} {
		for seed := int64(0); seed < 20; seed++ {
			rng := rand.New(rand.NewSource(seed))
			g := randomGraph(rng, 40+rng.Intn(80), 0.02+rng.Float64()*0.15)
			if cached {
				g.EnablePickCache()
			}
			for step := 0; ; step++ {
				i1, i2, iok := g.MinDegreePair()
				s1, s2, sok := g.minDegreePairScan()
				if iok != sok || i1 != s1 || i2 != s2 {
					t.Fatalf("cached=%v seed %d step %d: index picked (%d,%d,%v), scan picked (%d,%d,%v)",
						cached, seed, step, i1, i2, iok, s1, s2, sok)
				}
				if !iok {
					break
				}
				// Alternate merge and delete like the partitioner does when
				// mergeFits flips, so both mutation paths exercise the index.
				if rng.Intn(3) != 0 {
					if _, err := g.Merge(i1, i2, 0); err != nil {
						t.Fatalf("seed %d step %d: %v", seed, step, err)
					}
				} else {
					g.DeleteEdge(i1, i2)
				}
			}
		}
	}
}

// TestPickCacheLongDeleteRuns drives the pick cache through the workload
// it exists for — long runs of consecutive DeleteEdge calls between rare
// merges, deeper than the candidate capacity so exhaustion-rescans are
// exercised — pinning every pick against the scan oracle.
func TestPickCacheLongDeleteRuns(t *testing.T) {
	for seed := int64(300); seed < 310; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 120, 0.6) // dense: degrees far above pickCacheCap
		g.EnablePickCache()
		for step := 0; ; step++ {
			i1, i2, iok := g.MinDegreePair()
			s1, s2, sok := g.minDegreePairScan()
			if iok != sok || i1 != s1 || i2 != s2 {
				t.Fatalf("seed %d step %d: cached (%d,%d,%v) != scan (%d,%d,%v)",
					seed, step, i1, i2, iok, s1, s2, sok)
			}
			if !iok {
				break
			}
			if rng.Intn(40) == 0 {
				if _, err := g.Merge(i1, i2, 0); err != nil {
					t.Fatal(err)
				}
			} else {
				g.DeleteEdge(i1, i2)
			}
		}
	}
}

// TestMinDegreePlaneMatchesScanPerTier pins each of the four tiers
// individually, including the tiers the combined MinDegreePair would have
// short-circuited past.
func TestMinDegreePlaneMatchesScanPerTier(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 64, 0.08)
		for step := 0; step < 200; step++ {
			for _, tier := range []struct{ clean, noFF bool }{
				{true, true}, {true, false}, {false, true}, {false, false},
			} {
				i1, i2, iok := g.minDegreePlane(tier.clean, tier.noFF)
				s1, s2, sok := g.minDegreePlaneScan(tier.clean, tier.noFF)
				if iok != sok || i1 != s1 || i2 != s2 {
					t.Fatalf("seed %d step %d tier %+v: index (%d,%d,%v) != scan (%d,%d,%v)",
						seed, step, tier, i1, i2, iok, s1, s2, sok)
				}
			}
			n1, n2, ok := g.MinDegreePair()
			if !ok {
				break
			}
			switch rng.Intn(4) {
			case 0:
				g.DeleteEdge(n1, n2)
			case 1:
				// Re-adding a deleted edge exercises index insertions on
				// nodes whose degree dropped to zero and came back.
				a, b := rng.Intn(64), rng.Intn(64)
				if a != b && g.nodes[a].alive && g.nodes[b].alive {
					g.AddEdge(a, b)
				}
			default:
				if _, err := g.Merge(n1, n2, 0); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestDegreeIndexConsistency cross-checks the index contents against the
// node counters after a long random mutation sequence: every alive node
// with positive degree must be found, with its exact degree, in the right
// views.
func TestDegreeIndexConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 100, 0.05)
	for step := 0; step < 300; step++ {
		n1, n2, ok := g.MinDegreePair()
		if !ok {
			break
		}
		if step%2 == 0 {
			g.DeleteEdge(n1, n2)
		} else if _, err := g.Merge(n1, n2, 0); err != nil {
			t.Fatal(err)
		}
	}
	for plane, degOf := range map[int]func(*Node) int32{
		planeAll:   func(n *Node) int32 { return n.deg },
		planeClean: func(n *Node) int32 { return n.cleanDeg },
	} {
		for filter := 0; filter < 2; filter++ {
			idx := &g.degIdx[plane][filter]
			want := 0
			for i := range g.nodes {
				n := &g.nodes[i]
				member := n.alive && degOf(n) > 0 && !(filter == 1 && n.HasFF)
				if member {
					want++
				}
				d := degOf(n)
				inBucket := false
				if int(d) < len(idx.buckets) && idx.buckets[d] != nil {
					inBucket = idx.buckets[d][i>>6]&(1<<(uint(i)&63)) != 0
				}
				if member != inBucket {
					t.Errorf("plane %d filter %d node %d: member=%v inBucket=%v (deg %d)",
						plane, filter, i, member, inBucket, d)
				}
			}
			if idx.size != want {
				t.Errorf("plane %d filter %d: size %d, want %d", plane, filter, idx.size, want)
			}
		}
	}
}
