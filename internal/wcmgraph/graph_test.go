package wcmgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddNodesAndEdges(t *testing.T) {
	g := New(4)
	ids := make([]int, 4)
	for i := range ids {
		id, err := g.AddNode(Node{Budget: 100})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	g.AddEdge(ids[0], ids[1])
	g.AddEdge(ids[1], ids[2])
	g.AddEdge(ids[0], ids[1]) // idempotent
	g.AddEdge(ids[0], ids[0]) // self-loop rejected
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(ids[0], ids[1]) || g.HasEdge(ids[0], ids[2]) {
		t.Error("adjacency wrong")
	}
	if g.Node(ids[1]).Degree() != 2 {
		t.Errorf("deg(1) = %d, want 2", g.Node(ids[1]).Degree())
	}
	g.DeleteEdge(ids[0], ids[1])
	if g.NumEdges() != 1 || g.Node(ids[0]).Degree() != 0 {
		t.Error("DeleteEdge bookkeeping wrong")
	}
	g.DeleteEdge(ids[0], ids[1]) // idempotent
	if g.NumEdges() != 1 {
		t.Error("double delete changed count")
	}
}

func TestMinDegreePair(t *testing.T) {
	g := New(4)
	a, _ := g.AddNode(Node{})
	b, _ := g.AddNode(Node{})
	c, _ := g.AddNode(Node{})
	d, _ := g.AddNode(Node{})
	// a-b, b-c, c-d, b-d: degrees a=1 b=3 c=2 d=2.
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(c, d)
	g.AddEdge(b, d)
	n1, n2, ok := g.MinDegreePair()
	if !ok {
		t.Fatal("expected a pair")
	}
	if n1 != a || n2 != b {
		t.Errorf("pair = (%d,%d), want (a=%d, b=%d)", n1, n2, a, b)
	}
}

func TestMinDegreePairEmpty(t *testing.T) {
	g := New(2)
	g.AddNode(Node{})
	g.AddNode(Node{})
	if _, _, ok := g.MinDegreePair(); ok {
		t.Error("no edges: no pair")
	}
}

func TestMergeKeepsCliqueInvariant(t *testing.T) {
	// Triangle a-b-c plus pendant a-d. Merging a,b must keep only c (the
	// common neighbor); d drops away.
	g := New(4)
	a, _ := g.AddNode(Node{HasFF: true, FF: 7, Budget: 10, Load: 1, X: 0, Y: 0})
	b, _ := g.AddNode(Node{Members: []int32{5}, Budget: 20, Load: 2, X: 2, Y: 2})
	c, _ := g.AddNode(Node{Members: []int32{6}, Budget: 30})
	d, _ := g.AddNode(Node{Members: []int32{9}, Budget: 40})
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(a, c)
	g.AddEdge(a, d)
	m, err := g.Merge(a, b, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	mn := g.Node(m)
	if !mn.HasFF || mn.FF != 7 {
		t.Error("merged node must inherit the flip-flop")
	}
	if mn.Load != 3.5 {
		t.Errorf("Load = %v, want 3.5", mn.Load)
	}
	if mn.Budget != 10 {
		t.Errorf("Budget = %v, want min(10,20)", mn.Budget)
	}
	if len(mn.Members) != 1 || mn.Members[0] != 5 {
		t.Errorf("Members = %v, want [5]", mn.Members)
	}
	if g.Node(a).Alive() || g.Node(b).Alive() {
		t.Error("merged-away nodes must die")
	}
	if !g.HasEdge(m, c) {
		t.Error("common neighbor c must stay adjacent")
	}
	if g.HasEdge(m, d) {
		t.Error("non-common neighbor d must not be adjacent")
	}
	if g.Node(d).Degree() != 0 {
		t.Errorf("deg(d) = %d, want 0", g.Node(d).Degree())
	}
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d, want 1 (m-c)", g.NumEdges())
	}
}

func TestMergeNonAdjacentFails(t *testing.T) {
	g := New(2)
	a, _ := g.AddNode(Node{})
	b, _ := g.AddNode(Node{})
	if _, err := g.Merge(a, b, 0); err == nil {
		t.Error("merging non-adjacent nodes must fail")
	}
}

func TestCapacityBound(t *testing.T) {
	g := New(1)
	if _, err := g.AddNode(Node{}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddNode(Node{}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddNode(Node{}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddNode(Node{}); err == nil {
		t.Error("capacity 2n+1 = 3 must reject the 4th node")
	}
}

// TestRandomMergeInvariants drives random merges and checks the degree and
// edge-count bookkeeping stays consistent with a brute-force recount.
func TestRandomMergeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 30
		g := New(n)
		ids := make([]int, n)
		for i := range ids {
			ids[i], _ = g.AddNode(Node{Budget: 1000})
		}
		for i := 0; i < n*3; i++ {
			g.AddEdge(ids[rng.Intn(n)], ids[rng.Intn(n)])
		}
		for step := 0; step < 20; step++ {
			n1, n2, ok := g.MinDegreePair()
			if !ok {
				break
			}
			if rng.Intn(4) == 0 {
				g.DeleteEdge(n1, n2)
			} else {
				if _, err := g.Merge(n1, n2, 0); err != nil {
					t.Fatal(err)
				}
			}
			checkConsistency(t, g)
		}
	}
}

func checkConsistency(t *testing.T, g *Graph) {
	t.Helper()
	edges := 0
	for i := range g.nodes {
		if !g.nodes[i].alive {
			if g.nodes[i].deg != 0 {
				t.Fatalf("dead node %d has degree %d", i, g.nodes[i].deg)
			}
			continue
		}
		deg := 0
		g.Neighbors(i, func(nb int) {
			if !g.nodes[nb].alive {
				t.Fatalf("node %d adjacent to dead node %d", i, nb)
			}
			if !g.HasEdge(nb, i) {
				t.Fatalf("asymmetric edge %d-%d", i, nb)
			}
			deg++
		})
		if deg != int(g.nodes[i].deg) {
			t.Fatalf("node %d degree counter %d, actual %d", i, g.nodes[i].deg, deg)
		}
		edges += deg
	}
	if edges/2 != g.edges {
		t.Fatalf("edge counter %d, actual %d", g.edges, edges/2)
	}
}

func TestOverlapEdgesConsumedLast(t *testing.T) {
	// a-b clean; a-c overlap. MinDegreePair must offer the clean pair
	// first even though c has lower degree.
	g := New(3)
	a, _ := g.AddNode(Node{Budget: 100, Budget2: 100})
	b, _ := g.AddNode(Node{Budget: 100, Budget2: 100})
	c, _ := g.AddNode(Node{Budget: 100, Budget2: 100})
	g.AddEdge(a, b)
	g.AddOverlapEdge(a, c)
	n1, n2, ok := g.MinDegreePair()
	if !ok {
		t.Fatal("expected a pair")
	}
	pair := map[int]bool{n1: true, n2: true}
	if !pair[a] || !pair[b] {
		t.Errorf("first pair must be the clean edge (a,b), got (%d,%d)", n1, n2)
	}
	// After the clean edge is gone, the overlap edge is offered.
	m, err := g.Merge(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = m
	n1, n2, ok = g.MinDegreePair()
	if ok {
		// c lost its only edge when a died (a-c was not common to a and
		// b), so there may be nothing left; if there is, it must
		// involve c.
		if n1 != c && n2 != c {
			t.Errorf("remaining pair (%d,%d) should involve c", n1, n2)
		}
	}
}

func TestMergePreservesOverlapQuality(t *testing.T) {
	// Clique (a,b) merged; a-x clean, b-x overlap => merged-x must be
	// overlap quality (NOT clean), since one member's relation is weak.
	g := New(3)
	a, _ := g.AddNode(Node{Budget: 100, Budget2: 100})
	b, _ := g.AddNode(Node{Budget: 100, Budget2: 100})
	x, _ := g.AddNode(Node{Budget: 100, Budget2: 100})
	g.AddEdge(a, b)
	g.AddEdge(a, x)
	g.AddOverlapEdge(b, x)
	m, err := g.Merge(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(m, x) {
		t.Fatal("common neighbor lost")
	}
	if g.Node(m).cleanDeg != 0 {
		t.Errorf("merged-x edge must be overlap quality, cleanDeg=%d", g.Node(m).cleanDeg)
	}
	checkConsistency(t, g)
}

func TestFFLastSelection(t *testing.T) {
	// TSV-TSV edges must be merged before FF-TSV edges.
	g := New(3)
	ff, _ := g.AddNode(Node{HasFF: true, FF: 1, Budget: 100, Budget2: 100})
	t1, _ := g.AddNode(Node{Members: []int32{0}, Budget: 100, Budget2: 100})
	t2, _ := g.AddNode(Node{Members: []int32{1}, Budget: 100, Budget2: 100})
	g.AddEdge(ff, t1)
	g.AddEdge(t1, t2)
	n1, n2, ok := g.MinDegreePair()
	if !ok {
		t.Fatal("expected a pair")
	}
	if n1 == ff || n2 == ff {
		t.Errorf("pure TSV pair must be selected before the flip-flop, got (%d,%d)", n1, n2)
	}
}

func TestFirstEdgePair(t *testing.T) {
	g := New(3)
	a, _ := g.AddNode(Node{Budget2: 100})
	b, _ := g.AddNode(Node{Budget2: 100})
	c, _ := g.AddNode(Node{Budget2: 100})
	g.AddEdge(b, c)
	_ = a
	n1, n2, ok := g.FirstEdgePair()
	if !ok || (n1 != b && n1 != c) || n1 == n2 {
		t.Errorf("FirstEdgePair = (%d,%d,%v)", n1, n2, ok)
	}
}

func TestBBoxUnion(t *testing.T) {
	g := New(2)
	a, _ := g.AddNode(Node{X: 0, Y: 0, Budget: 1000, Budget2: 1000})
	b, _ := g.AddNode(Node{X: 30, Y: 40, Budget: 1000, Budget2: 1000})
	if d := BBoxUnionDiameter(g.Node(a), g.Node(b)); d != 70 {
		t.Errorf("diameter = %v, want 70", d)
	}
	g.AddEdge(a, b)
	m, err := g.Merge(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	mn := g.Node(m)
	if mn.X != 0 || mn.Y != 0 || mn.X2 != 30 || mn.Y2 != 40 {
		t.Errorf("merged bbox = (%v,%v)-(%v,%v)", mn.X, mn.Y, mn.X2, mn.Y2)
	}
}

func TestBudget2Normalization(t *testing.T) {
	g := New(1)
	id, _ := g.AddNode(Node{})
	if g.Node(id).Budget2 < 1e300 {
		t.Error("zero Budget2 must normalize to +Inf")
	}
}

// TestQuickMergeMonotonics: random merge sequences preserve the structural
// invariants: member counts are conserved into the merged clique, budgets
// never increase, bounding boxes only grow.
func TestQuickMergeMonotonics(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + int(nRaw%24)
		g := New(n)
		totalMembers := 0
		for i := 0; i < n; i++ {
			m := []int32{int32(i)}
			totalMembers++
			x, y := rng.Float64()*100, rng.Float64()*100
			if _, err := g.AddNode(Node{
				Members: m, Budget: 1e9, Budget2: 1e9,
				X: x, Y: y, X2: x, Y2: y,
			}); err != nil {
				return false
			}
		}
		for i := 0; i < n*2; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		for {
			a, b, ok := g.MinDegreePair()
			if !ok {
				break
			}
			na, nb := g.Node(a), g.Node(b)
			wantMembers := len(na.Members) + len(nb.Members)
			diam := BBoxUnionDiameter(na, nb)
			m, err := g.Merge(a, b, 0)
			if err != nil {
				return false
			}
			mn := g.Node(m)
			if len(mn.Members) != wantMembers {
				return false
			}
			if (mn.X2-mn.X)+(mn.Y2-mn.Y) != diam {
				return false
			}
		}
		// All members conserved across the final cliques.
		got := 0
		for _, id := range g.Cliques() {
			got += len(g.Node(id).Members)
		}
		return got == totalMembers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
