// Package wcmgraph implements the sharing graph of the wrapper-cell
// minimization problem (paper §III): nodes are scan flip-flops and TSVs, an
// edge means "these two can share one wrapper cell", and the heuristic
// clique partitioner (paper Algorithm 2) repeatedly merges the
// minimum-degree adjacent pair.
//
// Adjacency is stored as one bitset per node. The WCM graphs of the
// largest ITC'99 dies hold a few thousand nodes, so a bitset row is a few
// hundred bytes; intersections (the common-neighbor computation every merge
// needs) are word-parallel ANDs.
package wcmgraph

import (
	"fmt"
	"math"
	"math/bits"

	"wcm3d/internal/wordpool"
)

// Node is one graph node: a scan flip-flop, a TSV, or a merged clique.
type Node struct {
	// HasFF reports whether the clique contains a scan flip-flop.
	HasFF bool
	// FF is the flip-flop signal when HasFF (exported for the caller;
	// the graph itself does not interpret it).
	FF int32
	// Members are caller-defined TSV indices merged into this clique.
	Members  []int32
	cleanDeg int32
	// Load is the accumulated wire-aware sharing cost (capacitance on
	// the control side, delay on the observe side). Additive under
	// merge.
	Load float64
	// Budget is the bound on Load (cap_th headroom on the control side,
	// timing slack on the observe side). The minimum survives a merge.
	Budget float64
	// Load2 and Budget2 are a second, independent cost dimension: the
	// post-bond drive capacity a wrapper cell must supply (TSV pillar
	// plus pin capacitance per member, no wires). Leave Budget2 zero for
	// "unbounded" (it is normalized to +Inf on AddNode).
	Load2   float64
	Budget2 float64
	// X, Y / X2, Y2 are the clique's bounding box (µm): the area its
	// members span. Merges take the union. The box bounds how much wire
	// any member needs to reach a shared wrapper cell.
	X, Y   float64
	X2, Y2 float64

	alive bool
	deg   int32
}

// Alive reports whether the node still exists (not merged away).
func (n *Node) Alive() bool { return n.alive }

// Degree returns the current number of incident edges.
func (n *Node) Degree() int { return int(n.deg) }

// Graph is a mutable sharing graph. Edges carry a quality tag: clean
// edges (non-overlapping cones) and overlap edges (admitted under
// testability thresholds). The partitioner consumes clean edges first —
// overlap edges only expand the solution space once no clean option
// remains, so admitting them can never fragment the clean solution.
type Graph struct {
	nodes []Node
	adj   [][]uint64 // all edges
	clean [][]uint64 // subset: non-overlap edges
	words int        // words per adjacency row (fixed capacity)
	cap   int        // max node ids
	edges int
	// degIdx indexes live positive-degree nodes by degree so the
	// partitioner's min-degree selection is near-O(1) instead of a scan
	// over all nodes per merge. First axis: plane (all edges, clean
	// edges); second axis: whether flip-flop nodes are filtered out.
	// Every degree mutation flows through bumpDeg/bumpCleanDeg to keep
	// the four views consistent.
	degIdx [2][2]degIndex
	// pick caches min-degree-neighbor candidates between merges (see
	// pickCache). Off by default so the plain flow stays on the simple
	// reference path; sessions opt in via EnablePickCache.
	pick pickCache
}

// Index axes for degIdx.
const (
	planeAll   = 0
	planeClean = 1
)

// New creates a graph able to hold up to initialNodes original nodes plus
// all merge products (capacity 2×initialNodes).
func New(initialNodes int) *Graph {
	capIDs := 2*initialNodes + 1
	g := &Graph{
		words: (capIDs + 63) / 64,
		cap:   capIDs,
	}
	for p := range g.degIdx {
		for f := range g.degIdx[p] {
			g.degIdx[p][f].init(capIDs)
		}
	}
	return g
}

// degIndex is one degree-bucket view: a bitset of node ids per degree
// value, plus a lazily-advanced minimum-degree cursor. Membership is
// "alive with positive degree in this view's plane" (and non-FF for the
// filtered views). add/remove are O(1); min is O(row words) on the lowest
// non-empty bucket.
type degIndex struct {
	words   int
	counts  []int32
	buckets [][]uint64
	size    int
	minDeg  int32
}

func (x *degIndex) init(capIDs int) {
	x.words = (capIDs + 63) / 64
	x.minDeg = 1
}

func (x *degIndex) add(id int, d int32) {
	for int32(len(x.counts)) <= d {
		x.counts = append(x.counts, 0)
		x.buckets = append(x.buckets, nil)
	}
	b := x.buckets[d]
	if b == nil {
		b = wordpool.Get(x.words)
		x.buckets[d] = b
	}
	b[id>>6] |= 1 << (uint(id) & 63)
	x.counts[d]++
	x.size++
	if d < x.minDeg {
		x.minDeg = d
	}
}

func (x *degIndex) remove(id int, d int32) {
	x.buckets[d][id>>6] &^= 1 << (uint(id) & 63)
	x.counts[d]--
	x.size--
}

// min returns the lowest-id member of the lowest non-empty bucket — the
// same node a lowest-id-tie-broken linear scan over ascending ids finds.
func (x *degIndex) min() (int, bool) {
	if x.size == 0 {
		return -1, false
	}
	d := x.minDeg
	for x.counts[d] == 0 {
		d++
	}
	x.minDeg = d // removals only raise the minimum; adds lower it eagerly
	for wi, w := range x.buckets[d] {
		if w != 0 {
			return wi*64 + bits.TrailingZeros64(w), true
		}
	}
	panic("wcmgraph: degree index count drifted from bucket contents")
}

// pickCache memoizes the expensive half of minDegreePlane: the scan over
// n1's neighbors for the minimum-degree eligible one. Between two merges
// the partitioner only deletes the pair it was just handed, which changes
// no other node's degree — so the sorted candidate list collected on the
// last full scan keeps yielding exact successive argmins until a merge
// (or any other structural mutation) invalidates it. Tiers that found no
// eligible neighbor are remembered too (negN1): edge deletions can never
// create eligibility, so a failing (tier, n1) keeps failing until a merge
// or edge insertion. Every pop re-checks adjacency and degree, so a
// violated assumption degrades to a rescan, never a wrong pick.
type pickCache struct {
	enabled bool
	valid   bool
	tier    uint8
	n1      int32
	lastN2  int32
	next    int
	cands   []pickCand
	negN1   [4]int32 // per tier: n1 known to have no eligible neighbor
	negSet  [4]bool
}

type pickCand struct {
	deg int32
	id  int32
}

// pickCacheCap bounds the candidates kept per scan. Exhausting the list
// just forces the next pick back onto a full scan.
const pickCacheCap = 48

// EnablePickCache turns on candidate caching for min-degree selection.
// Picks are bit-identical with or without it (the equivalence tests pin
// both modes against the linear-scan oracle); the cache only changes how
// much work repeated picks between merges cost.
func (g *Graph) EnablePickCache() { g.pick.enabled = true }

func (g *Graph) invalidatePicks() {
	g.pick.valid = false
	g.pick.negSet = [4]bool{}
}

func tierKey(cleanOnly, noFF bool) uint8 {
	k := uint8(0)
	if cleanOnly {
		k |= 2
	}
	if noFF {
		k |= 1
	}
	return k
}

// bumpDeg changes a node's all-plane degree by delta, keeping the degree
// indexes in sync. The node must be alive.
func (g *Graph) bumpDeg(id int, delta int32) {
	n := &g.nodes[id]
	old := n.deg
	n.deg = old + delta
	g.reindex(planeAll, id, old, n.deg, n.HasFF)
}

// bumpCleanDeg is bumpDeg for the clean plane.
func (g *Graph) bumpCleanDeg(id int, delta int32) {
	n := &g.nodes[id]
	old := n.cleanDeg
	n.cleanDeg = old + delta
	g.reindex(planeClean, id, old, n.cleanDeg, n.HasFF)
}

func (g *Graph) reindex(plane, id int, old, cur int32, hasFF bool) {
	if old == cur {
		return
	}
	if old > 0 {
		g.degIdx[plane][0].remove(id, old)
		if !hasFF {
			g.degIdx[plane][1].remove(id, old)
		}
	}
	if cur > 0 {
		g.degIdx[plane][0].add(id, cur)
		if !hasFF {
			g.degIdx[plane][1].add(id, cur)
		}
	}
}

// NumAlive returns the number of live nodes.
func (g *Graph) NumAlive() int {
	c := 0
	for i := range g.nodes {
		if g.nodes[i].alive {
			c++
		}
	}
	return c
}

// NumEdges returns the current number of edges.
func (g *Graph) NumEdges() int { return g.edges }

// Node returns the node by id; the pointer is valid until the next AddNode
// or Merge.
func (g *Graph) Node(id int) *Node { return &g.nodes[id] }

// AddNode inserts a node and returns its id.
func (g *Graph) AddNode(n Node) (int, error) {
	if len(g.nodes) >= g.cap {
		return -1, fmt.Errorf("wcmgraph: node capacity %d exhausted", g.cap)
	}
	if n.Budget2 == 0 {
		n.Budget2 = math.Inf(1)
	}
	if n.X2 < n.X {
		n.X2 = n.X
	}
	if n.Y2 < n.Y {
		n.Y2 = n.Y
	}
	n.alive = true
	n.deg, n.cleanDeg = 0, 0 // a new node enters the degree indexes via bumpDeg
	g.invalidatePicks()
	id := len(g.nodes)
	g.nodes = append(g.nodes, n)
	g.adj = append(g.adj, wordpool.Get(g.words))
	g.clean = append(g.clean, wordpool.Get(g.words))
	return id, nil
}

// Release returns every adjacency row and degree bucket to the global
// word pools. The graph must not be used afterwards; callers that keep
// graphs alive (tests, ad-hoc tools) may simply never call it.
func (g *Graph) Release() {
	for _, row := range g.adj {
		wordpool.Put(row)
	}
	for _, row := range g.clean {
		wordpool.Put(row)
	}
	g.adj, g.clean = nil, nil
	for p := range g.degIdx {
		for f := range g.degIdx[p] {
			x := &g.degIdx[p][f]
			for i, b := range x.buckets {
				if b != nil {
					wordpool.Put(b)
					x.buckets[i] = nil
				}
			}
		}
	}
	g.nodes = nil
}

// HasEdge reports whether a and b are adjacent.
func (g *Graph) HasEdge(a, b int) bool {
	return g.adj[a][b>>6]&(1<<(uint(b)&63)) != 0
}

// AddEdge connects a and b with a clean edge (idempotent; self-loops
// rejected).
func (g *Graph) AddEdge(a, b int) { g.addEdge(a, b, false) }

// AddOverlapEdge connects a and b with an overlap-quality edge.
func (g *Graph) AddOverlapEdge(a, b int) { g.addEdge(a, b, true) }

func (g *Graph) addEdge(a, b int, overlap bool) {
	if a == b || g.HasEdge(a, b) {
		return
	}
	g.invalidatePicks()
	g.adj[a][b>>6] |= 1 << (uint(b) & 63)
	g.adj[b][a>>6] |= 1 << (uint(a) & 63)
	g.bumpDeg(a, 1)
	g.bumpDeg(b, 1)
	g.edges++
	if !overlap {
		g.clean[a][b>>6] |= 1 << (uint(b) & 63)
		g.clean[b][a>>6] |= 1 << (uint(a) & 63)
		g.bumpCleanDeg(a, 1)
		g.bumpCleanDeg(b, 1)
	}
}

// BulkRows exposes a node's adjacency and clean-plane rows for direct
// bulk loading: a caller that already knows the whole edge set (the
// session's verdict matrix) writes neighbor bits straight into the rows —
// row-local, so rows load in parallel — and then calls FinishBulkEdges
// once. The caller owns symmetry (bit b in row a iff bit a in row b) and
// the clean-subset invariant (clean bits only where adjacency bits are).
func (g *Graph) BulkRows(id int) (adj, clean []uint64) {
	return g.adj[id], g.clean[id]
}

// FinishBulkEdges derives every degree counter, the edge count, and the
// degree-bucket indexes from rows loaded via BulkRows. It must run on a
// graph whose edges were only ever written through BulkRows (the indexes
// are assumed empty, as AddNode leaves them). The resulting graph state
// is identical to one built edge-by-edge with AddEdge/AddOverlapEdge:
// rows are order-independent sets and the bucket indexes hold the same
// membership either way.
func (g *Graph) FinishBulkEdges() (edges, cleanEdges int) {
	totDeg, totClean := 0, 0
	for id := range g.nodes {
		n := &g.nodes[id]
		d, cd := int32(0), int32(0)
		for _, w := range g.adj[id] {
			d += int32(bits.OnesCount64(w))
		}
		for _, w := range g.clean[id] {
			cd += int32(bits.OnesCount64(w))
		}
		n.deg, n.cleanDeg = d, cd
		g.reindex(planeAll, id, 0, d, n.HasFF)
		g.reindex(planeClean, id, 0, cd, n.HasFF)
		totDeg += int(d)
		totClean += int(cd)
	}
	g.edges = totDeg / 2
	return g.edges, totClean / 2
}

// DeleteEdge removes the edge between a and b if present.
func (g *Graph) DeleteEdge(a, b int) {
	if !g.HasEdge(a, b) {
		return
	}
	// Deleting exactly the pair the last pick returned keeps the
	// candidate list valid (no other node's degree moves); any other
	// deletion drops it. Negative entries survive every deletion: losing
	// edges can never give a failing (tier, n1) an eligible neighbor.
	if pc := &g.pick; pc.valid &&
		!(int32(a) == pc.n1 && int32(b) == pc.lastN2) &&
		!(int32(b) == pc.n1 && int32(a) == pc.lastN2) {
		pc.valid = false
	}
	g.adj[a][b>>6] &^= 1 << (uint(b) & 63)
	g.adj[b][a>>6] &^= 1 << (uint(a) & 63)
	g.bumpDeg(a, -1)
	g.bumpDeg(b, -1)
	g.edges--
	if g.clean[a][b>>6]&(1<<(uint(b)&63)) != 0 {
		g.clean[a][b>>6] &^= 1 << (uint(b) & 63)
		g.clean[b][a>>6] &^= 1 << (uint(a) & 63)
		g.bumpCleanDeg(a, -1)
		g.bumpCleanDeg(b, -1)
	}
}

// Neighbors calls fn for every live neighbor of id.
func (g *Graph) Neighbors(id int, fn func(nb int)) {
	row := g.adj[id]
	for wi, w := range row {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn(wi*64 + bit)
			w &= w - 1
		}
	}
}

// MinDegreePair implements the selection rule of paper Algorithm 2 — the
// node with the smallest non-zero degree, and its smallest-degree
// neighbor — refined along two axes that keep the greedy heuristic from
// wasting resources:
//
//   - clean edges before overlap edges: overlap edges only expand the
//     solution space once no clean option remains, so admitting them can
//     never fragment the clean solution;
//   - TSV-TSV merges before flip-flop attachments: the objective equals
//     (#cliques − #flip-flops used), so a flip-flop anchoring a clique
//     that plain TSVs could have formed by themselves is a flip-flop the
//     other TSV set never gets. Flip-flops join once the pure-TSV merging
//     is exhausted.
//
// ok is false when every node has degree zero.
func (g *Graph) MinDegreePair() (n1, n2 int, ok bool) {
	for _, tier := range [4]struct{ clean, noFF bool }{
		{true, true}, {true, false}, {false, true}, {false, false},
	} {
		if n1, n2, ok = g.minDegreePlane(tier.clean, tier.noFF); ok {
			return n1, n2, true
		}
	}
	return 0, 0, false
}

// minDegreePlane picks one tier's pair: n1 from the degree-bucket index
// (lowest id among the minimal positive degree in the plane, FF-filtered
// when noFF), then n1's minimum-degree eligible neighbor (lowest id on
// ties). Selection is identical to the O(n)-scan reference
// minDegreePlaneScan, which the test suite pins it against.
func (g *Graph) minDegreePlane(cleanOnly, noFF bool) (n1, n2 int, ok bool) {
	plane := planeAll
	if cleanOnly {
		plane = planeClean
	}
	filter := 0
	if noFF {
		filter = 1
	}
	n1, ok = g.degIdx[plane][filter].min()
	if !ok {
		return 0, 0, false
	}
	deg := func(i int) int32 {
		if cleanOnly {
			return g.nodes[i].cleanDeg
		}
		return g.nodes[i].deg
	}
	key := tierKey(cleanOnly, noFF)
	pc := &g.pick
	if pc.enabled {
		if pc.negSet[key] && pc.negN1[key] == int32(n1) {
			return 0, 0, false
		}
		if pc.valid && pc.tier == key && pc.n1 == int32(n1) {
			for pc.next < len(pc.cands) {
				c := pc.cands[pc.next]
				pc.next++
				// Exactness guard: the candidate must still be adjacent in
				// this plane with the degree recorded at scan time.
				// Violations (an untracked mutation) fall back to a scan.
				row := g.adj[n1]
				if cleanOnly {
					row = g.clean[n1]
				}
				if row[c.id>>6]&(1<<(uint(c.id)&63)) != 0 && deg(int(c.id)) == c.deg {
					pc.lastN2 = c.id
					return n1, int(c.id), true
				}
				pc.valid = false
				break
			}
		}
	}
	if pc.enabled {
		// Full scan, keeping the pickCacheCap best (degree, id) candidates
		// in sorted order. Ascending-id iteration inserts equal-degree
		// candidates after earlier ids, matching lowest-id tie-breaking.
		pc.valid = false
		pc.cands = pc.cands[:0]
		g.neighborsPlane(n1, cleanOnly, func(nb int) {
			if noFF && g.nodes[nb].HasFF {
				return
			}
			d := deg(nb)
			n := len(pc.cands)
			if n == pickCacheCap && d >= pc.cands[n-1].deg {
				return
			}
			pos := n
			for pos > 0 && pc.cands[pos-1].deg > d {
				pos--
			}
			if n < pickCacheCap {
				pc.cands = append(pc.cands, pickCand{})
			} else {
				n--
			}
			copy(pc.cands[pos+1:], pc.cands[pos:n])
			pc.cands[pos] = pickCand{deg: d, id: int32(nb)}
		})
		if len(pc.cands) == 0 {
			pc.negN1[key] = int32(n1)
			pc.negSet[key] = true
			return 0, 0, false
		}
		pc.valid = true
		pc.tier = key
		pc.n1 = int32(n1)
		pc.next = 1
		pc.lastN2 = pc.cands[0].id
		return n1, int(pc.cands[0].id), true
	}
	n2 = -1
	g.neighborsPlane(n1, cleanOnly, func(nb int) {
		if noFF && g.nodes[nb].HasFF {
			return
		}
		if n2 < 0 || deg(nb) < deg(n2) {
			n2 = nb
		}
	})
	if n2 < 0 {
		return 0, 0, false
	}
	return n1, n2, true
}

// minDegreePlaneScan is the pre-index reference implementation: a linear
// scan over every node per call. Kept (unexported) as the oracle for
// equivalence tests and the baseline for BenchmarkPartition.
func (g *Graph) minDegreePlaneScan(cleanOnly, noFF bool) (n1, n2 int, ok bool) {
	deg := func(i int) int32 {
		if cleanOnly {
			return g.nodes[i].cleanDeg
		}
		return g.nodes[i].deg
	}
	n1 = -1
	for i := range g.nodes {
		n := &g.nodes[i]
		if !n.alive || deg(i) == 0 || (noFF && n.HasFF) {
			continue
		}
		if n1 < 0 || deg(i) < deg(n1) {
			n1 = i
		}
	}
	if n1 < 0 {
		return 0, 0, false
	}
	n2 = -1
	g.neighborsPlane(n1, cleanOnly, func(nb int) {
		if noFF && g.nodes[nb].HasFF {
			return
		}
		if n2 < 0 || deg(nb) < deg(n2) {
			n2 = nb
		}
	})
	if n2 < 0 {
		return 0, 0, false
	}
	return n1, n2, true
}

// minDegreePairScan is MinDegreePair over the scan reference — the oracle
// for the equivalence tests.
func (g *Graph) minDegreePairScan() (n1, n2 int, ok bool) {
	for _, tier := range [4]struct{ clean, noFF bool }{
		{true, true}, {true, false}, {false, true}, {false, false},
	} {
		if n1, n2, ok = g.minDegreePlaneScan(tier.clean, tier.noFF); ok {
			return n1, n2, true
		}
	}
	return 0, 0, false
}

func (g *Graph) neighborsPlane(id int, cleanOnly bool, fn func(nb int)) {
	row := g.adj[id]
	if cleanOnly {
		row = g.clean[id]
	}
	for wi, w := range row {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn(wi*64 + bit)
			w &= w - 1
		}
	}
}

// FirstEdgePair returns an arbitrary existing edge (the lowest-id live
// node with non-zero degree and its first neighbor) — the ablation
// baseline against MinDegreePair.
func (g *Graph) FirstEdgePair() (n1, n2 int, ok bool) {
	for i := range g.nodes {
		n := &g.nodes[i]
		if !n.alive || n.deg == 0 {
			continue
		}
		first := -1
		g.Neighbors(i, func(nb int) {
			if first < 0 {
				first = nb
			}
		})
		if first >= 0 {
			return i, first, true
		}
	}
	return 0, 0, false
}

// Merge combines adjacent nodes a and b into a new clique node whose
// neighbors are the common neighbors of a and b (preserving the clique
// invariant), then deletes a and b. The caller supplies the merged load;
// position and budget combine automatically.
func (g *Graph) Merge(a, b int, mergedLoad float64) (int, error) {
	if !g.HasEdge(a, b) {
		return -1, fmt.Errorf("wcmgraph: merge of non-adjacent %d, %d", a, b)
	}
	na, nb := &g.nodes[a], &g.nodes[b]
	merged := Node{
		HasFF:   na.HasFF || nb.HasFF,
		Load:    mergedLoad,
		Budget:  minF(na.Budget, nb.Budget),
		Load2:   na.Load2 + nb.Load2,
		Budget2: minF(na.Budget2, nb.Budget2),
		Members: append(append([]int32(nil), na.Members...), nb.Members...),
	}
	switch {
	case na.HasFF:
		merged.FF = na.FF
	case nb.HasFF:
		merged.FF = nb.FF
	}
	merged.X = math.Min(na.X, nb.X)
	merged.Y = math.Min(na.Y, nb.Y)
	merged.X2 = math.Max(na.X2, nb.X2)
	merged.Y2 = math.Max(na.Y2, nb.Y2)

	id, err := g.AddNode(merged)
	if err != nil {
		return -1, err
	}
	// The merged node keeps the common neighbors of a and b (preserving
	// the clique invariant); a merged clique's clean edge to nc requires
	// BOTH members' edges to nc to be clean, otherwise the surviving edge
	// is overlap quality. Every union neighbor's degree nets out to
	// exactly -1 (a common neighbor trades two edges for one; an
	// exclusive neighbor loses its only edge), so each gets a single
	// fused index update instead of an add for the new edge plus removals
	// for the dying ones.
	rowA, rowB := g.adj[a], g.adj[b]
	cleanA, cleanB := g.clean[a], g.clean[b]
	row, cleanRow := g.adj[id], g.clean[id]
	aW, aM := a>>6, uint64(1)<<(uint(a)&63)
	bW, bM := b>>6, uint64(1)<<(uint(b)&63)
	idW, idM := id>>6, uint64(1)<<(uint(id)&63)
	newDeg, newClean := int32(0), int32(0)
	for wi := range rowA {
		wa, wb := rowA[wi], rowB[wi]
		union := wa | wb
		if union == 0 {
			continue
		}
		// w excludes a and b automatically: neither row carries a
		// self-loop bit, so the intersection cannot contain either id.
		w := wa & wb
		cwA, cwB := cleanA[wi], cleanB[wi]
		cw := cwA & cwB & w
		row[wi], cleanRow[wi] = w, cw
		newDeg += int32(bits.OnesCount64(w))
		newClean += int32(bits.OnesCount64(cw))
		for x := union; x != 0; x &= x - 1 {
			nbID := wi*64 + bits.TrailingZeros64(x)
			if nbID == a || nbID == b {
				continue
			}
			m := x & -x
			nbAdj, nbClean := g.adj[nbID], g.clean[nbID]
			nbAdj[aW] &^= aM
			nbAdj[bW] &^= bM
			cleanDelta := int32(0)
			if cwA&m != 0 {
				nbClean[aW] &^= aM
				cleanDelta++
			}
			if cwB&m != 0 {
				nbClean[bW] &^= bM
				cleanDelta++
			}
			if w&m != 0 {
				nbAdj[idW] |= idM
				if cw&m != 0 {
					nbClean[idW] |= idM
					cleanDelta--
				}
			}
			g.edges--
			node := &g.nodes[nbID]
			old := node.deg
			node.deg = old - 1
			g.reindex(planeAll, nbID, old, node.deg, node.HasFF)
			if cleanDelta != 0 {
				oldC := node.cleanDeg
				node.cleanDeg = oldC - cleanDelta
				g.reindex(planeClean, nbID, oldC, node.cleanDeg, node.HasFF)
			}
		}
	}
	g.edges-- // the a-b edge itself
	mn := &g.nodes[id]
	mn.deg, mn.cleanDeg = newDeg, newClean
	g.reindex(planeAll, id, 0, newDeg, mn.HasFF)
	g.reindex(planeClean, id, 0, newClean, mn.HasFF)
	for _, v := range [2]int{a, b} {
		n := &g.nodes[v]
		g.reindex(planeAll, v, n.deg, 0, n.HasFF)
		g.reindex(planeClean, v, n.cleanDeg, 0, n.HasFF)
		n.deg, n.cleanDeg = 0, 0
		clear(g.adj[v])
		clear(g.clean[v])
		n.alive = false
	}
	return id, nil
}

// BBoxUnionDiameter returns the Manhattan diameter of the union of two
// nodes' bounding boxes — the worst-case wire run between any member of
// the merged clique and a wrapper cell placed inside the box.
func BBoxUnionDiameter(a, b *Node) float64 {
	x1 := math.Min(a.X, b.X)
	y1 := math.Min(a.Y, b.Y)
	x2 := math.Max(a.X2, b.X2)
	y2 := math.Max(a.Y2, b.Y2)
	return (x2 - x1) + (y2 - y1)
}

// Cliques returns the live nodes — after partitioning completes, each is
// one clique of the solution.
func (g *Graph) Cliques() []int {
	var out []int
	for i := range g.nodes {
		if g.nodes[i].alive {
			out = append(out, i)
		}
	}
	return out
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
