package wal

import (
	"testing"
	"time"

	"wcm3d"
	"wcm3d/internal/service"
)

func delta(kind wcm3d.TSVFaultKind, tsv string) service.ReplanRequest {
	return service.ReplanRequest{Faults: []wcm3d.TSVFault{{Kind: kind, TSV: tsv}}}
}

// TestReplanRoundTripRecovery journals a finished job plus two replan
// deltas and checks they replay in order on the RecoveredJob — across a
// plain reopen and across a compaction (which rewrites the record chain).
func TestReplanRoundTripRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	req := reqFor("b11/0")
	if err := l.Submit("j-000001", req); err != nil {
		t.Fatal(err)
	}
	if err := l.Start("j-000001"); err != nil {
		t.Fatal(err)
	}
	if err := l.Finish("j-000001", service.StateDone, "", &service.Report{}); err != nil {
		t.Fatal(err)
	}
	d1 := delta(wcm3d.TSVStuck0, "tsv_a")
	d2 := delta(wcm3d.TSVOpen, "tsv_b")
	if err := l.Replan("j-000001", d1); err != nil {
		t.Fatal(err)
	}
	if err := l.Replan("j-000001", d2); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	check := func(rec service.Recovery) {
		t.Helper()
		j, ok := findJob(rec, "j-000001")
		if !ok {
			t.Fatalf("job lost: %+v", rec.Jobs)
		}
		if j.State != service.StateDone {
			t.Fatalf("state = %q, want done", j.State)
		}
		if len(j.Replans) != 2 {
			t.Fatalf("replans = %d, want 2: %+v", len(j.Replans), j.Replans)
		}
		if got := j.Replans[0].Faults[0]; got.Kind != wcm3d.TSVStuck0 || got.TSV != "tsv_a" {
			t.Fatalf("replan 1 out of order or mangled: %+v", got)
		}
		if got := j.Replans[1].Faults[0]; got.Kind != wcm3d.TSVOpen || got.TSV != "tsv_b" {
			t.Fatalf("replan 2 out of order or mangled: %+v", got)
		}
	}

	// First reopen replays the original records; Open itself compacts, so
	// the second reopen replays the rewritten chain from writeCompacted.
	l2, rec := openTest(t, dir, Options{})
	check(rec)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec = openTest(t, dir, Options{})
	check(rec)
}

// TestReplanRetentionFollowsJob checks that a job compacted away past the
// retention horizon takes its replan history with it.
func TestReplanRetentionFollowsJob(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	old := time.Now().Add(-2 * time.Hour).UnixNano()
	req := reqFor("b11/0")
	d := delta(wcm3d.TSVStuck1, "tsv_x")
	for _, r := range []record{
		{T: typeSubmit, ID: "j-000003", At: old, Req: &req},
		{T: typeFinish, ID: "j-000003", At: old, State: service.StateDone},
		{T: typeReplan, ID: "j-000003", At: old, Delta: &d},
	} {
		if err := l.append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openTest(t, dir, Options{})
	if _, ok := findJob(rec, "j-000003"); ok {
		t.Fatalf("expired job (and its replans) survived compaction: %+v", rec.Jobs)
	}
	if rec.MaxSeq != 3 {
		t.Fatalf("MaxSeq = %d, want 3", rec.MaxSeq)
	}
}
