package wal

import (
	"testing"
	"time"

	"wcm3d/internal/service"
)

func findBatch(rec service.Recovery, id string) (service.RecoveredBatch, bool) {
	for _, b := range rec.Batches {
		if b.ID == id {
			return b, true
		}
	}
	return service.RecoveredBatch{}, false
}

// TestBatchRoundTripRecovery: batch lifecycles survive a reopen — a
// finished batch replays with its terminal state, a pending one replays
// for re-execution, and batch ids feed the shared sequence watermark.
func TestBatchRoundTripRecovery(t *testing.T) {
	dir := t.TempDir()
	l, rec := openTest(t, dir, Options{})
	if len(rec.Batches) != 0 {
		t.Fatalf("fresh log should recover no batches, got %+v", rec.Batches)
	}

	breq := service.BatchRequest{Circuit: "b11", Seed: 1}
	if err := l.SubmitBatch("b-000003", breq); err != nil {
		t.Fatal(err)
	}
	if err := l.FinishBatch("b-000003", service.StateDone, ""); err != nil {
		t.Fatal(err)
	}
	if err := l.SubmitBatch("b-000007", service.BatchRequest{All: true, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	// A job in the same log proves the two record families coexist.
	if err := l.Submit("j-000004", reqFor("b11/0")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec = openTest(t, dir, Options{})
	if len(rec.Batches) != 2 || len(rec.Jobs) != 1 {
		t.Fatalf("recovered %d batches / %d jobs, want 2 / 1", len(rec.Batches), len(rec.Jobs))
	}
	if rec.MaxSeq != 7 {
		t.Fatalf("MaxSeq = %d, want 7 (batch ids feed the watermark)", rec.MaxSeq)
	}
	fin, ok := findBatch(rec, "b-000003")
	if !ok || fin.State != service.StateDone || fin.Req.Circuit != "b11" {
		t.Fatalf("finished batch = %+v, %v", fin, ok)
	}
	pend, ok := findBatch(rec, "b-000007")
	if !ok || pend.State != "" || !pend.Req.All || pend.Req.Seed != 2 {
		t.Fatalf("pending batch = %+v, %v", pend, ok)
	}
}

// TestBatchCompactionRetention: a batch finished past the retention
// horizon is compacted away on reopen; an unfinished one is kept forever.
func TestBatchCompactionRetention(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{Retention: time.Hour})
	if err := l.SubmitBatch("b-000001", service.BatchRequest{Circuit: "b11"}); err != nil {
		t.Fatal(err)
	}
	if err := l.FinishBatch("b-000001", service.StateDone, ""); err != nil {
		t.Fatal(err)
	}
	if err := l.SubmitBatch("b-000002", service.BatchRequest{Circuit: "b12"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// A tiny retention horizon makes the finished batch stale immediately.
	_, rec := openTest(t, dir, Options{Retention: time.Nanosecond})
	if _, ok := findBatch(rec, "b-000001"); ok {
		t.Fatal("finished batch survived compaction past retention")
	}
	pend, ok := findBatch(rec, "b-000002")
	if !ok || pend.State != "" {
		t.Fatalf("pending batch = %+v, %v (must never be compacted)", pend, ok)
	}
	if rec.MaxSeq != 2 {
		t.Fatalf("MaxSeq = %d, want 2 (watermark survives compaction)", rec.MaxSeq)
	}
}
