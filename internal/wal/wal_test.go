package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wcm3d/internal/service"
)

func openTest(t *testing.T, dir string, opts Options) (*Log, service.Recovery) {
	t.Helper()
	opts.NoSync = true
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func reqFor(profile string) service.JobRequest {
	return service.JobRequest{Profile: profile, Seed: 1}
}

// findJob pulls one recovered job by id.
func findJob(rec service.Recovery, id string) (service.RecoveredJob, bool) {
	for _, j := range rec.Jobs {
		if j.ID == id {
			return j, true
		}
	}
	return service.RecoveredJob{}, false
}

func TestRoundTripRecovery(t *testing.T) {
	dir := t.TempDir()
	l, rec := openTest(t, dir, Options{})
	if len(rec.Jobs) != 0 || rec.MaxSeq != 0 {
		t.Fatalf("fresh log should recover nothing, got %+v", rec)
	}

	// Four lifecycles: finished, canceled-before-start, pending, orphaned.
	rep := &service.Report{}
	for id, req := range map[string]service.JobRequest{
		"j-000001": reqFor("b11/0"), "j-000002": reqFor("b11/1"),
		"j-000003": reqFor("b11/2"), "j-000004": reqFor("b11/3"),
	} {
		if err := l.Submit(id, req); err != nil {
			t.Fatalf("Submit(%s): %v", id, err)
		}
	}
	if err := l.Start("j-000001"); err != nil {
		t.Fatal(err)
	}
	if err := l.Finish("j-000001", service.StateDone, "", rep); err != nil {
		t.Fatal(err)
	}
	if err := l.Cancel("j-000002"); err != nil {
		t.Fatal(err)
	}
	if err := l.Start("j-000004"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec = openTest(t, dir, Options{})
	if len(rec.Jobs) != 4 {
		t.Fatalf("recovered %d jobs, want 4: %+v", len(rec.Jobs), rec.Jobs)
	}
	if rec.MaxSeq != 4 {
		t.Fatalf("MaxSeq = %d, want 4", rec.MaxSeq)
	}
	if rec.Corrupted != 0 {
		t.Fatalf("Corrupted = %d, want 0", rec.Corrupted)
	}
	j1, _ := findJob(rec, "j-000001")
	if j1.State != service.StateDone || j1.Result == nil || j1.Orphaned {
		t.Fatalf("j-000001 = %+v, want restored done with result", j1)
	}
	if j1.StartedAt.IsZero() || j1.FinishedAt.IsZero() || j1.SubmittedAt.IsZero() {
		t.Fatalf("j-000001 lost its timestamps: %+v", j1)
	}
	j2, _ := findJob(rec, "j-000002")
	if j2.State != service.StateCanceled || j2.Orphaned {
		t.Fatalf("j-000002 = %+v, want restored canceled", j2)
	}
	j3, _ := findJob(rec, "j-000003")
	if j3.State != "" || j3.Orphaned {
		t.Fatalf("j-000003 = %+v, want pending (re-queue, not orphaned)", j3)
	}
	if j3.Req.Profile != "b11/2" {
		t.Fatalf("j-000003 request not preserved: %+v", j3.Req)
	}
	j4, _ := findJob(rec, "j-000004")
	if j4.State != "" || !j4.Orphaned {
		t.Fatalf("j-000004 = %+v, want orphaned (started, no finish)", j4)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{SegmentBytes: 256})
	for i := 1; i <= 40; i++ {
		if err := l.Submit(jid(i), reqFor("b11/0")); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %v", segs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openTest(t, dir, Options{})
	if len(rec.Jobs) != 40 {
		t.Fatalf("recovered %d jobs across segments, want 40", len(rec.Jobs))
	}
}

func TestCompactionDropsExpiredKeepsWatermark(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	old := time.Now().Add(-2 * time.Hour).UnixNano()
	req := reqFor("b11/0")
	// A job finished two hours ago (past the 1h default retention) and a
	// live pending one. Timestamps are forged via the internal append so
	// the test does not have to sleep through a retention window.
	for _, r := range []record{
		{T: typeSubmit, ID: "j-000007", At: old, Req: &req},
		{T: typeStart, ID: "j-000007", At: old},
		{T: typeFinish, ID: "j-000007", At: old, State: service.StateDone},
		{T: typeSubmit, ID: "j-000002", At: time.Now().UnixNano(), Req: &req},
	} {
		if err := l.append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec := openTest(t, dir, Options{})
	if _, ok := findJob(rec, "j-000007"); ok {
		t.Fatalf("expired job survived compaction: %+v", rec.Jobs)
	}
	if _, ok := findJob(rec, "j-000002"); !ok {
		t.Fatalf("live job lost in compaction: %+v", rec.Jobs)
	}
	// The watermark must remember the compacted-away id so the service
	// never reissues j-000007.
	if rec.MaxSeq != 7 {
		t.Fatalf("MaxSeq = %d, want 7 (watermark past compacted job)", rec.MaxSeq)
	}

	// And it must survive a further compaction cycle via the mark record
	// even with zero live jobs left.
	l2, _ := openTest(t, dir, Options{Retention: time.Nanosecond})
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec = openTest(t, dir, Options{})
	if rec.MaxSeq != 7 {
		t.Fatalf("MaxSeq after second compaction = %d, want 7", rec.MaxSeq)
	}
}

func TestCompactionShrinksLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{SegmentBytes: 512})
	for i := 1; i <= 50; i++ {
		if err := l.Submit(jid(i), reqFor("b11/0")); err != nil {
			t.Fatal(err)
		}
		if err := l.Finish(jid(i), service.StateFailed, "x", nil); err != nil {
			t.Fatal(err)
		}
	}
	before := logBytes(t, dir)
	// All jobs are finished; an aggressive retention compacts them away.
	l.opts.Retention = time.Nanosecond
	time.Sleep(10 * time.Millisecond)
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	after := logBytes(t, dir)
	if after >= before/2 {
		t.Fatalf("compaction did not shrink the log: %d -> %d bytes", before, after)
	}
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("compaction should leave one segment, got %v", segs)
	}
	// The log must still accept appends after compacting.
	if err := l.Submit(jid(60), reqFor("b11/0")); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openTest(t, dir, Options{})
	if _, ok := findJob(rec, jid(60)); !ok {
		t.Fatalf("post-compaction append lost: %+v", rec.Jobs)
	}
}

func jid(n int) string { return fmt.Sprintf("j-%06d", n) }

func logBytes(t *testing.T, dir string) int64 {
	t.Helper()
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, n := range segs {
		st, err := os.Stat(filepath.Join(dir, segName(n)))
		if err != nil {
			t.Fatal(err)
		}
		total += st.Size()
	}
	return total
}
