package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"wcm3d/internal/service"
)

// jobState is the folded per-job outcome of a replay.
type jobState struct {
	id       string
	req      *service.JobRequest
	submitAt int64
	startAt  int64
	finishAt int64
	started  bool
	terminal string // "", done, failed, canceled
	errMsg   string
	res      *service.Report
	replans  []service.ReplanRequest
}

// batchState is the folded per-batch outcome of a replay.
type batchState struct {
	id       string
	req      *service.BatchRequest
	submitAt int64
	finishAt int64
	terminal string // "", done, failed, canceled
	errMsg   string
}

// foldBatch applies one batch record to the per-batch state map with the
// same idempotence rules as job folding.
func foldBatch(batches map[string]*batchState, r record) {
	if r.ID == "" {
		return
	}
	bs := batches[r.ID]
	if bs == nil {
		bs = &batchState{id: r.ID}
		batches[r.ID] = bs
	}
	switch r.T {
	case typeBatchSubmit:
		if bs.req == nil {
			bs.req = r.BReq
			bs.submitAt = r.At
		}
	case typeBatchFinish:
		if bs.terminal == "" {
			bs.terminal = r.State
			bs.errMsg = r.Err
			bs.finishAt = r.At
		}
	}
}

// fold applies one record to the per-job state map. Replay is idempotent
// and order-tolerant per job: a terminal record wins over everything, a
// duplicate submit (possible after an interrupted compaction left both the
// old and rewritten segments behind) is harmless.
func fold(jobs map[string]*jobState, r record, maxSeq *int) {
	if r.T == typeMark {
		if r.Seq > *maxSeq {
			*maxSeq = r.Seq
		}
		return
	}
	if r.ID == "" {
		return
	}
	js := jobs[r.ID]
	if js == nil {
		js = &jobState{id: r.ID}
		jobs[r.ID] = js
	}
	switch r.T {
	case typeSubmit:
		if js.req == nil {
			js.req = r.Req
			js.submitAt = r.At
		}
	case typeStart:
		js.started = true
		if js.startAt == 0 {
			js.startAt = r.At
		}
	case typeFinish:
		if js.terminal == "" {
			js.terminal = r.State
			js.errMsg = r.Err
			js.res = r.Res
			js.finishAt = r.At
		}
	case typeCancel:
		if js.terminal == "" {
			js.terminal = service.StateCanceled
			js.errMsg = "canceled"
			js.finishAt = r.At
		}
	case typeReplan:
		// Replans land after the job finished, so they fold regardless of
		// terminal state; record order is history order.
		if r.Delta != nil {
			js.replans = append(js.replans, *r.Delta)
		}
	}
}

// readSegment replays one segment file, feeding each intact record to fn.
// It reports whether the segment ended in a torn or corrupt frame (the
// damaged tail is discarded; everything before it was applied).
func readSegment(path string, fn func(record)) (corrupt bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	hdr := make([]byte, frameHeader)
	var buf []byte
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			if errors.Is(err, io.EOF) {
				return false, nil // clean end
			}
			return true, nil // torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecordBytes {
			return true, nil // corrupt length
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(f, buf); err != nil {
			return true, nil // torn payload
		}
		if crc32.Checksum(buf, crcTable) != want {
			return true, nil // bit rot / torn write
		}
		var r record
		if err := unmarshalRecord(buf, &r); err != nil {
			return true, nil // CRC-valid but undecodable: treat as corrupt
		}
		fn(r)
	}
}

// replayLocked folds every segment into per-job state. Corruption inside a
// segment discards that segment's tail only; later segments are still
// replayed (their records fold idempotently).
func (l *Log) replayLocked() (map[string]*jobState, map[string]*batchState, int, int, error) {
	segs, err := segments(l.dir)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	jobs := make(map[string]*jobState)
	batches := make(map[string]*batchState)
	maxSeq, corrupted := 0, 0
	for _, n := range segs {
		bad, err := readSegment(filepath.Join(l.dir, segName(n)), func(r record) {
			switch r.T {
			case typeBatchSubmit, typeBatchFinish:
				foldBatch(batches, r)
			default:
				fold(jobs, r, &maxSeq)
			}
		})
		if err != nil {
			return nil, nil, 0, 0, fmt.Errorf("wal: segment %s: %w", segName(n), err)
		}
		if bad {
			corrupted++
		}
	}
	for id := range jobs {
		if n := jobSeq(id); n > maxSeq {
			maxSeq = n
		}
	}
	for id := range batches {
		if n := batchSeq(id); n > maxSeq {
			maxSeq = n
		}
	}
	return jobs, batches, maxSeq, corrupted, nil
}

// jobSeq mirrors the service's id numbering ("j-%06d") for watermarking.
func jobSeq(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "j-%d", &n); err != nil || n < 0 {
		return -1
	}
	return n
}

// batchSeq mirrors batch id numbering ("b-%06d"); batches share the
// service's sequence counter with jobs, so both feed one watermark.
func batchSeq(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "b-%d", &n); err != nil || n < 0 {
		return -1
	}
	return n
}

// Compact rewrites the log keeping only live jobs — unfinished ones and
// ones finished within the retention horizon — plus a sequence-watermark
// mark record, then deletes the superseded segments. Appends continue in
// the compacted segment. Safe to call while the log is in use.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.compactLocked(time.Now())
	return err
}

// compactLocked is the shared replay+rewrite used by Open (which also
// derives the recovery state from it) and Compact. Crash safety: the
// rewritten segment is written and fsynced under the next segment number
// before any old segment is removed, so a crash at any point leaves either
// the old records, or both old and new — and replay folds duplicates
// idempotently.
func (l *Log) compactLocked(now time.Time) (service.Recovery, error) {
	jobs, batches, maxSeq, corrupted, err := l.replayLocked()
	if err != nil {
		return service.Recovery{}, err
	}
	segs, err := segments(l.dir)
	if err != nil {
		return service.Recovery{}, err
	}

	// Partition into live (kept + recovered) and compactable.
	cutoff := now.Add(-l.opts.Retention).UnixNano()
	ids := make([]string, 0, len(jobs))
	for id := range jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var live []*jobState
	for _, id := range ids {
		js := jobs[id]
		if js.req == nil {
			// Start/finish records whose submit was lost to corruption or
			// a bug: nothing to restore or re-run.
			continue
		}
		if js.terminal != "" && js.finishAt > 0 && js.finishAt < cutoff {
			continue // finished past retention: compacted away
		}
		live = append(live, js)
	}
	bids := make([]string, 0, len(batches))
	for id := range batches {
		bids = append(bids, id)
	}
	sort.Strings(bids)
	var liveBatches []*batchState
	for _, id := range bids {
		bs := batches[id]
		if bs.req == nil {
			continue // finish whose submit was lost to corruption
		}
		if bs.terminal != "" && bs.finishAt > 0 && bs.finishAt < cutoff {
			continue // finished past retention: compacted away
		}
		liveBatches = append(liveBatches, bs)
	}

	// Rewrite live records into a fresh segment numbered after every
	// existing one, then drop the old segments.
	next := 1
	if len(segs) > 0 {
		next = segs[len(segs)-1] + 1
	}
	if err := l.writeCompacted(next, live, liveBatches, maxSeq); err != nil {
		return service.Recovery{}, err
	}
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	for _, n := range segs {
		if err := os.Remove(filepath.Join(l.dir, segName(n))); err != nil && !errors.Is(err, os.ErrNotExist) {
			return service.Recovery{}, err
		}
	}
	if err := l.openSegmentLocked(next); err != nil {
		return service.Recovery{}, err
	}

	rec := service.Recovery{MaxSeq: maxSeq, Corrupted: corrupted}
	for _, js := range live {
		rj := service.RecoveredJob{
			ID:          js.id,
			Req:         *js.req,
			Orphaned:    js.started && js.terminal == "",
			State:       js.terminal,
			Err:         js.errMsg,
			Result:      js.res,
			SubmittedAt: nanoTime(js.submitAt),
			StartedAt:   nanoTime(js.startAt),
			FinishedAt:  nanoTime(js.finishAt),
			Replans:     js.replans,
		}
		rec.Jobs = append(rec.Jobs, rj)
	}
	for _, bs := range liveBatches {
		rec.Batches = append(rec.Batches, service.RecoveredBatch{
			ID:          bs.id,
			Req:         *bs.req,
			State:       bs.terminal,
			Err:         bs.errMsg,
			SubmittedAt: nanoTime(bs.submitAt),
			FinishedAt:  nanoTime(bs.finishAt),
		})
	}
	return rec, nil
}

// writeCompacted writes the mark record and each live job's reconstructed
// record chain into segment n, fsyncing before it returns.
func (l *Log) writeCompacted(n int, live []*jobState, liveBatches []*batchState, maxSeq int) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(n)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	write := func(r record) error {
		payload, err := marshalRecord(r)
		if err != nil {
			return err
		}
		frame := make([]byte, frameHeader+len(payload))
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
		copy(frame[frameHeader:], payload)
		_, err = f.Write(frame)
		return err
	}
	if err := write(record{T: typeMark, Seq: maxSeq}); err != nil {
		return err
	}
	for _, js := range live {
		if err := write(record{T: typeSubmit, ID: js.id, At: js.submitAt, Req: js.req}); err != nil {
			return err
		}
		if js.started {
			if err := write(record{T: typeStart, ID: js.id, At: js.startAt}); err != nil {
				return err
			}
		}
		if js.terminal != "" {
			if err := write(record{T: typeFinish, ID: js.id, At: js.finishAt,
				State: js.terminal, Err: js.errMsg, Res: js.res}); err != nil {
				return err
			}
		}
		for i := range js.replans {
			if err := write(record{T: typeReplan, ID: js.id, Delta: &js.replans[i]}); err != nil {
				return err
			}
		}
	}
	for _, bs := range liveBatches {
		if err := write(record{T: typeBatchSubmit, ID: bs.id, At: bs.submitAt, BReq: bs.req}); err != nil {
			return err
		}
		if bs.terminal != "" {
			if err := write(record{T: typeBatchFinish, ID: bs.id, At: bs.finishAt,
				State: bs.terminal, Err: bs.errMsg}); err != nil {
				return err
			}
		}
	}
	if l.opts.NoSync {
		return nil
	}
	return f.Sync()
}

func nanoTime(ns int64) time.Time {
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}
