// Package wal is wcmd's segmented write-ahead job log: every job
// lifecycle transition (submit, start, finish, cancel) is appended as a
// CRC-framed, fsynced record, so a kill -9 loses nothing that was ever
// acknowledged. Open replays the log into a recovery state — pending and
// orphaned jobs to re-queue, recently finished ones to restore — and
// compacts away jobs finished past the retention horizon. Segments rotate
// at a size threshold so compaction rewrites bounded amounts of data.
//
// On-disk format: each segment file (wal-NNNNNN.log) is a sequence of
// frames [len uint32 LE][crc32c uint32 LE][payload], payload being one
// JSON record. A torn or corrupt frame ends the readable part of its
// segment — the damaged tail is discarded on replay, every record before
// it stands, and later segments are still read (torn writes only ever
// damage the tail of the segment being appended when the process died).
package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"wcm3d/internal/service"
)

// Record types.
const (
	typeSubmit = "submit"
	typeStart  = "start"
	typeFinish = "finish"
	typeCancel = "cancel"
	// Batch sweeps (POST /v1/batches) journal as submit/finish pairs; a
	// batch with a submit but no finish replays as pending and is re-run
	// from scratch (the engine is idempotent, per-die progress is not
	// journaled).
	typeBatchSubmit = "bsubmit"
	typeBatchFinish = "bfinish"
	// typeReplan records one applied TSV-repair delta on a finished job
	// (POST /v1/jobs/{id}/replan); replay rebuilds the job's repair
	// history in record order.
	typeReplan = "replan"
	// typeMark carries the job-id sequence watermark across compactions,
	// so a log whose every job was compacted away still prevents id reuse.
	typeMark = "mark"
)

// record is the JSON payload of one frame.
type record struct {
	T     string                 `json:"t"`
	ID    string                 `json:"id,omitempty"`
	At    int64                  `json:"at,omitempty"` // unix nanoseconds
	Req   *service.JobRequest    `json:"req,omitempty"`
	BReq  *service.BatchRequest  `json:"breq,omitempty"`
	State string                 `json:"state,omitempty"`
	Err   string                 `json:"err,omitempty"`
	Res   *service.Report        `json:"res,omitempty"`
	Delta *service.ReplanRequest `json:"delta,omitempty"`
	Seq   int                    `json:"seq,omitempty"`
}

// Options tunes a Log. The zero value gets defaults from Open.
type Options struct {
	// SegmentBytes is the rotation threshold: an append that would push
	// the active segment past it seals the segment and starts the next
	// (default 4 MiB).
	SegmentBytes int64
	// Retention is the compaction horizon: jobs finished longer ago than
	// this are dropped when the log compacts (default 1h). It should
	// match (or exceed) the service's job-retention TTL so every
	// queryable job stays restorable.
	Retention time.Duration
	// NoSync skips the per-record fsync. Only for tests — it voids the
	// durability contract.
	NoSync bool
}

// Log is an append-only segmented job journal. It implements
// service.Journal. Safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	dir  string
	opts Options
	f    *os.File
	seg  int   // active segment number
	size int64 // bytes written to the active segment
}

const (
	frameHeader = 8
	// maxRecordBytes bounds a single frame so a corrupt length field
	// cannot trigger an absurd allocation during replay.
	maxRecordBytes = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func marshalRecord(r record) ([]byte, error)    { return json.Marshal(r) }
func unmarshalRecord(b []byte, r *record) error { return json.Unmarshal(b, r) }

func segName(n int) string { return fmt.Sprintf("wal-%06d.log", n) }

// segments lists the log's segment numbers in ascending order.
func segments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, e := range ents {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "wal-%06d.log", &n); err == nil {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// Open replays and compacts the log at dir (creating it if needed) and
// returns the log ready for appends plus the recovery state: pending and
// orphaned jobs for the service to re-queue, recently finished jobs to
// restore, and the id watermark.
func Open(dir string, opts Options) (*Log, service.Recovery, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if opts.Retention <= 0 {
		opts.Retention = time.Hour
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, service.Recovery{}, err
	}
	l := &Log{dir: dir, opts: opts}
	rec, err := l.compactLocked(time.Now())
	if err != nil {
		return nil, service.Recovery{}, err
	}
	return l, rec, nil
}

// Append writes one framed record to the active segment, rotating first if
// the record would push it past the segment threshold, and fsyncs unless
// NoSync is set.
func (l *Log) append(r record) error {
	payload, err := marshalRecord(r)
	if err != nil {
		return err
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeader:], payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		if err := l.openSegmentLocked(l.seg + 1); err != nil {
			return err
		}
	}
	if l.size > 0 && l.size+int64(len(frame)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(frame); err != nil {
		return err
	}
	l.size += int64(len(frame))
	if !l.opts.NoSync {
		return l.f.Sync()
	}
	return nil
}

// openSegmentLocked opens segment n for appending and makes it active.
func (l *Log) openSegmentLocked(n int) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(n)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	l.f, l.seg, l.size = f, n, st.Size()
	return nil
}

// rotateLocked seals the active segment and opens the next one.
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if !l.opts.NoSync {
			if err := l.f.Sync(); err != nil {
				return err
			}
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
	}
	return l.openSegmentLocked(l.seg + 1)
}

// Close seals the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Submit implements service.Journal.
func (l *Log) Submit(id string, req service.JobRequest) error {
	r := req
	return l.append(record{T: typeSubmit, ID: id, At: time.Now().UnixNano(), Req: &r})
}

// Start implements service.Journal.
func (l *Log) Start(id string) error {
	return l.append(record{T: typeStart, ID: id, At: time.Now().UnixNano()})
}

// Finish implements service.Journal.
func (l *Log) Finish(id string, state, errMsg string, result *service.Report) error {
	return l.append(record{T: typeFinish, ID: id, At: time.Now().UnixNano(), State: state, Err: errMsg, Res: result})
}

// Cancel implements service.Journal.
func (l *Log) Cancel(id string) error {
	return l.append(record{T: typeCancel, ID: id, At: time.Now().UnixNano()})
}

// Replan implements service.ReplanJournal.
func (l *Log) Replan(id string, delta service.ReplanRequest) error {
	d := delta
	return l.append(record{T: typeReplan, ID: id, At: time.Now().UnixNano(), Delta: &d})
}

// SubmitBatch implements service.BatchJournal.
func (l *Log) SubmitBatch(id string, req service.BatchRequest) error {
	r := req
	return l.append(record{T: typeBatchSubmit, ID: id, At: time.Now().UnixNano(), BReq: &r})
}

// FinishBatch implements service.BatchJournal.
func (l *Log) FinishBatch(id string, state, errMsg string) error {
	return l.append(record{T: typeBatchFinish, ID: id, At: time.Now().UnixNano(), State: state, Err: errMsg})
}

var (
	_ service.Journal       = (*Log)(nil)
	_ service.BatchJournal  = (*Log)(nil)
	_ service.ReplanJournal = (*Log)(nil)
)
