package wal

// Torture tests: every way a crash or disk can mangle the log — torn
// tail writes, bit rot, a crash between compaction's write-new and
// delete-old steps — must recover to exactly the state the intact prefix
// describes, never an error and never a lost acknowledged record.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"wcm3d/internal/service"
)

// activeSegPath returns the highest-numbered (append-target) segment.
func activeSegPath(t *testing.T, dir string) string {
	t.Helper()
	segs, err := segments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments(%s): %v %v", dir, segs, err)
	}
	return filepath.Join(dir, segName(segs[len(segs)-1]))
}

func TestTortureTruncatedTail(t *testing.T) {
	for _, cut := range []int64{1, 3, 7, 12} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, _ := openTest(t, dir, Options{})
			for i := 1; i <= 3; i++ {
				if err := l.Submit(jid(i), reqFor("b11/0")); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Finish(jid(3), service.StateDone, "", nil); err != nil {
				t.Fatal(err)
			}
			l.Close()

			// Chop into the final frame: the finish record is damaged, so
			// j-000003 must come back as pending, not done.
			path := activeSegPath(t, dir)
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, st.Size()-cut); err != nil {
				t.Fatal(err)
			}

			_, rec := openTest(t, dir, Options{})
			if rec.Corrupted != 1 {
				t.Fatalf("Corrupted = %d, want 1", rec.Corrupted)
			}
			if len(rec.Jobs) != 3 {
				t.Fatalf("recovered %d jobs, want 3 (prefix intact)", len(rec.Jobs))
			}
			j3, _ := findJob(rec, jid(3))
			if j3.State != "" {
				t.Fatalf("j-000003 state %q, want pending (finish record was torn)", j3.State)
			}
		})
	}
}

func TestTortureBitFlippedCRC(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	for i := 1; i <= 5; i++ {
		if err := l.Submit(jid(i), reqFor("b11/0")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	path := activeSegPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit two-thirds into the file: the frame containing
	// it fails its CRC and the segment's readable part ends there.
	data[len(data)*2/3] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := openTest(t, dir, Options{})
	if rec.Corrupted != 1 {
		t.Fatalf("Corrupted = %d, want 1", rec.Corrupted)
	}
	if len(rec.Jobs) == 0 || len(rec.Jobs) >= 5 {
		t.Fatalf("recovered %d jobs, want a proper non-empty prefix of 5", len(rec.Jobs))
	}
	// The prefix must be contiguous: j-1..j-k with no holes.
	for i := 1; i <= len(rec.Jobs); i++ {
		if _, ok := findJob(rec, jid(i)); !ok {
			t.Fatalf("hole in recovered prefix at %s: %+v", jid(i), rec.Jobs)
		}
	}
}

// TestTortureCorruptMiddleSegmentKeepsLaterOnes: damage in an OLD segment
// must not take later segments down with it.
func TestTortureCorruptMiddleSegmentKeepsLaterOnes(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{SegmentBytes: 256})
	for i := 1; i <= 30; i++ {
		if err := l.Submit(jid(i), reqFor("b11/0")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need >=3 segments, got %v", segs)
	}
	mid := filepath.Join(dir, segName(segs[len(segs)/2]))
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	data[9] ^= 0xFF // first frame's payload: kills the whole middle segment
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := openTest(t, dir, Options{})
	if rec.Corrupted != 1 {
		t.Fatalf("Corrupted = %d, want 1", rec.Corrupted)
	}
	// Jobs from segments after the damaged one must still be there.
	if _, ok := findJob(rec, jid(30)); !ok {
		t.Fatalf("job from a later segment lost: recovered %d jobs", len(rec.Jobs))
	}
	if rec.MaxSeq != 30 {
		t.Fatalf("MaxSeq = %d, want 30", rec.MaxSeq)
	}
}

// TestTortureMidCompactionCrash: a crash after compaction wrote the new
// segment but before it deleted the old ones leaves BOTH on disk. Replay
// must fold the duplicates idempotently — same jobs, same states, no
// resurrection of pre-compaction state.
func TestTortureMidCompactionCrash(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	for i := 1; i <= 4; i++ {
		if err := l.Submit(jid(i), reqFor("b11/0")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Finish(jid(1), service.StateDone, "", nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Start(jid(2)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Simulate the interrupted compaction: duplicate the live segment
	// under the next number, as writeCompacted would have, and leave the
	// original in place (the crash happened before os.Remove).
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := segs[len(segs)-1]
	data, err := os.ReadFile(filepath.Join(dir, segName(last)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(last+1)), data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := openTest(t, dir, Options{})
	if rec.Corrupted != 0 {
		t.Fatalf("duplicated segments are not corruption, got Corrupted=%d", rec.Corrupted)
	}
	if len(rec.Jobs) != 4 {
		t.Fatalf("recovered %d jobs, want 4 (duplicates folded)", len(rec.Jobs))
	}
	j1, _ := findJob(rec, jid(1))
	j2, _ := findJob(rec, jid(2))
	if j1.State != service.StateDone || !j2.Orphaned {
		t.Fatalf("duplicate fold changed outcomes: j1=%+v j2=%+v", j1, j2)
	}
}

// modelJob mirrors what replay should reconstruct for one job.
type modelJob struct {
	started  bool
	terminal string
}

// TestTortureCrashReplayProperty is the seeded property test: apply a
// random op sequence, crash at a random byte (possibly mid-frame, and
// with rotation in play), and require the recovered state to equal the
// model folded over exactly the ops whose frames survived intact.
func TestTortureCrashReplayProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			segBytes := int64(1 << 20)
			if seed%3 == 0 {
				segBytes = 300 // force rotation on a third of the seeds
			}
			l, _ := openTest(t, dir, Options{SegmentBytes: segBytes})

			type opPoint struct {
				seg  int
				size int64 // active segment size AFTER the op's frame
			}
			var points []opPoint
			model := make(map[string]*modelJob)
			var ops []func(map[string]*modelJob)
			nextID := 0
			ids := func() []string {
				out := make([]string, 0, len(model))
				for id := range model {
					out = append(out, id)
				}
				return out
			}
			nOps := 20 + rng.Intn(40)
			for i := 0; i < nOps; i++ {
				var apply func(map[string]*modelJob)
				switch k := rng.Intn(4); {
				case k == 0 || len(model) == 0:
					nextID++
					id := jid(nextID)
					if err := l.Submit(id, reqFor("b11/0")); err != nil {
						t.Fatal(err)
					}
					apply = func(m map[string]*modelJob) { m[id] = &modelJob{} }
				case k == 1:
					id := ids()[rng.Intn(len(model))]
					if err := l.Start(id); err != nil {
						t.Fatal(err)
					}
					apply = func(m map[string]*modelJob) { m[id].started = true }
				case k == 2:
					id := ids()[rng.Intn(len(model))]
					state := service.StateDone
					if rng.Intn(2) == 0 {
						state = service.StateFailed
					}
					if err := l.Finish(id, state, "", nil); err != nil {
						t.Fatal(err)
					}
					apply = func(m map[string]*modelJob) {
						if m[id].terminal == "" {
							m[id].terminal = state
						}
					}
				default:
					id := ids()[rng.Intn(len(model))]
					if err := l.Cancel(id); err != nil {
						t.Fatal(err)
					}
					apply = func(m map[string]*modelJob) {
						if m[id].terminal == "" {
							m[id].terminal = service.StateCanceled
						}
					}
				}
				apply(model)
				ops = append(ops, apply)
				l.mu.Lock()
				points = append(points, opPoint{seg: l.seg, size: l.size})
				l.mu.Unlock()
			}
			l.Close()

			// Crash after op k: keep every segment before the final one
			// intact, truncate the final segment at op k's boundary plus a
			// few garbage bytes of the next frame. Only ops living in the
			// final segment are valid crash points (earlier segments are
			// sealed and survive whole).
			finalSeg := points[len(points)-1].seg
			firstInFinal := 0
			for i, p := range points {
				if p.seg == finalSeg {
					firstInFinal = i
					break
				}
			}
			k := firstInFinal + rng.Intn(len(points)-firstInFinal)
			cutAt := points[k].size
			torn := rng.Intn(6) // 0 = clean frame boundary, else a partial next frame
			path := filepath.Join(dir, segName(finalSeg))
			if st, err := os.Stat(path); err == nil && cutAt+int64(torn) < st.Size() {
				cutAt += int64(torn)
			} else {
				torn = 0
			}
			if err := os.Truncate(path, cutAt); err != nil {
				t.Fatal(err)
			}

			// Expected state: the model folded over ops[0..k] only.
			want := make(map[string]*modelJob)
			for _, apply := range ops[:k+1] {
				apply(want)
			}

			_, rec := openTest(t, dir, Options{})
			if got := len(rec.Jobs); got != len(want) {
				t.Fatalf("recovered %d jobs, want %d (crash after op %d/%d)", got, len(want), k, nOps)
			}
			for id, m := range want {
				rj, ok := findJob(rec, id)
				if !ok {
					t.Fatalf("job %s lost at crash point %d", id, k)
				}
				if rj.State != m.terminal {
					t.Fatalf("job %s state %q, want %q", id, rj.State, m.terminal)
				}
				wantOrphan := m.started && m.terminal == ""
				if rj.Orphaned != wantOrphan {
					t.Fatalf("job %s orphaned=%v, want %v", id, rj.Orphaned, wantOrphan)
				}
			}
			if torn > 0 && rec.Corrupted != 1 {
				t.Fatalf("torn tail (%d bytes) not flagged: Corrupted=%d", torn, rec.Corrupted)
			}
		})
	}
}
