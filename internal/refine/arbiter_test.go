package refine

import (
	"context"
	"strings"
	"testing"
	"time"

	"wcm3d/internal/scan"
	"wcm3d/internal/wcm"
)

// improvingSolution runs plain local search on a known-gap die and returns
// the problem, the greedy start, and a strictly better solution — raw
// material for arbiter tests that need a genuine improvement in hand.
func improvingSolution(t *testing.T) (*Problem, *Solution, *Solution) {
	t.Helper()
	// Known-gap corpus dies; not every gap is closable by local search
	// alone (some need bnb), so probe until one improves.
	for _, seed := range []int64{24, 25, 20, 23, 26, 27, 29} {
		p, start := evalProblem(t, seed)
		var improved *Solution
		_, err := localSearch{}.Refine(context.Background(), p, start,
			Config{Seed: seed, MaxSteps: 50000},
			func(s *Solution) bool {
				improved = s.clone()
				return false
			})
		if err != nil {
			t.Fatal(err)
		}
		if improved != nil && improved.cells(p) < start.cells(p) {
			return p, start, improved
		}
	}
	t.Fatal("local search found no improvement on any known-gap die")
	return nil, nil, nil
}

// TestArbiterStaleRace pins the double-count fix: a candidate that verifies
// but finds an equal-cost plan already admitted when it re-takes the lock
// must come back offerStale — dropped, not admitted — and must not displace
// the rival's lead. Before the verdict split, both racers counted as
// Admitted and refine.improved could tick twice for one improvement.
func TestArbiterStaleRace(t *testing.T) {
	p, start, improved := improvingSolution(t)
	greedyCells := start.cells(p)
	improvedCells := improved.cells(p)

	arb := &arbiter{p: p, bestCells: greedyCells}
	arb.certifyFn = func(*scan.Assignment) bool {
		// While "verification" runs (outside the arbiter lock), a rival
		// strategy certifies an equal-cost plan and takes the lead.
		arb.mu.Lock()
		arb.bestCells = improvedCells
		arb.strategy = "rival"
		arb.mu.Unlock()
		return true
	}
	if v := arb.offer("local", improved); v != offerStale {
		t.Fatalf("equal-cost race verdict = %d, want offerStale", v)
	}
	if arb.strategy != "rival" {
		t.Fatalf("stale candidate displaced the rival's lead (strategy=%q)", arb.strategy)
	}
}

// TestArbiterSequentialEqualCost pins the cheap path of the same contract:
// once a cost is admitted, a second candidate at the same cost fails the
// pre-check before encoding or verification is even attempted.
func TestArbiterSequentialEqualCost(t *testing.T) {
	p, start, improved := improvingSolution(t)
	certified := 0
	arb := &arbiter{p: p, bestCells: start.cells(p)}
	arb.certifyFn = func(*scan.Assignment) bool { certified++; return true }

	if v := arb.offer("local", improved); v != offerAdmitted {
		t.Fatalf("first offer verdict = %d, want offerAdmitted", v)
	}
	if v := arb.offer("anneal", improved); v != offerNotBetter {
		t.Fatalf("equal-cost re-offer verdict = %d, want offerNotBetter", v)
	}
	if certified != 1 {
		t.Fatalf("verifier ran %d times, want 1 (pre-check must gate the second offer)", certified)
	}
	if arb.strategy != "local" {
		t.Fatalf("winning strategy = %q, want local", arb.strategy)
	}
}

// hangAfterSearch is a test strategy: it runs real local search (admitting
// improvements through the arbiter) and then blocks until the deadline —
// the shape of a sweep that expires mid-flight after finding something.
type hangAfterSearch struct{}

func (hangAfterSearch) Name() string { return "hang" }

func (hangAfterSearch) Refine(ctx context.Context, p *Problem, start *Solution, cfg Config, emit func(*Solution) bool) (int, error) {
	steps, _ := localSearch{}.Refine(ctx, p, start, cfg, emit)
	<-ctx.Done()
	return steps, ctx.Err()
}

// TestDeadlineMidSweepKeepsBestAdmitted pins the expiry contract: when the
// budget expires with a strategy still running, Run must return the best
// already-admitted plan — not fall back to greedy just because the sweep
// did not finish cleanly.
func TestDeadlineMidSweepKeepsBestAdmitted(t *testing.T) {
	strategyRegistry["hang"] = hangAfterSearch{}
	defer delete(strategyRegistry, "hang")

	in := tinyDie(t, 24) // known-gap die: the search will admit a plan
	opts := wcm.DefaultOptions()
	greedy, err := wcm.Run(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), in, opts, greedy, Options{
		Seed:       24,
		Budget:     500 * time.Millisecond,
		Strategies: []string{"hang"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strategies) != 1 || !res.Strategies[0].Deadline {
		t.Fatalf("expected the hang strategy to be cut by the deadline: %+v", res.Strategies)
	}
	if res.Strategies[0].Admitted == 0 {
		t.Fatal("hang strategy admitted nothing — the test exercises no race")
	}
	if !res.Improved || res.AdditionalCells >= res.GreedyCells {
		t.Fatalf("deadline mid-sweep dropped the admitted plan: improved=%v cells=%d greedy=%d",
			res.Improved, res.AdditionalCells, res.GreedyCells)
	}
	if res.Strategy != "hang" {
		t.Fatalf("winning strategy = %q, want hang", res.Strategy)
	}
}

// TestStrategiesFor pins name resolution: default order when empty,
// duplicates collapse to the first occurrence, unknown names error and
// name the known set.
func TestStrategiesFor(t *testing.T) {
	names := func(rs []Refiner) []string {
		out := make([]string, len(rs))
		for i, r := range rs {
			out[i] = r.Name()
		}
		return out
	}
	cases := []struct {
		name    string
		in      []string
		want    []string
		wantErr string
	}{
		{"nil runs all in order", nil, []string{"local", "anneal", "bnb", "lns"}, ""},
		{"empty runs all in order", []string{}, []string{"local", "anneal", "bnb", "lns"}, ""},
		{"explicit subset", []string{"lns", "local"}, []string{"lns", "local"}, ""},
		{"duplicates collapse", []string{"local", "local", "anneal", "local"}, []string{"local", "anneal"}, ""},
		{"unknown name", []string{"local", "bogus"}, nil, `unknown strategy "bogus"`},
		{"known set in error", []string{"tabu"}, nil, "anneal, bnb, lns, local"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := strategiesFor(tc.in)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			g := names(got)
			if len(g) != len(tc.want) {
				t.Fatalf("got %v, want %v", g, tc.want)
			}
			for i := range g {
				if g[i] != tc.want[i] {
					t.Fatalf("got %v, want %v", g, tc.want)
				}
			}
		})
	}
}
