package refine

import "context"

// localSearch is the deterministic strategy: first-improvement descent over
// three sweeps — pairwise block merges, single-item relocations, and
// split-and-remerge kicks — each trial rescored with a full augmenting-path
// rematch, until a whole round finds nothing (a local optimum) or the step
// budget runs out. No randomness: for a fixed problem the trajectory is a
// pure function of the sweep order.
type localSearch struct{}

func (localSearch) Name() string { return "local" }

func (localSearch) Refine(ctx context.Context, p *Problem, start *Solution, cfg Config, emit func(*Solution) bool) (int, error) {
	s := start.clone()
	augmentAll(p, s)
	best := s.cells(p)
	if best < start.cells(p) {
		// The greedy plan's flip-flop assignment was not a maximum
		// matching: augmenting paths alone already saved cells.
		emit(s)
	}
	steps := 0
	done := func() bool {
		if steps >= cfg.MaxSteps {
			return true
		}
		if steps%64 == 0 && ctx.Err() != nil {
			return true
		}
		return false
	}
	// try applies mutate to a scratch copy, keeps it when it lowers the
	// cell count, and reports whether it did.
	try := func(mutate func(*Solution)) bool {
		steps++
		trial := s.clone()
		mutate(trial)
		augmentAll(p, trial)
		if c := trial.cells(p); c < best {
			s, best = trial, c
			emit(s)
			return true
		}
		return false
	}
	improved := true
	for improved && !done() {
		improved = false
		// Merge sweep: fuse any two compatible blocks.
		for pi := range s.blocks {
			ph := p.phases[pi]
			for bi := 0; bi < len(s.blocks[pi]) && !done(); bi++ {
				for bj := bi + 1; bj < len(s.blocks[pi]) && !done(); bj++ {
					if !ph.canMerge(&s.blocks[pi][bi], &s.blocks[pi][bj]) {
						continue
					}
					if try(func(t *Solution) { t.mergeBlocks(p, pi, bi, bj) }) {
						improved = true
						bj = bi // indices shifted: rescan bi's row
					}
				}
			}
		}
		// Relocate sweep: move one item into another block.
		for pi := range s.blocks {
			ph := p.phases[pi]
			for bi := 0; bi < len(s.blocks[pi]) && !done(); bi++ {
			rescan:
				for mi := 0; mi < len(s.blocks[pi][bi].members); mi++ {
					item := s.blocks[pi][bi].members[mi]
					for to := 0; to < len(s.blocks[pi]) && !done(); to++ {
						if to == bi || !ph.canJoin(&s.blocks[pi][to], item) {
							continue
						}
						if try(func(t *Solution) { t.relocate(p, pi, bi, mi, to) }) {
							improved = true
							if bi >= len(s.blocks[pi]) {
								break rescan // block dissolved
							}
							mi--
							continue rescan
						}
					}
				}
			}
		}
		// Split-and-remerge sweep: dissolve one block and first-fit its
		// members into the remaining blocks — the escape hatch for the
		// greedy partitioner's known failure mode, cliques merged so
		// large no disjoint-cone flip-flop can attach.
		for pi := range s.blocks {
			for bi := 0; bi < len(s.blocks[pi]) && !done(); bi++ {
				if len(s.blocks[pi][bi].members) < 2 {
					continue
				}
				if try(func(t *Solution) { t.splitRemerge(p, pi, bi) }) {
					improved = true
					bi--
				}
			}
		}
	}
	return steps, ctx.Err()
}

// splitRemerge dissolves block bi into free items and re-inserts each into
// the first compatible existing block, opening singletons for the rest.
func (s *Solution) splitRemerge(p *Problem, pi, bi int) {
	ph := p.phases[pi]
	freed := append([]int32(nil), s.blocks[pi][bi].members...)
	s.releaseFF(p, pi, bi)
	s.blocks[pi][bi].members = s.blocks[pi][bi].members[:0]
	for w := range s.blocks[pi][bi].mask {
		s.blocks[pi][bi].mask[w] = 0
	}
	s.removeEmpty(pi, bi)
	for _, item := range freed {
		placed := -1
		for to := range s.blocks[pi] {
			if ph.canJoin(&s.blocks[pi][to], item) {
				placed = to
				break
			}
		}
		if placed >= 0 {
			s.joinBlock(p, pi, placed, item)
		} else {
			s.addSingleton(p, pi, item)
		}
	}
}

// removeEmpty drops the (already emptied) block at bi.
func (s *Solution) removeEmpty(pi, bi int) {
	last := len(s.blocks[pi]) - 1
	s.blocks[pi][bi] = s.blocks[pi][last]
	s.blocks[pi][last] = block{}
	s.blocks[pi] = s.blocks[pi][:last]
}
