package refine

import (
	"context"
	"math/rand"
)

// localSearch is the deterministic strategy: first-improvement descent over
// three sweeps — candidate-list block merges, single-item relocations, and
// split-and-remerge kicks — every trial scored by the incremental evaluator
// and reverted through its journal unless it strictly lowers the cell
// count. When the descent bottoms out, the restart schedule perturbs the
// strategy's own best with a few seeded random moves and descends again;
// a round that fails to beat that best reverts wholesale, and after
// localFruitlessRounds consecutive failures the strategy stops. For a
// fixed (seed, step budget) the trajectory is a pure function of the
// sweep order — the wall deadline can only truncate it.
type localSearch struct{}

func (localSearch) Name() string { return "local" }

// localFruitlessRounds is the restart schedule's give-up cutoff: stop
// after this many consecutive perturb-and-descend rounds that fail to
// improve the strategy's own best.
const localFruitlessRounds = 2

// restartSeedStride separates the RNG streams of restart rounds (and the
// annealer's reheat segments): round r draws from Seed + r·stride.
const restartSeedStride = 1000003

func (localSearch) Refine(ctx context.Context, p *Problem, start *Solution, cfg Config, emit func(*Solution) bool) (int, error) {
	e := newEvaluator(p, start.clone())
	e.crossCheck = cfg.CrossCheck
	d := &descender{ctx: ctx, p: p, e: e, cfg: cfg, incumbent: start.cells(p), emit: emit}
	if e.cells() < d.incumbent {
		// The greedy plan's flip-flop assignment was not a maximum
		// matching: augmenting paths alone already saved cells.
		d.incumbent = e.cells()
		emit(e.s)
	}
	fruitless := 0
	for round := 0; fruitless < localFruitlessRounds && !d.done(); round++ {
		if cfg.Restarts > 0 && round >= cfg.Restarts {
			break
		}
		d.cur = e.cells()
		d.roundBest = d.cur
		d.committed = false
		m := e.mark()
		if round > 0 {
			d.perturb(rand.New(rand.NewSource(cfg.Seed+int64(round)*restartSeedStride)), 3+round%4)
		}
		d.descend()
		if d.committed {
			// The round beat the own best it started from; the journal
			// already reset at the moment it did.
			e.commit()
			fruitless = 0
		} else {
			e.revert(m)
			fruitless++
		}
	}
	return d.steps, ctx.Err()
}

// descender runs first-improvement descent over an evaluator. cur tracks
// the current cost (it rises during perturbation), roundBest the own-best
// cost this round must beat before any state is committed, incumbent the
// best cost this strategy ever emitted.
type descender struct {
	ctx context.Context
	p   *Problem
	e   *evaluator
	cfg Config

	steps      int
	cur        int
	roundBest  int
	committed  bool
	incumbent  int
	emit       func(*Solution) bool
	partnerBuf []int32
}

func (d *descender) done() bool {
	if d.steps >= d.cfg.MaxSteps {
		return true
	}
	return d.steps%64 == 0 && d.ctx.Err() != nil
}

// try applies one move, keeps it when it strictly lowers the current cost
// (committing the journal once the round's own best is beaten, so a later
// round-level revert cannot roll back real progress), and reverts it
// otherwise.
func (d *descender) try(apply func()) bool {
	d.steps++
	m := d.e.mark()
	apply()
	c := d.e.cells()
	if c >= d.cur {
		d.e.revert(m)
		return false
	}
	d.cur = c
	if c < d.roundBest {
		d.roundBest = c
		d.e.commit()
		d.committed = true
	}
	if c < d.incumbent {
		d.incumbent = c
		d.emit(d.e.s)
	}
	return true
}

// perturb applies n random feasible moves regardless of cost, kicking the
// search off its local optimum; the round reverts wholesale if the
// following descent cannot recover.
func (d *descender) perturb(rng *rand.Rand, n int) {
	for applied, attempts := 0, 0; applied < n && attempts < n*20 && !d.done(); attempts++ {
		if applyRandomMove(d.p, d.e, rng) {
			applied++
			d.steps++
		}
	}
	d.cur = d.e.cells()
}

func (d *descender) descend() {
	improved := true
	for improved && !d.done() {
		improved = false
		for pi := range d.e.s.blocks {
			if d.mergeSweep(pi) {
				improved = true
			}
		}
		for pi := range d.e.s.blocks {
			if d.relocateSweep(pi) {
				improved = true
			}
		}
		for pi := range d.e.s.blocks {
			if d.splitSweep(pi) {
				improved = true
			}
		}
	}
}

// smallPhaseFullSweep is the block count under which merge sweeps try all
// pairs instead of candidate lists. Overlap ranking exists to make sweeps
// affordable on b20-class phases (hundreds of blocks); on small phases it
// can bury the winning pair — merging two exposed blocks saves a cell at
// zero flip-flop overlap — below the top-k cut, and all-pairs in index
// order is cheap enough anyway.
const smallPhaseFullSweep = 140

// mergeSweep fuses compatible blocks: all pairs on small phases, each
// block's top-k candidate partners on large ones. Successful merges shift
// block indices, which makes the lists stale mid-pass; a stale entry
// merely points a trial at a different (still feasibility-checked, still
// exactly scored) pair, so the pass finishes on the stale lists and
// rebuilds them for the next.
func (d *descender) mergeSweep(pi int) bool {
	ph := d.p.phases[pi]
	blocks := &d.e.s.blocks[pi]
	improved := false
	// Exposed-pair pre-pass: fusing two uncovered blocks always saves one
	// cell (the block count drops, the matching is untouched), but those
	// pairs share no flip-flop cover, so the overlap ranking scores them
	// zero and the candidate lists bury them. Sweep them directly — the
	// pair count is quadratic only in the few exposed blocks, and canMerge
	// fails fast on the first non-adjacent member.
	for changed := true; changed && !d.done(); {
		changed = false
		for bi := 0; bi < len(*blocks) && !d.done(); bi++ {
			if (*blocks)[bi].ff >= 0 {
				continue
			}
			for bj := bi + 1; bj < len(*blocks); bj++ {
				if (*blocks)[bj].ff >= 0 || !ph.canMerge(&(*blocks)[bi], &(*blocks)[bj]) {
					continue
				}
				if d.try(func() { d.e.merge(pi, bi, bj) }) {
					changed, improved = true, true
					bj-- // swap-delete moved a new block into slot bj
				}
			}
		}
	}
	for pass := true; pass && !d.done(); {
		pass = false
		var cands [][]int32
		if len(*blocks) > smallPhaseFullSweep {
			cands = mergeCandidates(d.p, d.e.s, pi, d.cfg.CandidateK)
		}
		for bi := 0; bi < len(*blocks) && !d.done(); bi++ {
			partners := d.allPartners(len(*blocks))
			if cands != nil {
				if bi >= len(cands) {
					break
				}
				partners = cands[bi]
			}
			for _, bj32 := range partners {
				bj := int(bj32)
				if bj == bi || bj >= len(*blocks) || bi >= len(*blocks) {
					continue
				}
				if !ph.canMerge(&(*blocks)[bi], &(*blocks)[bj]) {
					continue
				}
				// A merge deletes bj and frees its flip-flop; it can only
				// lower the cell count if that flip-flop re-seats, or if
				// the union repair frees bi's flip-flop into a re-seat.
				// When the freed flip-flop provably cannot re-seat
				// (reachable is exact on the pre-move state) and the
				// second channel is closed — bi exposed, or its flip-flop
				// covering the union so the repair never runs — the trial
				// is skipped without paying the failing search. On
				// flip-flop-abundant dies those failing displacement
				// searches used to dominate the whole sweep.
				if bjf := (*blocks)[bj].ff; bjf >= 0 && !d.e.reachable(pi, bjf) {
					if bif := (*blocks)[bi].ff; bif < 0 || ph.ffCoversAlso(bif, &(*blocks)[bj]) {
						continue
					}
				}
				if d.try(func() { d.e.merge(pi, bi, bj) }) {
					pass, improved = true, true
					if bi >= len(*blocks) {
						break
					}
				}
			}
		}
	}
	return improved
}

// allPartners returns [0..n) as a reusable partner list for full sweeps;
// the caller skips bj == bi itself.
func (d *descender) allPartners(n int) []int32 {
	for len(d.partnerBuf) < n {
		d.partnerBuf = append(d.partnerBuf, int32(len(d.partnerBuf)))
	}
	return d.partnerBuf[:n]
}

// relocateSweep moves single items between blocks.
func (d *descender) relocateSweep(pi int) bool {
	ph := d.p.phases[pi]
	blocks := &d.e.s.blocks[pi]
	improved := false
	for bi := 0; bi < len(*blocks) && !d.done(); bi++ {
	rescan:
		for mi := 0; mi < len((*blocks)[bi].members); mi++ {
			b := &(*blocks)[bi]
			item := b.members[mi]
			// A relocation improves the cell count only through one of
			// two channels, both cheap to screen before paying a trial's
			// matching repair:
			//
			//   - a from-side gain: an augmenting path through the
			//     shrunken source. Its tail needs a fresh flip-flop edge
			//     (one not adjacent to the moved item — otherwise the
			//     graph is unchanged and the matching stays maximum);
			//     its head must re-seat the source's freed flip-flop on
			//     an exposed block, which the reachability set prices at
			//     the pre-move state. (A head may in principle route
			//     through the shrunken source over a second fresh edge
			//     and evade the pre-move set, but measurement on the
			//     b22 family puts successful heads at 2 in 14000 — the
			//     screen trades that sliver for not paying a failing
			//     displacement search per destination.) Screened once
			//     per item — it does not depend on the destination.
			//   - a to-side chain: the grown target's flip-flop stops
			//     covering, a replacement re-matches the target, and the
			//     displaced flip-flop re-seats on an exposed block. Needs
			//     the target flip-flop non-covering of the moved item
			//     and reachable.
			//
			// A matched singleton source additionally deletes its block
			// but frees its flip-flop, which costs a match unless that
			// flip-flop re-seats — if it cannot, only the to-side chain
			// can pay for it. An exposed multi-item source is screened on
			// the fresh tail alone: its gain is a forward augmentation,
			// which the head condition does not model.
			single := len(b.members) == 1
			fromGain := false
			if !single && (b.ff < 0 || d.e.reachable(pi, b.ff)) {
				for _, fi := range ph.itemFFs[b.members[(mi+1)%len(b.members)]] {
					adj := ph.ffs[fi].adj
					if adj.has(item) {
						continue
					}
					ok := true
					for _, m := range b.members {
						if m != item && !adj.has(m) {
							ok = false
							break
						}
					}
					if ok {
						fromGain = true
						break
					}
				}
			}
			stranded := single && b.ff >= 0 && !d.e.reachable(pi, b.ff)
			for to := 0; to < len(*blocks) && !d.done(); to++ {
				if to == bi || !ph.canJoin(&(*blocks)[to], item) {
					continue
				}
				if (!single && !fromGain) || stranded {
					// Improvement now requires the to-side chain.
					tf := (*blocks)[to].ff
					if tf < 0 || ph.ffs[tf].adj.has(item) || !d.e.reachable(pi, tf) {
						continue
					}
				}
				if d.try(func() { d.e.relocate(pi, bi, mi, to) }) {
					improved = true
					if bi >= len(*blocks) {
						break rescan // block dissolved
					}
					mi--
					continue rescan
				}
			}
		}
	}
	return improved
}

// splitSweep dissolves one block and first-fits its members into the
// remaining blocks — the escape hatch for the greedy partitioner's known
// failure mode, cliques merged so large no disjoint-cone flip-flop can
// attach.
func (d *descender) splitSweep(pi int) bool {
	blocks := &d.e.s.blocks[pi]
	improved := false
	for bi := 0; bi < len(*blocks) && !d.done(); bi++ {
		if len((*blocks)[bi].members) < 2 {
			continue
		}
		if d.try(func() { d.e.splitRemerge(pi, bi) }) {
			improved = true
			bi--
		}
	}
	return improved
}

// splitRemerge dissolves block bi into singletons, then first-fits each
// freed item's singleton back into a compatible block (including blocks
// formed from earlier freed items).
func (e *evaluator) splitRemerge(pi, bi int) {
	freed := append([]int32(nil), e.s.blocks[pi][bi].members[1:]...)
	freed = append(freed, e.s.blocks[pi][bi].members[0])
	e.dissolve(pi, bi)
	ph := e.p.phases[pi]
	for _, item := range freed {
		src := -1
		for sj := range e.s.blocks[pi] {
			b := &e.s.blocks[pi][sj]
			if len(b.members) == 1 && b.members[0] == item {
				src = sj
				break
			}
		}
		if src < 0 {
			continue // absorbed by an earlier first-fit
		}
		for to := range e.s.blocks[pi] {
			if to != src && ph.canMerge(&e.s.blocks[pi][to], &e.s.blocks[pi][src]) {
				e.merge(pi, to, src)
				break
			}
		}
	}
}
