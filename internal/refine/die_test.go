package refine

import (
	"testing"

	"wcm3d/internal/cells"
	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
	"wcm3d/internal/place"
	"wcm3d/internal/sta"
	"wcm3d/internal/wcm"
)

// tinyDie reproduces the oracle test's seeded instance family byte for byte
// (internal/verify/oracle_test.go): the gap corpus stores seeds, and this
// recipe is the contract that turns a seed back into the same die. Do not
// change it without regenerating testdata/gaps.
func tinyDie(t testing.TB, seed int64) wcm.Input {
	t.Helper()
	rng := seed
	in := 2 + int(rng%5)       // 2..6
	out := 2 + int((rng/7)%5)  // 2..6
	gates := 120 + int(rng%97) // vary the logic around the TSVs
	ffs := 0
	switch seed % 3 {
	case 0: // scarce: reuse is the bottleneck, merging is forced
		ffs = (in + out) / 2
	case 1: // matched
		ffs = in + out
	case 2: // abundant: merging competes with flip-flop attachment
		ffs = 3 * (in + out)
	}
	n, err := netgen.Random(netgen.RandomOptions{
		Gates: gates, FFs: ffs, PIs: 4, POs: 2,
		InboundTSVs: in, OutboundTSVs: out, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	lib := cells.Default45nm()
	pl, err := place.Place(n, place.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	base, err := sta.Analyze(n, lib, sta.Config{ClockPS: 1e5, Placement: pl})
	if err != nil {
		t.Fatal(err)
	}
	return wcm.Input{Netlist: n, Lib: lib, Placement: pl, Timing: base}
}

// firstPhaseReuse extracts the flip-flops the heuristic consumed in its
// first phase, for the oracle's replay mode.
func firstPhaseReuse(res *wcm.Result) []netlist.SignalID {
	var out []netlist.SignalID
	if len(res.Phases) == 0 {
		return out
	}
	if res.Phases[0].Inbound {
		for _, g := range res.Assignment.Control {
			if g.Reused() {
				out = append(out, g.ReusedFF)
			}
		}
	} else {
		for _, g := range res.Assignment.Observe {
			if g.Reused() {
				out = append(out, g.ReusedFF)
			}
		}
	}
	return out
}
