package refine

import "context"

// branchBound is the exact strategy for small phases: coordinate descent
// where one phase's partition is rebuilt by exhaustive restricted-growth
// enumeration (the oracle's scheme) while the other phase stays fixed, each
// leaf scored with the global augmenting-path matching, the incumbent
// pruning subtrees that cannot beat it. Phases larger than maxItems are
// skipped — on big dies the strategy returns immediately and leaves the
// field to local search and annealing.
type branchBound struct {
	// maxItems bounds the per-phase exhaustive enumeration; 0 means
	// bnbDefaultMaxItems.
	maxItems int
}

// bnbDefaultMaxItems matches the oracle's default exhaustive bound.
const bnbDefaultMaxItems = 10

func (branchBound) Name() string { return "bnb" }

func (b branchBound) Refine(ctx context.Context, p *Problem, start *Solution, cfg Config, emit func(*Solution) bool) (int, error) {
	maxItems := b.maxItems
	if maxItems <= 0 {
		maxItems = bnbDefaultMaxItems
	}
	tractable := false
	for _, ph := range p.phases {
		if ph.n > 0 && ph.n <= maxItems {
			tractable = true
		}
	}
	if !tractable {
		return 0, nil
	}
	s := start.clone()
	augmentAll(p, s)
	best := s.cells(p)
	if best < start.cells(p) {
		emit(s)
	}
	steps := 0
	improved := true
	for improved && steps < cfg.MaxSteps && ctx.Err() == nil {
		improved = false
		for pi, ph := range p.phases {
			if ph.n == 0 || ph.n > maxItems {
				continue
			}
			better := b.solvePhase(ctx, p, s, pi, best, cfg.MaxSteps, &steps)
			if better != nil {
				s = better
				best = s.cells(p)
				emit(s)
				improved = true
			}
		}
	}
	return steps, ctx.Err()
}

// solvePhase exhaustively re-partitions phase pi with the other phase held
// fixed. It returns a strictly better full solution, or nil.
func (branchBound) solvePhase(ctx context.Context, p *Problem, s *Solution, pi, incumbent, maxSteps int, steps *int) *Solution {
	ph := p.phases[pi]
	other := 1 - pi
	// Fixed context: the other phase's block count never changes inside
	// this sweep, and the matching upper bound is the global pool.
	otherBlocks := len(s.blocks[other])
	nFFs := len(p.ffSigs)

	var bestSol *Solution
	bestCells := incumbent

	// Restricted-growth enumeration: item k joins an existing block or
	// opens a new one. Feasibility (pairwise adjacency + load) prunes at
	// assignment; the cost bound prunes subtrees the matching can no
	// longer rescue.
	blocks := make([]block, 0, ph.n)
	var recurse func(k int)
	recurse = func(k int) {
		if *steps >= maxSteps {
			return
		}
		*steps++
		if *steps%1024 == 0 && ctx.Err() != nil {
			return
		}
		// Bound: blocks only accumulate down this path, and at most
		// min(total blocks, #FFs) of the final plan can be covered.
		lbBlocks := len(blocks) + otherBlocks
		lbMatch := lbBlocks
		if nFFs < lbMatch {
			lbMatch = nFFs
		}
		if p.fixedCells+lbBlocks-lbMatch >= bestCells {
			// Even a perfect matching over every block cannot beat
			// the incumbent from here (remaining items only add
			// blocks or keep the count).
			return
		}
		if k == ph.n {
			trial := &Solution{ffUsed: newBitset(len(p.ffSigs))}
			trial.blocks[other] = make([]block, len(s.blocks[other]))
			for bi, ob := range s.blocks[other] {
				trial.blocks[other][bi] = block{
					members: append([]int32(nil), ob.members...),
					mask:    ob.mask.clone(),
					ff:      -1,
				}
			}
			trial.blocks[pi] = make([]block, len(blocks))
			for bi, nb := range blocks {
				trial.blocks[pi][bi] = block{
					members: append([]int32(nil), nb.members...),
					mask:    nb.mask.clone(),
					ff:      -1,
				}
			}
			augmentAll(p, trial)
			if c := trial.cells(p); c < bestCells {
				bestCells = c
				bestSol = trial
			}
			return
		}
		item := int32(k)
		for bi := range blocks {
			if !ph.canJoin(&blocks[bi], item) {
				continue
			}
			blocks[bi].members = append(blocks[bi].members, item)
			blocks[bi].mask.set(item)
			recurse(k + 1)
			blocks[bi].mask.clear(item)
			blocks[bi].members = blocks[bi].members[:len(blocks[bi].members)-1]
		}
		nb := block{members: []int32{item}, mask: newBitset(ph.n), ff: -1}
		nb.mask.set(item)
		blocks = append(blocks, nb)
		recurse(k + 1)
		blocks = blocks[:len(blocks)-1]
	}
	recurse(0)
	return bestSol
}
