package refine

// Structural move primitives shared by local search and annealing. Moves
// keep the solution valid (partition of admitted items into feasible
// blocks, flip-flop bookkeeping consistent) but do not restore matching
// maximality — callers run augmentAll afterwards and compare cells.

// releaseFF returns block (pi, bi)'s flip-flop to the pool.
func (s *Solution) releaseFF(p *Problem, pi, bi int) {
	b := &s.blocks[pi][bi]
	if b.ff < 0 {
		return
	}
	s.ffUsed.clear(p.phases[pi].ffs[b.ff].global)
	b.ff = -1
}

// removeBlock deletes block bi of phase pi (swap-delete; the last block
// takes its index).
func (s *Solution) removeBlock(p *Problem, pi, bi int) {
	s.releaseFF(p, pi, bi)
	last := len(s.blocks[pi]) - 1
	s.blocks[pi][bi] = s.blocks[pi][last]
	s.blocks[pi][last] = block{}
	s.blocks[pi] = s.blocks[pi][:last]
}

// addSingleton opens a new block holding one item and returns its index.
func (s *Solution) addSingleton(p *Problem, pi int, item int32) int {
	ph := p.phases[pi]
	b := block{members: []int32{item}, mask: newBitset(ph.n), ff: -1}
	b.mask.set(item)
	s.blocks[pi] = append(s.blocks[pi], b)
	return len(s.blocks[pi]) - 1
}

// joinBlock adds an item to an existing block; the caller must have
// checked canJoin. If the block's flip-flop no longer covers the grown
// mask, it is released.
func (s *Solution) joinBlock(p *Problem, pi, bi int, item int32) {
	ph := p.phases[pi]
	b := &s.blocks[pi][bi]
	b.members = append(b.members, item)
	b.mask.set(item)
	if b.ff >= 0 && !ph.ffCovers(b.ff, b) {
		s.releaseFF(p, pi, bi)
	}
}

// takeItem removes the member at position mi from block bi. If the block
// empties it is deleted (and the index of the block that replaced it is
// irrelevant to the caller, which holds the extracted item). Returns the
// item.
func (s *Solution) takeItem(p *Problem, pi, bi, mi int) int32 {
	b := &s.blocks[pi][bi]
	item := b.members[mi]
	b.members[mi] = b.members[len(b.members)-1]
	b.members = b.members[:len(b.members)-1]
	b.mask.clear(item)
	if len(b.members) == 0 {
		s.removeBlock(p, pi, bi)
	}
	return item
}

// mergeBlocks fuses block bj into bi (caller checked canMerge). Whichever
// flip-flop still covers the union is kept; the other is released.
func (s *Solution) mergeBlocks(p *Problem, pi, bi, bj int) {
	ph := p.phases[pi]
	a := &s.blocks[pi][bi]
	b := &s.blocks[pi][bj]
	a.members = append(a.members, b.members...)
	for w := range a.mask {
		a.mask[w] |= b.mask[w]
	}
	if a.ff >= 0 && !ph.ffCovers(a.ff, a) {
		s.releaseFF(p, pi, bi)
	}
	if b.ff >= 0 {
		if a.ff < 0 && ph.ffCovers(b.ff, a) {
			a.ff = b.ff
			b.ff = -1 // ownership moved; ffUsed stays set
		} else {
			s.releaseFF(p, pi, bj)
		}
	}
	b.ff = -1
	s.removeBlock(p, pi, bj)
}

// relocate moves the member at position mi of block from into block to
// (caller checked canJoin on to). Block indices may shift when from
// empties; callers should not hold indices across the call.
func (s *Solution) relocate(p *Problem, pi, from, mi, to int) {
	item := s.blocks[pi][from].members[mi]
	// Deleting from may swap the last block into its slot; capture the
	// target block's identity first when it is the one being swapped.
	last := len(s.blocks[pi]) - 1
	willEmpty := len(s.blocks[pi][from].members) == 1
	s.takeItem(p, pi, from, mi)
	if willEmpty && to == last {
		to = from // the target was swapped into the vacated slot
	}
	s.joinBlock(p, pi, to, item)
}
