package refine

import (
	"context"
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"wcm3d/internal/verify"
	"wcm3d/internal/wcm"
)

// planFingerprint serializes an assignment for bit-reproducibility checks.
func planFingerprint(t *testing.T, res *Result) string {
	t.Helper()
	raw, err := json.Marshal(res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestDeterministicAcrossWorkers pins the reproducibility contract: for a
// fixed (seed, step budget, strategy) the refined plan is bit-identical at
// every worker count — parallelism changes latency only. Each strategy is
// pinned alone so portfolio racing cannot blur the comparison.
func TestDeterministicAcrossWorkers(t *testing.T) {
	seeds := []int64{3, 21, 45} // all three flip-flop regimes
	if testing.Short() || raceEnabled {
		seeds = seeds[:1]
	}
	for _, strategy := range []string{"local", "anneal", "bnb", "lns"} {
		for _, seed := range seeds {
			in := tinyDie(t, seed)
			opts := wcm.DefaultOptions()
			want := ""
			wantCells := 0
			for _, workers := range []int{1, 2, 8} {
				wopts := opts
				wopts.Workers = workers
				greedy, err := wcm.Run(in, wopts)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(context.Background(), in, wopts, greedy, Options{
					Seed:       seed,
					MaxSteps:   5000,
					Budget:     30 * time.Second, // generous: steps terminate, not the clock
					Strategies: []string{strategy},
					Workers:    workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				fp := planFingerprint(t, res)
				if want == "" {
					want, wantCells = fp, res.AdditionalCells
					continue
				}
				if fp != want {
					t.Errorf("strategy %s seed %d: plan differs at workers=%d", strategy, seed, workers)
				}
				if res.AdditionalCells != wantCells {
					t.Errorf("strategy %s seed %d: %d cells at workers=%d, want %d",
						strategy, seed, res.AdditionalCells, workers, wantCells)
				}
			}
		}
	}
}

// TestExpiredContextReturnsGreedyUnchanged pins the deadline fast path: an
// already-expired context must hand back the exact greedy assignment —
// same pointer, zero search — and must not block.
func TestExpiredContextReturnsGreedyUnchanged(t *testing.T) {
	in := tinyDie(t, 3)
	opts := wcm.DefaultOptions()
	greedy, err := wcm.Run(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan *Result, 1)
	go func() {
		res, err := Run(ctx, in, opts, greedy, Options{Seed: 3})
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	select {
	case res := <-done:
		if res.Assignment != greedy.Assignment {
			t.Error("expired context: assignment is not the greedy plan's")
		}
		if res.Improved || res.CellsSaved != 0 || len(res.Strategies) != 0 {
			t.Errorf("expired context: refinement ran anyway: %+v", res)
		}
		if res.AdditionalCells != greedy.AdditionalCells {
			t.Errorf("expired context: cells %d, greedy %d", res.AdditionalCells, greedy.AdditionalCells)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("expired context: Run blocked")
	}
}

// TestCancellationLeavesNoGoroutines cancels mid-anneal and checks the
// portfolio's goroutines drain: Run must return promptly and the process
// goroutine count must settle back to where it started.
func TestCancellationLeavesNoGoroutines(t *testing.T) {
	in := tinyDie(t, 45) // abundant-FF regime: the largest tiny search space
	opts := wcm.DefaultOptions()
	greedy, err := wcm.Run(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond) // land mid-search
		cancel()
	}()
	if _, err := Run(ctx, in, opts, greedy, Options{
		Seed:     45,
		MaxSteps: 1 << 30, // only the cancellation can stop the annealer
		Budget:   time.Minute,
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRefinedPlansCertify runs the portfolio across the three flip-flop
// regimes and hands every improved plan to the independent verifier once
// more from the outside — the same contract the arbiter enforces inside.
func TestRefinedPlansCertify(t *testing.T) {
	seeds := []int64{3, 9, 21, 33, 45, 57}
	if testing.Short() || raceEnabled {
		seeds = seeds[:2]
	}
	improved := 0
	for _, seed := range seeds {
		in := tinyDie(t, seed)
		opts := wcm.DefaultOptions()
		greedy, err := wcm.Run(in, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), in, opts, greedy, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.AdditionalCells > greedy.AdditionalCells {
			t.Errorf("seed %d: refinement made the plan worse", seed)
		}
		if res.Improved {
			improved++
		}
		eff := opts.WithDefaults()
		vres, err := verify.Plan(in, res.Assignment, verify.Options{Thresholds: &eff})
		if err != nil {
			t.Fatalf("seed %d: verifier could not run: %v", seed, err)
		}
		if !vres.OK() {
			t.Errorf("seed %d: refined plan rejected by the verifier:", seed)
			for _, v := range vres.Violations {
				t.Errorf("  %s", v)
			}
		}
	}
	t.Logf("%d/%d dies improved", improved, len(seeds))
}
