package refine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"wcm3d/internal/netlist"
	"wcm3d/internal/wcm"
)

// evalProblem builds a Problem + greedy start the way Run does (tiny dies
// carry no RefreshTiming hook, so the second phase prices against base
// timing, exactly as in the corpus tests).
func evalProblem(t testing.TB, seed int64) (*Problem, *Solution) {
	t.Helper()
	in := tinyDie(t, seed)
	opts := wcm.DefaultOptions()
	greedy, err := wcm.Run(in, opts)
	if err != nil {
		t.Fatalf("seed %d: heuristic: %v", seed, err)
	}
	eff := opts.WithDefaults()
	model, err := wcm.BuildShareModel(in, eff, nil)
	if err != nil {
		t.Fatalf("seed %d: share model: %v", seed, err)
	}
	p, err := newProblem(in, eff, model, greedy)
	if err != nil {
		t.Fatalf("seed %d: problem: %v", seed, err)
	}
	s, err := decodeGreedy(p, greedy)
	if err != nil {
		t.Fatalf("seed %d: decode: %v", seed, err)
	}
	return p, s
}

// validate cross-checks the evaluator's incremental bookkeeping (owner
// index, ffUsed bits, matched/nblocks counters) against the solution it
// wraps.
func (e *evaluator) validate() error {
	nblocks, matched := 0, 0
	seen := make([]bool, len(e.p.ffSigs))
	for pi := range e.s.blocks {
		housed := 0
		for _, bi := range e.itemBlock[pi] {
			if bi >= 0 {
				housed++
			}
		}
		members := 0
		for bi := range e.s.blocks[pi] {
			members += len(e.s.blocks[pi][bi].members)
		}
		if housed != members {
			return fmt.Errorf("phase %d: item index houses %d items, blocks hold %d", pi, housed, members)
		}
		for bi := range e.s.blocks[pi] {
			nblocks++
			b := &e.s.blocks[pi][bi]
			if len(b.members) == 0 {
				return fmt.Errorf("phase %d block %d is empty", pi, bi)
			}
			for _, m := range b.members {
				if e.itemBlock[pi][m] != int32(bi) {
					return fmt.Errorf("phase %d item %d: index says block %d, found in block %d",
						pi, m, e.itemBlock[pi][m], bi)
				}
			}
			if b.ff < 0 {
				continue
			}
			matched++
			ph := e.p.phases[pi]
			if !ph.ffCovers(b.ff, b) {
				return fmt.Errorf("phase %d block %d holds non-covering ff %d", pi, bi, b.ff)
			}
			g := ph.ffs[b.ff].global
			if seen[g] {
				return fmt.Errorf("global ff %d assigned twice", g)
			}
			seen[g] = true
			if !e.s.ffUsed.has(int32(g)) {
				return fmt.Errorf("global ff %d assigned but not marked used", g)
			}
			if e.ownerPhase[g] != int8(pi) || e.ownerBlock[g] != int32(bi) {
				return fmt.Errorf("global ff %d owner index says (%d,%d), block is (%d,%d)",
					g, e.ownerPhase[g], e.ownerBlock[g], pi, bi)
			}
		}
	}
	for g := range seen {
		if !seen[g] {
			if e.s.ffUsed.has(int32(g)) {
				return fmt.Errorf("global ff %d marked used but unassigned", g)
			}
			if e.ownerBlock[g] >= 0 {
				return fmt.Errorf("global ff %d has stale owner (%d,%d)",
					g, e.ownerPhase[g], e.ownerBlock[g])
			}
		}
	}
	if nblocks != e.nblocks {
		return fmt.Errorf("nblocks counter %d, solution has %d", e.nblocks, nblocks)
	}
	if matched != e.matched {
		return fmt.Errorf("matched counter %d, solution has %d", e.matched, matched)
	}
	return nil
}

// TestRepairShrunkThroughPath is the regression for a repair hole the
// runtime crossCheck audit caught on b12/1: when a block's mask shrinks,
// an augmenting path may pass *through* it — head: an exposed block
// alternates to the block's freed flip-flop; tail: the block alternates
// to a free flip-flop via a newly feasible edge. The forward search used
// to re-take the freed flip-flop trivially (it lists first in the item's
// flip-flop order), which starved the reverse search of the head and left
// the matching one short of maximum.
//
// Hand-built instance (phase 0; items a=0, b=1, d=2, c=3):
//
//	blocks  V={a,b} matched g, T={d} matched fT, B0={c} exposed
//	ffs     g covers {a,b,c}, fT covers {d,b}, fNew covers {a} only
//
// Relocating b from V into T shrinks V to {a}, making fNew–V feasible.
// The unique maximum matching of the new graph is fNew–V, g–B0, fT–T
// (3 covered); greedily re-taking g for V strands B0 at 2.
func TestRepairShrunkThroughPath(t *testing.T) {
	const n = 4 // a=0 b=1 d=2 c=3
	ph := &phaseIndex{n: n, maxLen: n}
	ph.adj = make([]bitset, n)
	for i := range ph.adj {
		ph.adj[i] = newBitset(n)
	}
	pair := func(i, j int32) { ph.adj[i].set(j); ph.adj[j].set(i) }
	pair(0, 1) // a–b: V is a valid block
	pair(1, 2) // b–d: T accepts b
	ffAdj := func(items ...int32) bitset {
		m := newBitset(n)
		for _, i := range items {
			m.set(i)
		}
		return m
	}
	// g must precede fNew in a's flip-flop order for the greedy re-take
	// to trigger (ffs index order is itemFFs order).
	ph.ffs = []ffIndex{
		{global: 0, adj: ffAdj(0, 1, 3), items: []int32{0, 1, 3}}, // g
		{global: 1, adj: ffAdj(1, 2), items: []int32{1, 2}},       // fT
		{global: 2, adj: ffAdj(0), items: []int32{0}},             // fNew
	}
	ph.itemFFs = make([][]int32, n)
	for fi := range ph.ffs {
		for i := int32(0); i < n; i++ {
			if ph.ffs[fi].adj.has(i) {
				ph.itemFFs[i] = append(ph.itemFFs[i], int32(fi))
			}
		}
	}
	p := &Problem{
		phases:  [2]*phaseIndex{ph, {n: 0, maxLen: 1}},
		ffSigs:  make([]netlist.SignalID, 3),
		ffHomes: [][]ffHome{{{pi: 0, fi: 0}}, {{pi: 0, fi: 1}}, {{pi: 0, fi: 2}}},
	}
	s := &Solution{ffUsed: newBitset(3)}
	addBlock := func(ff int32, items ...int32) {
		b := block{mask: newBitset(n), ff: ff}
		for _, i := range items {
			b.members = append(b.members, i)
			b.mask.set(i)
		}
		s.blocks[0] = append(s.blocks[0], b)
	}
	addBlock(0, 0, 1) // V = {a,b}, matched g
	addBlock(1, 2)    // T = {d},   matched fT
	addBlock(-1, 3)   // B0 = {c},  exposed
	s.ffUsed.set(0)
	s.ffUsed.set(1)

	e := newEvaluator(p, s)
	if got, want := e.cells(), 1; got != want {
		t.Fatalf("initial matching: %d cells, want %d (B0 exposed)", got, want)
	}
	e.relocate(0, 0, 1, 1) // move b from V into T
	if err := e.validate(); err != nil {
		t.Fatalf("after relocate: %v", err)
	}
	if got, want := e.cells(), referenceCells(p, s); got != want {
		t.Fatalf("through-path repair: incremental %d cells, reference rematch %d", got, want)
	}
	if got := e.cells(); got != 0 {
		t.Fatalf("through-path repair: %d cells, want 0 (fNew–V, g–B0, fT–T)", got)
	}
}

// TestEvaluatorMatchesReferenceRematch is the delta-cost property test: on
// 1000 random applied moves per flip-flop profile (scarce / matched /
// abundant — seed%3 selects the regime), the evaluator's incrementally
// repaired cost must equal an independent from-scratch rematch, and a
// reverted move must restore the solution bit for bit.
func TestEvaluatorMatchesReferenceRematch(t *testing.T) {
	movesPerProfile := 1000
	if testing.Short() || raceEnabled {
		movesPerProfile = 200
	}
	// One known-gap corpus seed per flip-flop regime (seed%3 = 0,1,2):
	// gap dies are guaranteed to hold mergeable structure, so the random
	// walk never runs dry of feasible moves.
	for _, seed := range []int64{24, 25, 20} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			p, s := evalProblem(t, seed)
			e := newEvaluator(p, s)
			if err := e.validate(); err != nil {
				t.Fatalf("after init: %v", err)
			}
			if got, want := e.cells(), referenceCells(p, s); got != want {
				t.Fatalf("initial maximize: %d cells, reference %d", got, want)
			}
			rng := rand.New(rand.NewSource(seed))
			applied := 0
			for trial := 0; applied < movesPerProfile; trial++ {
				if trial > movesPerProfile*50 {
					t.Fatalf("only %d feasible moves in %d trials", applied, trial)
				}
				pi := rng.Intn(2)
				ph := p.phases[pi]
				nb := len(s.blocks[pi])
				if nb == 0 {
					continue
				}
				snap := s.clone()
				snapCells := e.cells()
				m := e.mark()
				var moved bool
				switch rng.Intn(4) {
				case 0: // merge
					if nb < 2 {
						continue
					}
					bi, bj := rng.Intn(nb), rng.Intn(nb-1)
					if bj >= bi {
						bj++
					}
					if !ph.canMerge(&s.blocks[pi][bi], &s.blocks[pi][bj]) {
						continue
					}
					e.merge(pi, bi, bj)
					moved = true
				case 1: // relocate
					if nb < 2 {
						continue
					}
					bi := rng.Intn(nb)
					mi := rng.Intn(len(s.blocks[pi][bi].members))
					to := rng.Intn(nb - 1)
					if to >= bi {
						to++
					}
					if !ph.canJoin(&s.blocks[pi][to], s.blocks[pi][bi].members[mi]) {
						continue
					}
					e.relocate(pi, bi, mi, to)
					moved = true
				case 2: // split one member out
					bi := rng.Intn(nb)
					if len(s.blocks[pi][bi].members) < 2 {
						continue
					}
					e.splitOut(pi, bi, rng.Intn(len(s.blocks[pi][bi].members)))
					moved = true
				default: // dissolve a whole block (the LNS destroy step)
					bi := rng.Intn(nb)
					if len(s.blocks[pi][bi].members) < 2 {
						continue
					}
					e.dissolve(pi, bi)
					moved = true
				}
				if !moved {
					continue
				}
				applied++
				if got, want := e.cells(), referenceCells(p, s); got != want {
					t.Fatalf("move %d: incremental cost %d, reference rematch %d", applied, got, want)
				}
				if err := e.validate(); err != nil {
					t.Fatalf("move %d: %v", applied, err)
				}
				if rng.Intn(2) == 0 {
					e.revert(m)
					if e.cells() != snapCells {
						t.Fatalf("move %d: revert cost %d, was %d", applied, e.cells(), snapCells)
					}
					if !reflect.DeepEqual(s, snap) {
						t.Fatalf("move %d: revert did not restore the solution bit-exactly", applied)
					}
					if err := e.validate(); err != nil {
						t.Fatalf("move %d after revert: %v", applied, err)
					}
				} else {
					e.commit()
				}
			}
		})
	}
}
