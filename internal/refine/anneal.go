package refine

import (
	"context"
	"math"
	"math/rand"
)

// annealer is the stochastic strategy: Metropolis acceptance over the same
// move set as local search (merge, relocate, split one member out), with a
// geometric cooling schedule. The walk is driven by a seeded math/rand
// source, so a fixed (seed, step budget) replays the exact same trajectory
// — the wall-clock deadline can only truncate it.
type annealer struct{}

func (annealer) Name() string { return "anneal" }

// Cooling endpoints: moves cost at most a few cells, so temperatures are
// calibrated to unit deltas — ~37% uphill acceptance at the start,
// effectively greedy at the end.
const (
	annealTStart = 1.0
	annealTEnd   = 0.02
)

func (annealer) Refine(ctx context.Context, p *Problem, start *Solution, cfg Config, emit func(*Solution) bool) (int, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := start.clone()
	augmentAll(p, s)
	cur := s.cells(p)
	best := start.cells(p)
	if cur < best {
		best = cur
		emit(s)
	}
	alpha := math.Exp(math.Log(annealTEnd/annealTStart) / float64(max(cfg.MaxSteps, 1)))
	temp := annealTStart
	steps := 0
	for ; steps < cfg.MaxSteps; steps++ {
		if steps%128 == 0 && ctx.Err() != nil {
			break
		}
		temp *= alpha
		pi := rng.Intn(2)
		ph := p.phases[pi]
		nb := len(s.blocks[pi])
		if nb == 0 {
			continue
		}
		trial := s.clone()
		switch rng.Intn(3) {
		case 0: // merge two random blocks
			if nb < 2 {
				continue
			}
			bi := rng.Intn(nb)
			bj := rng.Intn(nb - 1)
			if bj >= bi {
				bj++
			}
			if !ph.canMerge(&trial.blocks[pi][bi], &trial.blocks[pi][bj]) {
				continue
			}
			trial.mergeBlocks(p, pi, bi, bj)
		case 1: // relocate a random item
			if nb < 2 {
				continue
			}
			bi := rng.Intn(nb)
			mi := rng.Intn(len(trial.blocks[pi][bi].members))
			to := rng.Intn(nb - 1)
			if to >= bi {
				to++
			}
			if !ph.canJoin(&trial.blocks[pi][to], trial.blocks[pi][bi].members[mi]) {
				continue
			}
			trial.relocate(p, pi, bi, mi, to)
		default: // split a random member out into a singleton
			bi := rng.Intn(nb)
			if len(trial.blocks[pi][bi].members) < 2 {
				continue
			}
			mi := rng.Intn(len(trial.blocks[pi][bi].members))
			item := trial.takeItem(p, pi, bi, mi)
			trial.addSingleton(p, pi, item)
		}
		augmentAll(p, trial)
		c := trial.cells(p)
		d := float64(c - cur)
		if d <= 0 || rng.Float64() < math.Exp(-d/temp) {
			s, cur = trial, c
			if cur < best {
				best = cur
				emit(s)
			}
		}
	}
	return steps, ctx.Err()
}
