package refine

import (
	"context"
	"math"
	"math/rand"
)

// annealer is the stochastic strategy: Metropolis acceptance over the same
// move set as local search (merge, relocate, split one member out), scored
// by the incremental evaluator — accepted moves commit the journal,
// rejected ones revert through it. The restart schedule splits the step
// budget into reheat segments: each segment restarts from the strategy's
// own best solution with a fresh RNG stream (Seed + segment·stride) and a
// reheated temperature, so a trajectory that wandered off cannot strand
// the rest of the budget. A fixed (seed, step budget) replays the exact
// same walk — the wall-clock deadline can only truncate it.
type annealer struct{}

func (annealer) Name() string { return "anneal" }

// Cooling endpoints: moves cost at most a few cells, so temperatures are
// calibrated to unit deltas — ~37% uphill acceptance at the start of a
// segment, effectively greedy at its end.
const (
	annealTStart = 1.0
	annealTEnd   = 0.02
	// annealSegments is the default reheat count when Options.Restarts
	// is zero.
	annealSegments = 4
)

func (annealer) Refine(ctx context.Context, p *Problem, start *Solution, cfg Config, emit func(*Solution) bool) (int, error) {
	segments := cfg.Restarts
	if segments <= 0 {
		segments = annealSegments
	}
	segSteps := cfg.MaxSteps / segments
	if segSteps < 1 {
		segSteps = cfg.MaxSteps
		segments = 1
	}
	best := start.cells(p)
	bestSnap := start
	steps := 0
	for seg := 0; seg < segments && steps < cfg.MaxSteps && ctx.Err() == nil; seg++ {
		e := newEvaluator(p, bestSnap.clone())
		e.crossCheck = cfg.CrossCheck
		if e.cells() < best {
			// Maximizing the matching alone already beat the snapshot.
			best = e.cells()
			bestSnap = e.s.clone()
			emit(e.s)
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(seg)*restartSeedStride))
		cur := e.cells()
		alpha := math.Exp(math.Log(annealTEnd/annealTStart) / float64(segSteps))
		temp := annealTStart
		for t := 0; t < segSteps && steps < cfg.MaxSteps; t, steps = t+1, steps+1 {
			if steps%128 == 0 && ctx.Err() != nil {
				break
			}
			temp *= alpha
			m := e.mark()
			if !applyRandomMove(p, e, rng) {
				continue
			}
			c := e.cells()
			d := float64(c - cur)
			if d <= 0 || rng.Float64() < math.Exp(-d/temp) {
				e.commit()
				cur = c
				if c < best {
					best = c
					bestSnap = e.s.clone()
					emit(e.s)
				}
			} else {
				e.revert(m)
			}
		}
	}
	return steps, ctx.Err()
}

// applyRandomMove applies one random feasible move (merge, relocate, or
// split-out) to the evaluator in place and reports whether a move was
// applied; an infeasible draw leaves the solution untouched. Shared by the
// annealer's walk, local search's restart perturbation, and the LNS
// destroy picker's fallbacks.
func applyRandomMove(p *Problem, e *evaluator, rng *rand.Rand) bool {
	pi := rng.Intn(2)
	ph := p.phases[pi]
	nb := len(e.s.blocks[pi])
	if nb == 0 {
		return false
	}
	switch rng.Intn(3) {
	case 0: // merge two random blocks
		if nb < 2 {
			return false
		}
		bi := rng.Intn(nb)
		bj := rng.Intn(nb - 1)
		if bj >= bi {
			bj++
		}
		if !ph.canMerge(&e.s.blocks[pi][bi], &e.s.blocks[pi][bj]) {
			return false
		}
		e.merge(pi, bi, bj)
	case 1: // relocate a random item
		if nb < 2 {
			return false
		}
		bi := rng.Intn(nb)
		mi := rng.Intn(len(e.s.blocks[pi][bi].members))
		to := rng.Intn(nb - 1)
		if to >= bi {
			to++
		}
		if !ph.canJoin(&e.s.blocks[pi][to], e.s.blocks[pi][bi].members[mi]) {
			return false
		}
		e.relocate(pi, bi, mi, to)
	default: // split a random member out into a singleton
		bi := rng.Intn(nb)
		if len(e.s.blocks[pi][bi].members) < 2 {
			return false
		}
		e.splitOut(pi, bi, rng.Intn(len(e.s.blocks[pi][bi].members)))
	}
	return true
}
