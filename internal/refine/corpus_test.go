package refine

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"wcm3d/internal/verify"
	"wcm3d/internal/wcm"
)

var updateGapCorpus = flag.Bool("update-gap-corpus", false,
	"regenerate internal/refine/testdata/gaps/corpus.json by rescanning the tiny-die seed space")

const gapCorpusPath = "testdata/gaps/corpus.json"

// gapCorpus is the versioned regression corpus: every tiny-die seed where
// PR 4's exhaustive oracle (replay mode) needed strictly fewer cells than
// the greedy heuristic, with the cell counts and whether the portfolio
// closed the gap when the corpus was generated.
type gapCorpus struct {
	// Generator documents the seed→die recipe (see tinyDie in
	// die_test.go); Seeds is the scanned range.
	Generator string `json:"generator"`
	Seeds     int    `json:"seeds"`
	// MinClosed is the documented floor: a corpus run must close at
	// least this many gaps or the regression test fails.
	MinClosed int           `json:"min_closed"`
	Instances []gapInstance `json:"instances"`
}

type gapInstance struct {
	Seed        int64 `json:"seed"`
	GreedyCells int   `json:"greedy_cells"`
	OracleCells int   `json:"oracle_cells"`
	// Closed records whether the portfolio reached the oracle's cell
	// count when the corpus was generated; a closed instance must never
	// regress.
	Closed bool `json:"closed"`
}

// refineTiny runs the portfolio on one corpus die with the default budget
// and returns the refined cell count.
func refineTiny(t *testing.T, seed int64) (greedyCells, refinedCells int) {
	t.Helper()
	in := tinyDie(t, seed)
	opts := wcm.DefaultOptions()
	greedy, err := wcm.Run(in, opts)
	if err != nil {
		t.Fatalf("seed %d: heuristic: %v", seed, err)
	}
	res, err := Run(context.Background(), in, opts, greedy, Options{Seed: seed})
	if err != nil {
		t.Fatalf("seed %d: refine: %v", seed, err)
	}
	if res.AdditionalCells > greedy.AdditionalCells {
		t.Fatalf("seed %d: refinement made the plan worse: %d > %d cells",
			seed, res.AdditionalCells, greedy.AdditionalCells)
	}
	return greedy.AdditionalCells, res.AdditionalCells
}

// TestGapCorpus replays the committed oracle-gap corpus: the portfolio must
// close at least the documented minimum of gaps, and must never regress an
// instance recorded as closed. With -update-gap-corpus it instead rescans
// the seed space and rewrites the corpus file.
func TestGapCorpus(t *testing.T) {
	if *updateGapCorpus {
		regenerateGapCorpus(t)
		return
	}
	raw, err := os.ReadFile(gapCorpusPath)
	if err != nil {
		t.Fatalf("gap corpus missing (run with -update-gap-corpus to build it): %v", err)
	}
	var corpus gapCorpus
	if err := json.Unmarshal(raw, &corpus); err != nil {
		t.Fatalf("gap corpus unreadable: %v", err)
	}
	if len(corpus.Instances) == 0 {
		t.Fatal("gap corpus is empty")
	}
	instances := corpus.Instances
	stride := 1
	if testing.Short() || raceEnabled {
		stride = 5 // subsample: keep the closed-never-regresses guarantee cheap
	}
	closed, checked := 0, 0
	for i := 0; i < len(instances); i += stride {
		inst := instances[i]
		checked++
		greedyCells, refinedCells := refineTiny(t, inst.Seed)
		if greedyCells != inst.GreedyCells {
			t.Errorf("seed %d: greedy now needs %d cells, corpus recorded %d — regenerate the corpus",
				inst.Seed, greedyCells, inst.GreedyCells)
			continue
		}
		if refinedCells <= inst.OracleCells {
			closed++
		} else if inst.Closed {
			t.Errorf("seed %d: closed gap regressed: refined %d cells, oracle %d",
				inst.Seed, refinedCells, inst.OracleCells)
		}
		// Per-instance improvement line: CI's refine-smoke job keeps the
		// -v output as its improvement-table artifact.
		t.Logf("seed %d: greedy %d -> refined %d (oracle %d)",
			inst.Seed, greedyCells, refinedCells, inst.OracleCells)
	}
	t.Logf("gap corpus: %d/%d checked instances closed (full corpus floor %d/%d)",
		closed, checked, corpus.MinClosed, len(instances))
	if stride == 1 && closed < corpus.MinClosed {
		t.Errorf("portfolio closed %d/%d gaps, documented floor is %d",
			closed, len(instances), corpus.MinClosed)
	}
}

// regenerateGapCorpus rescans seeds 1..200 (the oracle acceptance range),
// records every greedy-vs-oracle gap, runs the portfolio on each, and
// rewrites the corpus.
func regenerateGapCorpus(t *testing.T) {
	const seeds = 200
	corpus := gapCorpus{
		Generator: "tinyDie v1: netgen.Random{Gates:120+s%97, FFs:regime(s%3), PIs:4, POs:2, In:2+s%5, Out:2+(s/7)%5, Seed:s}; place.Place{Seed:s}; sta 1e5ps; cells.Default45nm; wcm.DefaultOptions; RefreshTiming nil",
		Seeds:     seeds,
	}
	closed := 0
	for seed := int64(1); seed <= seeds; seed++ {
		in := tinyDie(t, seed)
		opts := wcm.DefaultOptions()
		greedy, err := wcm.Run(in, opts)
		if err != nil {
			t.Fatalf("seed %d: heuristic: %v", seed, err)
		}
		replay, err := verify.Oracle(in, opts, verify.OracleOptions{ReplayConsumption: firstPhaseReuse(greedy)})
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		if replay.AdditionalCells >= greedy.AdditionalCells {
			continue // no gap
		}
		res, err := Run(context.Background(), in, opts, greedy, Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: refine: %v", seed, err)
		}
		inst := gapInstance{
			Seed:        seed,
			GreedyCells: greedy.AdditionalCells,
			OracleCells: replay.AdditionalCells,
			Closed:      res.AdditionalCells <= replay.AdditionalCells,
		}
		if inst.Closed {
			closed++
		}
		corpus.Instances = append(corpus.Instances, inst)
		t.Logf("seed %d: greedy %d, oracle %d, refined %d (%s)",
			seed, inst.GreedyCells, inst.OracleCells, res.AdditionalCells, res.Strategy)
	}
	corpus.MinClosed = closed
	raw, err := json.MarshalIndent(&corpus, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(gapCorpusPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(gapCorpusPath, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("gap corpus regenerated: %d gaps, %d closed", len(corpus.Instances), closed)
}
