package refine

import (
	"context"
	"math/bits"
	"math/rand"
	"sort"
)

// lns is the large-neighborhood strategy: destroy/repair. Each iteration
// evicts a cluster of blocks — a random seed block plus its closest
// partners by shared flip-flop cover overlap — back into singletons, then
// greedily repacks the phase with non-worsening first-fit merges. The
// iteration is kept only when it strictly lowers the cell count, so the
// walk is a sequence of record-to-record improvements over structures the
// one-move neighborhoods of local search and annealing cannot reach in a
// single step. A fixed (seed, step budget) replays the same trajectory;
// after lnsFruitlessCutoff consecutive unkept iterations the neighborhood
// is considered exhausted and the strategy stops.
type lns struct{}

func (lns) Name() string { return "lns" }

const (
	// Destroy sizes: how many blocks one iteration dissolves.
	lnsMinDestroy = 2
	lnsMaxDestroy = 5
	// lnsFruitlessCutoff bounds consecutive unkept iterations.
	lnsFruitlessCutoff = 400
)

func (lns) Refine(ctx context.Context, p *Problem, start *Solution, cfg Config, emit func(*Solution) bool) (int, error) {
	e := newEvaluator(p, start.clone())
	e.crossCheck = cfg.CrossCheck
	incumbent := start.cells(p)
	if e.cells() < incumbent {
		incumbent = e.cells()
		emit(e.s)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cur := e.cells()
	steps, fail := 0, 0
	for steps < cfg.MaxSteps && fail < lnsFruitlessCutoff {
		if steps%32 == 0 && ctx.Err() != nil {
			break
		}
		steps++
		pi := rng.Intn(2)
		if len(e.s.blocks[pi]) < 2 {
			fail++
			continue
		}
		m := e.mark()
		size := lnsMinDestroy + rng.Intn(lnsMaxDestroy-lnsMinDestroy+1)
		cluster := pickCluster(p, e.s, pi, size, rng)
		for _, bi := range cluster {
			// dissolve only appends singleton blocks, so the remaining
			// cluster indices stay valid.
			e.dissolve(pi, bi)
		}
		repack(p, e, pi)
		if e.cells() < cur {
			cur = e.cells()
			e.commit()
			fail = 0
			if cur < incumbent {
				incumbent = cur
				emit(e.s)
			}
		} else {
			e.revert(m)
			fail++
		}
	}
	return steps, ctx.Err()
}

// pickCluster chooses the blocks one destroy step evicts: a random seed
// block plus its size−1 closest partners by shared flip-flop cover
// overlap, ties broken by a seeded shuffle so zero-overlap phases still
// explore varied clusters.
func pickCluster(p *Problem, s *Solution, pi, size int, rng *rand.Rand) []int {
	ph := p.phases[pi]
	blocks := s.blocks[pi]
	nb := len(blocks)
	nw := (len(ph.ffs) + 63) / 64
	coverOf := func(bi int) bitset {
		row := make(bitset, nw)
		b := &blocks[bi]
		for _, fi := range ph.itemFFs[b.members[0]] {
			if ph.ffCovers(fi, b) {
				row.set(fi)
			}
		}
		return row
	}
	seed := rng.Intn(nb)
	seedCover := coverOf(seed)
	type scored struct{ bi, overlap int }
	order := rng.Perm(nb)
	cand := make([]scored, 0, nb-1)
	for _, bi := range order {
		if bi == seed {
			continue
		}
		row := coverOf(bi)
		ov := 0
		for w := range row {
			ov += bits.OnesCount64(row[w] & seedCover[w])
		}
		cand = append(cand, scored{bi: bi, overlap: ov})
	}
	sort.SliceStable(cand, func(i, j int) bool { return cand[i].overlap > cand[j].overlap })
	cluster := []int{seed}
	for i := 0; i < len(cand) && len(cluster) < size; i++ {
		cluster = append(cluster, cand[i].bi)
	}
	return cluster
}

// repack greedily re-absorbs the phase's singletons: first-fit merges in
// index order, accepting any merge that does not increase the cell count
// (a neutral merge trades a reused flip-flop for a removed block, which
// often unlocks a strictly improving merge later in the pass).
func repack(p *Problem, e *evaluator, pi int) {
	ph := p.phases[pi]
	for again := true; again; {
		again = false
		for bi := 0; bi < len(e.s.blocks[pi]); bi++ {
			if len(e.s.blocks[pi][bi].members) != 1 {
				continue
			}
			for to := 0; to < len(e.s.blocks[pi]); to++ {
				if to == bi || !ph.canMerge(&e.s.blocks[pi][to], &e.s.blocks[pi][bi]) {
					continue
				}
				before := e.cells()
				m := e.mark()
				e.merge(pi, to, bi)
				if e.cells() <= before {
					again = true
					bi--
					break
				}
				e.revert(m)
			}
		}
	}
}
