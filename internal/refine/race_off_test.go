//go:build !race

package refine

const raceEnabled = false
