// Package refine is the anytime improvement layer of the WCM flow: it takes
// the greedy heuristic's wrapper plan (paper Algorithm 2) plus the die's
// timing model and searches for a plan with fewer inserted wrapper cells
// under a hard wall-clock deadline. PR 4's exhaustive oracle proved the
// greedy partitioner optimal on only 135 of 200 tiny dies — every gap a
// clique merged so large that no disjoint-cone flip-flop could attach; this
// package exists to close those gaps on real dies, where the oracle cannot
// run.
//
// Four strategies implement one Refiner interface and race concurrently:
//
//   - local:  deterministic first-improvement descent — candidate-list
//     block merges, single-item relocations, and split-and-remerge kicks,
//     with a seeded perturb-and-descend restart schedule.
//   - anneal: simulated annealing over the same move set, driven by a
//     seeded RNG (bit-reproducible for a fixed seed and step budget),
//     reheated from its own best in restart segments.
//   - bnb:    bounded branch-and-bound — per-phase exhaustive
//     re-partitioning with the greedy cost as incumbent, for phases small
//     enough to enumerate.
//   - lns:    large-neighborhood destroy/repair — evict a cluster of
//     blocks, greedily repack, keep strict improvements.
//
// All but bnb score moves with the incremental evaluator (eval.go): moves
// apply in place, targeted augmenting paths repair the flip-flop matching,
// and a journal reverts rejected trials — no per-trial clone or full
// rematch, which is what lets sweeps finish on b20-class dies inside the
// wall budget.
//
// The optimizer never self-certifies: every candidate that beats the
// incumbent is encoded as a scan.Assignment and must pass the independent
// referee internal/verify.Plan before it may become the new best. At the
// deadline the best verified plan wins; if nothing verified better, the
// greedy plan is returned unchanged — refinement can never make a plan
// worse. See docs/SOLVERS.md.
package refine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"wcm3d/internal/par"
	"wcm3d/internal/scan"
	"wcm3d/internal/sta"
	"wcm3d/internal/verify"
	"wcm3d/internal/wcm"
)

// DefaultBudget is the wall-clock deadline when Options.Budget is zero.
const DefaultBudget = 2 * time.Second

// defaultAnnealSteps is the annealer's step budget when Options.MaxSteps
// is zero — sized so tiny and mid-size dies finish the schedule well inside
// DefaultBudget.
const defaultAnnealSteps = 60000

// Options configures a refinement run.
type Options struct {
	// Budget bounds the wall time; zero means DefaultBudget. The
	// caller's context deadline always caps it regardless.
	Budget time.Duration
	// Seed drives the annealer's RNG. Plans are bit-reproducible for a
	// fixed (seed, step budget, strategy); the wall deadline can only
	// truncate a trajectory, never reorder it.
	Seed int64
	// MaxSteps bounds each strategy's search steps; zero picks
	// per-strategy defaults. With a generous Budget, fixed MaxSteps make
	// every strategy's outcome deterministic.
	MaxSteps int
	// Strategies selects which solvers race ("local", "anneal", "bnb",
	// "lns"); nil or empty runs all of them. Duplicate names collapse to
	// the first occurrence — two copies of a strategy would replay the
	// same deterministic trajectory on the same RNG stream.
	Strategies []string
	// Workers bounds the portfolio's concurrency; 0 means one worker per
	// strategy (capped by GOMAXPROCS via internal/par).
	Workers int
	// CandidateK bounds each block's merge-partner candidate list in the
	// scalable sweeps (local search, LNS cluster picking); 0 means
	// defaultCandidateK. Larger k explores more pairs per round, smaller
	// k finishes rounds faster on big dies.
	CandidateK int
	// Restarts caps the restart schedule: perturb-and-descend rounds for
	// local search, reheat segments for the annealer. 0 picks
	// per-strategy defaults (local restarts until two fruitless rounds,
	// anneal splits its budget into annealSegments segments).
	Restarts int
	// CrossCheck re-scores every applied incremental move against a
	// from-scratch rematch and panics on divergence — the debug mode for
	// the incremental evaluator; orders of magnitude slower.
	CrossCheck bool
}

// Config is the per-strategy slice of Options a Refiner receives.
type Config struct {
	// Seed drives any randomized decisions.
	Seed int64
	// MaxSteps bounds the strategy's search steps.
	MaxSteps int
	// CandidateK bounds merge-partner candidate lists (see Options).
	CandidateK int
	// Restarts caps the restart schedule (see Options).
	Restarts int
	// CrossCheck enables the evaluator's full-rematch debug audit.
	CrossCheck bool
}

// Refiner is one improvement strategy. Refine searches from start and
// calls emit with every solution that improves on its local best; emit
// reports whether the candidate was admitted (verified and better than the
// portfolio's global best), which strategies may use to bias their search
// but are free to ignore. Refine returns the steps actually executed and
// the context's error if the deadline cut the search short.
type Refiner interface {
	Name() string
	Refine(ctx context.Context, p *Problem, start *Solution, cfg Config, emit func(*Solution) bool) (steps int, err error)
}

// StrategyOutcome reports one strategy's run.
type StrategyOutcome struct {
	// Name identifies the strategy.
	Name string `json:"name"`
	// Steps counts search steps executed before return.
	Steps int `json:"steps"`
	// Proposed counts candidates the strategy emitted; Admitted counts
	// those that passed verification and improved the global best;
	// Rejected counts candidates the referee refused; Stale counts
	// candidates that verified but lost the admission race to an
	// equal-or-better plan another strategy certified first (they are
	// deliberately not Admitted, so an improvement is counted once).
	Proposed int `json:"proposed"`
	Admitted int `json:"admitted"`
	Rejected int `json:"rejected"`
	Stale    int `json:"stale,omitempty"`
	// Deadline reports whether the wall clock cut the strategy short.
	Deadline bool `json:"deadline,omitempty"`
	// Err carries a strategy failure (the portfolio survives it).
	Err string `json:"err,omitempty"`
}

// Result is the outcome of a refinement run. Assignment is always a usable
// plan: the best verified improvement, or the greedy plan unchanged.
type Result struct {
	// Assignment is the winning plan.
	Assignment *scan.Assignment
	// AdditionalCells and ReusedFFs describe the winning plan.
	AdditionalCells int
	ReusedFFs       int
	// GreedyCells is the incumbent cost refinement started from.
	GreedyCells int
	// Improved reports whether a verified better plan was found;
	// CellsSaved is GreedyCells − AdditionalCells.
	Improved   bool
	CellsSaved int
	// Strategy names the solver that produced the winning plan ("" when
	// the greedy plan stood).
	Strategy string
	// Strategies reports every solver that ran.
	Strategies []StrategyOutcome
}

// strategyRegistry maps strategy names to their implementations. Tests may
// register temporary strategies (and must remove them again).
var strategyRegistry = map[string]Refiner{
	"local":  localSearch{},
	"anneal": annealer{},
	"bnb":    branchBound{},
	"lns":    lns{},
}

// defaultStrategyOrder fixes the portfolio's deterministic launch order
// when Options.Strategies is empty.
var defaultStrategyOrder = []string{"local", "anneal", "bnb", "lns"}

// strategiesFor resolves the configured strategy names. Unknown names are
// an error naming the known set; duplicates collapse to the first
// occurrence — two copies of the same strategy would race identical
// deterministic trajectories over the same RNG seed stream and burn a
// worker for nothing.
func strategiesFor(names []string) ([]Refiner, error) {
	if len(names) == 0 {
		names = defaultStrategyOrder
	}
	seen := make(map[string]bool, len(names))
	var out []Refiner
	for _, name := range names {
		r, ok := strategyRegistry[name]
		if !ok {
			known := make([]string, 0, len(strategyRegistry))
			for k := range strategyRegistry {
				known = append(known, k)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("refine: unknown strategy %q (known: %s)",
				name, strings.Join(known, ", "))
		}
		if seen[name] {
			continue
		}
		seen[name] = true
		out = append(out, r)
	}
	return out, nil
}

// arbiter is the shared admission point: candidates race in from every
// strategy, and only a plan that (a) costs strictly fewer cells than the
// current best and (b) passes the independent verifier may take the lead.
type arbiter struct {
	p  *Problem
	th *wcm.Options

	// certifyFn lets tests intercept certification (e.g. to force the
	// stale race deterministically); nil means verify.Plan.
	certifyFn func(*scan.Assignment) bool

	mu        sync.Mutex
	bestCells int
	best      *scan.Assignment
	strategy  string
}

// offerVerdict classifies one candidate's fate at the arbiter.
type offerVerdict int

const (
	// offerNotBetter: no better than the global best at the pre-check —
	// not worth encoding or verifying.
	offerNotBetter offerVerdict = iota
	// offerRejected: the independent referee refused certification.
	offerRejected
	// offerStale: verified, but while verification ran another strategy
	// certified an equal-or-better plan. The candidate is dropped — NOT
	// admitted — so an equal-cost race can never count one improvement
	// twice.
	offerStale
	// offerAdmitted: verified and strictly better; now the global best.
	offerAdmitted
)

func (a *arbiter) certify(asn *scan.Assignment) bool {
	if a.certifyFn != nil {
		return a.certifyFn(asn)
	}
	vres, err := verify.Plan(a.p.in, asn, verify.Options{Thresholds: a.th})
	return err == nil && vres.OK()
}

// offer judges one candidate for one strategy. It is safe for concurrent
// use; verification runs outside the lock.
func (a *arbiter) offer(strategy string, s *Solution) offerVerdict {
	cells := s.cells(a.p)
	a.mu.Lock()
	lead := cells < a.bestCells
	a.mu.Unlock()
	if !lead {
		return offerNotBetter
	}
	asn := encode(a.p, s)
	if !a.certify(asn) {
		return offerRejected
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if cells >= a.bestCells {
		return offerStale // someone else got there first
	}
	a.bestCells = cells
	a.best = asn
	a.strategy = strategy
	return offerAdmitted
}

// Run races the solver portfolio over the greedy plan and returns the best
// verified plan found before the deadline — or the greedy plan unchanged.
// An already-expired context short-circuits: the greedy assignment comes
// back immediately, untouched. Run only returns an error for malformed
// inputs; search-side failures degrade to the greedy plan.
func Run(ctx context.Context, in wcm.Input, opts wcm.Options, greedy *wcm.Result, o Options) (*Result, error) {
	if greedy == nil || greedy.Assignment == nil {
		return nil, fmt.Errorf("refine: nil greedy plan")
	}
	eff := opts.WithDefaults()
	res := &Result{
		Assignment:      greedy.Assignment,
		AdditionalCells: greedy.AdditionalCells,
		ReusedFFs:       greedy.ReusedFFs,
		GreedyCells:     greedy.AdditionalCells,
	}
	if ctx.Err() != nil {
		return res, nil // expired before start: greedy plan, unchanged
	}
	refiners, err := strategiesFor(o.Strategies)
	if err != nil {
		return nil, err
	}
	budget := o.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}

	// The model's second phase prices against the timing the greedy
	// second phase saw: the analysis refreshed from greedy's first-phase
	// hardware. Candidates whose own first phase differs are re-derived
	// from scratch by the verifier at admission, so a mispriced edge can
	// cost a rejection but never an invalid plan.
	var second *sta.Result
	if in.RefreshTiming != nil {
		partial := &scan.Assignment{}
		firstInbound := len(greedy.Phases) > 0 && greedy.Phases[0].Inbound
		if firstInbound {
			partial.Control = greedy.Assignment.Control
		} else {
			partial.Observe = greedy.Assignment.Observe
		}
		second, err = in.RefreshTiming(partial)
		if err != nil {
			return res, nil // cannot price phase two: keep greedy
		}
	}
	model, err := wcm.BuildShareModel(in, eff, second)
	if err != nil {
		return nil, err
	}
	p, err := newProblem(in, eff, model, greedy)
	if err != nil {
		return nil, err
	}
	start, err := decodeGreedy(p, greedy)
	if err != nil {
		// The greedy plan does not fit the model (defensive: this
		// would be a model bug, not a caller error) — refuse to
		// search rather than risk a worse plan.
		return res, nil
	}

	// The deadline clock starts here, after the timing refresh and model
	// build: the budget funds the *search*, not the problem construction —
	// on b18/b20-class dies the STA refresh alone used to consume most of
	// a 2 s budget before any strategy ran a single step. The caller's own
	// context still caps the whole call, prep included.
	ctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()

	arb := &arbiter{p: p, th: &eff, bestCells: greedy.AdditionalCells}
	outcomes := make([]StrategyOutcome, len(refiners))
	par.Do(par.Workers(o.Workers, len(refiners)), len(refiners), func(_, i int) {
		r := refiners[i]
		out := &outcomes[i]
		out.Name = r.Name()
		cfg := Config{
			Seed:       o.Seed,
			MaxSteps:   o.MaxSteps,
			CandidateK: o.CandidateK,
			Restarts:   o.Restarts,
			CrossCheck: o.CrossCheck,
		}
		if cfg.MaxSteps <= 0 {
			switch r.Name() {
			case "anneal":
				cfg.MaxSteps = defaultAnnealSteps
			default:
				// local and lns terminate through their fruitless
				// cutoffs; bnb through its enumeration bound.
				cfg.MaxSteps = 1 << 30
			}
		}
		emit := func(s *Solution) bool {
			out.Proposed++
			switch arb.offer(r.Name(), s) {
			case offerAdmitted:
				out.Admitted++
				return true
			case offerRejected:
				out.Rejected++
			case offerStale:
				out.Stale++
			}
			return false
		}
		steps, err := r.Refine(ctx, p, start, cfg, emit)
		out.Steps = steps
		if err == context.DeadlineExceeded || err == context.Canceled {
			out.Deadline = true
		} else if err != nil {
			out.Err = err.Error()
		}
	})
	res.Strategies = outcomes

	arb.mu.Lock()
	best, bestCells, strategy := arb.best, arb.bestCells, arb.strategy
	arb.mu.Unlock()
	if best != nil && bestCells < res.GreedyCells {
		res.Assignment = best
		res.AdditionalCells = bestCells
		res.ReusedFFs = best.ReusedFFs()
		res.Improved = true
		res.CellsSaved = res.GreedyCells - bestCells
		res.Strategy = strategy
	}
	return res, nil
}
