package refine_test

import (
	"context"
	"os"
	"testing"
	"time"

	"wcm3d"
	"wcm3d/internal/experiments"
	"wcm3d/internal/refine"
	"wcm3d/internal/wcm"
)

// TestLargeDieThroughput is the b20-class scalability gate, run in CI with
// WCM3D_REFINE_LARGE=1 (skipped otherwise — preparing ITC'99 large dies
// takes seconds, not milliseconds). It pins the property the incremental
// evaluator exists for: on a ~1000-item die the portfolio must sustain a
// minimum search rate inside the standard 2 s budget, instead of the
// clone-and-rematch scoring that managed a few hundred trials and never
// improved these dies. The -v log doubles as the improvement-table
// artifact the refine-smoke job uploads.
func TestLargeDieThroughput(t *testing.T) {
	if os.Getenv("WCM3D_REFINE_LARGE") == "" {
		t.Skip("set WCM3D_REFINE_LARGE=1 to run the b20-class throughput gate")
	}
	// Floor well under the ~40k steps/s measured on one core: slow CI
	// runners must pass, the old full-rematch scoring (~1k trials/s on
	// this class) must not.
	const minStepsPerSec = 5000
	tight := experiments.Scenario{Name: "performance-optimized", Tight: true}
	for _, name := range []string{"b20/1", "b21/1"} {
		p, err := wcm3d.ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		d, err := wcm3d.PrepareDie(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		opts := experiments.OurOptions(d, tight)
		greedy, err := wcm.Run(d.Input(), opts)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		rr, err := refine.Run(context.Background(), d.Input(), opts, greedy,
			refine.Options{Budget: 2 * time.Second, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		steps := 0
		for _, so := range rr.Strategies {
			steps += so.Steps
			t.Logf("%s %-6s %d steps, %d proposed, %d admitted, %d rejected, %d stale (deadline=%v)",
				name, so.Name, so.Steps, so.Proposed, so.Admitted, so.Rejected, so.Stale, so.Deadline)
		}
		rate := float64(steps) / elapsed.Seconds()
		t.Logf("%s: greedy %d -> refined %d cells (saved %d) — %d steps in %v (%.0f steps/s)",
			name, rr.GreedyCells, rr.AdditionalCells, rr.CellsSaved, steps, elapsed.Round(time.Millisecond), rate)
		if rr.AdditionalCells > rr.GreedyCells {
			t.Errorf("%s: refined plan worse than greedy (%d > %d)", name, rr.AdditionalCells, rr.GreedyCells)
		}
		if rate < minStepsPerSec {
			t.Errorf("%s: portfolio searched %.0f steps/s, floor is %d — the incremental evaluator has regressed",
				name, rate, minStepsPerSec)
		}
	}
}
