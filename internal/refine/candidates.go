package refine

import (
	"math/bits"
	"sort"
)

// defaultCandidateK bounds each block's merge-partner candidate list when
// Options.CandidateK is zero.
const defaultCandidateK = 16

// mergeCandidates ranks, for every block of phase pi, up to k partner
// blocks by shared flip-flop cover overlap — the number of phase-local
// flip-flops whose adjacency covers both blocks. A flip-flop can serve a
// merged block only if it covers both halves, so high overlap marks the
// pairs most likely to stay covered after fusing; zero-overlap pairs still
// rank (merging two exposed blocks saves a cell with no flip-flop at all),
// just last. Pairs whose combined member count already exceeds the load
// bound are dropped outright. The order is deterministic: overlap
// descending, partner index ascending. A sweep over the lists is O(n·k)
// trials instead of the all-pairs O(n²).
func mergeCandidates(p *Problem, s *Solution, pi, k int) [][]int32 {
	if k <= 0 {
		k = defaultCandidateK
	}
	ph := p.phases[pi]
	blocks := s.blocks[pi]
	nb := len(blocks)
	nw := (len(ph.ffs) + 63) / 64
	// cover[bi]: the phase-local flip-flops that can serve block bi. Any
	// such flip-flop is adjacent to every member, in particular the first,
	// so scanning itemFFs of member 0 finds them all.
	buf := make(bitset, nw*nb)
	cover := make([]bitset, nb)
	for bi := range blocks {
		row := buf[bi*nw : (bi+1)*nw]
		for _, fi := range ph.itemFFs[blocks[bi].members[0]] {
			if ph.ffCovers(fi, &blocks[bi]) {
				row.set(fi)
			}
		}
		cover[bi] = row
	}
	type scored struct {
		bj      int32
		overlap int32
	}
	lists := make([][]int32, nb)
	cand := make([]scored, 0, nb)
	for bi := range blocks {
		cand = cand[:0]
		for bj := range blocks {
			if bj == bi || len(blocks[bi].members)+len(blocks[bj].members) > ph.maxLen {
				continue
			}
			ov := 0
			for w := 0; w < nw; w++ {
				ov += bits.OnesCount64(cover[bi][w] & cover[bj][w])
			}
			cand = append(cand, scored{bj: int32(bj), overlap: int32(ov)})
		}
		sort.Slice(cand, func(i, j int) bool {
			if cand[i].overlap != cand[j].overlap {
				return cand[i].overlap > cand[j].overlap
			}
			return cand[i].bj < cand[j].bj
		})
		n := k
		if n > len(cand) {
			n = len(cand)
		}
		list := make([]int32, n)
		for i := range list {
			list[i] = cand[i].bj
		}
		lists[bi] = list
	}
	return lists
}
