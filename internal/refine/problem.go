package refine

import (
	"fmt"

	"wcm3d/internal/netlist"
	"wcm3d/internal/scan"
	"wcm3d/internal/wcm"
)

// bitset is a fixed-width bit vector over item indices of one phase. The
// solver keeps one per item (its adjacency row) and one per block (its
// membership), so feasibility tests are word-parallel.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int32)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int32)    { b[i>>6] &^= 1 << (uint(i) & 63) }
func (b bitset) has(i int32) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// covers reports o ⊆ b.
func (b bitset) covers(o bitset) bool {
	for w := range o {
		if o[w]&^b[w] != 0 {
			return false
		}
	}
	return true
}

func (b bitset) clone() bitset { return append(bitset(nil), b...) }

// Problem is the refinement search space: the exported sharing model of a
// die (wcm.BuildShareModel) reindexed for fast moves — per-phase adjacency
// bitsets, a global flip-flop table spanning both phases, and the fixed
// cost floor of the excluded (dedicated-cell) TSVs.
type Problem struct {
	in   wcm.Input
	opts wcm.Options // effective configuration (WithDefaults applied)

	model  *wcm.ShareModel
	phases [2]*phaseIndex

	// ffSigs is the global flip-flop table: phases index into it so one
	// reuse per flip-flop across the whole plan is a matching constraint.
	ffSigs []netlist.SignalID

	// ffHomes lists, per global flip-flop, every (phase, local index)
	// that can use it — the reverse of ffIndex.global. The incremental
	// evaluator's reverse augmenting search walks it to find the blocks
	// adjacent to a freed flip-flop.
	ffHomes [][]ffHome

	// fixedCells counts the dedicated cells no solution can avoid (both
	// phases' excluded TSVs).
	fixedCells int

	// greedyBuffered echoes the greedy plan's BufferedRouting so encoded
	// candidates claim the same routing contract.
	greedyBuffered bool
}

// phaseIndex is one phase's sharing problem in solver form.
type phaseIndex struct {
	sp *wcm.SharePhase
	n  int // admitted items

	// adj[i] is item i's adjacency row; a block is feasible iff every
	// member's row covers the block mask.
	adj []bitset

	// maxLen is the largest member count a block can hold under the
	// accumulated-load budget (k·ItemLoadFF < CapThFF).
	maxLen int

	// ffs are the reuse candidates of this phase; itemFFs[i] lists the
	// local flip-flop indices adjacent to item i (candidate generation).
	ffs     []ffIndex
	itemFFs [][]int32
}

type ffIndex struct {
	global int32  // index into Problem.ffSigs
	adj    bitset // items the flip-flop may share a group with
	// items lists adj's set bits ascending (the share model's FF adjacency
	// list, referenced, not copied). The reverse augmenting search walks it
	// to enumerate candidate blocks through the evaluator's item→block
	// index instead of scanning every block of the phase.
	items []int32
}

// ffHome locates one phase-local incarnation of a global flip-flop.
type ffHome struct {
	pi int8
	fi int32
}

// newProblem indexes a share model for the solvers.
func newProblem(in wcm.Input, opts wcm.Options, model *wcm.ShareModel, greedy *wcm.Result) (*Problem, error) {
	p := &Problem{
		in:             in,
		opts:           opts,
		model:          model,
		greedyBuffered: greedy.Assignment.BufferedRouting,
	}
	ffGlobal := make(map[netlist.SignalID]int32)
	for pi, sp := range model.Phases {
		ph := &phaseIndex{sp: sp, n: len(sp.Items)}
		ph.adj = make([]bitset, ph.n)
		for i := 0; i < ph.n; i++ {
			row := newBitset(ph.n)
			for _, j := range sp.ItemAdj[i] {
				row.set(j)
			}
			ph.adj[i] = row
		}
		ph.maxLen = ph.n
		if sp.ItemLoadFF > 0 {
			k := 0
			for float64(k+1)*sp.ItemLoadFF < sp.CapThFF && k < ph.n {
				k++
			}
			ph.maxLen = k
		}
		if ph.maxLen < 1 {
			ph.maxLen = 1 // singletons always stand: greedy emits them too
		}
		ph.itemFFs = make([][]int32, ph.n)
		for fi, ff := range sp.FFs {
			g, ok := ffGlobal[ff.Sig]
			if !ok {
				g = int32(len(p.ffSigs))
				ffGlobal[ff.Sig] = g
				p.ffSigs = append(p.ffSigs, ff.Sig)
			}
			mask := newBitset(ph.n)
			for _, j := range ff.Adj {
				mask.set(j)
				ph.itemFFs[j] = append(ph.itemFFs[j], int32(fi))
			}
			ph.ffs = append(ph.ffs, ffIndex{global: g, adj: mask, items: ff.Adj})
			for int(g) >= len(p.ffHomes) {
				p.ffHomes = append(p.ffHomes, nil)
			}
			p.ffHomes[g] = append(p.ffHomes[g], ffHome{pi: int8(pi), fi: int32(fi)})
		}
		p.fixedCells += len(sp.Excluded)
		p.phases[pi] = ph
	}
	return p, nil
}

// block is one shared group of a candidate plan.
type block struct {
	members []int32 // item indices, insertion order
	mask    bitset
	ff      int32 // phase-local flip-flop index, -1 when unassigned
}

// Solution is a candidate plan over a Problem: a partition of each phase's
// admitted items into pairwise-adjacent blocks, plus a flip-flop matching
// (at most one block per flip-flop across both phases). The excluded TSVs
// are implicit — every solution pays for them.
type Solution struct {
	blocks [2][]block
	// ffUsed marks global flip-flop indices consumed by the matching.
	ffUsed bitset
}

func (s *Solution) clone() *Solution {
	c := &Solution{ffUsed: s.ffUsed.clone()}
	for pi := range s.blocks {
		c.blocks[pi] = make([]block, len(s.blocks[pi]))
		for bi, b := range s.blocks[pi] {
			c.blocks[pi][bi] = block{
				members: append([]int32(nil), b.members...),
				mask:    b.mask.clone(),
				ff:      b.ff,
			}
		}
	}
	return c
}

// cells is the objective: dedicated wrapper cells the plan inserts.
func (s *Solution) cells(p *Problem) int {
	n := p.fixedCells
	for pi := range s.blocks {
		for bi := range s.blocks[pi] {
			if s.blocks[pi][bi].ff < 0 {
				n++
			}
		}
	}
	return n
}

// matched counts blocks covered by a reused flip-flop.
func (s *Solution) matched() int {
	m := 0
	for pi := range s.blocks {
		for bi := range s.blocks[pi] {
			if s.blocks[pi][bi].ff >= 0 {
				m++
			}
		}
	}
	return m
}

// canJoin reports whether item i may enter block b of phase ph: the block
// has room and i is adjacent to every member. Small blocks are checked
// member-by-member — a word scan over the mask cannot early-exit on the
// mask's zero words, so for typical block sizes the per-member probe is
// both shorter and fail-fast.
func (ph *phaseIndex) canJoin(b *block, i int32) bool {
	if len(b.members) >= ph.maxLen {
		return false
	}
	row := ph.adj[i]
	if len(b.members) < len(b.mask) {
		for _, m := range b.members {
			if !row.has(m) {
				return false
			}
		}
		return true
	}
	return row.covers(b.mask)
}

// canMerge reports whether two blocks may fuse: combined size fits and
// every cross pair is adjacent.
func (ph *phaseIndex) canMerge(a, b *block) bool {
	if len(a.members)+len(b.members) > ph.maxLen {
		return false
	}
	// Every member of the smaller block must be adjacent to all of the
	// larger's — adjacency is symmetric, so one direction suffices.
	small, large := a, b
	if len(b.members) < len(a.members) {
		small, large = b, a
	}
	for _, m := range small.members {
		if !ph.adj[m].covers(large.mask) {
			return false
		}
	}
	return true
}

// ffCoversAlso reports whether flip-flop fi, already known to cover some
// block, also covers every member of b — i.e. whether it would cover the
// two blocks' union.
func (ph *phaseIndex) ffCoversAlso(fi int32, b *block) bool {
	adj := ph.ffs[fi].adj
	for _, m := range b.members {
		if !adj.has(m) {
			return false
		}
	}
	return true
}

// ffCovers reports whether phase-local flip-flop fi may serve block b.
// This sits on the matching repair's hottest path (the reverse augmenting
// search probes it for every candidate block), so small blocks take the
// fail-fast per-member probe instead of the full-width mask scan.
func (ph *phaseIndex) ffCovers(fi int32, b *block) bool {
	adj := ph.ffs[fi].adj
	if len(b.members) < len(b.mask) {
		for _, m := range b.members {
			if !adj.has(m) {
				return false
			}
		}
		return true
	}
	return adj.covers(b.mask)
}

// decodeGreedy maps the greedy plan onto the model: every shared group
// becomes a block, excluded TSVs are recognized and dropped (they are the
// implicit cost floor), and reused flip-flops seed the matching. A greedy
// clique is always pairwise-adjacent in the initial sharing graph (merges
// intersect neighborhoods), so the decode is structural, not a re-check —
// but it still validates against the model and errors on any mismatch so
// the caller can fall back to the greedy plan untouched.
func decodeGreedy(p *Problem, greedy *wcm.Result) (*Solution, error) {
	s := &Solution{ffUsed: newBitset(len(p.ffSigs))}
	for pi, ph := range p.phases {
		sp := ph.sp
		itemOf := make(map[wcm.ShareItem]int32, ph.n)
		for i, it := range sp.Items {
			itemOf[it] = int32(i)
		}
		excluded := make(map[wcm.ShareItem]bool, len(sp.Excluded))
		for _, it := range sp.Excluded {
			excluded[it] = true
		}
		ffLocal := make(map[netlist.SignalID]int32, len(sp.FFs))
		for fi, ff := range sp.FFs {
			ffLocal[ff.Sig] = int32(fi)
		}
		addGroup := func(where string, ffSig netlist.SignalID, items []wcm.ShareItem) error {
			b := block{mask: newBitset(ph.n), ff: -1}
			for _, it := range items {
				i, ok := itemOf[it]
				if !ok {
					if excluded[it] && len(items) == 1 && ffSig == netlist.InvalidSignal {
						return nil // dedicated cell for an excluded TSV: implicit
					}
					return fmt.Errorf("refine: %s: TSV not in share model", where)
				}
				b.members = append(b.members, i)
				b.mask.set(i)
			}
			if ffSig != netlist.InvalidSignal {
				fi, ok := ffLocal[ffSig]
				if !ok {
					return fmt.Errorf("refine: %s: reused FF not in share model", where)
				}
				g := p.phases[pi].ffs[fi].global
				if s.ffUsed.has(g) {
					return fmt.Errorf("refine: %s: FF reused twice", where)
				}
				b.ff = fi
				s.ffUsed.set(g)
			}
			s.blocks[pi] = append(s.blocks[pi], b)
			return nil
		}
		if sp.Inbound {
			for gi, g := range greedy.Assignment.Control {
				items := make([]wcm.ShareItem, 0, len(g.TSVs))
				for _, t := range g.TSVs {
					items = append(items, wcm.ShareItem{Sig: t, Port: -1})
				}
				if err := addGroup(fmt.Sprintf("control[%d]", gi), g.ReusedFF, items); err != nil {
					return nil, err
				}
			}
		} else {
			n := p.in.Netlist
			for gi, g := range greedy.Assignment.Observe {
				items := make([]wcm.ShareItem, 0, len(g.Ports))
				for _, port := range g.Ports {
					items = append(items, wcm.ShareItem{Sig: n.Outputs[port].Signal, Port: port})
				}
				if err := addGroup(fmt.Sprintf("observe[%d]", gi), g.ReusedFF, items); err != nil {
					return nil, err
				}
			}
		}
		// Every admitted item must be covered exactly once.
		seen := newBitset(ph.n)
		total := 0
		for bi := range s.blocks[pi] {
			for _, m := range s.blocks[pi][bi].members {
				if seen.has(m) {
					return nil, fmt.Errorf("refine: phase %d: item covered twice", pi)
				}
				seen.set(m)
				total++
			}
		}
		if total != ph.n {
			return nil, fmt.Errorf("refine: phase %d: %d of %d items covered", pi, total, ph.n)
		}
	}
	return s, nil
}

// encode materializes a solution as a wrapper plan in internal/scan form.
func encode(p *Problem, s *Solution) *scan.Assignment {
	asn := &scan.Assignment{BufferedRouting: p.greedyBuffered}
	for pi, ph := range p.phases {
		sp := ph.sp
		emit := func(ffSig netlist.SignalID, items []wcm.ShareItem) {
			if sp.Inbound {
				g := scan.ControlGroup{ReusedFF: ffSig}
				for _, it := range items {
					g.TSVs = append(g.TSVs, it.Sig)
				}
				asn.Control = append(asn.Control, g)
			} else {
				g := scan.ObserveGroup{ReusedFF: ffSig}
				for _, it := range items {
					g.Ports = append(g.Ports, it.Port)
				}
				asn.Observe = append(asn.Observe, g)
			}
		}
		for bi := range s.blocks[pi] {
			b := &s.blocks[pi][bi]
			ffSig := netlist.InvalidSignal
			if b.ff >= 0 {
				ffSig = sp.FFs[b.ff].Sig
			}
			items := make([]wcm.ShareItem, 0, len(b.members))
			for _, m := range b.members {
				items = append(items, sp.Items[m])
			}
			emit(ffSig, items)
		}
		for _, it := range sp.Excluded {
			emit(netlist.InvalidSignal, []wcm.ShareItem{it})
		}
	}
	return asn
}
