package refine

// The flip-flop assignment is a maximum bipartite matching: blocks (of both
// phases) on the left, the global flip-flop table on the right, an edge
// where the flip-flop's phase-local adjacency covers the whole block. Kuhn's
// augmenting paths — the same algorithm the exhaustive oracle uses for its
// leaf scoring — computes it; the solvers call augmentAll after every
// structural move, which makes "FF reassignment via augmenting paths" a
// built-in part of the move set: stealing a flip-flop from a block that can
// recover elsewhere is exactly an augmenting path.

// matcher holds the owner index (global flip-flop → block) rebuilt per
// augmentation round.
type matcher struct {
	p          *Problem
	s          *Solution
	ownerPhase []int32 // per global ff: phase of the owning block, -1 free
	ownerBlock []int32
	visited    []int32 // visit stamp per global ff
	stamp      int32
}

func newMatcher(p *Problem, s *Solution) *matcher {
	m := &matcher{
		p:          p,
		s:          s,
		ownerPhase: make([]int32, len(p.ffSigs)),
		ownerBlock: make([]int32, len(p.ffSigs)),
		visited:    make([]int32, len(p.ffSigs)),
	}
	for g := range m.ownerPhase {
		m.ownerPhase[g], m.ownerBlock[g] = -1, -1
	}
	for pi := range s.blocks {
		for bi := range s.blocks[pi] {
			if fi := s.blocks[pi][bi].ff; fi >= 0 {
				g := p.phases[pi].ffs[fi].global
				m.ownerPhase[g], m.ownerBlock[g] = int32(pi), int32(bi)
			}
		}
	}
	return m
}

// augment searches an augmenting path from block (pi, bi); on success the
// block ends up with a flip-flop and every block on the path keeps one.
func (m *matcher) augment(pi, bi int) bool {
	ph := m.p.phases[pi]
	b := &m.s.blocks[pi][bi]
	for _, fi := range ph.itemFFs[b.members[0]] {
		g := ph.ffs[fi].global
		if m.visited[g] == m.stamp {
			continue
		}
		if !ph.ffCovers(fi, b) {
			continue
		}
		m.visited[g] = m.stamp
		if m.ownerBlock[g] < 0 || m.augment(int(m.ownerPhase[g]), int(m.ownerBlock[g])) {
			b.ff = fi
			m.s.ffUsed.set(g)
			m.ownerPhase[g], m.ownerBlock[g] = int32(pi), int32(bi)
			return true
		}
	}
	return false
}

// augmentAll restores the matching to maximum by augmenting from every
// unmatched block, and returns the matched count. Starting from any valid
// partial matching (including the greedy plan's own assignment), one
// augmentation attempt per unmatched block reaches a maximum matching.
func augmentAll(p *Problem, s *Solution) int {
	m := newMatcher(p, s)
	matched := 0
	for pi := range s.blocks {
		for bi := range s.blocks[pi] {
			if s.blocks[pi][bi].ff >= 0 {
				matched++
				continue
			}
			m.stamp++
			if m.augment(pi, bi) {
				matched++
			}
		}
	}
	return matched
}
