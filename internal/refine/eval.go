package refine

// The incremental move evaluator. PR 6 scored every candidate move by
// cloning the whole solution and rerunning a full augmenting-path rematch
// (augmentAll) — O(blocks · tree) per trial, which on the b20–b22 family
// burned the entire wall budget inside the first merge sweep. The
// evaluator replaces that with in-place application, exact local matching
// repair, and journaled undo:
//
//   - Moves decompose into elementary graph changes, each with a provably
//     sufficient repair that restores a *maximum* matching:
//
//     delete a left vertex matched to g   → one reverse augment from g
//     edges removed at block b (mask grew)
//     → release b's flip-flop if it stopped covering, forward augment
//     from b, then reverse augment from the freed flip-flop if
//     still free
//     edges added at block b (mask shrank)
//     → release b's flip-flop unconditionally (an augmenting path may
//     now pass *through* b), forward augment from b, then reverse
//     augment from the freed flip-flop
//     new block → one forward augment from it
//
//     The arguments are exchange/Berge arguments over the bipartite
//     share graph: starting from a maximum matching, every augmenting
//     path created by one elementary change must start at the touched
//     block or end at the freed flip-flop, and Kuhn's persistence lemma
//     (a failed augment stays failed) lets each repair run exactly one
//     tree search per endpoint. Each trial therefore costs a few
//     fail-fast alternating-tree walks instead of a full rematch.
//
//   - Every mutation (member moves, mask bits, flip-flop assignments,
//     owner entries, block swaps) is recorded in an undo journal; a
//     rejected move reverts bit-exactly, so delta cost equals the cost a
//     from-scratch rematch would report — the property test in
//     eval_test.go asserts exactly that on thousands of random moves, and
//     the crossCheck debug mode (Options.CrossCheck or
//     WCM3D_REFINE_CROSSCHECK=1) re-scores every applied move against the
//     PR 6 reference rematch at runtime.

import "fmt"

// Journal op kinds. Each record stores exactly what revert needs to undo
// one primitive mutation; revert replays records strictly in reverse, so
// block indices recorded here are valid again by the time they are used.
const (
	jFF         uint8 = iota // blocks[pi][a].ff was b: restore it
	jUsedSet                 // ffUsed bit a was set: clear it
	jUsedClear               // ffUsed bit a was cleared: set it
	jOwner                   // owner[a] was (phase b, block c): restore
	jPush                    // blocks[pi][a]: member c appended: pop it
	jTake                    // blocks[pi][a]: member c swap-removed from slot b: reinsert
	jExtend                  // blocks[pi][a].members had length b: truncate
	jMaskOr                  // blocks[pi][a].mask |= m (disjoint): andnot m
	jSwapRemove              // blocks[pi] swap-removed slot a: restore blk
	jAppend                  // block appended to blocks[pi]: pop it
	jItemBlock               // itemBlock[pi][a] was b: restore it
)

type jop struct {
	kind    uint8
	pi      int8
	a, b, c int32
	blk     block
	m       bitset
}

// evaluator owns a working solution and keeps its flip-flop matching
// maximum across in-place moves. All mutations must go through its
// methods; between moves the invariant holds that s is a valid partition
// with a maximum matching, and cells() prices it in O(1).
type evaluator struct {
	p *Problem
	s *Solution

	// ownerPhase/ownerBlock index the matching from the flip-flop side
	// (global flip-flop → owning block), kept persistent across moves.
	ownerPhase []int8
	ownerBlock []int32
	// itemBlock[pi][item] is the index of the block currently holding the
	// item, -1 while the item is mid-move (taken but not yet re-housed).
	// The reverse augmenting search enumerates a freed flip-flop's
	// candidate blocks through it — a block is coverable only if it holds
	// at least one adjacent item — instead of scanning the whole phase.
	itemBlock [2][]int32
	// visited carries the per-search visit stamps of both tree searches.
	visited []int32
	stamp   int32

	nblocks int // blocks across both phases
	matched int // blocks holding a flip-flop

	// reach caches, per matching baseline, the set of global flip-flops
	// from which an exposed block is alternating-reachable — exactly the
	// set on which reverse() can succeed. Sweeps consult it through
	// reachable() to skip trials whose freed flip-flop provably cannot
	// re-seat (such a trial cannot lower the cell count), turning the
	// dominant failing displacement searches on flip-flop-abundant dies
	// into O(1) lookups. Any matching mutation invalidates the cache;
	// reachGen lets revert restore validity only when no recompute
	// overwrote the set mid-trial.
	reach      bitset
	reachQ     []int32
	reachValid bool
	reachGen   int

	j          []jop
	journaling bool

	// crossCheck re-scores every applied move against the reference
	// from-scratch rematch (expensive; debug/property tests only).
	crossCheck bool
}

// evalMark is a point to revert to: journal length plus the scalar
// counters the journal does not cover.
type evalMark struct {
	jlen       int
	nblocks    int
	matched    int
	reachValid bool
	reachGen   int
}

// newEvaluator takes ownership of s, indexes its matching, and restores
// maximality (the decoded greedy matching need not be maximum).
func newEvaluator(p *Problem, s *Solution) *evaluator {
	e := &evaluator{
		p:          p,
		s:          s,
		ownerPhase: make([]int8, len(p.ffSigs)),
		ownerBlock: make([]int32, len(p.ffSigs)),
		visited:    make([]int32, len(p.ffSigs)),
	}
	for g := range e.ownerPhase {
		e.ownerPhase[g], e.ownerBlock[g] = -1, -1
	}
	for pi := range s.blocks {
		e.itemBlock[pi] = make([]int32, p.phases[pi].n)
		for i := range e.itemBlock[pi] {
			e.itemBlock[pi][i] = -1
		}
		for bi := range s.blocks[pi] {
			e.nblocks++
			for _, m := range s.blocks[pi][bi].members {
				e.itemBlock[pi][m] = int32(bi)
			}
			if fi := s.blocks[pi][bi].ff; fi >= 0 {
				g := p.phases[pi].ffs[fi].global
				e.ownerPhase[g], e.ownerBlock[g] = int8(pi), int32(bi)
				e.matched++
			}
		}
	}
	e.maximize()
	e.journaling = true
	return e
}

// cells prices the current solution: the fixed floor plus one dedicated
// cell per uncovered block.
func (e *evaluator) cells() int { return e.p.fixedCells + e.nblocks - e.matched }

func (e *evaluator) mark() evalMark {
	return evalMark{
		jlen: len(e.j), nblocks: e.nblocks, matched: e.matched,
		reachValid: e.reachValid, reachGen: e.reachGen,
	}
}

// commit forgets the undo history; outstanding marks become invalid.
func (e *evaluator) commit() { e.j = e.j[:0] }

// revert replays the journal backwards to the marked state. The restore is
// bit-exact: members, masks, flip-flop assignments, ffUsed bits, and owner
// entries all return to their pre-move values, so the matching is maximum
// again by construction.
func (e *evaluator) revert(m evalMark) {
	s := e.s
	for i := len(e.j) - 1; i >= m.jlen; i-- {
		op := &e.j[i]
		switch op.kind {
		case jFF:
			s.blocks[op.pi][op.a].ff = op.b
		case jUsedSet:
			s.ffUsed.clear(op.a)
		case jUsedClear:
			s.ffUsed.set(op.a)
		case jOwner:
			e.ownerPhase[op.a] = int8(op.b)
			e.ownerBlock[op.a] = op.c
		case jPush:
			b := &s.blocks[op.pi][op.a]
			b.members = b.members[:len(b.members)-1]
			b.mask.clear(op.c)
		case jTake:
			b := &s.blocks[op.pi][op.a]
			if int(op.b) == len(b.members) {
				b.members = append(b.members, op.c)
			} else {
				b.members = append(b.members, b.members[op.b])
				b.members[op.b] = op.c
			}
			b.mask.set(op.c)
		case jExtend:
			b := &s.blocks[op.pi][op.a]
			b.members = b.members[:op.b]
		case jMaskOr:
			mask := s.blocks[op.pi][op.a].mask
			for w := range op.m {
				mask[w] &^= op.m[w]
			}
		case jSwapRemove:
			blocks := s.blocks[op.pi]
			if int(op.a) == len(blocks) {
				s.blocks[op.pi] = append(blocks, op.blk)
			} else {
				s.blocks[op.pi] = append(blocks, blocks[op.a])
				s.blocks[op.pi][op.a] = op.blk
			}
		case jAppend:
			last := len(s.blocks[op.pi]) - 1
			s.blocks[op.pi][last] = block{}
			s.blocks[op.pi] = s.blocks[op.pi][:last]
		case jItemBlock:
			e.itemBlock[op.pi][op.a] = op.b
		}
	}
	e.j = e.j[:m.jlen]
	e.nblocks = m.nblocks
	e.matched = m.matched
	// The revert restored the matching bit-exactly, so the reachability
	// cache is valid again — unless a recompute overwrote it in between.
	e.reachValid = m.reachValid && e.reachGen == m.reachGen
}

func (e *evaluator) rec(op jop) {
	if e.journaling {
		e.j = append(e.j, op)
	}
}

// --- journaled matching primitives ---

func (e *evaluator) setFF(pi, bi int, fi int32) {
	b := &e.s.blocks[pi][bi]
	e.rec(jop{kind: jFF, pi: int8(pi), a: int32(bi), b: b.ff})
	b.ff = fi
}

func (e *evaluator) setOwner(g int32, pi int8, bi int32) {
	e.rec(jop{kind: jOwner, a: g, b: int32(e.ownerPhase[g]), c: e.ownerBlock[g]})
	e.ownerPhase[g], e.ownerBlock[g] = pi, bi
}

func (e *evaluator) setItemBlock(pi int, item, bi int32) {
	e.reachValid = false // membership changes coverage, hence reachability
	if old := e.itemBlock[pi][item]; old != bi {
		e.rec(jop{kind: jItemBlock, pi: int8(pi), a: item, b: old})
		e.itemBlock[pi][item] = bi
	}
}

// assign points block (pi, bi) at phase-local flip-flop fi. The block's
// previous flip-flop, if any, is left for the caller's augmenting chain to
// re-own (classic Kuhn flip order).
func (e *evaluator) assign(pi, bi int, fi int32) {
	g := e.p.phases[pi].ffs[fi].global
	e.reachValid = false
	if e.s.blocks[pi][bi].ff < 0 {
		e.matched++
	}
	e.setFF(pi, bi, fi)
	if !e.s.ffUsed.has(g) {
		e.rec(jop{kind: jUsedSet, a: g})
		e.s.ffUsed.set(g)
	}
	e.setOwner(g, int8(pi), int32(bi))
}

// release frees block (pi, bi)'s flip-flop, if any, and returns its global
// index (-1 when the block was exposed).
func (e *evaluator) release(pi, bi int) int32 {
	b := &e.s.blocks[pi][bi]
	if b.ff < 0 {
		return -1
	}
	g := e.p.phases[pi].ffs[b.ff].global
	e.reachValid = false
	e.setFF(pi, bi, -1)
	e.rec(jop{kind: jUsedClear, a: g})
	e.s.ffUsed.clear(g)
	e.setOwner(g, -1, -1)
	e.matched--
	return g
}

// --- tree searches ---

// augment searches an augmenting path from the exposed block (pi, bi)
// under the current visit stamp; on success every block along the path
// keeps a flip-flop and (pi, bi) gains one.
func (e *evaluator) augment(pi, bi int) bool {
	ph := e.p.phases[pi]
	b := &e.s.blocks[pi][bi]
	for _, fi := range ph.itemFFs[b.members[0]] {
		g := ph.ffs[fi].global
		if e.visited[g] == e.stamp {
			continue
		}
		if !ph.ffCovers(fi, b) {
			continue
		}
		e.visited[g] = e.stamp
		opi, obi := e.ownerPhase[g], e.ownerBlock[g]
		if obi < 0 || e.augment(int(opi), int(obi)) {
			e.assign(pi, bi, fi)
			return true
		}
	}
	return false
}

// reverse searches an augmenting path *ending* at the free flip-flop g:
// an adjacent exposed block takes g directly, or an adjacent matched block
// re-points to g once its own flip-flop finds another home.
//
// The search runs in two passes. The exposed pass looks for a direct
// assignment — it recurses into nothing, so the common repair outcome
// (the freed flip-flop snaps back to the very block that released it, or
// to a nearby exposed block) costs one scan instead of a displacement
// cascade through every matched block the depth-first order happens to
// visit first. Only when no exposed block can take g does the
// displacement pass re-point a matched block at g and recurse on its old
// flip-flop; visit stamps bound that recursion as in the forward search.
//
// Candidate blocks are enumerated per home through whichever side is
// shorter: the flip-flop's adjacency list mapped through the item→block
// index (a coverable block holds only adjacent items, so each is reached
// through some item it holds — scarce-edge phases), or the phase's block
// list itself (abundant flip-flops whose adjacency dwarfs the block
// count). Blocks reached through several items are re-probed, but the
// fail-fast cover check keeps that cheap.
func (e *evaluator) reverse(g int32) bool {
	if e.visited[g] == e.stamp {
		return false
	}
	e.visited[g] = e.stamp
	for _, h := range e.p.ffHomes[g] {
		ph := e.p.phases[h.pi]
		blocks := e.s.blocks[h.pi]
		if items := ph.ffs[h.fi].items; len(items) < len(blocks) {
			ib := e.itemBlock[h.pi]
			for _, item := range items {
				bi := ib[item]
				if bi < 0 || blocks[bi].ff >= 0 {
					continue // mid-move item, or matched (displacement pass)
				}
				if ph.ffCovers(h.fi, &blocks[bi]) {
					e.assign(int(h.pi), int(bi), h.fi)
					return true
				}
			}
		} else {
			for bi := range blocks {
				if blocks[bi].ff >= 0 {
					continue
				}
				if ph.ffCovers(h.fi, &blocks[bi]) {
					e.assign(int(h.pi), bi, h.fi)
					return true
				}
			}
		}
	}
	for _, h := range e.p.ffHomes[g] {
		ph := e.p.phases[h.pi]
		blocks := e.s.blocks[h.pi]
		if items := ph.ffs[h.fi].items; len(items) < len(blocks) {
			ib := e.itemBlock[h.pi]
			for _, item := range items {
				bi := ib[item]
				if bi < 0 || blocks[bi].ff < 0 {
					continue
				}
				if e.reverseVia(h, int(bi), g) {
					return true
				}
			}
		} else {
			for bi := range blocks {
				if blocks[bi].ff < 0 {
					continue
				}
				if e.reverseVia(h, bi, g) {
					return true
				}
			}
		}
	}
	return false
}

// reverseVia tries to route the path through the matched block bi of home
// h: displace its flip-flop (recursively) and point it at h's flip-flop.
func (e *evaluator) reverseVia(h ffHome, bi int, g int32) bool {
	ph := e.p.phases[h.pi]
	b := &e.s.blocks[h.pi][bi]
	// Pruning before the cover check keeps the scan cheap: an owner
	// already visited under this stamp has a failed subtree, so the
	// recursion would return false anyway.
	og := ph.ffs[b.ff].global
	if og == g || e.visited[og] == e.stamp {
		return false
	}
	if !ph.ffCovers(h.fi, b) {
		return false
	}
	if !e.reverse(og) {
		return false
	}
	e.assign(int(h.pi), bi, h.fi)
	return true
}

// reachable reports whether freeing phase pi's local flip-flop fi would
// let it re-seat — whether reverse() on its global index would succeed
// against the current state. Sweeps call it *before* applying a move that
// frees the flip-flop: a trial whose freed flip-flop cannot re-seat loses
// one match for the one block it deletes and therefore cannot lower the
// cell count, so the sweep skips it without paying the failing
// displacement search. Sound to consult the pre-move state because the
// move only deletes the flip-flop's own block, which no reverse() path
// from that flip-flop can traverse (entering it would displace the
// search's own root).
func (e *evaluator) reachable(pi int, fi int32) bool {
	if !e.reachValid {
		e.recomputeReach()
	}
	return e.reach.has(e.p.phases[pi].ffs[fi].global)
}

// recomputeReach rebuilds the reachability set: a backward breadth-first
// search from every exposed block over alternating paths. Base: any
// flip-flop covering an exposed block re-seats directly. Step: once
// flip-flop og re-seats, its matched block can release it, so every
// flip-flop covering that block re-seats too. This mirrors reverse()'s
// search relation exactly, so membership coincides with reverse()'s
// success on the same state.
func (e *evaluator) recomputeReach() {
	if e.reach == nil {
		e.reach = newBitset(len(e.p.ffSigs))
	} else {
		for w := range e.reach {
			e.reach[w] = 0
		}
	}
	q := e.reachQ[:0]
	addCoverers := func(pi, bi int) {
		ph := e.p.phases[pi]
		b := &e.s.blocks[pi][bi]
		for _, fi := range ph.itemFFs[b.members[0]] {
			if g := ph.ffs[fi].global; !e.reach.has(g) && ph.ffCovers(fi, b) {
				e.reach.set(g)
				q = append(q, g)
			}
		}
	}
	for pi := range e.s.blocks {
		for bi := range e.s.blocks[pi] {
			if e.s.blocks[pi][bi].ff < 0 {
				addCoverers(pi, bi)
			}
		}
	}
	for qi := 0; qi < len(q); qi++ {
		og := q[qi]
		if obi := e.ownerBlock[og]; obi >= 0 {
			addCoverers(int(e.ownerPhase[og]), int(obi))
		}
	}
	e.reachQ = q[:0]
	e.reachValid = true
	e.reachGen++
}

// maximize restores maximality from any valid partial matching: shared
// visit stamps across consecutive failures, fresh stamp after each gain,
// repeated until a full clean pass (the standard Kuhn scan optimization —
// a failed shared-forest pass certifies no augmenting path remains).
func (e *evaluator) maximize() {
	for {
		e.stamp++
		progress := false
		for pi := range e.s.blocks {
			for bi := 0; bi < len(e.s.blocks[pi]); bi++ {
				if e.s.blocks[pi][bi].ff >= 0 {
					continue
				}
				if e.augment(pi, bi) {
					progress = true
					e.stamp++
				}
			}
		}
		if !progress {
			return
		}
	}
}

// --- elementary repairs ---

// repairGrown restores maximality after edges were removed at block
// (pi, bi) — its mask grew. If the flip-flop still covers, the matching is
// untouched and remains maximum (the graph only lost edges).
func (e *evaluator) repairGrown(pi, bi int) {
	b := &e.s.blocks[pi][bi]
	if b.ff < 0 {
		return
	}
	ph := e.p.phases[pi]
	if ph.ffCovers(b.ff, b) {
		return
	}
	g := e.release(pi, bi)
	e.stamp++
	if e.augment(pi, bi) {
		if !e.s.ffUsed.has(g) {
			e.stamp++
			e.reverse(g)
		}
		return
	}
	e.stamp++
	e.reverse(g)
}

// repairShrunk restores maximality after item `removed` left block
// (pi, bi) — its mask shrank, so the block may have gained flip-flop
// edges. The fast path prices the common case for free: an edge is new
// only if its flip-flop covers the shrunken block but was not adjacent
// to the removed item (otherwise it covered the old block too), and if
// no candidate qualifies the graph is unchanged and the matching is
// still maximum — no search runs, nothing is mutated.
//
// With a new edge present, a new augmenting path may pass *through* the
// block (head: some exposed block alternates to the block's freed
// flip-flop; tail: the block alternates to a free flip-flop over a new
// edge). The block's flip-flop is released and the forward search
// *excludes* it — a free flip-flop cannot sit in a path's interior, so
// a through-path's tail never uses it, and without the exclusion the
// search would re-take it trivially and starve the reverse search of
// the head, leaving the matching one short of maximum (the crossCheck
// audit caught exactly that drift on b12/1). The reverse search then
// hunts the head, or — when the forward search failed — re-seats the
// freed flip-flop.
func (e *evaluator) repairShrunk(pi, bi int, removed int32) {
	b := &e.s.blocks[pi][bi]
	ph := e.p.phases[pi]
	fresh := false
	for _, fi := range ph.itemFFs[b.members[0]] {
		if !ph.ffs[fi].adj.has(removed) && ph.ffCovers(fi, b) {
			fresh = true
			break
		}
	}
	if !fresh {
		return
	}
	g := e.release(pi, bi)
	e.stamp++
	if g >= 0 {
		e.visited[g] = e.stamp
	}
	if e.augment(pi, bi) {
		if g >= 0 {
			e.stamp++
			e.reverse(g)
		}
		return
	}
	if g >= 0 {
		e.stamp++
		e.reverse(g)
	}
}

// --- journaled structural primitives ---

func (e *evaluator) pushMember(pi, bi int, item int32) {
	b := &e.s.blocks[pi][bi]
	e.rec(jop{kind: jPush, pi: int8(pi), a: int32(bi), c: item})
	b.members = append(b.members, item)
	b.mask.set(item)
	e.setItemBlock(pi, item, int32(bi))
}

func (e *evaluator) takeMember(pi, bi, mi int) int32 {
	b := &e.s.blocks[pi][bi]
	item := b.members[mi]
	e.rec(jop{kind: jTake, pi: int8(pi), a: int32(bi), b: int32(mi), c: item})
	last := len(b.members) - 1
	b.members[mi] = b.members[last]
	b.members = b.members[:last]
	b.mask.clear(item)
	e.setItemBlock(pi, item, -1)
	return item
}

// removeBlock releases the block's flip-flop, swap-deletes the slot, and
// patches the owner entry of the block swapped into it. It returns the
// freed flip-flop's global index (-1 if the block was exposed) so the
// caller can run the deletion repair once the structure is consistent.
func (e *evaluator) removeBlock(pi, bi int) int32 {
	g := e.release(pi, bi)
	blocks := e.s.blocks[pi]
	last := len(blocks) - 1
	e.rec(jop{kind: jSwapRemove, pi: int8(pi), a: int32(bi), blk: blocks[bi]})
	for _, m := range blocks[bi].members {
		e.setItemBlock(pi, m, -1)
	}
	if bi != last {
		blocks[bi] = blocks[last]
		for _, m := range blocks[bi].members {
			e.setItemBlock(pi, m, int32(bi))
		}
		if f := blocks[bi].ff; f >= 0 {
			e.setOwner(e.p.phases[pi].ffs[f].global, int8(pi), int32(bi))
		}
	}
	blocks[last] = block{}
	e.s.blocks[pi] = blocks[:last]
	e.nblocks--
	return g
}

func (e *evaluator) appendSingleton(pi int, item int32) int {
	ph := e.p.phases[pi]
	b := block{members: []int32{item}, mask: newBitset(ph.n), ff: -1}
	b.mask.set(item)
	e.rec(jop{kind: jAppend, pi: int8(pi)})
	e.s.blocks[pi] = append(e.s.blocks[pi], b)
	e.nblocks++
	bi := len(e.s.blocks[pi]) - 1
	e.setItemBlock(pi, item, int32(bi))
	return bi
}

// --- moves ---

// merge fuses block bj into bi (caller checked canMerge) and returns the
// surviving block's index. Two elementary changes: delete left bj (reverse
// augment from its freed flip-flop), then grow bi's mask (grown repair).
func (e *evaluator) merge(pi, bi, bj int) int {
	blocks := e.s.blocks[pi]
	last := len(blocks) - 1
	bjBlk := blocks[bj] // member/mask buffers survive the swap-delete
	g := e.removeBlock(pi, bj)
	if bi == last {
		bi = bj // bi was swapped into the vacated slot
	}
	if g >= 0 {
		e.stamp++
		e.reverse(g)
	}
	a := &e.s.blocks[pi][bi]
	e.rec(jop{kind: jExtend, pi: int8(pi), a: int32(bi), b: int32(len(a.members))})
	a.members = append(a.members, bjBlk.members...)
	e.rec(jop{kind: jMaskOr, pi: int8(pi), a: int32(bi), m: bjBlk.mask})
	for w := range a.mask {
		a.mask[w] |= bjBlk.mask[w]
	}
	for _, m := range bjBlk.members {
		e.setItemBlock(pi, m, int32(bi))
	}
	e.repairGrown(pi, bi)
	e.check("merge")
	return bi
}

// relocate moves the member at position mi of block from into block to
// (caller checked canJoin on to). Elementary changes: shrink (or delete)
// the source block, then grow the target.
func (e *evaluator) relocate(pi, from, mi, to int) {
	var item int32
	if len(e.s.blocks[pi][from].members) == 1 {
		item = e.s.blocks[pi][from].members[0]
		last := len(e.s.blocks[pi]) - 1
		g := e.removeBlock(pi, from)
		if to == last {
			to = from // target was swapped into the vacated slot
		}
		if g >= 0 {
			e.stamp++
			e.reverse(g)
		}
	} else {
		item = e.takeMember(pi, from, mi)
		e.repairShrunk(pi, from, item)
	}
	e.pushMember(pi, to, item)
	e.repairGrown(pi, to)
	e.check("relocate")
}

// splitOut extracts the member at position mi of block bi (which must
// hold at least two members) into a fresh singleton block.
func (e *evaluator) splitOut(pi, bi, mi int) int {
	item := e.takeMember(pi, bi, mi)
	e.repairShrunk(pi, bi, item)
	nb := e.appendSingleton(pi, item)
	e.stamp++
	e.augment(pi, nb)
	e.check("splitOut")
	return nb
}

// dissolve peels block bi down to a singleton, each peeled member opening
// its own singleton block (the destroy half of destroy/repair).
func (e *evaluator) dissolve(pi, bi int) {
	for len(e.s.blocks[pi][bi].members) > 1 {
		e.splitOut(pi, bi, len(e.s.blocks[pi][bi].members)-1)
	}
}

// check cross-scores the evaluator against the reference from-scratch
// rematch when crossCheck debugging is on; a mismatch is a repair bug.
func (e *evaluator) check(move string) {
	if !e.crossCheck {
		return
	}
	if got, want := e.cells(), referenceCells(e.p, e.s); got != want {
		panic(fmt.Sprintf("refine: incremental %s repair drifted: %d cells, reference rematch %d", move, got, want))
	}
}

// referenceCells prices a solution with the PR 6 reference path: clone,
// strip the matching, rerun the per-source rematch from scratch. It shares
// none of the evaluator's incremental state, which makes it the oracle the
// property tests and crossCheck mode compare against.
func referenceCells(p *Problem, s *Solution) int {
	c := s.clone()
	for pi := range c.blocks {
		for bi := range c.blocks[pi] {
			c.blocks[pi][bi].ff = -1
		}
	}
	for w := range c.ffUsed {
		c.ffUsed[w] = 0
	}
	augmentAll(p, c)
	return c.cells(p)
}
