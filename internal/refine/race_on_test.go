//go:build race

package refine

// raceEnabled lets the corpus and determinism suites shrink their die sets
// under the race detector, whose 5-20x slowdown would otherwise dominate CI.
const raceEnabled = true
