// Package netlist defines the gate-level netlist data structure shared by
// every subsystem in wcm3d: the synthetic benchmark generator, the placer,
// the static timing analyzer, the fault simulator, the ATPG engine, and the
// wrapper-cell minimization flow itself.
//
// The representation is index based: every signal in the circuit is the
// output of exactly one Gate, and a SignalID is the index of that driving
// gate in Netlist.Gates. Primary inputs, inbound-TSV landing pads and
// constant sources are modeled as pseudo-gates with no fanin so that the
// "one driver per signal" invariant holds everywhere.
package netlist

import "fmt"

// SignalID identifies a signal by the index of its driving gate in
// Netlist.Gates. The zero value is a valid ID (the first gate); use
// InvalidSignal for "no signal".
type SignalID int32

// InvalidSignal is the sentinel for an absent signal reference.
const InvalidSignal SignalID = -1

// GateType enumerates the primitive cells understood by the whole toolchain.
// The set intentionally mirrors a small structural subset of a standard-cell
// library: it is rich enough to express synthesized ITC'99-class logic and
// the DFT edit operations (test-mode multiplexers and observation XORs).
type GateType uint8

// Gate types. Input-like pseudo gates come first, then combinational cells,
// then the sequential cell.
const (
	// GateInput is a primary input: a pseudo-gate with no fanin.
	GateInput GateType = iota + 1
	// GateTSVIn is the landing pad of an inbound TSV: electrically an
	// input, but floating (uncontrollable) during pre-bond test unless a
	// wrapper cell or reused scan flip-flop drives it.
	GateTSVIn
	// GateConst0 and GateConst1 are constant sources.
	GateConst0
	GateConst1
	// GateBuf through GateMux2 are combinational cells. GateMux2 has the
	// fanin order (sel, a, b) and computes "sel ? b : a".
	GateBuf
	GateNot
	GateAnd
	GateNand
	GateOr
	GateNor
	GateXor
	GateXnor
	GateMux2
	// GateDFF is a D flip-flop; fanin[0] is D and the gate output is Q.
	// All flip-flops in this project are scan flip-flops: in test mode Q
	// is fully controllable and D is fully observable through the scan
	// chain.
	GateDFF
)

// String returns the canonical upper-case mnemonic used by the .bench
// dialect parser and writer.
func (t GateType) String() string {
	switch t {
	case GateInput:
		return "INPUT"
	case GateTSVIn:
		return "TSV_IN"
	case GateConst0:
		return "CONST0"
	case GateConst1:
		return "CONST1"
	case GateBuf:
		return "BUF"
	case GateNot:
		return "NOT"
	case GateAnd:
		return "AND"
	case GateNand:
		return "NAND"
	case GateOr:
		return "OR"
	case GateNor:
		return "NOR"
	case GateXor:
		return "XOR"
	case GateXnor:
		return "XNOR"
	case GateMux2:
		return "MUX"
	case GateDFF:
		return "DFF"
	default:
		return fmt.Sprintf("GateType(%d)", uint8(t))
	}
}

// IsSource reports whether the type is a pseudo-gate with no fanin.
func (t GateType) IsSource() bool {
	switch t {
	case GateInput, GateTSVIn, GateConst0, GateConst1:
		return true
	default:
		return false
	}
}

// IsCombinational reports whether the type is a logic cell with fanin that
// evaluates combinationally.
func (t GateType) IsCombinational() bool {
	switch t {
	case GateBuf, GateNot, GateAnd, GateNand, GateOr, GateNor,
		GateXor, GateXnor, GateMux2:
		return true
	default:
		return false
	}
}

// MinFanin returns the minimum legal fanin count for the type.
func (t GateType) MinFanin() int {
	switch t {
	case GateInput, GateTSVIn, GateConst0, GateConst1:
		return 0
	case GateBuf, GateNot, GateDFF:
		return 1
	case GateMux2:
		return 3
	default:
		return 2
	}
}

// MaxFanin returns the maximum legal fanin count for the type, or -1 when
// the cell accepts an arbitrary number of inputs.
func (t GateType) MaxFanin() int {
	switch t {
	case GateInput, GateTSVIn, GateConst0, GateConst1:
		return 0
	case GateBuf, GateNot, GateDFF:
		return 1
	case GateMux2:
		return 3
	default:
		return -1 // n-input AND/OR families
	}
}

// Gate is one cell instance. Gates are stored by value inside
// Netlist.Gates; the gate's SignalID is its slice index.
type Gate struct {
	// Type is the primitive cell type.
	Type GateType
	// Name is the signal name of the gate output. Names are unique
	// within a netlist.
	Name string
	// Fanin lists the input signals in pin order.
	Fanin []SignalID
}

// Port flags classify the role a signal plays at the die boundary.
type PortClass uint8

// Port classes for Netlist.Outputs entries.
const (
	// PortPO marks an ordinary primary output pad.
	PortPO PortClass = iota + 1
	// PortTSVOut marks an outbound TSV: a die output that is unobservable
	// during pre-bond test unless a wrapper cell or reused scan flip-flop
	// captures it.
	PortTSVOut
)

// String returns the mnemonic used in the .bench dialect.
func (c PortClass) String() string {
	switch c {
	case PortPO:
		return "OUTPUT"
	case PortTSVOut:
		return "TSV_OUT"
	default:
		return fmt.Sprintf("PortClass(%d)", uint8(c))
	}
}

// Output is one die output port: a named observation point on a signal.
type Output struct {
	// Name is the port name (unique among outputs).
	Name string
	// Signal is the observed signal.
	Signal SignalID
	// Class distinguishes bonded-out pads from outbound TSVs.
	Class PortClass
}
