package netlist

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const sampleBench = `
# sample die
INPUT(a)
INPUT(b)
TSV_IN(t0)
TSV_IN(t1)
OUTPUT(z)
TSV_OUT(u0) = n1
q0 = DFF(n2)
n1 = NAND(a, t0)
n2 = XOR(n1, q0)
n3 = OR(t1, b)
z = AND(n2, n3)
`

func TestParseSample(t *testing.T) {
	n, err := ParseString("sample", sampleBench)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	st := CollectStats(n)
	if st.PIs != 2 || st.InboundTSVs != 2 || st.OutboundTSVs != 1 || st.ScanFFs != 1 {
		t.Errorf("stats: %+v", st)
	}
	if st.LogicGates != 4 {
		t.Errorf("LogicGates = %d, want 4", st.LogicGates)
	}
	// TSV_OUT(u0) observes n1.
	out := n.Outputs[n.OutboundTSVs()[0]]
	if out.Name != "u0" || n.NameOf(out.Signal) != "n1" {
		t.Errorf("TSV_OUT port wrong: %+v", out)
	}
}

func TestParseForwardReference(t *testing.T) {
	// z is defined after it is used.
	src := `
INPUT(a)
y = NOT(z)
z = BUF(a)
OUTPUT(y)
`
	n, err := ParseString("fwd", src)
	if err != nil {
		t.Fatalf("forward reference should parse: %v", err)
	}
	if n.NumGates() != 3 {
		t.Errorf("NumGates = %d, want 3", n.NumGates())
	}
}

func TestParseOutputShorthand(t *testing.T) {
	// OUTPUT(x) with no '=' observes the signal named x.
	src := `
INPUT(a)
x = BUF(a)
OUTPUT(x)
TSV_OUT(x2) = x
`
	n, err := ParseString("sh", src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(n.Outputs) != 2 {
		t.Fatalf("outputs = %d, want 2", len(n.Outputs))
	}
	if n.NameOf(n.Outputs[0].Signal) != "x" || n.Outputs[0].Class != PortPO {
		t.Errorf("OUTPUT shorthand wrong: %+v", n.Outputs[0])
	}
	if n.Outputs[1].Class != PortTSVOut {
		t.Errorf("TSV_OUT class wrong: %+v", n.Outputs[1])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"garbage", "INPUT(a)\nwhat is this\n", "unrecognized"},
		{"unknown-type", "INPUT(a)\nx = FROB(a)\n", "unknown gate type"},
		{"unknown-signal", "INPUT(a)\nx = NOT(missing)\nOUTPUT(x)\n", "unknown signal"},
		{"dup", "INPUT(a)\nINPUT(a)\n", "duplicate"},
		{"bad-output", "INPUT(a)\nOUTPUT(nope)\n", "unknown signal"},
		{"empty-fanin", "INPUT(a)\nx = AND(a, )\n", "empty fanin"},
		{"malformed-decl", "INPUT a\n", "unrecognized"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseString(c.name, c.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(strings.ToLower(err.Error()), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestParseErrorTypes(t *testing.T) {
	_, err := ParseString("e", "INPUT(a)\nINPUT(a)\n")
	if !errors.Is(err, ErrDuplicateName) {
		t.Errorf("want ErrDuplicateName, got %v", err)
	}
	_, err = ParseString("e", "INPUT(a)\nx = NOT(zz)\n")
	if !errors.Is(err, ErrUnknownSignal) {
		t.Errorf("want ErrUnknownSignal, got %v", err)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	n1, err := ParseString("rt", sampleBench)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var sb strings.Builder
	if err := n1.Write(&sb); err != nil {
		t.Fatalf("write: %v", err)
	}
	n2, err := ParseString("rt", sb.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sb.String())
	}
	if n1.NumGates() != n2.NumGates() {
		t.Fatalf("gate count changed: %d -> %d", n1.NumGates(), n2.NumGates())
	}
	for i := range n1.Gates {
		g1, g2 := &n1.Gates[i], &n2.Gates[i]
		want, ok := n2.SignalByName(g1.Name)
		if !ok {
			t.Fatalf("signal %q lost in round trip", g1.Name)
		}
		if n2.TypeOf(want) != g1.Type {
			t.Errorf("signal %q type changed: %s -> %s", g1.Name, g1.Type, n2.TypeOf(want))
		}
		if len(g1.Fanin) != len(g2.Fanin) {
			t.Errorf("signal %q fanin arity changed", g1.Name)
		}
	}
	if len(n1.Outputs) != len(n2.Outputs) {
		t.Fatalf("output count changed")
	}
	for i := range n1.Outputs {
		o1, o2 := n1.Outputs[i], n2.Outputs[i]
		if o1.Name != o2.Name || o1.Class != o2.Class ||
			n1.NameOf(o1.Signal) != n2.NameOf(o2.Signal) {
			t.Errorf("output %d changed: %+v -> %+v", i, o1, o2)
		}
	}
}

func TestParseGateAliases(t *testing.T) {
	src := `
INPUT(a)
x1 = BUFF(a)
x2 = INV(a)
x3 = MUX2(a, x1, x2)
OUTPUT(x3)
`
	n, err := ParseString("alias", src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	id, _ := n.SignalByName("x1")
	if n.TypeOf(id) != GateBuf {
		t.Error("BUFF alias not recognized")
	}
	id, _ = n.SignalByName("x2")
	if n.TypeOf(id) != GateNot {
		t.Error("INV alias not recognized")
	}
}

// TestQuickGeneratedRoundTrip: random generated circuits must survive
// Write→Parse with identical structure (property-based).
func TestQuickGeneratedRoundTrip(t *testing.T) {
	f := func(seed int64, ng uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomDAG(rng, 20+int(ng)%60)
		if n.Validate() != nil {
			return true // cyclic draws are not round-trip candidates
		}
		var sb strings.Builder
		if err := n.Write(&sb); err != nil {
			return false
		}
		m, err := ParseString(n.Name, sb.String())
		if err != nil {
			return false
		}
		if m.NumGates() != n.NumGates() || len(m.Outputs) != len(n.Outputs) {
			return false
		}
		for i := range n.Gates {
			a, b := &n.Gates[i], &m.Gates[i]
			if a.Name != b.Name || a.Type != b.Type || len(a.Fanin) != len(b.Fanin) {
				return false
			}
			for p := range a.Fanin {
				if n.NameOf(a.Fanin[p]) != m.NameOf(b.Fanin[p]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestParserRejectsJunkLines: a sampling of malformed inputs must error,
// never panic.
func TestParserRejectsJunkLines(t *testing.T) {
	junk := []string{
		"INPUT(", "OUTPUT)", "x == AND(a)", "x = AND a, b",
		"x = (a, b)", "= AND(a, b)", "x = AND((a, b)", "TSV_OUT() = x",
		"x = DFF(a, b)", "x = CONST0(a)",
	}
	for _, line := range junk {
		src := "INPUT(a)\n" + line + "\n"
		if _, err := ParseString("junk", src); err == nil {
			t.Errorf("accepted junk line %q", line)
		}
	}
}
