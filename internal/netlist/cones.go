package netlist

import (
	"math/bits"

	"wcm3d/internal/par"
)

// BitSet is a fixed-capacity bit vector keyed by SignalID. Cone membership
// of every TSV and flip-flop is stored this way so that the graph
// constructor can test fan-in/fan-out cone overlap in O(words) time.
type BitSet struct {
	words []uint64
	n     int
}

// NewBitSet returns a set able to hold n signals.
func NewBitSet(n int) *BitSet {
	return &BitSet{words: make([]uint64, (n+63)/64), n: n}
}

// Set marks the signal as a member.
func (b *BitSet) Set(id SignalID) { b.words[id>>6] |= 1 << (uint(id) & 63) }

// Has reports membership.
func (b *BitSet) Has(id SignalID) bool {
	return b.words[id>>6]&(1<<(uint(id)&63)) != 0
}

// Count returns the number of members.
func (b *BitSet) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Intersects reports whether the two sets share any member. Both sets must
// have the same capacity.
func (b *BitSet) Intersects(o *BitSet) bool {
	for i, w := range b.words {
		if w&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectCount returns the number of shared members.
func (b *BitSet) IntersectCount(o *BitSet) int {
	c := 0
	for i, w := range b.words {
		c += bits.OnesCount64(w & o.words[i])
	}
	return c
}

// IntersectsExcluding reports whether the two sets share any member outside
// the excluded set.
func (b *BitSet) IntersectsExcluding(o, excl *BitSet) bool {
	for i, w := range b.words {
		if w&o.words[i]&^excl.words[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectCountExcluding counts shared members outside the excluded set.
func (b *BitSet) IntersectCountExcluding(o, excl *BitSet) int {
	c := 0
	for i, w := range b.words {
		c += bits.OnesCount64(w & o.words[i] &^ excl.words[i])
	}
	return c
}

// AndNot returns a new set holding the members of b absent from excl.
func (b *BitSet) AndNot(excl *BitSet) *BitSet {
	return b.AndNotInto(excl, &BitSet{words: make([]uint64, len(b.words)), n: b.n})
}

// AndNotInto writes the members of b absent from excl into dst (every
// word of which is overwritten) and returns dst. dst must have the same
// capacity as b; it is how pooled callers run the per-node cone masking
// without allocating per pair.
func (b *BitSet) AndNotInto(excl, dst *BitSet) *BitSet {
	for i, w := range b.words {
		dst.words[i] = w &^ excl.words[i]
	}
	return dst
}

// WordSpan returns the half-open 64-bit-word range [lo, hi) outside which
// the set is empty (0, 0 for an empty set). Cones are spatially local, so
// pair tests bounded to the overlap of two spans skip most of the words a
// full-width scan would touch.
func (b *BitSet) WordSpan() (lo, hi int) {
	hi = len(b.words)
	for lo < hi && b.words[lo] == 0 {
		lo++
	}
	for hi > lo && b.words[hi-1] == 0 {
		hi--
	}
	return lo, hi
}

// IntersectsSpan is Intersects restricted to words [lo, hi) — callers
// pass the overlap of the two sets' WordSpans for the same answer at a
// fraction of the scan.
func (b *BitSet) IntersectsSpan(o *BitSet, lo, hi int) bool {
	for i := lo; i < hi; i++ {
		if b.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectCountSpan is IntersectCount restricted to words [lo, hi).
func (b *BitSet) IntersectCountSpan(o *BitSet, lo, hi int) int {
	c := 0
	for i := lo; i < hi; i++ {
		c += bits.OnesCount64(b.words[i] & o.words[i])
	}
	return c
}

// Or merges o into b.
func (b *BitSet) Or(o *BitSet) {
	for i, w := range o.words {
		b.words[i] |= w
	}
}

// Members returns the member IDs in ascending order.
func (b *BitSet) Members() []SignalID {
	var out []SignalID
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			out = append(out, SignalID(wi*64+bit))
			w &= w - 1
		}
	}
	return out
}

// Clone returns a copy.
func (b *BitSet) Clone() *BitSet {
	return &BitSet{words: append([]uint64(nil), b.words...), n: b.n}
}

// FaninCone returns the combinational fan-in cone of a signal: the signal
// itself plus everything reachable backward through combinational gates,
// stopping at (and including) sources and flip-flop outputs.
func (n *Netlist) FaninCone(id SignalID) *BitSet {
	n.ensureDerived()
	cone, _ := n.faninCone(id, nil, nil)
	return cone
}

// faninCone is FaninCone with a caller-owned DFS stack and an optional
// arena: the traversal appends into the stack and hands it back so batch
// builders (NewConeSet workers) amortize one stack allocation across many
// cones, and the cone bitset draws from the arena's recycled storage when
// one is supplied. The caller must have run ensureDerived already — the
// walk reads the flat struct-of-arrays layout, not the Gate structs.
func (n *Netlist) faninCone(id SignalID, stack []SignalID, a *Arena) (*BitSet, []SignalID) {
	cone := a.NewBitSet(len(n.Gates))
	stack = append(stack[:0], id)
	cone.Set(id)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t := n.gateType[s]
		if t.IsSource() || (t == GateDFF && s != id) {
			continue // stop at sequential/primary boundaries
		}
		for _, f := range n.faninFlat[n.faninOff[s]:n.faninOff[s+1]] {
			if !cone.Has(f) {
				cone.Set(f)
				stack = append(stack, f)
			}
		}
	}
	return cone, stack
}

// FanoutCone returns the combinational fan-out cone of a signal: the signal
// itself plus everything reachable forward through combinational gates,
// stopping at (and including) flip-flop D pins. The flip-flop gate itself is
// included as the stopping point; its own fanout is not traversed.
func (n *Netlist) FanoutCone(id SignalID) *BitSet {
	n.ensureDerived()
	cone, _ := n.fanoutCone(id, nil, nil)
	return cone
}

// fanoutCone is FanoutCone with a caller-owned DFS stack and an optional
// arena (see faninCone). The caller must have run ensureDerived already.
func (n *Netlist) fanoutCone(id SignalID, stack []SignalID, a *Arena) (*BitSet, []SignalID) {
	cone := a.NewBitSet(len(n.Gates))
	stack = append(stack[:0], id)
	cone.Set(id)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.gateType[s] == GateDFF && s != id {
			continue // captured by a flip-flop; stop
		}
		for _, fo := range n.fanoutFlat[n.fanoutOff[s]:n.fanoutOff[s+1]] {
			if !cone.Has(fo) {
				cone.Set(fo)
				stack = append(stack, fo)
			}
		}
	}
	return cone, stack
}

// ConeSet holds the precomputed fan-in and fan-out cones for the signals
// the WCM flow cares about (flip-flops and TSV endpoints). Building cones
// once up front turns every pairwise overlap test during graph construction
// into a cheap bitset intersection.
//
// Concurrency: lookups of precomputed signals are read-only and safe from
// any number of goroutines. Looking up a signal that was NOT precomputed
// fills the cache and is not safe concurrently — parallel consumers must
// restrict themselves to the signals the set was built with.
type ConeSet struct {
	netlist *Netlist
	fanin   map[SignalID]*BitSet
	fanout  map[SignalID]*BitSet
}

// NewConeSet precomputes cones for the given signals, using every core.
func NewConeSet(n *Netlist, signals []SignalID) *ConeSet {
	return NewConeSetWorkers(n, signals, 0)
}

// NewConeSetWorkers is NewConeSet over a bounded worker pool (<= 0 means
// GOMAXPROCS). Each cone is an independent read-only traversal of the
// netlist, so the per-signal DFS fans out across workers; each worker
// reuses one DFS stack across all the cones it builds. The result is
// identical for every worker count.
func NewConeSetWorkers(n *Netlist, signals []SignalID, workers int) *ConeSet {
	return NewConeSetArena(n, signals, workers, nil)
}

// NewConeSetArena is NewConeSetWorkers with the cone bitsets drawn from
// an arena (nil for plain allocation). The cones live exactly as long as
// the arena: callers that Release must not touch the ConeSet afterwards.
// Cone contents are bit-identical to the unpooled build at every worker
// count — the arena only changes where the words come from.
func NewConeSetArena(n *Netlist, signals []SignalID, workers int, a *Arena) *ConeSet {
	cs := &ConeSet{
		netlist: n,
		fanin:   make(map[SignalID]*BitSet, len(signals)),
		fanout:  make(map[SignalID]*BitSet, len(signals)),
	}
	// The fanout index is built lazily under a plain flag; force it here so
	// the workers only ever read derived state.
	n.ensureDerived()
	w := par.Workers(workers, len(signals))
	fi := make([]*BitSet, len(signals))
	fo := make([]*BitSet, len(signals))
	stacks := make([][]SignalID, w)
	for i := range stacks {
		stacks[i] = getStack()
	}
	par.Do(w, len(signals), func(worker, i int) {
		s := signals[i]
		stack := stacks[worker]
		fi[i], stack = n.faninCone(s, stack, a)
		fo[i], stack = n.fanoutCone(s, stack, a)
		stacks[worker] = stack
	})
	for i := range stacks {
		putStack(stacks[i])
	}
	for i, s := range signals {
		cs.fanin[s] = fi[i]
		cs.fanout[s] = fo[i]
	}
	return cs
}

// Fanin returns the precomputed fan-in cone, computing and caching it if the
// signal was not in the initial set.
func (cs *ConeSet) Fanin(s SignalID) *BitSet {
	c, ok := cs.fanin[s]
	if !ok {
		c = cs.netlist.FaninCone(s)
		cs.fanin[s] = c
	}
	return c
}

// Fanout returns the precomputed fan-out cone, computing and caching it if
// the signal was not in the initial set.
func (cs *ConeSet) Fanout(s SignalID) *BitSet {
	c, ok := cs.fanout[s]
	if !ok {
		c = cs.netlist.FanoutCone(s)
		cs.fanout[s] = c
	}
	return c
}

// FanoutOverlap reports whether the fan-out cones of two signals share any
// gate — the condition the paper's Algorithm 1 tests before allowing a scan
// flip-flop to be shared "safely" with an inbound TSV.
func (cs *ConeSet) FanoutOverlap(a, b SignalID) bool {
	return cs.Fanout(a).Intersects(cs.Fanout(b))
}

// FaninOverlap reports whether the fan-in cones of two signals share any
// gate — the analogous condition on the observation side (outbound TSVs).
func (cs *ConeSet) FaninOverlap(a, b SignalID) bool {
	return cs.Fanin(a).Intersects(cs.Fanin(b))
}
