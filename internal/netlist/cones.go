package netlist

import "math/bits"

// BitSet is a fixed-capacity bit vector keyed by SignalID. Cone membership
// of every TSV and flip-flop is stored this way so that the graph
// constructor can test fan-in/fan-out cone overlap in O(words) time.
type BitSet struct {
	words []uint64
	n     int
}

// NewBitSet returns a set able to hold n signals.
func NewBitSet(n int) *BitSet {
	return &BitSet{words: make([]uint64, (n+63)/64), n: n}
}

// Set marks the signal as a member.
func (b *BitSet) Set(id SignalID) { b.words[id>>6] |= 1 << (uint(id) & 63) }

// Has reports membership.
func (b *BitSet) Has(id SignalID) bool {
	return b.words[id>>6]&(1<<(uint(id)&63)) != 0
}

// Count returns the number of members.
func (b *BitSet) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Intersects reports whether the two sets share any member. Both sets must
// have the same capacity.
func (b *BitSet) Intersects(o *BitSet) bool {
	for i, w := range b.words {
		if w&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectCount returns the number of shared members.
func (b *BitSet) IntersectCount(o *BitSet) int {
	c := 0
	for i, w := range b.words {
		c += bits.OnesCount64(w & o.words[i])
	}
	return c
}

// IntersectsExcluding reports whether the two sets share any member outside
// the excluded set.
func (b *BitSet) IntersectsExcluding(o, excl *BitSet) bool {
	for i, w := range b.words {
		if w&o.words[i]&^excl.words[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectCountExcluding counts shared members outside the excluded set.
func (b *BitSet) IntersectCountExcluding(o, excl *BitSet) int {
	c := 0
	for i, w := range b.words {
		c += bits.OnesCount64(w & o.words[i] &^ excl.words[i])
	}
	return c
}

// Or merges o into b.
func (b *BitSet) Or(o *BitSet) {
	for i, w := range o.words {
		b.words[i] |= w
	}
}

// Members returns the member IDs in ascending order.
func (b *BitSet) Members() []SignalID {
	var out []SignalID
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			out = append(out, SignalID(wi*64+bit))
			w &= w - 1
		}
	}
	return out
}

// Clone returns a copy.
func (b *BitSet) Clone() *BitSet {
	return &BitSet{words: append([]uint64(nil), b.words...), n: b.n}
}

// FaninCone returns the combinational fan-in cone of a signal: the signal
// itself plus everything reachable backward through combinational gates,
// stopping at (and including) sources and flip-flop outputs.
func (n *Netlist) FaninCone(id SignalID) *BitSet {
	cone := NewBitSet(len(n.Gates))
	stack := []SignalID{id}
	cone.Set(id)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		g := &n.Gates[s]
		if g.Type.IsSource() || (g.Type == GateDFF && s != id) {
			continue // stop at sequential/primary boundaries
		}
		for _, f := range g.Fanin {
			if !cone.Has(f) {
				cone.Set(f)
				stack = append(stack, f)
			}
		}
	}
	return cone
}

// FanoutCone returns the combinational fan-out cone of a signal: the signal
// itself plus everything reachable forward through combinational gates,
// stopping at (and including) flip-flop D pins. The flip-flop gate itself is
// included as the stopping point; its own fanout is not traversed.
func (n *Netlist) FanoutCone(id SignalID) *BitSet {
	n.ensureDerived()
	cone := NewBitSet(len(n.Gates))
	stack := []SignalID{id}
	cone.Set(id)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.Gates[s].Type == GateDFF && s != id {
			continue // captured by a flip-flop; stop
		}
		for _, fo := range n.fanouts[s] {
			if !cone.Has(fo) {
				cone.Set(fo)
				stack = append(stack, fo)
			}
		}
	}
	return cone
}

// ConeSet holds the precomputed fan-in and fan-out cones for the signals
// the WCM flow cares about (flip-flops and TSV endpoints). Building cones
// once up front turns every pairwise overlap test during graph construction
// into a cheap bitset intersection.
type ConeSet struct {
	netlist *Netlist
	fanin   map[SignalID]*BitSet
	fanout  map[SignalID]*BitSet
}

// NewConeSet precomputes cones for the given signals.
func NewConeSet(n *Netlist, signals []SignalID) *ConeSet {
	cs := &ConeSet{
		netlist: n,
		fanin:   make(map[SignalID]*BitSet, len(signals)),
		fanout:  make(map[SignalID]*BitSet, len(signals)),
	}
	for _, s := range signals {
		cs.fanin[s] = n.FaninCone(s)
		cs.fanout[s] = n.FanoutCone(s)
	}
	return cs
}

// Fanin returns the precomputed fan-in cone, computing and caching it if the
// signal was not in the initial set.
func (cs *ConeSet) Fanin(s SignalID) *BitSet {
	c, ok := cs.fanin[s]
	if !ok {
		c = cs.netlist.FaninCone(s)
		cs.fanin[s] = c
	}
	return c
}

// Fanout returns the precomputed fan-out cone, computing and caching it if
// the signal was not in the initial set.
func (cs *ConeSet) Fanout(s SignalID) *BitSet {
	c, ok := cs.fanout[s]
	if !ok {
		c = cs.netlist.FanoutCone(s)
		cs.fanout[s] = c
	}
	return c
}

// FanoutOverlap reports whether the fan-out cones of two signals share any
// gate — the condition the paper's Algorithm 1 tests before allowing a scan
// flip-flop to be shared "safely" with an inbound TSV.
func (cs *ConeSet) FanoutOverlap(a, b SignalID) bool {
	return cs.Fanout(a).Intersects(cs.Fanout(b))
}

// FaninOverlap reports whether the fan-in cones of two signals share any
// gate — the analogous condition on the observation side (outbound TSVs).
func (cs *ConeSet) FaninOverlap(a, b SignalID) bool {
	return cs.Fanin(a).Intersects(cs.Fanin(b))
}
