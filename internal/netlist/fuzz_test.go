package netlist

import (
	"strings"
	"testing"
)

// FuzzParse exercises the .bench parser with arbitrary input: it must
// reject or accept but never panic, and anything it accepts must survive a
// write/parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(sampleBench)
	f.Add("INPUT(a)\nz = NOT(a)\nOUTPUT(z)\n")
	f.Add("TSV_IN(t)\nq = DFF(t)\nTSV_OUT(u) = q\n")
	f.Add("x = AND(a, b)\n")
	f.Add("# only a comment\n")
	f.Add("INPUT(a)\nz = MUX(a, a, a)\nOUTPUT(z)")
	f.Fuzz(func(t *testing.T, src string) {
		n, err := ParseString("fuzz", src)
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := n.Write(&sb); err != nil {
			t.Fatalf("accepted netlist fails to write: %v", err)
		}
		if _, err := ParseString("fuzz2", sb.String()); err != nil {
			t.Fatalf("written netlist fails to reparse: %v\n%s", err, sb.String())
		}
	})
}
