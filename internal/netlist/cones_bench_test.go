package netlist_test

import (
	"testing"

	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
)

// BenchmarkConeSet measures precomputing every WCM-relevant cone on a
// b20-class die — the first stage of the single-die hot path — serially
// and across all cores.
func BenchmarkConeSet(b *testing.B) {
	n, err := netgen.Generate(netgen.ITC99Circuit("b20")[0], 1)
	if err != nil {
		b.Fatal(err)
	}
	var signals []netlist.SignalID
	signals = append(signals, n.InboundTSVs()...)
	signals = append(signals, n.FlipFlops()...)
	for _, p := range n.OutboundTSVs() {
		signals = append(signals, n.Outputs[p].Signal)
	}
	b.ReportMetric(float64(len(signals)), "cones")
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			arena := netlist.NewArena()
			for i := 0; i < b.N; i++ {
				netlist.NewConeSetArena(n, signals, bc.workers, arena)
				arena.Release()
			}
		})
	}
}
