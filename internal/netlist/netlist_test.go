package netlist

import (
	"errors"
	"strings"
	"testing"
)

// buildSmall constructs a small mixed circuit by hand:
//
//	INPUT(a) INPUT(b) TSV_IN(t0)
//	q = DFF(n2)
//	n1 = AND(a, t0)
//	n2 = XOR(n1, q)
//	OUTPUT(z) = n2
//	TSV_OUT(u0) = n1
func buildSmall(t *testing.T) (*Netlist, map[string]SignalID) {
	t.Helper()
	n := New("small")
	ids := map[string]SignalID{}
	add := func(typ GateType, name string, fanin ...SignalID) SignalID {
		id, err := n.AddGate(typ, name, fanin...)
		if err != nil {
			t.Fatalf("AddGate(%s): %v", name, err)
		}
		ids[name] = id
		return id
	}
	a := add(GateInput, "a")
	b := add(GateInput, "b")
	_ = b
	t0 := add(GateTSVIn, "t0")
	n1 := add(GateAnd, "n1", a, t0)
	// DFF references n2 which doesn't exist yet; build n2 first then DFF,
	// then rewire to create the feedback through the FF.
	q := add(GateDFF, "q", n1) // placeholder D
	n2 := add(GateXor, "n2", n1, q)
	if err := n.RewireFanin(q, 0, n2); err != nil {
		t.Fatalf("RewireFanin: %v", err)
	}
	if err := n.AddOutput("z", n2, PortPO); err != nil {
		t.Fatalf("AddOutput z: %v", err)
	}
	if err := n.AddOutput("u0", n1, PortTSVOut); err != nil {
		t.Fatalf("AddOutput u0: %v", err)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return n, ids
}

func TestAddGateValidation(t *testing.T) {
	n := New("t")
	if _, err := n.AddGate(GateAnd, "g"); err == nil {
		t.Error("AND with no fanin should fail")
	}
	if _, err := n.AddGate(GateInput, ""); err == nil {
		t.Error("empty name should fail")
	}
	a, err := n.AddGate(GateInput, "a")
	if err != nil {
		t.Fatalf("AddGate: %v", err)
	}
	if _, err := n.AddGate(GateInput, "a"); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("duplicate name: got %v, want ErrDuplicateName", err)
	}
	if _, err := n.AddGate(GateNot, "x", SignalID(99)); !errors.Is(err, ErrUnknownSignal) {
		t.Errorf("bad fanin: got %v, want ErrUnknownSignal", err)
	}
	if _, err := n.AddGate(GateNot, "x", a, a); err == nil {
		t.Error("NOT with two fanins should fail")
	}
	if _, err := n.AddGate(GateMux2, "m", a, a); err == nil {
		t.Error("MUX with two fanins should fail")
	}
}

func TestClassifiers(t *testing.T) {
	n, _ := buildSmall(t)
	if got := len(n.Inputs()); got != 2 {
		t.Errorf("Inputs: got %d, want 2", got)
	}
	if got := len(n.InboundTSVs()); got != 1 {
		t.Errorf("InboundTSVs: got %d, want 1", got)
	}
	if got := len(n.FlipFlops()); got != 1 {
		t.Errorf("FlipFlops: got %d, want 1", got)
	}
	if got := len(n.OutboundTSVs()); got != 1 {
		t.Errorf("OutboundTSVs: got %d, want 1", got)
	}
	if got := len(n.PrimaryOutputs()); got != 1 {
		t.Errorf("PrimaryOutputs: got %d, want 1", got)
	}
	if got := n.NumLogicGates(); got != 2 {
		t.Errorf("NumLogicGates: got %d, want 2 (AND, XOR)", got)
	}
	st := CollectStats(n)
	if st.TSVs() != 2 || st.ScanFFs != 1 || st.LogicGates != 2 {
		t.Errorf("CollectStats: got %+v", st)
	}
}

func TestTopoOrderAndLevels(t *testing.T) {
	n, ids := buildSmall(t)
	order := n.TopoOrder()
	if len(order) != n.NumGates() {
		t.Fatalf("TopoOrder covers %d of %d gates", len(order), n.NumGates())
	}
	pos := make(map[SignalID]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	// Every combinational gate must come after its fanins.
	for i := range n.Gates {
		g := &n.Gates[i]
		if !g.Type.IsCombinational() {
			continue
		}
		for _, f := range g.Fanin {
			if pos[f] >= pos[SignalID(i)] {
				t.Errorf("gate %s at %d before fanin %s at %d",
					g.Name, pos[SignalID(i)], n.NameOf(f), pos[f])
			}
		}
	}
	if lvl := n.Level(ids["a"]); lvl != 0 {
		t.Errorf("Level(a) = %d, want 0", lvl)
	}
	if lvl := n.Level(ids["n1"]); lvl != 1 {
		t.Errorf("Level(n1) = %d, want 1", lvl)
	}
	if lvl := n.Level(ids["n2"]); lvl != 2 {
		t.Errorf("Level(n2) = %d, want 2", lvl)
	}
	if n.MaxLevel() != 2 {
		t.Errorf("MaxLevel = %d, want 2", n.MaxLevel())
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	n := New("cyc")
	a := n.MustAddGate(GateInput, "a")
	g1 := n.MustAddGate(GateAnd, "g1", a, a)
	g2 := n.MustAddGate(GateOr, "g2", g1, a)
	if err := n.RewireFanin(g1, 1, g2); err != nil {
		t.Fatalf("RewireFanin: %v", err)
	}
	if err := n.Validate(); err == nil {
		t.Error("combinational cycle not detected")
	} else if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestDFFBreaksCycle(t *testing.T) {
	// A DFF in a loop is sequential, not combinational: must validate.
	n := New("seq")
	a := n.MustAddGate(GateInput, "a")
	q := n.MustAddGate(GateDFF, "q", a) // placeholder
	g := n.MustAddGate(GateXor, "g", a, q)
	if err := n.RewireFanin(q, 0, g); err != nil {
		t.Fatalf("RewireFanin: %v", err)
	}
	if err := n.Validate(); err != nil {
		t.Errorf("sequential loop should validate: %v", err)
	}
}

func TestFanouts(t *testing.T) {
	n, ids := buildSmall(t)
	fo := n.Fanouts()
	// n1 feeds n2 and q's D pin? No: q.D = n2. n1 feeds n2 only (plus
	// the TSV_OUT port, which is not a gate).
	if got := len(fo[ids["n1"]]); got != 1 {
		t.Errorf("fanout(n1) gates = %d, want 1", got)
	}
	if got := n.FanoutCount(ids["n1"]); got != 2 {
		t.Errorf("FanoutCount(n1) = %d, want 2 (XOR + TSV_OUT port)", got)
	}
	if got := n.FanoutCount(ids["n2"]); got != 2 {
		t.Errorf("FanoutCount(n2) = %d, want 2 (DFF D + OUTPUT port)", got)
	}
}

func TestEvaluate(t *testing.T) {
	n, ids := buildSmall(t)
	cases := []struct {
		a, t0, q       bool
		wantN1, wantN2 bool
	}{
		{false, false, false, false, false},
		{true, true, false, true, true},
		{true, true, true, true, false},
		{true, false, true, false, true},
	}
	for _, c := range cases {
		vals, err := n.Evaluate(map[SignalID]bool{
			ids["a"]: c.a, ids["b"]: false, ids["t0"]: c.t0, ids["q"]: c.q,
		})
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		if vals[ids["n1"]] != c.wantN1 || vals[ids["n2"]] != c.wantN2 {
			t.Errorf("a=%v t0=%v q=%v: n1=%v n2=%v, want %v %v",
				c.a, c.t0, c.q, vals[ids["n1"]], vals[ids["n2"]], c.wantN1, c.wantN2)
		}
	}
}

func TestEvaluateMissingSource(t *testing.T) {
	n, ids := buildSmall(t)
	if _, err := n.Evaluate(map[SignalID]bool{ids["a"]: true}); err == nil {
		t.Error("Evaluate with missing source should fail")
	}
}

func TestEvaluateAllGateTypes(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(s)
g_buf = BUF(a)
g_not = NOT(a)
g_and = AND(a, b)
g_nand = NAND(a, b)
g_or = OR(a, b)
g_nor = NOR(a, b)
g_xor = XOR(a, b)
g_xnor = XNOR(a, b)
g_mux = MUX(s, a, b)
g_c0 = CONST0()
g_c1 = CONST1()
OUTPUT(g_mux)
`
	n, err := ParseString("alltypes", src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	get := func(name string) SignalID {
		id, ok := n.SignalByName(name)
		if !ok {
			t.Fatalf("no signal %q", name)
		}
		return id
	}
	for _, c := range []struct{ a, b, s bool }{
		{false, false, false}, {false, true, false}, {true, false, true}, {true, true, true},
	} {
		vals, err := n.Evaluate(map[SignalID]bool{get("a"): c.a, get("b"): c.b, get("s"): c.s})
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		check := func(name string, want bool) {
			if got := vals[get(name)]; got != want {
				t.Errorf("a=%v b=%v s=%v: %s = %v, want %v", c.a, c.b, c.s, name, got, want)
			}
		}
		check("g_buf", c.a)
		check("g_not", !c.a)
		check("g_and", c.a && c.b)
		check("g_nand", !(c.a && c.b))
		check("g_or", c.a || c.b)
		check("g_nor", !(c.a || c.b))
		check("g_xor", c.a != c.b)
		check("g_xnor", c.a == c.b)
		want := c.a
		if c.s {
			want = c.b
		}
		check("g_mux", want)
		check("g_c0", false)
		check("g_c1", true)
	}
}

func TestClone(t *testing.T) {
	n, ids := buildSmall(t)
	c := n.Clone()
	if c.NumGates() != n.NumGates() || len(c.Outputs) != len(n.Outputs) {
		t.Fatal("clone size mismatch")
	}
	// Mutating the clone must not touch the original.
	newIn := c.MustAddGate(GateInput, "extra")
	if err := c.RewireFanin(ids["n1"], 0, newIn); err != nil {
		t.Fatalf("RewireFanin on clone: %v", err)
	}
	if n.Gates[ids["n1"]].Fanin[0] != ids["a"] {
		t.Error("clone mutation leaked into original")
	}
	if _, ok := n.SignalByName("extra"); ok {
		t.Error("clone name map shared with original")
	}
}

func TestRewireOutput(t *testing.T) {
	n, ids := buildSmall(t)
	if err := n.RewireOutput(0, ids["n1"]); err != nil {
		t.Fatalf("RewireOutput: %v", err)
	}
	if n.Outputs[0].Signal != ids["n1"] {
		t.Error("RewireOutput did not take effect")
	}
	if err := n.RewireOutput(9, ids["n1"]); err == nil {
		t.Error("RewireOutput with bad index should fail")
	}
}

func TestAppendFanin(t *testing.T) {
	n, ids := buildSmall(t)
	// Widen the AND gate with a new input.
	extra := n.MustAddGate(GateInput, "extra")
	if err := n.AppendFanin(ids["n1"], extra); err != nil {
		t.Fatalf("AppendFanin: %v", err)
	}
	if got := len(n.Gate(ids["n1"]).Fanin); got != 3 {
		t.Errorf("fanin = %d, want 3", got)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// Widening a NOT must fail (fixed arity).
	q := ids["q"]
	_ = q
	notGate := n.MustAddGate(GateNot, "inv", extra)
	if err := n.AppendFanin(notGate, ids["a"]); err == nil {
		t.Error("NOT must not take a second pin")
	}
	// Unknown signals rejected.
	if err := n.AppendFanin(ids["n1"], SignalID(9999)); err == nil {
		t.Error("bad source must be rejected")
	}
	// Semantics: the widened AND now includes the new input.
	vals, err := n.Evaluate(map[SignalID]bool{
		ids["a"]: true, ids["b"]: false, ids["t0"]: true, ids["q"]: false, extra: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if vals[ids["n1"]] {
		t.Error("AND with a 0 pin must output 0")
	}
}

func TestFanoutCountAfterRewire(t *testing.T) {
	n, ids := buildSmall(t)
	before := n.FanoutCount(ids["a"])
	// Rewire n1's pin 0 (was a) to b: a loses a consumer.
	if err := n.RewireFanin(ids["n1"], 0, ids["b"]); err != nil {
		t.Fatal(err)
	}
	if got := n.FanoutCount(ids["a"]); got != before-1 {
		t.Errorf("fanout(a) = %d, want %d", got, before-1)
	}
}
