package netlist

import "fmt"

// Evaluate performs a single-pattern two-valued simulation of the
// combinational logic. `assign` maps every source signal (primary inputs,
// TSV pads, flip-flop outputs) to a value; constants are implied. It
// returns the value of every signal, indexed by SignalID.
//
// This scalar evaluator is the reference model: the bit-parallel simulator
// in internal/faultsim is checked against it property-style in tests.
func (n *Netlist) Evaluate(assign map[SignalID]bool) ([]bool, error) {
	vals := make([]bool, len(n.Gates))
	for _, id := range n.TopoOrder() {
		g := &n.Gates[id]
		switch g.Type {
		case GateConst0:
			vals[id] = false
		case GateConst1:
			vals[id] = true
		case GateInput, GateTSVIn, GateDFF:
			v, ok := assign[id]
			if !ok && g.Type != GateDFF {
				return nil, fmt.Errorf("netlist: no value assigned to source %q", g.Name)
			}
			vals[id] = v // unassigned DFF defaults to false (reset state)
		default:
			v, err := evalGate(g.Type, g.Fanin, vals)
			if err != nil {
				return nil, fmt.Errorf("netlist: gate %q: %w", g.Name, err)
			}
			vals[id] = v
		}
	}
	return vals, nil
}

func evalGate(t GateType, fanin []SignalID, vals []bool) (bool, error) {
	in := func(i int) bool { return vals[fanin[i]] }
	switch t {
	case GateBuf:
		return in(0), nil
	case GateNot:
		return !in(0), nil
	case GateAnd, GateNand:
		v := true
		for i := range fanin {
			v = v && in(i)
		}
		if t == GateNand {
			v = !v
		}
		return v, nil
	case GateOr, GateNor:
		v := false
		for i := range fanin {
			v = v || in(i)
		}
		if t == GateNor {
			v = !v
		}
		return v, nil
	case GateXor, GateXnor:
		v := false
		for i := range fanin {
			v = v != in(i)
		}
		if t == GateXnor {
			v = !v
		}
		return v, nil
	case GateMux2:
		// fanin order: (sel, a, b); sel=0 -> a, sel=1 -> b.
		if in(0) {
			return in(2), nil
		}
		return in(1), nil
	default:
		return false, fmt.Errorf("cannot evaluate %s", t)
	}
}
