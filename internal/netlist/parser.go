package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Parse reads a netlist in the wcm3d .bench dialect — the classic
// ISCAS-89/ITC'99 structural format extended with TSV port annotations:
//
//	# comment
//	INPUT(a)
//	TSV_IN(t0)          # inbound TSV landing pad (floating pre-bond)
//	OUTPUT(z)
//	TSV_OUT(u0) = n42   # outbound TSV observing signal n42
//	q1 = DFF(d1)
//	n1 = NAND(a, q1)
//	n2 = MUX(s, a, b)   # s ? b : a
//	k  = CONST0()
//
// Plain `TSV_OUT(x)` (without `= sig`) declares an outbound TSV observing
// the signal named x, mirroring how `OUTPUT(x)` works in classic bench
// files. Gate lines may appear before the signals they reference; a second
// linking pass resolves forward references.
func Parse(name string, r io.Reader) (*Netlist, error) {
	n := New(name)
	type pendingGate struct {
		line   int
		out    string
		typ    GateType
		fanins []string
	}
	type pendingOut struct {
		line  int
		port  string
		sig   string
		class PortClass
	}
	var gates []pendingGate
	var outs []pendingOut

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "INPUT(") || strings.HasPrefix(line, "TSV_IN("):
			typ := GateInput
			if strings.HasPrefix(line, "TSV_IN(") {
				typ = GateTSVIn
			}
			arg, err := parenArg(line)
			if err != nil {
				return nil, parseErr(name, lineNo, err)
			}
			gates = append(gates, pendingGate{line: lineNo, out: arg, typ: typ})
		case strings.HasPrefix(line, "OUTPUT(") || strings.HasPrefix(line, "TSV_OUT("):
			class := PortPO
			if strings.HasPrefix(line, "TSV_OUT(") {
				class = PortTSVOut
			}
			// Either `OUTPUT(x)` or `TSV_OUT(p) = sig`.
			if eq := strings.IndexByte(line, '='); eq >= 0 {
				arg, err := parenArg(strings.TrimSpace(line[:eq]))
				if err != nil {
					return nil, parseErr(name, lineNo, err)
				}
				sig := strings.TrimSpace(line[eq+1:])
				if sig == "" {
					return nil, parseErr(name, lineNo, fmt.Errorf("empty signal after '='"))
				}
				outs = append(outs, pendingOut{line: lineNo, port: arg, sig: sig, class: class})
			} else {
				arg, err := parenArg(line)
				if err != nil {
					return nil, parseErr(name, lineNo, err)
				}
				outs = append(outs, pendingOut{line: lineNo, port: arg, sig: arg, class: class})
			}
		default:
			// `out = TYPE(in1, in2, ...)`
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, parseErr(name, lineNo, fmt.Errorf("unrecognized line %q", line))
			}
			out := strings.TrimSpace(line[:eq])
			if out == "" {
				return nil, parseErr(name, lineNo, fmt.Errorf("gate definition with empty output name"))
			}
			rhs := strings.TrimSpace(line[eq+1:])
			op := strings.IndexByte(rhs, '(')
			cp := strings.LastIndexByte(rhs, ')')
			if op < 0 || cp < op {
				return nil, parseErr(name, lineNo, fmt.Errorf("malformed gate expression %q", rhs))
			}
			typName := strings.ToUpper(strings.TrimSpace(rhs[:op]))
			typ, ok := gateTypeByName(typName)
			if !ok {
				return nil, parseErr(name, lineNo, fmt.Errorf("unknown gate type %q", typName))
			}
			var fanins []string
			argStr := strings.TrimSpace(rhs[op+1 : cp])
			if argStr != "" {
				for _, a := range strings.Split(argStr, ",") {
					a = strings.TrimSpace(a)
					if a == "" {
						return nil, parseErr(name, lineNo, fmt.Errorf("empty fanin in %q", rhs))
					}
					fanins = append(fanins, a)
				}
			}
			gates = append(gates, pendingGate{line: lineNo, out: out, typ: typ, fanins: fanins})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist %q: read: %w", name, err)
	}

	// Pass 1: create every gate with empty fanin so forward references
	// resolve; pass 2: link fanins.
	ids := make(map[string]SignalID, len(gates))
	for _, pg := range gates {
		if _, dup := ids[pg.out]; dup {
			return nil, parseErr(name, pg.line, fmt.Errorf("%w: %q", ErrDuplicateName, pg.out))
		}
		id := SignalID(len(n.Gates))
		n.Gates = append(n.Gates, Gate{Type: pg.typ, Name: pg.out})
		n.byName[pg.out] = id
		ids[pg.out] = id
	}
	for _, pg := range gates {
		if len(pg.fanins) == 0 {
			continue
		}
		g := &n.Gates[ids[pg.out]]
		g.Fanin = make([]SignalID, len(pg.fanins))
		for i, fn := range pg.fanins {
			fid, ok := ids[fn]
			if !ok {
				return nil, parseErr(name, pg.line, fmt.Errorf("%w: %q feeding %q", ErrUnknownSignal, fn, pg.out))
			}
			g.Fanin[i] = fid
		}
	}
	for _, po := range outs {
		sid, ok := ids[po.sig]
		if !ok {
			return nil, parseErr(name, po.line, fmt.Errorf("%w: %q for port %q", ErrUnknownSignal, po.sig, po.port))
		}
		if err := n.AddOutput(po.port, sid, po.class); err != nil {
			return nil, parseErr(name, po.line, err)
		}
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// ParseString is Parse over an in-memory string; used heavily by tests.
func ParseString(name, src string) (*Netlist, error) {
	return Parse(name, strings.NewReader(src))
}

func parseErr(name string, line int, err error) error {
	return fmt.Errorf("netlist %q line %d: %w", name, line, err)
}

func parenArg(s string) (string, error) {
	op := strings.IndexByte(s, '(')
	cp := strings.LastIndexByte(s, ')')
	if op < 0 || cp < op {
		return "", fmt.Errorf("malformed declaration %q", s)
	}
	arg := strings.TrimSpace(s[op+1 : cp])
	if arg == "" {
		return "", fmt.Errorf("empty name in %q", s)
	}
	return arg, nil
}

func gateTypeByName(s string) (GateType, bool) {
	switch s {
	case "BUF", "BUFF":
		return GateBuf, true
	case "NOT", "INV":
		return GateNot, true
	case "AND":
		return GateAnd, true
	case "NAND":
		return GateNand, true
	case "OR":
		return GateOr, true
	case "NOR":
		return GateNor, true
	case "XOR":
		return GateXor, true
	case "XNOR":
		return GateXnor, true
	case "MUX", "MUX2":
		return GateMux2, true
	case "DFF":
		return GateDFF, true
	case "CONST0":
		return GateConst0, true
	case "CONST1":
		return GateConst1, true
	default:
		return 0, false
	}
}
