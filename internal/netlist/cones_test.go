package netlist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitSetBasics(t *testing.T) {
	b := NewBitSet(130)
	for _, id := range []SignalID{0, 1, 63, 64, 127, 129} {
		b.Set(id)
	}
	if b.Count() != 6 {
		t.Errorf("Count = %d, want 6", b.Count())
	}
	if !b.Has(64) || b.Has(65) {
		t.Error("membership wrong around word boundary")
	}
	members := b.Members()
	want := []SignalID{0, 1, 63, 64, 127, 129}
	if len(members) != len(want) {
		t.Fatalf("Members = %v", members)
	}
	for i := range want {
		if members[i] != want[i] {
			t.Errorf("Members[%d] = %d, want %d", i, members[i], want[i])
		}
	}
}

func TestBitSetIntersect(t *testing.T) {
	a, b := NewBitSet(200), NewBitSet(200)
	a.Set(5)
	a.Set(100)
	b.Set(100)
	b.Set(150)
	if !a.Intersects(b) {
		t.Error("should intersect at 100")
	}
	if got := a.IntersectCount(b); got != 1 {
		t.Errorf("IntersectCount = %d, want 1", got)
	}
	c := NewBitSet(200)
	c.Set(6)
	if a.Intersects(c) {
		t.Error("should not intersect")
	}
	a.Or(c)
	if !a.Has(6) {
		t.Error("Or failed")
	}
}

func TestBitSetQuickProperties(t *testing.T) {
	// Property: Count equals the number of distinct set IDs, and Members
	// returns exactly the set elements in ascending order.
	f := func(raw []uint16) bool {
		const cap = 1 << 16
		b := NewBitSet(cap)
		distinct := map[SignalID]struct{}{}
		for _, r := range raw {
			id := SignalID(r)
			b.Set(id)
			distinct[id] = struct{}{}
		}
		if b.Count() != len(distinct) {
			return false
		}
		prev := SignalID(-1)
		for _, m := range b.Members() {
			if _, ok := distinct[m]; !ok || m <= prev {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFaninCone(t *testing.T) {
	// a, b -> n1=AND(a,b); c -> n2=OR(n1,c); q=DFF(n2); n3=NOT(q)
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
n1 = AND(a, b)
n2 = OR(n1, c)
q = DFF(n2)
n3 = NOT(q)
OUTPUT(n3)
`
	n, err := ParseString("cone", src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	id := func(s string) SignalID {
		i, ok := n.SignalByName(s)
		if !ok {
			t.Fatalf("no signal %s", s)
		}
		return i
	}
	cone := n.FaninCone(id("n2"))
	for _, s := range []string{"a", "b", "c", "n1", "n2"} {
		if !cone.Has(id(s)) {
			t.Errorf("fanin cone of n2 missing %s", s)
		}
	}
	for _, s := range []string{"q", "n3"} {
		if cone.Has(id(s)) {
			t.Errorf("fanin cone of n2 wrongly contains %s", s)
		}
	}
	// Cone of n3 stops at the flip-flop output q; it must not cross into
	// n2's logic.
	cone3 := n.FaninCone(id("n3"))
	if !cone3.Has(id("q")) || cone3.Has(id("n2")) || cone3.Has(id("a")) {
		t.Errorf("fanin cone of n3 should stop at DFF q: %v", names(n, cone3))
	}
}

func TestFanoutCone(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
n1 = AND(a, b)
n2 = OR(n1, b)
q = DFF(n2)
n3 = NOT(q)
OUTPUT(n3)
`
	n, err := ParseString("cone", src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	id := func(s string) SignalID {
		i, ok := n.SignalByName(s)
		if !ok {
			t.Fatalf("no signal %s", s)
		}
		return i
	}
	cone := n.FanoutCone(id("a"))
	// a -> n1 -> n2 -> q (stop). n3 is past the FF.
	for _, s := range []string{"a", "n1", "n2", "q"} {
		if !cone.Has(id(s)) {
			t.Errorf("fanout cone of a missing %s", s)
		}
	}
	if cone.Has(id("n3")) {
		t.Error("fanout cone of a crossed the flip-flop boundary")
	}
}

func TestConeSetOverlap(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
n1 = AND(a, b)
n2 = OR(b, c)
n3 = NOT(a)
OUTPUT(n1)
OUTPUT(n2)
OUTPUT(n3)
`
	n, err := ParseString("ov", src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	id := func(s string) SignalID { i, _ := n.SignalByName(s); return i }
	cs := NewConeSet(n, []SignalID{id("n1"), id("n2"), id("n3")})
	if !cs.FaninOverlap(id("n1"), id("n2")) {
		t.Error("n1 and n2 share input b: fan-in cones must overlap")
	}
	if cs.FaninOverlap(id("n2"), id("n3")) {
		t.Error("n2 and n3 share nothing: fan-in cones must not overlap")
	}
	if !cs.FanoutOverlap(id("a"), id("b")) {
		t.Error("a and b both reach n1: fan-out cones must overlap")
	}
	if cs.FanoutOverlap(id("n1"), id("n2")) {
		t.Error("n1 and n2 have disjoint fanout")
	}
}

// TestConesRandomCircuit cross-checks cone computation against brute-force
// reachability on randomly generated DAGs.
func TestConesRandomCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := randomDAG(rng, 40)
		if err := n.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for g := 0; g < n.NumGates(); g += 7 {
			id := SignalID(g)
			got := n.FaninCone(id)
			want := bruteFanin(n, id)
			if got.Count() != len(want) {
				t.Fatalf("trial %d signal %d: fanin cone %d members, brute force %d",
					trial, g, got.Count(), len(want))
			}
			for m := range want {
				if !got.Has(m) {
					t.Fatalf("trial %d signal %d: missing %d", trial, g, m)
				}
			}
		}
	}
}

func bruteFanin(n *Netlist, id SignalID) map[SignalID]struct{} {
	seen := map[SignalID]struct{}{id: {}}
	var walk func(s SignalID, root bool)
	walk = func(s SignalID, root bool) {
		g := n.Gate(s)
		if !root && (g.Type.IsSource() || g.Type == GateDFF) {
			return
		}
		for _, f := range g.Fanin {
			if _, ok := seen[f]; !ok {
				seen[f] = struct{}{}
				walk(f, false)
			}
		}
	}
	walk(id, true)
	return seen
}

// randomDAG builds a random combinational circuit with some DFFs mixed in.
func randomDAG(rng *rand.Rand, nGates int) *Netlist {
	n := New("rand")
	for i := 0; i < 5; i++ {
		n.MustAddGate(GateInput, "pi"+itoa(i))
	}
	types := []GateType{GateAnd, GateOr, GateNand, GateNor, GateXor, GateNot, GateBuf, GateDFF}
	for i := 0; i < nGates; i++ {
		typ := types[rng.Intn(len(types))]
		nIn := typ.MinFanin()
		if typ.MaxFanin() < 0 && rng.Intn(2) == 1 {
			nIn = 3
		}
		fanin := make([]SignalID, nIn)
		for j := range fanin {
			fanin[j] = SignalID(rng.Intn(n.NumGates()))
		}
		n.MustAddGate(typ, "g"+itoa(i), fanin...)
	}
	last := SignalID(n.NumGates() - 1)
	if err := n.AddOutput("out", last, PortPO); err != nil {
		panic(err)
	}
	return n
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func names(n *Netlist, b *BitSet) []string {
	var out []string
	for _, m := range b.Members() {
		out = append(out, n.NameOf(m))
	}
	return out
}
