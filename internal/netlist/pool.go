package netlist

import (
	"sync"

	"wcm3d/internal/wordpool"
)

// Arena hands out BitSets whose word storage is recycled through the
// global size-classed pools in internal/wordpool, and returns all of it
// in one Release call. The WCM flow builds thousands of cone bitsets per
// die whose lifetime ends with the phase that needed them; routing them
// through an arena makes repeated die preparation (the batch sweep)
// allocation-free in steady state instead of a GC storm.
//
// Usage contract:
//   - NewBitSet may be called from any number of goroutines.
//   - Release returns every word slice the arena ever handed out; no
//     BitSet obtained from the arena may be used after Release. Release
//     is idempotent.
//   - A nil *Arena is valid and degrades to plain NewBitSet allocation
//     (nothing pooled, Release is a no-op), so call sites can thread an
//     optional arena without branching.
type Arena struct {
	mu   sync.Mutex
	held [][]uint64
	// BitSet headers are carved from slab blocks so a cone build costs
	// one header allocation per hdrBlockSize cones instead of one each.
	hdrs    []BitSet
	hdrNext int
}

const hdrBlockSize = 2048

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// NewBitSet returns a zeroed set able to hold n signals, drawing word
// storage from the recycling pools.
func (a *Arena) NewBitSet(n int) *BitSet {
	if a == nil {
		return NewBitSet(n)
	}
	w := wordpool.Get((n + 63) / 64)
	a.mu.Lock()
	a.held = append(a.held, w)
	if a.hdrNext == len(a.hdrs) {
		a.hdrs = make([]BitSet, hdrBlockSize)
		a.hdrNext = 0
	}
	b := &a.hdrs[a.hdrNext]
	a.hdrNext++
	a.mu.Unlock()
	b.words, b.n = w, n
	return b
}

// Release returns every word slice handed out since the last Release to
// the global pools. All BitSets obtained from the arena become invalid.
func (a *Arena) Release() {
	if a == nil {
		return
	}
	a.mu.Lock()
	held := a.held
	a.held = nil
	// Drop the header slab too: stale headers must not pin recycled word
	// slices against the garbage collector.
	a.hdrs = nil
	a.hdrNext = 0
	a.mu.Unlock()
	for _, w := range held {
		wordpool.Put(w)
	}
}

// Held reports how many bitsets the arena currently tracks (test hook).
func (a *Arena) Held() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.held)
}

// stackPool recycles the DFS scratch stacks the cone builders use; one
// stack per worker per ConeSet build.
var stackPool = sync.Pool{New: func() any { s := make([]SignalID, 0, 1024); return &s }}

func getStack() []SignalID  { return *(stackPool.Get().(*[]SignalID)) }
func putStack(s []SignalID) { s = s[:0]; stackPool.Put(&s) }
