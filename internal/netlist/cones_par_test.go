package netlist_test

import (
	"reflect"
	"testing"

	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
)

// TestConeSetWorkersEquivalence builds the same cone set serially and at
// several worker counts over a realistic generated die and requires
// member-for-member identical cones — the guarantee the parallel WCM hot
// path rests on.
func TestConeSetWorkersEquivalence(t *testing.T) {
	n, err := netgen.Random(netgen.RandomOptions{
		Gates: 800, FFs: 40, PIs: 8, POs: 6,
		InboundTSVs: 16, OutboundTSVs: 16, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var signals []netlist.SignalID
	signals = append(signals, n.InboundTSVs()...)
	signals = append(signals, n.FlipFlops()...)
	for _, p := range n.OutboundTSVs() {
		signals = append(signals, n.Outputs[p].Signal)
	}
	// A duplicate must not confuse the index-addressed parallel fill.
	signals = append(signals, signals[0])

	ref := netlist.NewConeSetWorkers(n, signals, 1)
	for _, workers := range []int{2, 4, 8, 0} {
		cs := netlist.NewConeSetWorkers(n, signals, workers)
		for _, s := range signals {
			if !reflect.DeepEqual(cs.Fanin(s).Members(), ref.Fanin(s).Members()) {
				t.Fatalf("workers=%d: fan-in cone of %d differs", workers, s)
			}
			if !reflect.DeepEqual(cs.Fanout(s).Members(), ref.Fanout(s).Members()) {
				t.Fatalf("workers=%d: fan-out cone of %d differs", workers, s)
			}
		}
	}
}
