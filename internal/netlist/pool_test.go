package netlist_test

import (
	"fmt"
	"testing"

	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
)

// poolTestDie builds a small-but-real die for pool tests.
func poolTestDie(t testing.TB) *netlist.Netlist {
	t.Helper()
	n, err := netgen.Generate(netgen.ITC99Circuit("b12")[1], 1)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func coneSignals(n *netlist.Netlist) []netlist.SignalID {
	var signals []netlist.SignalID
	signals = append(signals, n.InboundTSVs()...)
	signals = append(signals, n.FlipFlops()...)
	for _, p := range n.OutboundTSVs() {
		signals = append(signals, n.Outputs[p].Signal)
	}
	return signals
}

// TestArenaConesMatchUnpooled proves the arena only changes where the
// words come from: every cone built through recycled storage is
// bit-identical to the plain allocation path, at every worker count.
// Run under -race in CI, this doubles as the concurrent-arena safety
// check (workers share one arena).
func TestArenaConesMatchUnpooled(t *testing.T) {
	n := poolTestDie(t)
	signals := coneSignals(n)
	want := netlist.NewConeSetWorkers(n, signals, 1)

	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			arena := netlist.NewArena()
			defer arena.Release()
			// Two rounds: the second draws the word slices the first
			// returned, so any stale-bit leak shows up as a cone diff.
			for round := 0; round < 2; round++ {
				got := netlist.NewConeSetArena(n, signals, workers, arena)
				for _, s := range signals {
					assertSameBits(t, "fanin", s, want.Fanin(s), got.Fanin(s))
					assertSameBits(t, "fanout", s, want.Fanout(s), got.Fanout(s))
				}
				arena.Release()
			}
		})
	}
}

func assertSameBits(t *testing.T, kind string, s netlist.SignalID, want, got *netlist.BitSet) {
	t.Helper()
	if want.Count() != got.Count() {
		t.Fatalf("%s cone of %d: count %d != %d", kind, s, got.Count(), want.Count())
	}
	for _, m := range want.Members() {
		if !got.Has(m) {
			t.Fatalf("%s cone of %d: missing member %d", kind, s, m)
		}
	}
}

// TestArenaRecycledBitSetIsClean dirties every bit of every arena bitset,
// releases, and re-draws: a recycled set must come back all-zero — stale
// bits from the previous die are exactly the corruption the pool must
// never leak.
func TestArenaRecycledBitSetIsClean(t *testing.T) {
	arena := netlist.NewArena()
	defer arena.Release()
	const size = 1000
	for i := 0; i < 64; i++ {
		b := arena.NewBitSet(size)
		for id := 0; id < size; id++ {
			b.Set(netlist.SignalID(id))
		}
	}
	arena.Release()
	for i := 0; i < 64; i++ {
		b := arena.NewBitSet(size)
		if c := b.Count(); c != 0 {
			t.Fatalf("recycled bitset %d carries %d stale bits", i, c)
		}
	}
}

// TestArenaNoAliasing proves two live bitsets from one arena never share
// word storage.
func TestArenaNoAliasing(t *testing.T) {
	arena := netlist.NewArena()
	defer arena.Release()
	const size = 500
	sets := make([]*netlist.BitSet, 32)
	for i := range sets {
		sets[i] = arena.NewBitSet(size)
		sets[i].Set(netlist.SignalID(i))
	}
	for i, b := range sets {
		if c := b.Count(); c != 1 {
			t.Fatalf("set %d has %d members, want 1 (aliased storage)", i, c)
		}
		if !b.Has(netlist.SignalID(i)) {
			t.Fatalf("set %d lost its own bit", i)
		}
	}
}

// TestAndNotIntoMatchesAndNot pins the pooled masking primitive to the
// allocating one, including that every word of dst is overwritten (a
// dirty dst must not influence the result).
func TestAndNotIntoMatchesAndNot(t *testing.T) {
	const size = 300
	b := netlist.NewBitSet(size)
	excl := netlist.NewBitSet(size)
	for i := 0; i < size; i += 3 {
		b.Set(netlist.SignalID(i))
	}
	for i := 0; i < size; i += 5 {
		excl.Set(netlist.SignalID(i))
	}
	want := b.AndNot(excl)

	dst := netlist.NewBitSet(size)
	for i := 0; i < size; i++ {
		dst.Set(netlist.SignalID(i)) // all-dirty destination
	}
	got := b.AndNotInto(excl, dst)
	if got != dst {
		t.Fatal("AndNotInto must return dst")
	}
	if got.Count() != want.Count() {
		t.Fatalf("AndNotInto count %d, AndNot count %d", got.Count(), want.Count())
	}
	for _, m := range want.Members() {
		if !got.Has(m) {
			t.Fatalf("AndNotInto missing member %d", m)
		}
	}
}

// TestNilArenaDegradesToPlainAllocation: a nil arena is the documented
// no-pooling fallback.
func TestNilArenaDegradesToPlainAllocation(t *testing.T) {
	var arena *netlist.Arena
	b := arena.NewBitSet(100)
	b.Set(7)
	if !b.Has(7) || b.Count() != 1 {
		t.Fatal("nil-arena bitset broken")
	}
	arena.Release() // must not panic
	if arena.Held() != 0 {
		t.Fatal("nil arena reports held storage")
	}
}
