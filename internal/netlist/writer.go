package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Write emits the netlist in the wcm3d .bench dialect accepted by Parse.
// Round-tripping through Write/Parse preserves structure exactly (gate
// order, pin order, port classes); tests rely on this.
func (n *Netlist) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s: %d gates, %d FFs, %d inbound TSVs, %d outbound TSVs\n",
		n.Name, n.NumLogicGates(), len(n.FlipFlops()), len(n.InboundTSVs()), len(n.OutboundTSVs()))
	for i := range n.Gates {
		g := &n.Gates[i]
		switch g.Type {
		case GateInput:
			fmt.Fprintf(bw, "INPUT(%s)\n", g.Name)
		case GateTSVIn:
			fmt.Fprintf(bw, "TSV_IN(%s)\n", g.Name)
		}
	}
	for _, o := range n.Outputs {
		fmt.Fprintf(bw, "%s(%s) = %s\n", o.Class, o.Name, n.Gates[o.Signal].Name)
	}
	for i := range n.Gates {
		g := &n.Gates[i]
		if g.Type == GateInput || g.Type == GateTSVIn {
			continue
		}
		names := make([]string, len(g.Fanin))
		for j, f := range g.Fanin {
			names[j] = n.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// String renders the netlist in the .bench dialect; intended for debugging
// and small golden tests only.
func (n *Netlist) String() string {
	var sb strings.Builder
	if err := n.Write(&sb); err != nil {
		return fmt.Sprintf("<netlist %q: %v>", n.Name, err)
	}
	return sb.String()
}
