package netlist

import (
	"errors"
	"strings"
	"testing"
)

// Every shape of duplicate definition the .bench dialect can express must
// be rejected with ErrDuplicateName — regression coverage for the
// parser's duplicate handling plus the Validate checks behind it.
func TestParseRejectsDuplicateDefinitions(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"input-input", "INPUT(a)\nINPUT(a)\nOUTPUT(a)\n"},
		{"input-gate", "INPUT(a)\na = NOT(a)\nOUTPUT(a)\n"},
		{"gate-gate", "INPUT(a)\nx = NOT(a)\nx = AND(a, a)\nOUTPUT(x)\n"},
		{"tsvin-input", "TSV_IN(t)\nINPUT(t)\nOUTPUT(t)\n"},
		{"output-output", "INPUT(a)\nOUTPUT(a)\nOUTPUT(a)\n"},
		{"tsvout-output", "INPUT(a)\nTSV_OUT(z) = a\nOUTPUT(z) = a\n"},
		{"tsvout-tsvout", "INPUT(a)\nTSV_OUT(z) = a\nTSV_OUT(z) = a\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.name, tc.src)
			if err == nil {
				t.Fatalf("duplicate definition accepted:\n%s", tc.src)
			}
			if !errors.Is(err, ErrDuplicateName) {
				t.Fatalf("want ErrDuplicateName, got %v", err)
			}
		})
	}
}

func TestParseRejectsEmptyGateName(t *testing.T) {
	_, err := ParseString("empty", "INPUT(a)\n = NOT(a)\nOUTPUT(a)\n")
	if err == nil {
		t.Fatal("gate definition with empty output name accepted")
	}
	if !strings.Contains(err.Error(), "empty output name") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// Validate must catch duplicates and empty names that programmatic
// construction can smuggle past AddGate/AddOutput by appending to the
// exported slices directly.
func TestValidateCatchesSmuggledDuplicates(t *testing.T) {
	t.Run("duplicate-output-port", func(t *testing.T) {
		n := New("dup")
		a := n.MustAddGate(GateInput, "a")
		if err := n.AddOutput("z", a, PortPO); err != nil {
			t.Fatal(err)
		}
		n.Outputs = append(n.Outputs, Output{Name: "z", Signal: a, Class: PortTSVOut})
		err := n.Validate()
		if err == nil {
			t.Fatal("duplicate output port accepted by Validate")
		}
		if !errors.Is(err, ErrDuplicateName) {
			t.Fatalf("want ErrDuplicateName, got %v", err)
		}
	})
	t.Run("empty-gate-name", func(t *testing.T) {
		n := New("empty")
		n.MustAddGate(GateInput, "a")
		n.Gates = append(n.Gates, Gate{Type: GateInput})
		if err := n.Validate(); err == nil {
			t.Fatal("empty gate name accepted by Validate")
		}
	})
	t.Run("empty-port-name", func(t *testing.T) {
		n := New("emptyport")
		a := n.MustAddGate(GateInput, "a")
		n.Outputs = append(n.Outputs, Output{Name: "", Signal: a, Class: PortPO})
		if err := n.Validate(); err == nil {
			t.Fatal("empty output port name accepted by Validate")
		}
	})
}

func TestRetypeSource(t *testing.T) {
	n := New("retype")
	a := n.MustAddGate(GateInput, "a")
	g := n.MustAddGate(GateNot, "g", a)
	if err := n.RetypeSource(a, GateTSVIn); err != nil {
		t.Fatalf("input -> tsv_in: %v", err)
	}
	if got := n.TypeOf(a); got != GateTSVIn {
		t.Fatalf("type = %v, want GateTSVIn", got)
	}
	if tsvs := n.InboundTSVs(); len(tsvs) != 1 || tsvs[0] != a {
		t.Fatalf("InboundTSVs = %v after retype", tsvs)
	}
	if err := n.RetypeSource(a, GateInput); err != nil {
		t.Fatalf("tsv_in -> input: %v", err)
	}
	if tsvs := n.InboundTSVs(); len(tsvs) != 0 {
		t.Fatalf("InboundTSVs = %v after demotion", tsvs)
	}
	if err := n.RetypeSource(g, GateInput); err == nil {
		t.Fatal("retyping a logic gate to a source must fail")
	}
	if err := n.RetypeSource(a, GateNot); err == nil {
		t.Fatal("retyping a source to a logic type must fail")
	}
}

func TestSetPortClass(t *testing.T) {
	n := New("ports")
	a := n.MustAddGate(GateInput, "a")
	if err := n.AddOutput("z", a, PortPO); err != nil {
		t.Fatal(err)
	}
	if err := n.SetPortClass(0, PortTSVOut); err != nil {
		t.Fatal(err)
	}
	if outs := n.OutboundTSVs(); len(outs) != 1 || outs[0] != 0 {
		t.Fatalf("OutboundTSVs = %v after promotion", outs)
	}
	if err := n.SetPortClass(0, PortPO); err != nil {
		t.Fatal(err)
	}
	if outs := n.OutboundTSVs(); len(outs) != 0 {
		t.Fatalf("OutboundTSVs = %v after demotion", outs)
	}
	if err := n.SetPortClass(3, PortPO); err == nil {
		t.Fatal("out-of-range port index must fail")
	}
}
