package netlist

import (
	"errors"
	"fmt"
	"maps"
	"sort"
)

// Netlist is a single die's gate-level circuit. Build one either with the
// Builder API below, with the .bench dialect parser (see Parse), or with
// the synthetic generator in internal/netgen.
//
// The zero value is an empty, usable netlist.
type Netlist struct {
	// Name labels the die (for example "b12_die2").
	Name string
	// Gates stores every cell; a gate's index is its SignalID.
	Gates []Gate
	// Outputs lists the die output ports (primary outputs and outbound
	// TSVs).
	Outputs []Output

	byName map[string]SignalID

	// Derived structures; (re)built lazily and invalidated by mutation.
	//
	// The hot traversal state is struct-of-arrays: gate types, fanin and
	// fanout edges live in flat parallel slices (CSR layout: off[i] ..
	// off[i+1] indexes into flat) so the cone DFS and the simulator walk
	// contiguous memory instead of chasing a pointer per gate, and a
	// rebuild costs a handful of allocations instead of one per signal.
	// fanouts is kept as subslice views into fanoutFlat to preserve the
	// [][]SignalID accessor API.
	fanouts    [][]SignalID
	gateType   []GateType
	faninOff   []int32
	faninFlat  []SignalID
	fanoutOff  []int32
	fanoutFlat []SignalID
	levelOrd   []SignalID
	levelOf    []int32
	derivedOK  bool
}

// New returns an empty netlist with the given name.
func New(name string) *Netlist {
	return &Netlist{Name: name, byName: make(map[string]SignalID)}
}

// ErrDuplicateName is returned when a signal or port name is reused.
var ErrDuplicateName = errors.New("netlist: duplicate name")

// ErrUnknownSignal is returned when a referenced signal does not exist.
var ErrUnknownSignal = errors.New("netlist: unknown signal")

// NumGates returns the total number of gates including pseudo-gates
// (inputs, TSV pads, constants).
func (n *Netlist) NumGates() int { return len(n.Gates) }

// Gate returns the gate driving the signal. The returned pointer stays
// valid until the next AddGate call.
func (n *Netlist) Gate(id SignalID) *Gate { return &n.Gates[id] }

// SignalByName looks a signal up by its output name.
func (n *Netlist) SignalByName(name string) (SignalID, bool) {
	id, ok := n.byName[name]
	return id, ok
}

// NameOf returns the signal's name.
func (n *Netlist) NameOf(id SignalID) string { return n.Gates[id].Name }

// TypeOf returns the driving gate's type.
func (n *Netlist) TypeOf(id SignalID) GateType { return n.Gates[id].Type }

// Valid reports whether id refers to a gate in this netlist.
func (n *Netlist) Valid(id SignalID) bool {
	return id >= 0 && int(id) < len(n.Gates)
}

// AddGate appends a gate and returns the SignalID of its output. It
// validates the name, the fanin count for the cell type, and every fanin
// reference.
func (n *Netlist) AddGate(typ GateType, name string, fanin ...SignalID) (SignalID, error) {
	if name == "" {
		return InvalidSignal, errors.New("netlist: empty gate name")
	}
	if n.byName == nil {
		n.byName = make(map[string]SignalID)
	}
	if _, dup := n.byName[name]; dup {
		return InvalidSignal, fmt.Errorf("%w: signal %q", ErrDuplicateName, name)
	}
	if min := typ.MinFanin(); len(fanin) < min {
		return InvalidSignal, fmt.Errorf("netlist: %s %q needs at least %d fanin, got %d", typ, name, min, len(fanin))
	}
	if max := typ.MaxFanin(); max >= 0 && len(fanin) > max {
		return InvalidSignal, fmt.Errorf("netlist: %s %q accepts at most %d fanin, got %d", typ, name, max, len(fanin))
	}
	for _, f := range fanin {
		if !n.Valid(f) {
			return InvalidSignal, fmt.Errorf("%w: fanin %d of %q", ErrUnknownSignal, f, name)
		}
	}
	id := SignalID(len(n.Gates))
	n.Gates = append(n.Gates, Gate{Type: typ, Name: name, Fanin: append([]SignalID(nil), fanin...)})
	n.byName[name] = id
	n.derivedOK = false
	return id, nil
}

// MustAddGate is AddGate for construction code paths where the arguments
// are known to be valid (generators, tests). It panics on error.
func (n *Netlist) MustAddGate(typ GateType, name string, fanin ...SignalID) SignalID {
	id, err := n.AddGate(typ, name, fanin...)
	if err != nil {
		panic(err)
	}
	return id
}

// AddOutput declares a die output port observing the given signal.
func (n *Netlist) AddOutput(name string, sig SignalID, class PortClass) error {
	if name == "" {
		return errors.New("netlist: empty output name")
	}
	if !n.Valid(sig) {
		return fmt.Errorf("%w: output %q observes signal %d", ErrUnknownSignal, name, sig)
	}
	for _, o := range n.Outputs {
		if o.Name == name {
			return fmt.Errorf("%w: output %q", ErrDuplicateName, name)
		}
	}
	n.Outputs = append(n.Outputs, Output{Name: name, Signal: sig, Class: class})
	return nil
}

// RewireFanin replaces pin `pin` of gate `g` to be driven by `newSrc`.
// This is the primitive the DFT editor uses to splice test-mode muxes into
// an existing circuit.
func (n *Netlist) RewireFanin(g SignalID, pin int, newSrc SignalID) error {
	if !n.Valid(g) || !n.Valid(newSrc) {
		return ErrUnknownSignal
	}
	gate := &n.Gates[g]
	if pin < 0 || pin >= len(gate.Fanin) {
		return fmt.Errorf("netlist: gate %q has no pin %d", gate.Name, pin)
	}
	gate.Fanin[pin] = newSrc
	n.derivedOK = false
	return nil
}

// AppendFanin adds one more input pin to an n-ary gate (AND/OR/NAND/NOR/
// XOR/XNOR families). The generator's dead-logic mop-up uses it to widen a
// gate without displacing existing sources.
func (n *Netlist) AppendFanin(g SignalID, newSrc SignalID) error {
	if !n.Valid(g) || !n.Valid(newSrc) {
		return ErrUnknownSignal
	}
	gate := &n.Gates[g]
	if max := gate.Type.MaxFanin(); max >= 0 && len(gate.Fanin) >= max {
		return fmt.Errorf("netlist: %s %q cannot take another pin", gate.Type, gate.Name)
	}
	gate.Fanin = append(gate.Fanin, newSrc)
	n.derivedOK = false
	return nil
}

// RewireOutput repoints output port index `idx` at a new signal.
func (n *Netlist) RewireOutput(idx int, newSrc SignalID) error {
	if idx < 0 || idx >= len(n.Outputs) {
		return fmt.Errorf("netlist: no output index %d", idx)
	}
	if !n.Valid(newSrc) {
		return ErrUnknownSignal
	}
	n.Outputs[idx].Signal = newSrc
	n.derivedOK = false
	return nil
}

// RetypeSource changes a source gate's type to another source type —
// GateInput ↔ GateTSVIn — the primitive TSV repair uses to demote a
// failed pad out of the inbound set and promote a spare pad into it. The
// restriction to source types keeps every structural invariant trivially
// intact (sources take no fanin and drive whatever they already drive).
func (n *Netlist) RetypeSource(id SignalID, typ GateType) error {
	if !n.Valid(id) {
		return ErrUnknownSignal
	}
	if !n.Gates[id].Type.IsSource() || !typ.IsSource() {
		return fmt.Errorf("netlist: retype %q: %s -> %s is not a source-to-source change",
			n.Gates[id].Name, n.Gates[id].Type, typ)
	}
	n.Gates[id].Type = typ
	n.derivedOK = false
	return nil
}

// SetPortClass changes an output port's class (PortPO ↔ PortTSVOut) —
// how TSV repair moves a net between the outbound-TSV set and the plain
// primary outputs.
func (n *Netlist) SetPortClass(idx int, class PortClass) error {
	if idx < 0 || idx >= len(n.Outputs) {
		return fmt.Errorf("netlist: no output index %d", idx)
	}
	n.Outputs[idx].Class = class
	return nil
}

// Inputs returns the SignalIDs of all primary inputs (excluding TSV pads),
// in gate order.
func (n *Netlist) Inputs() []SignalID { return n.signalsOfType(GateInput) }

// InboundTSVs returns the SignalIDs of all inbound TSV landing pads.
func (n *Netlist) InboundTSVs() []SignalID { return n.signalsOfType(GateTSVIn) }

// FlipFlops returns the SignalIDs of all D flip-flops.
func (n *Netlist) FlipFlops() []SignalID { return n.signalsOfType(GateDFF) }

// OutboundTSVs returns the indices into Outputs of all outbound-TSV ports.
func (n *Netlist) OutboundTSVs() []int {
	var idx []int
	for i, o := range n.Outputs {
		if o.Class == PortTSVOut {
			idx = append(idx, i)
		}
	}
	return idx
}

// PrimaryOutputs returns the indices into Outputs of ordinary PO pads.
func (n *Netlist) PrimaryOutputs() []int {
	var idx []int
	for i, o := range n.Outputs {
		if o.Class == PortPO {
			idx = append(idx, i)
		}
	}
	return idx
}

// NumLogicGates counts combinational cells only — the "gate count" that
// Table II of the paper reports (inputs, TSV pads, constants and flip-flops
// excluded).
func (n *Netlist) NumLogicGates() int {
	c := 0
	for i := range n.Gates {
		if n.Gates[i].Type.IsCombinational() {
			c++
		}
	}
	return c
}

func (n *Netlist) signalsOfType(t GateType) []SignalID {
	var ids []SignalID
	for i := range n.Gates {
		if n.Gates[i].Type == t {
			ids = append(ids, SignalID(i))
		}
	}
	return ids
}

// Fanouts returns, for every signal, the gates it feeds. The slice is
// indexed by SignalID and must not be mutated. Output ports do not appear:
// use Outputs for those.
func (n *Netlist) Fanouts() [][]SignalID {
	n.ensureDerived()
	return n.fanouts
}

// FanoutCount returns the number of gate pins driven by the signal plus
// the number of output ports observing it — the electrical fanout used by
// the timing model.
func (n *Netlist) FanoutCount(id SignalID) int {
	n.ensureDerived()
	c := len(n.fanouts[id])
	for _, o := range n.Outputs {
		if o.Signal == id {
			c++
		}
	}
	return c
}

// TopoOrder returns every signal in topological order: sources and
// flip-flop outputs first, then combinational gates such that each gate
// appears after all of its fanins (flip-flop D pins do not constrain the
// order — a DFF is a source for ordering purposes). The returned slice is
// shared; do not mutate.
func (n *Netlist) TopoOrder() []SignalID {
	n.ensureDerived()
	return n.levelOrd
}

// Level returns the logic depth of a signal: 0 for sources and flip-flop
// outputs, 1 + max(fanin levels) for combinational gates.
func (n *Netlist) Level(id SignalID) int {
	n.ensureDerived()
	return int(n.levelOf[id])
}

// MaxLevel returns the deepest combinational level in the circuit.
func (n *Netlist) MaxLevel() int {
	n.ensureDerived()
	max := 0
	for _, l := range n.levelOf {
		if int(l) > max {
			max = int(l)
		}
	}
	return max
}

func (n *Netlist) ensureDerived() {
	if n.derivedOK {
		return
	}
	n.buildFanouts()
	n.levelize()
	n.derivedOK = true
}

func (n *Netlist) buildFanouts() {
	nGates := len(n.Gates)

	// Pass 1: gate types and fanin CSR (also the total edge count).
	n.gateType = resize(n.gateType, nGates)
	n.faninOff = resize(n.faninOff, nGates+1)
	edges := 0
	for i := range n.Gates {
		n.gateType[i] = n.Gates[i].Type
		n.faninOff[i] = int32(edges)
		edges += len(n.Gates[i].Fanin)
	}
	n.faninOff[nGates] = int32(edges)
	// Flat edge arrays and the view slices are handed out to callers
	// (Fanouts, FaninSpan, TopoOrder), so a rebuild must never write into
	// storage an earlier caller may still hold — always fresh. Only the
	// unexposed offset/type arrays reuse their backing storage.
	n.faninFlat = make([]SignalID, edges)
	pos := 0
	for i := range n.Gates {
		pos += copy(n.faninFlat[pos:], n.Gates[i].Fanin)
	}

	// Pass 2: fanout CSR is the fanin CSR transposed. Filling by ascending
	// gate id keeps each fanout list sorted — the order the old per-signal
	// append construction produced.
	n.fanoutOff = resize(n.fanoutOff, nGates+1)
	clear(n.fanoutOff)
	for _, f := range n.faninFlat {
		n.fanoutOff[f+1]++
	}
	for i := 0; i < nGates; i++ {
		n.fanoutOff[i+1] += n.fanoutOff[i]
	}
	n.fanoutFlat = make([]SignalID, edges)
	next := make([]int32, nGates)
	copy(next, n.fanoutOff[:nGates])
	for i := range n.Gates {
		for _, f := range n.Gates[i].Fanin {
			n.fanoutFlat[next[f]] = SignalID(i)
			next[f]++
		}
	}

	// Keep the [][]SignalID view for existing callers: subslice windows
	// into the flat array, full (three-index) so an append by a confused
	// caller copies out instead of corrupting a neighbor's list.
	n.fanouts = make([][]SignalID, nGates)
	for i := 0; i < nGates; i++ {
		lo, hi := n.fanoutOff[i], n.fanoutOff[i+1]
		n.fanouts[i] = n.fanoutFlat[lo:hi:hi]
	}
}

// resize returns s with length n, reusing the backing array when it fits.
func resize[T GateType | SignalID | int32](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// FaninSpan returns the fanin list of a signal as a view into the flat
// derived layout — same contents as Gate(id).Fanin without touching the
// Gate struct. The view is valid until the next mutation; do not mutate.
func (n *Netlist) FaninSpan(id SignalID) []SignalID {
	n.ensureDerived()
	return n.faninFlat[n.faninOff[id]:n.faninOff[id+1]:n.faninOff[id+1]]
}

// levelize computes a topological order over the combinational graph.
// Flip-flops break cycles: a DFF's Q is a source, its D pin is a sink.
func (n *Netlist) levelize() {
	nGates := len(n.Gates)
	n.levelOf = make([]int32, nGates)
	n.levelOrd = make([]SignalID, 0, nGates)
	pending := make([]int32, nGates) // unresolved fanin count
	queue := make([]SignalID, 0, nGates)
	for i := range n.Gates {
		t := n.gateType[i]
		if t.IsSource() || t == GateDFF {
			queue = append(queue, SignalID(i))
			continue
		}
		pending[i] = n.faninOff[i+1] - n.faninOff[i]
	}
	for head := 0; head < len(queue); head++ {
		id := queue[head]
		n.levelOrd = append(n.levelOrd, id)
		for _, fo := range n.fanoutFlat[n.fanoutOff[id]:n.fanoutOff[id+1]] {
			ft := n.gateType[fo]
			if ft == GateDFF || ft.IsSource() {
				continue // D pin is a sink; sources have no fanin
			}
			pending[fo]--
			if pending[fo] == 0 {
				lvl := int32(0)
				for _, f := range n.faninFlat[n.faninOff[fo]:n.faninOff[fo+1]] {
					if fl := n.levelOf[f] + 1; fl > lvl {
						lvl = fl
					}
				}
				n.levelOf[fo] = lvl
				queue = append(queue, fo)
			}
		}
	}
}

// Validate checks structural invariants: every combinational gate reachable
// in topological order (no combinational cycles), unique names, legal fanin
// counts, and every output port observing a real signal. Generators and the
// DFT editor call this after construction.
func (n *Netlist) Validate() error {
	n.derivedOK = false
	n.ensureDerived()
	if len(n.levelOrd) != len(n.Gates) {
		return fmt.Errorf("netlist %q: combinational cycle detected (%d of %d gates ordered)",
			n.Name, len(n.levelOrd), len(n.Gates))
	}
	// Name uniqueness: when the name index covers every gate it is itself
	// the witness — AddGate refuses duplicate insertions and Clone copies
	// the index verbatim, so a full-size index can only exist if names are
	// unique. Hand-assembled netlists (no index, or one that fell behind
	// the Gates slice) pay for the explicit re-hash below.
	var seen map[string]struct{}
	if len(n.byName) != len(n.Gates) {
		seen = make(map[string]struct{}, len(n.Gates))
	}
	for i := range n.Gates {
		g := &n.Gates[i]
		if g.Name == "" {
			return fmt.Errorf("netlist %q: gate %d (%s) has an empty name", n.Name, i, g.Type)
		}
		if seen != nil {
			if _, dup := seen[g.Name]; dup {
				return fmt.Errorf("netlist %q: %w: %q", n.Name, ErrDuplicateName, g.Name)
			}
			seen[g.Name] = struct{}{}
		}
		if min := g.Type.MinFanin(); len(g.Fanin) < min {
			return fmt.Errorf("netlist %q: gate %q (%s) has %d fanin, needs >= %d",
				n.Name, g.Name, g.Type, len(g.Fanin), min)
		}
		if max := g.Type.MaxFanin(); max >= 0 && len(g.Fanin) > max {
			return fmt.Errorf("netlist %q: gate %q (%s) has %d fanin, max %d",
				n.Name, g.Name, g.Type, len(g.Fanin), max)
		}
		for _, f := range g.Fanin {
			if !n.Valid(f) {
				return fmt.Errorf("netlist %q: gate %q references %w %d", n.Name, g.Name, ErrUnknownSignal, f)
			}
		}
	}
	seenPort := make(map[string]struct{}, len(n.Outputs))
	for _, o := range n.Outputs {
		if o.Name == "" {
			return fmt.Errorf("netlist %q: output port with empty name", n.Name)
		}
		if _, dup := seenPort[o.Name]; dup {
			return fmt.Errorf("netlist %q: %w: output %q", n.Name, ErrDuplicateName, o.Name)
		}
		seenPort[o.Name] = struct{}{}
		if !n.Valid(o.Signal) {
			return fmt.Errorf("netlist %q: output %q observes %w %d", n.Name, o.Name, ErrUnknownSignal, o.Signal)
		}
	}
	return nil
}

// Clone returns a deep copy. The DFT editor clones before mutating so that
// candidate evaluations never damage the source netlist.
//
// All fanin lists share one flat backing array, carved into full
// (len == cap) subslices: one allocation instead of one per gate, and an
// AppendFanin on any cloned gate reallocates that gate's list instead of
// overrunning its neighbor's.
func (n *Netlist) Clone() *Netlist {
	c := &Netlist{
		Name:    n.Name,
		Gates:   make([]Gate, len(n.Gates)),
		Outputs: append([]Output(nil), n.Outputs...),
		// maps.Clone copies the table wholesale instead of re-hashing
		// every name — the name index is a large share of a clone's cost
		// on big dies.
		byName: maps.Clone(n.byName),
	}
	total := 0
	for i := range n.Gates {
		total += len(n.Gates[i].Fanin)
	}
	flat := make([]SignalID, 0, total)
	for i := range n.Gates {
		g := n.Gates[i]
		lo := len(flat)
		flat = append(flat, g.Fanin...)
		g.Fanin = flat[lo:len(flat):len(flat)]
		c.Gates[i] = g
	}
	return c
}

// Stats summarizes a netlist for reporting (Table II of the paper).
type Stats struct {
	Name         string
	ScanFFs      int
	LogicGates   int
	InboundTSVs  int
	OutboundTSVs int
	PIs          int
	POs          int
	MaxLevel     int
}

// TSVs returns the total TSV count.
func (s Stats) TSVs() int { return s.InboundTSVs + s.OutboundTSVs }

// CollectStats gathers the summary counters for a die.
func CollectStats(n *Netlist) Stats {
	return Stats{
		Name:         n.Name,
		ScanFFs:      len(n.FlipFlops()),
		LogicGates:   n.NumLogicGates(),
		InboundTSVs:  len(n.InboundTSVs()),
		OutboundTSVs: len(n.OutboundTSVs()),
		PIs:          len(n.Inputs()),
		POs:          len(n.PrimaryOutputs()),
		MaxLevel:     n.MaxLevel(),
	}
}

// SortedNames returns all signal names in lexical order; handy for
// deterministic debug output and golden tests.
func (n *Netlist) SortedNames() []string {
	names := make([]string, 0, len(n.Gates))
	for i := range n.Gates {
		names = append(names, n.Gates[i].Name)
	}
	sort.Strings(names)
	return names
}
