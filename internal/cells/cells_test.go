package cells

import (
	"testing"

	"wcm3d/internal/netlist"
)

func TestDefault45nmValidates(t *testing.T) {
	lib := Default45nm()
	if err := lib.Validate(); err != nil {
		t.Fatalf("Default45nm invalid: %v", err)
	}
}

func TestValidateCatchesMissingCell(t *testing.T) {
	lib := Default45nm()
	delete(lib.ByType, netlist.GateXor)
	if err := lib.Validate(); err == nil {
		t.Error("missing XOR should fail validation")
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	lib := Default45nm()
	lib.ByType[netlist.GateAnd] = Params{InputCapFF: 1, DriveResKOhm: 0, IntrinsicPS: 1}
	if err := lib.Validate(); err == nil {
		t.Error("zero drive resistance should fail validation")
	}
	lib = Default45nm()
	lib.TSVCapFF = 0
	if err := lib.Validate(); err == nil {
		t.Error("zero TSV cap should fail validation")
	}
}

func TestOfUnknownTypeReturnsDefaults(t *testing.T) {
	lib := Default45nm()
	p := lib.Of(netlist.GateType(200))
	if p.DriveResKOhm <= 0 || p.InputCapFF <= 0 {
		t.Errorf("unknown type params unusable: %+v", p)
	}
}

func TestWireDelayMonotonic(t *testing.T) {
	lib := Default45nm()
	prev := -1.0
	for _, length := range []float64{0, 10, 50, 100, 500, 2000} {
		d := lib.WireDelayPS(length, 2.0)
		if d < prev {
			t.Errorf("wire delay not monotonic at %v µm: %v < %v", length, d, prev)
		}
		prev = d
	}
	if lib.WireDelayPS(0, 2.0) != 0 {
		t.Error("zero-length wire should have zero delay")
	}
}

func TestWireDelayScalesWithDrive(t *testing.T) {
	lib := Default45nm()
	weak := lib.WireDelayPS(100, 4.0)
	strong := lib.WireDelayPS(100, 1.0)
	if weak <= strong {
		t.Errorf("weaker driver must be slower: weak=%v strong=%v", weak, strong)
	}
}

func TestTSVHeavierThanGatePin(t *testing.T) {
	lib := Default45nm()
	if lib.TSVCapFF <= lib.Of(netlist.GateDFF).InputCapFF {
		t.Error("a TSV pad must present more capacitance than a gate pin")
	}
}

func TestWrapperCellCostlierThanMux(t *testing.T) {
	lib := Default45nm()
	if lib.WrapperCellAreaUM2 <= lib.ScanMuxAreaUM2 {
		t.Error("the whole premise of reuse: wrapper cell must cost more area than a scan mux")
	}
}

func TestRepeatedWireDelayLinear(t *testing.T) {
	lib := Default45nm()
	drive := 2.0
	seg := lib.TestBufferDistUM
	// Short wires: identical to the unrepeatered model.
	if got, want := lib.RepeatedWireDelayPS(seg/2, drive), lib.WireDelayPS(seg/2, drive); got != want {
		t.Errorf("short wire: repeated %v != raw %v", got, want)
	}
	// At millimeter scale the raw model's quadratic RC term dominates
	// and repeaters win outright.
	long := 20000.0
	if lib.RepeatedWireDelayPS(long, drive) >= lib.WireDelayPS(long, drive) {
		t.Error("repeaters must beat a millimeter-scale unrepeatered wire")
	}
	d1 := lib.RepeatedWireDelayPS(5*seg, drive)
	d2 := lib.RepeatedWireDelayPS(10*seg, drive)
	ratio := d2 / d1
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("doubling a repeatered wire scaled delay by %.2f, want ~2", ratio)
	}
}

func TestDriverWireCapBounded(t *testing.T) {
	lib := Default45nm()
	seg := lib.TestBufferDistUM
	short := lib.DriverWireCapFF(seg / 3)
	if short != lib.WireCapFF(seg/3) {
		t.Error("short wires present their full capacitance")
	}
	capAt2seg := lib.DriverWireCapFF(2 * seg)
	capAt9seg := lib.DriverWireCapFF(9 * seg)
	if capAt2seg != capAt9seg {
		t.Errorf("driver cap must saturate at one segment: %v vs %v", capAt2seg, capAt9seg)
	}
	if capAt2seg > lib.WireCapFF(seg)+5 {
		t.Errorf("saturated driver cap %v far above one segment %v", capAt2seg, lib.WireCapFF(seg))
	}
}

func TestRepeatedWireNoBufferDistance(t *testing.T) {
	lib := Default45nm()
	lib.TestBufferDistUM = 0
	// Without a repeater spacing the models coincide.
	if lib.RepeatedWireDelayPS(500, 2.0) != lib.WireDelayPS(500, 2.0) {
		t.Error("zero spacing must disable repeaters")
	}
	if lib.DriverWireCapFF(500) != lib.WireCapFF(500) {
		t.Error("zero spacing must disable cap saturation")
	}
}
