// Package cells provides the technology library consumed by the static
// timing analyzer and the wrapper-cell flow: per-cell input capacitance,
// drive resistance and intrinsic delay, plus the interconnect RC constants
// used to turn placement distance into wire delay.
//
// The numbers are calibrated to a generic 45 nm standard-cell process
// (NanGate-class open library): gate input capacitances around 1-2 fF,
// drive resistances of a few kΩ, intrinsic delays of a few tens of
// picoseconds, and wire parasitics around 0.2 fF/µm and 1 Ω/µm. Absolute
// values only need to be mutually consistent — every experiment in the
// paper compares methods under the *same* library.
package cells

import (
	"fmt"

	"wcm3d/internal/netlist"
)

// Params holds the timing-relevant characterization of one cell type.
type Params struct {
	// InputCapFF is the capacitance of one input pin, in femtofarads.
	InputCapFF float64
	// DriveResKOhm is the equivalent output drive resistance, in kΩ.
	// Load-dependent delay is DriveResKOhm × C_load (kΩ·fF = ps).
	DriveResKOhm float64
	// IntrinsicPS is the fixed parasitic delay of the cell, in
	// picoseconds.
	IntrinsicPS float64
}

// Library is a complete technology characterization. The zero value is not
// usable; construct with Default45nm or build explicitly.
type Library struct {
	// Name identifies the library in reports.
	Name string
	// ByType maps each gate type to its parameters.
	ByType map[netlist.GateType]Params

	// dense mirrors ByType as a direct-indexed table so Of costs an array
	// load instead of a map probe — it sits on the inner edge loops of the
	// timing analyzer. Built by Seal; a library that was never sealed (or
	// whose ByType was mutated after sealing without re-Sealing) falls back
	// to the map.
	dense  []Params
	known  []bool
	sealed bool

	// WireCapPerUM is interconnect capacitance in fF per µm of Manhattan
	// length.
	WireCapPerUM float64
	// WireResPerUM is interconnect resistance in kΩ per µm.
	WireResPerUM float64

	// TSVCapFF is the parasitic capacitance a TSV landing pad presents,
	// in fF. TSVs are far heavier than gate pins (micrometer-scale
	// copper pillars).
	TSVCapFF float64

	// TestBufferDistUM is the repeater spacing the DFT editor uses when
	// a wrapper plan requests buffered test routing: a test-distribution
	// wire longer than this gets a buffer, bounding the capacitive load
	// any single driver sees to one segment.
	TestBufferDistUM float64

	// ScanMuxOverheadPS is the extra delay a test-mode multiplexer
	// inserted on a functional path costs (intrinsic + typical load),
	// used by the DFT editor's quick estimates; exact values come from
	// re-running STA on the edited netlist.
	ScanMuxOverheadPS float64

	// WrapperCellAreaUM2 and ScanMuxAreaUM2 quantify the area cost of a
	// dedicated wrapper cell versus the mux added when reusing a scan
	// flip-flop; the paper's motivation is that the former is ~6-8x the
	// latter.
	WrapperCellAreaUM2 float64
	ScanMuxAreaUM2     float64
}

// Default45nm returns the library used throughout the reproduction.
func Default45nm() *Library {
	l := &Library{
		Name: "generic45",
		ByType: map[netlist.GateType]Params{
			netlist.GateInput:  {InputCapFF: 0, DriveResKOhm: 1.0, IntrinsicPS: 0},
			netlist.GateTSVIn:  {InputCapFF: 0, DriveResKOhm: 1.5, IntrinsicPS: 0},
			netlist.GateConst0: {InputCapFF: 0, DriveResKOhm: 1.0, IntrinsicPS: 0},
			netlist.GateConst1: {InputCapFF: 0, DriveResKOhm: 1.0, IntrinsicPS: 0},
			netlist.GateBuf:    {InputCapFF: 1.2, DriveResKOhm: 1.6, IntrinsicPS: 18},
			netlist.GateNot:    {InputCapFF: 1.1, DriveResKOhm: 1.4, IntrinsicPS: 12},
			netlist.GateAnd:    {InputCapFF: 1.4, DriveResKOhm: 2.0, IntrinsicPS: 28},
			netlist.GateNand:   {InputCapFF: 1.3, DriveResKOhm: 1.8, IntrinsicPS: 20},
			netlist.GateOr:     {InputCapFF: 1.4, DriveResKOhm: 2.1, IntrinsicPS: 30},
			netlist.GateNor:    {InputCapFF: 1.3, DriveResKOhm: 1.9, IntrinsicPS: 22},
			netlist.GateXor:    {InputCapFF: 1.8, DriveResKOhm: 2.4, IntrinsicPS: 38},
			netlist.GateXnor:   {InputCapFF: 1.8, DriveResKOhm: 2.4, IntrinsicPS: 38},
			netlist.GateMux2:   {InputCapFF: 1.6, DriveResKOhm: 2.2, IntrinsicPS: 34},
			netlist.GateDFF:    {InputCapFF: 1.7, DriveResKOhm: 1.8, IntrinsicPS: 60},
		},
		TestBufferDistUM:   60,
		WireCapPerUM:       0.20,
		WireResPerUM:       0.0010,
		TSVCapFF:           25.0,
		ScanMuxOverheadPS:  40.0,
		WrapperCellAreaUM2: 15.0,
		ScanMuxAreaUM2:     2.2,
	}
	l.Seal()
	return l
}

// defaultParams are the conservative fallback for gate types the library
// does not characterize: the library is consulted deep inside timing
// loops, so unknown types degrade instead of panicking.
var defaultParams = Params{InputCapFF: 1.5, DriveResKOhm: 2.0, IntrinsicPS: 30}

// Seal builds the direct-indexed lookup table from ByType. Call it once
// after constructing or editing a library; Of reads the table without
// consulting the map afterwards.
func (l *Library) Seal() {
	max := 0
	for t := range l.ByType {
		if int(t) > max {
			max = int(t)
		}
	}
	l.dense = make([]Params, max+1)
	l.known = make([]bool, max+1)
	for t, p := range l.ByType {
		l.dense[t] = p
		l.known[t] = true
	}
	l.sealed = true
}

// Of returns the parameters for a gate type.
func (l *Library) Of(t netlist.GateType) Params {
	if l.sealed {
		if int(t) < len(l.dense) && l.known[t] {
			return l.dense[t]
		}
		return defaultParams
	}
	p, ok := l.ByType[t]
	if !ok {
		return defaultParams
	}
	return p
}

// WireDelayPS returns the Elmore-style delay of an unrepeatered wire of
// the given Manhattan length driven by a cell with drive resistance
// driveKOhm: R_drive·C_wire + R_wire·C_wire/2 (distributed RC).
func (l *Library) WireDelayPS(lengthUM, driveKOhm float64) float64 {
	cw := l.WireCapPerUM * lengthUM
	rw := l.WireResPerUM * lengthUM
	return driveKOhm*cw + rw*cw/2
}

// RepeatedWireDelayPS models a routed net the way a physical flow builds
// it: wires longer than TestBufferDistUM carry repeaters, so delay grows
// linearly with length (one buffer delay plus one segment of RC per hop)
// instead of quadratically, and no single driver ever sees more than one
// segment of wire.
func (l *Library) RepeatedWireDelayPS(lengthUM, driveKOhm float64) float64 {
	seg := l.TestBufferDistUM
	if seg <= 0 || lengthUM <= seg {
		return l.WireDelayPS(lengthUM, driveKOhm)
	}
	buf := l.Of(netlist.GateBuf)
	hops := int(lengthUM / seg)
	rem := lengthUM - float64(hops)*seg
	// First segment driven by the original cell, then hops-1 full buffer
	// stages, then the final buffer drives the remainder.
	d := l.WireDelayPS(seg, driveKOhm) + driveKOhm*buf.InputCapFF
	for i := 1; i < hops; i++ {
		d += buf.IntrinsicPS + l.WireDelayPS(seg, buf.DriveResKOhm) + buf.DriveResKOhm*buf.InputCapFF
	}
	d += buf.IntrinsicPS + l.WireDelayPS(rem, buf.DriveResKOhm)
	return d
}

// WireCapFF returns the capacitance of a wire of the given length.
func (l *Library) WireCapFF(lengthUM float64) float64 {
	return l.WireCapPerUM * lengthUM
}

// DriverWireCapFF returns the wire capacitance the DRIVER of a routed net
// sees: at most one repeater segment (plus the repeater's input pin) under
// the repeatered-interconnect model.
func (l *Library) DriverWireCapFF(lengthUM float64) float64 {
	seg := l.TestBufferDistUM
	if seg <= 0 || lengthUM <= seg {
		return l.WireCapPerUM * lengthUM
	}
	return l.WireCapPerUM*seg + l.Of(netlist.GateBuf).InputCapFF
}

// Validate checks the library is self-consistent (all gate types present,
// positive parameters).
func (l *Library) Validate() error {
	required := []netlist.GateType{
		netlist.GateInput, netlist.GateTSVIn, netlist.GateBuf, netlist.GateNot,
		netlist.GateAnd, netlist.GateNand, netlist.GateOr, netlist.GateNor,
		netlist.GateXor, netlist.GateXnor, netlist.GateMux2, netlist.GateDFF,
	}
	for _, t := range required {
		p, ok := l.ByType[t]
		if !ok {
			return fmt.Errorf("cells: library %q missing %s", l.Name, t)
		}
		if p.InputCapFF < 0 || p.DriveResKOhm <= 0 || p.IntrinsicPS < 0 {
			return fmt.Errorf("cells: library %q has invalid params for %s: %+v", l.Name, t, p)
		}
	}
	if l.WireCapPerUM <= 0 || l.WireResPerUM < 0 || l.TSVCapFF <= 0 {
		return fmt.Errorf("cells: library %q has invalid interconnect constants", l.Name)
	}
	return nil
}
