package experiments

import (
	"strings"
	"testing"

	"wcm3d/internal/netgen"
	"wcm3d/internal/scan"
	"wcm3d/internal/wcm"
)

func prepB12(t *testing.T) []*Die {
	t.Helper()
	dies, err := PrepareSuite(netgen.ITC99Circuit("b12"), 1)
	if err != nil {
		t.Fatal(err)
	}
	return dies
}

func TestPrepareDieInvariants(t *testing.T) {
	d, err := PrepareDie(netgen.ITC99Circuit("b11")[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.ClockPS <= 0 || d.MarginPS <= 0 {
		t.Errorf("clock %v margin %v", d.ClockPS, d.MarginPS)
	}
	if d.Timing.Netlist != d.Netlist {
		t.Error("projected timing must reference the die netlist")
	}
	if len(d.StuckAt) == 0 || len(d.Transition) == 0 {
		t.Error("fault universes must be enumerated")
	}
	// The full-wrap reference must meet the derived clock.
	viol, wns, err := CheckTiming(d, scan.FullWrap(d.Netlist))
	if err != nil {
		t.Fatal(err)
	}
	if viol {
		t.Errorf("full-wrap reference violates its own clock (wns %.1f)", wns)
	}
	// Margin is real: the reference has at most ~margin of headroom.
	if wns > d.MarginPS*1.5 {
		t.Errorf("wns %.1f far exceeds margin %.1f: clock not tight", wns, d.MarginPS)
	}
}

func TestPrepareDieDeterministic(t *testing.T) {
	p := netgen.ITC99Circuit("b11")[1]
	d1, err := PrepareDie(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := PrepareDie(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d1.ClockPS != d2.ClockPS {
		t.Errorf("clock differs: %v vs %v", d1.ClockPS, d2.ClockPS)
	}
	if d1.Netlist.String() != d2.Netlist.String() {
		t.Error("prepared netlists differ")
	}
}

func TestOursNeverViolatesTight(t *testing.T) {
	// The paper's headline property on the two smallest families (the
	// full 24-die check runs in cmd/tables).
	for _, c := range []string{"b11", "b12"} {
		for _, p := range netgen.ITC99Circuit(c) {
			d, err := PrepareDie(p, 1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := wcm.Run(d.Input(), OurOptions(d, Scenario{Tight: true}))
			if err != nil {
				t.Fatal(err)
			}
			viol, wns, err := CheckTiming(d, res.Assignment)
			if err != nil {
				t.Fatal(err)
			}
			if viol {
				t.Errorf("%s: ours-tight violates (wns %.1f)", p.Name(), wns)
			}
		}
	}
}

func TestTable1RunsAndRenders(t *testing.T) {
	dies := prepB12(t)[:2]
	rows, err := Table1(dies, ReducedBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.InFirstCoverage <= 0.5 || r.OutFirstCoverage <= 0.5 {
			t.Errorf("%s: implausible coverage (%v, %v)", r.Die, r.InFirstCoverage, r.OutFirstCoverage)
		}
	}
	var sb strings.Builder
	RenderTable1(&sb, rows)
	if !strings.Contains(sb.String(), "Table I") {
		t.Error("render missing title")
	}
}

func TestTable2MatchesPaperAverages(t *testing.T) {
	rows, err := Table2(netgen.ITC99Profiles(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 24 {
		t.Fatalf("rows = %d, want 24", len(rows))
	}
	var ffs, gates, tsvs float64
	for _, r := range rows {
		ffs += float64(r.Stats.ScanFFs)
		gates += float64(r.Stats.LogicGates)
		tsvs += float64(r.Stats.TSVs())
	}
	// Paper Table II averages: 194.04 / 8522.67 / 1064.54.
	check := func(name string, got, want float64) {
		t.Helper()
		if got < want-0.01 || got > want+0.01 {
			t.Errorf("%s average = %.2f, paper says %.2f", name, got, want)
		}
	}
	check("scan FFs", ffs/24, 194.04)
	check("gates", gates/24, 8522.67)
	check("TSVs", tsvs/24, 1064.54)
}

func TestTable3ShapeOnB12(t *testing.T) {
	rows, err := Table3(prepB12(t))
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(rows)
	if s.OurViolations != 0 {
		t.Errorf("ours must never violate; got %d/%d", s.OurViolations, s.Dies)
	}
	// Ours (loose) must not insert substantially more cells than the
	// baseline.
	if s.OurLooseCells > s.AgrLooseCells*1.15 {
		t.Errorf("ours-loose cells %.2f much worse than agrawal %.2f", s.OurLooseCells, s.AgrLooseCells)
	}
	var sb strings.Builder
	RenderTable3(&sb, rows)
	if !strings.Contains(sb.String(), "Average") {
		t.Error("render missing summary")
	}
}

func TestTable5AndFigure7OverlapShape(t *testing.T) {
	dies := prepB12(t)[2:3] // one die keeps it fast
	rows5, err := Table5(dies, ReducedBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	r := rows5[0]
	if r.OnCells > r.OffCells {
		t.Errorf("allowing overlap must not add cells: %d > %d", r.OnCells, r.OffCells)
	}
	rows7, err := Figure7(dies)
	if err != nil {
		t.Fatal(err)
	}
	if rows7[0].EdgesOn < rows7[0].EdgesOff {
		t.Errorf("overlap must not remove edges: %d < %d", rows7[0].EdgesOn, rows7[0].EdgesOff)
	}
	var sb strings.Builder
	RenderTable5(&sb, rows5)
	RenderFigure7(&sb, rows7)
	if !strings.Contains(sb.String(), "Figure 7") {
		t.Error("render missing title")
	}
}

func TestEvaluateStuckAtSensibleCoverage(t *testing.T) {
	d, err := PrepareDie(netgen.ITC99Circuit("b11")[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := EvaluateStuckAt(d, scan.FullWrap(d.Netlist), ReducedBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	if full.Coverage < 0.85 {
		t.Errorf("full-wrap test coverage %.3f implausibly low", full.Coverage)
	}
	if full.Patterns <= 0 {
		t.Error("no patterns generated")
	}
	// An empty plan (no wrappers at all) must grade strictly worse:
	// inbound TSVs stay X, outbound cones stay unobservable.
	bare, err := EvaluateStuckAt(d, &scan.Assignment{}, ReducedBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	if bare.RawCoverage >= full.RawCoverage {
		t.Errorf("unwrapped die coverage %.3f must trail full wrap %.3f",
			bare.RawCoverage, full.RawCoverage)
	}
}

func TestCheckTimingDetectsSabotage(t *testing.T) {
	// A plan that reuses the flip-flop with the least D-pin slack for a
	// far-away observation should eat the margin.
	d, err := PrepareDie(netgen.ITC99Circuit("b12")[1], 1)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the timing checker is exercised through the full pipeline
	// in Table3 tests; here confirm the API contract on the trivial plan.
	viol, wns, err := CheckTiming(d, scan.FullWrap(d.Netlist))
	if err != nil {
		t.Fatal(err)
	}
	if viol || wns < 0 {
		t.Errorf("full wrap must meet timing: viol=%v wns=%.1f", viol, wns)
	}
}

func TestFlowDeterminism(t *testing.T) {
	// Two complete runs of the flow (prepare → minimize → evaluate) must
	// agree bit-for-bit — the tables in results/ depend on it.
	run := func() (int, int, Testability) {
		d, err := PrepareDie(netgen.ITC99Circuit("b11")[1], 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := wcm.Run(d.Input(), OurOptions(d, Scenario{Tight: true}))
		if err != nil {
			t.Fatal(err)
		}
		tb, err := EvaluateStuckAt(d, res.Assignment, ReducedBudget(1))
		if err != nil {
			t.Fatal(err)
		}
		return res.ReusedFFs, res.AdditionalCells, tb
	}
	r1, c1, t1 := run()
	r2, c2, t2 := run()
	if r1 != r2 || c1 != c2 || t1 != t2 {
		t.Errorf("flow not deterministic: (%d,%d,%+v) vs (%d,%d,%+v)", r1, c1, t1, r2, c2, t2)
	}
}
