package experiments

import (
	"testing"

	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
	"wcm3d/internal/wcm"
)

// TestEstimatorAgainstExactATPG validates the structural share-penalty
// estimator the same way the paper validates its thresholds with a
// commercial tool: for TSV pairs with DISJOINT fan-out cones the exact
// coverage loss must be negligible, and for heavily overlapped pairs the
// estimator must flag a cost at least as often as the exact measurement
// shows one.
func TestEstimatorAgainstExactATPG(t *testing.T) {
	d, err := PrepareDie(netgen.ITC99Circuit("b11")[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	n := d.Netlist
	tsvs := n.InboundTSVs()
	cones := netlist.NewConeSet(n, tsvs)
	sourceMask := netlist.NewBitSet(n.NumGates())
	for i := range n.Gates {
		id := netlist.SignalID(i)
		if n.TypeOf(id).IsSource() || n.TypeOf(id) == netlist.GateDFF {
			sourceMask.Set(id)
		}
	}
	est := wcm.StructuralEstimator{}
	budget := ReducedBudget(1)

	var disjoint, overlapped [][2]netlist.SignalID
	for i := 0; i < len(tsvs); i++ {
		for j := i + 1; j < len(tsvs); j++ {
			ov := cones.Fanout(tsvs[i]).IntersectCountExcluding(cones.Fanout(tsvs[j]), sourceMask)
			switch {
			case ov == 0 && len(disjoint) < 3:
				disjoint = append(disjoint, [2]netlist.SignalID{tsvs[i], tsvs[j]})
			case ov >= 10 && len(overlapped) < 3:
				overlapped = append(overlapped, [2]netlist.SignalID{tsvs[i], tsvs[j]})
			}
		}
	}
	if len(disjoint) == 0 {
		t.Fatal("no disjoint TSV pairs on this die")
	}

	for _, p := range disjoint {
		covLoss, _, err := ExactSharePenalty(d, p[0], p[1], budget)
		if err != nil {
			t.Fatal(err)
		}
		// ATPG noise (random phase, compaction) allows small wobble in
		// either direction, but disjoint sharing must not cost real
		// coverage.
		if covLoss > 0.01 {
			t.Errorf("disjoint pair (%s,%s): exact coverage loss %.4f, want ~0",
				n.NameOf(p[0]), n.NameOf(p[1]), covLoss)
		}
	}
	for _, p := range overlapped {
		ov := cones.Fanout(p[0]).IntersectCountExcluding(cones.Fanout(p[1]), sourceMask)
		estCov, estPat := est.SharePenalty(n, ov)
		if estCov <= 0 || estPat <= 0 {
			t.Errorf("estimator claims overlapped pair (%d gates shared) is free", ov)
		}
		exactCov, _, err := ExactSharePenalty(d, p[0], p[1], budget)
		if err != nil {
			t.Fatal(err)
		}
		// The estimator must be conservative: at least as pessimistic
		// as the measurement (within ATPG noise).
		if exactCov > estCov+0.02 {
			t.Errorf("pair (%s,%s) overlap %d: exact loss %.4f exceeds estimate %.4f",
				n.NameOf(p[0]), n.NameOf(p[1]), ov, exactCov, estCov)
		}
	}
}

func TestExactSharePenaltyRejectsNonTSVs(t *testing.T) {
	d, err := PrepareDie(netgen.ITC99Circuit("b11")[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	ff := d.Netlist.FlipFlops()[0]
	if _, _, err := ExactSharePenalty(d, ff, ff, ReducedBudget(1)); err == nil {
		t.Error("non-TSV signals must be rejected")
	}
}
