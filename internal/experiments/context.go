// Package experiments reproduces every table and figure of the paper's
// evaluation section (SOCC 2019, §V):
//
//	Table I    — TSV-set ordering under Agrawal's method (b12)
//	Table II   — benchmark characteristics (24 ITC'99 dies)
//	Table III  — reused FFs / additional cells / timing violations,
//	             Agrawal vs ours × area-optimized vs performance-optimized
//	Table IV   — stuck-at & transition coverage and pattern counts
//	Table V    — overlapped-cone sharing on/off (b20-b22)
//	Figure 7   — graph edge growth from overlapped-cone sharing
//
// Each experiment takes the list of die profiles to run, so callers choose
// between the paper's full 24-die suite (cmd/tables) and small subsets
// (unit tests, testing.B benchmarks).
package experiments

import (
	"context"
	"fmt"
	"math"

	"wcm3d/internal/cells"
	"wcm3d/internal/faults"
	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
	"wcm3d/internal/par"
	"wcm3d/internal/place"
	"wcm3d/internal/scan"
	"wcm3d/internal/sta"
	"wcm3d/internal/wcm"
)

// Die bundles one prepared benchmark die: generated, placed, and timed,
// with its fault universes enumerated on the functional netlist.
type Die struct {
	Profile   netgen.Profile
	Netlist   *netlist.Netlist
	Lib       *cells.Library
	Placement *place.Placement
	// ClockPS is the die's clock period: the post-DFT-overhead critical
	// path plus a small margin (see PrepareDie).
	ClockPS float64
	// MarginPS is the timing headroom the clock leaves above the
	// unavoidable DFT overhead; the tight scenario's thresholds derive
	// from it.
	MarginPS float64
	// Timing is the base analysis of the bare die at ClockPS.
	Timing *sta.Result
	// StuckAt and Transition are the fault universes (functional
	// netlist), shared by every wrapper variant of the die.
	StuckAt    []faults.Fault
	Transition []faults.TransitionFault
}

// Input packages the die for the WCM solvers, including the cross-phase
// timing refresh: after the first TSV set commits its hardware, the second
// set plans against an analysis that includes it (plus dedicated cells at
// every not-yet-covered TSV, the same reference convention the clock is
// derived from).
func (d *Die) Input() wcm.Input {
	return wcm.Input{
		Netlist:   d.Netlist,
		Lib:       d.Lib,
		Placement: d.Placement,
		Timing:    d.Timing,
		RefreshTiming: func(partial *scan.Assignment) (*sta.Result, error) {
			return d.projectPartial(partial)
		},
	}
}

// projectPartial analyzes the die with the partial plan's hardware plus
// full-wrap cells on uncovered TSVs, and projects arrivals/required times
// back onto the original signals (as PrepareNetlist does for the full-wrap
// reference).
func (d *Die) projectPartial(partial *scan.Assignment) (*sta.Result, error) {
	n := d.Netlist
	full := scan.FullWrap(n)
	combined := &scan.Assignment{BufferedRouting: true}
	covered := make(map[netlist.SignalID]bool)
	for _, g := range partial.Control {
		combined.Control = append(combined.Control, g)
		for _, t := range g.TSVs {
			covered[t] = true
		}
	}
	coveredPort := make(map[int]bool)
	for _, g := range partial.Observe {
		combined.Observe = append(combined.Observe, g)
		for _, p := range g.Ports {
			coveredPort[p] = true
		}
	}
	for _, g := range full.Control {
		if !covered[g.TSVs[0]] {
			combined.Control = append(combined.Control, g)
		}
	}
	for _, g := range full.Observe {
		if !coveredPort[g.Ports[0]] {
			combined.Observe = append(combined.Observe, g)
		}
	}
	fn, fpl, err := scan.ApplyFunctionalMode(n, d.Placement, d.Lib, combined)
	if err != nil {
		return nil, err
	}
	timed, err := sta.Analyze(fn, d.Lib, sta.Config{
		ClockPS:   d.ClockPS,
		Placement: fpl,
		TieLow:    functionalCase(fn),
	})
	if err != nil {
		return nil, err
	}
	return &sta.Result{
		Netlist:    n,
		Lib:        d.Lib,
		Config:     d.Timing.Config,
		LoadFF:     d.Timing.LoadFF,
		DelayPS:    d.Timing.DelayPS,
		ArrivalPS:  timed.ArrivalPS[:n.NumGates()],
		RequiredPS: timed.RequiredPS[:n.NumGates()],
	}, nil
}

// PrepareDie generates, places and times one benchmark die.
//
// The clock period is set the way a designer would: tight against the
// critical path of the die *including* the unavoidable test hardware (a
// dedicated wrapper cell at every TSV — the paper's pre-reuse baseline),
// plus a 3% margin. Reuse decisions then live or die by that margin:
// attaching a test mux over a long wire to a distant flip-flop eats more
// than the margin and shows up as a timing violation in Table III.
func PrepareDie(p netgen.Profile, seed int64) (*Die, error) {
	return PrepareDieOpts(p, seed, PrepareOptions{})
}

// PrepareOptions trims optional die artefacts for callers that know which
// downstream stages they will run.
type PrepareOptions struct {
	// SkipFaultLists leaves Die.StuckAt and Die.Transition nil. The fault
	// universes are only consumed by the ATPG evaluators; a minimize-only
	// sweep (the batch engine's default pipeline) never reads them, and
	// enumerating ~100k collapsed faults per large die costs real time
	// and heap.
	SkipFaultLists bool
}

// PrepareDieOpts is PrepareDie with explicit preparation options.
func PrepareDieOpts(p netgen.Profile, seed int64, po PrepareOptions) (*Die, error) {
	n, err := netgen.Generate(p, seed)
	if err != nil {
		return nil, err
	}
	d, err := PrepareNetlistOpts(n, seed, po)
	if err != nil {
		return nil, err
	}
	d.Profile = p
	return d, nil
}

// PrepareNetlist places and times an existing die (for example one parsed
// from a .bench file) the same way PrepareDie does for generated ones. The
// returned Die carries a synthetic profile derived from the netlist.
func PrepareNetlist(n *netlist.Netlist, seed int64) (*Die, error) {
	return PrepareNetlistOpts(n, seed, PrepareOptions{})
}

// PrepareNetlistOpts is PrepareNetlist with explicit preparation options.
func PrepareNetlistOpts(n *netlist.Netlist, seed int64, po PrepareOptions) (*Die, error) {
	lib := cells.Default45nm()
	pl, err := place.Place(n, place.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	// Post-placement buffering, as physical synthesis would do: long
	// functional nets get repeaters so wire delay is linear and no
	// driver carries more than a segment of wire. DFT wiring added later
	// is buffered only when the planning method asked for it.
	if err := place.InsertRepeaters(n, pl, lib); err != nil {
		return nil, err
	}
	// Critical path with the full-wrap DFT overhead in place.
	fw := scan.FullWrap(n)
	fn, fpl, err := scan.ApplyFunctionalMode(n, pl, lib, fw)
	if err != nil {
		return nil, err
	}
	tie := functionalCase(fn)
	probe, err := sta.Analyze(fn, lib, sta.Config{ClockPS: 1e9, Placement: fpl, TieLow: tie})
	if err != nil {
		return nil, err
	}
	const setupPS = 30
	cp := probe.CriticalPathPS()
	margin := 0.05 * cp
	clock := cp + setupPS + margin

	base, err := sta.Analyze(n, lib, sta.Config{ClockPS: clock, Placement: pl})
	if err != nil {
		return nil, err
	}
	// The slacks the WCM solvers consume must reflect the die as it will
	// ship: with a wrapper mux at every TSV. The bare-die analysis
	// overstates slack by exactly that overhead — a path through three
	// TSV muxes looks ~120 ps looser than it really is, and budgets
	// derived from it produce the very violations the paper's accurate
	// model exists to avoid. Re-analyze the full-wrap view at the real
	// clock and project arrivals/required times back onto the original
	// signals (the clone preserves their IDs); loads stay bare-die (the
	// node filter wants the TSV's real downstream load).
	fwTimed, err := sta.Analyze(fn, lib, sta.Config{ClockPS: clock, Placement: fpl, TieLow: tie})
	if err != nil {
		return nil, err
	}
	timing := &sta.Result{
		Netlist:    n,
		Lib:        lib,
		Config:     base.Config,
		LoadFF:     base.LoadFF,
		DelayPS:    base.DelayPS,
		ArrivalPS:  fwTimed.ArrivalPS[:n.NumGates()],
		RequiredPS: fwTimed.RequiredPS[:n.NumGates()],
	}
	st := netlist.CollectStats(n)
	d := &Die{
		Profile: netgen.Profile{
			Circuit: n.Name, ScanFFs: st.ScanFFs, Gates: st.LogicGates,
			InboundTSVs: st.InboundTSVs, OutboundTSVs: st.OutboundTSVs,
			PIs: st.PIs, POs: st.POs,
		},
		Netlist:   n,
		Lib:       lib,
		Placement: pl,
		ClockPS:   clock,
		MarginPS:  margin,
		Timing:    timing,
	}
	if !po.SkipFaultLists {
		d.StuckAt = faults.CollapsedList(n)
		d.Transition = faults.TransitionList(n)
	}
	return d, nil
}

// PrepareSuite prepares dies for all given profiles, in parallel (each die
// is independent).
func PrepareSuite(profiles []netgen.Profile, seed int64) ([]*Die, error) {
	return PrepareSuiteContext(context.Background(), profiles, seed)
}

// PrepareSuiteContext is PrepareSuite under a caller-owned context: a
// failed or cancelled die aborts the remaining queued preparations instead
// of running the suite to completion.
func PrepareSuiteContext(ctx context.Context, profiles []netgen.Profile, seed int64) ([]*Die, error) {
	dies := make([]*Die, len(profiles))
	err := par.ForEachIndex(ctx, len(profiles), func(ctx context.Context, i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		d, err := PrepareDie(profiles[i], seed)
		if err != nil {
			return fmt.Errorf("experiments: preparing %s: %w", profiles[i].Name(), err)
		}
		dies[i] = d
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dies, nil
}

// Scenario is one timing regime of the paper's §V.A.
type Scenario struct {
	// Name labels the scenario ("area-optimized", "performance-optimized").
	Name string
	// Tight reports whether timing thresholds are derived from the die
	// margin (performance-optimized) or disabled (area-optimized).
	Tight bool
}

// Scenarios returns the paper's two timing regimes.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "area-optimized", Tight: false},
		{Name: "performance-optimized", Tight: true},
	}
}

// AgrawalOptions builds the baseline's configuration for a die under a
// scenario: inbound-first, capacitance-only, no overlapped cones. Under
// the tight scenario the capacitance threshold is derived from the die's
// timing margin — but, being blind to wire, the method will happily pick
// distant flip-flops whose wire load blows that margin.
func AgrawalOptions(d *Die, sc Scenario) wcm.Options {
	opts := wcm.Options{
		CapThFF:      libraryCapThFF,
		SlackThPS:    negInf(),
		DistThUM:     posInf(),
		AllowOverlap: false,
		Order:        wcm.OrderInboundFirst,
		Timing:       wcm.TimingCapOnly,
	}
	if sc.Tight {
		// "Agrawal's method tries to use more hardware resources to
		// meet the rigid timing requirements": it tightens the only
		// knob its model has — the capacitance threshold — but stays
		// blind to wire.
		opts.CapThFF = 0.75 * libraryCapThFF
	}
	return opts
}

// libraryCapThFF is cap_th as the paper defines it: a drive bound from the
// cell library. At ~26 fF per member (TSV pillar plus mux pin), 150 fF
// yields the five-to-six-TSV cliques the paper's results imply.
const libraryCapThFF = 150

// OurOptions builds the paper's configuration: larger-set-first, wire-aware
// timing, overlapped cones under cov_th = 0.5% / p_th = 10. Under the
// tight scenario cap/slack/distance thresholds all derive from the margin.
func OurOptions(d *Die, sc Scenario) wcm.Options {
	opts := wcm.Options{
		CapThFF:        libraryCapThFF,
		SlackThPS:      negInf(),
		DistThUM:       posInf(),
		AllowOverlap:   true,
		CovThFrac:      0.005,
		PatThCount:     10,
		Order:          wcm.OrderLargerFirst,
		Timing:         wcm.TimingCapWire,
		SlackSpendFrac: posInf(), // area-optimized: no timing policing
	}
	if sc.Tight {
		opts.SlackSpendFrac = 0.20
		// cap_th stays the library drivability bound (the paper sources
		// it "from the cell library"); the wire-aware model's per-FF
		// eligibility and d_th do the actual timing policing.
		opts.CapThFF = libraryCapThFF
		// Observation hardware (fold XOR + test mux) may spend a path's
		// slack only down to half the die margin, reserving the rest for
		// control-side load on the same path.
		opts.SlackThPS = 0.5 * d.MarginPS
		opts.DistThUM = tightDistUM(d)
	}
	return opts
}

// tightCapThFF bounds a control point's load so the extra RC stays within
// the die margin: margin >= Rdrive_dff × C_extra.
func tightCapThFF(d *Die) float64 {
	r := d.Lib.Of(netlist.GateDFF).DriveResKOhm
	return d.MarginPS / r
}

// tightDistUM bounds sharing distance so the wire capacitance alone cannot
// consume the margin.
func tightDistUM(d *Die) float64 {
	r := d.Lib.Of(netlist.GateDFF).DriveResKOhm
	return d.MarginPS / (r * d.Lib.WireCapPerUM)
}

func negInf() float64 { return math.Inf(-1) }
func posInf() float64 { return math.Inf(1) }
