package experiments

import (
	"testing"

	"wcm3d/internal/netgen"
	"wcm3d/internal/scan"
	"wcm3d/internal/wcm"
)

// TestEndToEndShapeB11 is the reproduction's regression guard: the full
// pipeline on the b11 family must keep every qualitative property the
// paper's evaluation rests on. If a change to any substrate (generator,
// placer, STA, ATPG, partitioner) breaks one of these, this test names it.
func TestEndToEndShapeB11(t *testing.T) {
	dies, err := PrepareSuite(netgen.ITC99Circuit("b11"), 1)
	if err != nil {
		t.Fatal(err)
	}
	budget := ReducedBudget(1)
	for _, d := range dies {
		name := d.Profile.Name()
		nTSVs := len(d.Netlist.InboundTSVs()) + len(d.Netlist.OutboundTSVs())

		// 1. Full wrap: covers everything, one cell per TSV, meets its
		// own clock.
		fw := scan.FullWrap(d.Netlist)
		if fw.AdditionalCells() != nTSVs {
			t.Errorf("%s: full wrap %d cells, want %d", name, fw.AdditionalCells(), nTSVs)
		}
		if viol, wns, err := CheckTiming(d, fw); err != nil || viol {
			t.Errorf("%s: full wrap timing viol=%v wns=%.1f err=%v", name, viol, wns, err)
		}

		// 2. Ours, both scenarios: valid covering plan, fewer cells than
		// full wrap, zero violations.
		for _, sc := range Scenarios() {
			res, err := wcm.Run(d.Input(), OurOptions(d, sc))
			if err != nil {
				t.Fatalf("%s %s: %v", name, sc.Name, err)
			}
			if err := res.Assignment.Validate(d.Netlist); err != nil {
				t.Fatalf("%s %s: invalid plan: %v", name, sc.Name, err)
			}
			if !res.Assignment.Covered(d.Netlist) {
				t.Errorf("%s %s: not covered", name, sc.Name)
			}
			if res.AdditionalCells >= nTSVs {
				t.Errorf("%s %s: no reduction (%d cells for %d TSVs)",
					name, sc.Name, res.AdditionalCells, nTSVs)
			}
			if viol, wns, err := CheckTiming(d, res.Assignment); err != nil || viol {
				t.Errorf("%s %s: viol=%v wns=%.1f err=%v", name, sc.Name, viol, wns, err)
			}
		}

		// 3. Testability: wrapped die grades far above the bare die.
		our, err := wcm.Run(d.Input(), OurOptions(d, Scenario{Tight: true}))
		if err != nil {
			t.Fatal(err)
		}
		wrapped, err := EvaluateStuckAt(d, our.Assignment, budget)
		if err != nil {
			t.Fatal(err)
		}
		bare, err := EvaluateStuckAt(d, &scan.Assignment{}, budget)
		if err != nil {
			t.Fatal(err)
		}
		if wrapped.RawCoverage <= bare.RawCoverage {
			t.Errorf("%s: wrapping did not raise raw coverage (%.3f <= %.3f)",
				name, wrapped.RawCoverage, bare.RawCoverage)
		}
		if wrapped.Coverage < 0.90 {
			t.Errorf("%s: wrapped test coverage %.3f below 0.90", name, wrapped.Coverage)
		}

		// 4. Scan chains: stitchable, test time scales with patterns.
		chains, err := scan.BuildChains(d.Netlist, d.Placement, our.Assignment, 2)
		if err != nil {
			t.Fatal(err)
		}
		if chains.NumCells() != len(d.Netlist.FlipFlops())+our.AdditionalCells {
			t.Errorf("%s: chain stitching missed cells", name)
		}
		if chains.TestCycles(wrapped.Patterns) <= wrapped.Patterns {
			t.Errorf("%s: test cycles must exceed pattern count", name)
		}
	}
}
