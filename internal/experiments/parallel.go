package experiments

import (
	"fmt"
	"runtime"
	"sync"
)

// forEachIndex runs fn(i) for i in [0, n) across a bounded worker pool and
// returns the first error (by index order, so failures are deterministic).
// Every experiment in this package is embarrassingly parallel across dies:
// each die owns its netlist, placement and timing, and rows are written to
// disjoint indices.
func forEachIndex(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	call := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("experiments: worker panic on item %d: %v", i, r)
			}
		}()
		return fn(i)
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := call(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = call(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
