package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// forEachIndex runs fn(ctx, i) for i in [0, n) across a bounded worker pool
// and returns the first error (by index order, so failures are
// deterministic). Every experiment in this package is embarrassingly
// parallel across dies: each die owns its netlist, placement and timing,
// and rows are written to disjoint indices.
//
// The first failure — or cancellation of ctx — aborts the remaining queued
// work: items not yet handed to a worker are skipped instead of running the
// suite to completion. Items already in flight see the cancellation through
// the context passed to fn and may bail early themselves; their
// context.Canceled returns never shadow the root-cause error of a later
// index.
func forEachIndex(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	inner, cancel := context.WithCancel(ctx)
	defer cancel()
	call := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("experiments: worker panic on item %d: %v", i, r)
			}
		}()
		return fn(inner, i)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := inner.Err(); err != nil {
				return err
			}
			if err := call(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				// A dispatched item always runs (its error wins over any
				// later-index failure); only undispatched work is skipped.
				if err := call(i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-inner.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	// First error by index — but an fn that observed our own abort and
	// returned the context error must not shadow the real failure that
	// triggered it at a later index.
	var ctxErr error
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			if ctxErr == nil {
				ctxErr = err
			}
		default:
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return ctxErr
}
