package experiments

import (
	"bytes"
	"strings"
	"testing"

	"wcm3d/internal/netgen"
)

func TestTAMWidthsOnB11(t *testing.T) {
	dies, err := PrepareSuite(netgen.ITC99Circuit("b11"), 1)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := TAMWidths(dies, []int{8, 16}, ReducedBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (one family x two widths)", len(rows))
	}
	byWidth := map[int]TAMRow{}
	for _, r := range rows {
		if r.Circuit != "b11" {
			t.Errorf("row for %q, want b11", r.Circuit)
		}
		if r.MakespanCycles <= 0 || r.MakespanCycles > r.SerialCycles {
			t.Errorf("width %d: makespan %d vs serial %d", r.Width, r.MakespanCycles, r.SerialCycles)
		}
		if r.Speedup() < 1 {
			t.Errorf("width %d: speedup %.2f < 1", r.Width, r.Speedup())
		}
		if r.Utilization <= 0 || r.Utilization > 1 {
			t.Errorf("width %d: utilization %v out of range", r.Width, r.Utilization)
		}
		byWidth[r.Width] = r
	}
	// More tester wires must never slow the stack down.
	if byWidth[16].MakespanCycles > byWidth[8].MakespanCycles {
		t.Errorf("16 wires (%d cycles) slower than 8 (%d cycles)",
			byWidth[16].MakespanCycles, byWidth[8].MakespanCycles)
	}

	var buf bytes.Buffer
	RenderTAMWidths(&buf, rows)
	if out := buf.String(); !strings.Contains(out, "b11") || !strings.Contains(out, "speedup") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestTAMWidthsRejectsBadWidths(t *testing.T) {
	if _, err := TAMWidths(nil, nil, ReducedBudget(1)); err == nil {
		t.Error("empty width list must error")
	}
	if _, err := TAMWidths(nil, []int{8, 0}, ReducedBudget(1)); err == nil {
		t.Error("non-positive width must error")
	}
}
