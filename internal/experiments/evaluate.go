package experiments

import (
	"fmt"

	"wcm3d/internal/atpg"
	"wcm3d/internal/netlist"
	"wcm3d/internal/scan"
	"wcm3d/internal/sta"
)

// Testability is the ATPG outcome for one wrapped die under one fault
// model.
type Testability struct {
	// Coverage is the test coverage (detected / non-redundant faults) —
	// the metric commercial ATPG reports and the paper tabulates.
	Coverage float64
	// RawCoverage is detected / all faults.
	RawCoverage float64
	// Patterns is the test-pattern count (vector pairs count as two for
	// transition tests, matching commercial reporting).
	Patterns int
}

func (t Testability) String() string {
	return fmt.Sprintf("(%.2f%%, %d)", 100*t.Coverage, t.Patterns)
}

// ATPGBudget tunes the per-die ATPG effort used by the experiments. The
// zero value uses atpg defaults; Reduced() keeps benchmark iterations fast.
type ATPGBudget struct {
	Stuck      atpg.Options
	Transition atpg.Options
}

// DefaultBudget gives the full-effort configuration used by cmd/tables.
func DefaultBudget(seed int64) ATPGBudget {
	return ATPGBudget{
		Stuck:      atpg.Options{Seed: seed},
		Transition: atpg.Options{Seed: seed},
	}
}

// ReducedBudget caps the expensive deterministic phase — for testing.B
// benchmark loops and quick table runs where per-run cost matters more
// than the last percent of coverage. Counter-intuitively, a fast budget
// keeps the random phase GENEROUS (random patterns are cheap and every
// extra detection is one fewer PODEM target) and starves only PODEM.
func ReducedBudget(seed int64) ATPGBudget {
	o := atpg.Options{Seed: seed, MaxRandomBlocks: 48, MaxBacktracks: 6, MinNewDetects: 1, MaxDeterministic: 3000}
	return ATPGBudget{Stuck: o, Transition: o}
}

// EvaluateStuckAt wraps the die per the plan and runs stuck-at ATPG against
// the die's functional fault universe.
func EvaluateStuckAt(d *Die, asn *scan.Assignment, budget ATPGBudget) (Testability, error) {
	tn, err := scan.ApplyTestMode(d.Netlist, asn)
	if err != nil {
		return Testability{}, err
	}
	res, err := atpg.Run(tn, d.StuckAt, budget.Stuck)
	if err != nil {
		return Testability{}, err
	}
	return Testability{
		Coverage:    res.TestCoverage(),
		RawCoverage: res.Coverage(),
		Patterns:    res.PatternCount(),
	}, nil
}

// EvaluateTransition is EvaluateStuckAt for the transition-delay model.
func EvaluateTransition(d *Die, asn *scan.Assignment, budget ATPGBudget) (Testability, error) {
	tn, err := scan.ApplyTestMode(d.Netlist, asn)
	if err != nil {
		return Testability{}, err
	}
	res, err := atpg.RunTransition(tn, d.Transition, budget.Transition)
	if err != nil {
		return Testability{}, err
	}
	return Testability{
		Coverage:    res.TestCoverage(),
		RawCoverage: res.Coverage(),
		Patterns:    res.PatternCount(),
	}, nil
}

// CheckTiming applies the plan's physical test hardware in functional mode
// and reports whether the die still meets its clock (Table III's
// "timing violation" column), along with the worst slack.
func CheckTiming(d *Die, asn *scan.Assignment) (violation bool, wnsPS float64, err error) {
	fn, fpl, err := scan.ApplyFunctionalMode(d.Netlist, d.Placement, d.Lib, asn)
	if err != nil {
		return false, 0, err
	}
	r, err := sta.Analyze(fn, d.Lib, sta.Config{
		ClockPS:   d.ClockPS,
		Placement: fpl,
		TieLow:    functionalCase(fn),
	})
	if err != nil {
		return false, 0, err
	}
	wns := r.WNS()
	return wns < 0, wns, nil
}

// functionalCase returns the case-analysis set for functional signoff:
// test_en tied low, exactly as PrimeTime would be driven. Test-mode paths
// (XOR fold chains behind de-selected mux pins) then contribute load but no
// timed path.
func functionalCase(fn *netlist.Netlist) []netlist.SignalID {
	if id, ok := fn.SignalByName(scan.TestEnableName); ok {
		return []netlist.SignalID{id}
	}
	return nil
}
