package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
	"wcm3d/internal/par"
	"wcm3d/internal/wcm"
)

// ---------------------------------------------------------------- Table I

// Table1Row compares TSV-set processing orders for one die under Agrawal's
// method (area-optimized), the experiment that motivates the paper's
// larger-set-first rule.
type Table1Row struct {
	Die                string
	Inbound, Outbound  int
	InFirstCoverage    float64
	InFirstCells       int
	OutFirstCoverage   float64
	OutFirstCells      int
	LargerFirstMatches bool // larger-first picked the better-or-equal order
}

// Table1 runs the ordering comparison.
func Table1(dies []*Die, budget ATPGBudget) ([]Table1Row, error) {
	var rows []Table1Row
	for _, d := range dies {
		sc := Scenario{Name: "area-optimized", Tight: false}
		row := Table1Row{
			Die:      d.Profile.Name(),
			Inbound:  d.Profile.InboundTSVs,
			Outbound: d.Profile.OutboundTSVs,
		}
		for _, order := range []wcm.OrderPolicy{wcm.OrderInboundFirst, wcm.OrderOutboundFirst} {
			opts := AgrawalOptions(d, sc)
			opts.Order = order
			res, err := wcm.Run(d.Input(), opts)
			if err != nil {
				return nil, fmt.Errorf("table1 %s %s: %w", d.Profile.Name(), order, err)
			}
			tb, err := EvaluateStuckAt(d, res.Assignment, budget)
			if err != nil {
				return nil, err
			}
			if order == wcm.OrderInboundFirst {
				row.InFirstCoverage = tb.Coverage
				row.InFirstCells = res.AdditionalCells
			} else {
				row.OutFirstCoverage = tb.Coverage
				row.OutFirstCells = res.AdditionalCells
			}
		}
		largerIsOutbound := d.Profile.OutboundTSVs >= d.Profile.InboundTSVs
		if largerIsOutbound {
			row.LargerFirstMatches = row.OutFirstCells <= row.InFirstCells
		} else {
			row.LargerFirstMatches = row.InFirstCells <= row.OutFirstCells
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable1 prints the rows in the paper's layout.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table I — fault coverage vs TSV-set processing order (Agrawal's method)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "die\t#in\t#out\tin-first cov\tin-first cells\tout-first cov\tout-first cells")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f%%\t%d\t%.2f%%\t%d\n",
			r.Die, r.Inbound, r.Outbound,
			100*r.InFirstCoverage, r.InFirstCells,
			100*r.OutFirstCoverage, r.OutFirstCells)
	}
	tw.Flush()
}

// --------------------------------------------------------------- Table II

// Table2Row is one die's characteristics.
type Table2Row struct {
	Die   string
	Stats netlist.Stats
}

// Table2 collects benchmark characteristics for the given profiles.
func Table2(profiles []netgen.Profile, seed int64) ([]Table2Row, error) {
	var rows []Table2Row
	for _, p := range profiles {
		n, err := netgen.Generate(p, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{Die: p.Name(), Stats: netlist.CollectStats(n)})
	}
	return rows, nil
}

// RenderTable2 prints the rows in the paper's layout, with averages.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table II — characteristics of the ITC'99 benchmark dies")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "die\t#scan FFs\t#gates\t#TSVs\t#inbound\t#outbound")
	var sFF, sG, sT, sI, sO float64
	for _, r := range rows {
		st := r.Stats
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\n",
			r.Die, st.ScanFFs, st.LogicGates, st.TSVs(), st.InboundTSVs, st.OutboundTSVs)
		sFF += float64(st.ScanFFs)
		sG += float64(st.LogicGates)
		sT += float64(st.TSVs())
		sI += float64(st.InboundTSVs)
		sO += float64(st.OutboundTSVs)
	}
	k := float64(len(rows))
	fmt.Fprintf(tw, "Average\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n", sFF/k, sG/k, sT/k, sI/k, sO/k)
	tw.Flush()
}

// -------------------------------------------------------------- Table III

// Table3Row compares reuse and timing for one die across the four method ×
// scenario combinations.
type Table3Row struct {
	Die string
	// Agrawal / Ours under the area-optimized (loose) scenario.
	AgrLooseReused, AgrLooseCells int
	OurLooseReused, OurLooseCells int
	// Agrawal / Ours under the performance-optimized (tight) scenario.
	AgrTightReused, AgrTightCells int
	AgrTightViolation             bool
	OurTightReused, OurTightCells int
	OurTightViolation             bool
}

// Table3 runs the four configurations on every die, in parallel across
// dies.
func Table3(dies []*Die) ([]Table3Row, error) {
	rows := make([]Table3Row, len(dies))
	err := par.ForEachIndex(context.Background(), len(dies), func(_ context.Context, di int) error {
		d := dies[di]
		row := Table3Row{Die: d.Profile.Name()}
		type cfg struct {
			opts      wcm.Options
			reused    *int
			cells     *int
			violation *bool
		}
		loose := Scenario{Name: "area-optimized", Tight: false}
		tight := Scenario{Name: "performance-optimized", Tight: true}
		cfgs := []cfg{
			{AgrawalOptions(d, loose), &row.AgrLooseReused, &row.AgrLooseCells, nil},
			{OurOptions(d, loose), &row.OurLooseReused, &row.OurLooseCells, nil},
			{AgrawalOptions(d, tight), &row.AgrTightReused, &row.AgrTightCells, &row.AgrTightViolation},
			{OurOptions(d, tight), &row.OurTightReused, &row.OurTightCells, &row.OurTightViolation},
		}
		for _, c := range cfgs {
			res, err := wcm.Run(d.Input(), c.opts)
			if err != nil {
				return fmt.Errorf("table3 %s: %w", d.Profile.Name(), err)
			}
			*c.reused = res.ReusedFFs
			*c.cells = res.AdditionalCells
			if c.violation != nil {
				v, _, err := CheckTiming(d, res.Assignment)
				if err != nil {
					return err
				}
				*c.violation = v
			}
		}
		rows[di] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Table3Summary aggregates a Table III run the way the paper's bottom rows
// do: averages, percentages against the Agrawal/area baseline, and
// violation counts.
type Table3Summary struct {
	AgrLooseReused, AgrLooseCells float64
	OurLooseReused, OurLooseCells float64
	AgrTightReused, AgrTightCells float64
	OurTightReused, OurTightCells float64
	AgrViolations, OurViolations  int
	Dies                          int
}

// Summarize computes the aggregate.
func Summarize(rows []Table3Row) Table3Summary {
	var s Table3Summary
	s.Dies = len(rows)
	for _, r := range rows {
		s.AgrLooseReused += float64(r.AgrLooseReused)
		s.AgrLooseCells += float64(r.AgrLooseCells)
		s.OurLooseReused += float64(r.OurLooseReused)
		s.OurLooseCells += float64(r.OurLooseCells)
		s.AgrTightReused += float64(r.AgrTightReused)
		s.AgrTightCells += float64(r.AgrTightCells)
		s.OurTightReused += float64(r.OurTightReused)
		s.OurTightCells += float64(r.OurTightCells)
		if r.AgrTightViolation {
			s.AgrViolations++
		}
		if r.OurTightViolation {
			s.OurViolations++
		}
	}
	k := float64(len(rows))
	if k > 0 {
		s.AgrLooseReused /= k
		s.AgrLooseCells /= k
		s.OurLooseReused /= k
		s.OurLooseCells /= k
		s.AgrTightReused /= k
		s.AgrTightCells /= k
		s.OurTightReused /= k
		s.OurTightCells /= k
	}
	return s
}

// RenderTable3 prints rows plus the summary block.
func RenderTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table III — reused scan FFs and additional wrapper cells (area vs performance)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "die\tAgr reused\tAgr cells\tOur reused\tOur cells\tAgr reused\tAgr cells\tviol\tOur reused\tOur cells\tviol")
	fmt.Fprintln(tw, "\t(no timing)\t\t(no timing)\t\t(tight)\t\t\t(tight)\t\t")
	mark := func(v bool) string {
		if v {
			return "X"
		}
		return ""
	}
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%d\t%d\t%s\n",
			r.Die,
			r.AgrLooseReused, r.AgrLooseCells,
			r.OurLooseReused, r.OurLooseCells,
			r.AgrTightReused, r.AgrTightCells, mark(r.AgrTightViolation),
			r.OurTightReused, r.OurTightCells, mark(r.OurTightViolation))
	}
	s := Summarize(rows)
	fmt.Fprintf(tw, "Average\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%d/%d\t%.2f\t%.2f\t%d/%d\n",
		s.AgrLooseReused, s.AgrLooseCells,
		s.OurLooseReused, s.OurLooseCells,
		s.AgrTightReused, s.AgrTightCells, s.AgrViolations, s.Dies,
		s.OurTightReused, s.OurTightCells, s.OurViolations, s.Dies)
	pct := func(v, base float64) string {
		if base == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f%%", 100*v/base)
	}
	fmt.Fprintf(tw, "(%%)\t%s\t%s\t%s\t%s\t%s\t%s\t\t%s\t%s\t\n",
		pct(s.AgrLooseReused, s.AgrLooseReused), pct(s.AgrLooseCells, s.AgrLooseCells),
		pct(s.OurLooseReused, s.AgrLooseReused), pct(s.OurLooseCells, s.AgrLooseCells),
		pct(s.AgrTightReused, s.AgrLooseReused), pct(s.AgrTightCells, s.AgrLooseCells),
		pct(s.OurTightReused, s.AgrLooseReused), pct(s.OurTightCells, s.AgrLooseCells))
	tw.Flush()
}

// -------------------------------------------------------------- Table IV

// Table4Row holds testability of one die under the performance-optimized
// scenario, Agrawal vs ours, stuck-at and transition models.
type Table4Row struct {
	Die                     string
	AgrStuck, AgrTransition Testability
	OurStuck, OurTransition Testability
}

// Table4 evaluates coverage and pattern counts.
func Table4(dies []*Die, budget ATPGBudget) ([]Table4Row, error) {
	tight := Scenario{Name: "performance-optimized", Tight: true}
	rows := make([]Table4Row, len(dies))
	err := par.ForEachIndex(context.Background(), len(dies), func(_ context.Context, di int) error {
		d := dies[di]
		row := Table4Row{Die: d.Profile.Name()}
		agr, err := wcm.Run(d.Input(), AgrawalOptions(d, tight))
		if err != nil {
			return fmt.Errorf("table4 %s agrawal: %w", d.Profile.Name(), err)
		}
		our, err := wcm.Run(d.Input(), OurOptions(d, tight))
		if err != nil {
			return fmt.Errorf("table4 %s ours: %w", d.Profile.Name(), err)
		}
		if row.AgrStuck, err = EvaluateStuckAt(d, agr.Assignment, budget); err != nil {
			return err
		}
		if row.AgrTransition, err = EvaluateTransition(d, agr.Assignment, budget); err != nil {
			return err
		}
		if row.OurStuck, err = EvaluateStuckAt(d, our.Assignment, budget); err != nil {
			return err
		}
		if row.OurTransition, err = EvaluateTransition(d, our.Assignment, budget); err != nil {
			return err
		}
		rows[di] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable4 prints the rows with averages.
func RenderTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintln(w, "Table IV — fault coverage and pattern count, stuck-at and transition (tight timing)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "die\tAgr stuck-at\tAgr transition\tOur stuck-at\tOur transition")
	var aC, aP, atC, atP, oC, oP, otC, otP float64
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n",
			r.Die, r.AgrStuck, r.AgrTransition, r.OurStuck, r.OurTransition)
		aC += r.AgrStuck.Coverage
		aP += float64(r.AgrStuck.Patterns)
		atC += r.AgrTransition.Coverage
		atP += float64(r.AgrTransition.Patterns)
		oC += r.OurStuck.Coverage
		oP += float64(r.OurStuck.Patterns)
		otC += r.OurTransition.Coverage
		otP += float64(r.OurTransition.Patterns)
	}
	k := float64(len(rows))
	fmt.Fprintf(tw, "Average\t(%.2f%%, %.2f)\t(%.2f%%, %.2f)\t(%.2f%%, %.2f)\t(%.2f%%, %.2f)\n",
		100*aC/k, aP/k, 100*atC/k, atP/k, 100*oC/k, oP/k, 100*otC/k, otP/k)
	tw.Flush()
}

// --------------------------------------------------------------- Table V

// Table5Row compares overlapped-cone sharing on/off for one die under the
// performance-optimized scenario.
type Table5Row struct {
	Die                     string
	OffReused, OffCells     int
	OffStuck, OffTransition Testability
	OnReused, OnCells       int
	OnStuck, OnTransition   Testability
}

// Table5 runs ours with AllowOverlap off and on.
func Table5(dies []*Die, budget ATPGBudget) ([]Table5Row, error) {
	tight := Scenario{Name: "performance-optimized", Tight: true}
	rows := make([]Table5Row, len(dies))
	err := par.ForEachIndex(context.Background(), len(dies), func(_ context.Context, di int) error {
		d := dies[di]
		row := Table5Row{Die: d.Profile.Name()}
		for _, allow := range []bool{false, true} {
			opts := OurOptions(d, tight)
			opts.AllowOverlap = allow
			res, err := wcm.Run(d.Input(), opts)
			if err != nil {
				return fmt.Errorf("table5 %s overlap=%v: %w", d.Profile.Name(), allow, err)
			}
			sa, err := EvaluateStuckAt(d, res.Assignment, budget)
			if err != nil {
				return err
			}
			tr, err := EvaluateTransition(d, res.Assignment, budget)
			if err != nil {
				return err
			}
			if allow {
				row.OnReused, row.OnCells = res.ReusedFFs, res.AdditionalCells
				row.OnStuck, row.OnTransition = sa, tr
			} else {
				row.OffReused, row.OffCells = res.ReusedFFs, res.AdditionalCells
				row.OffStuck, row.OffTransition = sa, tr
			}
		}
		rows[di] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable5 prints the rows with averages and percentages.
func RenderTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintln(w, "Table V — overlapped fan-in/fan-out cone sharing off vs on (tight timing)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "die\toff reused\toff cells\toff stuck-at\toff transition\ton reused\ton cells\ton stuck-at\ton transition")
	var offR, offC, onR, onC float64
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\t%d\t%d\t%s\t%s\n",
			r.Die, r.OffReused, r.OffCells, r.OffStuck, r.OffTransition,
			r.OnReused, r.OnCells, r.OnStuck, r.OnTransition)
		offR += float64(r.OffReused)
		offC += float64(r.OffCells)
		onR += float64(r.OnReused)
		onC += float64(r.OnCells)
	}
	k := float64(len(rows))
	fmt.Fprintf(tw, "Average\t%.2f\t%.2f\t\t\t%.2f\t%.2f\t\t\n", offR/k, offC/k, onR/k, onC/k)
	if offR > 0 && offC > 0 {
		fmt.Fprintf(tw, "(%%)\t100%%\t100%%\t\t\t%.2f%%\t%.2f%%\t\t\n", 100*onR/offR, 100*onC/offC)
	}
	tw.Flush()
}

// -------------------------------------------------------------- Figure 7

// Figure7Row is one die's graph-size comparison.
type Figure7Row struct {
	Die       string
	EdgesOff  int
	EdgesOn   int
	PctGrowth float64
}

// Figure7 measures solution-space expansion from overlapped-cone edges.
func Figure7(dies []*Die) ([]Figure7Row, error) {
	tight := Scenario{Name: "performance-optimized", Tight: true}
	rows := make([]Figure7Row, len(dies))
	err := par.ForEachIndex(context.Background(), len(dies), func(_ context.Context, di int) error {
		d := dies[di]
		var edges [2]int
		for i, allow := range []bool{false, true} {
			opts := OurOptions(d, tight)
			opts.AllowOverlap = allow
			res, err := wcm.Run(d.Input(), opts)
			if err != nil {
				return fmt.Errorf("figure7 %s overlap=%v: %w", d.Profile.Name(), allow, err)
			}
			edges[i] = res.TotalEdges()
		}
		growth := 0.0
		if edges[0] > 0 {
			growth = 100 * float64(edges[1]-edges[0]) / float64(edges[0])
		}
		rows[di] = Figure7Row{
			Die: d.Profile.Name(), EdgesOff: edges[0], EdgesOn: edges[1], PctGrowth: growth,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFigure7 prints the series the paper plots.
func RenderFigure7(w io.Writer, rows []Figure7Row) {
	fmt.Fprintln(w, "Figure 7 — sharing-graph edges without vs with overlapped-cone edges")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "die\tedges (no overlap)\tedges (overlap)\tgrowth")
	sum := 0.0
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%+.2f%%\n", r.Die, r.EdgesOff, r.EdgesOn, r.PctGrowth)
		sum += r.PctGrowth
	}
	fmt.Fprintf(tw, "Average\t\t\t%+.2f%%\n", sum/float64(len(rows)))
	tw.Flush()
}
