package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"wcm3d/internal/refine"
	"wcm3d/internal/wcm"
)

// RefineGapRow compares the greedy heuristic against the anytime solver
// portfolio (internal/refine) for one die under the performance-optimized
// scenario: the cells each plan inserts, the cells the portfolio saved,
// the solver that found the winning plan, and the total search steps all
// solvers executed inside the budget — the column that shows whether a
// zero-saved row searched hard and found nothing or barely searched at all.
type RefineGapRow struct {
	Die          string
	GreedyCells  int
	RefinedCells int
	Saved        int
	ReusedFFs    int
	Strategy     string
	Steps        int
}

// RefineGap runs the paper's method on every die and then races the solver
// portfolio over each greedy plan for the given wall budget per die. Dies
// run sequentially — the portfolio saturates the machine on its own, and a
// per-die budget only means something when the solvers are not competing
// with twenty-three siblings for cores. The refined count is never worse
// than greedy: every candidate had to pass the independent verifier, and a
// fruitless search hands greedy back unchanged.
func RefineGap(dies []*Die, budget time.Duration, seed int64) ([]RefineGapRow, error) {
	tight := Scenario{Name: "performance-optimized", Tight: true}
	rows := make([]RefineGapRow, 0, len(dies))
	for _, d := range dies {
		opts := OurOptions(d, tight)
		res, err := wcm.Run(d.Input(), opts)
		if err != nil {
			return nil, fmt.Errorf("refine gap %s: %w", d.Profile.Name(), err)
		}
		rr, err := refine.Run(context.Background(), d.Input(), opts, res,
			refine.Options{Budget: budget, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("refine gap %s: %w", d.Profile.Name(), err)
		}
		steps := 0
		for _, so := range rr.Strategies {
			steps += so.Steps
		}
		rows = append(rows, RefineGapRow{
			Die:          d.Profile.Name(),
			GreedyCells:  rr.GreedyCells,
			RefinedCells: rr.AdditionalCells,
			Saved:        rr.CellsSaved,
			ReusedFFs:    rr.ReusedFFs,
			Strategy:     rr.Strategy,
			Steps:        steps,
		})
	}
	return rows, nil
}

// RenderRefineGap prints the rows with totals.
func RenderRefineGap(w io.Writer, rows []RefineGapRow) {
	fmt.Fprintln(w, "Refinement gap — greedy heuristic vs anytime solver portfolio (tight timing)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "die\tgreedy cells\trefined cells\tsaved\treused FFs\twon by\tsteps")
	var g, r, s, st int
	for _, row := range rows {
		won := row.Strategy
		if won == "" {
			won = "-"
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\t%d\n",
			row.Die, row.GreedyCells, row.RefinedCells, row.Saved, row.ReusedFFs, won, row.Steps)
		g += row.GreedyCells
		r += row.RefinedCells
		s += row.Saved
		st += row.Steps
	}
	fmt.Fprintf(tw, "Total\t%d\t%d\t%d\t\t\t%d\n", g, r, s, st)
	if g > 0 {
		fmt.Fprintf(tw, "(%%)\t100%%\t%.2f%%\t%.2f%%\t\t\t\n", 100*float64(r)/float64(g), 100*float64(s)/float64(g))
	}
	tw.Flush()
}
