package experiments

import (
	"fmt"

	"wcm3d/internal/atpg"
	"wcm3d/internal/netlist"
	"wcm3d/internal/scan"
)

// ExactSharePenalty measures — by running real ATPG, the way the paper's
// flow consults its commercial tool — the testability cost of letting two
// inbound TSVs share one control point: the difference in fault coverage
// and pattern count between the die wrapped with the pair separated and
// the die wrapped with the pair sharing. All other TSVs get dedicated
// cells in both variants, isolating the pair's effect.
//
// This is too slow to run per candidate edge inside graph construction
// (the paper's flow has the same cost profile, which is why cov_th/p_th
// exist as thresholds rather than exact optimization); the reproduction
// uses it to validate the structural estimator (see the test suite).
func ExactSharePenalty(d *Die, tsvA, tsvB netlist.SignalID, budget ATPGBudget) (covLoss float64, patInc int, err error) {
	base := scan.FullWrap(d.Netlist)

	shared := scan.FullWrap(d.Netlist)
	var merged scan.ControlGroup
	var kept []scan.ControlGroup
	for _, g := range shared.Control {
		if g.TSVs[0] == tsvA || g.TSVs[0] == tsvB {
			merged.TSVs = append(merged.TSVs, g.TSVs[0])
			continue
		}
		kept = append(kept, g)
	}
	if len(merged.TSVs) != 2 {
		return 0, 0, fmt.Errorf("experiments: signals %d, %d are not inbound TSVs of %s",
			tsvA, tsvB, d.Netlist.Name)
	}
	merged.ReusedFF = netlist.InvalidSignal
	shared.Control = append(kept, merged)

	sep, err := evalQuick(d, base, budget)
	if err != nil {
		return 0, 0, err
	}
	shr, err := evalQuick(d, shared, budget)
	if err != nil {
		return 0, 0, err
	}
	return sep.Coverage - shr.Coverage, shr.Patterns - sep.Patterns, nil
}

func evalQuick(d *Die, a *scan.Assignment, budget ATPGBudget) (Testability, error) {
	tn, err := scan.ApplyTestMode(d.Netlist, a)
	if err != nil {
		return Testability{}, err
	}
	res, err := atpg.Run(tn, d.StuckAt, budget.Stuck)
	if err != nil {
		return Testability{}, err
	}
	return Testability{Coverage: res.TestCoverage(), RawCoverage: res.Coverage(), Patterns: res.PatternCount()}, nil
}
