package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"wcm3d/internal/par"
	"wcm3d/internal/tam"
	"wcm3d/internal/wcm"
)

// TAMRow is one stack's test time at one total TAM width: the experiment
// the paper stops short of — given wrapped dies, what does tester
// bandwidth buy?
type TAMRow struct {
	// Circuit is the benchmark family whose four dies form the stack.
	Circuit string
	// Width is the total TAM wire budget.
	Width int
	// MakespanCycles is the packed schedule's total test time.
	MakespanCycles int
	// SerialCycles is the one-die-at-a-time reference at the same budget.
	SerialCycles int
	// Utilization is the packed plane's busy fraction.
	Utilization float64
}

// Speedup is serial test time over packed makespan.
func (r TAMRow) Speedup() float64 {
	if r.MakespanCycles == 0 {
		return 1
	}
	return float64(r.SerialCycles) / float64(r.MakespanCycles)
}

// TAMWidths runs wrapper/TAM co-optimization for every circuit family in
// dies at every total width: each die is wrapped with the paper's method
// under tight timing, graded with stuck-at ATPG for its pattern count,
// enumerated into its Pareto wrapper designs, and packed per family. The
// expensive per-die stage (minimize + ATPG) runs once per die, in
// parallel, and is shared across widths.
func TAMWidths(dies []*Die, widths []int, budget ATPGBudget) ([]TAMRow, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("experiments: no TAM widths given")
	}
	maxWidth := 0
	for _, w := range widths {
		if w < 1 {
			return nil, fmt.Errorf("experiments: bad TAM width %d", w)
		}
		if w > maxWidth {
			maxWidth = w
		}
	}
	tight := Scenario{Name: "performance-optimized", Tight: true}
	type wrapped struct {
		name    string
		designs []tam.Design
	}
	ws := make([]wrapped, len(dies))
	err := par.ForEachIndex(context.Background(), len(dies), func(_ context.Context, di int) error {
		d := dies[di]
		res, err := wcm.Run(d.Input(), OurOptions(d, tight))
		if err != nil {
			return fmt.Errorf("tam %s: %w", d.Profile.Name(), err)
		}
		tb, err := EvaluateStuckAt(d, res.Assignment, budget)
		if err != nil {
			return err
		}
		designs, err := tam.Enumerate(d.Netlist, d.Placement, res.Assignment, tb.Patterns, maxWidth)
		if err != nil {
			return err
		}
		ws[di] = wrapped{name: d.Profile.Name(), designs: designs}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Group the wrapped dies into stacks by circuit family, preserving
	// the input's family order.
	var families []string
	stacks := map[string][]tam.DieSpec{}
	for di, d := range dies {
		c := d.Profile.Circuit
		if _, ok := stacks[c]; !ok {
			families = append(families, c)
		}
		stacks[c] = append(stacks[c], tam.DieSpec{Name: ws[di].name, Designs: ws[di].designs})
	}

	var rows []TAMRow
	for _, c := range families {
		for _, w := range widths {
			specs := stacks[c]
			// A budget narrower than maxWidth only sees the designs that
			// fit; Pack filters, so the specs can be shared as-is.
			s, err := tam.Pack(specs, w)
			if err != nil {
				return nil, fmt.Errorf("tam %s width %d: %w", c, w, err)
			}
			rows = append(rows, TAMRow{
				Circuit:        c,
				Width:          w,
				MakespanCycles: s.MakespanCycles,
				SerialCycles:   s.SerialCycles,
				Utilization:    s.Utilization(),
			})
		}
	}
	return rows, nil
}

// RenderTAMWidths prints the rows the way results/tam_widths.txt commits
// them.
func RenderTAMWidths(w io.Writer, rows []TAMRow) {
	fmt.Fprintln(w, "TAM widths — stack test time vs total TAM wires (ours, tight timing)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stack\twires\tmakespan (cycles)\tserial (cycles)\tspeedup\tutilization")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.2fx\t%.1f%%\n",
			r.Circuit, r.Width, r.MakespanCycles, r.SerialCycles, r.Speedup(), 100*r.Utilization)
	}
	tw.Flush()
}
