package sta

import (
	"testing"

	"wcm3d/internal/cells"
	"wcm3d/internal/netlist"
)

// TestTieLowMuxCaseAnalysis verifies the signoff semantics the wrapper
// flow relies on: a MUX whose select is tied low is timed through its
// first data pin only, while the de-selected branch still loads its
// driver.
func TestTieLowMuxCaseAnalysis(t *testing.T) {
	n, err := netlist.ParseString("case", `
INPUT(test_en)
INPUT(a)
slow1 = XOR(a, a)
slow2 = XOR(slow1, a)
slow3 = XOR(slow2, a)
fast = BUF(a)
m = MUX(test_en, fast, slow3)
q = DFF(m)
OUTPUT(z) = q
`)
	if err != nil {
		t.Fatal(err)
	}
	lib := cells.Default45nm()
	id := func(s string) netlist.SignalID { i, _ := n.SignalByName(s); return i }

	full, err := Analyze(n, lib, Config{ClockPS: 5000})
	if err != nil {
		t.Fatal(err)
	}
	tied, err := Analyze(n, lib, Config{ClockPS: 5000, TieLow: []netlist.SignalID{id("test_en")}})
	if err != nil {
		t.Fatal(err)
	}

	// Untied: the mux arrival follows the slow XOR chain. Tied: only the
	// fast buffer path counts.
	if full.ArrivalPS[id("m")] <= tied.ArrivalPS[id("m")] {
		t.Errorf("case analysis must cut the mux arrival: full %.1f, tied %.1f",
			full.ArrivalPS[id("m")], tied.ArrivalPS[id("m")])
	}
	// The slow chain must carry no required time under the tie (no timed
	// endpoint downstream of it).
	if !isInfPos(tied.RequiredPS[id("slow3")]) {
		t.Errorf("de-selected branch must be untimed, required = %.1f", tied.RequiredPS[id("slow3")])
	}
	if isInfPos(full.RequiredPS[id("slow3")]) {
		t.Error("without the tie the branch must be timed")
	}
	// Loads are physical: identical in both analyses.
	for i := range full.LoadFF {
		if full.LoadFF[i] != tied.LoadFF[i] {
			t.Fatalf("case analysis changed the load of signal %d", i)
		}
	}
}

func isInfPos(v float64) bool { return v > 1e300 }

// TestTieLowOnlyAffectsMuxSelects confirms the tie is scoped: the same
// signal feeding a non-MUX gate times normally.
func TestTieLowOnlyAffectsMuxSelects(t *testing.T) {
	n, err := netlist.ParseString("scope", `
INPUT(en)
INPUT(a)
g = AND(en, a)
OUTPUT(z) = g
`)
	if err != nil {
		t.Fatal(err)
	}
	lib := cells.Default45nm()
	id := func(s string) netlist.SignalID { i, _ := n.SignalByName(s); return i }
	tied, err := Analyze(n, lib, Config{ClockPS: 5000, TieLow: []netlist.SignalID{id("en")}})
	if err != nil {
		t.Fatal(err)
	}
	if isInfPos(tied.RequiredPS[id("en")]) {
		t.Error("a tied signal feeding an AND must still be timed")
	}
}
