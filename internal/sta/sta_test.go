package sta

import (
	"math"
	"testing"

	"wcm3d/internal/cells"
	"wcm3d/internal/netlist"
	"wcm3d/internal/place"
)

func chain(t *testing.T) *netlist.Netlist {
	t.Helper()
	n, err := netlist.ParseString("chain", `
INPUT(a)
n1 = NOT(a)
n2 = NOT(n1)
n3 = NOT(n2)
OUTPUT(z) = n3
`)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestAnalyzeChainArrivals(t *testing.T) {
	n := chain(t)
	lib := cells.Default45nm()
	r, err := Analyze(n, lib, Config{ClockPS: 10000})
	if err != nil {
		t.Fatal(err)
	}
	id := func(s string) netlist.SignalID { i, _ := n.SignalByName(s); return i }
	// Without placement there is no wire delay: arrival(n_k) is the sum
	// of gate delays along the chain; each NOT drives one NOT pin except
	// the last, which drives the PO (no pin cap).
	notP := lib.Of(netlist.GateNot)
	d12 := notP.IntrinsicPS + notP.DriveResKOhm*notP.InputCapFF // n1, n2 each drive one NOT pin
	d3 := notP.IntrinsicPS                                      // n3 drives only the PO (zero cap)
	if got := r.ArrivalPS[id("n1")]; math.Abs(got-d12) > 1e-9 {
		t.Errorf("arrival(n1) = %v, want %v", got, d12)
	}
	if got := r.ArrivalPS[id("n3")]; math.Abs(got-(2*d12+d3)) > 1e-9 {
		t.Errorf("arrival(n3) = %v, want %v", got, 2*d12+d3)
	}
}

func TestAnalyzeMonotoneArrivals(t *testing.T) {
	n := chain(t)
	lib := cells.Default45nm()
	r, err := Analyze(n, lib, Config{ClockPS: 10000})
	if err != nil {
		t.Fatal(err)
	}
	id := func(s string) netlist.SignalID { i, _ := n.SignalByName(s); return i }
	if !(r.ArrivalPS[id("a")] < r.ArrivalPS[id("n1")] &&
		r.ArrivalPS[id("n1")] < r.ArrivalPS[id("n2")] &&
		r.ArrivalPS[id("n2")] < r.ArrivalPS[id("n3")]) {
		t.Error("arrival times must increase along a chain")
	}
}

func TestSlackAndViolation(t *testing.T) {
	n := chain(t)
	lib := cells.Default45nm()
	loose, err := Analyze(n, lib, Config{ClockPS: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if loose.HasViolation() {
		t.Errorf("10 ns clock must meet timing on a 3-inverter chain (WNS %v)", loose.WNS())
	}
	tight, err := Analyze(n, lib, Config{ClockPS: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !tight.HasViolation() {
		t.Errorf("40 ps clock must violate (critical path %v)", tight.CriticalPathPS())
	}
	if len(tight.Violations(0)) == 0 {
		t.Error("violation list empty despite HasViolation")
	}
	// Violations must be sorted worst-first.
	v := tight.Violations(0)
	for i := 1; i < len(v); i++ {
		if tight.SlackPS(v[i]) < tight.SlackPS(v[i-1]) {
			t.Error("violations not sorted worst-first")
		}
	}
}

func TestCriticalPathMatchesSlackBoundary(t *testing.T) {
	n := chain(t)
	lib := cells.Default45nm()
	r, err := Analyze(n, lib, Config{ClockPS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	cp := r.CriticalPathPS()
	// Clock exactly at critical path + setup: slack must be ~0.
	r2, err := Analyze(n, lib, Config{ClockPS: cp + 30})
	if err != nil {
		t.Fatal(err)
	}
	if wns := r2.WNS(); math.Abs(wns) > 1e-6 {
		t.Errorf("WNS at exact critical clock = %v, want 0", wns)
	}
	// One ps tighter must violate.
	r3, err := Analyze(n, lib, Config{ClockPS: cp + 29})
	if err != nil {
		t.Fatal(err)
	}
	if !r3.HasViolation() {
		t.Error("clock below critical path must violate")
	}
}

func TestDFFEndpointAndLaunch(t *testing.T) {
	n, err := netlist.ParseString("ff", `
INPUT(a)
q = DFF(n1)
n1 = XOR(a, q)
OUTPUT(z) = q
`)
	if err != nil {
		t.Fatal(err)
	}
	lib := cells.Default45nm()
	r, err := Analyze(n, lib, Config{ClockPS: 10000})
	if err != nil {
		t.Fatal(err)
	}
	id := func(s string) netlist.SignalID { i, _ := n.SignalByName(s); return i }
	// FF launches at its clk-to-Q delay, not zero.
	if r.ArrivalPS[id("q")] <= 0 {
		t.Error("flip-flop Q must launch at clk-to-Q > 0")
	}
	// n1 is a capture endpoint (feeds the D pin): finite required time.
	if math.IsInf(r.RequiredPS[id("n1")], 1) {
		t.Error("D-pin driver must have a finite required time")
	}
}

func TestTSVOutHeavierLoad(t *testing.T) {
	// The same driver loaded by a TSV pad must see more capacitance than
	// one loaded by a plain PO.
	mk := func(class netlist.PortClass) *Result {
		n := netlist.New("tsv")
		a := n.MustAddGate(netlist.GateInput, "a")
		b := n.MustAddGate(netlist.GateBuf, "b", a)
		cls := "OUTPUT"
		_ = cls
		if err := n.AddOutput("z", b, class); err != nil {
			t.Fatal(err)
		}
		r, err := Analyze(n, cells.Default45nm(), Config{ClockPS: 10000})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	po := mk(netlist.PortPO)
	tsv := mk(netlist.PortTSVOut)
	bPO, _ := po.Netlist.SignalByName("b")
	bTSV, _ := tsv.Netlist.SignalByName("b")
	if tsv.LoadFF[bTSV] <= po.LoadFF[bPO] {
		t.Errorf("TSV load %v must exceed PO load %v", tsv.LoadFF[bTSV], po.LoadFF[bPO])
	}
	if tsv.ArrivalPS[bTSV] <= po.ArrivalPS[bPO] {
		t.Error("heavier load must slow the driver")
	}
}

func TestWireDelayIncreasesArrival(t *testing.T) {
	n := chain(t)
	lib := cells.Default45nm()
	pl, err := place.Place(n, place.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	noWire, err := Analyze(n, lib, Config{ClockPS: 10000})
	if err != nil {
		t.Fatal(err)
	}
	withWire, err := Analyze(n, lib, Config{ClockPS: 10000, Placement: pl})
	if err != nil {
		t.Fatal(err)
	}
	if withWire.CriticalPathPS() <= noWire.CriticalPathPS() {
		t.Errorf("wire model must lengthen the critical path: %v <= %v",
			withWire.CriticalPathPS(), noWire.CriticalPathPS())
	}
}

func TestAnalyzeRejectsBadConfig(t *testing.T) {
	n := chain(t)
	lib := cells.Default45nm()
	if _, err := Analyze(n, lib, Config{ClockPS: 0}); err == nil {
		t.Error("zero clock must be rejected")
	}
	other := chain(t)
	pl, err := place.Place(other, place.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(n, lib, Config{ClockPS: 100, Placement: pl}); err == nil {
		t.Error("placement for a different netlist must be rejected")
	}
}

func TestSlackConsistency(t *testing.T) {
	// Property: on any path driver→sink, slack(driver) <= slack(sink)+eps
	// is NOT generally true, but required(f) <= required(g) - delay(g)
	// must hold for every edge by construction. Verify on a small mixed
	// circuit.
	n, err := netlist.ParseString("mix", `
INPUT(a)
INPUT(b)
TSV_IN(t)
n1 = AND(a, b)
n2 = OR(n1, t)
n3 = XOR(n2, n1)
q = DFF(n3)
OUTPUT(z) = n3
TSV_OUT(u) = n2
`)
	if err != nil {
		t.Fatal(err)
	}
	lib := cells.Default45nm()
	r, err := Analyze(n, lib, Config{ClockPS: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range n.Gates {
		g := n.Gate(netlist.SignalID(i))
		if !g.Type.IsCombinational() {
			continue
		}
		for _, f := range g.Fanin {
			bound := r.RequiredPS[i] - r.DelayPS[i]
			if r.RequiredPS[f] > bound+1e-9 {
				t.Errorf("required(%s)=%v exceeds required(%s)-delay=%v",
					n.NameOf(f), r.RequiredPS[f], n.NameOf(netlist.SignalID(i)), bound)
			}
		}
	}
}

func TestCriticalPath(t *testing.T) {
	n := chain(t)
	lib := cells.Default45nm()
	r, err := Analyze(n, lib, Config{ClockPS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	path := r.CriticalPath()
	if len(path) != 4 {
		t.Fatalf("path length %d, want 4 (a→n1→n2→n3)", len(path))
	}
	names := make([]string, len(path))
	for i, id := range path {
		names[i] = n.NameOf(id)
	}
	want := []string{"a", "n1", "n2", "n3"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("path = %v, want %v", names, want)
		}
	}
	// Arrivals must be non-decreasing along the path.
	for i := 1; i < len(path); i++ {
		if r.ArrivalPS[path[i]] < r.ArrivalPS[path[i-1]] {
			t.Error("arrivals must grow along the critical path")
		}
	}
}

func TestCriticalPathRespectsCaseAnalysis(t *testing.T) {
	n, err := netlist.ParseString("cp", `
INPUT(en)
INPUT(a)
s1 = XOR(a, a)
s2 = XOR(s1, a)
s3 = XOR(s2, a)
fast = BUF(a)
m = MUX(en, fast, s3)
q = DFF(m)
OUTPUT(z) = q
`)
	if err != nil {
		t.Fatal(err)
	}
	lib := cells.Default45nm()
	id := func(s string) netlist.SignalID { i, _ := n.SignalByName(s); return i }
	tied, err := Analyze(n, lib, Config{ClockPS: 5000, TieLow: []netlist.SignalID{id("en")}})
	if err != nil {
		t.Fatal(err)
	}
	for _, sig := range tied.CriticalPath() {
		name := n.NameOf(sig)
		if name == "s1" || name == "s2" || name == "s3" {
			t.Fatalf("tied critical path crosses de-selected branch at %s", name)
		}
	}
}
