// Package sta implements static timing analysis over a placed gate-level
// netlist — the reproduction's stand-in for PrimeTime. It computes, for
// every signal, the quantities the wrapper-cell flow consumes:
//
//   - capacitive load (gate pins + wire + TSV pads), the paper's
//     capacity_load(n) for inbound TSVs and the cap side of the merge test
//     in Algorithm 2;
//   - arrival time, required time and slack under a clock-period
//     constraint, the paper's slack(n) for outbound TSVs;
//   - worst negative slack and the endpoint violation list used to judge
//     "timing violation" in Table III.
//
// The delay model is a linear (first-order Elmore) model: a gate's delay is
// intrinsic + Rdrive·Cload where Cload includes fanout pin capacitance and
// routed wire capacitance from the placement; each wire adds a distributed
// RC term on top. When no placement is supplied the wire terms vanish and
// the model degrades to exactly the capacitance-only model the paper
// attributes to Agrawal et al. — the ablation Table III turns on.
package sta

import (
	"fmt"
	"math"

	"wcm3d/internal/cells"
	"wcm3d/internal/netlist"
	"wcm3d/internal/place"
)

// Config parameterizes an analysis run.
type Config struct {
	// ClockPS is the clock period constraint in picoseconds.
	ClockPS float64
	// SetupPS is the flip-flop setup time subtracted from the clock
	// period at capture endpoints. Default 30 ps.
	SetupPS float64
	// Placement supplies wire lengths. Nil means "capacitance-only"
	// timing (no wire delay, no wire cap) — Agrawal's model.
	Placement *place.Placement
	// TieLow lists signals assumed constant 0 for path sensitization —
	// case analysis, as signoff tools apply to test-enable pins. A MUX
	// whose select is tied low is timed through its first data pin only;
	// the de-selected branch still contributes capacitive load (the
	// hardware is physically there) but no timed path. Only MUX selects
	// honor the tie; other uses of the signal time normally.
	TieLow []netlist.SignalID
}

func (c Config) withDefaults() Config {
	if c.SetupPS == 0 {
		c.SetupPS = 30
	}
	return c
}

// Result is a completed timing analysis.
type Result struct {
	Netlist *netlist.Netlist
	Lib     *cells.Library
	Config  Config

	// LoadFF[id] is the total capacitive load (fF) driven by signal id.
	LoadFF []float64
	// DelayPS[id] is the propagation delay (ps) of the gate driving id.
	DelayPS []float64
	// ArrivalPS[id] is the latest arrival time at the output of gate id.
	ArrivalPS []float64
	// RequiredPS[id] is the earliest required time at the output of
	// gate id; +Inf for signals with no timed endpoint downstream.
	RequiredPS []float64

	tiedLow map[netlist.SignalID]bool
}

// Analyze runs a full timing analysis.
func Analyze(n *netlist.Netlist, lib *cells.Library, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.ClockPS <= 0 {
		return nil, fmt.Errorf("sta: clock period must be positive, got %v", cfg.ClockPS)
	}
	if cfg.Placement != nil && cfg.Placement.Netlist != n {
		return nil, fmt.Errorf("sta: placement belongs to netlist %q, analyzing %q",
			cfg.Placement.Netlist.Name, n.Name)
	}
	r := &Result{
		Netlist:    n,
		Lib:        lib,
		Config:     cfg,
		LoadFF:     make([]float64, n.NumGates()),
		DelayPS:    make([]float64, n.NumGates()),
		ArrivalPS:  make([]float64, n.NumGates()),
		RequiredPS: make([]float64, n.NumGates()),
	}
	r.tiedLow = make(map[netlist.SignalID]bool, len(cfg.TieLow))
	for _, t := range cfg.TieLow {
		r.tiedLow[t] = true
	}
	r.computeLoads()
	r.computeDelays()
	r.computeArrivals()
	r.computeRequired()
	return r, nil
}

// timedPins returns which fanin indices of a gate are timed: for a MUX
// whose select is tied low, only pin 1; otherwise all pins.
func (r *Result) timedPins(g *netlist.Gate) []int {
	if g.Type == netlist.GateMux2 && r.tiedLow[g.Fanin[0]] {
		return muxTiedPins
	}
	return nil // nil = all pins
}

var muxTiedPins = []int{1}

// computeLoads sums, for every signal, the input capacitance of each fanout
// pin, the wire capacitance to each sink (if placed), and the TSV pad
// capacitance (plus wire) for outbound-TSV ports.
func (r *Result) computeLoads() {
	n, lib, pl := r.Netlist, r.Lib, r.Config.Placement
	fanouts := n.Fanouts()
	for i := range n.Gates {
		id := netlist.SignalID(i)
		var load float64
		for _, fo := range fanouts[id] {
			load += lib.Of(n.TypeOf(fo)).InputCapFF
			if pl != nil {
				load += lib.WireCapFF(pl.WireLength(id, fo))
			}
		}
		r.LoadFF[id] = load
	}
	for oi, o := range n.Outputs {
		extra := 0.0
		if o.Class == netlist.PortTSVOut {
			extra = lib.TSVCapFF
		}
		if pl != nil {
			extra += lib.WireCapFF(pl.DistanceToOut(o.Signal, oi))
		}
		r.LoadFF[o.Signal] += extra
	}
}

func (r *Result) computeDelays() {
	n, lib := r.Netlist, r.Lib
	for i := range n.Gates {
		id := netlist.SignalID(i)
		p := lib.Of(n.TypeOf(id))
		r.DelayPS[id] = p.IntrinsicPS + p.DriveResKOhm*r.LoadFF[id]
	}
}

// wirePS is the per-sink incremental wire delay from signal `from` to the
// gate (or pad) at location of `to`.
func (r *Result) wirePS(from, to netlist.SignalID) float64 {
	if r.Config.Placement == nil {
		return 0
	}
	drive := r.Lib.Of(r.Netlist.TypeOf(from)).DriveResKOhm
	return r.Lib.WireDelayPS(r.Config.Placement.WireLength(from, to), drive)
}

func (r *Result) wireToOutPS(from netlist.SignalID, outIdx int) float64 {
	if r.Config.Placement == nil {
		return 0
	}
	drive := r.Lib.Of(r.Netlist.TypeOf(from)).DriveResKOhm
	return r.Lib.WireDelayPS(r.Config.Placement.DistanceToOut(from, outIdx), drive)
}

// computeArrivals propagates arrival times in topological order. Sources
// launch at t=0 except flip-flops, which launch at their clk-to-Q delay.
func (r *Result) computeArrivals() {
	n := r.Netlist
	for _, id := range n.TopoOrder() {
		g := n.Gate(id)
		switch {
		case g.Type == netlist.GateDFF:
			r.ArrivalPS[id] = r.DelayPS[id] // clk->Q
		case g.Type.IsSource():
			r.ArrivalPS[id] = 0
		default:
			worst := 0.0
			if pins := r.timedPins(g); pins != nil {
				for _, pin := range pins {
					f := g.Fanin[pin]
					if at := r.ArrivalPS[f] + r.wirePS(f, id); at > worst {
						worst = at
					}
				}
			} else {
				for _, f := range g.Fanin {
					if at := r.ArrivalPS[f] + r.wirePS(f, id); at > worst {
						worst = at
					}
				}
			}
			r.ArrivalPS[id] = worst + r.DelayPS[id]
		}
	}
}

// computeRequired propagates required times backward. Endpoints are
// flip-flop D pins and output ports, both required at clock - setup.
func (r *Result) computeRequired() {
	n := r.Netlist
	deadline := r.Config.ClockPS - r.Config.SetupPS
	for i := range r.RequiredPS {
		r.RequiredPS[i] = math.Inf(1)
	}
	for oi, o := range n.Outputs {
		req := deadline - r.wireToOutPS(o.Signal, oi)
		if req < r.RequiredPS[o.Signal] {
			r.RequiredPS[o.Signal] = req
		}
	}
	// Seed every capture endpoint BEFORE the backward sweep: flip-flops
	// sit early in the topological order (their Q is a source), so
	// handling their D pins during the reverse walk would set the
	// endpoint after its fan-in cone had already been processed, leaving
	// everything upstream optimistically untimed.
	for _, ff := range n.FlipFlops() {
		d := n.Gate(ff).Fanin[0]
		req := deadline - r.wirePS(d, ff)
		if req < r.RequiredPS[d] {
			r.RequiredPS[d] = req
		}
	}
	order := n.TopoOrder()
	for k := len(order) - 1; k >= 0; k-- {
		id := order[k]
		g := n.Gate(id)
		if g.Type == netlist.GateDFF {
			continue // endpoints seeded above
		}
		if g.Type.IsSource() || math.IsInf(r.RequiredPS[id], 1) {
			// Required time at this gate's output does not constrain
			// fanins if nothing downstream is timed... but we still
			// must not skip propagation for sources (no fanin anyway).
			if g.Type.IsSource() {
				continue
			}
		}
		if pins := r.timedPins(g); pins != nil {
			for _, pin := range pins {
				f := g.Fanin[pin]
				req := r.RequiredPS[id] - r.DelayPS[id] - r.wirePS(f, id)
				if req < r.RequiredPS[f] {
					r.RequiredPS[f] = req
				}
			}
			continue
		}
		for _, f := range g.Fanin {
			req := r.RequiredPS[id] - r.DelayPS[id] - r.wirePS(f, id)
			if req < r.RequiredPS[f] {
				r.RequiredPS[f] = req
			}
		}
	}
}

// SlackPS returns the timing slack of a signal: required - arrival.
// Signals with no timed endpoint downstream have +Inf slack.
func (r *Result) SlackPS(id netlist.SignalID) float64 {
	return r.RequiredPS[id] - r.ArrivalPS[id]
}

// WNS returns the worst negative slack over all signals (the most negative
// slack; positive if the whole die meets timing).
func (r *Result) WNS() float64 {
	wns := math.Inf(1)
	for i := range r.ArrivalPS {
		if s := r.SlackPS(netlist.SignalID(i)); s < wns {
			wns = s
		}
	}
	return wns
}

// HasViolation reports whether any signal misses the clock constraint.
func (r *Result) HasViolation() bool { return r.WNS() < 0 }

// Violations returns the signals with negative slack, worst first capped at
// max entries (0 = all).
func (r *Result) Violations(max int) []netlist.SignalID {
	var v []netlist.SignalID
	for i := range r.ArrivalPS {
		if r.SlackPS(netlist.SignalID(i)) < 0 {
			v = append(v, netlist.SignalID(i))
		}
	}
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && r.SlackPS(v[j]) < r.SlackPS(v[j-1]); j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
	if max > 0 && len(v) > max {
		v = v[:max]
	}
	return v
}

// CriticalPathPS returns the longest arrival time at any endpoint — the
// minimum feasible clock period before setup margin.
func (r *Result) CriticalPathPS() float64 {
	n := r.Netlist
	worst := 0.0
	for oi, o := range n.Outputs {
		if at := r.ArrivalPS[o.Signal] + r.wireToOutPS(o.Signal, oi); at > worst {
			worst = at
		}
	}
	for _, ff := range n.FlipFlops() {
		d := n.Gate(ff).Fanin[0]
		if at := r.ArrivalPS[d] + r.wirePS(d, ff); at > worst {
			worst = at
		}
	}
	return worst
}

// CriticalPath returns the worst-slack endpoint's path as a signal chain
// from a launch point to the endpoint, following the latest-arriving fanin
// at each step (respecting case analysis). Empty when the design has no
// timed endpoints.
func (r *Result) CriticalPath() []netlist.SignalID {
	n := r.Netlist
	// Worst endpoint: minimum slack among true capture points (signals
	// feeding an output port or a flip-flop D pin) — every signal on a
	// critical path shares the path slack, so the walk must anchor at
	// the endpoint, not the first minimal-slack signal found.
	isEndpoint := make(map[netlist.SignalID]bool)
	for _, o := range n.Outputs {
		isEndpoint[o.Signal] = true
	}
	for _, ff := range n.FlipFlops() {
		isEndpoint[n.Gate(ff).Fanin[0]] = true
	}
	end := netlist.InvalidSignal
	worst := math.Inf(1)
	for i := range r.ArrivalPS { // ID order keeps tie-breaks deterministic
		id := netlist.SignalID(i)
		if !isEndpoint[id] || math.IsInf(r.RequiredPS[id], 1) {
			continue
		}
		if s := r.SlackPS(id); s < worst {
			worst, end = s, id
		}
	}
	if end == netlist.InvalidSignal {
		return nil
	}
	var path []netlist.SignalID
	cur := end
	for steps := 0; steps <= n.NumGates(); steps++ {
		path = append(path, cur)
		g := n.Gate(cur)
		if g.Type.IsSource() || g.Type == netlist.GateDFF || len(g.Fanin) == 0 {
			break
		}
		pins := r.timedPins(g)
		pick := netlist.InvalidSignal
		consider := func(f netlist.SignalID) {
			at := r.ArrivalPS[f] + r.wirePS(f, cur)
			if pick == netlist.InvalidSignal || at > r.ArrivalPS[pick]+r.wirePS(pick, cur) {
				pick = f
			}
		}
		if pins != nil {
			for _, pin := range pins {
				consider(g.Fanin[pin])
			}
		} else {
			for _, f := range g.Fanin {
				consider(f)
			}
		}
		if pick == netlist.InvalidSignal {
			break
		}
		cur = pick
	}
	// Reverse to launch→endpoint order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
