package tsvrepair

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"wcm3d/internal/netgen"
)

// randomFault draws one well-formed fault over the live TSV set. Pair
// kinds that happen to draw the same TSV twice degrade to Open so every
// generated delta is resolvable in shape (the planner still decides
// whether spares remain).
func randomFault(rng *rand.Rand, names []string) Fault {
	kinds := []FaultKind{Stuck0, Stuck1, Open, Bridge, Crosstalk}
	f := Fault{Kind: kinds[rng.Intn(len(kinds))], TSV: names[rng.Intn(len(names))]}
	if f.Kind == Bridge || f.Kind == Crosstalk {
		other := names[rng.Intn(len(names))]
		if other == f.TSV {
			f.Kind = Open
		} else {
			f.With = other
		}
	}
	return f
}

// TestFullEquivalenceSweepTableII is the replan release gate: randomized
// TSV-delta sequences on every Table II profile at workers {1,2,8}, each
// (profile, workers) pair under its own sequence seed — 72 seeds, 24
// profiles, every step holding the differential contract (incremental
// replan deep-equal to a from-scratch rerun, and verify-clean). Minutes of
// work, so it only runs when WCM3D_FULL_EQUIV=1 (CI's replan-equivalence
// job sets it).
func TestFullEquivalenceSweepTableII(t *testing.T) {
	if os.Getenv("WCM3D_FULL_EQUIV") == "" {
		t.Skip("set WCM3D_FULL_EQUIV=1 to run the full 24-die replan equivalence sweep")
	}
	workersGrid := []int{1, 2, 8}
	for pi, prof := range netgen.ITC99Profiles() {
		pi, prof := pi, prof
		t.Run(prof.Name(), func(t *testing.T) {
			t.Parallel()
			d, err := PrepareWithSpares(prof, 1, SpareSpec{Inbound: 4, Outbound: 2})
			if err != nil {
				t.Fatal(err)
			}
			for wi, workers := range workersGrid {
				seqSeed := int64(pi*len(workersGrid) + wi + 1)
				t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
					p, err := NewPlanner(d, planOpts(workers))
					if err != nil {
						t.Fatal(err)
					}
					rng := rand.New(rand.NewSource(seqSeed))
					for step := 0; step < 2; step++ {
						f := randomFault(rng, liveTSVNames(p.Die()))
						if _, err := p.Apply(Delta{Faults: []Fault{f}}); err != nil {
							if errors.Is(err, ErrNoSpares) {
								break
							}
							t.Fatalf("seed %d step %d (%s): %v", seqSeed, step, f, err)
						}
						assertDifferential(t, p, fmt.Sprintf("seed %d step %d %s", seqSeed, step, f))
					}
				})
			}
		})
	}
}
