package tsvrepair

import (
	"fmt"
	"reflect"
	"sort"
	"time"

	"wcm3d/internal/experiments"
	"wcm3d/internal/wcm"
)

// SpeedupRow is one die's replan-vs-rerun timing: a single stuck-at TSV
// failure repaired onto a spare, then the incremental replan timed against
// a from-scratch rerun over the identical patched input. Times are medians
// over the trials; Equal and Verified certify the speed was not bought
// with a different (or invalid) plan.
type SpeedupRow struct {
	Die      string
	ReplanMS float64
	RerunMS  float64
	Ratio    float64
	Equal    bool
	Verified bool
}

// MeasureSpeedup runs `trials` cold single-fault replans on d. Every trial
// builds a fresh planner — the baseline run seeds the session caches, the
// fault is applied, and the first Run after the patch is what the clock
// sees, so the replan time is the honest incremental cost, not a
// stage-cache hit on an unchanged graph. The from-scratch rerun shares
// the trial's patched die.
func MeasureSpeedup(d *experiments.Die, opts wcm.Options, trials int) (SpeedupRow, error) {
	if trials < 1 {
		trials = 1
	}
	row := SpeedupRow{Die: d.Profile.Name(), Equal: true, Verified: true}
	replanMS := make([]float64, 0, trials)
	rerunMS := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		p, err := NewPlanner(d, opts)
		if err != nil {
			return row, err
		}
		ins := p.die.Netlist.InboundTSVs()
		if len(ins) == 0 {
			return row, fmt.Errorf("tsvrepair: %s has no inbound TSVs to fail", row.Die)
		}
		victim := p.die.Netlist.NameOf(ins[0])
		if _, err := p.Apply(Delta{Faults: []Fault{{Kind: Stuck0, TSV: victim}}}); err != nil {
			return row, fmt.Errorf("tsvrepair: %s: applying fault: %w", row.Die, err)
		}
		start := time.Now()
		inc, err := p.Replan()
		if err != nil {
			return row, fmt.Errorf("tsvrepair: %s: replan: %w", row.Die, err)
		}
		replanMS = append(replanMS, ms(time.Since(start)))
		start = time.Now()
		ref, err := p.Rerun()
		if err != nil {
			return row, fmt.Errorf("tsvrepair: %s: rerun: %w", row.Die, err)
		}
		rerunMS = append(rerunMS, ms(time.Since(start)))
		if !reflect.DeepEqual(inc, ref) {
			row.Equal = false
		}
		if i == 0 {
			vr, err := p.Verify(inc)
			if err != nil {
				return row, fmt.Errorf("tsvrepair: %s: verify: %w", row.Die, err)
			}
			if !vr.OK() {
				row.Verified = false
			}
		}
	}
	row.ReplanMS = median(replanMS)
	row.RerunMS = median(rerunMS)
	if row.ReplanMS > 0 {
		row.Ratio = row.RerunMS / row.ReplanMS
	}
	return row, nil
}

// MedianRatio is the sweep-level headline: the median of the per-die
// speedup ratios.
func MedianRatio(rows []SpeedupRow) float64 {
	rs := make([]float64, len(rows))
	for i, r := range rows {
		rs[i] = r.Ratio
	}
	return median(rs)
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 0 {
		return (s[n/2-1] + s[n/2]) / 2
	}
	return s[len(s)/2]
}
