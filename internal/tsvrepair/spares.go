package tsvrepair

import (
	"fmt"
	"strings"

	"wcm3d/internal/experiments"
	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
)

// Spare-site naming. Discovery is by prefix, so dies parsed from .bench
// files can declare their own spares with the same names.
const (
	// SpareInPrefix names inbound spare landing pads ("spare_in0", ...).
	SpareInPrefix = "spare_in"
	// SpareOutPrefix names outbound spare ports ("spare_out0", ...).
	SpareOutPrefix = "spare_out"
	// spareSrcPrefix names the inert drivers parked on unpromoted
	// outbound spare ports.
	spareSrcPrefix = "spare_src"
)

// SpareSpec configures how many spare TSV sites a die carries per side.
type SpareSpec struct {
	Inbound  int `json:"inbound"`
	Outbound int `json:"outbound"`
}

// AddSpares materializes spare TSV sites on an unprepared netlist —
// before placement and timing, so the sites get real coordinates and the
// signoff analysis includes them. An inbound spare is a plain input pad
// with no fanout (floating until a repair promotes it to a TSV landing
// pad); an outbound spare is a plain output port parked on an inert
// constant driver (a repair rewires it onto the failed port's signal and
// promotes it). Promotion retypes and rewires only: no gate or port is
// ever added after preparation, which is what keeps the replan session's
// caches valid.
func AddSpares(n *netlist.Netlist, spec SpareSpec) error {
	if spec.Inbound < 0 || spec.Outbound < 0 {
		return fmt.Errorf("tsvrepair: negative spare count %+v", spec)
	}
	for i := 0; i < spec.Inbound; i++ {
		if _, err := n.AddGate(netlist.GateInput, fmt.Sprintf("%s%d", SpareInPrefix, i)); err != nil {
			return fmt.Errorf("tsvrepair: adding inbound spare: %w", err)
		}
	}
	for i := 0; i < spec.Outbound; i++ {
		src, err := n.AddGate(netlist.GateConst0, fmt.Sprintf("%s%d", spareSrcPrefix, i))
		if err != nil {
			return fmt.Errorf("tsvrepair: adding outbound spare driver: %w", err)
		}
		if err := n.AddOutput(fmt.Sprintf("%s%d", SpareOutPrefix, i), src, netlist.PortPO); err != nil {
			return fmt.Errorf("tsvrepair: adding outbound spare port: %w", err)
		}
	}
	return nil
}

// PrepareWithSpares generates a benchmark die, adds spare TSV sites, and
// prepares it (placement, repeaters, clock derivation, signoff timing)
// exactly as experiments.PrepareDie would. Fault universes are skipped:
// the repair workload is minimize-and-verify only.
func PrepareWithSpares(p netgen.Profile, seed int64, spec SpareSpec) (*experiments.Die, error) {
	n, err := netgen.Generate(p, seed)
	if err != nil {
		return nil, err
	}
	if err := AddSpares(n, spec); err != nil {
		return nil, err
	}
	d, err := experiments.PrepareNetlistOpts(n, seed, experiments.PrepareOptions{SkipFaultLists: true})
	if err != nil {
		return nil, err
	}
	d.Profile = p
	return d, nil
}

// CloneDie deep-copies the mutable state of a prepared die — the netlist,
// plus the Placement and Timing views that point at it — so a repair
// session can patch TSV wiring without corrupting a shared original (the
// wcmd service hands cached dies to concurrent jobs). The frozen payload
// is shared: coordinate slices, timing arrays, the library and the fault
// universes. That is sound because repairs rewire pins and retype pads
// but never move cells; phase-one slacks stay the pre-repair signoff
// (spare sites were part of it) and the cross-phase refresh re-times the
// patched die exactly.
func CloneDie(d *experiments.Die) *experiments.Die {
	c := *d
	n := d.Netlist.Clone()
	c.Netlist = n
	if d.Placement != nil {
		pl := *d.Placement
		pl.Netlist = n
		c.Placement = &pl
	}
	if d.Timing != nil {
		t := *d.Timing
		t.Netlist = n
		c.Timing = &t
	}
	return &c
}

// spareSites scans a die for unpromoted spare sites, in name order.
func spareSites(n *netlist.Netlist) (inbound []netlist.SignalID, outbound []int) {
	for i := range n.Gates {
		id := netlist.SignalID(i)
		if n.TypeOf(id) == netlist.GateInput && strings.HasPrefix(n.NameOf(id), SpareInPrefix) {
			inbound = append(inbound, id)
		}
	}
	for i, o := range n.Outputs {
		if o.Class == netlist.PortPO && strings.HasPrefix(o.Name, SpareOutPrefix) {
			outbound = append(outbound, i)
		}
	}
	return inbound, outbound
}
