// Package tsvrepair models pre-bond TSV defects and repairs them against
// spare TSV sites, replanning the die's wrapper-cell assignment
// incrementally instead of from scratch.
//
// The workload it implements: manufacturing test finds a defective TSV
// (stuck, open, bridged, or in a crosstalk-prone pair); the repair flow
// reroutes the victim's net to a spare TSV and the pre-bond test plan must
// be regenerated for the patched die. Regeneration rides a wcm.Session —
// the masked-cone and edge-verdict caches survive the patch because a
// repair only rewires source pads — so a replan costs the graph rebuild
// and the partition, not the cone traversals and the O(n²) edge sweep.
// The correctness anchor is differential: every incremental plan must be
// verify.Plan-clean and cell-count-equal to a from-scratch wcm.Run on the
// same patched die, and the test suites in this package certify exactly
// that.
package tsvrepair

import (
	"errors"
	"fmt"
)

// Structured failures, so callers (the wcmd service, the CLI) can map
// repair outcomes onto exit codes and HTTP statuses.
var (
	// ErrUnknownTSV marks a fault naming no live TSV on the die — either
	// it never existed or an earlier repair already took it out of
	// service.
	ErrUnknownTSV = errors.New("tsvrepair: unknown TSV")
	// ErrNoSpares marks a delta needing more spare sites than remain.
	ErrNoSpares = errors.New("tsvrepair: spare TSVs exhausted")
	// ErrBadFault marks a structurally invalid fault (unknown kind,
	// missing or self-referencing partner, duplicate victim, empty delta).
	ErrBadFault = errors.New("tsvrepair: malformed fault")
)

// FaultKind enumerates the pre-bond TSV defect classes.
type FaultKind uint8

// Defect classes. Stuck and open defects kill one TSV; a bridge kills
// both of its pair; a crosstalk-prone pair is repaired by relocating the
// victim away from the aggressor.
const (
	Stuck0 FaultKind = iota + 1
	Stuck1
	Open
	Bridge
	Crosstalk
)

// String names the kind with the spelling the CLI and service accept.
func (k FaultKind) String() string {
	switch k {
	case Stuck0:
		return "stuck0"
	case Stuck1:
		return "stuck1"
	case Open:
		return "open"
	case Bridge:
		return "bridge"
	case Crosstalk:
		return "crosstalk"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// ParseFaultKind maps the CLI/service spelling back to a kind.
func ParseFaultKind(s string) (FaultKind, error) {
	switch s {
	case "stuck0", "stuck-0", "sa0":
		return Stuck0, nil
	case "stuck1", "stuck-1", "sa1":
		return Stuck1, nil
	case "open":
		return Open, nil
	case "bridge":
		return Bridge, nil
	case "crosstalk", "xtalk":
		return Crosstalk, nil
	default:
		return 0, fmt.Errorf("%w: unknown kind %q", ErrBadFault, s)
	}
}

// MarshalText implements encoding.TextMarshaler (JSON wire form).
func (k FaultKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (k *FaultKind) UnmarshalText(b []byte) error {
	kk, err := ParseFaultKind(string(b))
	if err != nil {
		return err
	}
	*k = kk
	return nil
}

// Fault is one TSV defect, referencing TSVs by name: an inbound TSV by
// its landing-pad signal name, an outbound TSV by its port name.
type Fault struct {
	Kind FaultKind `json:"kind"`
	// TSV is the victim — the TSV taken out of service (for Crosstalk,
	// the one relocated away from the pair).
	TSV string `json:"tsv"`
	// With is the partner of a Bridge (also taken out of service) or the
	// aggressor of a Crosstalk pair (left in place). Empty otherwise.
	With string `json:"with,omitempty"`
}

// validate checks the fault's shape (not the die: name resolution is the
// planner's job).
func (f Fault) validate() error {
	if f.TSV == "" {
		return fmt.Errorf("%w: fault %s has no victim TSV", ErrBadFault, f.Kind)
	}
	switch f.Kind {
	case Stuck0, Stuck1, Open:
		if f.With != "" {
			return fmt.Errorf("%w: %s fault on %q names a partner %q", ErrBadFault, f.Kind, f.TSV, f.With)
		}
	case Bridge, Crosstalk:
		if f.With == "" {
			return fmt.Errorf("%w: %s fault on %q needs a partner", ErrBadFault, f.Kind, f.TSV)
		}
		if f.With == f.TSV {
			return fmt.Errorf("%w: %s fault pairs %q with itself", ErrBadFault, f.Kind, f.TSV)
		}
	default:
		return fmt.Errorf("%w: unknown kind %v", ErrBadFault, f.Kind)
	}
	return nil
}

// String renders the fault for logs.
func (f Fault) String() string {
	if f.With != "" {
		return fmt.Sprintf("%s(%s,%s)", f.Kind, f.TSV, f.With)
	}
	return fmt.Sprintf("%s(%s)", f.Kind, f.TSV)
}

// Delta is one atomic batch of faults: either every repair in it lands or
// none does.
type Delta struct {
	Faults []Fault `json:"faults"`
}

// Repair records one executed victim-to-spare substitution.
type Repair struct {
	// Fault is the defect that triggered the substitution.
	Fault Fault `json:"fault"`
	// Failed names the TSV taken out of service.
	Failed string `json:"failed"`
	// Spare names the spare site promoted in its place.
	Spare string `json:"spare"`
	// Inbound reports which side of the die was repaired.
	Inbound bool `json:"inbound"`
}
