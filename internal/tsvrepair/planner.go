package tsvrepair

import (
	"fmt"

	"wcm3d/internal/experiments"
	"wcm3d/internal/netlist"
	"wcm3d/internal/place"
	"wcm3d/internal/verify"
	"wcm3d/internal/wcm"
)

// Planner owns one die's repair lifecycle: it clones the prepared die
// (the caller's stays pristine), plans the baseline, and then absorbs
// fault deltas — patching the netlist onto spare TSVs and replanning
// incrementally through a wcm.Session whose caches survive the patches.
//
// Replan and Rerun bracket the package's differential contract: Replan is
// the memoized incremental path, Rerun the from-scratch reference over
// the identical patched input, and the two must agree deeply — the
// property suites assert it per delta, and the service's equivalence CI
// job sweeps it across every Table II profile.
//
// A Planner is not safe for concurrent use; the wcmd service serializes
// replans per job.
type Planner struct {
	die  *experiments.Die
	opts wcm.Options
	sess *wcm.Session

	freeIn  []netlist.SignalID // unpromoted inbound spare pads
	freeOut []int              // unpromoted outbound spare port indices

	repairs  []Repair
	baseline *wcm.Result
}

// NewPlanner clones the die, discovers its spare sites, and plans the
// baseline (which also seeds the session's caches).
func NewPlanner(d *experiments.Die, opts wcm.Options) (*Planner, error) {
	if d == nil {
		return nil, fmt.Errorf("tsvrepair: nil die")
	}
	c := CloneDie(d)
	p := &Planner{die: c, opts: opts, sess: wcm.NewSession(c.Input(), opts)}
	p.freeIn, p.freeOut = spareSites(c.Netlist)
	base, err := p.sess.Run()
	if err != nil {
		return nil, fmt.Errorf("tsvrepair: baseline plan: %w", err)
	}
	p.baseline = base
	return p, nil
}

// Die returns the planner's private (patched) die.
func (p *Planner) Die() *experiments.Die { return p.die }

// Input returns the planning input over the patched die — the reference
// a from-scratch run or an independent verification consumes.
func (p *Planner) Input() wcm.Input { return p.sess.Input() }

// Baseline returns the pre-fault plan.
func (p *Planner) Baseline() *wcm.Result { return p.baseline }

// SparesLeft reports the unpromoted spare sites per side.
func (p *Planner) SparesLeft() (inbound, outbound int) {
	return len(p.freeIn), len(p.freeOut)
}

// Repairs returns every substitution executed so far, in order.
func (p *Planner) Repairs() []Repair { return p.repairs }

// Replan plans the current (patched) die incrementally through the
// session caches.
func (p *Planner) Replan() (*wcm.Result, error) { return p.sess.Run() }

// Rerun plans the current die from scratch — the differential reference.
func (p *Planner) Rerun() (*wcm.Result, error) {
	return wcm.Run(p.sess.Input(), p.sess.Options())
}

// Verify certifies a plan against the planner's current die with the
// independent checker, holding it to the plan's own effective thresholds.
func (p *Planner) Verify(res *wcm.Result) (*verify.Result, error) {
	vo := verify.Options{}
	if res.Options.Order != 0 {
		th := res.Options
		vo.Thresholds = &th
	}
	return verify.Plan(p.Input(), res.Assignment, vo)
}

// victim is one resolved TSV to take out of service.
type victim struct {
	fault   Fault
	inbound bool
	sig     netlist.SignalID // inbound: landing pad
	port    int              // outbound: port index
	name    string
}

// Apply executes one fault delta atomically: every victim is resolved
// and allotted a spare before any patch lands, and a failure rolls the
// netlist (and the session caches) back to the pre-delta state. Spares
// are allotted nearest-first in fault order; on small instances a
// minimum-total-distance assignment is tried instead and kept only when
// the replanned die passes independent verification (the greedy
// assignment is the fallback either way). Returns the repairs executed.
func (p *Planner) Apply(delta Delta) ([]Repair, error) {
	if len(delta.Faults) == 0 {
		return nil, fmt.Errorf("%w: empty delta", ErrBadFault)
	}
	victims, err := p.resolveDelta(delta)
	if err != nil {
		return nil, err
	}
	var inV, outV []victim
	for _, v := range victims {
		if v.inbound {
			inV = append(inV, v)
		} else {
			outV = append(outV, v)
		}
	}
	if len(inV) > len(p.freeIn) {
		return nil, fmt.Errorf("%w: delta needs %d inbound spares, %d left", ErrNoSpares, len(inV), len(p.freeIn))
	}
	if len(outV) > len(p.freeOut) {
		return nil, fmt.Errorf("%w: delta needs %d outbound spares, %d left", ErrNoSpares, len(outV), len(p.freeOut))
	}

	gIn := greedyAssign(p.inVictimPts(inV), p.freeInPts())
	gOut := greedyAssign(p.outVictimPts(outV), p.freeOutPts())
	oIn := optimalAssign(p.inVictimPts(inV), p.freeInPts())
	oOut := optimalAssign(p.outVictimPts(outV), p.freeOutPts())

	if !sameAssign(oIn, gIn) || !sameAssign(oOut, gOut) {
		// The optimal allotment is kept only when the incremental plan
		// over it certifies clean — a belt-and-braces gate, since the
		// allotment only picks which pads carry the rerouted nets.
		tx, reps := p.patch(inV, oIn, outV, oOut)
		res, err := p.sess.Run()
		if err == nil {
			var vr *verify.Result
			if vr, err = p.Verify(res); err == nil && vr.OK() {
				p.commit(tx, reps, oIn, oOut)
				return reps, nil
			}
		}
		tx.rollback()
	}
	tx, reps := p.patch(inV, gIn, outV, gOut)
	p.commit(tx, reps, gIn, gOut)
	return reps, nil
}

// resolveDelta validates every fault and resolves its victims against
// the die's live TSVs.
func (p *Planner) resolveDelta(delta Delta) ([]victim, error) {
	var victims []victim
	seen := make(map[string]bool)
	addVictim := func(f Fault, name string) error {
		v, err := p.resolve(name)
		if err != nil {
			return err
		}
		if seen[name] {
			return fmt.Errorf("%w: TSV %q is a victim twice in one delta", ErrBadFault, name)
		}
		seen[name] = true
		v.fault = f
		victims = append(victims, v)
		return nil
	}
	for _, f := range delta.Faults {
		if err := f.validate(); err != nil {
			return nil, err
		}
		switch f.Kind {
		case Stuck0, Stuck1, Open:
			if err := addVictim(f, f.TSV); err != nil {
				return nil, err
			}
		case Bridge:
			// A bridge shorts the pair: both TSVs are unusable.
			if err := addVictim(f, f.TSV); err != nil {
				return nil, err
			}
			if err := addVictim(f, f.With); err != nil {
				return nil, err
			}
		case Crosstalk:
			// The aggressor stays; it must exist, though.
			if _, err := p.resolve(f.With); err != nil {
				return nil, err
			}
			if err := addVictim(f, f.TSV); err != nil {
				return nil, err
			}
		}
	}
	return victims, nil
}

// resolve finds a live TSV by name: an inbound landing pad's signal name
// or an outbound port's name. A pad an earlier repair demoted no longer
// resolves.
func (p *Planner) resolve(name string) (victim, error) {
	n := p.die.Netlist
	if id, ok := n.SignalByName(name); ok && n.TypeOf(id) == netlist.GateTSVIn {
		return victim{inbound: true, sig: id, port: -1, name: name}, nil
	}
	for i, o := range n.Outputs {
		if o.Name == name && o.Class == netlist.PortTSVOut {
			return victim{inbound: false, sig: netlist.InvalidSignal, port: i, name: name}, nil
		}
	}
	return victim{}, fmt.Errorf("%w: %q", ErrUnknownTSV, name)
}

// ----- Spare allotment.

func (p *Planner) inVictimPts(v []victim) []place.Point {
	pts := make([]place.Point, len(v))
	for i := range v {
		pts[i] = p.die.Placement.Coords[v[i].sig]
	}
	return pts
}

func (p *Planner) outVictimPts(v []victim) []place.Point {
	pts := make([]place.Point, len(v))
	for i := range v {
		pts[i] = p.die.Placement.OutCoords[v[i].port]
	}
	return pts
}

func (p *Planner) freeInPts() []place.Point {
	pts := make([]place.Point, len(p.freeIn))
	for i, s := range p.freeIn {
		pts[i] = p.die.Placement.Coords[s]
	}
	return pts
}

func (p *Planner) freeOutPts() []place.Point {
	pts := make([]place.Point, len(p.freeOut))
	for i, o := range p.freeOut {
		pts[i] = p.die.Placement.OutCoords[o]
	}
	return pts
}

// greedyAssign allots, per victim in order, the nearest still-free spare.
// Returns indices into the free list, one per victim.
func greedyAssign(victims, frees []place.Point) []int {
	asn := make([]int, len(victims))
	taken := make([]bool, len(frees))
	for i, v := range victims {
		best, bestD := -1, 0.0
		for j, f := range frees {
			if taken[j] {
				continue
			}
			if d := v.ManhattanTo(f); best < 0 || d < bestD {
				best, bestD = j, d
			}
		}
		asn[i] = best
		taken[best] = true
	}
	return asn
}

// optimalAssign searches every injective victim→spare allotment for the
// minimum total Manhattan distance. Only on instances small enough to
// enumerate; nil otherwise (the caller falls back to greedy).
func optimalAssign(victims, frees []place.Point) []int {
	const maxVictims, maxFrees = 5, 8
	if len(victims) == 0 || len(victims) > maxVictims || len(frees) > maxFrees {
		return nil
	}
	best := make([]int, len(victims))
	cur := make([]int, len(victims))
	taken := make([]bool, len(frees))
	bestCost := -1.0
	var walk func(i int, cost float64)
	walk = func(i int, cost float64) {
		if bestCost >= 0 && cost >= bestCost {
			return
		}
		if i == len(victims) {
			bestCost = cost
			copy(best, cur)
			return
		}
		for j := range frees {
			if taken[j] {
				continue
			}
			taken[j] = true
			cur[i] = j
			walk(i+1, cost+victims[i].ManhattanTo(frees[j]))
			taken[j] = false
		}
	}
	walk(0, 0)
	if bestCost < 0 {
		return nil
	}
	return best
}

// sameAssign reports whether the optimal allotment adds anything over the
// greedy one; a nil optimal (instance too large, or no victims) never does.
func sameAssign(opt, greedy []int) bool {
	if opt == nil {
		return true
	}
	for i := range opt {
		if opt[i] != greedy[i] {
			return false
		}
	}
	return true
}

// ----- Patch mechanics.

// txn collects the inverse of every netlist edit so a failed or rejected
// delta can restore the exact pre-delta state (caches included).
type txn struct{ undo []func() }

func (t *txn) add(f func()) { t.undo = append(t.undo, f) }

func (t *txn) rollback() {
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.undo[i]()
	}
	t.undo = nil
}

// patch applies every substitution of the delta under the given spare
// allotments (indices into the free lists) and returns the transaction
// and the repair records. The free lists are untouched until commit.
func (p *Planner) patch(inV []victim, inAsn []int, outV []victim, outAsn []int) (*txn, []Repair) {
	tx := &txn{}
	reps := make([]Repair, 0, len(inV)+len(outV))
	for i, v := range inV {
		spare := p.freeIn[inAsn[i]]
		p.patchInbound(tx, v.sig, spare)
		reps = append(reps, Repair{Fault: v.fault, Failed: v.name, Spare: p.die.Netlist.NameOf(spare), Inbound: true})
	}
	for i, v := range outV {
		spare := p.freeOut[outAsn[i]]
		p.patchOutbound(tx, v.port, spare)
		reps = append(reps, Repair{Fault: v.fault, Failed: v.name, Spare: p.die.Netlist.Outputs[spare].Name, Inbound: false})
	}
	return tx, reps
}

// patchInbound reroutes every pin the failed landing pad drives onto the
// spare pad, then swaps their source types. Both endpoints' anchored
// fan-out cones change, so both are invalidated in the session (and
// again on undo — an undo is itself a pin move).
func (p *Planner) patchInbound(tx *txn, failed, spare netlist.SignalID) {
	n := p.die.Netlist
	sinks := append([]netlist.SignalID(nil), n.Fanouts()[failed]...)
	for _, g := range sinks {
		fanin := n.Gate(g).Fanin
		for pin := range fanin {
			if fanin[pin] != failed {
				continue
			}
			g, pin := g, pin
			mustDo(n.RewireFanin(g, pin, spare))
			tx.add(func() { mustDo(n.RewireFanin(g, pin, failed)) })
		}
	}
	mustDo(n.RetypeSource(failed, netlist.GateInput))
	tx.add(func() { mustDo(n.RetypeSource(failed, netlist.GateTSVIn)) })
	mustDo(n.RetypeSource(spare, netlist.GateTSVIn))
	tx.add(func() { mustDo(n.RetypeSource(spare, netlist.GateInput)) })
	p.sess.InvalidateSource(failed)
	p.sess.InvalidateSource(spare)
	tx.add(func() {
		p.sess.InvalidateSource(failed)
		p.sess.InvalidateSource(spare)
	})
}

// patchOutbound swaps the failed TSV port with the spare port: drivers
// and classes trade places, so the spare observes the failed port's
// signal as the new outbound TSV and the failed port parks on the
// spare's inert driver as a plain output. No gate pin moves, so every
// session cache stays valid as-is.
func (p *Planner) patchOutbound(tx *txn, failed, spare int) {
	n := p.die.Netlist
	fs, ss := n.Outputs[failed].Signal, n.Outputs[spare].Signal
	mustDo(n.RewireOutput(spare, fs))
	tx.add(func() { mustDo(n.RewireOutput(spare, ss)) })
	mustDo(n.RewireOutput(failed, ss))
	tx.add(func() { mustDo(n.RewireOutput(failed, fs)) })
	mustDo(n.SetPortClass(failed, netlist.PortPO))
	tx.add(func() { mustDo(n.SetPortClass(failed, netlist.PortTSVOut)) })
	mustDo(n.SetPortClass(spare, netlist.PortTSVOut))
	tx.add(func() { mustDo(n.SetPortClass(spare, netlist.PortPO)) })
}

// commit consumes the allotted spares and records the repairs.
func (p *Planner) commit(_ *txn, reps []Repair, inAsn, outAsn []int) {
	p.freeIn = dropIndices(p.freeIn, inAsn)
	p.freeOut = dropIndices(p.freeOut, outAsn)
	p.repairs = append(p.repairs, reps...)
}

// dropIndices removes the given indices from a free list, preserving
// order of the survivors.
func dropIndices[T any](s []T, idx []int) []T {
	if len(idx) == 0 {
		return s
	}
	drop := make(map[int]bool, len(idx))
	for _, i := range idx {
		drop[i] = true
	}
	out := s[:0]
	for i := range s {
		if !drop[i] {
			out = append(out, s[i])
		}
	}
	return out
}

// mustDo panics on an impossible edit error: every precondition
// (existence, types, bounds) was checked during resolution, so a failure
// here is a programming error, not an input error.
func mustDo(err error) {
	if err != nil {
		panic(fmt.Sprintf("tsvrepair: internal edit failed: %v", err))
	}
}
