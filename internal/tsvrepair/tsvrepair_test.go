package tsvrepair

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"wcm3d/internal/experiments"
	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
	"wcm3d/internal/wcm"
)

// testDie builds a small prepared die carrying spare TSV sites.
func testDie(t testing.TB, seed int64, spec SpareSpec) *experiments.Die {
	t.Helper()
	n, err := netgen.Random(netgen.RandomOptions{
		Gates: 350, FFs: 14, PIs: 5, POs: 4,
		InboundTSVs: 8, OutboundTSVs: 8, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := AddSpares(n, spec); err != nil {
		t.Fatal(err)
	}
	d, err := experiments.PrepareNetlistOpts(n, seed, experiments.PrepareOptions{SkipFaultLists: true})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func planOpts(workers int) wcm.Options {
	opts := wcm.DefaultOptions()
	opts.Workers = workers
	return opts
}

// assertDifferential runs the incremental and the from-scratch path over
// the planner's current die and fails unless they agree deeply and the
// incremental plan passes independent verification.
func assertDifferential(t *testing.T, p *Planner, tag string) *wcm.Result {
	t.Helper()
	inc, err := p.Replan()
	if err != nil {
		t.Fatalf("%s: replan: %v", tag, err)
	}
	ref, err := p.Rerun()
	if err != nil {
		t.Fatalf("%s: rerun: %v", tag, err)
	}
	if !reflect.DeepEqual(inc, ref) {
		t.Fatalf("%s: incremental plan diverges from from-scratch rerun\nincremental: %+v\nreference:   %+v", tag, inc, ref)
	}
	vr, err := p.Verify(inc)
	if err != nil {
		t.Fatalf("%s: verify: %v", tag, err)
	}
	if !vr.OK() {
		t.Fatalf("%s: incremental plan rejected: %s", tag, vr.Summary())
	}
	return inc
}

func inboundName(d *experiments.Die, i int) string {
	return d.Netlist.NameOf(d.Netlist.InboundTSVs()[i])
}

func outboundName(d *experiments.Die, i int) string {
	return d.Netlist.Outputs[d.Netlist.OutboundTSVs()[i]].Name
}

func TestSingleFaultReplanMatchesRerun(t *testing.T) {
	d := testDie(t, 101, SpareSpec{Inbound: 2, Outbound: 2})
	p, err := NewPlanner(d, planOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if p.Baseline() == nil {
		t.Fatal("no baseline plan")
	}
	reps, err := p.Apply(Delta{Faults: []Fault{{Kind: Stuck0, TSV: inboundName(p.Die(), 0)}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || !reps[0].Inbound || reps[0].Spare == "" {
		t.Fatalf("unexpected repairs %+v", reps)
	}
	assertDifferential(t, p, "inbound stuck0")

	if _, err := p.Apply(Delta{Faults: []Fault{{Kind: Open, TSV: outboundName(p.Die(), 0)}}}); err != nil {
		t.Fatal(err)
	}
	assertDifferential(t, p, "outbound open")
}

func TestFaultKindsAndSpareAccounting(t *testing.T) {
	d := testDie(t, 103, SpareSpec{Inbound: 4, Outbound: 2})
	p, err := NewPlanner(d, planOpts(1))
	if err != nil {
		t.Fatal(err)
	}

	// A bridge kills both of its pair: two spares.
	_, err = p.Apply(Delta{Faults: []Fault{{Kind: Bridge, TSV: inboundName(p.Die(), 0), With: inboundName(p.Die(), 1)}}})
	if err != nil {
		t.Fatal(err)
	}
	if in, _ := p.SparesLeft(); in != 2 {
		t.Fatalf("inbound spares left = %d after bridge, want 2", in)
	}
	assertDifferential(t, p, "bridge")

	// Crosstalk relocates the victim only: one spare, aggressor stays.
	aggressor := inboundName(p.Die(), 1)
	_, err = p.Apply(Delta{Faults: []Fault{{Kind: Crosstalk, TSV: inboundName(p.Die(), 0), With: aggressor}}})
	if err != nil {
		t.Fatal(err)
	}
	if in, _ := p.SparesLeft(); in != 1 {
		t.Fatalf("inbound spares left = %d after crosstalk, want 1", in)
	}
	if _, err := p.resolve(aggressor); err != nil {
		t.Fatalf("crosstalk aggressor must stay in service: %v", err)
	}
	assertDifferential(t, p, "crosstalk")

	// A promoted spare is itself repairable.
	spareName := p.Repairs()[len(p.Repairs())-1].Spare
	if _, err := p.Apply(Delta{Faults: []Fault{{Kind: Stuck1, TSV: spareName}}}); err != nil {
		t.Fatalf("failing a promoted spare: %v", err)
	}
	if in, _ := p.SparesLeft(); in != 0 {
		t.Fatalf("inbound spares left = %d, want 0", in)
	}
	assertDifferential(t, p, "promoted-spare fault")

	// Exhausted spares reject further inbound faults.
	_, err = p.Apply(Delta{Faults: []Fault{{Kind: Open, TSV: inboundName(p.Die(), 2)}}})
	if !errors.Is(err, ErrNoSpares) {
		t.Fatalf("want ErrNoSpares, got %v", err)
	}
}

func TestFaultValidation(t *testing.T) {
	d := testDie(t, 105, SpareSpec{Inbound: 2, Outbound: 1})
	p, err := NewPlanner(d, planOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	in0 := inboundName(p.Die(), 0)
	cases := []struct {
		name  string
		delta Delta
		want  error
	}{
		{"empty-delta", Delta{}, ErrBadFault},
		{"no-victim", Delta{Faults: []Fault{{Kind: Open}}}, ErrBadFault},
		{"unknown-kind", Delta{Faults: []Fault{{TSV: in0}}}, ErrBadFault},
		{"unknown-tsv", Delta{Faults: []Fault{{Kind: Open, TSV: "no_such_tsv"}}}, ErrUnknownTSV},
		{"stuck-with-partner", Delta{Faults: []Fault{{Kind: Stuck0, TSV: in0, With: in0}}}, ErrBadFault},
		{"bridge-no-partner", Delta{Faults: []Fault{{Kind: Bridge, TSV: in0}}}, ErrBadFault},
		{"bridge-self", Delta{Faults: []Fault{{Kind: Bridge, TSV: in0, With: in0}}}, ErrBadFault},
		{"crosstalk-unknown-aggressor", Delta{Faults: []Fault{{Kind: Crosstalk, TSV: in0, With: "ghost"}}}, ErrUnknownTSV},
		{"duplicate-victim", Delta{Faults: []Fault{
			{Kind: Open, TSV: in0}, {Kind: Stuck1, TSV: in0},
		}}, ErrBadFault},
		{"spare-is-not-a-tsv", Delta{Faults: []Fault{{Kind: Open, TSV: SpareInPrefix + "0"}}}, ErrUnknownTSV},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := p.Apply(tc.delta); !errors.Is(err, tc.want) {
				t.Fatalf("want %v, got %v", tc.want, err)
			}
		})
	}
	if len(p.Repairs()) != 0 {
		t.Fatalf("rejected deltas must leave no repairs, got %+v", p.Repairs())
	}
}

func TestDeltaRollbackIsAtomic(t *testing.T) {
	d := testDie(t, 107, SpareSpec{Inbound: 3, Outbound: 1})
	p, err := NewPlanner(d, planOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	base := p.Baseline()

	// Second fault in the delta is unresolvable: the first must not land.
	_, err = p.Apply(Delta{Faults: []Fault{
		{Kind: Open, TSV: inboundName(p.Die(), 0)},
		{Kind: Open, TSV: "no_such_tsv"},
	}})
	if !errors.Is(err, ErrUnknownTSV) {
		t.Fatalf("want ErrUnknownTSV, got %v", err)
	}
	if in, out := p.SparesLeft(); in != 3 || out != 1 {
		t.Fatalf("spares = (%d,%d) after rejected delta, want (3,1)", in, out)
	}
	res := assertDifferential(t, p, "post-rollback")
	if !reflect.DeepEqual(res, base) {
		t.Fatal("rejected delta must leave the plan at the baseline")
	}
}

func TestPlannerClonesTheDie(t *testing.T) {
	d := testDie(t, 109, SpareSpec{Inbound: 2, Outbound: 1})
	before := len(d.Netlist.InboundTSVs())
	p, err := NewPlanner(d, planOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Apply(Delta{Faults: []Fault{{Kind: Open, TSV: inboundName(d, 0)}}}); err != nil {
		t.Fatal(err)
	}
	if p.Die() == d || p.Die().Netlist == d.Netlist {
		t.Fatal("planner must work on a private clone")
	}
	if got := len(d.Netlist.InboundTSVs()); got != before {
		t.Fatalf("original die mutated: %d inbound TSVs, want %d", got, before)
	}
	if d.Netlist.TypeOf(d.Netlist.InboundTSVs()[0]) != netlist.GateTSVIn {
		t.Fatal("original die's failed TSV must stay a TSV")
	}
}

// liveTSVNames enumerates every in-service TSV the fuzzer may fail.
func liveTSVNames(d *experiments.Die) []string {
	var names []string
	for _, id := range d.Netlist.InboundTSVs() {
		names = append(names, d.Netlist.NameOf(id))
	}
	for _, pi := range d.Netlist.OutboundTSVs() {
		names = append(names, d.Netlist.Outputs[pi].Name)
	}
	return names
}

// TestRandomizedDeltaSequences drives random fault sequences and holds the
// differential contract at every step. The full 24-profile × workers
// {1,2,8} sweep is TestFullEquivalenceSweepTableII (fullsweep_test.go)
// behind WCM3D_FULL_EQUIV; this in-package version stays cheap enough for
// every `go test`.
func TestRandomizedDeltaSequences(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(string(rune('a'+seed)), func(t *testing.T) {
			t.Parallel()
			d := testDie(t, 200+seed, SpareSpec{Inbound: 5, Outbound: 3})
			p, err := NewPlanner(d, planOpts(int(seed)))
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			for step := 0; step < 5; step++ {
				f := randomFault(rng, liveTSVNames(p.Die()))
				if _, err := p.Apply(Delta{Faults: []Fault{f}}); err != nil {
					if errors.Is(err, ErrNoSpares) {
						break
					}
					t.Fatalf("step %d (%s): %v", step, f, err)
				}
				assertDifferential(t, p, f.String())
			}
		})
	}
}
