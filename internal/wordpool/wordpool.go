// Package wordpool recycles []uint64 bitset word storage through global
// size-classed sync.Pools. The WCM hot path allocates thousands of cone
// bitsets per die (fanin/fanout cones, masked node cones, adjacency rows)
// whose lifetime ends with the phase that built them; returning the word
// slices here instead of dropping them on the garbage collector is what
// makes repeated die preparation — the batch sweep — allocation-free in
// steady state.
//
// Slices are grouped in power-of-two capacity classes so a request is
// served by the smallest class that fits. Get zeroes the words it hands
// out; Put accepts slices in any state. Both are safe for concurrent use.
package wordpool

import (
	"math/bits"
	"sync"
)

// numClasses covers capacities up to 2^31 words (16 GiB of bitset) — far
// beyond any die this repo generates; larger requests bypass the pool.
const numClasses = 32

var classes [numClasses]sync.Pool

// classFor returns the pool class whose capacity (1<<class) is the
// smallest fitting n words, or -1 when n is out of pool range.
func classFor(n int) int {
	if n <= 0 {
		return 0
	}
	c := bits.Len(uint(n - 1)) // ceil(log2(n))
	if c >= numClasses {
		return -1
	}
	return c
}

// Get returns a zeroed word slice of length n, recycled when possible.
func Get(n int) []uint64 {
	c := classFor(n)
	if c < 0 {
		return make([]uint64, n)
	}
	if v := classes[c].Get(); v != nil {
		w := *(v.(*[]uint64))
		w = w[:n]
		clear(w)
		return w
	}
	return make([]uint64, n, 1<<c)
}

// Put returns a slice obtained from Get to its size class. The caller
// must not retain any reference to w afterwards. Nil and foreign slices
// (capacity not a pool class) are dropped silently, so Put is safe on
// slices that happened to come from plain make.
func Put(w []uint64) {
	c := cap(w)
	if c == 0 || c&(c-1) != 0 {
		return // not a pool-class capacity
	}
	cl := bits.Len(uint(c)) - 1 // exact log2
	if cl >= numClasses {
		return
	}
	w = w[:0]
	classes[cl].Put(&w)
}
