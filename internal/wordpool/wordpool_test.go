package wordpool

import (
	"sync"
	"testing"
)

func TestGetReturnsZeroedWords(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 4096} {
		w := Get(n)
		if len(w) != n {
			t.Fatalf("Get(%d): len %d", n, len(w))
		}
		for i := range w {
			w[i] = ^uint64(0)
		}
		Put(w)
		// The recycled slice must come back clean no matter what the
		// previous user left in it.
		w2 := Get(n)
		if len(w2) != n {
			t.Fatalf("Get(%d) after Put: len %d", n, len(w2))
		}
		for i, v := range w2 {
			if v != 0 {
				t.Fatalf("Get(%d) word %d carries stale bits %#x", n, i, v)
			}
		}
		Put(w2)
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {64, 6}, {65, 7},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestPutForeignSliceIsDropped(t *testing.T) {
	// A slice with a non-power-of-two capacity must not poison a class.
	Put(make([]uint64, 3, 3))
	Put(nil)
	w := Get(3)
	if len(w) != 3 || cap(w) != 4 {
		t.Fatalf("Get(3) after foreign Put: len %d cap %d", len(w), cap(w))
	}
}

func TestConcurrentGetPut(t *testing.T) {
	// Exercised under -race in CI: concurrent recycling must never hand
	// the same slice to two holders at once. Each goroutine stamps its id
	// over the whole slice and verifies the stamp before returning it.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				w := Get(512)
				for j := range w {
					w[j] = id
				}
				for j := range w {
					if w[j] != id {
						t.Errorf("slice shared between goroutines: got %d want %d", w[j], id)
						return
					}
				}
				Put(w)
			}
		}(uint64(g + 1))
	}
	wg.Wait()
}
