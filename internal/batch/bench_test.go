package batch_test

import (
	"context"
	"testing"

	"wcm3d"
	"wcm3d/internal/batch"
)

// BenchmarkBatchTableII is the headline throughput number of the batch
// engine: the full 24-die Table II sweep (generate + place + time + WCM,
// ours/tight), naive loop versus streaming engine. The naive sub-bench
// is exactly what a caller without the engine writes — wcm3d.PrepareDie
// then wcm3d.Minimize per die, each die's full working set allocated
// fresh and left to the garbage collector. The engine sub-bench streams
// the same sweep through internal/batch with a bounded residency budget,
// lean minimize-only preparation, and the pooled cone/graph hot path.
//
// CI runs this at -benchtime=1x and publishes the output as the
// batch-throughput artifact; results/batch_throughput.txt holds a
// committed reference run.
func BenchmarkBatchTableII(b *testing.B) {
	specs := tableIISpecs()

	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cells, reused := 0, 0
			for _, spec := range specs {
				d, err := wcm3d.PrepareDie(spec.Profile, spec.Seed)
				if err != nil {
					b.Fatal(err)
				}
				res, err := wcm3d.Minimize(d, wcm3d.MethodOurs, wcm3d.TightTiming)
				if err != nil {
					b.Fatal(err)
				}
				cells += res.AdditionalCells
				reused += res.ReusedFFs
			}
			b.ReportMetric(float64(cells), "cells")
			b.ReportMetric(float64(reused), "reused")
		}
	})

	b.Run("engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := batch.Run(context.Background(), specs, batch.Config{
				Method: wcm3d.MethodOurs,
				Mode:   wcm3d.TightTiming,
			})
			if err != nil {
				b.Fatal(err)
			}
			if failed := res.Failed(); len(failed) != 0 {
				b.Fatalf("failed dies %v: %v", failed, res.Dies[failed[0]].Err)
			}
			cells, reused := 0, 0
			for _, dr := range res.Dies {
				cells += dr.Result.AdditionalCells
				reused += dr.Result.ReusedFFs
			}
			// Same metrics as the naive sub-bench: any divergence between
			// the two rows is a correctness bug, not a perf difference.
			b.ReportMetric(float64(cells), "cells")
			b.ReportMetric(float64(reused), "reused")
		}
	})
}
