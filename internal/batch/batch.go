// Package batch is the streaming multi-die throughput engine: it
// pipelines prepare → WCM → (optional) verify → schedule across many dies
// with bounded memory, treating the whole sweep — not a single die — as
// the unit of optimization.
//
// Architecture: two worker pools connected by a bounded channel. The
// prepare pool generates/places/times dies; the solve pool minimizes,
// optionally verifies, and (when a schedule is requested) grades and
// enumerates wrapper designs for each die while it is still resident.
// A token semaphore caps how many prepared dies exist at once — the
// per-batch memory budget — so a 24-die sweep never holds 24 netlists:
// a die is dropped as soon as its solve stage finishes, and the heap the
// garbage collector has to walk stays proportional to MaxInFlight, not
// to the sweep.
//
// Determinism: every die is an independent computation, so the plan for
// die i is bit-identical to a serial wcm3d.Minimize call no matter how
// stages interleave or how many workers run; results are collected by
// index and the final schedule packs in spec order.
package batch

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"wcm3d"
	"wcm3d/internal/experiments"
	"wcm3d/internal/tam"
)

// Spec names one die of a batch.
type Spec struct {
	// Name labels the die in results and schedules; empty defaults to the
	// profile name.
	Name string
	// Profile is the synthetic benchmark profile the default preparer
	// generates from.
	Profile wcm3d.Profile
	// Seed is the generation/placement seed (the default preparer).
	Seed int64
}

func (s Spec) name() string {
	if s.Name != "" {
		return s.Name
	}
	return s.Profile.Name()
}

// Config tunes one batch run.
type Config struct {
	// Method and Mode select the per-die solver configuration, exactly as
	// wcm3d.Minimize would run it.
	Method wcm3d.Method
	Mode   wcm3d.TimingMode

	// Verify runs the independent plan checker on every die's plan.
	Verify bool

	// ScheduleWidth, when positive, adds the stack-scheduling stage: each
	// die is graded with stuck-at ATPG and its Pareto wrapper designs are
	// enumerated while the die is still in memory, and after the last die
	// the designs are packed into one pre-bond stack schedule over a
	// ScheduleWidth-wire TAM.
	ScheduleWidth int
	// Budget is the ATPG effort for the schedule stage; zero value means
	// experiments.ReducedBudget(seed of each die).
	Budget *wcm3d.ATPGBudget

	// PrepareWorkers and SolveWorkers size the two stage pools; <= 0
	// means GOMAXPROCS. On a single-core box the pools interleave on the
	// scheduler; on a multi-core box prepare of die k+1 overlaps the WCM
	// solve of die k.
	PrepareWorkers int
	SolveWorkers   int

	// MaxInFlight caps how many dies are resident (being prepared,
	// waiting, or being solved) at once — the batch memory budget.
	// <= 0 means max(2, SolveWorkers).
	MaxInFlight int

	// Workers bounds the solver-internal worker count per die (the plan
	// is bit-identical at every setting); 0 means the solver default.
	Workers int

	// Prepare overrides die preparation — the wcmd batch endpoint routes
	// it through the service's prepared-die cache. nil uses the default:
	// experiments.PrepareDieOpts, skipping fault-list enumeration unless
	// the schedule stage needs it.
	Prepare func(ctx context.Context, spec Spec) (*wcm3d.Die, error)

	// KeepDies retains each prepared die in its DieResult instead of
	// releasing it after solve (costs the memory the budget exists to
	// bound; tests and small sweeps only).
	KeepDies bool

	// OnDie, when set, observes each die's result as it leaves the
	// pipeline — solve completion or prepare failure, in completion
	// order, not spec order. Used for progress reporting; must be safe
	// to call from multiple workers.
	OnDie func(DieResult)
}

func (cfg Config) withDefaults() Config {
	if cfg.PrepareWorkers <= 0 {
		cfg.PrepareWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.SolveWorkers <= 0 {
		cfg.SolveWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = cfg.SolveWorkers
		if cfg.MaxInFlight < 2 {
			cfg.MaxInFlight = 2
		}
	}
	return cfg
}

// DieResult is one die's passage through the pipeline.
type DieResult struct {
	Spec  Spec
	Index int
	// Die is retained only under Config.KeepDies.
	Die *wcm3d.Die
	// Result is the wrapper plan, bit-identical to serial
	// wcm3d.Minimize.
	Result *wcm3d.MinimizeResult
	// Verify is the independent checker's report (Config.Verify).
	Verify *wcm3d.VerifyResult
	// Patterns and Designs are the schedule stage's per-die outputs.
	Patterns int
	Designs  []wcm3d.WrapperDesign
	// Err records a per-die failure; the rest of the batch continues.
	Err error

	PrepareDur time.Duration
	SolveDur   time.Duration
}

// Result is a completed batch.
type Result struct {
	// Dies is index-aligned with the input specs.
	Dies []DieResult
	// Schedule is the packed stack schedule (ScheduleWidth > 0 and every
	// die succeeded).
	Schedule *wcm3d.TestSchedule
	// Elapsed is the wall-clock of the whole pipeline.
	Elapsed time.Duration
}

// Failed returns the indices of dies that did not complete.
func (r *Result) Failed() []int {
	var out []int
	for i := range r.Dies {
		if r.Dies[i].Err != nil {
			out = append(out, i)
		}
	}
	return out
}

// Run streams the specs through the pipeline. Per-die failures are
// recorded in the result and do not abort the batch; the returned error
// is non-nil only when the context was cancelled (the result still
// carries whatever completed).
func Run(ctx context.Context, specs []Spec, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	res := &Result{Dies: make([]DieResult, len(specs))}
	for i := range specs {
		res.Dies[i].Spec = specs[i]
		res.Dies[i].Index = i
	}
	if len(specs) == 0 {
		return res, nil
	}

	prepare := cfg.Prepare
	if prepare == nil {
		po := experiments.PrepareOptions{SkipFaultLists: cfg.ScheduleWidth <= 0}
		prepare = func(ctx context.Context, spec Spec) (*wcm3d.Die, error) {
			return experiments.PrepareDieOpts(spec.Profile, spec.Seed, po)
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// tokens is the memory budget: one held per resident die, acquired
	// before prepare starts, released when solve drops the die. ready
	// has one buffer slot per token, so a send can never block.
	tokens := make(chan struct{}, cfg.MaxInFlight)
	indices := make(chan int)
	ready := make(chan int, cfg.MaxInFlight)
	dies := make([]*wcm3d.Die, len(specs))

	go func() {
		defer close(indices)
		for i := range specs {
			select {
			case indices <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var prepWG sync.WaitGroup
	for w := 0; w < cfg.PrepareWorkers; w++ {
		prepWG.Add(1)
		go func() {
			defer prepWG.Done()
			for i := range indices {
				select {
				case tokens <- struct{}{}:
				case <-ctx.Done():
					return
				}
				r := &res.Dies[i]
				t0 := time.Now()
				d, err := prepare(ctx, specs[i])
				r.PrepareDur = time.Since(t0)
				if err != nil {
					r.Err = fmt.Errorf("batch: preparing %s: %w", specs[i].name(), err)
					if cfg.OnDie != nil {
						cfg.OnDie(*r)
					}
					<-tokens
					continue
				}
				dies[i] = d
				ready <- i // never blocks: one buffer slot per token
			}
		}()
	}
	go func() {
		prepWG.Wait()
		close(ready)
	}()

	var solveWG sync.WaitGroup
	for w := 0; w < cfg.SolveWorkers; w++ {
		solveWG.Add(1)
		go func() {
			defer solveWG.Done()
			for i := range ready {
				r := &res.Dies[i]
				if ctx.Err() != nil {
					r.Err = ctx.Err()
				} else {
					t0 := time.Now()
					solveOne(r, dies[i], cfg)
					r.SolveDur = time.Since(t0)
				}
				if cfg.KeepDies {
					r.Die = dies[i]
				}
				dies[i] = nil // release the die before the token
				if cfg.OnDie != nil {
					cfg.OnDie(*r)
				}
				<-tokens // OnDie first: the die's resident window ends at the callback
			}
		}()
	}
	solveWG.Wait()

	if err := ctx.Err(); err != nil {
		res.Elapsed = time.Since(start)
		return res, err
	}

	// Schedule stage: pack in spec order (deterministic) once every die's
	// designs exist.
	if cfg.ScheduleWidth > 0 && len(res.Failed()) == 0 {
		specList := make([]tam.DieSpec, len(res.Dies))
		for i := range res.Dies {
			specList[i] = tam.DieSpec{Name: res.Dies[i].Spec.name(), Designs: res.Dies[i].Designs}
		}
		sched, err := tam.Pack(specList, cfg.ScheduleWidth)
		if err != nil {
			res.Elapsed = time.Since(start)
			return res, fmt.Errorf("batch: packing schedule: %w", err)
		}
		res.Schedule = sched
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// solveOne runs the per-die tail of the pipeline: minimize, optional
// verify, optional grade+enumerate for the schedule stage.
func solveOne(r *DieResult, d *wcm3d.Die, cfg Config) {
	min, err := minimize(d, cfg)
	if err != nil {
		r.Err = fmt.Errorf("batch: solving %s: %w", r.Spec.name(), err)
		return
	}
	r.Result = min

	if cfg.Verify {
		vr, err := wcm3d.VerifyPlan(d, min, wcm3d.VerifyOptions{})
		if err != nil {
			r.Err = fmt.Errorf("batch: verifying %s: %w", r.Spec.name(), err)
			return
		}
		r.Verify = vr
		if !vr.OK() {
			r.Err = fmt.Errorf("batch: %s: plan failed verification: %s", r.Spec.name(), vr.Summary())
			return
		}
	}

	if cfg.ScheduleWidth > 0 {
		budget := experiments.ReducedBudget(r.Spec.Seed)
		if cfg.Budget != nil {
			budget = *cfg.Budget
		}
		tb, err := wcm3d.EvaluateStuckAt(d, min.Assignment, budget)
		if err != nil {
			r.Err = fmt.Errorf("batch: grading %s: %w", r.Spec.name(), err)
			return
		}
		r.Patterns = tb.Patterns
		designs, err := wcm3d.EnumerateWrapperDesigns(d, min.Assignment, r.Patterns, cfg.ScheduleWidth)
		if err != nil {
			r.Err = fmt.Errorf("batch: enumerating %s: %w", r.Spec.name(), err)
			return
		}
		r.Designs = designs
	}
}

// minimize is the exact serial path: wcm3d.Minimize, with the solver's
// internal worker bound applied when requested.
func minimize(d *wcm3d.Die, cfg Config) (*wcm3d.MinimizeResult, error) {
	if cfg.Workers == 0 {
		return wcm3d.Minimize(d, cfg.Method, cfg.Mode)
	}
	opts, err := optionsFor(d, cfg)
	if err != nil {
		return wcm3d.Minimize(d, cfg.Method, cfg.Mode)
	}
	opts.Workers = cfg.Workers
	return wcm3d.MinimizeWith(d, opts)
}

// optionsFor resolves the wcm.Options wcm3d.Minimize would use, so the
// worker-bounded run matches it exactly. Only the graph-based methods
// take options; Li and full-wrap fall back to Minimize (they have no
// internal parallelism).
func optionsFor(d *wcm3d.Die, cfg Config) (wcm3d.MinimizeOptions, error) {
	switch cfg.Method {
	case wcm3d.MethodOurs:
		return wcm3d.OurOptions(d, cfg.Mode), nil
	case wcm3d.MethodAgrawal:
		return wcm3d.AgrawalOptions(d, cfg.Mode), nil
	default:
		return wcm3d.MinimizeOptions{}, fmt.Errorf("batch: method %v has no options", cfg.Method)
	}
}
