package batch_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"wcm3d"
	"wcm3d/internal/batch"
)

// familySpecs builds batch specs for whole benchmark families at seed 1
// (the Table II convention).
func familySpecs(t testing.TB, names ...string) []batch.Spec {
	t.Helper()
	var specs []batch.Spec
	for _, name := range names {
		for _, p := range wcm3d.CircuitProfiles(name) {
			specs = append(specs, batch.Spec{Profile: p, Seed: 1})
		}
	}
	if len(specs) == 0 {
		t.Fatal("no specs")
	}
	return specs
}

func tableIISpecs() []batch.Spec {
	profiles := wcm3d.ITC99Profiles()
	specs := make([]batch.Spec, len(profiles))
	for i, p := range profiles {
		specs[i] = batch.Spec{Profile: p, Seed: 1}
	}
	return specs
}

// serialSweep is the naive reference path the engine must match
// bit-for-bit: prepare and minimize each die in order, one at a time.
func serialSweep(t testing.TB, specs []batch.Spec, m wcm3d.Method, mode wcm3d.TimingMode) []*wcm3d.MinimizeResult {
	t.Helper()
	out := make([]*wcm3d.MinimizeResult, len(specs))
	for i, spec := range specs {
		d, err := wcm3d.PrepareDie(spec.Profile, spec.Seed)
		if err != nil {
			t.Fatalf("serial prepare %s: %v", spec.Profile.Name(), err)
		}
		res, err := wcm3d.Minimize(d, m, mode)
		if err != nil {
			t.Fatalf("serial minimize %s: %v", spec.Profile.Name(), err)
		}
		out[i] = res
	}
	return out
}

// assertPlansEqual requires the engine's plan for one die to be
// bit-identical to the serial reference: the assignment, every per-phase
// statistic, and the headline counters.
func assertPlansEqual(t *testing.T, name string, got, want *wcm3d.MinimizeResult) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: engine produced no result", name)
	}
	if !reflect.DeepEqual(got.Assignment, want.Assignment) {
		t.Errorf("%s: Assignment differs from serial path", name)
	}
	if !reflect.DeepEqual(got.Phases, want.Phases) {
		t.Errorf("%s: PhaseStats differ:\n got %+v\nwant %+v", name, got.Phases, want.Phases)
	}
	if got.ReusedFFs != want.ReusedFFs || got.AdditionalCells != want.AdditionalCells {
		t.Errorf("%s: totals (%d,%d) != serial (%d,%d)", name,
			got.ReusedFFs, got.AdditionalCells, want.ReusedFFs, want.AdditionalCells)
	}
}

// runEquivalence drives the engine over specs at several worker counts
// and pins every die's plan to the serial reference. The worker count is
// applied to every knob at once — both pipeline pools and the solver's
// internal parallelism — which is the widest interleaving surface.
func runEquivalence(t *testing.T, specs []batch.Spec) {
	serial := serialSweep(t, specs, wcm3d.MethodOurs, wcm3d.TightTiming)
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			res, err := batch.Run(context.Background(), specs, batch.Config{
				Method:         wcm3d.MethodOurs,
				Mode:           wcm3d.TightTiming,
				PrepareWorkers: workers,
				SolveWorkers:   workers,
				Workers:        workers,
				MaxInFlight:    workers + 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if failed := res.Failed(); len(failed) != 0 {
				t.Fatalf("failed dies %v: first err: %v", failed, res.Dies[failed[0]].Err)
			}
			for i := range specs {
				assertPlansEqual(t, specs[i].Profile.Name(), res.Dies[i].Result, serial[i])
			}
		})
	}
}

// TestBatchMatchesSerialQuick pins the engine to the serial path on the
// two small families (8 dies) at workers {1,2,8}. Always runs; the full
// 24-die version is TestBatchMatchesSerialTableII below.
func TestBatchMatchesSerialQuick(t *testing.T) {
	runEquivalence(t, familySpecs(t, "b11", "b12"))
}

// TestBatchMatchesSerialTableII is the release gate: bit-identical plans
// on all 24 Table II profiles at workers {1,2,8}. Minutes of work, so it
// only runs when WCM3D_FULL_EQUIV=1 (CI's bench-smoke job sets it).
func TestBatchMatchesSerialTableII(t *testing.T) {
	if os.Getenv("WCM3D_FULL_EQUIV") == "" {
		t.Skip("set WCM3D_FULL_EQUIV=1 to run the full 24-die equivalence sweep")
	}
	runEquivalence(t, tableIISpecs())
}

// TestBatchMemoryBudget proves MaxInFlight actually bounds residency:
// a die is "resident" from the moment its prepare starts until its OnDie
// callback, and the high-water mark never exceeds the budget.
func TestBatchMemoryBudget(t *testing.T) {
	specs := familySpecs(t, "b11", "b12")
	const budget = 2
	var active, peak int64
	res, err := batch.Run(context.Background(), specs, batch.Config{
		Method:         wcm3d.MethodOurs,
		Mode:           wcm3d.TightTiming,
		PrepareWorkers: 4,
		SolveWorkers:   4,
		MaxInFlight:    budget,
		Prepare: func(ctx context.Context, spec batch.Spec) (*wcm3d.Die, error) {
			n := atomic.AddInt64(&active, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
					break
				}
			}
			return wcm3d.PrepareDie(spec.Profile, spec.Seed)
		},
		OnDie: func(batch.DieResult) { atomic.AddInt64(&active, -1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if failed := res.Failed(); len(failed) != 0 {
		t.Fatalf("failed dies: %v", failed)
	}
	if p := atomic.LoadInt64(&peak); p > budget {
		t.Fatalf("peak residency %d exceeds MaxInFlight %d", p, budget)
	}
	if a := atomic.LoadInt64(&active); a != 0 {
		t.Fatalf("%d dies still resident after Run returned", a)
	}
}

// TestBatchPerDieErrorDoesNotAbort: one die's prepare failure is recorded
// in its slot and every other die still completes.
func TestBatchPerDieErrorDoesNotAbort(t *testing.T) {
	specs := familySpecs(t, "b11")
	boom := errors.New("injected prepare failure")
	res, err := batch.Run(context.Background(), specs, batch.Config{
		Method: wcm3d.MethodOurs,
		Mode:   wcm3d.TightTiming,
		Prepare: func(ctx context.Context, spec batch.Spec) (*wcm3d.Die, error) {
			if spec.Profile.Name() == specs[1].Profile.Name() {
				return nil, boom
			}
			return wcm3d.PrepareDie(spec.Profile, spec.Seed)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	failed := res.Failed()
	if len(failed) != 1 || failed[0] != 1 {
		t.Fatalf("Failed() = %v, want [1]", failed)
	}
	if !errors.Is(res.Dies[1].Err, boom) {
		t.Fatalf("die 1 error = %v, want wrapped %v", res.Dies[1].Err, boom)
	}
	for i := range specs {
		if i == 1 {
			continue
		}
		if res.Dies[i].Err != nil || res.Dies[i].Result == nil {
			t.Fatalf("die %d should have completed: err=%v", i, res.Dies[i].Err)
		}
	}
}

// TestBatchCancellation: a cancelled context stops the pipeline and Run
// reports it; completed dies keep their results.
func TestBatchCancellation(t *testing.T) {
	specs := familySpecs(t, "b11", "b12")
	ctx, cancel := context.WithCancel(context.Background())
	var done int64
	_, err := batch.Run(ctx, specs, batch.Config{
		Method: wcm3d.MethodOurs,
		Mode:   wcm3d.TightTiming,
		OnDie: func(batch.DieResult) {
			if atomic.AddInt64(&done, 1) == 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
}

// TestBatchVerifyStage: the optional checker runs per die and its report
// lands in the result.
func TestBatchVerifyStage(t *testing.T) {
	specs := familySpecs(t, "b11")
	res, err := batch.Run(context.Background(), specs, batch.Config{
		Method: wcm3d.MethodOurs,
		Mode:   wcm3d.TightTiming,
		Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if failed := res.Failed(); len(failed) != 0 {
		t.Fatalf("failed dies %v: %v", failed, res.Dies[failed[0]].Err)
	}
	for i := range res.Dies {
		vr := res.Dies[i].Verify
		if vr == nil || !vr.OK() {
			t.Fatalf("die %d: verify report missing or failing: %+v", i, vr)
		}
	}
}

// TestBatchScheduleMatchesFacade: the engine's schedule stage must
// reproduce exactly what the serial facade path (PrepareDie → Minimize →
// EvaluateStuckAt → Schedule) would build for the same stack.
func TestBatchScheduleMatchesFacade(t *testing.T) {
	specs := familySpecs(t, "b11")
	const width = 16

	// Serial facade reference.
	stack := make([]wcm3d.StackDie, len(specs))
	for i, spec := range specs {
		d, err := wcm3d.PrepareDie(spec.Profile, spec.Seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := wcm3d.Minimize(d, wcm3d.MethodOurs, wcm3d.TightTiming)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := wcm3d.EvaluateStuckAt(d, res.Assignment, wcm3d.ReducedBudget(spec.Seed))
		if err != nil {
			t.Fatal(err)
		}
		stack[i] = wcm3d.StackDie{
			Name:       spec.Profile.Name(),
			Die:        d,
			Assignment: res.Assignment,
			Patterns:   tb.Patterns,
		}
	}
	want, err := wcm3d.Schedule(stack, width)
	if err != nil {
		t.Fatal(err)
	}

	res, err := batch.Run(context.Background(), specs, batch.Config{
		Method:        wcm3d.MethodOurs,
		Mode:          wcm3d.TightTiming,
		ScheduleWidth: width,
	})
	if err != nil {
		t.Fatal(err)
	}
	if failed := res.Failed(); len(failed) != 0 {
		t.Fatalf("failed dies %v: %v", failed, res.Dies[failed[0]].Err)
	}
	if res.Schedule == nil {
		t.Fatal("no schedule produced")
	}
	if !reflect.DeepEqual(res.Schedule, want) {
		t.Fatalf("batch schedule differs from facade path:\n got %+v\nwant %+v", res.Schedule, want)
	}
}

// TestBatchOnDieCompleteness: every die is observed exactly once.
func TestBatchOnDieCompleteness(t *testing.T) {
	specs := familySpecs(t, "b11", "b12")
	var mu sync.Mutex
	seen := map[int]int{}
	res, err := batch.Run(context.Background(), specs, batch.Config{
		Method:         wcm3d.MethodOurs,
		Mode:           wcm3d.TightTiming,
		PrepareWorkers: 3,
		SolveWorkers:   3,
		OnDie: func(r batch.DieResult) {
			mu.Lock()
			seen[r.Index]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if failed := res.Failed(); len(failed) != 0 {
		t.Fatalf("failed dies: %v", failed)
	}
	for i := range specs {
		if seen[i] != 1 {
			t.Fatalf("die %d observed %d times, want 1", i, seen[i])
		}
	}
}
